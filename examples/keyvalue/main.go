// Keyvalue: a long-lived replicated key-value service — the flagship
// example of service mode. Four replicas run the asymmetric DAG consensus
// indefinitely under constant synthetic client load while the
// "rolling-churn" adversarial scenario crashes and recovers replicas in
// rolling windows. The run demonstrates the full service lifecycle:
//
//	queue → batch → block → wave → commit → apply → snapshot/compact
//
// with pipelined wave proposal, mandatory DAG garbage collection (memory
// stays bounded no matter how long the service runs), and periodic state
// snapshots with ordered-log compaction. At every decided wave where two
// replicas both snapshotted, their key-value states are byte-identical —
// verified at the end, churn and all.
//
//	go run ./examples/keyvalue
//	go run ./examples/keyvalue -waves 200
package main

import (
	"flag"
	"fmt"
	"log"

	asymdag "repro"
)

func main() {
	waves := flag.Int("waves", 60, "decided waves to run before stopping (the service itself is open-ended)")
	seed := flag.Int64("seed", 3, "network schedule seed (also picks the churn victims)")
	flag.Parse()

	const n = 4
	cfg := asymdag.ServiceConfig{
		Trust:          asymdag.NewThreshold(n, 1),
		CoinSeed:       7,
		ClientRate:     4,  // client commands admitted per replica per tick
		BatchSize:      16, // transactions packed into one block
		PipelineDepth:  8,  // waves proposals may run ahead of decisions
		GCDepth:        12, // rounds of DAG kept below the decided horizon
		SnapshotEvery:  4,  // decided waves between snapshot/compaction points
		StopAfterWaves: *waves,
	}

	// Rolling churn: replicas crash and recover in rolling windows with
	// their deliveries buffered — the canonical long-lived-deployment
	// hazard a replicated service must ride out.
	def, ok := asymdag.FindScenario("rolling-churn")
	if !ok {
		log.Fatal("rolling-churn scenario missing from the registry")
	}
	cfg = asymdag.ServiceScenarioConfig(def, cfg, *seed)

	fmt.Printf("running %d replicas to decided wave %d under %s...\n\n", n, *waves, def.Name)
	res := asymdag.RunService(cfg)
	if !res.Stopped {
		log.Fatal("run ended at the event budget before reaching the target wave")
	}

	fmt.Println("per-replica service report:")
	for p := 0; p < n; p++ {
		rep := res.Replicas[asymdag.ProcessID(p)]
		fmt.Printf("  replica %d: wave %d, %d applied (%d compacted away, %d in tail), %d snapshots, commit latency p50=%d p99=%d\n",
			p, rep.DecidedWave, rep.Applied, rep.Compacted, rep.TailLen,
			len(rep.Snapshots), rep.Latency.P50, rep.Latency.P99)
	}

	st := asymdag.SummarizeService(res)
	fmt.Printf("\nsustained throughput: %.2f tx per virtual-time unit per replica\n", st.Throughput)
	fmt.Printf("commit rate:          %.4f waves per virtual-time unit per replica\n", st.CommitRate)
	fmt.Printf("peak live DAG:        %d vertices (bounded by GC, independent of run length)\n",
		st.PeakLiveVertices)

	compared, err := asymdag.CheckServiceSnapshots(res)
	if err != nil {
		log.Fatalf("snapshot divergence: %v", err)
	}
	if compared == 0 {
		log.Fatal("no snapshot wave was shared by two replicas (vacuous check)")
	}
	fmt.Printf("\n%d cross-replica snapshot comparisons: all byte-identical ✓\n", compared)
}
