// Keyvalue: a replicated key-value store — the classic state-machine-
// replication application — built on the asymmetric DAG consensus. Every
// replica applies the totally ordered command log to its local map;
// because the log is identical everywhere, so are the stores, including
// the outcome of conflicting writes submitted at different replicas.
//
//	go run ./examples/keyvalue
package main

import (
	"fmt"
	"log"
	"strings"

	asymdag "repro"
)

// apply executes one "SET key=value" or "DEL key" command.
func apply(store map[string]string, cmd string) {
	switch {
	case strings.HasPrefix(cmd, "SET "):
		kv := strings.SplitN(strings.TrimPrefix(cmd, "SET "), "=", 2)
		if len(kv) == 2 {
			store[kv[0]] = kv[1]
		}
	case strings.HasPrefix(cmd, "DEL "):
		delete(store, strings.TrimPrefix(cmd, "DEL "))
	}
}

func main() {
	const n = 4
	cluster := asymdag.NewCluster(asymdag.ClusterConfig{
		Trust:    asymdag.NewThreshold(n, 1),
		NumWaves: 10,
		Seed:     5,
		CoinSeed: 6,
	})

	// Conflicting writes to the same keys land at different replicas;
	// consensus decides the winner identically for everyone.
	cluster.Submit(0, "SET color=red", "SET size=L")
	cluster.Submit(1, "SET color=blue")
	cluster.Submit(2, "SET shape=round", "DEL size")
	cluster.Submit(3, "SET color=green", "SET size=XL")

	res := cluster.Run()
	if !res.OrdersAgree() {
		log.Fatal("command logs diverged")
	}

	stores := make([]map[string]string, n)
	for p := 0; p < n; p++ {
		stores[p] = map[string]string{}
		for _, cmd := range res.Order(asymdag.ProcessID(p)) {
			apply(stores[p], cmd)
		}
	}

	fmt.Println("replicated command log:")
	for i, cmd := range res.Order(0) {
		fmt.Printf("%3d. %s\n", i+1, cmd)
	}

	fmt.Println("\nfinal store at every replica:")
	for p := 0; p < n; p++ {
		fmt.Printf("  replica %d: %v\n", p+1, stores[p])
	}
	for p := 1; p < n; p++ {
		if fmt.Sprint(stores[p]) != fmt.Sprint(stores[0]) {
			log.Fatalf("replica %d diverged", p+1)
		}
	}
	fmt.Println("\nall replicas converged to the same state ✓")
}
