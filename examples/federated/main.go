// Federated: build a Stellar-flavoured tiered trust topology where every
// participant chooses its own trust assumptions, inspect the resulting
// asymmetric quorum system (B3, guilds, kernels), and run the asymmetric
// DAG consensus over it — including what happens when top-tier members
// fail.
//
//	go run ./examples/federated
package main

import (
	"fmt"
	"log"

	asymdag "repro"
)

func main() {
	// 12 participants: a 7-member top tier (think: well-known foundations)
	// everyone partially trusts, tolerating any 2 of them failing, plus
	// individually chosen peers.
	sys, err := asymdag.NewFederated(asymdag.FederatedConfig{
		N:            12,
		TopTier:      7,
		TrustedPeers: 3,
		Tolerance:    2,
		Seed:         11,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("federated system with %d participants\n", sys.N())
	fmt.Printf("satisfies B3 (quorum system exists): %v\n", sys.SatisfiesB3())
	fmt.Printf("valid asymmetric quorum system: %v\n", sys.Validate() == nil)
	fmt.Printf("smallest quorum c(Q): %d → Lemma 4.4 commit bound %.2f waves\n\n",
		sys.SmallestQuorumSize(), float64(sys.N())/float64(sys.SmallestQuorumSize()))

	// Trust is heterogeneous: print a few processes' quorums.
	for _, p := range []asymdag.ProcessID{0, 7, 11} {
		fmt.Printf("%v quorums: %v\n", p, sys.Quorums(p)[0])
	}

	// Guild analysis: two top-tier members fail.
	faulty := asymdag.NewSetOf(12, 0, 1)
	guild := sys.MaximalGuild(faulty)
	fmt.Printf("\nif %v fail: wise=%v, naive=%v, maximal guild=%v\n",
		faulty, sys.Wise(faulty), sys.Naive(faulty), guild)

	// Run consensus with those two actually muted.
	res := asymdag.RunConsensus(asymdag.RiderConfig{
		Kind:       asymdag.RiderAsymmetric,
		Trust:      sys,
		NumWaves:   8,
		TxPerBlock: 3,
		Seed:       3,
		CoinSeed:   5,
		Faulty: map[asymdag.ProcessID]asymdag.FaultBehavior{
			0: asymdag.Mute(),
			1: asymdag.Mute(),
		},
	})

	fmt.Println("\nconsensus with the two top-tier members mute:")
	for _, p := range guild.Members() {
		nr := res.Nodes[p]
		fmt.Printf("  %v: round %d, decided wave %d, %d txs delivered\n",
			p, nr.Round, nr.DecidedWave, len(nr.Blocks))
	}
	if err := res.CheckTotalOrder(guild); err != nil {
		log.Fatalf("total order violated: %v", err)
	}
	if err := res.CheckAgreement(guild); err != nil {
		log.Fatalf("agreement violated: %v", err)
	}
	fmt.Println("\ntotal order and agreement hold for the maximal guild ✓")
}
