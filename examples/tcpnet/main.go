// Tcpnet: run the asymmetric DAG consensus over REAL TCP connections on
// loopback — the same state machines the simulator drives, deployed as a
// process mesh. Four nodes, threshold trust, synthetic workload; prints
// the agreed log.
//
//	go run ./examples/tcpnet
package main

import (
	"fmt"
	"log"
	"time"

	asymdag "repro"
)

func main() {
	const n = 4
	const waves = 5
	trust := asymdag.NewThreshold(n, 1)
	cn := asymdag.NewPRFCoin(7, n)

	nodes := make([]asymdag.FaultBehavior, n)
	raw := make([]*asymdag.ConsensusNode, n)
	for i := 0; i < n; i++ {
		nd := asymdag.NewConsensusNode(asymdag.ConsensusConfig{
			Trust:    trust,
			Coin:     cn,
			Workload: asymdag.SyntheticWorkload{Self: asymdag.ProcessID(i), TxPerBlock: 2},
			MaxRound: 4 * waves,
		})
		nodes[i] = nd
		raw[i] = nd
	}

	cluster, err := asymdag.NewTCPCluster(nodes, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	for i, h := range cluster.Hosts {
		fmt.Printf("node %d listening on %s\n", i+1, h.Addr())
	}
	start := time.Now()
	cluster.Start()

	// Poll (race-free via Inspect) until everyone finished and decided.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		done := 0
		for i, h := range cluster.Hosts {
			var round, decided int
			h.Inspect(func() {
				round = raw[i].Round()
				decided = raw[i].DecidedWave()
			})
			if round >= 4*waves && decided > 0 {
				done++
			}
		}
		if done == n {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	fmt.Printf("\nconsensus over TCP finished in %v\n", time.Since(start).Round(time.Millisecond))
	var reference []string
	for i, h := range cluster.Hosts {
		var blocks []string
		var commits int
		h.Inspect(func() {
			blocks = raw[i].DeliveredBlocks()
			commits = len(raw[i].Commits())
		})
		fmt.Printf("node %d: %d waves committed, %d txs delivered\n", i+1, commits, len(blocks))
		if len(blocks) > len(reference) {
			reference = blocks
		}
	}
	fmt.Println("\nfirst transactions of the agreed log:")
	for i := 0; i < len(reference) && i < 6; i++ {
		fmt.Printf("%3d. %s\n", i+1, reference[i])
	}

	// Wire traffic from the transport's per-peer counters: binary frames,
	// batched writes — the bytes here are exactly what sim.MessageSize
	// models for the same messages.
	stats := cluster.Stats()
	fmt.Printf("\nwire traffic: %d msgs in %d frames (%.1f msgs/frame), %d bytes sent\n",
		stats.MessagesSent, stats.FramesSent,
		float64(stats.MessagesSent)/float64(max(stats.FramesSent, 1)), stats.BytesSent)
}
