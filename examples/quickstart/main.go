// Quickstart: run a 4-process asymmetric DAG consensus cluster with
// threshold trust, submit transactions at different processes, and print
// the totally ordered log every process agrees on.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	asymdag "repro"
)

func main() {
	// The threshold assumption n=4, f=1 is the simplest asymmetric system
	// (every process makes the same assumption). Any *asymdag.System works
	// in its place — see examples/federated.
	trust := asymdag.NewThreshold(4, 1)

	cluster := asymdag.NewCluster(asymdag.ClusterConfig{
		Trust:    trust,
		NumWaves: 10,
		Seed:     42,
		CoinSeed: 7,
	})

	// Clients submit transactions at whatever process they talk to.
	cluster.Submit(0, "alice->bob:5", "alice->carol:2")
	cluster.Submit(1, "bob->dave:1")
	cluster.Submit(2, "carol->alice:9", "dave->bob:4")
	cluster.Submit(3, "erin->frank:8")

	res := cluster.Run()

	fmt.Printf("network: %d messages, %d bytes, virtual time %d\n",
		res.Messages, res.Bytes, res.VTime)
	fmt.Printf("orders agree across all processes: %v\n\n", res.OrdersAgree())

	for p := 0; p < 4; p++ {
		id := asymdag.ProcessID(p)
		fmt.Printf("%v: committed %d waves, reached round %d, delivered %d txs\n",
			id, res.Commits(id), res.Round(id), len(res.Order(id)))
	}

	fmt.Println("\ntotally ordered log (process p1's view):")
	for i, tx := range res.Order(0) {
		fmt.Printf("%3d. %s\n", i+1, tx)
	}
}
