// Faulttolerance: demonstrate the paper's fault model end to end. Runs the
// asymmetric DAG consensus with (a) crash faults inside every process's
// fail-prone assumptions (everyone wise — safety and liveness hold), and
// (b) faults beyond some processes' assumptions (naive processes exist and
// the guarantees are scoped to the maximal guild), then (c) drives the
// declarative scenario engine: a custom healing-partition + churn scenario
// and a sweep of the built-in adversarial scenario registry, each checked
// against its declared Definition 4.1 properties.
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	asymdag "repro"
)

func main() {
	// Asymmetric trust: p1..p6 tolerate {p7} or {p8}; p7, p8 tolerate
	// {p2, p3} as well. Canonical quorums.
	n := 8
	smallFault1 := asymdag.NewSetOf(n, 6) // {p7}
	smallFault2 := asymdag.NewSetOf(n, 7) // {p8}
	bigFault := asymdag.NewSetOf(n, 1, 2) // {p2,p3}
	failProne := make([][]asymdag.Set, n)
	for i := 0; i < 6; i++ {
		failProne[i] = []asymdag.Set{smallFault1, smallFault2}
	}
	for i := 6; i < 8; i++ {
		failProne[i] = []asymdag.Set{smallFault1, smallFault2, bigFault}
	}
	sys, err := asymdag.Canonical(n, failProne)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Validate(); err != nil {
		log.Fatalf("system invalid: %v", err)
	}
	fmt.Printf("asymmetric system over %d processes; B3: %v\n\n", n, sys.SatisfiesB3())

	// Scenario A: p7 crashes — inside everyone's assumptions.
	faultyA := asymdag.NewSetOf(n, 6)
	guildA := sys.MaximalGuild(faultyA)
	fmt.Printf("scenario A: %v mute (tolerated by all)\n", faultyA)
	fmt.Printf("  wise: %v, guild: %v\n", sys.Wise(faultyA), guildA)
	resA := asymdag.RunConsensus(asymdag.RiderConfig{
		Kind: asymdag.RiderAsymmetric, Trust: sys, NumWaves: 8, TxPerBlock: 2,
		Seed: 1, CoinSeed: 1,
		Faulty: map[asymdag.ProcessID]asymdag.FaultBehavior{6: asymdag.Mute()},
	})
	report(resA, guildA)

	// Scenario B: p2 and p3 crash — only p7/p8 foresaw this, but they
	// cannot form a guild alone: the maximal guild is empty and no
	// liveness is promised (safety still never breaks).
	faultyB := asymdag.NewSetOf(n, 1, 2)
	guildB := sys.MaximalGuild(faultyB)
	fmt.Printf("\nscenario B: %v mute (beyond most assumptions)\n", faultyB)
	fmt.Printf("  wise: %v, naive: %v, guild: %v (size %d)\n",
		sys.Wise(faultyB), sys.Naive(faultyB), guildB, guildB.Count())
	resB := asymdag.RunConsensus(asymdag.RiderConfig{
		Kind: asymdag.RiderAsymmetric, Trust: sys, NumWaves: 8, TxPerBlock: 2,
		Seed: 2, CoinSeed: 2,
		Faulty: map[asymdag.ProcessID]asymdag.FaultBehavior{1: asymdag.Mute(), 2: asymdag.Mute()},
	})
	correctB := faultyB.Complement()
	committed := 0
	for _, p := range correctB.Members() {
		if resB.Nodes[p].DecidedWave > 0 {
			committed++
		}
	}
	fmt.Printf("  correct processes that committed: %d (no guild ⇒ no liveness promise)\n", committed)
	if err := resB.CheckTotalOrder(correctB); err != nil {
		log.Fatalf("  SAFETY violated: %v", err)
	}
	fmt.Println("  total order still holds among all correct processes (safety is unconditional) ✓")

	// Scenario C: the declarative scenario engine. A custom scenario
	// composes a healing partition (cross-partition traffic held back until
	// t=450) with buffered crash-recovery churn on one process, and
	// declares the full Definition 4.1 contract; the sweep checks it on
	// every seed. Zero-value sweep config = threshold(4,1), 6 waves.
	custom := asymdag.ScenarioDefinition{
		Name: "heal+churn",
		Desc: "healing half/half partition plus one buffered crash-recover process",
		Build: func(n int, seed int64) asymdag.Scenario {
			half := asymdag.NewSet(n)
			for p := 0; p < n/2; p++ {
				half.Add(asymdag.ProcessID(p))
			}
			victim := asymdag.ProcessID(seed % int64(n))
			return asymdag.Scenario{
				Name: "heal+churn",
				Rules: []asymdag.ScenarioRule{{
					Window:    asymdag.ScenarioWindow{From: 150, Until: 450},
					Links:     asymdag.LinksBetween(half, half.Complement()),
					HoldUntil: 450,
				}},
				Faults: []asymdag.ScenarioNodeFault{
					asymdag.ChurnFault(victim, 100, 400, true),
				},
				Properties: asymdag.AllScenarioProperties(),
			}
		},
	}
	fmt.Println("\nscenario C: declarative scenario engine")
	cStats := asymdag.SweepScenario(custom, asymdag.SeedRange(1, 6), asymdag.ScenarioSweepConfig{})
	if cStats.First != nil {
		log.Fatalf("  custom scenario failed: %v", cStats.First)
	}
	fmt.Printf("  custom %q: %d/%d seeds hold all Definition 4.1 properties ✓\n",
		custom.Name, cStats.Seeds-cStats.Failures, cStats.Seeds)

	// And the built-in adversarial registry, each scenario against its own
	// declared properties.
	stats, firstFail := asymdag.SweepScenarios(asymdag.BuiltinScenarios(), asymdag.SeedRange(1, 4), asymdag.ScenarioSweepConfig{})
	for _, s := range stats {
		fmt.Printf("  builtin %-16s %d/%d seeds ok, %d/%d nodes decided\n",
			s.Name, s.Seeds-s.Failures, s.Seeds, s.DecidedNodes, s.Nodes)
	}
	if firstFail != nil {
		log.Fatalf("  FIRST FAILING: %v", firstFail)
	}
	fmt.Println("  all built-in scenarios hold their declared properties ✓")
}

func report(res asymdag.RiderResult, guild asymdag.Set) {
	committed := 0
	for _, p := range guild.Members() {
		if res.Nodes[p].DecidedWave > 0 {
			committed++
		}
	}
	fmt.Printf("  guild members committed: %d/%d\n", committed, guild.Count())
	if err := res.CheckTotalOrder(guild); err != nil {
		log.Fatalf("  total order violated: %v", err)
	}
	if err := res.CheckAgreement(guild); err != nil {
		log.Fatalf("  agreement violated: %v", err)
	}
	fmt.Println("  total order + agreement hold for the guild ✓")
}
