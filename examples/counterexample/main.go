// Counterexample: walk through the paper's Appendix A. Builds the
// 30-process Figure 1 system, executes the unsound quorum-replacement
// gather (Algorithm 2) under the adversarial schedule to show the common
// core fail (Lemma 3.2), then runs the paper's constant-round asymmetric
// gather (Algorithm 3) on the identical schedule and watches it succeed.
//
//	go run ./examples/counterexample
package main

import (
	"fmt"

	asymdag "repro"
)

func main() {
	sys := asymdag.Counterexample()
	n := sys.N()
	fmt.Printf("Figure 1 system: %d processes, each with a single quorum of size 6\n", n)
	fmt.Printf("B3 holds: %v — so a valid asymmetric quorum system exists (Theorem 2.4)\n\n", sys.SatisfiesB3())

	// The adversarial schedule: every process hears exactly its canonical
	// quorum fast, everything else slow.
	fav := make([]asymdag.Set, n)
	for i := 0; i < n; i++ {
		fav[i] = sys.Quorums(asymdag.ProcessID(i))[0]
	}
	adversarial := asymdag.FavoredLinksLatency{Favored: fav, Fast: 1, Slow: 100000}

	run := func(kind asymdag.GatherKind) asymdag.GatherResult {
		return asymdag.RunGather(asymdag.GatherConfig{
			Kind:    kind,
			Trust:   sys,
			Mode:    asymdag.GatherUsePlain, // all-correct Appendix A execution
			Latency: adversarial,
			Seed:    1,
		})
	}

	// Algorithm 2: quorum replacement. No common core.
	res2 := run(asymdag.GatherThreeRound)
	fmt.Printf("Algorithm 2 (quorum replacement): %d/%d delivered, %d messages\n",
		len(res2.Outputs), n, res2.Metrics.MessagesSent)
	fmt.Println("sample outputs (note every process misses someone in [16,30]):")
	for _, p := range []asymdag.ProcessID{0, 5, 14} {
		fmt.Printf("  %v delivers %v\n", p, res2.Outputs[p].Senders(n))
	}
	fmt.Println("⇒ no S set is contained in every output: the common core property FAILS (Lemma 3.2)")

	// Algorithm 3: the paper's constant-round asymmetric gather.
	res3 := run(asymdag.GatherConstantRound)
	fmt.Printf("\nAlgorithm 3 (constant-round asymmetric gather): %d/%d delivered, %d messages\n",
		len(res3.Outputs), n, res3.Metrics.MessagesSent)
	fmt.Println("⇒ a common core exists on the very same adversarial schedule:")
	fmt.Println("   the extra ACK/READY/CONFIRM control flow guarantees some process's S set")
	fmt.Println("   reaches a full quorum before anyone distributes its T set (§3.3)")
	fmt.Printf("   cost: %.1f× the messages of Algorithm 2\n",
		float64(res3.Metrics.MessagesSent)/float64(res2.Metrics.MessagesSent))
}
