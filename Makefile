# Build/test/bench entry points. `make bench` records the run to
# BENCH_<date>.json (go test -json stream) so the perf trajectory of the
# repository is tracked in-tree over time.

GO        ?= go
DATE      := $(shell date +%Y-%m-%d)
BENCH_OUT ?= BENCH_$(DATE).json

.PHONY: all build test vet lint fuzz bench benchcmp transportbench search scenarios soak clean

# (test already vets, so all doesn't list vet separately)
all: build test

build:
	$(GO) build ./...

# vet + custom analyzers + race detector: the sweep engine's worker pool
# must stay race-clean, and the randomized conformance suites exercise it
# on every run. The scenario registry sweep rides along so `make test`
# always exercises the adversarial scenarios end to end, and `lint` runs
# the repository's own determinism/wire-contract analyzers (cmd/asymvet)
# alongside stock go vet.
test: scenarios lint
	$(GO) test -race ./...

# Repository-specific static analysis: the internal/lint analyzers
# (asymdeterminism, asymwire, asymsizer, asymbound, asymshare, asymgc —
# see internal/lint's package comment for the contracts) over the whole
# tree, plus stock go vet. The content-hash cache makes repeat runs skip
# unchanged packages; delete .asymvet-cache.json (untracked) to force a
# cold run.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/asymvet -cache .asymvet-cache.json ./...

# Coverage-guided fuzzing of the byte-level attack surface: the wire
# bounded-decode primitives, the tagged top-level decoder, and the
# transport frame reader / hello parser / batch-body walker. Each
# target's seed corpus also runs as a plain test in `make test`;
# FUZZTIME bounds each target here.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/wire -run='^$$' -fuzz='^FuzzReadPrimitives$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/wire -run='^$$' -fuzz='^FuzzDecode$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/transport -run='^$$' -fuzz='^FuzzReadFrame$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/transport -run='^$$' -fuzz='^FuzzParseHello$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/transport -run='^$$' -fuzz='^FuzzDecodeBatch$$' -fuzztime=$(FUZZTIME)

# Sweep every built-in adversarial scenario (internal/scenario) over a few
# seeds and check each one's declared Definition 4.1 properties; bounded to
# a few seconds.
scenarios:
	$(GO) run ./cmd/experiments -run scenarios

vet:
	$(GO) vet ./...

# Full benchmark sweep with allocation stats; the human-readable summary
# goes to stdout while the structured stream is preserved for tooling.
# The transport package rides along so the loopback-cluster throughput
# numbers (msgs/s, bytes/s at n=50) are part of the recorded trajectory.
bench:
	$(GO) test -json -run='^$$' -bench=. -benchmem -count=1 . ./internal/transport > $(BENCH_OUT)
	@grep -o '"Output":".*"' $(BENCH_OUT) | sed -e 's/^"Output":"//' -e 's/"$$//' -e 's/\\t/\t/g' -e 's/\\n//g' | grep '^Benchmark' || true
	@echo "wrote $(BENCH_OUT)"

# Transport-focused gate: the wire codec and framing/backpressure test
# suites under the race detector, then the n=50 loopback mesh benchmark.
transportbench:
	$(GO) test -race -count=1 ./internal/wire ./internal/transport
	$(GO) test -run='^$$' -bench=BenchmarkLoopbackCluster -benchmem -count=1 ./internal/transport

# Bounded-memory soak of the long-lived service layer: 500 decided waves
# (50x the original 10-wave experiment budget) under the rolling-churn
# scenario, race-clean, plus the snapshot-equivalence and churn-survival
# suites. The short 150-wave variant of the same tests already rides in
# `make test`; SOAK_WAVES overrides the length.
SOAK_WAVES ?= 500
soak:
	SOAK_WAVES=$(SOAK_WAVES) $(GO) test -race -count=1 -v \
		-run 'TestService(BoundedMemorySoak|SnapshotEquivalence|SurvivesChurn)' ./internal/service

# Diff two bench recordings; fails on >15% ns/op, allocs/op or B/op
# regressions, and on >15% drops of rate metrics (runs/s, events/s, the
# service benchmark's msgs/s, commits/s, tx/s). By default the two newest
# BENCH_*.json are compared; override with OLD=/NEW=, and the allocation
# gate with ALLOC_THRESHOLD= (percent; negative disables).
benchcmp:
	$(GO) run ./cmd/benchdiff $(if $(OLD),-old $(OLD)) $(if $(NEW),-new $(NEW)) $(if $(ALLOC_THRESHOLD),-allocthreshold $(ALLOC_THRESHOLD))

# Smoke-test the batch analysis search path: a parallel random-system
# sweep through quorum.AnalyzeSystem (the quorumtool -search mode).
search:
	$(GO) run ./cmd/quorumtool -system random -n 12 -search 50

# Remove only bench recordings that are not committed: historical
# BENCH_*.json are tracked in-tree as the perf trajectory, so deleting
# everything matching the glob (as this target once did) destroyed
# committed history.
clean:
	@for f in BENCH_*.json; do \
		[ -e "$$f" ] || continue; \
		if git ls-files --error-unmatch "$$f" >/dev/null 2>&1; then \
			echo "keeping tracked $$f"; \
		else \
			rm -f "$$f" && echo "removed $$f"; \
		fi; \
	done
