# Build/test/bench entry points. `make bench` records the run to
# BENCH_<date>.json (go test -json stream) so the perf trajectory of the
# repository is tracked in-tree over time.

GO        ?= go
DATE      := $(shell date +%Y-%m-%d)
BENCH_OUT ?= BENCH_$(DATE).json

.PHONY: all build test vet bench clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Full benchmark sweep with allocation stats; the human-readable summary
# goes to stdout while the structured stream is preserved for tooling.
bench:
	$(GO) test -json -run='^$$' -bench=. -benchmem -count=1 . > $(BENCH_OUT)
	@grep -o '"Output":".*"' $(BENCH_OUT) | sed -e 's/^"Output":"//' -e 's/"$$//' -e 's/\\t/\t/g' -e 's/\\n//g' | grep '^Benchmark' || true
	@echo "wrote $(BENCH_OUT)"

clean:
	rm -f BENCH_*.json
