// Command riderbench sweeps the consensus protocols across parameters and
// emits CSV for plotting: per-run commit counts, delivered transactions,
// virtual-time latency, and message/byte costs. The seed sweep fans out
// over a worker pool (sim.Sweep); rows are emitted in seed order and a
// summary line with the per-run means goes to stderr, both independent of
// the worker count.
//
// Usage:
//
//	riderbench -kind asymmetric -system threshold -n 7 -f 2 -waves 10 -seeds 5
//	riderbench -kind symmetric  -system threshold -n 4 -f 1 -tx 8
//	riderbench -kind asymmetric -system counterexample -waves 4 -workers 2
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/harness"
	"repro/internal/quorum"
	"repro/internal/sim"
)

func main() {
	kindFlag := flag.String("kind", "asymmetric", "symmetric | asymmetric")
	system := flag.String("system", "threshold", "threshold | counterexample | federated")
	n := flag.Int("n", 7, "processes (threshold/federated)")
	f := flag.Int("f", 2, "failure threshold (threshold)")
	waves := flag.Int("waves", 10, "waves per run")
	seeds := flag.Int("seeds", 3, "seeds per configuration")
	tx := flag.Int("tx", 4, "transactions per block")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	deliveryWorkers := flag.Int("delivery-workers", 0, "parallel same-time delivery workers inside each run (0 = serial)")
	flag.Parse()

	var trust quorum.Assumption
	switch *system {
	case "threshold":
		trust = quorum.NewThreshold(*n, *f)
	case "counterexample":
		trust = quorum.Counterexample()
	case "federated":
		fed, err := quorum.NewFederated(quorum.FederatedConfig{
			N: *n, TopTier: max(3, *n*2/3), TrustedPeers: 2, Tolerance: 1, Seed: 1,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		trust = fed
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}

	kind := harness.Asymmetric
	if *kindFlag == "symmetric" {
		kind = harness.Symmetric
	}

	// Fan the per-seed runs out over the worker pool; records come back
	// positioned by seed, so the CSV is identical to the old serial loop
	// for every worker count.
	type record struct {
		row          []string
		commits, med int
		vtime        int64
		msgs         int
		hitLimit     bool
	}
	res := sim.Sweep(sim.SeedRange(0, *seeds), *workers, func(seed int64) record {
		r := harness.RunRider(harness.RiderConfig{
			Kind: kind, Trust: trust, NumWaves: *waves, TxPerBlock: *tx,
			Seed: seed, CoinSeed: seed * 101,
			DeliveryWorkers: *deliveryWorkers,
		})
		commits, med := summarize(r)
		return record{
			row: []string{
				kind.String(), *system, strconv.Itoa(trust.N()), strconv.FormatInt(seed, 10),
				strconv.Itoa(*waves), strconv.Itoa(commits), strconv.Itoa(med),
				strconv.FormatInt(int64(r.EndTime), 10),
				strconv.Itoa(r.Metrics.MessagesSent), strconv.Itoa(r.Metrics.BytesSent),
				strconv.FormatBool(r.HitLimit),
			},
			commits: commits, med: med, vtime: int64(r.EndTime), msgs: r.Metrics.MessagesSent,
			hitLimit: r.HitLimit,
		}
	})
	if err := res.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	_ = w.Write([]string{"kind", "system", "n", "seed", "waves", "max_commits", "median_tx", "vtime", "messages", "bytes", "hit_limit"})
	hitLimits := 0
	firstHitSeed := int64(-1)
	sum := sim.Reduce(res, record{}, func(acc record, seed int64, r record) record {
		_ = w.Write(r.row)
		acc.commits += r.commits
		acc.med += r.med
		acc.vtime += r.vtime
		acc.msgs += r.msgs
		if r.hitLimit {
			hitLimits++
			if firstHitSeed < 0 {
				firstHitSeed = seed
			}
		}
		return acc
	})
	if runs := len(res.Values); runs > 0 {
		fr := float64(runs)
		fmt.Fprintf(os.Stderr, "summary: %d runs, mean commits %.1f, mean median-tx %.1f, mean vtime %.0f, mean msgs %.0f\n",
			runs, float64(sum.commits)/fr, float64(sum.med)/fr, float64(sum.vtime)/fr, float64(sum.msgs)/fr)
		if hitLimits > 0 {
			fmt.Fprintf(os.Stderr, "WARNING: %d/%d runs truncated at their event budget (first seed %d); results understate the full execution\n",
				hitLimits, runs, firstHitSeed)
		}
	}
}

func summarize(res harness.RiderResult) (maxCommits, medianTx int) {
	var txs []int
	for _, nr := range res.Nodes {
		txs = append(txs, len(nr.Blocks))
		if len(nr.Commits) > maxCommits {
			maxCommits = len(nr.Commits)
		}
	}
	if len(txs) == 0 {
		return 0, 0
	}
	// Insertion sort; tiny slice.
	for i := 1; i < len(txs); i++ {
		for j := i; j > 0 && txs[j] < txs[j-1]; j-- {
			txs[j], txs[j-1] = txs[j-1], txs[j]
		}
	}
	return maxCommits, txs[len(txs)/2]
}
