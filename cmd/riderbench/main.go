// Command riderbench sweeps the consensus protocols across parameters and
// emits CSV for plotting: per-run commit counts, delivered transactions,
// virtual-time latency, and message/byte costs.
//
// Usage:
//
//	riderbench -kind asymmetric -system threshold -n 7 -f 2 -waves 10 -seeds 5
//	riderbench -kind symmetric  -system threshold -n 4 -f 1 -tx 8
//	riderbench -kind asymmetric -system counterexample -waves 4
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/harness"
	"repro/internal/quorum"
)

func main() {
	kindFlag := flag.String("kind", "asymmetric", "symmetric | asymmetric")
	system := flag.String("system", "threshold", "threshold | counterexample | federated")
	n := flag.Int("n", 7, "processes (threshold/federated)")
	f := flag.Int("f", 2, "failure threshold (threshold)")
	waves := flag.Int("waves", 10, "waves per run")
	seeds := flag.Int("seeds", 3, "seeds per configuration")
	tx := flag.Int("tx", 4, "transactions per block")
	flag.Parse()

	var trust quorum.Assumption
	switch *system {
	case "threshold":
		trust = quorum.NewThreshold(*n, *f)
	case "counterexample":
		trust = quorum.Counterexample()
	case "federated":
		fed, err := quorum.NewFederated(quorum.FederatedConfig{
			N: *n, TopTier: max(3, *n*2/3), TrustedPeers: 2, Tolerance: 1, Seed: 1,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		trust = fed
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}

	kind := harness.Asymmetric
	if *kindFlag == "symmetric" {
		kind = harness.Symmetric
	}

	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	_ = w.Write([]string{"kind", "system", "n", "seed", "waves", "max_commits", "median_tx", "vtime", "messages", "bytes"})
	for seed := int64(0); seed < int64(*seeds); seed++ {
		res := harness.RunRider(harness.RiderConfig{
			Kind: kind, Trust: trust, NumWaves: *waves, TxPerBlock: *tx,
			Seed: seed, CoinSeed: seed * 101,
		})
		commits, med := summarize(res)
		_ = w.Write([]string{
			kind.String(), *system, strconv.Itoa(trust.N()), strconv.FormatInt(seed, 10),
			strconv.Itoa(*waves), strconv.Itoa(commits), strconv.Itoa(med),
			strconv.FormatInt(int64(res.EndTime), 10),
			strconv.Itoa(res.Metrics.MessagesSent), strconv.Itoa(res.Metrics.BytesSent),
		})
	}
}

func summarize(res harness.RiderResult) (maxCommits, medianTx int) {
	var txs []int
	for _, nr := range res.Nodes {
		txs = append(txs, len(nr.Blocks))
		if len(nr.Commits) > maxCommits {
			maxCommits = len(nr.Commits)
		}
	}
	if len(txs) == 0 {
		return 0, 0
	}
	// Insertion sort; tiny slice.
	for i := 1; i < len(txs); i++ {
		for j := i; j > 0 && txs[j] < txs[j-1]; j-- {
			txs[j], txs[j-1] = txs[j-1], txs[j]
		}
	}
	return maxCommits, txs[len(txs)/2]
}
