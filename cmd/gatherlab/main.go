// Command gatherlab runs the gather protocols (Algorithm 1/2 and
// Algorithm 3) on a chosen quorum system and schedule, reporting the
// delivered sets, whether a common core exists, and the cost.
//
// Usage:
//
//	gatherlab -proto constant -system counterexample -schedule adversarial
//	gatherlab -proto three -system threshold -n 7 -f 2 -seeds 5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gather"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

func main() {
	proto := flag.String("proto", "constant", "three | constant")
	system := flag.String("system", "counterexample", "counterexample | threshold")
	n := flag.Int("n", 7, "processes (threshold)")
	f := flag.Int("f", 2, "failure threshold (threshold)")
	schedule := flag.String("schedule", "adversarial", "adversarial | uniform")
	seeds := flag.Int("seeds", 1, "number of seeds to run")
	verbose := flag.Bool("v", false, "print every delivered set")
	flag.Parse()

	var trust quorum.Assumption
	var explicit *quorum.System
	switch *system {
	case "counterexample":
		explicit = quorum.Counterexample()
		trust = explicit
	case "threshold":
		var err error
		explicit, err = quorum.NewThresholdExplicit(*n, *f)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		trust = explicit
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}

	kind := gather.KindConstantRound
	if *proto == "three" {
		kind = gather.KindThreeRound
	}

	var lat sim.LatencyModel = sim.UniformLatency{Min: 1, Max: 50}
	if *schedule == "adversarial" {
		fav := make([]types.Set, explicit.N())
		for i := range fav {
			fav[i] = explicit.Quorums(types.ProcessID(i))[0]
		}
		lat = sim.FavoredLinksLatency{Favored: fav, Fast: 1, Slow: 100000}
	}

	for seed := int64(0); seed < int64(*seeds); seed++ {
		res := gather.RunCluster(gather.RunConfig{
			Kind: kind, Trust: trust, Mode: gather.UsePlain, Latency: lat, Seed: seed,
		})
		core := gather.AnalyzeCommonCore(trust.N(), res.SSnapshots, res.Outputs, types.FullSet(trust.N()))
		fmt.Printf("seed %d: %s gather on %s/%s: delivered=%d/%d commonCore=%v msgs=%d vtime=%d\n",
			seed, kind, *system, *schedule, len(res.Outputs), trust.N(), core,
			res.Metrics.MessagesSent, res.EndTime)
		if *verbose {
			for p := 0; p < trust.N(); p++ {
				if out, ok := res.Outputs[types.ProcessID(p)]; ok {
					fmt.Printf("  %v delivers %v\n", types.ProcessID(p), out.Senders(trust.N()))
				}
			}
		}
	}
}
