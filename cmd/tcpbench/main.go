// Command tcpbench measures TCP transport throughput on a loopback mesh:
// n hosts, full mesh, every host broadcasting FloodMsg payloads through
// the shared binary codec, batched framing and bounded-outbox
// backpressure path (internal/transport). It reports delivered messages
// per second, wire bytes per second, and the achieved batching factor.
//
// Usage:
//
//	tcpbench -n 50 -rounds 200 -size 256
//	tcpbench -n 50 -rounds 200 -size 1024 -compress
//	tcpbench -n 8 -outbox 64
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/transport"
)

func main() {
	n := flag.Int("n", 50, "mesh size (processes)")
	rounds := flag.Int("rounds", 100, "broadcast rounds (each: every host broadcasts once)")
	size := flag.Int("size", 256, "payload padding bytes per message")
	compress := flag.Bool("compress", false, "flate-compress batch frames")
	outbox := flag.Int("outbox", 0, "per-peer outbox bound (0 = default, <0 = unbounded)")
	seed := flag.Int64("seed", 1, "cluster seed")
	timeout := flag.Duration("timeout", 2*time.Minute, "flood deadline")
	flag.Parse()
	if *n < 2 || *rounds < 1 {
		fmt.Fprintln(os.Stderr, "tcpbench: need -n >= 2 and -rounds >= 1")
		os.Exit(2)
	}

	fc, err := transport.NewFloodCluster(*n, transport.LocalClusterConfig{
		Seed:        *seed,
		OutboxLimit: *outbox,
		Compress:    *compress,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fc.Close()
	fmt.Printf("mesh: n=%d (%d TCP connections), payload=%dB, compress=%v, outbox=%d\n",
		*n, *n*(*n-1)/2, *size, *compress, *outbox)

	// One warm-up round keeps connection ramp-up out of the measurement.
	if _, err := fc.Flood(1, *size, *timeout); err != nil {
		log.Fatal(err)
	}

	before := fc.Stats()
	start := time.Now()
	total, err := fc.Flood(*rounds, *size, *timeout)
	elapsed := time.Since(start)
	if err != nil {
		log.Fatal(err)
	}
	after := fc.Stats()

	secs := elapsed.Seconds()
	frames := after.FramesSent - before.FramesSent
	msgsSent := after.MessagesSent - before.MessagesSent
	bytesSent := after.BytesSent - before.BytesSent
	fmt.Printf("flood: %d rounds in %v\n", *rounds, elapsed.Round(time.Millisecond))
	fmt.Printf("delivered: %d msgs (%.0f msgs/s)\n", total, float64(total)/secs)
	fmt.Printf("wire:      %d bytes sent (%.0f bytes/s), %d frames, %.1f msgs/frame\n",
		bytesSent, float64(bytesSent)/secs, frames, float64(msgsSent)/float64(max(frames, 1)))
	if after.WriteErrors != before.WriteErrors || after.EncodeErrors != before.EncodeErrors {
		fmt.Printf("errors:    write=%d encode=%d requeued=%d\n",
			after.WriteErrors, after.EncodeErrors, after.Requeued)
	}
}
