// Command asymvet is the repository's custom static-analysis gate: it
// runs the internal/lint analyzers (asymdeterminism, asymwire,
// asymsizer — see internal/lint's package comment for the contracts they
// enforce) over the given package patterns and exits non-zero on any
// finding.
//
// Usage:
//
//	asymvet [-only name[,name]] [packages...]
//
// Patterns default to ./... relative to the current directory. asymvet
// is a standalone multichecker rather than a `go vet -vettool` plugin —
// the vettool protocol requires golang.org/x/tools, which this build
// does not vendor — so it loads and type-checks packages itself via
// `go list -export`. `make lint` (and through it `make test`) runs it
// tree-wide; stock `go vet` still runs separately for the standard
// analyzers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "asymvet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "asymvet:", err)
		os.Exit(2)
	}
	prog, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asymvet:", err)
		os.Exit(2)
	}
	diags := lint.Run(prog, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "asymvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
