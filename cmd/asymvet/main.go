// Command asymvet is the repository's custom static-analysis gate: it
// runs the internal/lint analyzers (asymdeterminism, asymwire,
// asymsizer, asymbound, asymshare, asymgc — see internal/lint's package
// comment for the contracts they enforce) over the given package
// patterns and exits non-zero on any finding.
//
// Usage:
//
//	asymvet [-only name[,name]] [-json] [-baseline file] [-cache file] [packages...]
//
// Patterns default to ./... relative to the current directory. asymvet
// is a standalone multichecker rather than a `go vet -vettool` plugin —
// the vettool protocol requires golang.org/x/tools, which this build
// does not vendor — so it loads and type-checks packages itself via
// `go list -export`. `make lint` (and through it `make test`) runs it
// tree-wide; stock `go vet` still runs separately for the standard
// analyzers.
//
// -json emits the findings as a JSON array instead of text. -baseline
// takes a file in that same JSON format (typically the -json output of
// an earlier run) and suppresses findings matching an entry's analyzer,
// file, and message — line numbers are ignored so a baseline survives
// unrelated edits; baseline entries that no longer match anything are
// reported as stale on stderr. -cache names a content-hash package
// cache file (see internal/lint/doc.go) so repeat runs skip unchanged
// packages.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	baselinePath := flag.String("baseline", "", "JSON findings file (as produced by -json) whose entries are suppressed")
	cachePath := flag.String("cache", "", "content-hash package cache file (empty: no cache)")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asymvet:", err)
		os.Exit(2)
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "asymvet:", err)
		os.Exit(2)
	}

	var diags []lint.Diagnostic
	if *cachePath != "" {
		diags, _, err = lint.RunCached(wd, *cachePath, analyzers, patterns...)
	} else {
		var prog *lint.Program
		prog, err = lint.Load(wd, patterns...)
		if err == nil {
			diags = lint.Run(prog, analyzers)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "asymvet:", err)
		os.Exit(2)
	}

	if *baselinePath != "" {
		base, err := loadBaseline(*baselinePath, wd)
		if err != nil {
			fmt.Fprintln(os.Stderr, "asymvet:", err)
			os.Exit(2)
		}
		var suppressed, stale int
		diags, suppressed, stale = applyBaseline(diags, wd, base)
		if suppressed > 0 {
			fmt.Fprintf(os.Stderr, "asymvet: %d finding(s) suppressed by baseline\n", suppressed)
		}
		if stale > 0 {
			fmt.Fprintf(os.Stderr, "asymvet: %d stale baseline entry(ies) matched no finding; refresh with -json\n", stale)
		}
	}

	if *jsonOut {
		if err := emitJSON(os.Stdout, diags, wd); err != nil {
			fmt.Fprintln(os.Stderr, "asymvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "asymvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	analyzers := lint.Analyzers()
	if only == "" {
		return analyzers, nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(only, ",") {
		want[strings.TrimSpace(name)] = true
	}
	var sel []*lint.Analyzer
	for _, a := range analyzers {
		if want[a.Name] {
			sel = append(sel, a)
			delete(want, a.Name)
		}
	}
	for name := range want {
		return nil, fmt.Errorf("unknown analyzer %q", name)
	}
	return sel, nil
}

// jsonDiag is the machine-readable finding format shared by -json
// output and -baseline input. File is relative to the working directory
// when possible, so baselines survive checkout moves.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// relFile normalizes a diagnostic's file path for JSON output and
// baseline matching.
func relFile(wd, file string) string {
	if rel, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

func toJSON(diags []lint.Diagnostic, wd string) []jsonDiag {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			Analyzer: d.Analyzer,
			File:     relFile(wd, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	return out
}

func emitJSON(w io.Writer, diags []lint.Diagnostic, wd string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(toJSON(diags, wd))
}

// baselineKey identifies a finding for suppression: analyzer + file +
// message, deliberately excluding the line so unrelated edits above a
// baselined finding do not un-suppress it.
func baselineKey(analyzer, file, message string) string {
	return analyzer + "\x00" + file + "\x00" + message
}

// loadBaseline reads a -json findings file into suppression counts
// (multiplicity matters: two identical findings need two entries).
func loadBaseline(path, wd string) (map[string]int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %v", err)
	}
	var entries []jsonDiag
	if err := json.Unmarshal(b, &entries); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %v", path, err)
	}
	base := map[string]int{}
	for _, e := range entries {
		base[baselineKey(e.Analyzer, relFile(wd, e.File), e.Message)]++
	}
	return base, nil
}

// applyBaseline drops findings covered by the baseline, returning the
// survivors, the suppressed count, and the count of stale baseline
// entries that matched nothing.
func applyBaseline(diags []lint.Diagnostic, wd string, base map[string]int) ([]lint.Diagnostic, int, int) {
	remaining := map[string]int{}
	for k, n := range base {
		remaining[k] = n
	}
	var kept []lint.Diagnostic
	suppressed := 0
	for _, d := range diags {
		key := baselineKey(d.Analyzer, relFile(wd, d.Pos.Filename), d.Message)
		if remaining[key] > 0 {
			remaining[key]--
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	stale := 0
	for _, n := range remaining {
		stale += n
	}
	return kept, suppressed, stale
}
