package main

import (
	"testing"

	"repro/internal/lint"
)

// TestTreeClean runs the full analyzer suite over the repository — the
// same gate `make lint` enforces — and requires zero findings: every
// violation must be fixed or carry an explanatory annotation.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	prog, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	for _, d := range lint.Run(prog, lint.Analyzers()) {
		t.Errorf("%s", d)
	}
}
