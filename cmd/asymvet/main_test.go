package main

import (
	"reflect"
	"testing"

	"repro/internal/lint"
)

// TestTreeClean runs the analyzer suite over the repository — the same
// gate `make lint` enforces — and requires zero findings: every
// violation must be fixed or carry an explanatory annotation. One
// subtest per analyzer over a single shared load, so a regression names
// the contract it broke.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	prog, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	for _, a := range lint.Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			for _, d := range lint.Run(prog, []*lint.Analyzer{a}) {
				t.Errorf("%s", d)
			}
		})
	}
}

func mkDiag(analyzer, file string, line int, msg string) lint.Diagnostic {
	d := lint.Diagnostic{Analyzer: analyzer, Message: msg}
	d.Pos.Filename = file
	d.Pos.Line = line
	d.Pos.Column = 1
	return d
}

func TestApplyBaseline(t *testing.T) {
	wd := "/work"
	diags := []lint.Diagnostic{
		mkDiag("asymgc", "/work/a/a.go", 10, "field leaks"),
		mkDiag("asymgc", "/work/a/a.go", 40, "field leaks"), // duplicate message, different line
		mkDiag("asymbound", "/work/b/b.go", 5, "unchecked"),
	}
	base := map[string]int{
		baselineKey("asymgc", "a/a.go", "field leaks"): 1, // covers only ONE of the two
		baselineKey("asymwire", "c/c.go", "gone"):      1, // stale
	}
	kept, suppressed, stale := applyBaseline(diags, wd, base)
	if suppressed != 1 || stale != 1 {
		t.Fatalf("suppressed=%d stale=%d, want 1 and 1", suppressed, stale)
	}
	if len(kept) != 2 {
		t.Fatalf("kept %d findings, want 2: %v", len(kept), kept)
	}
	// The second asymgc duplicate must survive (multiplicity matters),
	// as must the unrelated asymbound finding.
	if kept[0].Pos.Line != 40 || kept[1].Analyzer != "asymbound" {
		t.Fatalf("wrong survivors: %v", kept)
	}
}

func TestApplyBaselineLineInsensitive(t *testing.T) {
	// A baseline recorded at one line still suppresses the finding after
	// it drifts to another.
	diags := []lint.Diagnostic{mkDiag("asymshare", "/work/x.go", 99, "races")}
	base := map[string]int{baselineKey("asymshare", "x.go", "races"): 1}
	kept, suppressed, stale := applyBaseline(diags, "/work", base)
	if len(kept) != 0 || suppressed != 1 || stale != 0 {
		t.Fatalf("kept=%v suppressed=%d stale=%d", kept, suppressed, stale)
	}
}

func TestToJSONRelativizesPaths(t *testing.T) {
	got := toJSON([]lint.Diagnostic{
		mkDiag("asymgc", "/work/a/a.go", 3, "m"),
		mkDiag("asymgc", "/elsewhere/b.go", 7, "n"),
	}, "/work")
	want := []jsonDiag{
		{Analyzer: "asymgc", File: "a/a.go", Line: 3, Column: 1, Message: "m"},
		{Analyzer: "asymgc", File: "/elsewhere/b.go", Line: 7, Column: 1, Message: "n"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("toJSON:\n got %+v\nwant %+v", got, want)
	}
}

func TestSelectAnalyzers(t *testing.T) {
	sel, err := selectAnalyzers("asymgc, asymbound")
	if err != nil || len(sel) != 2 {
		t.Fatalf("sel=%v err=%v", sel, err)
	}
	if _, err := selectAnalyzers("nosuch"); err == nil {
		t.Fatal("unknown analyzer name must be rejected")
	}
}
