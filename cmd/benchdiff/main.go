// Command benchdiff compares two benchmark recordings produced by
// `make bench` (BENCH_<date>.json, a `go test -json` stream) and fails on
// performance regressions: it exits non-zero if any benchmark's ns/op grew
// by more than -threshold percent, or its allocs/op or B/op grew by more
// than -allocthreshold percent. The allocation gate is what keeps wins
// like the copy-on-write gather snapshots durable: a change that preserves
// ns/op but reintroduces per-event allocation churn fails the diff.
//
// Custom b.ReportMetric pairs are parsed too, and rate metrics — any unit
// ending in "/s" (runs/s, events/s, the service benchmark's msgs/s and
// commits/s) — are gated in the opposite direction: a *drop* beyond
// -threshold percent fails the diff, so a sustained-throughput regression
// cannot hide behind a stable ns/op.
//
// Usage:
//
//	benchdiff -old BENCH_2026-07-01.json -new BENCH_2026-07-26.json
//	benchdiff -threshold 10 -allocthreshold 5
//	benchdiff -allocthreshold -1   # disable the allocation gate
//	benchdiff                      # diffs the two newest BENCH_*.json in -dir
//
// Wired into the build as `make benchcmp`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	oldPath := flag.String("old", "", "baseline recording (default: second-newest BENCH_*.json in -dir)")
	newPath := flag.String("new", "", "candidate recording (default: newest BENCH_*.json in -dir)")
	dir := flag.String("dir", ".", "directory searched when -old/-new are omitted")
	threshold := flag.Float64("threshold", 15, "max allowed ns/op growth in percent")
	allocThreshold := flag.Float64("allocthreshold", 15, "max allowed allocs/op and B/op growth in percent (negative disables)")
	flag.Parse()

	if *oldPath == "" || *newPath == "" {
		o, n, err := latestPair(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *oldPath == "" {
			*oldPath = o
		}
		if *newPath == "" {
			*newPath = n
		}
	}

	oldStats, err := parseRecording(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newStats, err := parseRecording(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("benchdiff: %s -> %s (ns/op threshold %.0f%%, alloc threshold %.0f%%)\n",
		*oldPath, *newPath, *threshold, *allocThreshold)
	regressions, compared, err := compare(os.Stdout, oldStats, newStats, *threshold, *allocThreshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed beyond the thresholds\n", regressions)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmarks compared, no regression beyond thresholds\n", compared)
}

// benchStats is one benchmark's recorded metrics. Bytes/Allocs are -1
// when the recording lacks -benchmem output for that benchmark. Custom
// holds every other <value> <unit> pair on the result line (b.ReportMetric
// output), keyed by unit.
type benchStats struct {
	Ns     float64
	Bytes  float64
	Allocs float64
	Custom map[string]float64
}

// pctDelta is the growth of new over old in percent; growth from zero is
// +Inf (any appearance of allocations on a previously alloc-free path is
// a regression, not a divide error).
func pctDelta(old, new float64) float64 {
	if old == 0 {
		if new <= 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (new - old) / old * 100
}

// compare renders the per-benchmark table and counts regressions beyond
// the thresholds. A negative allocThreshold disables the allocation gate;
// benchmarks missing allocation stats on either side are gated on ns/op
// only.
func compare(w io.Writer, oldStats, newStats map[string]benchStats, nsThreshold, allocThreshold float64) (regressions, compared int, err error) {
	names := make([]string, 0, len(oldStats))
	for name := range oldStats {
		if _, ok := newStats[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return 0, 0, fmt.Errorf("benchdiff: no benchmarks in common")
	}

	for _, name := range names {
		o, n := oldStats[name], newStats[name]
		var markers []string
		nsDelta := pctDelta(o.Ns, n.Ns)
		if nsDelta > nsThreshold {
			markers = append(markers, "ns REGRESSION")
		}
		allocCol := fmt.Sprintf("%8s %8s %8s", "-", "-", "-")
		if o.Allocs >= 0 && n.Allocs >= 0 {
			allocDelta := pctDelta(o.Allocs, n.Allocs)
			allocCol = fmt.Sprintf("%8.0f %8.0f %+7.1f%%", o.Allocs, n.Allocs, allocDelta)
			if allocThreshold >= 0 {
				if allocDelta > allocThreshold {
					markers = append(markers, "allocs REGRESSION")
				}
				if o.Bytes >= 0 && n.Bytes >= 0 && pctDelta(o.Bytes, n.Bytes) > allocThreshold {
					markers = append(markers, "B/op REGRESSION")
				}
			}
		}
		// Rate metrics gate in the opposite direction: dropping below the
		// old recording by more than the ns threshold is the regression.
		for _, unit := range sortedRateUnits(o.Custom, n.Custom) {
			if pctDelta(o.Custom[unit], n.Custom[unit]) < -nsThreshold {
				markers = append(markers, fmt.Sprintf("%s DROP (%.0f -> %.0f)",
					unit, o.Custom[unit], n.Custom[unit]))
			}
		}
		marker := ""
		if len(markers) > 0 {
			marker = "  " + strings.Join(markers, ", ")
			regressions++ // per benchmark, however many metrics tripped
		}
		fmt.Fprintf(w, "%-48s %14.0f %14.0f %+8.1f%%  %s%s\n", name, o.Ns, n.Ns, nsDelta, allocCol, marker)
	}
	for _, name := range sortedDisjoint(newStats, oldStats) {
		fmt.Fprintf(w, "%-48s %14s %14.0f     (new)\n", name, "-", newStats[name].Ns)
	}
	for _, name := range sortedDisjoint(oldStats, newStats) {
		fmt.Fprintf(w, "%-48s %14.0f %14s     (removed)\n", name, oldStats[name].Ns, "-")
	}
	return regressions, len(names), nil
}

// sortedRateUnits returns the "/s"-suffixed units present in both custom
// maps, sorted — the rate metrics the drop gate applies to.
func sortedRateUnits(a, b map[string]float64) []string {
	var units []string
	for unit := range a {
		if _, ok := b[unit]; ok && strings.HasSuffix(unit, "/s") {
			units = append(units, unit)
		}
	}
	sort.Strings(units)
	return units
}

// sortedDisjoint returns the names in a but not in b, sorted — map
// iteration order must not leak into the report.
func sortedDisjoint(a, b map[string]benchStats) []string {
	var names []string
	for name := range a {
		if _, ok := b[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// latestPair returns the two newest BENCH_*.json files by name (the name
// embeds the date, so lexicographic order is chronological).
func latestPair(dir string) (oldest, newest string, err error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", "", err
	}
	if len(matches) < 2 {
		return "", "", fmt.Errorf("benchdiff: need two BENCH_*.json recordings in %s (found %d); pass -old/-new explicitly", dir, len(matches))
	}
	sort.Strings(matches)
	return matches[len(matches)-2], matches[len(matches)-1], nil
}

// cpuSuffix strips the -<GOMAXPROCS> tail go test appends to benchmark
// names, so recordings from differently-sized machines still line up.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseRecording extracts per-benchmark stats from a `go test -json`
// stream. Benchmark result lines can be split across several Output
// events, so the events are concatenated per package before scanning.
func parseRecording(path string) (map[string]benchStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseStream(f, path)
}

func parseStream(f io.Reader, path string) (map[string]benchStats, error) {
	type event struct {
		Action  string
		Package string
		Output  string
	}
	outputs := map[string]*strings.Builder{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("%s: not a go test -json stream: %w", path, err)
		}
		if ev.Action != "output" {
			continue
		}
		b, ok := outputs[ev.Package]
		if !ok {
			b = &strings.Builder{}
			outputs[ev.Package] = b
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	stats := map[string]benchStats{}
	for _, b := range outputs {
		for _, line := range strings.Split(b.String(), "\n") {
			name, s, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			// If a benchmark appears multiple times (-count > 1), keep the
			// per-metric minimum — the standard "best of" noise reduction.
			// Rate metrics (unit "/s") are best when largest, so they fold
			// with max instead.
			if prev, seen := stats[name]; seen {
				s.Ns = math.Min(s.Ns, prev.Ns)
				s.Bytes = minMetric(s.Bytes, prev.Bytes)
				s.Allocs = minMetric(s.Allocs, prev.Allocs)
				s.Custom = foldCustom(prev.Custom, s.Custom)
			}
			stats[name] = s
		}
	}
	if len(stats) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return stats, nil
}

// foldCustom merges custom metrics across -count repetitions: max for
// rate units ("/s", larger is better), min for everything else.
func foldCustom(prev, cur map[string]float64) map[string]float64 {
	if prev == nil {
		return cur
	}
	out := map[string]float64{}
	for unit, v := range prev {
		out[unit] = v
	}
	for unit, v := range cur {
		p, seen := out[unit]
		switch {
		case !seen:
			out[unit] = v
		case strings.HasSuffix(unit, "/s"):
			out[unit] = math.Max(p, v)
		default:
			out[unit] = math.Min(p, v)
		}
	}
	return out
}

// minMetric folds two possibly-absent (-1) metric values.
func minMetric(a, b float64) float64 {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	return math.Min(a, b)
}

// parseBenchLine extracts (name, stats) from one textual benchmark result
// line, e.g.
//
//	BenchmarkFoo-8   	  1234	  56789 ns/op	 512 B/op	 12 allocs/op
//
// B/op and allocs/op are -1 when the line lacks them (no -benchmem).
func parseBenchLine(line string) (string, benchStats, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", benchStats{}, false
	}
	fields := strings.Fields(line)
	s := benchStats{Ns: -1, Bytes: -1, Allocs: -1}
	for i := 2; i < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			continue
		}
		switch fields[i] {
		case "ns/op":
			s.Ns = v
		case "B/op":
			s.Bytes = v
		case "allocs/op":
			s.Allocs = v
		default:
			// A numeric field is a value, not a unit; anything else is a
			// custom b.ReportMetric unit (waves/commit, msgs/s, ...).
			if _, numErr := strconv.ParseFloat(fields[i], 64); numErr == nil {
				continue
			}
			if s.Custom == nil {
				s.Custom = map[string]float64{}
			}
			s.Custom[fields[i]] = v
		}
	}
	if s.Ns < 0 {
		return "", benchStats{}, false
	}
	return cpuSuffix.ReplaceAllString(fields[0], ""), s, true
}
