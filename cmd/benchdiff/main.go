// Command benchdiff compares two benchmark recordings produced by
// `make bench` (BENCH_<date>.json, a `go test -json` stream) and fails on
// performance regressions: it exits non-zero if any benchmark's ns/op
// grew by more than the threshold (default 15%).
//
// Usage:
//
//	benchdiff -old BENCH_2026-07-01.json -new BENCH_2026-07-26.json
//	benchdiff -threshold 10
//	benchdiff            # diffs the two newest BENCH_*.json in -dir
//
// Wired into the build as `make benchcmp`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	oldPath := flag.String("old", "", "baseline recording (default: second-newest BENCH_*.json in -dir)")
	newPath := flag.String("new", "", "candidate recording (default: newest BENCH_*.json in -dir)")
	dir := flag.String("dir", ".", "directory searched when -old/-new are omitted")
	threshold := flag.Float64("threshold", 15, "max allowed ns/op growth in percent")
	flag.Parse()

	if *oldPath == "" || *newPath == "" {
		o, n, err := latestPair(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *oldPath == "" {
			*oldPath = o
		}
		if *newPath == "" {
			*newPath = n
		}
	}

	oldNs, err := parseRecording(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newNs, err := parseRecording(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("benchdiff: %s -> %s (threshold %.0f%%)\n", *oldPath, *newPath, *threshold)
	names := make([]string, 0, len(oldNs))
	for name := range oldNs {
		if _, ok := newNs[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmarks in common")
		os.Exit(2)
	}

	regressions := 0
	for _, name := range names {
		o, n := oldNs[name], newNs[name]
		deltaPct := (n - o) / o * 100
		marker := ""
		if deltaPct > *threshold {
			marker = "  REGRESSION"
			regressions++
		}
		fmt.Printf("%-48s %14.0f %14.0f %+8.1f%%%s\n", name, o, n, deltaPct, marker)
	}
	for name := range newNs {
		if _, ok := oldNs[name]; !ok {
			fmt.Printf("%-48s %14s %14.0f     (new)\n", name, "-", newNs[name])
		}
	}
	for name := range oldNs {
		if _, ok := newNs[name]; !ok {
			fmt.Printf("%-48s %14.0f %14s     (removed)\n", name, oldNs[name], "-")
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed more than %.0f%% in ns/op\n", regressions, *threshold)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmarks compared, no ns/op regression above %.0f%%\n", len(names), *threshold)
}

// latestPair returns the two newest BENCH_*.json files by name (the name
// embeds the date, so lexicographic order is chronological).
func latestPair(dir string) (oldest, newest string, err error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", "", err
	}
	if len(matches) < 2 {
		return "", "", fmt.Errorf("benchdiff: need two BENCH_*.json recordings in %s (found %d); pass -old/-new explicitly", dir, len(matches))
	}
	sort.Strings(matches)
	return matches[len(matches)-2], matches[len(matches)-1], nil
}

// cpuSuffix strips the -<GOMAXPROCS> tail go test appends to benchmark
// names, so recordings from differently-sized machines still line up.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseRecording extracts ns/op per benchmark from a `go test -json`
// stream. Benchmark result lines can be split across several Output
// events, so the events are concatenated per package before scanning. If a
// benchmark appears multiple times (-count > 1), the minimum is kept —
// the standard "best of" noise reduction.
func parseRecording(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	type event struct {
		Action  string
		Package string
		Output  string
	}
	outputs := map[string]*strings.Builder{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("%s: not a go test -json stream: %w", path, err)
		}
		if ev.Action != "output" {
			continue
		}
		b, ok := outputs[ev.Package]
		if !ok {
			b = &strings.Builder{}
			outputs[ev.Package] = b
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	ns := map[string]float64{}
	for _, b := range outputs {
		for _, line := range strings.Split(b.String(), "\n") {
			name, value, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			if prev, seen := ns[name]; !seen || value < prev {
				ns[name] = value
			}
		}
	}
	if len(ns) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return ns, nil
}

// parseBenchLine extracts (name, ns/op) from one textual benchmark result
// line, e.g. "BenchmarkFoo-8   	  1234	  56789 ns/op	 12 B/op".
func parseBenchLine(line string) (string, float64, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", 0, false
	}
	fields := strings.Fields(line)
	for i := 2; i < len(fields); i++ {
		if fields[i] == "ns/op" && i > 0 {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return "", 0, false
			}
			return cpuSuffix.ReplaceAllString(fields[0], ""), v, true
		}
	}
	return "", 0, false
}
