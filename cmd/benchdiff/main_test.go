package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	name, v, ok := parseBenchLine("BenchmarkRiderAsymmetric4-8 \t     100\t  12345678 ns/op\t  42 B/op")
	if !ok || name != "BenchmarkRiderAsymmetric4" || v != 12345678 {
		t.Fatalf("got %q %v %v", name, v, ok)
	}
	if _, _, ok := parseBenchLine("goos: linux"); ok {
		t.Error("non-benchmark line parsed")
	}
	if _, _, ok := parseBenchLine("BenchmarkNoResult"); ok {
		t.Error("result-less benchmark line parsed")
	}
	// Custom metrics after ns/op must not confuse the parser.
	name, v, ok = parseBenchLine("BenchmarkCommitWaves-4 \t 7 \t 99 ns/op \t 1.50 waves/commit")
	if !ok || name != "BenchmarkCommitWaves" || v != 99 {
		t.Fatalf("got %q %v %v", name, v, ok)
	}
}

// writeRecording emits a minimal go test -json stream with one benchmark
// result split across two Output events (as real streams do).
func writeRecording(t *testing.T, path string, ns int) {
	t.Helper()
	content := `{"Action":"output","Package":"repro","Output":"goos: linux\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkSplit-8 \t"}
{"Action":"output","Package":"repro","Output":"     100\t  ` + itoa(ns) + ` ns/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkWhole-8 \t 50 \t 2000 ns/op\n"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestParseRecordingJoinsSplitOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_a.json")
	writeRecording(t, path, 1000)
	ns, err := parseRecording(path)
	if err != nil {
		t.Fatal(err)
	}
	if ns["BenchmarkSplit"] != 1000 || ns["BenchmarkWhole"] != 2000 {
		t.Fatalf("parsed %v", ns)
	}
}

func TestLatestPair(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2026-07-01.json", "BENCH_2026-07-26.json", "BENCH_2026-06-15.json"} {
		writeRecording(t, filepath.Join(dir, name), 100)
	}
	o, n, err := latestPair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(o) != "BENCH_2026-07-01.json" || filepath.Base(n) != "BENCH_2026-07-26.json" {
		t.Fatalf("pair = %s, %s", o, n)
	}
	if _, _, err := latestPair(t.TempDir()); err == nil {
		t.Error("empty dir should error")
	}
}
