package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLineMetrics(t *testing.T) {
	name, s, ok := parseBenchLine("BenchmarkFoo-8   \t  1234\t  56789 ns/op\t 512 B/op\t 12 allocs/op")
	if !ok || name != "BenchmarkFoo" {
		t.Fatalf("parse failed: ok=%v name=%q", ok, name)
	}
	if s.Ns != 56789 || s.Bytes != 512 || s.Allocs != 12 {
		t.Fatalf("stats = %+v", s)
	}

	// Without -benchmem the allocation metrics are marked absent.
	name, s, ok = parseBenchLine("BenchmarkBar-4   \t  99\t  1000 ns/op")
	if !ok || name != "BenchmarkBar" || s.Ns != 1000 {
		t.Fatalf("ns-only parse: ok=%v name=%q stats=%+v", ok, name, s)
	}
	if s.Bytes != -1 || s.Allocs != -1 {
		t.Fatalf("absent metrics not marked: %+v", s)
	}

	// Custom metrics (waves/commit etc.) are captured without confusing
	// the standard columns.
	_, s, ok = parseBenchLine("BenchmarkBaz-8   \t 10\t 5 ns/op\t 3.50 waves/commit\t 7 allocs/op\t 2000 msgs/s")
	if !ok || s.Ns != 5 || s.Allocs != 7 {
		t.Fatalf("custom-metric line: ok=%v stats=%+v", ok, s)
	}
	if s.Custom["waves/commit"] != 3.5 || s.Custom["msgs/s"] != 2000 {
		t.Fatalf("custom metrics not captured: %+v", s.Custom)
	}

	if _, _, ok := parseBenchLine("goos: linux"); ok {
		t.Error("non-benchmark line parsed")
	}
	if _, _, ok := parseBenchLine("BenchmarkNoResult"); ok {
		t.Error("result-less benchmark line parsed")
	}
}

// writeRecording emits a minimal go test -json stream with one benchmark
// result split across two Output events (as real streams do).
func writeRecording(t *testing.T, path string) {
	t.Helper()
	content := `{"Action":"output","Package":"repro","Output":"goos: linux\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkSplit-8 \t"}
{"Action":"output","Package":"repro","Output":"     100\t  1000 ns/op\t 64 B/op\t 4 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkWhole-8 \t 50 \t 2000 ns/op\n"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestParseRecordingJoinsSplitOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_a.json")
	writeRecording(t, path)
	stats, err := parseRecording(path)
	if err != nil {
		t.Fatal(err)
	}
	if s := stats["BenchmarkSplit"]; s.Ns != 1000 || s.Bytes != 64 || s.Allocs != 4 {
		t.Fatalf("split line parsed as %+v", s)
	}
	if s := stats["BenchmarkWhole"]; s.Ns != 2000 || s.Allocs != -1 {
		t.Fatalf("ns-only line parsed as %+v", s)
	}
}

func TestParseStreamBestOfFoldsEachMetric(t *testing.T) {
	// -count > 1 repetition: the per-metric minimum must be kept, even
	// when the minima come from different repetitions.
	stream := `{"Action":"output","Package":"p","Output":"BenchmarkFoo-8   100   200 ns/op   64 B/op   4 allocs/op\n"}
{"Action":"output","Package":"p","Output":"BenchmarkFoo-8   100   150 ns/op   80 B/op   6 allocs/op\n"}
`
	stats, err := parseStream(strings.NewReader(stream), "test")
	if err != nil {
		t.Fatal(err)
	}
	s := stats["BenchmarkFoo"]
	if s.Ns != 150 || s.Bytes != 64 || s.Allocs != 4 {
		t.Fatalf("best-of fold wrong: %+v", s)
	}
}

func TestCompareGatesEachMetric(t *testing.T) {
	oldStats := map[string]benchStats{
		"BenchmarkNs":     {Ns: 100, Bytes: 100, Allocs: 10},
		"BenchmarkAllocs": {Ns: 100, Bytes: 100, Allocs: 10},
		"BenchmarkBytes":  {Ns: 100, Bytes: 100, Allocs: 10},
		"BenchmarkClean":  {Ns: 100, Bytes: 100, Allocs: 10},
		"BenchmarkNoMem":  {Ns: 100, Bytes: -1, Allocs: -1},
	}
	newStats := map[string]benchStats{
		"BenchmarkNs":     {Ns: 200, Bytes: 100, Allocs: 10}, // ns regression
		"BenchmarkAllocs": {Ns: 100, Bytes: 100, Allocs: 30}, // allocs regression
		"BenchmarkBytes":  {Ns: 100, Bytes: 300, Allocs: 10}, // B/op regression
		"BenchmarkClean":  {Ns: 105, Bytes: 101, Allocs: 10}, // within thresholds
		"BenchmarkNoMem":  {Ns: 100, Bytes: -1, Allocs: -1},  // ns gate only
	}
	var out strings.Builder
	regressions, compared, err := compare(&out, oldStats, newStats, 15, 15)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 5 {
		t.Fatalf("compared = %d, want 5", compared)
	}
	if regressions != 3 {
		t.Fatalf("regressions = %d, want 3\n%s", regressions, out.String())
	}
	for _, want := range []string{"ns REGRESSION", "allocs REGRESSION", "B/op REGRESSION"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output lacks %q:\n%s", want, out.String())
		}
	}

	// Disabling the allocation gate leaves only the ns regression.
	regressions, _, err = compare(&strings.Builder{}, oldStats, newStats, 15, -1)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 1 {
		t.Fatalf("with alloc gate off, regressions = %d, want 1", regressions)
	}
}

func TestParseStreamFoldsCustomMetrics(t *testing.T) {
	// Across -count repetitions, rate metrics keep the max (larger is
	// better) while other custom metrics keep the min.
	stream := `{"Action":"output","Package":"p","Output":"BenchmarkFoo-8   100   200 ns/op   3.0 waves/commit   1000 msgs/s\n"}
{"Action":"output","Package":"p","Output":"BenchmarkFoo-8   100   150 ns/op   2.5 waves/commit   900 msgs/s\n"}
`
	stats, err := parseStream(strings.NewReader(stream), "test")
	if err != nil {
		t.Fatal(err)
	}
	c := stats["BenchmarkFoo"].Custom
	if c["msgs/s"] != 1000 || c["waves/commit"] != 2.5 {
		t.Fatalf("custom fold wrong: %+v", c)
	}
}

func TestCompareGatesRateDrops(t *testing.T) {
	oldStats := map[string]benchStats{
		"BenchmarkDrop":   {Ns: 100, Bytes: -1, Allocs: -1, Custom: map[string]float64{"msgs/s": 1000, "p99-vt": 50}},
		"BenchmarkSteady": {Ns: 100, Bytes: -1, Allocs: -1, Custom: map[string]float64{"msgs/s": 1000}},
	}
	newStats := map[string]benchStats{
		// msgs/s halved: a sustained-throughput regression even though
		// ns/op is flat. The non-rate p99-vt metric doubling is NOT gated.
		"BenchmarkDrop":   {Ns: 100, Bytes: -1, Allocs: -1, Custom: map[string]float64{"msgs/s": 500, "p99-vt": 100}},
		"BenchmarkSteady": {Ns: 100, Bytes: -1, Allocs: -1, Custom: map[string]float64{"msgs/s": 990}},
	}
	var out strings.Builder
	regressions, compared, err := compare(&out, oldStats, newStats, 15, 15)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 2 {
		t.Fatalf("compared = %d, want 2", compared)
	}
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", regressions, out.String())
	}
	if !strings.Contains(out.String(), "msgs/s DROP") {
		t.Fatalf("output lacks rate-drop marker:\n%s", out.String())
	}
	// A rate *increase* must never trip the gate.
	regressions, _, err = compare(&strings.Builder{}, newStats, oldStats, 15, 15)
	if err != nil {
		t.Fatal(err)
	}
	if regressions != 0 {
		t.Fatalf("rate increase counted as regression (%d)", regressions)
	}
}

func TestCompareAllocsFromZeroIsRegression(t *testing.T) {
	oldStats := map[string]benchStats{"BenchmarkZero": {Ns: 100, Bytes: 0, Allocs: 0}}
	newStats := map[string]benchStats{"BenchmarkZero": {Ns: 100, Bytes: 16, Allocs: 1}}
	regressions, _, err := compare(&strings.Builder{}, oldStats, newStats, 15, 15)
	if err != nil {
		t.Fatal(err)
	}
	// allocs 0 -> 1 and B/op 0 -> 16 are both infinite growth: the one
	// alloc-free benchmark that starts allocating must fail the gate
	// (counted once, however many of its metrics tripped).
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1", regressions)
	}
	if d := pctDelta(0, 1); !math.IsInf(d, 1) {
		t.Fatalf("pctDelta(0, 1) = %v, want +Inf", d)
	}
	if d := pctDelta(0, 0); d != 0 {
		t.Fatalf("pctDelta(0, 0) = %v, want 0", d)
	}
}

func TestCompareNoCommonBenchmarks(t *testing.T) {
	_, _, err := compare(&strings.Builder{},
		map[string]benchStats{"BenchmarkA": {Ns: 1}},
		map[string]benchStats{"BenchmarkB": {Ns: 1}}, 15, 15)
	if err == nil {
		t.Fatal("disjoint recordings must error")
	}
}

func TestLatestPair(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2026-07-01.json", "BENCH_2026-07-26.json", "BENCH_2026-06-15.json"} {
		writeRecording(t, filepath.Join(dir, name))
	}
	o, n, err := latestPair(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(o) != "BENCH_2026-07-01.json" || filepath.Base(n) != "BENCH_2026-07-26.json" {
		t.Fatalf("pair = %s, %s", o, n)
	}
	if _, _, err := latestPair(t.TempDir()); err == nil {
		t.Error("empty dir should error")
	}
}
