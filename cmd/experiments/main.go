// Command experiments regenerates every figure and quantitative claim of
// the paper "DAG-based Consensus with Asymmetric Trust" (see DESIGN.md's
// experiment index).
//
// Usage:
//
//	experiments -list             list all experiment IDs
//	experiments -run fig4         run one experiment
//	experiments -run all          run everything in paper order
//	experiments -run faults -workers 2
//
// The multi-seed experiments (smallsys, waves, compare, faults) fan their
// runs out over all cores through the sim.Sweep engine; -workers caps the
// pool. Results are identical for every worker count.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	run := flag.String("run", "all", "experiment ID to run, or 'all'")
	workers := flag.Int("workers", 0, "cap sweep parallelism (0 = all cores)")
	deliveryWorkers := flag.Int("delivery-workers", 0, "parallel same-time delivery workers inside each run (0 = serial)")
	flag.Parse()

	harness.DefaultSweepWorkers = *workers
	harness.DefaultDeliveryWorkers = *deliveryWorkers

	if *list {
		for _, e := range harness.AllWithExtensions() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	if *run == "all" {
		for _, e := range harness.AllWithExtensions() {
			banner(e)
			fmt.Println(e.Run())
		}
		return
	}
	e, ok := harness.Find(*run)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *run)
		os.Exit(2)
	}
	banner(e)
	fmt.Println(e.Run())
}

func banner(e harness.Experiment) {
	fmt.Printf("=== %s — %s ===\n", e.ID, e.Title)
}
