package main

import (
	"testing"

	"repro/internal/quorum"
	"repro/internal/types"
)

// TestFirstOrEmpty is the regression test for the -matrix panic: the row
// functions used to index sys.Quorums(p)[0] unguarded, so a process with
// zero quorums crashed the tool. The guarded accessor must fall back to
// the empty set.
func TestFirstOrEmpty(t *testing.T) {
	if got := firstOrEmpty(nil, 5); !got.IsEmpty() || got.UniverseSize() != 5 {
		t.Fatalf("firstOrEmpty(nil) = %v (universe %d), want empty set over 5", got, got.UniverseSize())
	}
	q := types.NewSetOf(5, 1, 3)
	if got := firstOrEmpty([]types.Set{q}, 5); !got.Equal(q) {
		t.Fatalf("firstOrEmpty returned %v, want %v", got, q)
	}
}

// TestBuildSystemKinds smoke-tests every generator the search mode fans
// out over, and that the batch analysis verdicts are sane for them.
func TestBuildSystemKinds(t *testing.T) {
	for _, kind := range []string{"counterexample", "threshold", "federated", "unl", "random"} {
		sys, err := buildSystem(kind, 12, 2, 9, 2, 3)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		a := quorum.AnalyzeSystem(sys)
		if a.TotalQuorums == 0 || a.SmallestQuorum <= 0 {
			t.Fatalf("%s: analysis %+v has no quorums", kind, a)
		}
		if kind == "counterexample" || kind == "threshold" || kind == "random" {
			if !a.Valid {
				t.Fatalf("%s: expected a valid system, got %v", kind, a.Err)
			}
		}
	}
	if _, err := buildSystem("nope", 4, 1, 3, 1, 1); err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestParseSet(t *testing.T) {
	s, err := parseSet("1, 3,17", 30)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(types.NewSetOf(30, 0, 2, 16)) {
		t.Fatalf("parseSet = %v", s)
	}
	if _, err := parseSet("0", 30); err == nil {
		t.Error("out-of-range process must error")
	}
	if _, err := parseSet("x", 30); err == nil {
		t.Error("non-numeric process must error")
	}
}
