// Command quorumtool inspects asymmetric quorum systems: it validates the
// defining properties, checks the B3 condition, computes guilds for a
// hypothetical faulty set, and enumerates minimal kernels.
//
// Usage:
//
//	quorumtool -system counterexample
//	quorumtool -system threshold -n 7 -f 2
//	quorumtool -system federated -n 12 -top 7 -tol 2
//	quorumtool -system counterexample -faulty 3,17,29
//	quorumtool -system random -n 10 -search 500
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

func main() {
	system := flag.String("system", "counterexample", "counterexample | threshold | federated | unl | random")
	n := flag.Int("n", 30, "number of processes (threshold/federated/random)")
	f := flag.Int("f", 1, "failure threshold (threshold)")
	top := flag.Int("top", 7, "top tier size (federated)")
	tol := flag.Int("tol", 2, "top tier fault tolerance (federated)")
	seed := flag.Int64("seed", 1, "generator seed (federated/random)")
	faultyFlag := flag.String("faulty", "", "comma-separated 1-based faulty process list for guild analysis")
	kernels := flag.Bool("kernels", false, "enumerate minimal kernels of p1")
	matrix := flag.Bool("matrix", false, "render the Figure 1 style matrix")
	search := flag.Int("search", 0, "sweep this many generator seeds (starting at -seed) instead of inspecting one system")
	workers := flag.Int("workers", 0, "parallel search workers (0 = GOMAXPROCS)")
	flag.Parse()

	if *search > 0 {
		searchSystems(*system, *n, *f, *top, *tol, *seed, *search, *workers)
		return
	}

	sys, err := buildSystem(*system, *n, *f, *top, *tol, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("system: %s\n", *system)
	fmt.Print(sys.Describe())

	if *matrix {
		fmt.Println(quorum.RenderMatrix(sys.N(), "trust matrix (Q = quorum of row process, F = fail-prone)",
			func(p types.ProcessID) types.Set { return firstOrEmpty(sys.Quorums(p), sys.N()) },
			func(p types.ProcessID) types.Set { return firstOrEmpty(sys.FailProneSets(p), sys.N()) }))
	}

	if *faultyFlag != "" {
		faulty, err := parseSet(*faultyFlag, sys.N())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		wise := sys.Wise(faulty)
		naive := sys.Naive(faulty)
		guild := sys.MaximalGuild(faulty)
		fmt.Printf("faulty: %v\nwise: %v\nnaive: %v\nmaximal guild: %v (size %d)\n",
			faulty, wise, naive, guild, guild.Count())
	}

	if *kernels {
		ks := sys.MinimalKernels(0, 32)
		fmt.Printf("minimal kernels of p1 (up to 32): %d\n", len(ks))
		for _, k := range ks {
			fmt.Printf("  %v\n", k)
		}
	}
}

// searchSystems sweeps generator seeds in parallel (sim.Sweep) and
// tabulates how the family behaves: how many seeds build, how many yield
// valid systems, how many satisfy B3, and the observed range of the
// smallest quorum size c(Q). Each built system is analyzed with the batch
// quorum.AnalyzeSystem API — one evaluator compilation and one sweep per
// system instead of separate Validate/SatisfiesB3/c(Q) passes. The
// aggregation runs in seed order, so the report is identical for every
// worker count.
func searchSystems(kind string, n, f, top, tol int, start int64, count, workers int) {
	type probe struct {
		built bool
		err   error
		a     quorum.Analysis
	}
	res := sim.Sweep(sim.SeedRange(start, count), workers, func(seed int64) probe {
		sys, err := buildSystem(kind, n, f, top, tol, seed)
		if err != nil {
			return probe{err: err}
		}
		return probe{built: true, a: quorum.AnalyzeSystem(sys)}
	})
	if err := res.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	type tally struct {
		built, valid, b3 int
		minQ, maxQ       int
		firstFailedSeed  int64
		firstErr         error
		firstBadSeed     int64
		firstBadWitness  string
	}
	agg := sim.Reduce(res, tally{minQ: 1 << 30, firstFailedSeed: -1, firstBadSeed: -1}, func(acc tally, seed int64, p probe) tally {
		if !p.built {
			if acc.firstFailedSeed < 0 {
				acc.firstFailedSeed, acc.firstErr = seed, p.err
			}
			return acc
		}
		acc.built++
		if p.a.Valid {
			acc.valid++
		}
		if p.a.B3 {
			acc.b3++
		}
		if (!p.a.Valid || !p.a.B3) && acc.firstBadSeed < 0 {
			acc.firstBadSeed = seed
			if !p.a.Valid {
				acc.firstBadWitness = p.a.Err.Error()
			} else {
				acc.firstBadWitness = p.a.B3Witness
			}
		}
		if p.a.TotalQuorums > 0 {
			if p.a.SmallestQuorum < acc.minQ {
				acc.minQ = p.a.SmallestQuorum
			}
			if p.a.SmallestQuorum > acc.maxQ {
				acc.maxQ = p.a.SmallestQuorum
			}
		}
		return acc
	})
	fmt.Printf("search: %s, n=%d, seeds %d..%d\n", kind, n, start, start+int64(count)-1)
	fmt.Printf("built: %d/%d, valid: %d, B3 satisfied: %d\n", agg.built, count, agg.valid, agg.b3)
	if agg.built > 0 && agg.maxQ > 0 {
		fmt.Printf("smallest quorum c(Q): min %d, max %d\n", agg.minQ, agg.maxQ)
	}
	if agg.firstBadSeed >= 0 {
		fmt.Printf("first violation: seed %d (%s)\n", agg.firstBadSeed, agg.firstBadWitness)
	}
	if agg.firstFailedSeed >= 0 {
		fmt.Printf("first failing seed: %d (%v)\n", agg.firstFailedSeed, agg.firstErr)
	}
}

// firstOrEmpty returns the first set of a per-process collection, or the
// empty set over universe n when the collection is empty — a process with
// zero quorums (or fail-prone sets) must render as a blank matrix row,
// not crash the tool.
func firstOrEmpty(sets []types.Set, n int) types.Set {
	if len(sets) > 0 {
		return sets[0]
	}
	return types.NewSet(n)
}

func buildSystem(kind string, n, f, top, tol int, seed int64) (*quorum.System, error) {
	switch kind {
	case "counterexample":
		return quorum.Counterexample(), nil
	case "threshold":
		return quorum.NewThresholdExplicit(n, f)
	case "federated":
		return quorum.NewFederated(quorum.FederatedConfig{
			N: n, TopTier: top, TrustedPeers: 2, Tolerance: tol, Seed: seed,
		})
	case "unl":
		return quorum.NewUNL(quorum.UNLConfig{
			N: n, ListSize: top, Deviation: 1, Tolerance: tol, Seed: seed,
		})
	case "random":
		return quorum.RandomAsymmetric(quorum.RandomAsymmetricConfig{
			N: n, NumSets: 2, MaxFault: max(1, n/5), Seed: seed,
		})
	default:
		return nil, fmt.Errorf("unknown system %q", kind)
	}
}

func parseSet(csv string, n int) (types.Set, error) {
	s := types.NewSet(n)
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return s, fmt.Errorf("bad process number %q: %w", part, err)
		}
		if v < 1 || v > n {
			return s, fmt.Errorf("process %d out of range 1..%d", v, n)
		}
		s.Add(types.ProcessID(v - 1))
	}
	return s, nil
}
