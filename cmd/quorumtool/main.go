// Command quorumtool inspects asymmetric quorum systems: it validates the
// defining properties, checks the B3 condition, computes guilds for a
// hypothetical faulty set, and enumerates minimal kernels.
//
// Usage:
//
//	quorumtool -system counterexample
//	quorumtool -system threshold -n 7 -f 2
//	quorumtool -system federated -n 12 -top 7 -tol 2
//	quorumtool -system counterexample -faulty 3,17,29
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/quorum"
	"repro/internal/types"
)

func main() {
	system := flag.String("system", "counterexample", "counterexample | threshold | federated | unl | random")
	n := flag.Int("n", 30, "number of processes (threshold/federated/random)")
	f := flag.Int("f", 1, "failure threshold (threshold)")
	top := flag.Int("top", 7, "top tier size (federated)")
	tol := flag.Int("tol", 2, "top tier fault tolerance (federated)")
	seed := flag.Int64("seed", 1, "generator seed (federated/random)")
	faultyFlag := flag.String("faulty", "", "comma-separated 1-based faulty process list for guild analysis")
	kernels := flag.Bool("kernels", false, "enumerate minimal kernels of p1")
	matrix := flag.Bool("matrix", false, "render the Figure 1 style matrix")
	flag.Parse()

	sys, err := buildSystem(*system, *n, *f, *top, *tol, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("system: %s\n", *system)
	fmt.Print(sys.Describe())

	if *matrix {
		fmt.Println(quorum.RenderMatrix(sys.N(), "trust matrix (Q = quorum of row process, F = fail-prone)",
			func(p types.ProcessID) types.Set { return sys.Quorums(p)[0] },
			func(p types.ProcessID) types.Set {
				if fps := sys.FailProneSets(p); len(fps) > 0 {
					return fps[0]
				}
				return types.NewSet(sys.N())
			}))
	}

	if *faultyFlag != "" {
		faulty, err := parseSet(*faultyFlag, sys.N())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		wise := sys.Wise(faulty)
		naive := sys.Naive(faulty)
		guild := sys.MaximalGuild(faulty)
		fmt.Printf("faulty: %v\nwise: %v\nnaive: %v\nmaximal guild: %v (size %d)\n",
			faulty, wise, naive, guild, guild.Count())
	}

	if *kernels {
		ks := sys.MinimalKernels(0, 32)
		fmt.Printf("minimal kernels of p1 (up to 32): %d\n", len(ks))
		for _, k := range ks {
			fmt.Printf("  %v\n", k)
		}
	}
}

func buildSystem(kind string, n, f, top, tol int, seed int64) (*quorum.System, error) {
	switch kind {
	case "counterexample":
		return quorum.Counterexample(), nil
	case "threshold":
		return quorum.NewThresholdExplicit(n, f)
	case "federated":
		return quorum.NewFederated(quorum.FederatedConfig{
			N: n, TopTier: top, TrustedPeers: 2, Tolerance: tol, Seed: seed,
		})
	case "unl":
		return quorum.NewUNL(quorum.UNLConfig{
			N: n, ListSize: top, Deviation: 1, Tolerance: tol, Seed: seed,
		})
	case "random":
		return quorum.RandomAsymmetric(quorum.RandomAsymmetricConfig{
			N: n, NumSets: 2, MaxFault: max(1, n/5), Seed: seed,
		})
	default:
		return nil, fmt.Errorf("unknown system %q", kind)
	}
}

func parseSet(csv string, n int) (types.Set, error) {
	s := types.NewSet(n)
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return s, fmt.Errorf("bad process number %q: %w", part, err)
		}
		if v < 1 || v > n {
			return s, fmt.Errorf("process %d out of range 1..%d", v, n)
		}
		s.Add(types.ProcessID(v - 1))
	}
	return s, nil
}
