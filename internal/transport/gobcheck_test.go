package transport

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/dag"
	"repro/internal/rider"
	"repro/internal/types"
)

func TestGobEncodeEnvelope(t *testing.T) {
	RegisterAllWire()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	v := &dag.Vertex{Source: 1, Round: 1, Block: []string{"a"}, StrongEdges: []dag.VertexRef{{Source: 0, Round: 0}}}
	// simulate a broadcast sendMsg via the public Broadcast path is hard; encode VertexPayload in envelope directly
	e := envelope{From: types.ProcessID(1), Msg: rider.VertexPayload{V: v}}
	if err := enc.Encode(e); err != nil {
		t.Fatalf("encode: %v", err)
	}
	dec := gob.NewDecoder(&buf)
	var out envelope
	if err := dec.Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
}
