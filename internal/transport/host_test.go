package transport

import (
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/types"
	"repro/internal/wire"
)

func newTestHost(t *testing.T, self types.ProcessID, n int, cfg HostConfig) *Host {
	t.Helper()
	cfg.Self = self
	cfg.N = n
	cfg.Node = &FloodNode{}
	cfg.Addr = "127.0.0.1:0"
	h, err := NewHostConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return h
}

// readBatchMsgs reads frames from c until count messages have been
// decoded, returning them in arrival order.
func readBatchMsgs(t *testing.T, c net.Conn, count int) []FloodMsg {
	t.Helper()
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	var out []FloodMsg
	var hdr [frameHeaderSize]byte
	var payload []byte
	for len(out) < count {
		typ, p, err := readFrame(c, &hdr, payload)
		if err != nil {
			t.Fatalf("readFrame after %d msgs: %v", len(out), err)
		}
		payload = p
		if typ != frameBatch {
			t.Fatalf("unexpected frame type %#x", typ)
		}
		rest := p
		for len(rest) > 0 {
			sz, r2, err := wire.ReadUvarint(rest)
			if err != nil || sz > uint64(len(r2)) {
				t.Fatalf("bad batch entry: %v", err)
			}
			msg, leftover, err := wire.Decode(r2[:sz])
			if err != nil || len(leftover) != 0 {
				t.Fatalf("decode batch entry: %v", err)
			}
			rest = r2[sz:]
			out = append(out, msg.(FloodMsg))
		}
	}
	return out
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never held")
}

// TestDoubleDialDeduplicated pins the keep-first connection policy: a
// second dial to an already-connected peer is an error, the duplicate is
// closed, and neither side ends up with two writers for one peer.
func TestDoubleDialDeduplicated(t *testing.T) {
	h0 := newTestHost(t, 0, 2, HostConfig{Seed: 1})
	h1 := newTestHost(t, 1, 2, HostConfig{Seed: 2})
	h1.Start()
	if err := h0.Connect(1, h1.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := h0.Connect(1, h1.Addr()); err == nil {
		t.Fatal("second Connect to same peer should fail")
	}
	if got := h0.Connected(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("h0 connected = %v, want [1]", got)
	}
	// h1's acceptor saw both dials; keep-first must leave exactly one.
	waitUntil(t, 2*time.Second, func() bool {
		got := h1.Connected()
		return len(got) == 1 && got[0] == 0
	})
	time.Sleep(50 * time.Millisecond)
	if got := h1.Connected(); len(got) != 1 {
		t.Fatalf("h1 connected = %v after dup dial, want one conn", got)
	}
	// The surviving connection carries traffic.
	env := hostEnv{h: h0}
	env.Send(1, FloodMsg{Seq: 7})
	fn := h1.node.(*FloodNode)
	waitUntil(t, 2*time.Second, func() bool { return fn.Received.Load() == 1 })
}

// TestHelloValidation pins that a connection whose first frame is not a
// well-formed hello for this mesh — bad magic, wrong version, wrong
// cluster size, out-of-range or self peer ID, or not a hello at all — is
// closed without ever being registered.
func TestHelloValidation(t *testing.T) {
	h := newTestHost(t, 0, 4, HostConfig{Seed: 1})

	bad := func(name string, frame []byte) {
		c, err := net.Dial("tcp", h.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Write(frame); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		// The acceptor must close the connection: our read sees EOF.
		_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err != io.EOF {
			t.Fatalf("%s: read = %v, want EOF (conn closed)", name, err)
		}
		if got := h.Connected(); len(got) != 0 {
			t.Fatalf("%s: peer registered from invalid hello: %v", name, got)
		}
	}

	mkFrame := func(typ byte, payload []byte) []byte {
		f := []byte{typ, 0, 0, 0, byte(len(payload))}
		return append(f, payload...)
	}
	badMagic := appendHello(nil, 2, 4)
	badMagic[0] ^= 0xff
	bad("bad magic", mkFrame(frameHello, badMagic))

	badVersion := appendHello(nil, 2, 4)
	badVersion[4]++
	bad("bad version", mkFrame(frameHello, badVersion))

	bad("self id", mkFrame(frameHello, appendHello(nil, 0, 4)))
	bad("out of range", mkFrame(frameHello, appendHello(nil, 9, 4)))
	bad("wrong n", mkFrame(frameHello, appendHello(nil, 2, 5)))
	bad("not a hello", mkFrame(frameBatch, nil))
	bad("truncated", mkFrame(frameHello, []byte{1, 2}))

	// A valid hello does register.
	c, err := net.Dial("tcp", h.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(mkFrame(frameHello, appendHello(nil, 2, 4))); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, func() bool {
		got := h.Connected()
		return len(got) == 1 && got[0] == 2
	})
}

// failingConn passes through to the wrapped conn for the first `allow`
// writes, then fails every write without sending anything.
type failingConn struct {
	net.Conn
	allow  int32
	writes atomic.Int32
}

func (c *failingConn) Write(b []byte) (int, error) {
	if c.writes.Add(1) > c.allow {
		return 0, errors.New("injected write failure")
	}
	return c.Conn.Write(b)
}

// TestWriterRequeueOnError pins satellite 3: when a connection fails
// mid-drain, the writer re-queues the unsent tail (counting it), frees
// the peer slot, and a replacement connection delivers everything that
// was still owed, in order.
func TestWriterRequeueOnError(t *testing.T) {
	h := newTestHost(t, 0, 2, HostConfig{Seed: 1})
	a, b := net.Pipe()
	defer b.Close()
	fc := &failingConn{Conn: a, allow: 1}
	if _, ok := h.registerConn(1, fc); !ok {
		t.Fatal("registerConn refused fresh conn")
	}
	env := hostEnv{h: h}

	// First message goes through the one allowed write.
	env.Send(1, FloodMsg{Seq: 0})
	if got := readBatchMsgs(t, b, 1); got[0].Seq != 0 {
		t.Fatalf("first message Seq = %d, want 0", got[0].Seq)
	}

	// These writes fail; the drained-but-unsent tail must be re-queued,
	// not dropped.
	for seq := uint64(1); seq <= 3; seq++ {
		env.Send(1, FloodMsg{Seq: seq})
	}
	waitUntil(t, 2*time.Second, func() bool {
		return h.PeerStats(1).WriteErrors >= 1 && len(h.Connected()) == 0
	})
	st := h.PeerStats(1)
	if st.Requeued == 0 {
		t.Fatal("no envelopes re-queued after write error")
	}
	waitUntil(t, 2*time.Second, func() bool { return h.outbox[1].len() == 3 })

	// A replacement connection resumes the stream without loss.
	a2, b2 := net.Pipe()
	defer b2.Close()
	if _, ok := h.registerConn(1, a2); !ok {
		t.Fatal("peer slot not freed after writer death")
	}
	got := readBatchMsgs(t, b2, 3)
	for i, m := range got {
		if m.Seq != uint64(i+1) {
			t.Fatalf("replayed message %d has Seq %d, want %d (FIFO broken)", i, m.Seq, i+1)
		}
	}
}

// TestBoundedOutboxBackpressure pins the overflow policy: with a stalled
// reader on the other end, a sender blocks once the bounded outbox is
// full — no drops, no unbounded growth — and resumes when the reader
// drains.
func TestBoundedOutboxBackpressure(t *testing.T) {
	const limit, total = 4, 32
	h := newTestHost(t, 0, 2, HostConfig{Seed: 1, OutboxLimit: limit})
	a, b := net.Pipe() // net.Pipe is unbuffered: an unread peer stalls Write
	defer b.Close()
	if _, ok := h.registerConn(1, a); !ok {
		t.Fatal("registerConn failed")
	}
	env := hostEnv{h: h}
	var sent atomic.Int32
	go func() {
		for i := 0; i < total; i++ {
			env.Send(1, FloodMsg{Seq: uint64(i)})
			sent.Add(1)
		}
	}()
	// The sender must stall: at most `limit` queued plus whatever one
	// drain took before the writer blocked on the unread pipe.
	time.Sleep(150 * time.Millisecond)
	if n := sent.Load(); n >= total {
		t.Fatalf("sender never blocked: %d/%d sent with stalled reader", n, total)
	}
	// Draining the reader releases the backpressure; everything arrives
	// in order with nothing dropped.
	got := readBatchMsgs(t, b, total)
	for i, m := range got {
		if m.Seq != uint64(i) {
			t.Fatalf("message %d has Seq %d (order broken)", i, m.Seq)
		}
	}
	waitUntil(t, 2*time.Second, func() bool { return sent.Load() == total })
}

// TestCloseUnblocksBackpressure pins that Close releases a sender stuck
// on a full outbox instead of deadlocking shutdown.
func TestCloseUnblocksBackpressure(t *testing.T) {
	const limit = 2
	h := newTestHost(t, 0, 2, HostConfig{Seed: 1, OutboxLimit: limit})
	env := hostEnv{h: h}
	unblocked := make(chan struct{})
	go func() {
		for i := 0; i < limit+4; i++ { // no conn: fills, then blocks
			env.Send(1, FloodMsg{Seq: uint64(i)})
		}
		close(unblocked)
	}()
	time.Sleep(50 * time.Millisecond)
	h.Close()
	select {
	case <-unblocked:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock sender stuck in backpressure")
	}
}

// TestFloodCompressed runs a flood over flate-compressed frames.
func TestFloodCompressed(t *testing.T) {
	fc, err := NewFloodCluster(4, LocalClusterConfig{Seed: 5, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	const rounds = 5
	total, err := fc.Flood(rounds, 512, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(rounds * 4 * 4); total != want {
		t.Fatalf("flood delivered %d messages, want %d", total, want)
	}
	s := fc.Stats()
	if s.EncodeErrors != 0 || s.WriteErrors != 0 {
		t.Fatalf("flood hit errors: %+v", s)
	}
	if s.MessagesSent == 0 || s.FramesSent == 0 || s.BytesSent == 0 {
		t.Fatalf("stats not populated: %+v", s)
	}
	if s.FramesSent > s.MessagesSent {
		t.Fatalf("more frames than messages (%d > %d): batching inactive", s.FramesSent, s.MessagesSent)
	}
}
