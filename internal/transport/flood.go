// Flood load harness: a trivial counting node plus a cluster wrapper that
// drives broadcast storms through the real codec/framing/backpressure
// path. This is what the loopback throughput benchmark (and cmd/tcpbench)
// measure; it lives in the package proper so the CLI can reuse it.
package transport

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/wire"
)

// wireTagFlood is FloodMsg's tag (range 60–69: transport tooling).
const wireTagFlood = 60

// FloodMsg is the benchmark payload: a sequence number plus opaque
// padding to dial the per-message wire size.
type FloodMsg struct {
	Seq uint64
	Pad []byte
}

func init() {
	wire.Register(wireTagFlood, FloodMsg{}, wire.Codec{
		Size: func(msg any) (int, bool) {
			m := msg.(FloodMsg)
			return wire.UvarintSize(m.Seq) + wire.BytesSize(m.Pad), true
		},
		Append: func(dst []byte, msg any) ([]byte, error) {
			m := msg.(FloodMsg)
			dst = wire.AppendUvarint(dst, m.Seq)
			return wire.AppendBytes(dst, m.Pad), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			seq, rest, err := wire.ReadUvarint(b)
			if err != nil {
				return nil, b, fmt.Errorf("transport: flood seq: %w", err)
			}
			pad, rest, err := wire.ReadBytes(rest)
			if err != nil {
				return nil, b, fmt.Errorf("transport: flood pad: %w", err)
			}
			return FloodMsg{Seq: seq, Pad: pad}, rest, nil
		},
	})
}

// FloodNode counts every message it receives; it never sends from
// Receive, so all traffic is injected externally via Flood.
type FloodNode struct {
	Received atomic.Uint64
}

func (f *FloodNode) Init(sim.Env) {}

func (f *FloodNode) Receive(_ sim.Env, _ types.ProcessID, _ sim.Message) {
	f.Received.Add(1)
}

// FloodCluster is a loopback mesh of FloodNodes for throughput runs.
type FloodCluster struct {
	*LocalCluster
	Nodes []*FloodNode
}

// NewFloodCluster builds and starts an n-node loopback flood mesh.
func NewFloodCluster(n int, cfg LocalClusterConfig) (*FloodCluster, error) {
	nodes := make([]sim.Node, n)
	raw := make([]*FloodNode, n)
	for i := range nodes {
		fn := &FloodNode{}
		nodes[i] = fn
		raw[i] = fn
	}
	lc, err := NewLocalClusterConfig(nodes, cfg)
	if err != nil {
		return nil, err
	}
	lc.Start()
	return &FloodCluster{LocalCluster: lc, Nodes: raw}, nil
}

// Flood has every host broadcast one FloodMsg with padBytes of padding
// per round, for the given number of rounds, then waits until every node
// has received rounds*n messages (each broadcast reaches all n nodes,
// self included) or the timeout passes. It returns the number of
// messages delivered cluster-wide during this flood.
func (fc *FloodCluster) Flood(rounds, padBytes int, timeout time.Duration) (uint64, error) {
	n := len(fc.Hosts)
	start := make([]uint64, n)
	for i, fn := range fc.Nodes {
		start[i] = fn.Received.Load()
	}
	pad := make([]byte, padBytes)
	rand.New(rand.NewSource(1)).Read(pad)
	for r := 0; r < rounds; r++ {
		for _, h := range fc.Hosts {
			env := hostEnv{h: h}
			env.Broadcast(FloodMsg{Seq: uint64(r), Pad: pad})
		}
	}
	want := uint64(rounds * n)
	deadline := time.Now().Add(timeout)
	for {
		var total uint64
		done := 0
		for i, fn := range fc.Nodes {
			got := fn.Received.Load() - start[i]
			total += got
			if got >= want {
				done++
			}
		}
		if done == n {
			return total, nil
		}
		if time.Now().After(deadline) {
			return total, fmt.Errorf("transport: flood timeout: %d/%d messages delivered",
				total, want*uint64(n))
		}
		time.Sleep(time.Millisecond)
	}
}
