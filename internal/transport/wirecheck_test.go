package transport

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/broadcast"
	"repro/internal/coin"
	"repro/internal/dag"
	"repro/internal/gather"
	"repro/internal/rider"
	"repro/internal/sim"
	"repro/internal/wire"
)

// TestFrameRoundTrip pins the [type][len][payload] frame layout.
func TestFrameRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	payload := []byte("framed payload")
	go func() {
		_, _ = writeFrame(a, nil, frameBatch, payload)
	}()
	var hdr [frameHeaderSize]byte
	_ = b.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, got, err := readFrame(b, &hdr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if typ != frameBatch || !bytes.Equal(got, payload) {
		t.Fatalf("frame round trip: type %#x payload %q", typ, got)
	}
}

// TestFrameRejectsOversizedPayload pins the allocation bound: a forged
// length field beyond maxFramePayload is rejected before any allocation.
func TestFrameRejectsOversizedPayload(t *testing.T) {
	hdr := []byte{frameBatch, 0xff, 0xff, 0xff, 0xff}
	var h [frameHeaderSize]byte
	if _, _, err := readFrame(bytes.NewReader(hdr), &h, nil); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestHelloRoundTripAndRejection pins the hello payload layout and its
// validation failures.
func TestHelloRoundTrip(t *testing.T) {
	b := appendHello(nil, 3, 7)
	from, n, err := parseHello(b)
	if err != nil || from != 3 || n != 7 {
		t.Fatalf("hello round trip: %v %v %v", from, n, err)
	}
	for name, mut := range map[string]func([]byte) []byte{
		"short":       func(b []byte) []byte { return b[:3] },
		"bad magic":   func(b []byte) []byte { b[1] ^= 0x40; return b },
		"bad version": func(b []byte) []byte { b[4]++; return b },
		"truncated":   func(b []byte) []byte { return b[:5] },
	} {
		bad := mut(appendHello(nil, 3, 7))
		if _, _, err := parseHello(bad); err == nil {
			t.Errorf("%s hello accepted", name)
		}
	}
}

// TestEnvelopeSizeMatchesSimMetrics is the transport end of the
// differential wire suite: for each protocol message a consensus node
// actually puts on the wire, the encoded frame a writer emits has
// exactly the length sim.MessageSize charges — the property that makes
// simulated byte metrics equal real wire bytes.
func TestEnvelopeSizeMatchesSimMetrics(t *testing.T) {
	v := &dag.Vertex{
		Source: 1, Round: 2, Block: []string{"tx-a", "tx-b"},
		StrongEdges: []dag.VertexRef{{Source: 0, Round: 1}, {Source: 2, Round: 1}},
		WeakEdges:   []dag.VertexRef{{Source: 3, Round: 0}},
	}
	msgs := []sim.Message{
		rider.VertexPayload{V: v},
		coin.ShareMsg{Wave: 4},
		broadcast.Bytes("payload"),
		gather.Pairs{},
	}
	for _, msg := range msgs {
		enc, err := wire.Marshal(msg)
		if err != nil {
			t.Fatalf("%T: %v", msg, err)
		}
		if got, want := sim.MessageSize(msg), len(enc); got != want {
			t.Errorf("%T: MessageSize %d != encoded length %d", msg, got, want)
		}
		dec, rest, err := wire.Decode(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("%T: decode: %v (rest %d)", msg, err, len(rest))
		}
		re, err := wire.Marshal(dec)
		if err != nil {
			t.Fatalf("%T: re-marshal: %v", msg, err)
		}
		if !bytes.Equal(enc, re) {
			t.Errorf("%T: re-encode not byte-identical", msg)
		}
	}
}

// TestReadLoopClosesOnGarbage pins that a registered peer sending a
// malformed batch gets its connection closed rather than wedging or
// crashing the host.
func TestReadLoopClosesOnGarbage(t *testing.T) {
	h := newTestHost(t, 0, 2, HostConfig{Seed: 1})
	c, err := net.Dial("tcp", h.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hello := appendHello(nil, 1, 2)
	frame := append([]byte{frameHello, 0, 0, 0, byte(len(hello))}, hello...)
	if _, err := c.Write(frame); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, func() bool { return len(h.Connected()) == 1 })
	// A batch whose entry length overruns the payload is a protocol
	// violation; the host must drop the connection.
	if _, err := c.Write([]byte{frameBatch, 0, 0, 0, 1, 0xff}); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("read = %v, want EOF after malformed batch", err)
	}
	waitUntil(t, 2*time.Second, func() bool { return len(h.Connected()) == 0 })
}
