package transport

import (
	"testing"
	"time"

	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/gather"
	"repro/internal/quorum"
	"repro/internal/rider"
	"repro/internal/sim"
	"repro/internal/types"
)

// waitFor polls cond (via Inspect, race-free) until it holds or the
// deadline passes.
func waitFor(t *testing.T, c *LocalCluster, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ok := true
		for _, h := range c.Hosts {
			h.Inspect(func() {
				if !cond() {
					ok = false
				}
			})
			if !ok {
				break
			}
		}
		if ok {
			return true
		}
		time.Sleep(20 * time.Millisecond)
	}
	return false
}

func TestConsensusOverTCP(t *testing.T) {
	n := 4
	trust := quorum.NewThreshold(n, 1)
	cn := coin.NewPRF(7, n)
	nodes := make([]sim.Node, n)
	raw := make([]*core.Node, n)
	for i := range nodes {
		nd := core.NewNode(core.Config{
			Trust:    trust,
			Coin:     cn,
			Workload: rider.SyntheticWorkload{Self: types.ProcessID(i), TxPerBlock: 2},
			MaxRound: 16, // 4 waves
		})
		nodes[i] = nd
		raw[i] = nd
	}
	cluster, err := NewLocalCluster(nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()

	// Wait until every node finished its rounds and committed something.
	ok := waitFor(t, cluster, 15*time.Second, func() bool { return true })
	_ = ok
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		done := 0
		for i, h := range cluster.Hosts {
			var round, decided int
			h.Inspect(func() {
				round = raw[i].Round()
				decided = raw[i].DecidedWave()
			})
			if round >= 16 && decided > 0 {
				done++
			}
		}
		if done == n {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Verify outcomes under Inspect.
	var orders [][]string
	for i, h := range cluster.Hosts {
		var blocks []string
		var decided int
		h.Inspect(func() {
			blocks = raw[i].DeliveredBlocks()
			decided = raw[i].DecidedWave()
		})
		if decided == 0 {
			t.Fatalf("node %d decided nothing over TCP", i)
		}
		if len(blocks) == 0 {
			t.Fatalf("node %d delivered nothing over TCP", i)
		}
		orders = append(orders, blocks)
	}
	// Prefix compatibility (total order).
	longest := 0
	for i := range orders {
		if len(orders[i]) > len(orders[longest]) {
			longest = i
		}
	}
	for i := range orders {
		for k, tx := range orders[i] {
			if orders[longest][k] != tx {
				t.Fatalf("total order violated over TCP: node %d pos %d", i, k)
			}
		}
	}
}

func TestGatherOverTCP(t *testing.T) {
	n := 4
	trust := quorum.NewThreshold(n, 1)
	nodes := make([]sim.Node, n)
	raw := make([]*gather.ConstantRoundNode, n)
	for i := range nodes {
		nd := gather.NewConstantRoundNode(gather.Config{
			Trust: trust,
			Input: gather.InputValue(types.ProcessID(i)),
			Mode:  gather.UseReliable,
		})
		nodes[i] = nd
		raw[i] = nd
	}
	cluster, err := NewLocalCluster(nodes, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		done := 0
		for i, h := range cluster.Hosts {
			var ok bool
			h.Inspect(func() { _, ok = raw[i].Delivered() })
			if ok {
				done++
			}
		}
		if done == n {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, h := range cluster.Hosts {
		var out gather.Pairs
		var ok bool
		h.Inspect(func() { out, ok = raw[i].Delivered() })
		if !ok {
			t.Fatalf("node %d never ag-delivered over TCP", i)
		}
		for src, val := range out.Map() {
			if want := gather.InputValue(src); val != want {
				t.Fatalf("node %d: wrong value for %v: %q", i, src, val)
			}
		}
	}
}

func TestHostCloseIdempotentAndClean(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	nodes := make([]sim.Node, 4)
	for i := range nodes {
		nodes[i] = gather.NewThreeRoundNode(gather.Config{
			Trust: trust, Input: "x", Mode: gather.UseReliable,
		})
	}
	cluster, err := NewLocalCluster(nodes, 3)
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	time.Sleep(50 * time.Millisecond)
	cluster.Close()
	cluster.Close() // idempotent
	// Start after close is a no-op.
	cluster.Hosts[0].Start()
}

func TestConnectBadAddress(t *testing.T) {
	RegisterAllWire()
	h, err := NewHost(0, 2, gather.NewThreeRoundNode(gather.Config{
		Trust: quorum.NewThreshold(4, 1), Input: "x",
	}), "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.Connect(1, "127.0.0.1:1"); err == nil {
		t.Fatal("expected dial error")
	}
}
