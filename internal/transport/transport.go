// Package transport runs the same protocol state machines that the
// simulator drives (sim.Node implementations) over real TCP connections —
// the deployment path for the library, as opposed to the reproducible
// research path of internal/sim.
//
// Topology: a full mesh. Every node listens on a TCP address and dials
// every higher-numbered peer (lower-numbered peers dial it), yielding one
// duplex connection per pair. Frames are gob-encoded envelopes; protocol
// packages register their message types via their RegisterWire functions
// (called by RegisterAllWire).
//
// Concurrency model: each node runs exactly one loop goroutine that
// serializes Init/Receive calls, so the protocol state machines need no
// locking — the same single-threaded discipline the simulator provides.
// Per-connection reader goroutines feed the loop; per-peer writer
// goroutines drain unbounded outboxes (unbounded by design: the protocols
// assume reliable links and a bounded outbox could deadlock the mesh;
// real deployments would add flow control above this layer).
//
// Close tears everything down and waits for every goroutine to exit.
package transport

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/gather"
	"repro/internal/sim"
	"repro/internal/types"
)

// RegisterAllWire registers every protocol message type with encoding/gob.
// Call once before starting a cluster (NewLocalCluster does it for you).
func RegisterAllWire() {
	broadcast.RegisterWire()
	gather.RegisterWire()
	core.RegisterWire()
}

// envelope is the wire frame.
type envelope struct {
	From types.ProcessID
	Msg  sim.Message
}

// Host runs one protocol node over TCP.
type Host struct {
	self  types.ProcessID
	n     int
	node  sim.Node
	epoch time.Time

	listener net.Listener

	mu      sync.Mutex
	conns   map[types.ProcessID]net.Conn
	outbox  map[types.ProcessID]*queue
	rng     *rand.Rand
	started bool
	closed  bool

	inbox chan envelope
	// selfQ holds self-sends. It must be unbounded and separate from
	// inbox: the node loop itself produces these, and blocking on its own
	// bounded inbox would deadlock the loop.
	selfQ *queue
	calls chan func()
	done  chan struct{}
	wg    sync.WaitGroup
}

// queue is an unbounded FIFO with a wakeup channel.
type queue struct {
	mu    sync.Mutex
	items []envelope
	wake  chan struct{}
}

func newQueue() *queue {
	return &queue{wake: make(chan struct{}, 1)}
}

func (q *queue) push(e envelope) {
	q.mu.Lock()
	q.items = append(q.items, e)
	q.mu.Unlock()
	q.signal()
}

// pushFront prepends e; used for the hello frame which must precede any
// queued protocol traffic.
func (q *queue) pushFront(e envelope) {
	q.mu.Lock()
	q.items = append([]envelope{e}, q.items...)
	q.mu.Unlock()
	q.signal()
}

func (q *queue) signal() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

func (q *queue) drain() []envelope {
	q.mu.Lock()
	out := q.items
	q.items = nil
	q.mu.Unlock()
	return out
}

// NewHost creates a host for `node` listening on addr (use "127.0.0.1:0"
// for an ephemeral port). Call Addr to learn the bound address, Connect to
// wire peers, then Start.
func NewHost(self types.ProcessID, n int, node sim.Node, addr string, seed int64) (*Host, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	h := &Host{
		self:     self,
		n:        n,
		node:     node,
		epoch:    time.Now(),
		listener: l,
		conns:    map[types.ProcessID]net.Conn{},
		outbox:   map[types.ProcessID]*queue{},
		rng:      rand.New(rand.NewSource(seed)),
		inbox:    make(chan envelope, 1024),
		selfQ:    newQueue(),
		calls:    make(chan func()),
		done:     make(chan struct{}),
	}
	// Outboxes exist for every peer up front: messages sent before the
	// connection is wired are queued and flushed once it attaches, so the
	// "reliable links" assumption holds from the first Init broadcast.
	for p := 0; p < n; p++ {
		if types.ProcessID(p) != self {
			h.outbox[types.ProcessID(p)] = newQueue()
		}
	}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr returns the listener's address.
func (h *Host) Addr() string { return h.listener.Addr().String() }

// acceptLoop accepts peer connections; the first frame on each connection
// is a hello envelope identifying the peer.
func (h *Host) acceptLoop() {
	defer h.wg.Done()
	for {
		c, err := h.listener.Accept()
		if err != nil {
			return // listener closed
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			dec := gob.NewDecoder(c)
			var hello envelope
			if err := dec.Decode(&hello); err != nil {
				_ = c.Close()
				return
			}
			h.registerConn(hello.From, c)
			h.readLoop(hello.From, dec)
		}()
	}
}

// Connect dials a peer's listener and registers the connection. Only one
// side of each pair should dial (by convention, the lower ID).
func (h *Host) Connect(peer types.ProcessID, addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: dial %v: %w", peer, err)
	}
	// The hello frame identifies us to the acceptor. It travels through
	// the peer's outbox so that exactly one gob encoder ever writes to
	// the connection (a second encoder would resend type definitions and
	// corrupt the stream).
	h.mu.Lock()
	q := h.outbox[peer]
	h.mu.Unlock()
	if q == nil {
		_ = c.Close()
		return fmt.Errorf("transport: unknown peer %v", peer)
	}
	q.pushFront(envelope{From: h.self})
	h.registerConn(peer, c)
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		h.readLoop(peer, gob.NewDecoder(c))
	}()
	return nil
}

// registerConn stores the connection and spawns the writer that drains the
// peer's (pre-existing) outbox.
func (h *Host) registerConn(peer types.ProcessID, c net.Conn) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		_ = c.Close()
		return
	}
	h.conns[peer] = c
	q := h.outbox[peer]
	h.mu.Unlock()
	if q == nil {
		_ = c.Close() // unknown peer ID
		return
	}

	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		enc := gob.NewEncoder(c)
		for {
			// Drain first: messages may have been queued before the
			// connection attached.
			for _, e := range q.drain() {
				if err := enc.Encode(e); err != nil {
					return // connection gone
				}
			}
			select {
			case <-h.done:
				return
			case <-q.wake:
			}
		}
	}()
}

// readLoop decodes envelopes into the inbox until the connection dies.
func (h *Host) readLoop(peer types.ProcessID, dec *gob.Decoder) {
	for {
		var e envelope
		if err := dec.Decode(&e); err != nil {
			return
		}
		e.From = peer // trust the connection, not the frame
		select {
		case h.inbox <- e:
		case <-h.done:
			return
		}
	}
}

// Start launches the node loop: Init, then serialized Receive calls.
// All peers must be connected first.
func (h *Host) Start() {
	h.mu.Lock()
	if h.started || h.closed {
		h.mu.Unlock()
		return
	}
	h.started = true
	h.mu.Unlock()

	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		env := hostEnv{h: h}
		h.node.Init(env)
		for {
			// Self-sends first; Receive may have produced more.
			for _, e := range h.selfQ.drain() {
				h.node.Receive(env, e.From, e.Msg)
			}
			select {
			case <-h.done:
				return
			case e := <-h.inbox:
				h.node.Receive(env, e.From, e.Msg)
			case <-h.selfQ.wake:
			case fn := <-h.calls:
				fn()
			}
		}
	}()
}

// Inspect runs fn on the node goroutine, giving tests race-free access to
// node state. It blocks until fn completes (or the host is closed).
func (h *Host) Inspect(fn func()) {
	done := make(chan struct{})
	select {
	case h.calls <- func() { fn(); close(done) }:
		<-done
	case <-h.done:
	}
}

// Close shuts the host down and waits for all goroutines.
func (h *Host) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	close(h.done)
	_ = h.listener.Close()
	for _, c := range h.conns {
		_ = c.Close()
	}
	h.mu.Unlock()
	h.wg.Wait()
}

// hostEnv adapts the Host to sim.Env for the node.
type hostEnv struct {
	h *Host
}

var _ sim.Env = hostEnv{}

func (e hostEnv) Self() types.ProcessID { return e.h.self }
func (e hostEnv) N() int                { return e.h.n }

// Now returns microseconds since the host started (wall clock; real
// transports have no virtual time).
func (e hostEnv) Now() sim.VirtualTime {
	return sim.VirtualTime(time.Since(e.h.epoch).Microseconds())
}

func (e hostEnv) Rand() *rand.Rand { return e.h.rng }

func (e hostEnv) Send(to types.ProcessID, msg sim.Message) {
	if to == e.h.self {
		// Local delivery via the unbounded self queue (see the field
		// comment: pushing to the bounded inbox from the node loop could
		// deadlock).
		e.h.selfQ.push(envelope{From: e.h.self, Msg: msg})
		return
	}
	e.h.mu.Lock()
	q := e.h.outbox[to]
	e.h.mu.Unlock()
	if q == nil {
		return // peer not connected (crashed or not yet wired)
	}
	q.push(envelope{From: e.h.self, Msg: msg})
}

func (e hostEnv) Broadcast(msg sim.Message) {
	for to := 0; to < e.h.n; to++ {
		e.Send(types.ProcessID(to), msg)
	}
}

// LocalCluster is a convenience harness: n hosts on loopback, fully wired.
type LocalCluster struct {
	Hosts []*Host
}

// NewLocalCluster builds and wires (but does not start) a loopback mesh
// for the given nodes.
func NewLocalCluster(nodes []sim.Node, seed int64) (*LocalCluster, error) {
	RegisterAllWire()
	n := len(nodes)
	hosts := make([]*Host, n)
	for i, nd := range nodes {
		h, err := NewHost(types.ProcessID(i), n, nd, "127.0.0.1:0", seed+int64(i))
		if err != nil {
			for _, prev := range hosts[:i] {
				prev.Close()
			}
			return nil, err
		}
		hosts[i] = h
	}
	// Lower IDs dial higher IDs.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := hosts[i].Connect(types.ProcessID(j), hosts[j].Addr()); err != nil {
				for _, h := range hosts {
					h.Close()
				}
				return nil, err
			}
		}
	}
	return &LocalCluster{Hosts: hosts}, nil
}

// Start launches every host's node loop.
func (c *LocalCluster) Start() {
	for _, h := range c.Hosts {
		h.Start()
	}
}

// Close shuts every host down.
func (c *LocalCluster) Close() {
	for _, h := range c.Hosts {
		h.Close()
	}
}
