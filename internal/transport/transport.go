// Package transport runs the same protocol state machines that the
// simulator drives (sim.Node implementations) over real TCP connections —
// the deployment path for the library, as opposed to the reproducible
// research path of internal/sim.
//
// # Topology
//
// A full mesh: every node listens on a TCP address and dials every
// higher-numbered peer (lower-numbered peers dial it), yielding one duplex
// connection per pair. The dialer's first frame is a hello identifying
// itself; the acceptor validates it (magic, version, matching cluster
// size, peer ID in range and not self) before the connection is
// registered. Registration deduplicates: the first connection for a peer
// wins, later ones are closed on arrival, and Connect reports the
// duplicate as an error — so one peer can never have two writers
// interleaving its FIFO stream.
//
// # Wire format
//
// Frames are length-prefixed binary, not gob: [1-byte type][4-byte
// big-endian payload length][payload]. A hello payload is [magic u32]
// [version u8][uvarint from][uvarint n]. A batch payload is a sequence of
// [uvarint length][message frame] entries, where a message frame is the
// shared binary codec's [uvarint tag][body] (internal/wire) — the same
// encoding sim.MessageSize prices, so simulated byte metrics match real
// wire bytes. Batch payloads are optionally flate-compressed
// (HostConfig.Compress; frame type distinguishes them). The codec is
// stateless per frame, so — unlike the old gob stream — a hello can be
// written directly by the dialer and any writer can resume after a
// reconnect without stream-state corruption.
//
// # Concurrency model
//
// Each node runs exactly one loop goroutine that serializes Init/Receive
// calls, so the protocol state machines need no locking — the same
// single-threaded discipline the simulator provides. Per-connection
// reader goroutines decode frames into the loop's inbox; one per-peer
// writer goroutine drains that peer's outbox into batched frames, one
// Write syscall per frame regardless of how many messages it carries.
//
// # Bounded outboxes and backpressure
//
// Per-peer outboxes are bounded (HostConfig.OutboxLimit, default
// DefaultOutboxLimit). When an outbox is full, Env.Send BLOCKS the node
// loop until the writer drains — explicit backpressure instead of the old
// unbounded queue's silent OOM. Messages are never dropped by the bound.
// The tradeoff is documented honestly: a cycle of nodes all blocked on
// full outboxes to each other can in principle deadlock (the reliable-
// links model has no flow control), which is why the default limit is
// sized far above any per-round protocol burst; deployments that need
// end-to-end flow control add it above this layer. The self-send queue
// stays unbounded — the node loop produces and consumes it itself, so any
// bound there would certainly deadlock.
//
// # Reliability accounting
//
// A writer that hits a mid-drain write error re-queues the unsent tail of
// its batch at the front of the outbox (FIFO preserved, the bound is
// deliberately ignored for re-queues) and unregisters the dead
// connection, so a subsequent Connect resumes the stream without loss —
// the reliable-links contract a reconnect path depends on. Per-peer
// counters (PeerStats) surface frames/messages/bytes written, write
// errors, encode errors and re-queued envelopes.
//
// Close tears everything down, unblocks any sender stuck in backpressure,
// and waits for every goroutine to exit.
package transport

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/gather"
	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/wire"
)

// RegisterAllWire registers every protocol message type with encoding/gob.
// The binary codec this transport actually speaks self-registers at
// package init (internal/wire); this remains for callers that still gob-
// encode protocol values (e.g. tooling persisting gather.Pairs). Safe to
// call multiple times.
func RegisterAllWire() {
	broadcast.RegisterWire()
	gather.RegisterWire()
	core.RegisterWire()
}

// Wire framing. ------------------------------------------------------------

const (
	frameHello byte = 0x01
	frameBatch byte = 0x02
	frameFlate byte = 0x03

	wireMagic   uint32 = 0x61447631 // "aDv1"
	wireVersion byte   = 1

	frameHeaderSize = 5
	// maxFramePayload bounds one frame accepted off the wire (and the
	// decompressed size of a flate batch), so a malicious peer cannot
	// force an arbitrary allocation with a forged length field.
	maxFramePayload = 8 << 20
	// batchSoftLimit closes a batch frame once its payload exceeds this
	// size; a drain larger than that is split across frames, which is
	// also what gives the re-queue path its "unsent tail" granularity.
	batchSoftLimit = 256 << 10
)

// DefaultOutboxLimit is the per-peer outbox bound applied when
// HostConfig.OutboxLimit is 0 — far above any per-round protocol burst,
// so backpressure only engages when a peer genuinely stops draining.
const DefaultOutboxLimit = 4096

// appendHello builds a hello frame payload.
func appendHello(b []byte, from types.ProcessID, n int) []byte {
	b = binary.BigEndian.AppendUint32(b, wireMagic)
	b = append(b, wireVersion)
	b = wire.AppendUvarint(b, uint64(from))
	b = wire.AppendUvarint(b, uint64(n))
	return b
}

// parseHello validates and decodes a hello frame payload.
func parseHello(b []byte) (from types.ProcessID, n int, err error) {
	if len(b) < 5 {
		return 0, 0, wire.ErrTruncated
	}
	if binary.BigEndian.Uint32(b) != wireMagic {
		return 0, 0, fmt.Errorf("transport: bad hello magic")
	}
	if b[4] != wireVersion {
		return 0, 0, fmt.Errorf("transport: wire version %d, want %d", b[4], wireVersion)
	}
	f, rest, err := wire.ReadInt(b[5:], wire.MaxUniverse)
	if err != nil {
		return 0, 0, fmt.Errorf("transport: hello from: %w", err)
	}
	cn, _, err := wire.ReadInt(rest, wire.MaxUniverse)
	if err != nil {
		return 0, 0, fmt.Errorf("transport: hello n: %w", err)
	}
	return types.ProcessID(f), cn, nil
}

// writeFrame assembles [type][len][payload] in buf and writes it with a
// single Write. It returns the (reusable) buffer.
func writeFrame(w io.Writer, buf []byte, typ byte, payload []byte) ([]byte, error) {
	buf = buf[:0]
	buf = append(buf, typ)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return buf, err
}

// readFrame reads one frame, reusing payload's backing array when it is
// large enough. Decoders copy everything they keep, so reuse is safe.
func readFrame(r io.Reader, hdr *[frameHeaderSize]byte, payload []byte) (byte, []byte, error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, payload, err
	}
	typ := hdr[0]
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFramePayload {
		return 0, payload, fmt.Errorf("transport: frame payload %d exceeds limit", n)
	}
	if cap(payload) < int(n) {
		payload = make([]byte, n)
	} else {
		payload = payload[:n]
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, payload, err
	}
	return typ, payload, nil
}

// Host configuration. -------------------------------------------------------

// HostConfig configures one Host.
type HostConfig struct {
	Self types.ProcessID
	N    int
	Node sim.Node
	// Addr is the TCP listen address ("127.0.0.1:0" for ephemeral).
	Addr string
	// Seed seeds the Env.Rand stream handed to the node.
	Seed int64
	// OutboxLimit bounds each per-peer outbox in envelopes; a full outbox
	// blocks the sending node loop (backpressure) until the writer
	// drains. 0 selects DefaultOutboxLimit; negative means unbounded
	// (the legacy behaviour, kept for experiments only).
	OutboxLimit int
	// Compress flate-compresses batch frames. Off by default: loopback
	// and LAN meshes are rarely bandwidth-bound, and the protocol
	// payloads here are small.
	Compress bool
}

// envelope pairs a decoded message with its sender for the node loop.
type envelope struct {
	From types.ProcessID
	Msg  sim.Message
}

// connRec tracks one registered peer connection. stop is closed (once)
// when either side of the connection dies, so the reader's death promptly
// tears down the writer and frees the peer slot for a reconnect — and
// vice versa.
type connRec struct {
	c    net.Conn
	stop chan struct{}
	once *sync.Once
}

// outbox is a FIFO with an optional bound and a writer wakeup channel.
// push blocks while the queue is at its limit (backpressure); requeue
// prepends regardless of the limit (failed-write tails must never be
// dropped); close unblocks every waiter.
type outbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []envelope
	limit  int // <= 0: unbounded
	closed bool
	wake   chan struct{}
}

func newOutbox(limit int) *outbox {
	q := &outbox{limit: limit, wake: make(chan struct{}, 1)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends e, blocking while the queue is full. It reports false when
// the queue was closed (the host is shutting down; the message is
// discarded).
func (q *outbox) push(e envelope) bool {
	q.mu.Lock()
	for q.limit > 0 && len(q.items) >= q.limit && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		q.mu.Unlock()
		return false
	}
	q.items = append(q.items, e)
	q.mu.Unlock()
	q.signal()
	return true
}

// requeue prepends batch (a failed write's unsent tail), ignoring the
// bound: bounded outboxes apply backpressure to new sends, never loss to
// already-accepted ones.
func (q *outbox) requeue(batch []envelope) {
	q.mu.Lock()
	merged := make([]envelope, 0, len(batch)+len(q.items))
	merged = append(merged, batch...)
	merged = append(merged, q.items...)
	q.items = merged
	q.mu.Unlock()
	q.signal()
}

func (q *outbox) signal() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// drain takes the whole queue and wakes any sender blocked on the bound.
func (q *outbox) drain() []envelope {
	q.mu.Lock()
	out := q.items
	q.items = nil
	q.mu.Unlock()
	q.cond.Broadcast()
	return out
}

// len reports the current queue length (tests and stats).
func (q *outbox) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

func (q *outbox) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Stats. --------------------------------------------------------------------

// peerCounters are the per-peer atomic counters behind PeerStats.
type peerCounters struct {
	frames     atomic.Uint64
	msgs       atomic.Uint64
	bytes      atomic.Uint64
	writeErrs  atomic.Uint64
	encodeErrs atomic.Uint64
	requeued   atomic.Uint64
}

// PeerStats is a snapshot of one peer link's writer-side counters.
type PeerStats struct {
	// FramesSent counts batch frames written (one Write syscall each).
	FramesSent uint64
	// MessagesSent and BytesSent count messages and total wire bytes
	// (frame headers included) written to the peer.
	MessagesSent uint64
	BytesSent    uint64
	// WriteErrors counts connection write failures; each one re-queued
	// the unsent tail (Requeued envelopes in total) instead of losing it.
	WriteErrors uint64
	Requeued    uint64
	// EncodeErrors counts messages that could not be encoded (an
	// unregistered type reaching a real transport); such messages are
	// dropped and counted, never silently skipped.
	EncodeErrors uint64
}

// HostStats aggregates a host's traffic counters.
type HostStats struct {
	PeerStats // writer-side totals across all peers
	// MessagesReceived / BytesReceived count decoded inbound traffic
	// (frame headers included in bytes).
	MessagesReceived uint64
	BytesReceived    uint64
}

// Host. ---------------------------------------------------------------------

// Host runs one protocol node over TCP.
type Host struct {
	self     types.ProcessID
	n        int
	node     sim.Node
	epoch    time.Time
	compress bool

	listener net.Listener

	mu      sync.Mutex
	conns   map[types.ProcessID]connRec
	outbox  map[types.ProcessID]*outbox
	rng     *rand.Rand
	started bool
	closed  bool

	stats     []peerCounters
	recvMsgs  atomic.Uint64
	recvBytes atomic.Uint64

	inbox chan envelope
	// selfQ holds self-sends. It must be unbounded and separate from
	// inbox: the node loop itself produces these, and blocking on its own
	// bounded inbox would deadlock the loop.
	selfQ *outbox
	calls chan func()
	done  chan struct{}
	wg    sync.WaitGroup
}

// NewHost creates a host with default limits; see NewHostConfig for the
// full set of knobs. Call Addr to learn the bound address, Connect to
// wire peers, then Start.
func NewHost(self types.ProcessID, n int, node sim.Node, addr string, seed int64) (*Host, error) {
	return NewHostConfig(HostConfig{Self: self, N: n, Node: node, Addr: addr, Seed: seed})
}

// NewHostConfig creates a host for cfg.Node listening on cfg.Addr.
func NewHostConfig(cfg HostConfig) (*Host, error) {
	if cfg.N <= 0 || cfg.Self < 0 || int(cfg.Self) >= cfg.N {
		return nil, fmt.Errorf("transport: self %v out of range for n=%d", cfg.Self, cfg.N)
	}
	limit := cfg.OutboxLimit
	if limit == 0 {
		limit = DefaultOutboxLimit
	}
	l, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	h := &Host{
		self:     cfg.Self,
		n:        cfg.N,
		node:     cfg.Node,
		epoch:    time.Now(),
		compress: cfg.Compress,
		listener: l,
		conns:    map[types.ProcessID]connRec{},
		outbox:   map[types.ProcessID]*outbox{},
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		stats:    make([]peerCounters, cfg.N),
		inbox:    make(chan envelope, 1024),
		selfQ:    newOutbox(0),
		calls:    make(chan func()),
		done:     make(chan struct{}),
	}
	// Outboxes exist for every peer up front: messages sent before the
	// connection is wired are queued and flushed once it attaches, so the
	// "reliable links" assumption holds from the first Init broadcast.
	for p := 0; p < cfg.N; p++ {
		if types.ProcessID(p) != cfg.Self {
			h.outbox[types.ProcessID(p)] = newOutbox(limit)
		}
	}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr returns the listener's address.
func (h *Host) Addr() string { return h.listener.Addr().String() }

// Connected returns the peers with a registered live connection, in
// ascending order (tests and monitoring).
func (h *Host) Connected() []types.ProcessID {
	h.mu.Lock()
	out := make([]types.ProcessID, 0, len(h.conns))
	for p := range h.conns {
		out = append(out, p)
	}
	h.mu.Unlock()
	return types.SortedCopy(out)
}

// PeerStats returns a snapshot of the writer-side counters for one peer.
func (h *Host) PeerStats(peer types.ProcessID) PeerStats {
	if peer < 0 || int(peer) >= h.n {
		return PeerStats{}
	}
	c := &h.stats[peer]
	return PeerStats{
		FramesSent:   c.frames.Load(),
		MessagesSent: c.msgs.Load(),
		BytesSent:    c.bytes.Load(),
		WriteErrors:  c.writeErrs.Load(),
		Requeued:     c.requeued.Load(),
		EncodeErrors: c.encodeErrs.Load(),
	}
}

// Stats returns the host's aggregate traffic counters.
func (h *Host) Stats() HostStats {
	var s HostStats
	for p := range h.stats {
		ps := h.PeerStats(types.ProcessID(p))
		s.FramesSent += ps.FramesSent
		s.MessagesSent += ps.MessagesSent
		s.BytesSent += ps.BytesSent
		s.WriteErrors += ps.WriteErrors
		s.Requeued += ps.Requeued
		s.EncodeErrors += ps.EncodeErrors
	}
	s.MessagesReceived = h.recvMsgs.Load()
	s.BytesReceived = h.recvBytes.Load()
	return s
}

// acceptLoop accepts peer connections; the first frame on each connection
// must be a valid hello identifying the peer, or the connection is
// dropped before anything is registered.
func (h *Host) acceptLoop() {
	defer h.wg.Done()
	for {
		c, err := h.listener.Accept()
		if err != nil {
			return // listener closed
		}
		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			br := bufio.NewReaderSize(c, 64<<10)
			var hdr [frameHeaderSize]byte
			typ, payload, err := readFrame(br, &hdr, nil)
			if err != nil || typ != frameHello {
				_ = c.Close()
				return
			}
			peer, cn, err := parseHello(payload)
			// Validate BEFORE anything touches the connection maps: an
			// out-of-range ID, a self-connection or a mesh-size mismatch
			// never gets registered (and can therefore never leave a
			// stale conn behind for Close to trip over).
			if err != nil || cn != h.n || peer == h.self || int(peer) >= h.n {
				_ = c.Close()
				return
			}
			rec, ok := h.registerConn(peer, c)
			if !ok {
				return // duplicate or shutting down; registerConn closed c
			}
			h.readLoop(peer, br, rec)
		}()
	}
}

// Connect dials a peer's listener, performs the hello handshake, and
// registers the connection. Only one side of each pair should dial (by
// convention, the lower ID); dialing a peer that is already connected is
// an error and the duplicate connection is closed (keep-first).
func (h *Host) Connect(peer types.ProcessID, addr string) error {
	if peer == h.self || peer < 0 || int(peer) >= h.n {
		return fmt.Errorf("transport: unknown peer %v", peer)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("transport: dial %v: %w", peer, err)
	}
	// The codec is stateless per frame, so the hello is written directly
	// here, before any writer exists for the connection — it is
	// guaranteed to be the first bytes on the wire.
	if _, err := writeFrame(c, nil, frameHello, appendHello(nil, h.self, h.n)); err != nil {
		_ = c.Close()
		return fmt.Errorf("transport: hello to %v: %w", peer, err)
	}
	rec, ok := h.registerConn(peer, c)
	if !ok {
		return fmt.Errorf("transport: peer %v already connected", peer)
	}
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		h.readLoop(peer, bufio.NewReaderSize(c, 64<<10), rec)
	}()
	return nil
}

// registerConn stores the connection and spawns the writer that drains
// the peer's (pre-existing) outbox. It reports false — and closes c —
// when the peer already has a live connection (keep-first dedup: a second
// writer draining the same outbox would interleave and reorder the peer's
// FIFO stream) or the host is closing. Callers must have validated peer.
func (h *Host) registerConn(peer types.ProcessID, c net.Conn) (connRec, bool) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		_ = c.Close()
		return connRec{}, false
	}
	if _, dup := h.conns[peer]; dup {
		h.mu.Unlock()
		_ = c.Close()
		return connRec{}, false
	}
	rec := connRec{c: c, stop: make(chan struct{}), once: new(sync.Once)}
	h.conns[peer] = rec
	q := h.outbox[peer]
	h.mu.Unlock()
	h.wg.Add(1)
	go h.writer(peer, rec, q)
	return rec, true
}

// dropConn tears one connection down from either side: closes its stop
// channel (waking the other goroutine), removes it from the conn map if
// it is still the registered connection for peer — so a reconnect can
// attach a fresh one — and closes the socket.
func (h *Host) dropConn(peer types.ProcessID, rec connRec) {
	rec.once.Do(func() { close(rec.stop) })
	h.mu.Lock()
	if cur, ok := h.conns[peer]; ok && cur.c == rec.c {
		delete(h.conns, peer)
	}
	h.mu.Unlock()
	_ = rec.c.Close()
}

// writer drains the peer's outbox into batched frames until the host
// closes or the connection fails. On failure the unsent tail is re-queued
// and the connection unregistered, so a reconnect resumes the stream.
func (h *Host) writer(peer types.ProcessID, rec connRec, q *outbox) {
	defer h.wg.Done()
	defer h.dropConn(peer, rec)
	st := &h.stats[peer]
	var payload, frame []byte
	var fw *flate.Writer
	var fbuf bytes.Buffer
	if h.compress {
		fw, _ = flate.NewWriter(&fbuf, flate.BestSpeed)
	}
	for {
		batch := q.drain()
		if len(batch) > 0 {
			var ok bool
			payload, frame, ok = h.writeBatch(rec.c, st, q, batch, payload, frame, fw, &fbuf)
			if !ok {
				return
			}
		}
		select {
		case <-h.done:
			return
		case <-rec.stop: // reader saw the connection die
			return
		case <-q.wake:
		}
	}
}

// writeBatch encodes batch into one or more frames (each closed once its
// payload exceeds batchSoftLimit) and writes each with a single Write.
// On a write error it re-queues the envelopes of the failed frame and
// everything after it — the "unsent tail" — at the front of the outbox
// and reports false. Unencodable messages are counted and skipped.
func (h *Host) writeBatch(c net.Conn, st *peerCounters, q *outbox, batch []envelope,
	payload, frame []byte, fw *flate.Writer, fbuf *bytes.Buffer) ([]byte, []byte, bool) {
	i := 0
	for i < len(batch) {
		frameStart := i
		payload = payload[:0]
		msgs := 0
		for i < len(batch) && len(payload) < batchSoftLimit {
			msg := batch[i].Msg
			i++
			sz, ok := wire.EncodedSize(msg)
			if !ok {
				st.encodeErrs.Add(1)
				continue
			}
			mark := len(payload)
			payload = wire.AppendUvarint(payload, uint64(sz))
			bodyStart := len(payload)
			var err error
			payload, err = wire.Append(payload, msg)
			if err != nil || len(payload)-bodyStart != sz {
				// Size/Append disagreement would corrupt the stream's
				// length prefixes; drop the message, keep the frame sane.
				payload = payload[:mark]
				st.encodeErrs.Add(1)
				continue
			}
			msgs++
		}
		if msgs == 0 {
			continue
		}
		out := payload
		typ := frameBatch
		if fw != nil {
			fbuf.Reset()
			fw.Reset(fbuf)
			if _, err := fw.Write(payload); err == nil && fw.Close() == nil {
				out = fbuf.Bytes()
				typ = frameFlate
			}
		}
		var err error
		frame, err = writeFrame(c, frame, typ, out)
		if err != nil {
			st.writeErrs.Add(1)
			tail := make([]envelope, len(batch)-frameStart)
			copy(tail, batch[frameStart:])
			st.requeued.Add(uint64(len(tail)))
			q.requeue(tail)
			return payload, frame, false
		}
		st.frames.Add(1)
		st.msgs.Add(uint64(msgs))
		st.bytes.Add(uint64(len(out) + frameHeaderSize))
	}
	return payload, frame, true
}

// readLoop decodes batch frames into the inbox until the connection dies
// or a protocol violation (unknown frame type, malformed batch, oversized
// or bomb-expanding payload) forces the connection closed.
func (h *Host) readLoop(peer types.ProcessID, br *bufio.Reader, rec connRec) {
	defer h.dropConn(peer, rec)
	var hdr [frameHeaderSize]byte
	var payload []byte
	var inflated []byte
	var fr io.ReadCloser
	for {
		var typ byte
		var err error
		typ, payload, err = readFrame(br, &hdr, payload)
		if err != nil {
			return
		}
		body := payload
		switch typ {
		case frameBatch:
		case frameFlate:
			if fr == nil {
				fr = flate.NewReader(bytes.NewReader(payload))
			} else if err := fr.(flate.Resetter).Reset(bytes.NewReader(payload), nil); err != nil {
				return
			}
			inflated = inflated[:0]
			lr := io.LimitReader(fr, maxFramePayload+1)
			buf := make([]byte, 32<<10)
			for {
				n, rerr := lr.Read(buf)
				inflated = append(inflated, buf[:n]...)
				if rerr == io.EOF {
					break
				}
				if rerr != nil {
					return
				}
			}
			if len(inflated) > maxFramePayload {
				return // decompression bomb
			}
			body = inflated
		default:
			return // hello after handshake, or garbage
		}
		h.recvBytes.Add(uint64(len(payload) + frameHeaderSize))
		alive := true
		err = decodeBatch(body, func(msg sim.Message) bool {
			h.recvMsgs.Add(1)
			select {
			case h.inbox <- envelope{From: peer, Msg: msg}:
				return true
			case <-h.done:
				alive = false
				return false
			}
		})
		if err != nil || !alive {
			return
		}
	}
}

// decodeBatch walks a batch frame body — a sequence of [uvarint length]
// [encoded message] records — handing each decoded message to emit. Any
// malformed record (bad varint, length past the body, codec error,
// trailing bytes inside a record) is an error: the sender is broken or
// hostile and the caller drops the connection. emit returning false
// stops the walk early without error.
func decodeBatch(body []byte, emit func(sim.Message) bool) error {
	rest := body
	for len(rest) > 0 {
		sz, r2, err := wire.ReadUvarint(rest)
		if err != nil {
			return fmt.Errorf("transport: batch record length: %w", err)
		}
		if sz > uint64(len(r2)) {
			return fmt.Errorf("transport: batch record length %d exceeds remaining %d bytes", sz, len(r2))
		}
		msg, leftover, err := wire.Decode(r2[:sz])
		if err != nil {
			return fmt.Errorf("transport: batch record: %w", err)
		}
		if len(leftover) != 0 {
			return fmt.Errorf("transport: %d trailing bytes inside batch record", len(leftover))
		}
		rest = r2[sz:]
		if !emit(msg) {
			return nil
		}
	}
	return nil
}

// Start launches the node loop: Init, then serialized Receive calls.
// All peers must be connected first.
func (h *Host) Start() {
	h.mu.Lock()
	if h.started || h.closed {
		h.mu.Unlock()
		return
	}
	h.started = true
	h.mu.Unlock()

	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		env := hostEnv{h: h}
		h.node.Init(env)
		for {
			// Self-sends first; Receive may have produced more.
			for _, e := range h.selfQ.drain() {
				h.node.Receive(env, e.From, e.Msg)
			}
			select {
			case <-h.done:
				return
			case e := <-h.inbox:
				h.node.Receive(env, e.From, e.Msg)
			case <-h.selfQ.wake:
			case fn := <-h.calls:
				fn()
			}
		}
	}()
}

// Inspect runs fn on the node goroutine, giving tests race-free access to
// node state. It blocks until fn completes (or the host is closed).
func (h *Host) Inspect(fn func()) {
	done := make(chan struct{})
	select {
	case h.calls <- func() { fn(); close(done) }:
		<-done
	case <-h.done:
	}
}

// Close shuts the host down, unblocks any sender stuck in outbox
// backpressure, and waits for all goroutines.
func (h *Host) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	close(h.done)
	_ = h.listener.Close()
	for _, rec := range h.conns {
		_ = rec.c.Close()
	}
	for _, q := range h.outbox {
		q.close()
	}
	h.selfQ.close()
	h.mu.Unlock()
	h.wg.Wait()
}

// hostEnv adapts the Host to sim.Env for the node.
type hostEnv struct {
	h *Host
}

var _ sim.Env = hostEnv{}

func (e hostEnv) Self() types.ProcessID { return e.h.self }
func (e hostEnv) N() int                { return e.h.n }

// Now returns microseconds since the host started (wall clock; real
// transports have no virtual time).
func (e hostEnv) Now() sim.VirtualTime {
	return sim.VirtualTime(time.Since(e.h.epoch).Microseconds())
}

func (e hostEnv) Rand() *rand.Rand { return e.h.rng }

// Send enqueues msg for the peer. A full outbox BLOCKS until the writer
// drains (backpressure — see the package comment); a closed host or an
// out-of-range destination drops the message.
func (e hostEnv) Send(to types.ProcessID, msg sim.Message) {
	if to == e.h.self {
		// Local delivery via the unbounded self queue (see the field
		// comment: pushing to the bounded inbox from the node loop could
		// deadlock).
		e.h.selfQ.push(envelope{From: e.h.self, Msg: msg})
		return
	}
	h := e.h
	h.mu.Lock()
	q := h.outbox[to]
	h.mu.Unlock()
	if q == nil {
		return // unknown peer
	}
	q.push(envelope{From: e.h.self, Msg: msg})
}

func (e hostEnv) Broadcast(msg sim.Message) {
	for to := 0; to < e.h.n; to++ {
		e.Send(types.ProcessID(to), msg)
	}
}

// LocalCluster is a convenience harness: n hosts on loopback, fully wired.
type LocalCluster struct {
	Hosts []*Host
}

// LocalClusterConfig configures NewLocalClusterConfig.
type LocalClusterConfig struct {
	Seed int64
	// OutboxLimit and Compress apply to every host (see HostConfig).
	OutboxLimit int
	Compress    bool
}

// NewLocalCluster builds and wires (but does not start) a loopback mesh
// for the given nodes with default limits.
func NewLocalCluster(nodes []sim.Node, seed int64) (*LocalCluster, error) {
	return NewLocalClusterConfig(nodes, LocalClusterConfig{Seed: seed})
}

// NewLocalClusterConfig builds and wires (but does not start) a loopback
// mesh for the given nodes.
func NewLocalClusterConfig(nodes []sim.Node, cfg LocalClusterConfig) (*LocalCluster, error) {
	RegisterAllWire()
	n := len(nodes)
	hosts := make([]*Host, n)
	for i, nd := range nodes {
		h, err := NewHostConfig(HostConfig{
			Self:        types.ProcessID(i),
			N:           n,
			Node:        nd,
			Addr:        "127.0.0.1:0",
			Seed:        cfg.Seed + int64(i),
			OutboxLimit: cfg.OutboxLimit,
			Compress:    cfg.Compress,
		})
		if err != nil {
			for _, prev := range hosts[:i] {
				if prev != nil {
					prev.Close()
				}
			}
			return nil, err
		}
		hosts[i] = h
	}
	// Lower IDs dial higher IDs.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := hosts[i].Connect(types.ProcessID(j), hosts[j].Addr()); err != nil {
				for _, h := range hosts {
					h.Close()
				}
				return nil, err
			}
		}
	}
	return &LocalCluster{Hosts: hosts}, nil
}

// Start launches every host's node loop.
func (c *LocalCluster) Start() {
	for _, h := range c.Hosts {
		h.Start()
	}
}

// Close shuts every host down.
func (c *LocalCluster) Close() {
	for _, h := range c.Hosts {
		h.Close()
	}
}

// Stats sums every host's traffic counters.
func (c *LocalCluster) Stats() HostStats {
	var s HostStats
	for _, h := range c.Hosts {
		hs := h.Stats()
		s.FramesSent += hs.FramesSent
		s.MessagesSent += hs.MessagesSent
		s.BytesSent += hs.BytesSent
		s.WriteErrors += hs.WriteErrors
		s.Requeued += hs.Requeued
		s.EncodeErrors += hs.EncodeErrors
		s.MessagesReceived += hs.MessagesReceived
		s.BytesReceived += hs.BytesReceived
	}
	return s
}
