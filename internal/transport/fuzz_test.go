package transport

import (
	"bytes"
	"testing"

	"repro/internal/sim"
	"repro/internal/wire"
)

// FuzzReadFrame feeds arbitrary byte streams to the frame reader: it
// must never panic, never hand back a payload over maxFramePayload, and
// must report the header's declared length exactly.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{frameBatch, 0, 0, 0, 0})
	f.Add([]byte{frameHello, 0, 0, 0, 3, 1, 2, 3})
	f.Add([]byte{frameBatch, 0xFF, 0xFF, 0xFF, 0xFF}) // length over the limit
	f.Add(func() []byte {
		var buf bytes.Buffer
		b, _ := writeFrame(&buf, nil, frameBatch, []byte("payload"))
		_ = b
		return buf.Bytes()
	}())

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var hdr [frameHeaderSize]byte
		var payload []byte
		for {
			typ, p, err := readFrame(r, &hdr, payload)
			if err != nil {
				return
			}
			payload = p
			if len(p) > maxFramePayload {
				t.Fatalf("frame type %d payload %d bytes exceeds maxFramePayload", typ, len(p))
			}
		}
	})
}

// FuzzParseHello checks the handshake parser: no panic, and any
// accepted hello carries an in-range cluster size.
func FuzzParseHello(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendHello(nil, 3, 7))
	f.Add(appendHello(nil, 0, wire.MaxUniverse))
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x00, 0x00}) // wrong magic

	f.Fuzz(func(t *testing.T, data []byte) {
		from, n, err := parseHello(data)
		if err != nil {
			return
		}
		if n < 0 || n > wire.MaxUniverse {
			t.Fatalf("parseHello accepted cluster size %d", n)
		}
		if int(from) < 0 || int(from) > wire.MaxUniverse {
			t.Fatalf("parseHello accepted process id %d", from)
		}
		// A parsed hello re-encodes to something that parses identically.
		from2, n2, err := parseHello(appendHello(nil, from, n))
		if err != nil || from2 != from || n2 != n {
			t.Fatalf("hello round-trip: (%d,%d) -> (%d,%d), %v", from, n, from2, n2, err)
		}
	})
}

// FuzzDecodeBatch drives the batch-body walker with the real codec
// registry loaded: it must never panic, every emitted message must have
// come from a registered codec (re-marshalable), and a malformed tail
// must surface as an error, not silent truncation.
func FuzzDecodeBatch(f *testing.F) {
	RegisterAllWire()
	seedBatch := func(msgs ...sim.Message) []byte {
		var body []byte
		for _, m := range msgs {
			enc, err := wire.Marshal(m)
			if err != nil {
				f.Fatalf("marshaling seed: %v", err)
			}
			body = wire.AppendUvarint(body, uint64(len(enc)))
			body = append(body, enc...)
		}
		return body
	}
	f.Add([]byte{})
	f.Add(seedBatch(FloodMsg{Seq: 1, Pad: []byte{9, 9}}))
	f.Add(seedBatch(FloodMsg{Seq: 2}, FloodMsg{Seq: 3, Pad: bytes.Repeat([]byte{7}, 100)}))
	f.Add([]byte{0x05, 1, 2})                        // declared length past the body
	f.Add(append(seedBatch(FloodMsg{Seq: 4}), 0x7F)) // valid record then garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		var emitted []sim.Message
		err := decodeBatch(data, func(m sim.Message) bool {
			emitted = append(emitted, m)
			return true
		})
		for _, m := range emitted {
			if _, merr := wire.Marshal(m); merr != nil {
				t.Fatalf("decodeBatch emitted unmarshalable %T: %v", m, merr)
			}
		}
		if err == nil && len(data) > 0 && len(emitted) == 0 {
			t.Fatalf("non-empty body produced no messages and no error")
		}
	})
}
