package transport

import (
	"testing"
	"time"
)

// benchFlood measures broadcast-flood throughput over a loopback mesh:
// every host broadcasts one FloodMsg per round through the real codec,
// batching and backpressure path. Reported metrics are messages and wire
// bytes delivered per second, cluster-wide.
func benchFlood(b *testing.B, n, padBytes int, cfg LocalClusterConfig) {
	fc, err := NewFloodCluster(n, cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer fc.Close()
	// Warm the mesh so connection ramp-up stays outside the timer.
	if _, err := fc.Flood(1, padBytes, 30*time.Second); err != nil {
		b.Fatal(err)
	}
	before := fc.Stats()
	b.ResetTimer()
	start := time.Now()
	total, err := fc.Flood(b.N, padBytes, 10*time.Minute)
	elapsed := time.Since(start)
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	after := fc.Stats()
	secs := elapsed.Seconds()
	if secs > 0 {
		b.ReportMetric(float64(total)/secs, "msgs/s")
		b.ReportMetric(float64(after.BytesSent-before.BytesSent)/secs, "bytes/s")
	}
	if batches := after.FramesSent - before.FramesSent; batches > 0 {
		b.ReportMetric(float64(after.MessagesSent-before.MessagesSent)/float64(batches), "msgs/frame")
	}
}

// BenchmarkLoopbackCluster50 floods a 50-node full mesh (1225 TCP
// connections) with 256-byte payloads — the transport's headline number
// in the benchmark trajectory.
func BenchmarkLoopbackCluster50(b *testing.B) {
	benchFlood(b, 50, 256, LocalClusterConfig{Seed: 1})
}

// BenchmarkLoopbackCluster50Compressed is the same mesh with flate
// compression on batch frames.
func BenchmarkLoopbackCluster50Compressed(b *testing.B) {
	benchFlood(b, 50, 256, LocalClusterConfig{Seed: 1, Compress: true})
}

// BenchmarkLoopbackCluster8 is a small-mesh reference point.
func BenchmarkLoopbackCluster8(b *testing.B) {
	benchFlood(b, 8, 256, LocalClusterConfig{Seed: 1})
}
