// Package acs implements asymmetric Agreement on a Core Set — the
// primitive the paper contrasts with gather in §2.4: where gather only
// guarantees a common core *inside* possibly different outputs, ACS makes
// all processes agree on an *identical* output set. ACS is equivalent to
// consensus, so it costs expected-constant time rather than gather's
// deterministic constant (the paper's point), which this package makes
// concrete and measurable.
//
// Construction (Ben-Or–Kelmer–Rabin composition, asymmetric throughout):
//
//  1. Run the constant-round asymmetric gather (Algorithm 3) on the
//     inputs.
//  2. When the gather ag-delivers U, feed n parallel instances of the
//     asymmetric binary agreement (internal/abba): instance j gets input
//     1 iff (p_j, ·) ∈ U.
//  3. The output is { (p_j, v_j) : instance j decided 1 }, emitted once
//     every instance has decided and the value of every 1-decided process
//     has been arb-delivered (totality guarantees it will be).
//
// Properties: all maximal-guild processes output the same set (per-
// instance agreement + broadcast consistency); the set contains the
// gather's common core, hence the inputs of at least one quorum (every
// wise process inputs 1 for core members, so unanimity-validity of the
// binary agreement forces those instances to 1).
package acs

import (
	"repro/internal/abba"
	"repro/internal/coin"
	"repro/internal/gather"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// Config configures one ACS node.
type Config struct {
	Trust quorum.Assumption
	// Input is this process's proposed value.
	Input string
	// CoinSeed derives the per-instance binary-agreement coins; all nodes
	// of a run must share it.
	CoinSeed int64
	// Mode selects the gather's dissemination layer.
	Mode gather.Dissemination
}

// wrapMsg routes a binary-agreement message to its instance.
type wrapMsg struct {
	Idx   int
	Inner sim.Message
}

// Node is one process running asymmetric ACS.
type Node struct {
	cfg  Config
	self types.ProcessID
	n    int

	g *gather.ConstantRoundNode

	aba     []*abba.Node
	started []bool
	pending [][]pendingMsg // buffered wrapped messages per instance

	output Pairs
	done   bool
}

// Pairs re-exports the gather pair-set for ACS outputs.
type Pairs = gather.Pairs

type pendingMsg struct {
	from types.ProcessID
	msg  sim.Message
}

var _ sim.Node = (*Node)(nil)

// NewNode creates an ACS node; the protocol starts at Init.
func NewNode(cfg Config) *Node {
	return &Node{
		cfg: cfg,
		g: gather.NewConstantRoundNode(gather.Config{
			Trust: cfg.Trust,
			Input: cfg.Input,
			Mode:  cfg.Mode,
		}),
	}
}

// wrapEnv re-wraps every message an instance sends with its index.
type wrapEnv struct {
	sim.Env
	idx int
}

func (w wrapEnv) Send(to types.ProcessID, msg sim.Message) {
	w.Env.Send(to, wrapMsg{Idx: w.idx, Inner: msg})
}

func (w wrapEnv) Broadcast(msg sim.Message) {
	for to := 0; to < w.Env.N(); to++ {
		w.Env.Send(types.ProcessID(to), wrapMsg{Idx: w.idx, Inner: msg})
	}
}

// Init implements sim.Node.
func (n *Node) Init(env sim.Env) {
	n.self = env.Self()
	n.n = env.N()
	n.aba = make([]*abba.Node, n.n)
	n.started = make([]bool, n.n)
	n.pending = make([][]pendingMsg, n.n)
	n.g.Init(env)
	n.afterGather(env)
}

// afterGather starts the binary agreements once the gather delivered.
func (n *Node) afterGather(env sim.Env) {
	u, ok := n.g.Delivered()
	if !ok {
		return
	}
	for j := 0; j < n.n; j++ {
		if n.started[j] {
			continue
		}
		n.started[j] = true
		input := 0
		if u.Contains(types.ProcessID(j)) {
			input = 1
		}
		n.aba[j] = abba.NewNode(abba.Config{
			Trust: n.cfg.Trust,
			Coin:  coin.NewPRF(n.cfg.CoinSeed*1000003+int64(j), n.n),
			Input: input,
		})
		we := wrapEnv{Env: env, idx: j}
		n.aba[j].Init(we)
		for _, pm := range n.pending[j] {
			n.aba[j].Receive(we, pm.from, pm.msg)
		}
		n.pending[j] = nil
	}
	n.tryFinish()
}

// Receive implements sim.Node.
func (n *Node) Receive(env sim.Env, from types.ProcessID, msg sim.Message) {
	if w, ok := msg.(wrapMsg); ok {
		if w.Idx < 0 || w.Idx >= n.n {
			return
		}
		if !n.started[w.Idx] {
			n.pending[w.Idx] = append(n.pending[w.Idx], pendingMsg{from: from, msg: w.Inner})
			return
		}
		n.aba[w.Idx].Receive(wrapEnv{Env: env, idx: w.Idx}, from, w.Inner)
		n.tryFinish()
		return
	}
	n.g.Receive(env, from, msg)
	n.afterGather(env)
	n.tryFinish()
}

// tryFinish assembles the output once every instance decided and all
// 1-decided values are known.
func (n *Node) tryFinish() {
	if n.done || n.aba == nil {
		return
	}
	known := n.g.KnownInputs()
	out := gather.NewPairs(n.n)
	for j := 0; j < n.n; j++ {
		if n.aba[j] == nil {
			return
		}
		d, ok := n.aba[j].Decided()
		if !ok {
			return
		}
		if d == 1 {
			v, have := known.Get(types.ProcessID(j))
			if !have {
				return // value not yet arb-delivered; totality will bring it
			}
			out.Set(types.ProcessID(j), v)
		}
	}
	n.output = out
	n.done = true
}

// Output returns the agreed core set, if the protocol finished.
func (n *Node) Output() (Pairs, bool) {
	if !n.done {
		return Pairs{}, false
	}
	return n.output, true
}

// RunCluster executes one ACS instance across trust.N() simulated
// processes; process p proposes gather.InputValue(p).
func RunCluster(trust quorum.Assumption, mode gather.Dissemination, latency sim.LatencyModel, seed, coinSeed int64, faulty map[types.ProcessID]sim.Node) map[types.ProcessID]Pairs {
	n := trust.N()
	nodes := make([]sim.Node, n)
	raw := make([]*Node, n)
	for i := range nodes {
		nd := NewNode(Config{
			Trust:    trust,
			Input:    gather.InputValue(types.ProcessID(i)),
			CoinSeed: coinSeed,
			Mode:     mode,
		})
		nodes[i] = nd
		raw[i] = nd
	}
	for p, f := range faulty {
		nodes[p] = f
		raw[p] = nil
	}
	if latency == nil {
		latency = sim.UniformLatency{Min: 1, Max: 20}
	}
	r := sim.NewRunner(sim.Config{N: n, Seed: seed, Latency: latency}, nodes)
	r.Run(0)
	out := map[types.ProcessID]Pairs{}
	for i, nd := range raw {
		if nd == nil {
			continue
		}
		if o, ok := nd.Output(); ok {
			out[types.ProcessID(i)] = o
		}
	}
	return out
}
