// Package acs implements asymmetric Agreement on a Core Set — the
// primitive the paper contrasts with gather in §2.4: where gather only
// guarantees a common core *inside* possibly different outputs, ACS makes
// all processes agree on an *identical* output set. ACS is equivalent to
// consensus, so it costs expected-constant time rather than gather's
// deterministic constant (the paper's point), which this package makes
// concrete and measurable.
//
// Construction (Ben-Or–Kelmer–Rabin composition, asymmetric throughout):
//
//  1. Run the constant-round asymmetric gather (Algorithm 3) on the
//     inputs.
//  2. When the gather ag-delivers U, feed n parallel instances of the
//     asymmetric binary agreement (internal/abba): instance j gets input
//     1 iff (p_j, ·) ∈ U.
//  3. The output is { (p_j, v_j) : instance j decided 1 }, emitted once
//     every instance has decided and the value of every 1-decided process
//     has been arb-delivered (totality guarantees it will be).
//
// Properties: all maximal-guild processes output the same set (per-
// instance agreement + broadcast consistency); the set contains the
// gather's common core, hence the inputs of at least one quorum (every
// wise process inputs 1 for core members, so unanimity-validity of the
// binary agreement forces those instances to 1).
package acs

import (
	"fmt"
	"reflect"
	"sync"

	"repro/internal/abba"
	"repro/internal/coin"
	"repro/internal/gather"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// Config configures one ACS node.
type Config struct {
	Trust quorum.Assumption
	// Input is this process's proposed value.
	Input string
	// CoinSeed derives the per-instance binary-agreement coins; all nodes
	// of a run must share it.
	CoinSeed int64
	// Mode selects the gather's dissemination layer.
	Mode gather.Dissemination
}

// wrapMsg routes a binary-agreement message to its instance.
type wrapMsg struct {
	Idx   int
	Inner sim.Message
}

// wrapHeaderSize is the envelope overhead charged per wrapped message: a
// two-byte instance index.
const wrapHeaderSize = 2

// SimSize implements sim.Sizer: the inner payload's size plus the index
// header. Without this, every wrapped binary-agreement message counted as
// 1 byte towards BytesSent no matter how large the inner payload was,
// silently deflating every ACS bandwidth figure.
//
//lint:sizer-fallback the codec reports unencodable for unregistered inner messages, so this approximation is still consulted
func (w wrapMsg) SimSize() int { return wrapHeaderSize + sim.MessageSize(w.Inner) }

// SimType implements sim.Typer: wrapped traffic is attributed to its
// binary-agreement instance and inner message type. Without this, all n
// parallel instances lumped into a single "acs.wrapMsg" ByType bucket,
// hiding which instances dominated the traffic.
func (w wrapMsg) SimType() string {
	key := wrapLabelKey{idx: w.Idx, t: reflect.TypeOf(w.Inner)}
	if v, ok := wrapLabels.Load(key); ok {
		return v.(string)
	}
	label := fmt.Sprintf("acs[%d]/%T", w.Idx, w.Inner)
	wrapLabels.Store(key, label)
	return label
}

// wrapLabels caches the (instance, inner type) → label strings: the
// runner resolves SimType once per fan-out, and formatting it each time
// showed up in ACS profiles. The cache is package-global (labels are
// pure functions of the key) and concurrent-safe for parallel sweeps.
var wrapLabels sync.Map

type wrapLabelKey struct {
	idx int
	t   reflect.Type
}

// Node is one process running asymmetric ACS.
type Node struct {
	cfg  Config
	self types.ProcessID
	n    int

	g *gather.ConstantRoundNode

	aba     []*abba.Node
	started []bool
	pending [][]pendingMsg // buffered wrapped messages per instance

	output Pairs
	done   bool
}

// Pairs re-exports the gather pair-set for ACS outputs.
type Pairs = gather.Pairs

type pendingMsg struct {
	from types.ProcessID
	msg  sim.Message
}

var _ sim.Node = (*Node)(nil)

// NewNode creates an ACS node; the protocol starts at Init.
func NewNode(cfg Config) *Node {
	return &Node{
		cfg: cfg,
		g: gather.NewConstantRoundNode(gather.Config{
			Trust: cfg.Trust,
			Input: cfg.Input,
			Mode:  cfg.Mode,
		}),
	}
}

// wrapEnv re-wraps every message an instance sends with its index.
type wrapEnv struct {
	sim.Env
	idx int
}

func (w wrapEnv) Send(to types.ProcessID, msg sim.Message) {
	w.Env.Send(to, wrapMsg{Idx: w.idx, Inner: msg})
}

// Broadcast wraps once and hands the fan-out to the simulator's pooled
// broadcast fast path (one type-counter/SimSize resolution per fan-out).
// The wrapped message is identical for every destination, so this is
// observably the same as the per-destination Send loop it replaces — the
// runner still applies the drop filter, the latency draw and the sequence
// number per destination, in destination order.
func (w wrapEnv) Broadcast(msg sim.Message) {
	w.Env.Broadcast(wrapMsg{Idx: w.idx, Inner: msg})
}

// Init implements sim.Node.
func (n *Node) Init(env sim.Env) {
	n.self = env.Self()
	n.n = env.N()
	n.aba = make([]*abba.Node, n.n)
	n.started = make([]bool, n.n)
	n.pending = make([][]pendingMsg, n.n)
	n.g.Init(env)
	n.afterGather(env)
}

// afterGather starts the binary agreements once the gather delivered.
func (n *Node) afterGather(env sim.Env) {
	u, ok := n.g.Delivered()
	if !ok {
		return
	}
	for j := 0; j < n.n; j++ {
		if n.started[j] {
			continue
		}
		n.started[j] = true
		input := 0
		if u.Contains(types.ProcessID(j)) {
			input = 1
		}
		n.aba[j] = abba.NewNode(abba.Config{
			Trust: n.cfg.Trust,
			Coin:  coin.NewPRF(n.cfg.CoinSeed*1000003+int64(j), n.n),
			Input: input,
		})
		we := wrapEnv{Env: env, idx: j}
		n.aba[j].Init(we)
		for _, pm := range n.pending[j] {
			n.aba[j].Receive(we, pm.from, pm.msg)
		}
		n.pending[j] = nil
	}
	n.tryFinish()
}

// Receive implements sim.Node.
func (n *Node) Receive(env sim.Env, from types.ProcessID, msg sim.Message) {
	if w, ok := msg.(wrapMsg); ok {
		if w.Idx < 0 || w.Idx >= n.n {
			return
		}
		if !n.started[w.Idx] {
			n.pending[w.Idx] = append(n.pending[w.Idx], pendingMsg{from: from, msg: w.Inner})
			return
		}
		n.aba[w.Idx].Receive(wrapEnv{Env: env, idx: w.Idx}, from, w.Inner)
		n.tryFinish()
		return
	}
	n.g.Receive(env, from, msg)
	n.afterGather(env)
	n.tryFinish()
}

// tryFinish assembles the output once every instance decided and all
// 1-decided values are known.
func (n *Node) tryFinish() {
	if n.done || n.aba == nil {
		return
	}
	known := n.g.KnownInputs()
	out := gather.NewPairs(n.n)
	for j := 0; j < n.n; j++ {
		if n.aba[j] == nil {
			return
		}
		d, ok := n.aba[j].Decided()
		if !ok {
			return
		}
		if d == 1 {
			v, have := known.Get(types.ProcessID(j))
			if !have {
				return // value not yet arb-delivered; totality will bring it
			}
			out.Set(types.ProcessID(j), v)
		}
	}
	n.output = out
	n.done = true
}

// Output returns the agreed core set, if the protocol finished.
func (n *Node) Output() (Pairs, bool) {
	if !n.done {
		return Pairs{}, false
	}
	return n.output, true
}

// RunConfig configures one whole-cluster ACS execution for Run.
type RunConfig struct {
	Trust quorum.Assumption
	// Mode selects the gather's dissemination layer.
	Mode gather.Dissemination
	// Latency is the network model (default uniform 1..20).
	Latency sim.LatencyModel
	// Seed drives the network schedule; CoinSeed the per-instance coins.
	Seed, CoinSeed int64
	// Faulty replaces the given processes with faulty behaviours.
	Faulty map[types.ProcessID]sim.Node
	// Fault is an optional scenario fault plane (see sim.FaultPlane).
	Fault sim.FaultPlane
	// DeliveryWorkers opts the run into the simulator's parallel
	// same-time delivery (0 = serial; see sim.Config.DeliveryWorkers).
	DeliveryWorkers int
	// MaxEvents bounds the simulation (0 = the generous
	// sim.DefaultEventBudget, < 0 = unbounded) — the convention shared
	// with harness.RiderConfig and asymdag.ClusterConfig. RunResult
	// reports a truncated run via HitLimit.
	MaxEvents int
}

// RunResult is the observable outcome of one ACS cluster execution.
type RunResult struct {
	// Outputs maps each finished correct process to its agreed core set.
	Outputs map[types.ProcessID]Pairs
	Metrics *sim.Metrics
	EndTime sim.VirtualTime
	// HitLimit reports that the run stopped at the MaxEvents budget with
	// deliveries still pending, instead of reaching quiescence.
	HitLimit bool
}

// Run executes one ACS instance across cfg.Trust.N() simulated processes;
// process p proposes gather.InputValue(p).
func Run(cfg RunConfig) RunResult {
	n := cfg.Trust.N()
	nodes := make([]sim.Node, n)
	raw := make([]*Node, n)
	for i := range nodes {
		nd := NewNode(Config{
			Trust:    cfg.Trust,
			Input:    gather.InputValue(types.ProcessID(i)),
			CoinSeed: cfg.CoinSeed,
			Mode:     cfg.Mode,
		})
		nodes[i] = nd
		raw[i] = nd
	}
	for p, f := range cfg.Faulty {
		nodes[p] = f
		raw[p] = nil
	}
	if cfg.Latency == nil {
		cfg.Latency = sim.UniformLatency{Min: 1, Max: 20}
	}
	limit := sim.ResolveEventBudget(cfg.MaxEvents)
	r := sim.NewRunner(sim.Config{
		N: n, Seed: cfg.Seed, Latency: cfg.Latency, Fault: cfg.Fault,
		DeliveryWorkers: cfg.DeliveryWorkers,
	}, nodes)
	r.Run(limit)
	res := RunResult{
		Outputs:  map[types.ProcessID]Pairs{},
		Metrics:  r.Metrics(),
		EndTime:  r.Now(),
		HitLimit: limit > 0 && r.Pending() > 0,
	}
	for i, nd := range raw {
		if nd == nil {
			continue
		}
		if o, ok := nd.Output(); ok {
			res.Outputs[types.ProcessID(i)] = o
		}
	}
	return res
}

// RunCluster executes one ACS instance and returns only the outputs — the
// original convenience signature, retained for callers that don't need
// metrics or the parallel-delivery knob.
func RunCluster(trust quorum.Assumption, mode gather.Dissemination, latency sim.LatencyModel, seed, coinSeed int64, faulty map[types.ProcessID]sim.Node) map[types.ProcessID]Pairs {
	return Run(RunConfig{
		Trust: trust, Mode: mode, Latency: latency,
		Seed: seed, CoinSeed: coinSeed, Faulty: faulty,
	}).Outputs
}
