package acs

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/broadcast"
	"repro/internal/gather"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/types"
	"repro/internal/wire"
)

// TestWrapMsgWireRoundTrip pins the nested-frame envelope codec: the body
// is [idx][complete inner frame], so any registered inner type survives
// the trip without acs enumerating it.
func TestWrapMsgWireRoundTrip(t *testing.T) {
	inner := []sim.Message{
		broadcast.Bytes("acs payload"),
		broadcast.Bytes(""),
	}
	for _, in := range inner {
		msg := wrapMsg{Idx: 3, Inner: in}
		enc, err := wire.Marshal(msg)
		if err != nil {
			t.Fatalf("inner %T: marshal: %v", in, err)
		}
		sz, ok := wire.EncodedSize(msg)
		if !ok || sz != len(enc) {
			t.Fatalf("inner %T: EncodedSize %d/%v != %d", in, sz, ok, len(enc))
		}
		dec, rest, err := wire.Decode(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("inner %T: decode: %v", in, err)
		}
		if !reflect.DeepEqual(dec, msg) {
			t.Fatalf("round trip mutated %#v into %#v", msg, dec)
		}
	}
}

// localMsg is deliberately not wire-registered; it exercises the
// simulation fallback for envelopes around test-local inner types.
type localMsg struct{ X int }

// TestWrapMsgUnregisteredInner checks the simulation fallback: an envelope
// around a type without a wire codec is not encodable and EncodedSize
// reports false (the simulator then uses the SimSize approximation).
func TestWrapMsgUnregisteredInner(t *testing.T) {
	msg := wrapMsg{Idx: 1, Inner: localMsg{X: 1}}
	if _, ok := wire.EncodedSize(msg); ok {
		t.Fatal("envelope around an unregistered inner type reported encodable")
	}
	if _, err := wire.Marshal(msg); err == nil {
		t.Fatal("marshal of unregistered inner type succeeded")
	}
}

// TestACSOverTCP is the satellite's end-to-end gate: a full ACS run (ABBA
// instances wrapped in the envelope codec, gather, broadcast, all over the
// framed binary codec) across the real TCP transport on loopback.
func TestACSOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP smoke test in -short mode")
	}
	n := 4
	trust := quorum.NewThreshold(n, 1)
	nodes := make([]sim.Node, n)
	raw := make([]*Node, n)
	for i := range nodes {
		nd := NewNode(Config{
			Trust:    trust,
			Input:    gather.InputValue(types.ProcessID(i)),
			CoinSeed: 11,
			Mode:     gather.UseReliable,
		})
		nodes[i] = nd
		raw[i] = nd
	}
	cluster, err := transport.NewLocalCluster(nodes, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()

	deadline := time.Now().Add(20 * time.Second)
	outputs := make([]Pairs, n)
	have := make([]bool, n)
	for time.Now().Before(deadline) {
		done := 0
		for i, h := range cluster.Hosts {
			var o Pairs
			var ok bool
			h.Inspect(func() { o, ok = raw[i].Output() })
			if ok {
				outputs[i], have[i] = o, true
				done++
			}
		}
		if done == n {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	for i := range have {
		if !have[i] {
			t.Fatalf("node %d produced no ACS output over TCP", i)
		}
	}
	// Agreement: every node must output the same pair set.
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(outputs[0], outputs[i]) {
			t.Fatalf("ACS outputs diverge over TCP: node 0 %v, node %d %v", outputs[0], i, outputs[i])
		}
	}
}
