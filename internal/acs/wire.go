// Binary wire codec registration for the ACS instance envelope (see
// internal/wire for the frame layout and tag-range assignments).
//
// wrapMsg is a nested-frame codec like broadcast's payload embedding: the
// body is [uvarint idx] followed by the inner message as a complete wire
// frame, so every already-registered inner type (the abba VAL/AUX/DECIDE
// messages, the gather messages, the broadcast envelopes they ride in)
// travels without this package enumerating them. An envelope whose inner
// message is not wire-registered is not encodable — Size reports false and
// the simulator falls back to the SimSize approximation — which keeps
// test-local inner types working in pure-simulation runs.
package acs

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/wire"
)

// Wire tag (range 75–79, assigned in internal/wire's central table).
const wireTagWrap = 75

// maxWireIdx bounds instance indexes accepted off the wire.
const maxWireIdx = 1 << 20

func init() {
	wire.Register(wireTagWrap, wrapMsg{}, wire.Codec{
		Size: func(msg any) (int, bool) {
			w := msg.(wrapMsg)
			inner, ok := wire.EncodedSize(w.Inner)
			if !ok {
				return 0, false
			}
			return wire.IntSize(w.Idx) + inner, true
		},
		Append: func(dst []byte, msg any) ([]byte, error) {
			w := msg.(wrapMsg)
			dst = wire.AppendInt(dst, w.Idx)
			return wire.Append(dst, w.Inner)
		},
		Decode: func(b []byte) (any, []byte, error) {
			idx, rest, err := wire.ReadInt(b, maxWireIdx)
			if err != nil {
				return nil, b, fmt.Errorf("acs: wire idx: %w", err)
			}
			inner, rest, err := wire.Decode(rest)
			if err != nil {
				return nil, b, fmt.Errorf("acs: wire inner: %w", err)
			}
			return wrapMsg{Idx: idx, Inner: sim.Message(inner)}, rest, nil
		},
	})
}
