package acs

import (
	"testing"

	"repro/internal/gather"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

func assertIdenticalOutputs(t *testing.T, outputs map[types.ProcessID]Pairs, expect int) Pairs {
	t.Helper()
	if len(outputs) != expect {
		t.Fatalf("%d of %d processes produced an output", len(outputs), expect)
	}
	var ref Pairs
	for _, o := range outputs {
		if ref.IsZero() {
			ref = o
			continue
		}
		if !ref.ContainsAll(o) || !o.ContainsAll(ref) {
			t.Fatalf("ACS outputs differ: %v vs %v", ref, o)
		}
	}
	return ref
}

func TestACSThresholdAllCorrect(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	for seed := int64(0); seed < 8; seed++ {
		outputs := RunCluster(trust, gather.UseReliable, sim.UniformLatency{Min: 1, Max: 30}, seed, seed+100, nil)
		ref := assertIdenticalOutputs(t, outputs, 4)
		// Core set must contain at least a quorum's worth of inputs.
		if ref.Len() < 3 {
			t.Fatalf("seed %d: core set %v smaller than a quorum", seed, ref)
		}
		// Values are genuine.
		for p, v := range ref.Map() {
			if v != gather.InputValue(p) {
				t.Fatalf("seed %d: wrong value for %v: %q", seed, p, v)
			}
		}
	}
}

func TestACSIdenticalVsGatherDiffering(t *testing.T) {
	// The §2.4 distinction made concrete: gather outputs may differ
	// between processes; ACS outputs never do.
	trust := quorum.NewThreshold(7, 2)
	seed := int64(3)

	gres := gather.RunCluster(gather.RunConfig{
		Kind: gather.KindConstantRound, Trust: trust, Mode: gather.UseReliable,
		Latency: sim.UniformLatency{Min: 1, Max: 50}, Seed: seed,
	})
	differ := false
	var prev gather.Pairs
	for _, out := range gres.Outputs {
		if !prev.IsZero() && (!prev.ContainsAll(out) || !out.ContainsAll(prev)) {
			differ = true
		}
		prev = out
	}
	_ = differ // gather outputs MAY differ (often do); no assertion either way

	outputs := RunCluster(trust, gather.UseReliable, sim.UniformLatency{Min: 1, Max: 50}, seed, 9, nil)
	assertIdenticalOutputs(t, outputs, 7)
}

func TestACSWithCrashFaults(t *testing.T) {
	trust := quorum.NewThreshold(7, 2)
	faulty := map[types.ProcessID]sim.Node{
		5: sim.MuteNode{},
		6: sim.MuteNode{},
	}
	outputs := RunCluster(trust, gather.UseReliable, sim.UniformLatency{Min: 1, Max: 25}, 4, 5, faulty)
	ref := assertIdenticalOutputs(t, outputs, 5)
	if ref.Len() < 5 { // n-f quorum of 5 must survive
		t.Fatalf("core set %v too small under crashes", ref)
	}
}

func TestACSAsymmetricSystem(t *testing.T) {
	sys, err := quorum.RandomAsymmetric(quorum.RandomAsymmetricConfig{N: 8, NumSets: 2, MaxFault: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	outputs := RunCluster(sys, gather.UseReliable, sim.UniformLatency{Min: 1, Max: 30}, 7, 8, nil)
	assertIdenticalOutputs(t, outputs, 8)
}

func TestACSCounterexampleSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("30-process ACS is slow")
	}
	sys := quorum.Counterexample()
	outputs := RunCluster(sys, gather.UsePlain, sim.UniformLatency{Min: 1, Max: 30}, 1, 2, nil)
	ref := assertIdenticalOutputs(t, outputs, 30)
	// The agreed set must contain some process's entire quorum.
	senders := ref.Senders(30)
	if !quorum.HasAnyQuorumWithin(sys, senders) {
		t.Fatalf("agreed core %v contains no quorum", senders)
	}
}

func TestACSOutputAccessors(t *testing.T) {
	nd := NewNode(Config{Trust: quorum.NewThreshold(4, 1), Input: "x"})
	if _, ok := nd.Output(); ok {
		t.Fatal("output before running")
	}
}
