package acs

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/gather"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

func assertIdenticalOutputs(t *testing.T, outputs map[types.ProcessID]Pairs, expect int) Pairs {
	t.Helper()
	if len(outputs) != expect {
		t.Fatalf("%d of %d processes produced an output", len(outputs), expect)
	}
	var ref Pairs
	for _, o := range outputs {
		if ref.IsZero() {
			ref = o
			continue
		}
		if !ref.ContainsAll(o) || !o.ContainsAll(ref) {
			t.Fatalf("ACS outputs differ: %v vs %v", ref, o)
		}
	}
	return ref
}

func TestACSThresholdAllCorrect(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	for seed := int64(0); seed < 8; seed++ {
		outputs := RunCluster(trust, gather.UseReliable, sim.UniformLatency{Min: 1, Max: 30}, seed, seed+100, nil)
		ref := assertIdenticalOutputs(t, outputs, 4)
		// Core set must contain at least a quorum's worth of inputs.
		if ref.Len() < 3 {
			t.Fatalf("seed %d: core set %v smaller than a quorum", seed, ref)
		}
		// Values are genuine.
		for p, v := range ref.Map() {
			if v != gather.InputValue(p) {
				t.Fatalf("seed %d: wrong value for %v: %q", seed, p, v)
			}
		}
	}
}

func TestACSIdenticalVsGatherDiffering(t *testing.T) {
	// The §2.4 distinction made concrete: gather outputs may differ
	// between processes; ACS outputs never do.
	trust := quorum.NewThreshold(7, 2)
	seed := int64(3)

	gres := gather.RunCluster(gather.RunConfig{
		Kind: gather.KindConstantRound, Trust: trust, Mode: gather.UseReliable,
		Latency: sim.UniformLatency{Min: 1, Max: 50}, Seed: seed,
	})
	differ := false
	var prev gather.Pairs
	for _, out := range gres.Outputs {
		if !prev.IsZero() && (!prev.ContainsAll(out) || !out.ContainsAll(prev)) {
			differ = true
		}
		prev = out
	}
	_ = differ // gather outputs MAY differ (often do); no assertion either way

	outputs := RunCluster(trust, gather.UseReliable, sim.UniformLatency{Min: 1, Max: 50}, seed, 9, nil)
	assertIdenticalOutputs(t, outputs, 7)
}

func TestACSWithCrashFaults(t *testing.T) {
	trust := quorum.NewThreshold(7, 2)
	faulty := map[types.ProcessID]sim.Node{
		5: sim.MuteNode{},
		6: sim.MuteNode{},
	}
	outputs := RunCluster(trust, gather.UseReliable, sim.UniformLatency{Min: 1, Max: 25}, 4, 5, faulty)
	ref := assertIdenticalOutputs(t, outputs, 5)
	if ref.Len() < 5 { // n-f quorum of 5 must survive
		t.Fatalf("core set %v too small under crashes", ref)
	}
}

func TestACSAsymmetricSystem(t *testing.T) {
	sys, err := quorum.RandomAsymmetric(quorum.RandomAsymmetricConfig{N: 8, NumSets: 2, MaxFault: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	outputs := RunCluster(sys, gather.UseReliable, sim.UniformLatency{Min: 1, Max: 30}, 7, 8, nil)
	assertIdenticalOutputs(t, outputs, 8)
}

func TestACSCounterexampleSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("30-process ACS is slow")
	}
	sys := quorum.Counterexample()
	outputs := RunCluster(sys, gather.UsePlain, sim.UniformLatency{Min: 1, Max: 30}, 1, 2, nil)
	ref := assertIdenticalOutputs(t, outputs, 30)
	// The agreed set must contain some process's entire quorum.
	senders := ref.Senders(30)
	if !quorum.HasAnyQuorumWithin(sys, senders) {
		t.Fatalf("agreed core %v contains no quorum", senders)
	}
}

func TestACSOutputAccessors(t *testing.T) {
	nd := NewNode(Config{Trust: quorum.NewThreshold(4, 1), Input: "x"})
	if _, ok := nd.Output(); ok {
		t.Fatal("output before running")
	}
}

// sizedProbe is an inner message with a known wire size.
type sizedProbe struct{}

func (sizedProbe) SimSize() int { return 8 }

// TestWrapMsgMetrics pins the envelope's metrics contract: SimSize
// forwards the inner payload's size plus the index header, and SimType
// attributes the message to its instance and inner type. Before these,
// every wrapped message counted as 1 byte and all n instances lumped
// into one "acs.wrapMsg" bucket.
func TestWrapMsgMetrics(t *testing.T) {
	w := wrapMsg{Idx: 3, Inner: sizedProbe{}}
	if got := w.SimSize(); got != wrapHeaderSize+8 {
		t.Fatalf("wrapMsg.SimSize() = %d, want %d", got, wrapHeaderSize+8)
	}
	if got := w.SimType(); got != "acs[3]/acs.sizedProbe" {
		t.Fatalf("wrapMsg.SimType() = %q", got)
	}
	// Unsized inner payloads still pay the header on top of the default 1.
	if got := (wrapMsg{Inner: valProbe{}}).SimSize(); got != wrapHeaderSize+1 {
		t.Fatalf("unsized inner SimSize() = %d, want %d", got, wrapHeaderSize+1)
	}

	// Whole-cluster: every binary-agreement instance shows up as its own
	// ByType bucket and wrapped traffic is charged more than 1 byte.
	trust := quorum.NewThreshold(4, 1)
	res := Run(RunConfig{Trust: trust, Mode: gather.UseReliable, Seed: 1, CoinSeed: 2})
	if len(res.Outputs) != 4 {
		t.Fatalf("%d outputs, want 4", len(res.Outputs))
	}
	wraps := 0
	perInstance := map[int]bool{}
	for name, count := range res.Metrics.ByType {
		var idx int
		var rest string
		if n, _ := fmt.Sscanf(name, "acs[%d]/%s", &idx, &rest); n == 2 {
			wraps += count
			perInstance[idx] = true
		}
	}
	if wraps == 0 {
		t.Fatalf("no per-instance wrap buckets in ByType: %v", res.Metrics.ByType)
	}
	for j := 0; j < 4; j++ {
		if !perInstance[j] {
			t.Fatalf("instance %d missing from ByType buckets: %v", j, res.Metrics.ByType)
		}
	}
	// Every wrapped message contributes at least header+1 bytes, every
	// other message at least 1: the old 1-byte-per-wrap accounting cannot
	// satisfy this bound.
	minBytes := res.Metrics.MessagesSent + wraps*wrapHeaderSize
	if res.Metrics.BytesSent < minBytes {
		t.Fatalf("BytesSent = %d < %d: wrapped sizes not forwarded", res.Metrics.BytesSent, minBytes)
	}
}

// valProbe is an inner message without SimSize.
type valProbe struct{}

// bcastProbe drives one wrapped broadcast from process 0, either through
// the new wrapEnv.Broadcast fast path or through the per-destination Send
// loop it replaced.
type bcastProbe struct {
	loop  bool
	times []sim.VirtualTime
	froms []types.ProcessID
}

func (b *bcastProbe) Init(env sim.Env) {
	if env.Self() != 0 {
		return
	}
	we := wrapEnv{Env: env, idx: 2}
	if b.loop {
		for to := 0; to < env.N(); to++ { // the pre-fix implementation
			we.Env.Send(types.ProcessID(to), wrapMsg{Idx: we.idx, Inner: sizedProbe{}})
		}
	} else {
		we.Broadcast(sizedProbe{})
	}
}

func (b *bcastProbe) Receive(env sim.Env, from types.ProcessID, msg sim.Message) {
	b.times = append(b.times, env.Now())
	b.froms = append(b.froms, from)
}

// TestWrapEnvBroadcastFastPath pins that routing wrapped broadcasts
// through Runner.broadcast changes nothing observable: metrics (counts,
// bytes, ByType) and per-destination delivery order/timing are identical
// to the old per-destination Send loop.
func TestWrapEnvBroadcastFastPath(t *testing.T) {
	run := func(loop bool) ([]*bcastProbe, *sim.Metrics) {
		const n = 5
		nodes := make([]sim.Node, n)
		probes := make([]*bcastProbe, n)
		for i := range nodes {
			p := &bcastProbe{loop: loop}
			nodes[i] = p
			probes[i] = p
		}
		r := sim.NewRunner(sim.Config{N: n, Seed: 11, Latency: sim.UniformLatency{Min: 1, Max: 9}}, nodes)
		r.Run(0)
		return probes, r.Metrics()
	}
	loopProbes, loopMetrics := run(true)
	fastProbes, fastMetrics := run(false)
	if !reflect.DeepEqual(fastMetrics, loopMetrics) {
		t.Fatalf("fast-path metrics diverged:\n got %+v\nwant %+v", fastMetrics, loopMetrics)
	}
	for i := range loopProbes {
		if !reflect.DeepEqual(fastProbes[i].times, loopProbes[i].times) ||
			!reflect.DeepEqual(fastProbes[i].froms, loopProbes[i].froms) {
			t.Fatalf("process %d delivery schedule diverged: fast %v/%v, loop %v/%v",
				i, fastProbes[i].times, fastProbes[i].froms, loopProbes[i].times, loopProbes[i].froms)
		}
	}
}

// TestACSParallelDeliveryDeterministic pins ACS under the simulator's
// parallel same-time delivery: outputs and the full Metrics (incl. the
// per-instance ByType buckets) are byte-identical across worker counts,
// and the agreement property holds.
func TestACSParallelDeliveryDeterministic(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	mk := func(workers int) RunResult {
		return Run(RunConfig{
			Trust: trust, Mode: gather.UseReliable,
			Latency: sim.UniformLatency{Min: 1, Max: 15},
			Seed:    5, CoinSeed: 6, DeliveryWorkers: workers,
		})
	}
	ref := mk(1)
	assertIdenticalOutputs(t, ref.Outputs, 4)
	for _, w := range []int{2, 4} {
		res := mk(w)
		if !reflect.DeepEqual(res.Metrics, ref.Metrics) {
			t.Fatalf("workers=%d: metrics diverged:\n got %+v\nwant %+v", w, res.Metrics, ref.Metrics)
		}
		if res.EndTime != ref.EndTime {
			t.Fatalf("workers=%d: end time %d, want %d", w, res.EndTime, ref.EndTime)
		}
		if !reflect.DeepEqual(res.Outputs, ref.Outputs) {
			t.Fatalf("workers=%d: outputs diverged", w)
		}
	}
}

// TestACSEventBudget pins the shared budget convention on acs.Run: a tiny
// MaxEvents truncates and flags HitLimit; the default (0) budget leaves a
// quiescing run untouched.
func TestACSEventBudget(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	base := RunConfig{Trust: trust, Mode: gather.UseReliable, Seed: 1, CoinSeed: 2}
	tiny := base
	tiny.MaxEvents = 5
	if res := Run(tiny); !res.HitLimit {
		t.Fatal("5-event budget not reported as hit")
	}
	if res := Run(base); res.HitLimit {
		t.Fatal("default budget flagged on a quiescing run")
	}
}
