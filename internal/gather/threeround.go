package gather

import (
	"repro/internal/broadcast"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// Dissemination selects the broadcast layer used for the initial inputs.
type Dissemination int

const (
	// UseReliable disseminates inputs via asymmetric reliable broadcast —
	// the protocol as written in the paper (arb-broadcast).
	UseReliable Dissemination = iota
	// UsePlain disseminates via best-effort broadcast. Valid when the
	// sender is correct; the Appendix A all-correct executions use it so
	// the adversarial schedule acts directly on protocol rounds.
	UsePlain
)

// Config configures a gather node.
type Config struct {
	Trust quorum.Assumption
	Input string
	Mode  Dissemination
}

// Message types shared by the gather protocols.

type distSMsg struct {
	From types.ProcessID
	S    Pairs
}

type distTMsg struct {
	From types.ProcessID
	T    Pairs
}

// ThreeRoundNode runs Algorithm 1 / Algorithm 2: three rounds of
// collect-and-forward with quorum triggers, no control messages.
//
//	round 1: arb-broadcast input; S accumulates deliveries; once S contains
//	         a quorum, send [DISTRIBUTE_S, S] to all.
//	round 2: T accumulates received S sets; once DISTRIBUTE_S messages have
//	         arrived from a quorum, send [DISTRIBUTE_T, T] to all.
//	round 3: U accumulates received T sets; once DISTRIBUTE_T messages have
//	         arrived from a quorum, g-deliver U.
//
// With quorum.Threshold this is exactly the threshold gather of Abraham et
// al. (Algorithm 1, triggers "received n−f messages"); with an asymmetric
// System it is the unsound quorum-replacement attempt (Algorithm 2).
type ThreeRoundNode struct {
	cfg  Config
	self types.ProcessID

	bc broadcast.Broadcaster

	s Pairs // arb-delivered (process, value) pairs
	t Pairs
	u Pairs

	sSenders *quorum.Tracker // processes whose input has been arb-delivered
	sFrom    *quorum.Tracker // processes whose DISTRIBUTE_S arrived
	tFrom    *quorum.Tracker // processes whose DISTRIBUTE_T arrived

	sentS     bool
	sentT     bool
	delivered bool

	sSnapshot Pairs // the S set this node sent (for common-core analysis)
	output    Pairs
}

var _ sim.Node = (*ThreeRoundNode)(nil)

// NewThreeRoundNode creates a gather node; the protocol starts at Init.
func NewThreeRoundNode(cfg Config) *ThreeRoundNode {
	n := cfg.Trust.N()
	return &ThreeRoundNode{cfg: cfg, s: NewPairs(n), t: NewPairs(n), u: NewPairs(n)}
}

// Init implements sim.Node: it g-proposes the configured input.
func (n *ThreeRoundNode) Init(env sim.Env) {
	n.self = env.Self()
	n.sSenders = quorum.NewTracker(n.cfg.Trust, n.self)
	n.sFrom = quorum.NewTracker(n.cfg.Trust, n.self)
	n.tFrom = quorum.NewTracker(n.cfg.Trust, n.self)
	deliver := func(env sim.Env, slot broadcast.Slot, p broadcast.Payload) {
		n.onInput(env, slot.Src, string(p.(broadcast.Bytes)))
	}
	if n.cfg.Mode == UsePlain {
		n.bc = broadcast.NewPlain(n.self, deliver)
	} else {
		n.bc = broadcast.NewReliable(n.self, n.cfg.Trust, deliver)
	}
	n.bc.Broadcast(env, 0, broadcast.Bytes(n.cfg.Input))
}

func (n *ThreeRoundNode) onInput(env sim.Env, src types.ProcessID, value string) {
	if !n.s.Set(src, value) {
		return // conflicting value; reliable broadcast makes this unreachable
	}
	n.sSenders.Add(src)
	// Note: T and U grow only from DISTRIBUTE messages (Algorithm 1
	// lines 11–17); the local S reaches T via self-delivery of this
	// node's own DISTRIBUTE_S. Keeping this exact matches the abstract
	// execution of Listing 1 set-for-set.
	n.maybeSendS(env)
}

func (n *ThreeRoundNode) maybeSendS(env sim.Env) {
	if n.sentS || !n.sSenders.HasQuorum() {
		return
	}
	n.sentS = true
	n.sSnapshot = n.s.Snapshot()
	env.Broadcast(distSMsg{From: n.self, S: n.sSnapshot})
}

// Receive implements sim.Node.
func (n *ThreeRoundNode) Receive(env sim.Env, from types.ProcessID, msg sim.Message) {
	if n.bc.Handle(env, from, msg) {
		return
	}
	switch m := msg.(type) {
	case distSMsg:
		if m.From != from || !m.S.wireValid(env.N()) {
			return // authenticated links; malformed wire payloads dropped
		}
		// Algorithm 1/2 line 11–12: merge unconditionally into T only (U
		// accumulates DISTRIBUTE_T contents exclusively, line 15–16).
		n.t.Merge(m.S)
		n.sFrom.Add(from)
		n.maybeSendT(env)
	case distTMsg:
		if m.From != from || !m.T.wireValid(env.N()) {
			return
		}
		n.u.Merge(m.T)
		n.tFrom.Add(from)
		n.maybeDeliver(env)
	}
}

func (n *ThreeRoundNode) maybeSendT(env sim.Env) {
	if n.sentT || !n.sFrom.HasQuorum() {
		return
	}
	n.sentT = true
	env.Broadcast(distTMsg{From: n.self, T: n.t.Snapshot()})
}

func (n *ThreeRoundNode) maybeDeliver(env sim.Env) {
	if n.delivered || !n.tFrom.HasQuorum() {
		return
	}
	n.delivered = true
	n.output = n.u.Snapshot()
}

// Delivered returns the g-delivered set, if any.
func (n *ThreeRoundNode) Delivered() (Pairs, bool) {
	if !n.delivered {
		return Pairs{}, false
	}
	return n.output, true
}

// SentS returns the S snapshot this node distributed (zero until sent);
// the common core, when it exists, is one of these snapshots.
func (n *ThreeRoundNode) SentS() Pairs { return n.sSnapshot }

// AnalyzeCommonCore checks the common-core property over a set of
// processes (typically the maximal guild): it returns the processes j in
// `within` whose sent S snapshot is contained in the delivered U set of
// every member of `within` that delivered. Nodes that have not delivered
// are skipped; sSnap/uSets index by process ID.
func AnalyzeCommonCore(n int, sSnap map[types.ProcessID]Pairs, uSets map[types.ProcessID]Pairs, within types.Set) types.Set {
	out := types.NewSet(n)
	for _, j := range within.Members() {
		sj, ok := sSnap[j]
		if !ok || sj.IsZero() {
			continue
		}
		good := true
		for _, i := range within.Members() {
			u, ok := uSets[i]
			if !ok {
				continue
			}
			if !u.ContainsAll(sj) {
				good = false
				break
			}
		}
		if good {
			out.Add(j)
		}
	}
	return out
}
