// Package gather implements the paper's common-core protocols (§2.4, §3):
//
//   - ThreeRound: the classic three-round gather (Algorithm 1) and its
//     quorum-replacement generalization (Algorithm 2) — they are the same
//     code; instantiating the trust assumption with quorum.Threshold yields
//     Algorithm 1, with an asymmetric system yields Algorithm 2. The paper
//     proves (Lemma 3.2) that the asymmetric instantiation does NOT satisfy
//     the common-core property; this package exists both as the symmetric
//     baseline and as the vehicle for reproducing that counterexample.
//   - ConstantRound: the paper's novel constant-round asymmetric gather
//     (Algorithm 3) with DISTRIBUTE_S / ACK / READY / CONFIRM /
//     DISTRIBUTE_T control flow.
//   - Abstract round-merge model: the pure-set-algebra execution of
//     Listing 1, used to regenerate Figures 2–4 exactly.
package gather

import (
	"encoding/gob"
	"fmt"
	"sort"
	"strings"

	"repro/internal/types"
)

// Pairs is a set of (process, value) pairs — the S/T/U sets of the gather
// protocols. The map key is the proposing process; correct processes never
// associate two values with one process (reliable broadcast forbids it),
// but messages from Byzantine processes may try, so all merging goes
// through conflict-aware methods.
type Pairs map[types.ProcessID]string

// NewPairs returns an empty pair set.
func NewPairs() Pairs { return Pairs{} }

// Clone returns an independent copy.
func (p Pairs) Clone() Pairs {
	c := make(Pairs, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

// Set associates value v with process k, returning false if a conflicting
// value is already present (the caller should then reject the message).
func (p Pairs) Set(k types.ProcessID, v string) bool {
	if old, ok := p[k]; ok {
		return old == v
	}
	p[k] = v
	return true
}

// ContainsAll reports whether every pair of other appears in p with the
// same value (other ⊆ p).
func (p Pairs) ContainsAll(other Pairs) bool {
	for k, v := range other {
		if got, ok := p[k]; !ok || got != v {
			return false
		}
	}
	return true
}

// Merge adds every pair of other into p. It returns false (and leaves the
// remaining pairs merged) if any pair conflicts with an existing value.
func (p Pairs) Merge(other Pairs) bool {
	ok := true
	for k, v := range other {
		if !p.Set(k, v) {
			ok = false
		}
	}
	return ok
}

// Senders returns the set of processes appearing in p, over a universe of
// size n.
func (p Pairs) Senders(n int) types.Set {
	s := types.NewSet(n)
	for k := range p {
		s.Add(k)
	}
	return s
}

// Len returns the number of pairs.
func (p Pairs) Len() int { return len(p) }

// String renders the pairs sorted by process, for deterministic test and
// experiment output.
func (p Pairs) String() string {
	keys := make([]int, 0, len(p))
	for k := range p {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	var b strings.Builder
	b.WriteString("{")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%q", k+1, p[types.ProcessID(k)])
	}
	b.WriteString("}")
	return b.String()
}

// SimSize approximates the wire size of a pair set.
func (p Pairs) SimSize() int {
	sz := 0
	for _, v := range p {
		sz += 8 + len(v)
	}
	return sz
}

// RegisterWire registers this package's message types with encoding/gob
// for use over a real transport. Safe to call multiple times.
func RegisterWire() {
	gob.Register(distSMsg{})
	gob.Register(distTMsg{})
	gob.Register(distUMsg{})
	gob.Register(ackMsg{})
	gob.Register(readyMsg{})
	gob.Register(confirmMsg{})
	gob.Register(Pairs{})
}
