// Package gather implements the paper's common-core protocols (§2.4, §3):
//
//   - ThreeRound: the classic three-round gather (Algorithm 1) and its
//     quorum-replacement generalization (Algorithm 2) — they are the same
//     code; instantiating the trust assumption with quorum.Threshold yields
//     Algorithm 1, with an asymmetric system yields Algorithm 2. The paper
//     proves (Lemma 3.2) that the asymmetric instantiation does NOT satisfy
//     the common-core property; this package exists both as the symmetric
//     baseline and as the vehicle for reproducing that counterexample.
//   - ConstantRound: the paper's novel constant-round asymmetric gather
//     (Algorithm 3) with DISTRIBUTE_S / ACK / READY / CONFIRM /
//     DISTRIBUTE_T control flow.
//   - Abstract round-merge model: the pure-set-algebra execution of
//     Listing 1, used to regenerate Figures 2–4 exactly.
//
// # Snapshot / copy-on-write contract
//
// Every protocol here snapshots its S/T/U pair-set at a quorum trigger and
// broadcasts the snapshot while the live set keeps growing. Pairs.Snapshot
// makes that O(1): it marks the backing storage shared and returns an
// aliasing view; the first subsequent mutation of any alias (Set and Merge
// check the shared flag) copies the backing before writing, so a snapshot
// can never observe changes made after it was taken. Clone remains an
// eager deep copy for callers that want immediately independent storage.
// The differential suite in pairs_cow_test.go pins the copy-on-write
// semantics against a naive deep-copy reference over randomized op
// sequences.
package gather

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"

	"repro/internal/types"
)

// Pairs is a set of (process, value) pairs — the S/T/U sets of the gather
// protocols. Correct processes never associate two values with one process
// (reliable broadcast forbids it), but messages from Byzantine processes
// may try, so all merging goes through conflict-aware methods.
//
// Representation: a sender bitset plus a value slice indexed by process.
// The subset test other ⊆ p — the acceptance predicate evaluated on every
// DISTRIBUTE message — is then a word-parallel bitset check followed by
// value comparisons for other's members only, with no map hashing or
// iteration; Merge and Clone are word-ors and slice copies.
//
// The backing storage is copy-on-write: Snapshot marks it shared in O(1)
// and the mutators (Set, Merge) copy before their first write to a shared
// backing. Mutators therefore use pointer receivers — the copy-on-write
// swap must be visible through the caller's variable. Plain struct
// assignment still aliases the backing without marking it (both copies
// observe each other's writes, exactly as before the COW rewrite); use
// Snapshot whenever one side must stay frozen.
type Pairs struct {
	senders types.Set
	vals    []string
	// shared, when true, marks senders/vals as aliased by a snapshot (or
	// by the snapshot's parent): mutators must copy before writing. The
	// flag is a pointer so that every alias of one backing — however the
	// aliasing arose — sees the mark; it is nil only in the zero value.
	// It is atomic because under the simulator's parallel same-time
	// delivery the Receive handlers of distinct receivers run
	// concurrently, and a broadcast payload aliases one backing across
	// all of them: one handler re-snapshotting (flag store) can overlap
	// another handler's copy-on-write check (flag load).
	shared *atomic.Bool
}

// NewPairs returns an empty pair set over a universe of n processes.
func NewPairs(n int) Pairs {
	return Pairs{senders: types.NewSet(n), vals: make([]string, n), shared: new(atomic.Bool)}
}

// PairsOf builds a pair set over a universe of n from a literal map
// (convenience for tests and adversarial nodes).
func PairsOf(n int, m map[types.ProcessID]string) Pairs {
	p := NewPairs(n)
	//lint:ordered Set writes each key's own slot; distinct keys commute
	for k, v := range m {
		p.Set(k, v)
	}
	return p
}

// IsZero reports whether p is the zero value (as opposed to an initialized
// empty set). Nodes use it for "not yet sent/delivered" sentinels.
func (p Pairs) IsZero() bool { return p.vals == nil }

// Clone returns an eagerly independent deep copy. Hot paths that only
// need a frozen view should use Snapshot, which defers the copy until a
// mutation actually happens (and avoids it entirely for sets that never
// change again).
func (p Pairs) Clone() Pairs {
	if p.IsZero() {
		return p
	}
	c := Pairs{senders: p.senders.Clone(), vals: make([]string, len(p.vals)), shared: new(atomic.Bool)}
	copy(c.vals, p.vals)
	return c
}

// Snapshot returns an O(1) frozen view of p: the snapshot and p keep
// sharing the backing storage until either next mutates, at which point
// the mutator copies the backing first (copy-on-write). The snapshot is
// therefore immune to later changes of p — this is what the gather
// protocols rely on when they broadcast the set captured at a quorum
// trigger and keep merging deliveries into the live set afterwards.
// A zero Pairs snapshots to a zero Pairs.
func (p *Pairs) Snapshot() Pairs {
	if p.IsZero() {
		return Pairs{}
	}
	// Load-before-store: re-snapshotting an already-shared backing is the
	// common case (every quorum trigger snapshots, mutations are rarer),
	// and an atomic load is a plain MOV where the unconditional store
	// would serialize the pipeline on every call.
	if !p.shared.Load() {
		p.shared.Store(true)
	}
	return *p
}

// ensureOwned makes p the sole owner of its backing storage, copying it
// if a snapshot still aliases it. Mutators call it before their first
// write; reads never need it. The old backing (and its shared flag) stays
// with the snapshots; the fresh backing starts unshared.
func (p *Pairs) ensureOwned() {
	if p.shared == nil || !p.shared.Load() {
		return
	}
	p.senders = p.senders.Clone()
	vals := make([]string, len(p.vals))
	copy(vals, p.vals)
	p.vals = vals
	p.shared = new(atomic.Bool)
}

// Get returns the value associated with process k, if any.
func (p Pairs) Get(k types.ProcessID) (string, bool) {
	if p.IsZero() || !p.senders.Contains(k) {
		return "", false
	}
	return p.vals[k], true
}

// Contains reports whether process k has a value in p.
func (p Pairs) Contains(k types.ProcessID) bool {
	return !p.IsZero() && p.senders.Contains(k)
}

// Set associates value v with process k, returning false if a conflicting
// value is already present (the caller should then reject the message).
func (p *Pairs) Set(k types.ProcessID, v string) bool {
	if p.senders.Contains(k) {
		return p.vals[k] == v
	}
	p.ensureOwned()
	p.senders.Add(k)
	p.vals[k] = v
	return true
}

// ContainsAll reports whether every pair of other appears in p with the
// same value (other ⊆ p).
func (p Pairs) ContainsAll(other Pairs) bool {
	if other.IsZero() {
		return true
	}
	if p.IsZero() {
		return other.senders.IsEmpty()
	}
	pw, ow := p.senders.Words(), other.senders.Words()
	for wi, w := range ow {
		if w&^pw[wi] != 0 {
			return false
		}
	}
	for wi, w := range ow {
		for w != 0 {
			k := wi*64 + bits.TrailingZeros64(w)
			if p.vals[k] != other.vals[k] {
				return false
			}
			w &= w - 1
		}
	}
	return true
}

// Merge adds every pair of other into p. It returns false (and leaves the
// remaining pairs merged) if any pair conflicts with an existing value.
func (p *Pairs) Merge(other Pairs) bool {
	if other.IsZero() {
		return true
	}
	pw, ow := p.senders.Words(), other.senders.Words()
	for wi, w := range ow {
		if w&^pw[wi] != 0 {
			// other contributes at least one new pair, so a write is
			// coming: copy-on-write now. Conflict-only merges (and merges
			// of subsets, including self-merges through a snapshot) never
			// write and never copy.
			p.ensureOwned()
			pw = p.senders.Words()
			break
		}
	}
	ok := true
	for wi, w := range ow {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			k := wi*64 + b
			if pw[wi]&(1<<uint(b)) != 0 {
				if p.vals[k] != other.vals[k] {
					ok = false
				}
			} else {
				pw[wi] |= 1 << uint(b)
				p.vals[k] = other.vals[k]
			}
			w &= w - 1
		}
	}
	return ok
}

// ForEach calls fn for every pair in ascending process order; iteration
// stops if fn returns false.
func (p Pairs) ForEach(fn func(k types.ProcessID, v string) bool) {
	if p.IsZero() {
		return
	}
	p.senders.ForEach(func(k types.ProcessID) bool {
		return fn(k, p.vals[k])
	})
}

// Map materializes the pairs as a plain map — a convenience for tests and
// tooling, not for hot paths.
func (p Pairs) Map() map[types.ProcessID]string {
	m := make(map[types.ProcessID]string, p.Len())
	p.ForEach(func(k types.ProcessID, v string) bool {
		m[k] = v
		return true
	})
	return m
}

// Senders returns the set of processes appearing in p, over a universe of
// size n.
func (p Pairs) Senders(n int) types.Set {
	if p.IsZero() {
		return types.NewSet(n)
	}
	return p.senders.Clone()
}

// Len returns the number of pairs.
func (p Pairs) Len() int {
	if p.IsZero() {
		return 0
	}
	return p.senders.Count()
}

// String renders the pairs sorted by process, for deterministic test and
// experiment output.
func (p Pairs) String() string {
	var b strings.Builder
	b.WriteString("{")
	first := true
	p.ForEach(func(k types.ProcessID, v string) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d:%q", int(k)+1, v)
		return true
	})
	b.WriteString("}")
	return b.String()
}

// pairsWire is the gob representation of Pairs (the in-memory layout has
// unexported fields).
type pairsWire struct {
	N     int
	Procs []int32
	Vals  []string
}

// GobEncode implements gob.GobEncoder.
func (p Pairs) GobEncode() ([]byte, error) {
	w := pairsWire{N: p.senders.UniverseSize()}
	p.ForEach(func(k types.ProcessID, v string) bool {
		w.Procs = append(w.Procs, int32(k))
		w.Vals = append(w.Vals, v)
		return true
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// maxWireUniverse bounds the universe size accepted off the wire, so a
// malicious peer cannot make the decoder allocate an arbitrarily large
// value slice.
const maxWireUniverse = 1 << 20

// GobDecode implements gob.GobDecoder. The payload comes from the network
// (possibly from a Byzantine peer), so every field is validated before it
// shapes an allocation or an index: the old map representation tolerated
// arbitrary keys, the bitset representation must enforce its bounds.
func (p *Pairs) GobDecode(b []byte) error {
	var w pairsWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	if w.N == 0 {
		if len(w.Procs) != 0 || len(w.Vals) != 0 {
			return fmt.Errorf("gather: wire Pairs has %d pairs in an empty universe", len(w.Procs))
		}
		*p = Pairs{}
		return nil
	}
	if w.N < 0 || w.N > maxWireUniverse {
		return fmt.Errorf("gather: wire Pairs universe %d out of range", w.N)
	}
	if len(w.Procs) != len(w.Vals) {
		return fmt.Errorf("gather: wire Pairs has %d processes but %d values", len(w.Procs), len(w.Vals))
	}
	*p = NewPairs(w.N)
	for i, proc := range w.Procs {
		if proc < 0 || int(proc) >= w.N {
			return fmt.Errorf("gather: wire Pairs process %d outside universe %d", proc, w.N)
		}
		p.Set(types.ProcessID(proc), w.Vals[i])
	}
	return nil
}

// wireValid reports whether a Pairs received in a message is usable in a
// cluster of n processes: either the zero value or built over the same
// universe. Handlers drop messages that fail it — a decoded Pairs with a
// different universe would otherwise panic inside Merge/ContainsAll.
func (p Pairs) wireValid(n int) bool {
	return p.IsZero() || (p.senders.UniverseSize() == n && len(p.vals) == n)
}

// RegisterWire registers this package's message types with encoding/gob
// for use over a real transport. Safe to call multiple times.
func RegisterWire() {
	gob.Register(distSMsg{})
	gob.Register(distTMsg{})
	gob.Register(distUMsg{})
	gob.Register(ackMsg{})
	gob.Register(readyMsg{})
	gob.Register(confirmMsg{})
	gob.Register(Pairs{})
}
