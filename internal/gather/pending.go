package gather

import (
	"math/bits"

	"repro/internal/types"
)

// pendingEntry is one buffered DISTRIBUTE_S/T/U pair-set whose components
// have not all been arb-delivered yet.
type pendingEntry struct {
	from    types.ProcessID
	pairs   Pairs
	missing int  // pairs not yet confirmed by local arb-deliveries
	dead    bool // conflicting value observed: can never be accepted
	refs    int  // waiter lists still holding a pointer to this entry
}

// acceptedPairs is one buffered pair-set that became acceptable.
type acceptedPairs struct {
	from  types.ProcessID
	pairs Pairs
}

// pendingPairs indexes buffered pair-sets by the arb-deliveries they still
// await, so each delivery re-checks exactly the entries waiting on that
// process instead of rescanning every pending message (the old drainPending
// was O(deliveries × pending × |S|); this is O(total pending membership)).
//
// Conflict handling mirrors the rescan semantics: a pair (k, v) whose
// process k is locally bound to a different value can never satisfy the
// S_j ⊆ S acceptance predicate (S values are write-once), so the entry is
// discarded instead of staying buffered forever.
//
// Allocation: broadcast fan-out buffers and releases entries by the
// thousand on the adversarial schedules, so entries and waiter-list
// backings are recycled through free-lists once every reference to them is
// gone (refs counts the waiter lists still holding an entry), an
// immediately-acceptable set allocates nothing at all, and deliver reuses
// one scratch slice for its results. Everything here is owned by a single
// node on a single goroutine.
type pendingPairs struct {
	bySender map[types.ProcessID]*pendingEntry
	waiters  map[types.ProcessID][]*pendingEntry

	freeEntries []*pendingEntry
	freeLists   [][]*pendingEntry
	ready       []acceptedPairs
}

func newPendingPairs() *pendingPairs {
	return &pendingPairs{
		bySender: map[types.ProcessID]*pendingEntry{},
		waiters:  map[types.ProcessID][]*pendingEntry{},
	}
}

// add registers the pair-set from a sender against the current local set s.
// It returns ready=true when the set is acceptable right now (nothing is
// buffered — or allocated — in that case). A newer message from the same
// sender that has to buffer supersedes the sender's earlier buffered one —
// the map-overwrite semantics this replaces; an immediately accepted
// message leaves any earlier buffered set pending, exactly as the old
// accept branch did.
func (pp *pendingPairs) add(s Pairs, from types.ProcessID, pairs Pairs) (ready bool) {
	if pairs.IsZero() {
		return true
	}
	// Word-parallel split of pairs into present-in-s (value check) and
	// missing (waiter registration) members.
	sw, ow := s.senders.Words(), pairs.senders.Words()
	for wi, w := range ow {
		for present := w & sw[wi]; present != 0; present &= present - 1 {
			k := wi*64 + bits.TrailingZeros64(present)
			if s.vals[k] != pairs.vals[k] {
				// Conflicting value: this set can never be accepted, and it
				// supersedes the sender's earlier buffered set (the old code
				// overwrote it with this never-acceptable one).
				pp.supersede(from)
				return false
			}
		}
	}
	missing := 0
	for wi, w := range ow {
		missing += bits.OnesCount64(w &^ sw[wi])
	}
	if missing == 0 {
		return true
	}
	entry := pp.newEntry(from, pairs, missing)
	for wi, w := range ow {
		for miss := w &^ sw[wi]; miss != 0; miss &= miss - 1 {
			k := types.ProcessID(wi*64 + bits.TrailingZeros64(miss))
			pp.addWaiter(k, entry)
		}
	}
	pp.supersede(from)
	pp.bySender[from] = entry
	return false
}

// supersede invalidates the sender's currently buffered entry, if any.
// The dead entry is recycled once the waiter lists that still point at it
// drain.
func (pp *pendingPairs) supersede(from types.ProcessID) {
	if old := pp.bySender[from]; old != nil {
		old.dead = true
		delete(pp.bySender, from)
	}
}

// newEntry takes an entry off the free-list (or allocates the pool's first
// of that shape).
func (pp *pendingPairs) newEntry(from types.ProcessID, pairs Pairs, missing int) *pendingEntry {
	var e *pendingEntry
	if n := len(pp.freeEntries); n > 0 {
		e = pp.freeEntries[n-1]
		pp.freeEntries = pp.freeEntries[:n-1]
	} else {
		e = &pendingEntry{}
	}
	*e = pendingEntry{from: from, pairs: pairs, missing: missing, refs: missing}
	return e
}

// release recycles a dead entry once no waiter list references it any
// more. The buffered Pairs reference is dropped eagerly so a pooled entry
// does not pin a message payload alive.
func (pp *pendingPairs) release(e *pendingEntry) {
	if !e.dead || e.refs != 0 {
		return
	}
	e.pairs = Pairs{}
	pp.freeEntries = append(pp.freeEntries, e)
}

// addWaiter appends entry to process k's waiter list, reusing a drained
// list backing when one is free.
func (pp *pendingPairs) addWaiter(k types.ProcessID, e *pendingEntry) {
	list, ok := pp.waiters[k]
	if !ok {
		if n := len(pp.freeLists); n > 0 {
			list = pp.freeLists[n-1]
			pp.freeLists = pp.freeLists[:n-1]
		}
	}
	pp.waiters[k] = append(list, e)
}

// deliver records that (k, v) entered the local set and returns the
// entries that became acceptable as a result. The returned slice is a
// scratch buffer owned by pp, valid until the next deliver call — callers
// consume it immediately (and never re-enter deliver/add on the same
// instance while iterating).
func (pp *pendingPairs) deliver(k types.ProcessID, v string) []acceptedPairs {
	list, ok := pp.waiters[k]
	if !ok {
		return nil
	}
	delete(pp.waiters, k)
	pp.ready = pp.ready[:0]
	for i, e := range list {
		list[i] = nil // the recycled backing must not pin entries
		e.refs--
		if e.dead {
			pp.release(e)
			continue
		}
		if want, _ := e.pairs.Get(k); want != v {
			e.dead = true
			delete(pp.bySender, e.from)
			pp.release(e)
			continue
		}
		e.missing--
		if e.missing == 0 {
			e.dead = true
			delete(pp.bySender, e.from)
			pp.ready = append(pp.ready, acceptedPairs{from: e.from, pairs: e.pairs})
			pp.release(e)
		}
	}
	pp.freeLists = append(pp.freeLists, list[:0])
	return pp.ready
}

// clear drops every buffered entry (used when the protocol stops
// acknowledging). The free-lists survive: pooled entries have no live
// references by construction, and drained list backings hold only nils.
func (pp *pendingPairs) clear() {
	//lint:ordered marks every entry dead; writes to distinct entries commute
	for _, e := range pp.bySender {
		e.dead = true
	}
	pp.bySender = map[types.ProcessID]*pendingEntry{}
	pp.waiters = map[types.ProcessID][]*pendingEntry{}
}
