package gather

import (
	"math/bits"

	"repro/internal/types"
)

// pendingEntry is one buffered DISTRIBUTE_S/T/U pair-set whose components
// have not all been arb-delivered yet.
type pendingEntry struct {
	from    types.ProcessID
	pairs   Pairs
	missing int  // pairs not yet confirmed by local arb-deliveries
	dead    bool // conflicting value observed: can never be accepted
}

// pendingPairs indexes buffered pair-sets by the arb-deliveries they still
// await, so each delivery re-checks exactly the entries waiting on that
// process instead of rescanning every pending message (the old drainPending
// was O(deliveries × pending × |S|); this is O(total pending membership)).
//
// Conflict handling mirrors the rescan semantics: a pair (k, v) whose
// process k is locally bound to a different value can never satisfy the
// S_j ⊆ S acceptance predicate (S values are write-once), so the entry is
// discarded instead of staying buffered forever.
type pendingPairs struct {
	bySender map[types.ProcessID]*pendingEntry
	waiters  map[types.ProcessID][]*pendingEntry
}

func newPendingPairs() *pendingPairs {
	return &pendingPairs{
		bySender: map[types.ProcessID]*pendingEntry{},
		waiters:  map[types.ProcessID][]*pendingEntry{},
	}
}

// add registers the pair-set from a sender against the current local set s.
// It returns ready=true when the set is acceptable right now (nothing is
// buffered in that case). A newer message from the same sender that has to
// buffer supersedes the sender's earlier buffered one — the map-overwrite
// semantics this replaces; an immediately accepted message leaves any
// earlier buffered set pending, exactly as the old accept branch did.
func (pp *pendingPairs) add(s Pairs, from types.ProcessID, pairs Pairs) (ready bool) {
	if pairs.IsZero() {
		return true
	}
	entry := &pendingEntry{from: from, pairs: pairs}
	// Word-parallel split of pairs into present-in-s (value check) and
	// missing (waiter registration) members.
	sw, ow := s.senders.Words(), pairs.senders.Words()
	for wi, w := range ow {
		for present := w & sw[wi]; present != 0; present &= present - 1 {
			k := wi*64 + bits.TrailingZeros64(present)
			if s.vals[k] != pairs.vals[k] {
				// Conflicting value: this set can never be accepted, and it
				// supersedes the sender's earlier buffered set (the old code
				// overwrote it with this never-acceptable one).
				entry.dead = true
				pp.supersede(from)
				return false
			}
		}
	}
	for wi, w := range ow {
		for missing := w &^ sw[wi]; missing != 0; missing &= missing - 1 {
			k := types.ProcessID(wi*64 + bits.TrailingZeros64(missing))
			entry.missing++
			pp.waiters[k] = append(pp.waiters[k], entry)
		}
	}
	if entry.missing == 0 {
		entry.dead = true // never consulted again via waiters
		return true
	}
	pp.supersede(from)
	pp.bySender[from] = entry
	return false
}

// supersede invalidates the sender's currently buffered entry, if any.
func (pp *pendingPairs) supersede(from types.ProcessID) {
	if old := pp.bySender[from]; old != nil {
		old.dead = true
		delete(pp.bySender, from)
	}
}

// deliver records that (k, v) entered the local set and returns the entries
// that became acceptable as a result.
func (pp *pendingPairs) deliver(k types.ProcessID, v string) []*pendingEntry {
	list, ok := pp.waiters[k]
	if !ok {
		return nil
	}
	delete(pp.waiters, k)
	var ready []*pendingEntry
	for _, e := range list {
		if e.dead {
			continue
		}
		if want, _ := e.pairs.Get(k); want != v {
			e.dead = true
			delete(pp.bySender, e.from)
			continue
		}
		e.missing--
		if e.missing == 0 {
			e.dead = true
			delete(pp.bySender, e.from)
			ready = append(ready, e)
		}
	}
	return ready
}

// clear drops every buffered entry (used when the protocol stops
// acknowledging).
func (pp *pendingPairs) clear() {
	for _, e := range pp.bySender {
		e.dead = true
	}
	pp.bySender = map[types.ProcessID]*pendingEntry{}
	pp.waiters = map[types.ProcessID][]*pendingEntry{}
}
