package gather

import (
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// distUMsg carries the fourth-round U set of the binding gather.
type distUMsg struct {
	From types.ProcessID
	U    Pairs
}

// BindingNode is the binding variant of the asymmetric gather: Algorithm 3
// plus one extra exchange round, following Abraham et al.'s observation
// (paper §2.4) that a binding common core costs one additional round.
// Shoup's attack on Tusk exploits a non-binding core: an adversary that
// sees the coin before the core is fixed can steer it away from the
// leader. With the extra round, by the time the first correct process
// ag-delivers, the (now one-round-older) common core can no longer change:
// every later deliverer's output already contains it.
//
// Structure: run Algorithm 3 unchanged through DISTRIBUTE_T; where
// Algorithm 3 would deliver U, broadcast [DISTRIBUTE_U, U] instead and
// deliver the union of U sets accepted from one of the local quorums.
type BindingNode struct {
	inner *ConstantRoundNode

	v        Pairs // union of accepted U sets
	uFrom    *quorum.Tracker
	pendingU *pendingPairs

	sentU     bool
	delivered bool
	output    Pairs
}

var _ sim.Node = (*BindingNode)(nil)

// NewBindingNode creates a binding gather node.
func NewBindingNode(cfg Config) *BindingNode {
	n := &BindingNode{
		inner:    NewConstantRoundNode(cfg),
		v:        NewPairs(cfg.Trust.N()),
		pendingU: newPendingPairs(),
	}
	// Buffered U sets become acceptable only when the inner S set grows;
	// hook the arb-delivery so exactly the waiting entries re-check.
	n.inner.inputHook = func(env sim.Env, src types.ProcessID, value string) {
		for _, e := range n.pendingU.deliver(src, value) {
			n.acceptU(e.from, e.pairs)
		}
		n.afterInner(env)
	}
	return n
}

// Init implements sim.Node.
func (n *BindingNode) Init(env sim.Env) {
	n.uFrom = quorum.NewTracker(n.inner.cfg.Trust, env.Self())
	n.inner.Init(env)
	n.afterInner(env)
}

// Receive implements sim.Node.
func (n *BindingNode) Receive(env sim.Env, from types.ProcessID, msg sim.Message) {
	if m, ok := msg.(distUMsg); ok {
		if m.From != from || !m.U.wireValid(env.N()) {
			return
		}
		if n.pendingU.add(n.inner.s, from, m.U) {
			n.acceptU(from, m.U)
		}
		return
	}
	n.inner.Receive(env, from, msg)
	n.afterInner(env)
}

// afterInner fires the extra round once Algorithm 3 would have delivered.
func (n *BindingNode) afterInner(env sim.Env) {
	if n.sentU {
		return
	}
	u, ok := n.inner.Delivered()
	if !ok {
		return
	}
	n.sentU = true
	env.Broadcast(distUMsg{From: n.inner.self, U: u.Snapshot()})
}

func (n *BindingNode) acceptU(from types.ProcessID, u Pairs) {
	n.v.Merge(u)
	n.uFrom.Add(from)
	if !n.delivered && n.uFrom.HasQuorum() {
		n.delivered = true
		n.output = n.v.Snapshot()
	}
}

// Delivered returns the bound output set, if any.
func (n *BindingNode) Delivered() (Pairs, bool) {
	if !n.delivered {
		return Pairs{}, false
	}
	return n.output, true
}

// SentS exposes the inner S snapshot for common-core analysis.
func (n *BindingNode) SentS() Pairs { return n.inner.SentS() }

// InnerDelivered exposes the inner (non-binding) U set, for comparing the
// two layers in experiments.
func (n *BindingNode) InnerDelivered() (Pairs, bool) { return n.inner.Delivered() }
