// Binary wire codec registration for the gather messages (see
// internal/wire for the frame layout and tag-range assignments).
//
// A Pairs body reuses the raw-word bitset encoding types.Set already
// carries: [uvarint universe][raw LE sender words][per member, ascending:
// uvarint len + value bytes]. A universe of 0 encodes the zero Pairs,
// matching the gob codec's convention. Decoding validates the universe
// bound and sender-word bits exactly like GobDecode always has — bodies
// come from the network, possibly from Byzantine peers.
package gather

import (
	"fmt"

	"repro/internal/types"
	"repro/internal/wire"
)

// Wire tags (range 30–39, assigned in internal/wire's central table).
const (
	wireTagDistS   = 30
	wireTagDistT   = 31
	wireTagDistU   = 32
	wireTagAck     = 33
	wireTagReady   = 34
	wireTagConfirm = 35
	wireTagPairs   = 36
)

func init() { registerWireCodecs() }

// wireSize returns the exact encoded body length of p.
func (p Pairs) wireSize() int {
	if p.IsZero() {
		return wire.UvarintSize(0)
	}
	sz := wire.SetSize(p.senders)
	p.ForEach(func(_ types.ProcessID, v string) bool {
		sz += wire.StringSize(v)
		return true
	})
	return sz
}

// appendWire appends p's body.
func (p Pairs) appendWire(dst []byte) []byte {
	if p.IsZero() {
		return wire.AppendUvarint(dst, 0)
	}
	dst = wire.AppendSet(dst, p.senders)
	p.ForEach(func(_ types.ProcessID, v string) bool {
		dst = wire.AppendString(dst, v)
		return true
	})
	return dst
}

// decodePairsWire parses one Pairs body from the front of b.
func decodePairsWire(b []byte) (Pairs, []byte, error) {
	senders, rest, err := wire.ReadSet(b)
	if err != nil {
		return Pairs{}, b, fmt.Errorf("gather: wire Pairs senders: %w", err)
	}
	n := senders.UniverseSize()
	if n == 0 {
		return Pairs{}, rest, nil
	}
	if n > maxWireUniverse {
		return Pairs{}, b, fmt.Errorf("gather: wire Pairs universe %d out of range", n)
	}
	p := NewPairs(n)
	ok := true
	senders.ForEach(func(k types.ProcessID) bool {
		var v string
		v, rest, err = wire.ReadString(rest)
		if err != nil {
			ok = false
			return false
		}
		p.Set(k, v)
		return true
	})
	if !ok {
		return Pairs{}, b, fmt.Errorf("gather: wire Pairs values: %w", err)
	}
	return p, rest, nil
}

// registerPairsMsg registers one of the three structurally identical
// DISTRIBUTE messages: [uvarint from][pairs body].
func registerPairsMsg(tag uint64, prototype any,
	get func(any) (types.ProcessID, Pairs), build func(types.ProcessID, Pairs) any) {
	wire.Register(tag, prototype, wire.Codec{
		Size: func(msg any) (int, bool) {
			from, p := get(msg)
			return wire.IntSize(int(from)) + p.wireSize(), true
		},
		Append: func(dst []byte, msg any) ([]byte, error) {
			from, p := get(msg)
			dst = wire.AppendInt(dst, int(from))
			return p.appendWire(dst), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			from, rest, err := wire.ReadInt(b, wire.MaxUniverse)
			if err != nil {
				return nil, b, err
			}
			p, rest, err := decodePairsWire(rest)
			if err != nil {
				return nil, b, err
			}
			return build(types.ProcessID(from), p), rest, nil
		},
	})
}

// registerEmptyMsg registers a zero-field control message.
func registerEmptyMsg(tag uint64, prototype any, build func() any) {
	wire.Register(tag, prototype, wire.Codec{
		Size:   func(any) (int, bool) { return 0, true },
		Append: func(dst []byte, _ any) ([]byte, error) { return dst, nil },
		Decode: func(b []byte) (any, []byte, error) { return build(), b, nil },
	})
}

func registerWireCodecs() {
	registerPairsMsg(wireTagDistS, distSMsg{},
		func(m any) (types.ProcessID, Pairs) { s := m.(distSMsg); return s.From, s.S },
		func(from types.ProcessID, p Pairs) any { return distSMsg{From: from, S: p} })
	registerPairsMsg(wireTagDistT, distTMsg{},
		func(m any) (types.ProcessID, Pairs) { s := m.(distTMsg); return s.From, s.T },
		func(from types.ProcessID, p Pairs) any { return distTMsg{From: from, T: p} })
	registerPairsMsg(wireTagDistU, distUMsg{},
		func(m any) (types.ProcessID, Pairs) { s := m.(distUMsg); return s.From, s.U },
		func(from types.ProcessID, p Pairs) any { return distUMsg{From: from, U: p} })
	registerEmptyMsg(wireTagAck, ackMsg{}, func() any { return ackMsg{} })
	registerEmptyMsg(wireTagReady, readyMsg{}, func() any { return readyMsg{} })
	registerEmptyMsg(wireTagConfirm, confirmMsg{}, func() any { return confirmMsg{} })
	wire.Register(wireTagPairs, Pairs{}, wire.Codec{
		Size: func(msg any) (int, bool) { return msg.(Pairs).wireSize(), true },
		Append: func(dst []byte, msg any) ([]byte, error) {
			return msg.(Pairs).appendWire(dst), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			p, rest, err := decodePairsWire(b)
			if err != nil {
				return nil, b, err
			}
			return p, rest, nil
		},
	})
}
