package gather

import (
	"math/rand"
	"testing"

	"repro/internal/broadcast"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// adversarialLatency builds the Appendix A schedule: every process hears
// its canonical quorum fast and everything else slow.
func adversarialLatency(sys *quorum.System) sim.LatencyModel {
	fav := make([]types.Set, sys.N())
	for i := range fav {
		fav[i] = sys.Quorums(types.ProcessID(i))[0]
	}
	return sim.FavoredLinksLatency{Favored: fav, Fast: 1, Slow: 100000}
}

// TestAlgorithm2CounterexampleMessageLevel runs the real message-passing
// Algorithm 2 on the Figure 1 system under the adversarial schedule and
// verifies (a) the delivered U sets match the abstract Listing 1 execution
// set-for-set, and (b) there is no common core (Lemma 3.2).
func TestAlgorithm2CounterexampleMessageLevel(t *testing.T) {
	sys := quorum.Counterexample()
	res := RunCluster(RunConfig{
		Kind:    KindThreeRound,
		Trust:   sys,
		Mode:    UsePlain,
		Latency: adversarialLatency(sys),
		Seed:    1,
	})
	n := sys.N()
	if len(res.Outputs) != n {
		t.Fatalf("%d of %d processes delivered", len(res.Outputs), n)
	}
	// Match the abstract execution.
	abstract := RoundSets(n, CanonicalChoice(sys), 3)
	for p, out := range res.Outputs {
		if got := out.Senders(n); !got.Equal(abstract[p]) {
			t.Errorf("%v delivered %v, abstract predicts %v", p, got, abstract[p])
		}
	}
	// No common core among all 30 (everyone is in the maximal guild).
	all := types.FullSet(n)
	uSets := res.Outputs
	core := AnalyzeCommonCore(n, res.SSnapshots, uSets, all)
	if !core.IsEmpty() {
		t.Fatalf("message-level Algorithm 2 found a common core %v; Lemma 3.2 says none exists", core)
	}
}

// TestAlgorithm1ThresholdCommonCore: the same code under threshold trust is
// Algorithm 1 and must produce a common core of ≥ n−f pairs under any
// scheduling.
func TestAlgorithm1ThresholdCommonCore(t *testing.T) {
	n, f := 7, 2
	trust := quorum.NewThreshold(n, f)
	for seed := int64(0); seed < 10; seed++ {
		res := RunCluster(RunConfig{
			Kind:    KindThreeRound,
			Trust:   trust,
			Mode:    UseReliable,
			Latency: sim.UniformLatency{Min: 1, Max: 50},
			Seed:    seed,
		})
		if len(res.Outputs) != n {
			t.Fatalf("seed %d: %d delivered", seed, len(res.Outputs))
		}
		core := AnalyzeCommonCore(n, res.SSnapshots, res.Outputs, types.FullSet(n))
		if core.IsEmpty() {
			t.Fatalf("seed %d: threshold gather produced no common core", seed)
		}
		// The common core S set must contain at least n−f pairs.
		for _, p := range core.Members() {
			if res.SSnapshots[p].Len() < n-f {
				t.Fatalf("seed %d: common core of size %d < n−f", seed, res.SSnapshots[p].Len())
			}
			break
		}
	}
}

// TestAlgorithm3CounterexampleAdversarial is the headline §3.3 result: the
// constant-round asymmetric gather reaches a common core on the very
// system and schedule that defeats Algorithm 2.
func TestAlgorithm3CounterexampleAdversarial(t *testing.T) {
	sys := quorum.Counterexample()
	res := RunCluster(RunConfig{
		Kind:    KindConstantRound,
		Trust:   sys,
		Mode:    UsePlain,
		Latency: adversarialLatency(sys),
		Seed:    1,
	})
	n := sys.N()
	if len(res.Outputs) != n {
		t.Fatalf("%d of %d processes delivered", len(res.Outputs), n)
	}
	core := AnalyzeCommonCore(n, res.SSnapshots, res.Outputs, types.FullSet(n))
	if core.IsEmpty() {
		t.Fatal("Algorithm 3 failed to produce a common core on the counterexample")
	}
	t.Logf("common core candidates: %v", core)
}

// TestAlgorithm3RandomSchedules: common core on the counterexample system
// under many random schedules too.
func TestAlgorithm3RandomSchedules(t *testing.T) {
	sys := quorum.Counterexample()
	n := sys.N()
	for seed := int64(0); seed < 5; seed++ {
		res := RunCluster(RunConfig{
			Kind:    KindConstantRound,
			Trust:   sys,
			Mode:    UsePlain,
			Latency: sim.UniformLatency{Min: 1, Max: 100},
			Seed:    seed,
		})
		if len(res.Outputs) != n {
			t.Fatalf("seed %d: %d delivered", seed, len(res.Outputs))
		}
		core := AnalyzeCommonCore(n, res.SSnapshots, res.Outputs, types.FullSet(n))
		if core.IsEmpty() {
			t.Fatalf("seed %d: no common core", seed)
		}
	}
}

// TestAlgorithm3Threshold: Algorithm 3 also works under threshold trust.
func TestAlgorithm3Threshold(t *testing.T) {
	n, f := 4, 1
	trust := quorum.NewThreshold(n, f)
	res := RunCluster(RunConfig{
		Kind:    KindConstantRound,
		Trust:   trust,
		Mode:    UseReliable,
		Latency: sim.UniformLatency{Min: 1, Max: 20},
		Seed:    3,
	})
	if len(res.Outputs) != n {
		t.Fatalf("%d delivered", len(res.Outputs))
	}
	core := AnalyzeCommonCore(n, res.SSnapshots, res.Outputs, types.FullSet(n))
	if core.IsEmpty() {
		t.Fatal("no common core")
	}
}

// TestAlgorithm3WithCrashFaults: crash a tolerated fail-prone set; every
// maximal-guild member must still deliver, with a common core among the
// guild (Definition 3.1 is stated for executions with a guild).
func TestAlgorithm3WithCrashFaults(t *testing.T) {
	sys, err := quorum.RandomAsymmetric(quorum.RandomAsymmetricConfig{N: 10, NumSets: 3, MaxFault: 2, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	n := sys.N()
	// Choose a faulty set that leaves a sizable guild.
	var faulty types.Set
	found := false
	for i := 0; i < n && !found; i++ {
		for _, fp := range sys.FailProneSets(types.ProcessID(i)) {
			if fp.Count() == 0 {
				continue
			}
			if g := sys.MaximalGuild(fp); g.Count() >= n/2 {
				faulty = fp
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("no suitable faulty set in this random system")
	}
	guild := sys.MaximalGuild(faulty)

	faultyNodes := map[types.ProcessID]sim.Node{}
	for _, p := range faulty.Members() {
		faultyNodes[p] = sim.MuteNode{}
	}
	res := RunCluster(RunConfig{
		Kind:    KindConstantRound,
		Trust:   sys,
		Mode:    UseReliable,
		Latency: sim.UniformLatency{Min: 1, Max: 30},
		Seed:    9,
		Faulty:  faultyNodes,
	})
	for _, p := range guild.Members() {
		if _, ok := res.Outputs[p]; !ok {
			t.Fatalf("guild member %v did not deliver (guild %v, faulty %v)", p, guild, faulty)
		}
	}
	core := AnalyzeCommonCore(n, res.SSnapshots, res.Outputs, guild)
	if core.IsEmpty() {
		t.Fatalf("no common core among guild %v with faulty %v", guild, faulty)
	}
}

// TestAlgorithm3ValidityAndAgreement: delivered values for wise processes
// match their inputs, and no two processes disagree on any value.
func TestAlgorithm3ValidityAndAgreement(t *testing.T) {
	sys := quorum.Counterexample()
	res := RunCluster(RunConfig{
		Kind:    KindConstantRound,
		Trust:   sys,
		Mode:    UseReliable,
		Latency: sim.UniformLatency{Min: 1, Max: 40},
		Seed:    11,
	})
	for p, out := range res.Outputs {
		for src, val := range out.Map() {
			if want := InputValue(src); val != want {
				t.Fatalf("%v delivered (%v,%q), want value %q (validity)", p, src, val, want)
			}
		}
	}
	// Agreement across outputs.
	agreed := map[types.ProcessID]string{}
	for _, out := range res.Outputs {
		for src, val := range out.Map() {
			if prev, ok := agreed[src]; ok && prev != val {
				t.Fatalf("agreement violated for %v: %q vs %q", src, prev, val)
			}
			agreed[src] = val
		}
	}
}

// TestAlgorithm3PropertyRandomSystems: property-style sweep — random valid
// asymmetric systems, random schedules, all-correct: common core always
// exists among all processes.
func TestAlgorithm3PropertyRandomSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	trials := 15
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		n := 5 + rng.Intn(8)
		sys, err := quorum.RandomAsymmetric(quorum.RandomAsymmetricConfig{
			N:        n,
			NumSets:  1 + rng.Intn(3),
			MaxFault: 1 + rng.Intn(max(1, n/4)),
			Seed:     rng.Int63(),
		})
		if err != nil {
			continue
		}
		res := RunCluster(RunConfig{
			Kind:    KindConstantRound,
			Trust:   sys,
			Mode:    UsePlain,
			Latency: sim.UniformLatency{Min: 1, Max: 60},
			Seed:    rng.Int63(),
		})
		if len(res.Outputs) != n {
			t.Fatalf("trial %d: %d of %d delivered", trial, len(res.Outputs), n)
		}
		core := AnalyzeCommonCore(n, res.SSnapshots, res.Outputs, types.FullSet(n))
		if core.IsEmpty() {
			t.Fatalf("trial %d (n=%d): no common core", trial, n)
		}
	}
}

// TestMessageOverheadComparison documents that Algorithm 3 pays extra
// control messages over Algorithm 2 for its soundness.
func TestMessageOverheadComparison(t *testing.T) {
	sys := quorum.Counterexample()
	lat := sim.UniformLatency{Min: 1, Max: 10}
	three := RunCluster(RunConfig{Kind: KindThreeRound, Trust: sys, Mode: UsePlain, Latency: lat, Seed: 2})
	constant := RunCluster(RunConfig{Kind: KindConstantRound, Trust: sys, Mode: UsePlain, Latency: lat, Seed: 2})
	if constant.Metrics.MessagesSent <= three.Metrics.MessagesSent {
		t.Errorf("expected constant-round (%d msgs) to exceed three-round (%d msgs)",
			constant.Metrics.MessagesSent, three.Metrics.MessagesSent)
	}
	t.Logf("three-round: %d msgs; constant-round: %d msgs",
		three.Metrics.MessagesSent, constant.Metrics.MessagesSent)
}

func TestPairsOps(t *testing.T) {
	p := NewPairs(5)
	if !p.Set(1, "a") || !p.Set(2, "b") {
		t.Fatal("Set on fresh keys failed")
	}
	if p.Set(1, "conflict") {
		t.Fatal("conflicting Set should return false")
	}
	q := PairsOf(5, map[types.ProcessID]string{1: "a"})
	if !p.ContainsAll(q) {
		t.Error("ContainsAll subset failed")
	}
	if q.ContainsAll(p) {
		t.Error("ContainsAll superset should fail")
	}
	if q.ContainsAll(PairsOf(5, map[types.ProcessID]string{1: "x"})) {
		t.Error("ContainsAll must compare values")
	}
	c := p.Clone()
	c.Set(3, "c")
	if p.Len() != 2 {
		t.Error("Clone not independent")
	}
	m := PairsOf(5, map[types.ProcessID]string{2: "b", 3: "c"})
	if !p.Merge(m) {
		t.Error("compatible Merge returned false")
	}
	if p.Len() != 3 {
		t.Errorf("Len = %d", p.Len())
	}
	if p.Merge(PairsOf(5, map[types.ProcessID]string{3: "zzz"})) {
		t.Error("conflicting Merge returned true")
	}
	if got := p.Senders(5); !got.Equal(types.NewSetOf(5, 1, 2, 3)) {
		t.Errorf("Senders = %v", got)
	}
	if (Pairs{}).String() != "{}" {
		t.Errorf("empty String = %q", (Pairs{}).String())
	}
	if got := PairsOf(5, map[types.ProcessID]string{0: "v1"}).String(); got != `{1:"v1"}` {
		t.Errorf("String = %q", got)
	}
}

func TestKindString(t *testing.T) {
	if KindThreeRound.String() != "three-round" || KindConstantRound.String() != "constant-round" {
		t.Error("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown Kind should still render")
	}
}

// poisonNode is a Byzantine process that broadcasts a legitimate input but
// then distributes an S set containing a FABRICATED pair for another
// process. Correct Algorithm 3 nodes must never accept it: the
// "S_j ⊆ S_i" precondition passes only for pairs confirmed by the
// reliable broadcast.
type poisonNode struct {
	trust  quorum.Assumption
	victim types.ProcessID
	rb     *broadcast.Reliable
}

func (p *poisonNode) Init(env sim.Env) {
	p.rb = broadcast.NewReliable(env.Self(), p.trust, func(sim.Env, broadcast.Slot, broadcast.Payload) {})
	p.rb.Broadcast(env, 0, broadcast.Bytes("byzantine-input"))
	env.Broadcast(distSMsg{From: env.Self(), S: PairsOf(env.N(), map[types.ProcessID]string{p.victim: "FABRICATED"})})
}

func (p *poisonNode) Receive(env sim.Env, from types.ProcessID, msg sim.Message) {
	p.rb.Handle(env, from, msg) // keep echoing so others' broadcasts complete
}

// TestAlgorithm3RejectsFabricatedPairs: the fabricated pair never enters
// any correct output, and the victim's true value survives.
func TestAlgorithm3RejectsFabricatedPairs(t *testing.T) {
	n, f := 4, 1
	trust := quorum.NewThreshold(n, f)
	byz := types.ProcessID(3)
	victim := types.ProcessID(0)
	res := RunCluster(RunConfig{
		Kind:    KindConstantRound,
		Trust:   trust,
		Mode:    UseReliable,
		Latency: sim.UniformLatency{Min: 1, Max: 25},
		Seed:    13,
		Faulty:  map[types.ProcessID]sim.Node{byz: &poisonNode{trust: trust, victim: victim}},
	})
	correct := types.NewSetOf(n, 0, 1, 2)
	for _, p := range correct.Members() {
		out, ok := res.Outputs[p]
		if !ok {
			t.Fatalf("correct %v did not deliver", p)
		}
		if v, present := out.Get(victim); present && v != InputValue(victim) {
			t.Fatalf("%v delivered fabricated value %q for %v", p, v, victim)
		}
	}
	core := AnalyzeCommonCore(n, res.SSnapshots, res.Outputs, correct)
	if core.IsEmpty() {
		t.Fatal("no common core among correct processes despite poisoning")
	}
}
