package gather

import (
	"repro/internal/broadcast"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// TwoRoundNode is the Tusk-style two-round common-core primitive (paper
// §3.2: "Tusk uses a simpler 2 round common core primitive"), generalized
// with quorum triggers the same way Algorithm 2 generalizes Algorithm 1:
//
//	round 1: broadcast the input; S accumulates deliveries; once S
//	         contains a quorum, send [DISTRIBUTE_S, S] to all.
//	round 2: U accumulates received S sets; once DISTRIBUTE_S messages
//	         have arrived from a quorum, deliver U.
//
// With threshold trust, a common core of n−2f elements exists (Tusk's
// guarantee). With asymmetric quorums the paper notes the Figure 1
// counterexample defeats this primitive as well — reproduced by
// TestTuskTwoRoundCounterexample.
type TwoRoundNode struct {
	cfg  Config
	self types.ProcessID

	bc broadcast.Broadcaster

	s        Pairs
	sSenders *quorum.Tracker
	u        Pairs
	sFrom    *quorum.Tracker

	sentS     bool
	delivered bool

	sSnapshot Pairs
	output    Pairs
}

var _ sim.Node = (*TwoRoundNode)(nil)

// NewTwoRoundNode creates a two-round gather node.
func NewTwoRoundNode(cfg Config) *TwoRoundNode {
	n := cfg.Trust.N()
	return &TwoRoundNode{cfg: cfg, s: NewPairs(n), u: NewPairs(n)}
}

// Init implements sim.Node.
func (n *TwoRoundNode) Init(env sim.Env) {
	n.self = env.Self()
	n.sSenders = quorum.NewTracker(n.cfg.Trust, n.self)
	n.sFrom = quorum.NewTracker(n.cfg.Trust, n.self)
	deliver := func(env sim.Env, slot broadcast.Slot, p broadcast.Payload) {
		n.onInput(env, slot.Src, string(p.(broadcast.Bytes)))
	}
	if n.cfg.Mode == UsePlain {
		n.bc = broadcast.NewPlain(n.self, deliver)
	} else {
		n.bc = broadcast.NewReliable(n.self, n.cfg.Trust, deliver)
	}
	n.bc.Broadcast(env, 0, broadcast.Bytes(n.cfg.Input))
}

func (n *TwoRoundNode) onInput(env sim.Env, src types.ProcessID, value string) {
	if !n.s.Set(src, value) {
		return
	}
	n.sSenders.Add(src)
	if !n.sentS && n.sSenders.HasQuorum() {
		n.sentS = true
		n.sSnapshot = n.s.Snapshot()
		env.Broadcast(distSMsg{From: n.self, S: n.sSnapshot})
	}
}

// Receive implements sim.Node.
func (n *TwoRoundNode) Receive(env sim.Env, from types.ProcessID, msg sim.Message) {
	if n.bc.Handle(env, from, msg) {
		return
	}
	m, ok := msg.(distSMsg)
	if !ok || m.From != from || !m.S.wireValid(env.N()) {
		return
	}
	n.u.Merge(m.S)
	n.sFrom.Add(from)
	if !n.delivered && n.sFrom.HasQuorum() {
		n.delivered = true
		n.output = n.u.Snapshot()
	}
}

// Delivered returns the delivered set, if any.
func (n *TwoRoundNode) Delivered() (Pairs, bool) {
	if !n.delivered {
		return Pairs{}, false
	}
	return n.output, true
}

// SentS returns the S snapshot this node distributed (zero until sent).
func (n *TwoRoundNode) SentS() Pairs { return n.sSnapshot }

// TuskCommonCoreElements computes, for the two-round primitive, the set of
// individual inputs (not whole S sets) present in every delivered output —
// Tusk's common core is a set of elements rather than one process's S set.
func TuskCommonCoreElements(n int, outputs map[types.ProcessID]Pairs, within types.Set) types.Set {
	core := types.FullSet(n)
	for _, p := range within.Members() {
		out, ok := outputs[p]
		if !ok {
			continue
		}
		core = core.Intersect(out.Senders(n))
	}
	return core
}
