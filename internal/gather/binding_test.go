package gather

import (
	"testing"

	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

func runBinding(trust quorum.Assumption, mode Dissemination, lat sim.LatencyModel, seed int64) (map[types.ProcessID]Pairs, map[types.ProcessID]Pairs, *sim.Metrics) {
	n := trust.N()
	nodes := make([]sim.Node, n)
	raw := make([]*BindingNode, n)
	for i := range nodes {
		nd := NewBindingNode(Config{Trust: trust, Input: InputValue(types.ProcessID(i)), Mode: mode})
		nodes[i] = nd
		raw[i] = nd
	}
	r := sim.NewRunner(sim.Config{N: n, Seed: seed, Latency: lat}, nodes)
	r.Run(0)
	outputs := map[types.ProcessID]Pairs{}
	snaps := map[types.ProcessID]Pairs{}
	for i, nd := range raw {
		if out, ok := nd.Delivered(); ok {
			outputs[types.ProcessID(i)] = out
		}
		if s := nd.SentS(); !s.IsZero() {
			snaps[types.ProcessID(i)] = s
		}
	}
	return outputs, snaps, r.Metrics()
}

// TestBindingGatherCommonCore: the binding variant preserves the common
// core on the counterexample system under the adversarial schedule.
func TestBindingGatherCommonCore(t *testing.T) {
	sys := quorum.Counterexample()
	n := sys.N()
	outputs, snaps, _ := runBinding(sys, UsePlain, adversarialLatency(sys), 1)
	if len(outputs) != n {
		t.Fatalf("%d of %d delivered", len(outputs), n)
	}
	core := AnalyzeCommonCore(n, snaps, outputs, types.FullSet(n))
	if core.IsEmpty() {
		t.Fatal("binding gather lost the common core")
	}
}

// TestBindingGatherContainsInnerOutputs: every process's bound output
// contains the inner U set of every process whose DISTRIBUTE_U it
// accepted — in particular the first deliverer's inner U (the binding
// intuition: the first delivered core is inside all later outputs).
func TestBindingGatherContainsInnerOutputs(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	for seed := int64(0); seed < 8; seed++ {
		n := trust.N()
		nodes := make([]sim.Node, n)
		raw := make([]*BindingNode, n)
		for i := range nodes {
			nd := NewBindingNode(Config{Trust: trust, Input: InputValue(types.ProcessID(i)), Mode: UseReliable})
			nodes[i] = nd
			raw[i] = nd
		}
		r := sim.NewRunner(sim.Config{N: n, Seed: seed, Latency: sim.UniformLatency{Min: 1, Max: 40}}, nodes)
		r.Run(0)
		// With a quorum of 3 out of 4 accepted U sets, any two outputs
		// share at least 2 inner U sets; stronger: each output must
		// contain at least one full quorum's inner U sets. We check the
		// pairwise-core property: some inner U is inside every output.
		sharedExists := false
		for j := range raw {
			inner, ok := raw[j].InnerDelivered()
			if !ok {
				continue
			}
			inAll := true
			for i := range raw {
				out, ok := raw[i].Delivered()
				if !ok || !out.ContainsAll(inner) {
					inAll = false
					break
				}
			}
			if inAll {
				sharedExists = true
				break
			}
		}
		if !sharedExists {
			t.Fatalf("seed %d: no inner U set is inside every bound output", seed)
		}
	}
}

// TestBindingGatherExtraRoundCost: the binding variant sends strictly more
// messages (one extra all-to-all exchange).
func TestBindingGatherExtraRoundCost(t *testing.T) {
	sys := quorum.Counterexample()
	lat := sim.UniformLatency{Min: 1, Max: 10}
	_, _, bindMetrics := runBinding(sys, UsePlain, lat, 3)
	plain := RunCluster(RunConfig{Kind: KindConstantRound, Trust: sys, Mode: UsePlain, Latency: lat, Seed: 3})
	extra := bindMetrics.MessagesSent - plain.Metrics.MessagesSent
	// One more n×n exchange: 900 messages on the 30-process system.
	if extra < 30*30 {
		t.Fatalf("binding cost only %d extra messages, want ≥ %d", extra, 30*30)
	}
}

// TestBindingGatherValidity: values in bound outputs are genuine.
func TestBindingGatherValidity(t *testing.T) {
	trust := quorum.NewThreshold(7, 2)
	outputs, _, _ := runBinding(trust, UseReliable, sim.UniformLatency{Min: 1, Max: 25}, 5)
	if len(outputs) != 7 {
		t.Fatalf("%d delivered", len(outputs))
	}
	for p, out := range outputs {
		for src, val := range out.Map() {
			if val != InputValue(src) {
				t.Fatalf("%v delivered wrong value for %v: %q", p, src, val)
			}
		}
	}
}
