package gather

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/types"
)

func encodeWire(t *testing.T, w pairsWire) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPairsGobRoundTrip pins the codec on well-formed data.
func TestPairsGobRoundTrip(t *testing.T) {
	orig := PairsOf(7, map[types.ProcessID]string{0: "a", 3: "b", 6: "c"})
	enc, err := orig.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var got Pairs
	if err := got.GobDecode(enc); err != nil {
		t.Fatal(err)
	}
	if !got.ContainsAll(orig) || !orig.ContainsAll(got) {
		t.Fatalf("round trip lost pairs: %v vs %v", got, orig)
	}
}

// TestPairsGobDecodeRejectsMalformed: adversarial wire payloads must be
// rejected with an error, not crash the decoder or later set operations.
func TestPairsGobDecodeRejectsMalformed(t *testing.T) {
	cases := map[string]pairsWire{
		"process outside universe": {N: 4, Procs: []int32{9}, Vals: []string{"x"}},
		"negative process":         {N: 4, Procs: []int32{-1}, Vals: []string{"x"}},
		"mismatched lengths":       {N: 4, Procs: []int32{1, 2}, Vals: []string{"x"}},
		"negative universe":        {N: -5, Procs: nil, Vals: nil},
		"gigantic universe":        {N: 1 << 30, Procs: nil, Vals: nil},
		"pairs in empty universe":  {N: 0, Procs: []int32{0}, Vals: []string{"x"}},
	}
	for name, w := range cases {
		var p Pairs
		if err := p.GobDecode(encodeWire(t, w)); err == nil {
			t.Errorf("%s: decode accepted malformed payload", name)
		}
	}
}

// TestPendingPairsSupersede pins the buffering semantics: an immediately
// accepted set leaves the sender's earlier buffered set pending, while a
// newly buffered (or conflicting) set supersedes it — mirroring the
// map-overwrite behavior of the rescan implementation this replaced.
func TestPendingPairsSupersede(t *testing.T) {
	s := PairsOf(4, map[types.ProcessID]string{0: "a"})
	pp := newPendingPairs()

	// S1 buffers (waits on p2); S2 is immediately acceptable.
	s1 := PairsOf(4, map[types.ProcessID]string{0: "a", 2: "c"})
	if pp.add(s, 1, s1) {
		t.Fatal("S1 should buffer")
	}
	s2 := PairsOf(4, map[types.ProcessID]string{0: "a"})
	if !pp.add(s, 1, s2) {
		t.Fatal("S2 should be immediately acceptable")
	}
	// S1 must still be pending: delivering (2, "c") wakes it.
	s.Set(2, "c")
	ready := pp.deliver(2, "c")
	if len(ready) != 1 || !ready[0].pairs.ContainsAll(s1) {
		t.Fatalf("S1 lost after immediate accept of S2: ready=%v", ready)
	}

	// A newly buffered set supersedes the sender's earlier buffered one.
	s3 := PairsOf(4, map[types.ProcessID]string{3: "d"})
	s4 := PairsOf(4, map[types.ProcessID]string{3: "e"})
	if pp.add(s, 1, s3) || pp.add(s, 1, s4) {
		t.Fatal("S3/S4 should buffer")
	}
	s.Set(3, "e")
	ready = pp.deliver(3, "e")
	if len(ready) != 1 || !ready[0].pairs.ContainsAll(s4) {
		t.Fatalf("expected only superseding S4 to wake, got %v", ready)
	}
}

// TestPairsWireValid: handlers must drop pair-sets over the wrong universe
// before they reach Merge/ContainsAll.
func TestPairsWireValid(t *testing.T) {
	if !(Pairs{}).wireValid(4) {
		t.Error("zero Pairs must be wire-valid")
	}
	if !NewPairs(4).wireValid(4) {
		t.Error("matching universe must be wire-valid")
	}
	if NewPairs(5).wireValid(4) {
		t.Error("mismatched universe must be rejected")
	}
}
