package gather

import (
	"repro/internal/quorum"
	"repro/internal/types"
)

// This file implements the abstract round-merge execution of the paper's
// Listing 1 (Appendix A): the information-flow skeleton of Algorithm 2
// under the adversarial schedule in which every process hears from exactly
// one of its quorums per round. It regenerates Figures 2–4 and verifies
// Lemma 3.2 purely with set algebra.

// QuorumChoice selects, for each process, the quorum it hears from in each
// round of the abstract execution. CanonicalChoice picks the first quorum,
// matching the single-quorum counterexample system.
type QuorumChoice func(p types.ProcessID) types.Set

// CanonicalChoice returns each process's first quorum.
func CanonicalChoice(sys *quorum.System) QuorumChoice {
	return func(p types.ProcessID) types.Set { return sys.Quorums(p)[0] }
}

// RoundSets computes the per-process known-value sets after `rounds`
// rounds of quorum merging:
//
//	know_0[i] = {i}
//	know_r[i] = ∪_{j ∈ choice(i)} know_{r-1}[j]
//
// With rounds=1 this is the paper's S sets (Figure 2), rounds=2 the T sets
// (Figure 3), rounds=3 the U sets (Figure 4). Values are the proposing
// process IDs themselves, exactly as in Listing 1.
func RoundSets(n int, choice QuorumChoice, rounds int) []types.Set {
	know := make([]types.Set, n)
	for i := range know {
		know[i] = types.NewSetOf(n, types.ProcessID(i))
	}
	for r := 0; r < rounds; r++ {
		next := make([]types.Set, n)
		for i := range next {
			acc := types.NewSet(n)
			choice(types.ProcessID(i)).ForEach(func(j types.ProcessID) bool {
				acc.UnionInPlace(know[j])
				return true
			})
			next[i] = acc
		}
		know = next
	}
	return know
}

// CommonCoreCandidates reports which processes' S sets (round-1 sets) are
// contained in every process's final set — the paper's `all_candidates`
// computation at the end of Listing 1. The execution satisfies the common
// core property iff the result is non-empty.
func CommonCoreCandidates(n int, choice QuorumChoice, finals []types.Set) types.Set {
	sSets := RoundSets(n, choice, 1)
	candidates := types.FullSet(n)
	for j := 0; j < n; j++ {
		sj := sSets[j]
		containedInAll := true
		for i := 0; i < n; i++ {
			if !sj.IsSubsetOf(finals[i]) {
				containedInAll = false
				break
			}
		}
		if !containedInAll {
			candidates.Remove(types.ProcessID(j))
		}
	}
	return candidates
}

// RoundsToCommonCore returns the smallest number of merge rounds after
// which a common core exists under the given choice, searching up to
// maxRounds; it returns maxRounds+1, false if none is reached. The paper
// (Appendix A) notes that quorum consistency forces a common core within
// log₂(n) rounds of this process.
func RoundsToCommonCore(n int, choice QuorumChoice, maxRounds int) (int, bool) {
	for r := 1; r <= maxRounds; r++ {
		finals := RoundSets(n, choice, r)
		if !CommonCoreCandidates(n, choice, finals).IsEmpty() {
			return r, true
		}
	}
	return maxRounds + 1, false
}
