package gather

import (
	"math/rand"
	"testing"

	"repro/internal/quorum"
	"repro/internal/types"
)

// TestListing1SSets checks Figure 2: after one merge round each process
// knows exactly the values of its canonical quorum.
func TestListing1SSets(t *testing.T) {
	sys := quorum.Counterexample()
	choice := CanonicalChoice(sys)
	s := RoundSets(sys.N(), choice, 1)
	for i := 0; i < sys.N(); i++ {
		p := types.ProcessID(i)
		if !s[i].Equal(sys.Quorums(p)[0]) {
			t.Errorf("S set of %v = %v, want its quorum %v", p, s[i], sys.Quorums(p)[0])
		}
	}
}

// TestListing1TSets spot-checks Figure 3 against hand-computed unions.
func TestListing1TSets(t *testing.T) {
	sys := quorum.Counterexample()
	choice := CanonicalChoice(sys)
	ts := RoundSets(sys.N(), choice, 2)
	// T_1 = union of S sets of {1,2,3,4,5,16} =
	// Q1 ∪ Q2 ∪ Q3 ∪ Q4 ∪ Q5 ∪ Q16 (1-based members):
	// {1,2,3,4,5,16} ∪ {1,6,7,8,9,17} ∪ {1,2,3,4,5,18} ∪ {1,6,7,8,9,19}
	// ∪ {2,6,10,11,12,20} ∪ {1,2,3,4,5,16}
	want := types.NewSet(30)
	for _, m := range []int{1, 2, 3, 4, 5, 16, 6, 7, 8, 9, 17, 18, 19, 10, 11, 12, 20} {
		want.Add(types.ProcessID(m - 1))
	}
	if !ts[0].Equal(want) {
		t.Errorf("T set of p1 = %v, want %v", ts[0], want)
	}
}

// TestLemma32NoCommonCore is the paper's Listing 1 verification: after the
// three rounds of Algorithm 2 on the Figure 1 system, NO process's S set is
// contained in every process's U set — the common core property fails.
func TestLemma32NoCommonCore(t *testing.T) {
	sys := quorum.Counterexample()
	choice := CanonicalChoice(sys)
	u := RoundSets(sys.N(), choice, 3)
	candidates := CommonCoreCandidates(sys.N(), choice, u)
	if !candidates.IsEmpty() {
		t.Fatalf("Lemma 3.2 violated in reproduction: candidates = %v", candidates)
	}
}

// TestFigure4Observation checks the paper's explanation of Figure 4: every
// S set contains at least one process in [16,30], and every U set is
// missing at least one process in that range.
func TestFigure4Observation(t *testing.T) {
	sys := quorum.Counterexample()
	choice := CanonicalChoice(sys)
	n := sys.N()
	high := types.NewSet(n)
	for i := 15; i < 30; i++ {
		high.Add(types.ProcessID(i))
	}
	s := RoundSets(n, choice, 1)
	for i := range s {
		if !s[i].Intersects(high) {
			t.Errorf("S set of p%d misses [16,30] entirely: %v", i+1, s[i])
		}
	}
	u := RoundSets(n, choice, 3)
	for i := range u {
		if high.IsSubsetOf(u[i]) {
			t.Errorf("U set of p%d contains all of [16,30]: %v", i+1, u[i])
		}
	}
}

// TestRoundsToCommonCoreLogarithmic: the paper observes that with r rounds
// of this communication, any system with fewer than 2^r processes reaches
// a common core; the 30-process counterexample therefore must succeed
// within log2(30) < 5 extra rounds but not within 3.
func TestRoundsToCommonCoreLogarithmic(t *testing.T) {
	sys := quorum.Counterexample()
	choice := CanonicalChoice(sys)
	r, ok := RoundsToCommonCore(sys.N(), choice, 10)
	if !ok {
		t.Fatal("no common core within 10 rounds")
	}
	if r <= 3 {
		t.Fatalf("common core after %d rounds contradicts Lemma 3.2", r)
	}
	if r > 5 {
		t.Fatalf("common core took %d rounds, expected ≤ log2(30) ≈ 5", r)
	}
	t.Logf("counterexample reaches a common core after %d merge rounds", r)
}

// TestSmallSystemsAlwaysHaveCommonCore reproduces the §3.2 claim: "any
// system having less than 16 processes will always satisfy the common core
// property" after the 3 rounds of Algorithm 2. We search random valid
// asymmetric systems and random quorum choices for a violation.
func TestSmallSystemsAlwaysHaveCommonCore(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 150; trial++ {
		n := 4 + rng.Intn(12) // 4..15
		sys, err := quorum.RandomAsymmetric(quorum.RandomAsymmetricConfig{
			N:        n,
			NumSets:  1 + rng.Intn(3),
			MaxFault: 1 + rng.Intn(max(1, n/4)),
			Seed:     rng.Int63(),
		})
		if err != nil {
			continue
		}
		// Random quorum choice per process.
		choice := func(p types.ProcessID) types.Set {
			qs := sys.Quorums(p)
			return qs[int(p)%len(qs)]
		}
		u := RoundSets(n, choice, 3)
		if CommonCoreCandidates(n, choice, u).IsEmpty() {
			t.Fatalf("found a <16-process violation (n=%d), contradicting §3.2", n)
		}
	}
}

// TestQuorumConsistencyForcesPairwiseSharing: after 3 rounds any two
// processes share at least one S set (the reason small systems always have
// a common core). Verified on the counterexample itself.
func TestQuorumConsistencyForcesPairwiseSharing(t *testing.T) {
	sys := quorum.Counterexample()
	choice := CanonicalChoice(sys)
	n := sys.N()
	s := RoundSets(n, choice, 1)
	u := RoundSets(n, choice, 3)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			shared := false
			for k := 0; k < n; k++ {
				if s[k].IsSubsetOf(u[i]) && s[k].IsSubsetOf(u[j]) {
					shared = true
					break
				}
			}
			if !shared {
				t.Fatalf("p%d and p%d share no S set after 3 rounds", i+1, j+1)
			}
		}
	}
}

func TestRoundSetsZeroRounds(t *testing.T) {
	sys := quorum.Counterexample()
	s := RoundSets(sys.N(), CanonicalChoice(sys), 0)
	for i := range s {
		if !s[i].Equal(types.NewSetOf(sys.N(), types.ProcessID(i))) {
			t.Errorf("round 0 set of p%d = %v", i+1, s[i])
		}
	}
}

// TestThresholdAbstractCommonCore: on a threshold system the 3-round
// abstract execution always reaches a common core, whatever quorums are
// chosen (sanity for the symmetric baseline).
func TestThresholdAbstractCommonCore(t *testing.T) {
	sys, err := quorum.NewThresholdExplicit(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		// Fix the per-process choice up front: QuorumChoice must be a
		// stable function of the process.
		chosen := make([]types.Set, 7)
		for i := range chosen {
			qs := sys.Quorums(types.ProcessID(i))
			chosen[i] = qs[rng.Intn(len(qs))]
		}
		choice := func(p types.ProcessID) types.Set { return chosen[p] }
		u := RoundSets(7, choice, 3)
		if CommonCoreCandidates(7, choice, u).IsEmpty() {
			t.Fatal("threshold system lost the common core in abstract execution")
		}
	}
}
