package gather

import (
	"repro/internal/broadcast"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// Control messages of Algorithm 3.

type ackMsg struct{}

type readyMsg struct{}

type confirmMsg struct{}

// ConstantRoundNode runs the paper's Algorithm 3, the first constant-round
// asymmetric gather:
//
//	line 42–45: arb-broadcast the input; S accumulates arb-deliveries.
//	line 46–47: once S contains a quorum, send [DISTRIBUTE_S, S] to all.
//	line 48–50: on [DISTRIBUTE_S, S_j] with S_j ⊆ S and ¬sentT:
//	            T ∪= S_j and ACK the sender. (Arrivals whose components
//	            have not all been arb-delivered yet are buffered.)
//	line 51–52: on ACKs from a quorum, send READY to all.
//	line 53–54: on READY from a quorum, send CONFIRM to all.
//	line 55–56: on CONFIRM from a kernel, send CONFIRM to all (Bracha
//	            amplification).
//	line 57–59: on CONFIRM from a quorum, send [DISTRIBUTE_T, T] and stop
//	            acknowledging.
//	line 60–61: on [DISTRIBUTE_T, T_j] with T_j ⊆ S: U ∪= T_j.
//	line 62–63: once accepted DISTRIBUTE_T messages cover a quorum,
//	            ag-deliver(U).
//
// The ACK/READY/CONFIRM flow guarantees that before anyone distributes its
// T set, some maximal-guild process has placed its S set in the T set of a
// full quorum — which quorum consistency then spreads into everyone's U
// set (Lemmas 3.3–3.7).
//
// All quorum tallies are incremental quorum.Tracker values and buffered
// DISTRIBUTE sets re-check only against the arb-delivery that may unblock
// them (pendingPairs), so each message is processed in amortized O(words)
// instead of re-scanning quorums and pending buffers.
type ConstantRoundNode struct {
	cfg  Config
	self types.ProcessID

	bc broadcast.Broadcaster

	s        Pairs
	sSenders *quorum.Tracker
	t        Pairs
	u        Pairs

	acks     *quorum.Tracker
	readies  *quorum.Tracker
	confirms *quorum.Tracker
	tFrom    *quorum.Tracker

	pendingS *pendingPairs
	pendingT *pendingPairs

	sentS       bool
	sentReady   bool
	sentConfirm bool
	sentT       bool
	delivered   bool

	sSnapshot Pairs
	output    Pairs

	// inputHook, when set, observes every accepted arb-delivery (used by
	// BindingNode to unblock its own buffered U sets).
	inputHook func(env sim.Env, src types.ProcessID, value string)
}

var _ sim.Node = (*ConstantRoundNode)(nil)

// NewConstantRoundNode creates an Algorithm 3 node; the protocol starts at
// Init.
func NewConstantRoundNode(cfg Config) *ConstantRoundNode {
	n := cfg.Trust.N()
	return &ConstantRoundNode{
		cfg:      cfg,
		s:        NewPairs(n),
		t:        NewPairs(n),
		u:        NewPairs(n),
		pendingS: newPendingPairs(),
		pendingT: newPendingPairs(),
	}
}

// Init implements sim.Node: ag-propose(input).
func (n *ConstantRoundNode) Init(env sim.Env) {
	n.self = env.Self()
	n.sSenders = quorum.NewTracker(n.cfg.Trust, n.self)
	n.acks = quorum.NewTracker(n.cfg.Trust, n.self)
	n.readies = quorum.NewTracker(n.cfg.Trust, n.self)
	n.confirms = quorum.NewTracker(n.cfg.Trust, n.self)
	n.tFrom = quorum.NewTracker(n.cfg.Trust, n.self)
	deliver := func(env sim.Env, slot broadcast.Slot, p broadcast.Payload) {
		n.onInput(env, slot.Src, string(p.(broadcast.Bytes)))
	}
	if n.cfg.Mode == UsePlain {
		n.bc = broadcast.NewPlain(n.self, deliver)
	} else {
		n.bc = broadcast.NewReliable(n.self, n.cfg.Trust, deliver)
	}
	n.bc.Broadcast(env, 0, broadcast.Bytes(n.cfg.Input))
}

func (n *ConstantRoundNode) onInput(env sim.Env, src types.ProcessID, value string) {
	if !n.s.Set(src, value) {
		return
	}
	n.sSenders.Add(src)
	if !n.sentS && n.sSenders.HasQuorum() {
		n.sentS = true
		n.sSnapshot = n.s.Snapshot()
		env.Broadcast(distSMsg{From: n.self, S: n.sSnapshot})
	}
	// Wake exactly the buffered DISTRIBUTE sets waiting on this delivery.
	for _, e := range n.pendingS.deliver(src, value) {
		if !n.sentT {
			n.acceptS(env, e.from, e.pairs)
		}
	}
	for _, e := range n.pendingT.deliver(src, value) {
		n.acceptT(env, e.from, e.pairs)
	}
	if n.inputHook != nil {
		n.inputHook(env, src, value)
	}
}

func (n *ConstantRoundNode) acceptS(env sim.Env, from types.ProcessID, s Pairs) {
	n.t.Merge(s)
	env.Send(from, ackMsg{})
}

func (n *ConstantRoundNode) acceptT(env sim.Env, from types.ProcessID, t Pairs) {
	n.u.Merge(t)
	n.tFrom.Add(from)
	if !n.delivered && n.tFrom.HasQuorum() {
		n.delivered = true
		n.output = n.u.Snapshot()
	}
}

// Receive implements sim.Node.
func (n *ConstantRoundNode) Receive(env sim.Env, from types.ProcessID, msg sim.Message) {
	if n.bc.Handle(env, from, msg) {
		return
	}
	switch m := msg.(type) {
	case distSMsg:
		if m.From != from || !m.S.wireValid(env.N()) {
			return
		}
		if n.sentT {
			return // line 48: no ACK once T was distributed
		}
		if n.pendingS.add(n.s, from, m.S) {
			n.acceptS(env, from, m.S)
		}
	case ackMsg:
		n.acks.Add(from)
		if !n.sentReady && n.acks.HasQuorum() {
			n.sentReady = true
			env.Broadcast(readyMsg{})
		}
	case readyMsg:
		n.readies.Add(from)
		if !n.sentConfirm && n.readies.HasQuorum() {
			n.sentConfirm = true
			env.Broadcast(confirmMsg{})
		}
	case confirmMsg:
		n.confirms.Add(from)
		if !n.sentConfirm && n.confirms.HasKernel() {
			n.sentConfirm = true
			env.Broadcast(confirmMsg{})
		}
		if !n.sentT && n.confirms.HasQuorum() {
			n.sentT = true
			n.pendingS.clear() // stop acknowledging
			env.Broadcast(distTMsg{From: n.self, T: n.t.Snapshot()})
		}
	case distTMsg:
		if m.From != from || !m.T.wireValid(env.N()) {
			return
		}
		if n.pendingT.add(n.s, from, m.T) {
			n.acceptT(env, from, m.T)
		}
	}
}

// Delivered returns the ag-delivered set, if any.
func (n *ConstantRoundNode) Delivered() (Pairs, bool) {
	if !n.delivered {
		return Pairs{}, false
	}
	return n.output, true
}

// SentS returns the S snapshot this node distributed (zero until sent).
func (n *ConstantRoundNode) SentS() Pairs { return n.sSnapshot }

// KnownInputs returns a copy (a copy-on-write snapshot) of every
// (process, value) pair this node has arb-delivered so far — a superset
// of the delivered U set. Composed protocols (internal/acs) use it to
// look up values for processes whose inclusion was agreed on.
func (n *ConstantRoundNode) KnownInputs() Pairs { return n.s.Snapshot() }
