package gather

import (
	"fmt"

	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// Kind selects a gather protocol for RunCluster.
type Kind int

const (
	// KindThreeRound is Algorithm 1 (threshold trust) / Algorithm 2
	// (asymmetric trust).
	KindThreeRound Kind = iota
	// KindConstantRound is Algorithm 3.
	KindConstantRound
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindThreeRound:
		return "three-round"
	case KindConstantRound:
		return "constant-round"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// RunConfig configures one gather execution.
type RunConfig struct {
	Kind    Kind
	Trust   quorum.Assumption
	Mode    Dissemination
	Latency sim.LatencyModel
	Seed    int64
	// Faulty optionally replaces nodes with faulty behaviours.
	Faulty map[types.ProcessID]sim.Node
	// Fault is an optional scenario fault plane (see sim.FaultPlane).
	Fault sim.FaultPlane
	// MaxEvents bounds the run (0 = the generous sim.DefaultEventBudget,
	// < 0 = unbounded) — the convention shared with the other protocol
	// runners, so a non-quiescing schedule cannot hang a gather sweep.
	// RunResult reports a truncated run via HitLimit.
	MaxEvents int
}

// RunResult captures everything the experiments need from one execution.
type RunResult struct {
	// Outputs maps each process that g-delivered to its output set.
	Outputs map[types.ProcessID]Pairs
	// SSnapshots maps each process that distributed an S set to that
	// snapshot (the common core, when it exists, is one of these).
	SSnapshots map[types.ProcessID]Pairs
	// Metrics are the network statistics of the run.
	Metrics *sim.Metrics
	// EndTime is the virtual time of quiescence (or cutoff).
	EndTime sim.VirtualTime
	// HitLimit reports that the run stopped at the MaxEvents budget with
	// deliveries still pending, instead of reaching quiescence.
	HitLimit bool
}

// InputValue is the conventional test input of a process.
func InputValue(p types.ProcessID) string { return fmt.Sprintf("v%d", int(p)+1) }

// RunCluster executes one gather instance across cfg.Trust.N() processes
// and collects the outputs. Process p proposes InputValue(p).
func RunCluster(cfg RunConfig) RunResult {
	n := cfg.Trust.N()
	nodes := make([]sim.Node, n)
	for i := range nodes {
		c := Config{Trust: cfg.Trust, Input: InputValue(types.ProcessID(i)), Mode: cfg.Mode}
		if cfg.Kind == KindConstantRound {
			nodes[i] = NewConstantRoundNode(c)
		} else {
			nodes[i] = NewThreeRoundNode(c)
		}
	}
	for p, f := range cfg.Faulty {
		nodes[p] = f
	}
	limit := sim.ResolveEventBudget(cfg.MaxEvents)
	r := sim.NewRunner(sim.Config{N: n, Seed: cfg.Seed, Latency: cfg.Latency, Fault: cfg.Fault}, nodes)
	r.Run(limit)

	res := RunResult{
		Outputs:    map[types.ProcessID]Pairs{},
		SSnapshots: map[types.ProcessID]Pairs{},
		Metrics:    r.Metrics(),
		EndTime:    r.Now(),
		HitLimit:   limit > 0 && r.Pending() > 0,
	}
	for i, nd := range nodes {
		p := types.ProcessID(i)
		switch g := nd.(type) {
		case *ThreeRoundNode:
			if out, ok := g.Delivered(); ok {
				res.Outputs[p] = out
			}
			if s := g.SentS(); !s.IsZero() {
				res.SSnapshots[p] = s
			}
		case *ConstantRoundNode:
			if out, ok := g.Delivered(); ok {
				res.Outputs[p] = out
			}
			if s := g.SentS(); !s.IsZero() {
				res.SSnapshots[p] = s
			}
		}
	}
	return res
}
