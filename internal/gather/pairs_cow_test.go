package gather

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/types"
)

// naivePairs is the retained deep-copy reference implementation of the
// pair-set semantics: a plain map, every clone and snapshot an eager full
// copy. The differential suite below drives it in lockstep with the
// copy-on-write Pairs — aliasing bugs are the classic COW failure mode,
// and this is the oracle that catches them.
type naivePairs struct {
	n int
	m map[types.ProcessID]string
}

func newNaivePairs(n int) *naivePairs {
	return &naivePairs{n: n, m: map[types.ProcessID]string{}}
}

func (p *naivePairs) set(k types.ProcessID, v string) bool {
	if old, ok := p.m[k]; ok {
		return old == v
	}
	p.m[k] = v
	return true
}

func (p *naivePairs) merge(other *naivePairs) bool {
	ok := true
	for k := types.ProcessID(0); int(k) < p.n; k++ {
		v, present := other.m[k]
		if !present {
			continue
		}
		if old, had := p.m[k]; had {
			if old != v {
				ok = false
			}
		} else {
			p.m[k] = v
		}
	}
	return ok
}

func (p *naivePairs) containsAll(other *naivePairs) bool {
	for k, v := range other.m {
		if got, ok := p.m[k]; !ok || got != v {
			return false
		}
	}
	return true
}

func (p *naivePairs) clone() *naivePairs {
	c := newNaivePairs(p.n)
	for k, v := range p.m {
		c.m[k] = v
	}
	return c
}

// requirePairsEqual asserts that the COW instance and the naive reference
// expose identical observable state through every read accessor.
func requirePairsEqual(t *testing.T, label string, cow Pairs, ref *naivePairs) {
	t.Helper()
	if cow.Len() != len(ref.m) {
		t.Fatalf("%s: Len %d, reference has %d", label, cow.Len(), len(ref.m))
	}
	for k := types.ProcessID(0); int(k) < ref.n; k++ {
		wantV, want := ref.m[k]
		gotV, got := cow.Get(k)
		if got != want || gotV != wantV {
			t.Fatalf("%s: Get(%d) = (%q,%v), reference (%q,%v)", label, k, gotV, got, wantV, want)
		}
		if cow.Contains(k) != want {
			t.Fatalf("%s: Contains(%d) = %v, reference %v", label, k, cow.Contains(k), want)
		}
	}
	m := cow.Map()
	if len(m) != len(ref.m) {
		t.Fatalf("%s: Map has %d entries, reference %d", label, len(m), len(ref.m))
	}
	for k, v := range ref.m {
		if m[k] != v {
			t.Fatalf("%s: Map[%d] = %q, reference %q", label, k, m[k], v)
		}
	}
}

// TestPairsCOWDifferential drives random op sequences — Set, Merge,
// Clone, Snapshot, Get, Contains, ContainsAll — against both the COW
// Pairs and the naive deep-copy reference, asserting identical observable
// state across every live instance after every op. Snapshots are the
// interesting part: the naive model copies eagerly, so any COW aliasing
// leak (a mutation bleeding into a snapshot, or a snapshot pinning stale
// state) shows up as a divergence.
func TestPairsCOWDifferential(t *testing.T) {
	const (
		seeds     = 200
		opsPerRun = 120
		maxInsts  = 8
	)
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(80) // spans single- and multi-word bitsets
		vals := []string{"a", "b", "c"}

		cows := []Pairs{NewPairs(n)}
		refs := []*naivePairs{newNaivePairs(n)}

		place := func(cow Pairs, ref *naivePairs) {
			if len(cows) < maxInsts {
				cows = append(cows, cow)
				refs = append(refs, ref)
			} else {
				at := rng.Intn(len(cows))
				cows[at] = cow
				refs[at] = ref
			}
		}

		for op := 0; op < opsPerRun; op++ {
			i := rng.Intn(len(cows))
			label := fmt.Sprintf("seed %d op %d inst %d", seed, op, i)
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // Set
				k := types.ProcessID(rng.Intn(n))
				v := vals[rng.Intn(len(vals))]
				if got, want := cows[i].Set(k, v), refs[i].set(k, v); got != want {
					t.Fatalf("%s: Set(%d,%q) = %v, reference %v", label, k, v, got, want)
				}
			case 4, 5: // Merge
				j := rng.Intn(len(cows))
				if got, want := cows[i].Merge(cows[j]), refs[i].merge(refs[j]); got != want {
					t.Fatalf("%s: Merge(inst %d) = %v, reference %v", label, j, got, want)
				}
			case 6: // Clone
				place(cows[i].Clone(), refs[i].clone())
			case 7, 8: // Snapshot (naive model: an eager deep copy)
				place(cows[i].Snapshot(), refs[i].clone())
			case 9: // ContainsAll
				j := rng.Intn(len(cows))
				if got, want := cows[i].ContainsAll(cows[j]), refs[i].containsAll(refs[j]); got != want {
					t.Fatalf("%s: ContainsAll(inst %d) = %v, reference %v", label, j, got, want)
				}
			}
			for x := range cows {
				requirePairsEqual(t, fmt.Sprintf("%s check inst %d", label, x), cows[x], refs[x])
			}
		}
	}
}

// TestPairsSnapshotImmuneToLaterMutations is the broadcast-path
// regression: the snapshot a node broadcasts at a quorum trigger must not
// change when the sender's live set keeps growing afterwards — in either
// direction.
func TestPairsSnapshotImmuneToLaterMutations(t *testing.T) {
	p := NewPairs(70)
	p.Set(0, "a")
	p.Set(65, "b")

	snap := p.Snapshot()
	p.Set(2, "c")
	p.Merge(PairsOf(70, map[types.ProcessID]string{3: "d", 64: "e"}))

	if snap.Len() != 2 {
		t.Fatalf("snapshot grew to %d pairs after sender mutations", snap.Len())
	}
	for _, k := range []types.ProcessID{2, 3, 64} {
		if snap.Contains(k) {
			t.Fatalf("snapshot absorbed pair %d added after the trigger", k)
		}
	}
	if v, _ := snap.Get(0); v != "a" {
		t.Fatalf("snapshot value for 0 changed to %q", v)
	}

	// The reverse direction: mutating a snapshot must not leak into the
	// live set (a receiver merging into a delivered output, say).
	snap2 := p.Snapshot()
	snap2.Set(10, "z")
	if p.Contains(10) {
		t.Fatal("mutating a snapshot leaked into its parent")
	}
	if !snap2.Contains(10) {
		t.Fatal("snapshot mutation lost")
	}

	// Snapshot of a snapshot freezes independently too.
	s3 := snap2.Snapshot()
	snap2.Set(11, "y")
	if s3.Contains(11) {
		t.Fatal("second-level snapshot absorbed a later mutation")
	}
}

// TestPairsSnapshotIsO1 pins the tentpole: taking a snapshot must not
// copy the backing storage, regardless of the set's size.
func TestPairsSnapshotIsO1(t *testing.T) {
	p := NewPairs(1024)
	for i := 0; i < 1024; i++ {
		p.Set(types.ProcessID(i), "v")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if s := p.Snapshot(); s.Len() != 1024 {
			t.Fatal("bad snapshot")
		}
	})
	if allocs != 0 {
		t.Fatalf("Snapshot allocates %.0f objects per call, want 0", allocs)
	}
}

// TestPairsSnapshotZero covers the zero-value sentinel: nodes snapshot
// only after initialization, but analysis code snapshots whatever it got.
func TestPairsSnapshotZero(t *testing.T) {
	var p Pairs
	s := p.Snapshot()
	if !s.IsZero() {
		t.Fatal("snapshot of zero Pairs is not zero")
	}
}

// TestPairsMergeSharedDoesNotCopyForSubsets: merging a subset (including
// a snapshot of the receiver itself) must not trigger the COW copy — the
// fast path the DISTRIBUTE handlers hit once their T/U sets have
// converged.
func TestPairsMergeSharedDoesNotCopyForSubsets(t *testing.T) {
	p := NewPairs(64)
	for i := 0; i < 64; i++ {
		p.Set(types.ProcessID(i), "v")
	}
	snap := p.Snapshot()
	allocs := testing.AllocsPerRun(100, func() {
		if !p.Merge(snap) {
			t.Fatal("self-subset merge must succeed")
		}
	})
	if allocs != 0 {
		t.Fatalf("subset merge into a shared Pairs allocates %.0f objects, want 0", allocs)
	}
}
