package gather

import (
	"testing"

	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// runTwoRound executes a cluster of TwoRoundNodes (not covered by
// RunCluster, which handles the paper's two main protocols).
func runTwoRound(trust quorum.Assumption, mode Dissemination, lat sim.LatencyModel, seed int64) (map[types.ProcessID]Pairs, map[types.ProcessID]Pairs) {
	n := trust.N()
	nodes := make([]sim.Node, n)
	raw := make([]*TwoRoundNode, n)
	for i := range nodes {
		nd := NewTwoRoundNode(Config{Trust: trust, Input: InputValue(types.ProcessID(i)), Mode: mode})
		nodes[i] = nd
		raw[i] = nd
	}
	r := sim.NewRunner(sim.Config{N: n, Seed: seed, Latency: lat}, nodes)
	r.Run(0)
	outputs := map[types.ProcessID]Pairs{}
	snaps := map[types.ProcessID]Pairs{}
	for i, nd := range raw {
		if out, ok := nd.Delivered(); ok {
			outputs[types.ProcessID(i)] = out
		}
		if s := nd.SentS(); !s.IsZero() {
			snaps[types.ProcessID(i)] = s
		}
	}
	return outputs, snaps
}

// TestTuskTwoRoundThreshold: with threshold trust, the two-round primitive
// guarantees at least n−2f inputs common to every output.
func TestTuskTwoRoundThreshold(t *testing.T) {
	n, f := 7, 2
	trust := quorum.NewThreshold(n, f)
	for seed := int64(0); seed < 10; seed++ {
		outputs, _ := runTwoRound(trust, UseReliable, sim.UniformLatency{Min: 1, Max: 40}, seed)
		if len(outputs) != n {
			t.Fatalf("seed %d: %d delivered", seed, len(outputs))
		}
		core := TuskCommonCoreElements(n, outputs, types.FullSet(n))
		if core.Count() < n-2*f {
			t.Fatalf("seed %d: common elements %v < n−2f = %d", seed, core, n-2*f)
		}
	}
}

// TestTuskTwoRoundCounterexample reproduces the paper's §3.2 remark: the
// same Figure 1 counterexample defeats the asymmetric translation of
// Tusk's two-round primitive — under the adversarial schedule the
// intersection of all outputs is EMPTY.
func TestTuskTwoRoundCounterexample(t *testing.T) {
	sys := quorum.Counterexample()
	n := sys.N()
	outputs, _ := runTwoRound(sys, UsePlain, adversarialLatency(sys), 1)
	if len(outputs) != n {
		t.Fatalf("%d delivered", len(outputs))
	}
	core := TuskCommonCoreElements(n, outputs, types.FullSet(n))
	if !core.IsEmpty() {
		t.Fatalf("expected empty common element set, got %v", core)
	}
	// The abstract 2-round merge agrees with the message-level outputs.
	abstract := RoundSets(n, CanonicalChoice(sys), 2)
	for p, out := range outputs {
		if !out.Senders(n).Equal(abstract[p]) {
			t.Errorf("%v delivered %v, abstract 2-round predicts %v", p, out.Senders(n), abstract[p])
		}
	}
}

// TestTuskTwoRoundCheaperThanThreeRound documents the cost ordering of the
// three primitives on one system.
func TestTuskTwoRoundCheaperThanThreeRound(t *testing.T) {
	sys := quorum.Counterexample()
	lat := sim.UniformLatency{Min: 1, Max: 10}

	n := sys.N()
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = NewTwoRoundNode(Config{Trust: sys, Input: InputValue(types.ProcessID(i)), Mode: UsePlain})
	}
	r := sim.NewRunner(sim.Config{N: n, Seed: 2, Latency: lat}, nodes)
	r.Run(0)
	two := r.Metrics().MessagesSent

	three := RunCluster(RunConfig{Kind: KindThreeRound, Trust: sys, Mode: UsePlain, Latency: lat, Seed: 2}).Metrics.MessagesSent
	constant := RunCluster(RunConfig{Kind: KindConstantRound, Trust: sys, Mode: UsePlain, Latency: lat, Seed: 2}).Metrics.MessagesSent
	if !(two < three && three < constant) {
		t.Errorf("expected msg ordering two(%d) < three(%d) < constant(%d)", two, three, constant)
	}
}
