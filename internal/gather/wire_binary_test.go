package gather

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/wire"
)

func randomPairs(rng *rand.Rand, n int) Pairs {
	p := NewPairs(n)
	for k := 0; k < n; k++ {
		if rng.Intn(2) == 0 {
			raw := make([]byte, rng.Intn(40))
			rng.Read(raw)
			p.Set(types.ProcessID(k), string(raw))
		}
	}
	return p
}

// roundTrip marshals msg, checks the simulator's byte metric against the
// real frame length, decodes, and checks the re-encoding is byte-identical.
func roundTrip(t *testing.T, msg sim.Message) sim.Message {
	t.Helper()
	enc, err := wire.Marshal(msg)
	if err != nil {
		t.Fatalf("%T: marshal: %v", msg, err)
	}
	if got := sim.MessageSize(msg); got != len(enc) {
		t.Fatalf("%T: MessageSize %d != wire length %d", msg, got, len(enc))
	}
	dec, rest, err := wire.Decode(enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("%T: decode: %v (rest %d)", msg, err, len(rest))
	}
	re, err := wire.Marshal(dec)
	if err != nil {
		t.Fatalf("%T: re-marshal: %v", msg, err)
	}
	if !bytes.Equal(enc, re) {
		t.Fatalf("%T: re-encode differs:\n  %x\n  %x", msg, enc, re)
	}
	return dec.(sim.Message)
}

// TestGatherWireRoundTrip is the gather slice of the differential wire
// suite: randomized Pairs payloads round-trip byte-identically through
// every DISTRIBUTE message, and the control messages stay zero-body.
func TestGatherWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(40)
		p := randomPairs(rng, n)
		from := types.ProcessID(rng.Intn(n))

		if got := roundTrip(t, distSMsg{From: from, S: p}).(distSMsg); got.From != from || !got.S.ContainsAll(p) || !p.ContainsAll(got.S) {
			t.Fatalf("distS round trip lost pairs")
		}
		if got := roundTrip(t, distTMsg{From: from, T: p}).(distTMsg); got.From != from || !got.T.ContainsAll(p) {
			t.Fatalf("distT round trip lost pairs")
		}
		if got := roundTrip(t, distUMsg{From: from, U: p}).(distUMsg); got.From != from || !got.U.ContainsAll(p) {
			t.Fatalf("distU round trip lost pairs")
		}
		roundTrip(t, Pairs{})
		if got := roundTrip(t, p).(Pairs); !got.ContainsAll(p) || !p.ContainsAll(got) {
			t.Fatalf("bare Pairs round trip lost pairs")
		}
	}
	roundTrip(t, ackMsg{})
	roundTrip(t, readyMsg{})
	roundTrip(t, confirmMsg{})

	// The zero Pairs encodes as universe 0 and decodes back to zero.
	enc, err := wire.Marshal(Pairs{})
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := wire.Decode(enc)
	if err != nil || !dec.(Pairs).IsZero() {
		t.Fatalf("zero Pairs decoded to %v (%v)", dec, err)
	}
}

// TestGatherWireRejectsMalformed mirrors the gob codec's adversarial
// cases at the binary layer.
func TestGatherWireRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty body":        {},
		"huge universe":     wire.AppendUvarint(nil, uint64(maxWireUniverse)+1),
		"truncated words":   wire.AppendUvarint(nil, 100),
		"missing values":    wire.AppendSet(nil, types.NewSetOf(4, 1, 2)),
		"stray sender bits": append(wire.AppendUvarint(nil, 3), 0xFF, 0, 0, 0, 0, 0, 0, 0),
	}
	for name, body := range cases {
		frame := append(wire.AppendUvarint(nil, wireTagPairs), body...)
		if _, _, err := wire.Decode(frame); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestGatherWireSizeIsExact cross-checks wireSize against the encoder for
// a spread of universes crossing word boundaries.
func TestGatherWireSizeIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{1, 63, 64, 65, 127, 128, 129, 500} {
		p := randomPairs(rng, n)
		enc := p.appendWire(nil)
		if got := p.wireSize(); got != len(enc) {
			t.Errorf("n=%d: wireSize %d, encoded %d", n, got, len(enc))
		}
	}
	if fmt.Sprintf("%d", (Pairs{}).wireSize()) != "1" {
		t.Error("zero Pairs body must be exactly the universe-0 uvarint")
	}
}
