// Binary wire codec registration for the register messages (see
// internal/wire for the frame layout and tag-range assignments).
//
// A value-carrying body is [uvarint op][uvarint ts][uvarint len + val];
// an ack/query body is just [uvarint op]. Timestamps are non-negative at
// correct processes (the writer counts up from zero); a negative
// timestamp — constructible only by an in-simulation Byzantine replica —
// is reported as unencodable rather than panicking the encoder.
package register

import (
	"fmt"

	"repro/internal/wire"
)

// Wire tags (range 80–89, assigned in internal/wire's central table).
const (
	wireTagWrite        = 80
	wireTagWriteAck     = 81
	wireTagRead         = 82
	wireTagReadReply    = 83
	wireTagWriteBack    = 84
	wireTagWriteBackAck = 85
)

// maxWireTs bounds timestamps accepted off the wire (one write per
// timestamp keeps honest values far below this).
const maxWireTs = 1 << 40

func init() { registerWireCodecs() }

// registerOpMsg registers a message whose body is a single operation id.
func registerOpMsg(tag uint64, prototype any, get func(any) uint64, build func(uint64) any) {
	wire.Register(tag, prototype, wire.Codec{
		Size: func(msg any) (int, bool) { return wire.UvarintSize(get(msg)), true },
		Append: func(dst []byte, msg any) ([]byte, error) {
			return wire.AppendUvarint(dst, get(msg)), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			op, rest, err := wire.ReadUvarint(b)
			if err != nil {
				return nil, b, fmt.Errorf("register: wire op: %w", err)
			}
			return build(op), rest, nil
		},
	})
}

// registerValueMsg registers a message carrying (op, ts, val).
func registerValueMsg(tag uint64, prototype any,
	get func(any) (uint64, int64, string), build func(uint64, int64, string) any) {
	wire.Register(tag, prototype, wire.Codec{
		Size: func(msg any) (int, bool) {
			op, ts, val := get(msg)
			if ts < 0 {
				return 0, false
			}
			return wire.UvarintSize(op) + wire.UvarintSize(uint64(ts)) + wire.StringSize(val), true
		},
		Append: func(dst []byte, msg any) ([]byte, error) {
			op, ts, val := get(msg)
			if ts < 0 {
				return nil, fmt.Errorf("register: negative timestamp %d", ts)
			}
			dst = wire.AppendUvarint(dst, op)
			dst = wire.AppendUvarint(dst, uint64(ts))
			return wire.AppendString(dst, val), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			op, rest, err := wire.ReadUvarint(b)
			if err != nil {
				return nil, b, fmt.Errorf("register: wire op: %w", err)
			}
			ts, rest, err := wire.ReadUvarint(rest)
			if err != nil {
				return nil, b, fmt.Errorf("register: wire ts: %w", err)
			}
			if ts > maxWireTs {
				return nil, b, fmt.Errorf("register: wire ts %d out of range", ts)
			}
			val, rest, err := wire.ReadString(rest)
			if err != nil {
				return nil, b, fmt.Errorf("register: wire val: %w", err)
			}
			return build(op, int64(ts), val), rest, nil
		},
	})
}

func registerWireCodecs() {
	registerValueMsg(wireTagWrite, writeMsg{},
		func(m any) (uint64, int64, string) { w := m.(writeMsg); return w.Op, w.Ts, w.Val },
		func(op uint64, ts int64, val string) any { return writeMsg{Op: op, Ts: ts, Val: val} })
	registerValueMsg(wireTagReadReply, readReplyMsg{},
		func(m any) (uint64, int64, string) { w := m.(readReplyMsg); return w.Op, w.Ts, w.Val },
		func(op uint64, ts int64, val string) any { return readReplyMsg{Op: op, Ts: ts, Val: val} })
	registerValueMsg(wireTagWriteBack, writeBackMsg{},
		func(m any) (uint64, int64, string) { w := m.(writeBackMsg); return w.Op, w.Ts, w.Val },
		func(op uint64, ts int64, val string) any { return writeBackMsg{Op: op, Ts: ts, Val: val} })
	registerOpMsg(wireTagWriteAck, writeAckMsg{},
		func(m any) uint64 { return m.(writeAckMsg).Op },
		func(op uint64) any { return writeAckMsg{Op: op} })
	registerOpMsg(wireTagRead, readMsg{},
		func(m any) uint64 { return m.(readMsg).Op },
		func(op uint64) any { return readMsg{Op: op} })
	registerOpMsg(wireTagWriteBackAck, writeBackAckMsg{},
		func(m any) uint64 { return m.(writeBackAckMsg).Op },
		func(op uint64) any { return writeBackAckMsg{Op: op} })
}
