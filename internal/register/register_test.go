package register

import (
	"fmt"
	"testing"

	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// regNode drives a Register through a scripted sequence of operations.
type regNode struct {
	reg    *Register
	writer types.ProcessID
	trust  quorum.Assumption
	script func(env sim.Env, r *Register)
}

func (n *regNode) Init(env sim.Env) {
	n.reg = New(env.Self(), n.writer, env.N(), n.trust)
	if n.script != nil {
		n.script(env, n.reg)
	}
}

func (n *regNode) Receive(env sim.Env, from types.ProcessID, msg sim.Message) {
	n.reg.Handle(env, from, msg)
}

func cluster(n int, trust quorum.Assumption, writer types.ProcessID) []*regNode {
	nodes := make([]*regNode, n)
	for i := range nodes {
		nodes[i] = &regNode{writer: writer, trust: trust}
	}
	return nodes
}

func runNodes(nodes []*regNode, seed int64, faulty map[types.ProcessID]sim.Node) {
	n := len(nodes)
	simNodes := make([]sim.Node, n)
	for i := range nodes {
		simNodes[i] = nodes[i]
	}
	for p, f := range faulty {
		simNodes[p] = f
	}
	r := sim.NewRunner(sim.Config{N: n, Seed: seed, Latency: sim.UniformLatency{Min: 1, Max: 20}}, simNodes)
	r.Run(0)
}

func TestWriteThenRead(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	nodes := cluster(4, trust, 0)
	var got string
	var gotTs int64
	// Writer writes, then a different node reads (sequenced via callbacks
	// is impossible across nodes without extra messages, so script: the
	// reader reads after the write completed — we chain through the
	// writer's completion by having the writer trigger a second op at the
	// reader via the register's own messages; simplest correct sequencing
	// is to chain both ops at the same process).
	nodes[0].script = func(env sim.Env, r *Register) {
		r.Write(env, "v1", func(env sim.Env) {
			r.Read(env, func(_ sim.Env, val string, ts int64) {
				got, gotTs = val, ts
			})
		})
	}
	runNodes(nodes, 1, nil)
	if got != "v1" || gotTs != 1 {
		t.Fatalf("read (%q, %d), want (v1, 1)", got, gotTs)
	}
}

func TestReaderSeesCompletedWrite(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	for seed := int64(0); seed < 10; seed++ {
		nodes := cluster(4, trust, 0)
		reads := map[types.ProcessID]string{}
		// Writer performs two writes; after its second completes it pokes
		// nothing — readers read at the very end of the run by reading
		// after their replicas observed ts >= 2 (we just read late: chain
		// reads behind a dummy read).
		writesDone := false
		nodes[0].script = func(env sim.Env, r *Register) {
			r.Write(env, "first", func(env sim.Env) {
				r.Write(env, "second", func(env sim.Env) {
					writesDone = true
					// Now ask node 1..3 to read by sending them nothing —
					// instead, node 0 itself reads; atomicity says it must
					// see "second".
					r.Read(env, func(_ sim.Env, val string, _ int64) {
						reads[0] = val
					})
				})
			})
		}
		runNodes(nodes, seed, nil)
		if !writesDone {
			t.Fatalf("seed %d: writes never completed", seed)
		}
		if reads[0] != "second" {
			t.Fatalf("seed %d: read %q after completed write of \"second\"", seed, reads[0])
		}
	}
}

func TestConcurrentReadersAtomicity(t *testing.T) {
	// Two readers read concurrently with a write; atomicity (via the
	// write-back) requires that if one reader returns the new value, a
	// reader whose operation starts after the first completed cannot
	// return the old one. We approximate with sequential reads chained at
	// one process and a concurrent read elsewhere, checking timestamps
	// never regress across the chained reads.
	trust := quorum.NewThreshold(4, 1)
	for seed := int64(0); seed < 10; seed++ {
		nodes := cluster(4, trust, 0)
		var ts1, ts2 int64
		nodes[1].script = func(env sim.Env, r *Register) {
			r.Read(env, func(env sim.Env, _ string, ts int64) {
				ts1 = ts
				r.Read(env, func(_ sim.Env, _ string, ts int64) {
					ts2 = ts
				})
			})
		}
		nodes[0].script = func(env sim.Env, r *Register) {
			r.Write(env, "x", func(env sim.Env) {
				r.Write(env, "y", nil)
			})
		}
		runNodes(nodes, seed, nil)
		if ts2 < ts1 {
			t.Fatalf("seed %d: timestamps regressed across sequential reads: %d then %d", seed, ts1, ts2)
		}
	}
}

func TestReadWithCrashedReplicas(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	nodes := cluster(4, trust, 0)
	var got string
	done := false
	nodes[0].script = func(env sim.Env, r *Register) {
		r.Write(env, "survives", func(env sim.Env) {
			r.Read(env, func(_ sim.Env, val string, _ int64) {
				got = val
				done = true
			})
		})
	}
	runNodes(nodes, 3, map[types.ProcessID]sim.Node{3: sim.MuteNode{}})
	if !done {
		t.Fatal("operations did not complete with one crashed replica")
	}
	if got != "survives" {
		t.Fatalf("read %q", got)
	}
}

func TestAsymmetricSystemRegister(t *testing.T) {
	sys, err := quorum.RandomAsymmetric(quorum.RandomAsymmetricConfig{N: 8, NumSets: 2, MaxFault: 2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	nodes := cluster(8, sys, 2)
	results := map[int]string{}
	nodes[2].script = func(env sim.Env, r *Register) {
		r.Write(env, "a", func(env sim.Env) {
			r.Write(env, "b", func(env sim.Env) {
				r.Read(env, func(_ sim.Env, val string, _ int64) {
					results[0] = val
				})
			})
		})
	}
	// An independent reader at p5 reads at startup — it may see "", "a" or
	// "b" (concurrent), but the run must terminate.
	sawRead := false
	nodes[5].script = func(env sim.Env, r *Register) {
		r.Read(env, func(_ sim.Env, val string, _ int64) {
			sawRead = true
		})
	}
	runNodes(nodes, 9, nil)
	if results[0] != "b" {
		t.Fatalf("writer's read = %q, want b", results[0])
	}
	if !sawRead {
		t.Fatal("independent reader never completed")
	}
}

func TestNonWriterCannotWrite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	trust := quorum.NewThreshold(4, 1)
	nodes := cluster(4, trust, 0)
	nodes[1].script = func(env sim.Env, r *Register) {
		r.Write(env, "illegal", nil)
	}
	runNodes(nodes, 1, nil)
}

func TestForgedWriteIgnored(t *testing.T) {
	// A WRITE claiming to be from a non-writer is dropped by replicas.
	trust := quorum.NewThreshold(4, 1)
	nodes := cluster(4, trust, 0)
	forger := &forgeWriter{}
	var got string
	nodes[1].script = func(env sim.Env, r *Register) {
		// Read after enough time: forged write must not be visible.
		r.Read(env, func(_ sim.Env, val string, _ int64) {
			got = val
		})
	}
	simNodes := make([]sim.Node, 4)
	for i := range nodes {
		simNodes[i] = nodes[i]
	}
	simNodes[3] = forger
	r := sim.NewRunner(sim.Config{N: 4, Seed: 2, Latency: sim.ConstantLatency(1)}, simNodes)
	r.Run(0)
	if got == "FORGED" {
		t.Fatal("forged write became visible")
	}
}

type forgeWriter struct{}

func (forgeWriter) Init(env sim.Env) {
	env.Broadcast(writeMsg{Op: 1, Ts: 99, Val: "FORGED"})
}
func (forgeWriter) Receive(sim.Env, types.ProcessID, sim.Message) {}

func TestManySequentialWrites(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	nodes := cluster(4, trust, 0)
	const total = 20
	var values []string
	var chain func(env sim.Env, r *Register, k int)
	chain = func(env sim.Env, r *Register, k int) {
		if k >= total {
			r.Read(env, func(_ sim.Env, val string, ts int64) {
				values = append(values, fmt.Sprintf("%s@%d", val, ts))
			})
			return
		}
		r.Write(env, fmt.Sprintf("w%d", k), func(env sim.Env) {
			chain(env, r, k+1)
		})
	}
	nodes[0].script = func(env sim.Env, r *Register) { chain(env, r, 0) }
	runNodes(nodes, 5, nil)
	if len(values) != 1 || values[0] != fmt.Sprintf("w%d@%d", total-1, total) {
		t.Fatalf("final read = %v", values)
	}
}
