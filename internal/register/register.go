// Package register implements the asymmetric shared-memory emulation the
// paper lists among the known asymmetric primitives (§1: "reliable
// broadcasts, shared-memory emulations, and binary consensus"): a
// single-writer multi-reader atomic register over asymmetric Byzantine
// quorum systems, in the style of ABD generalized by Alpos et al.
//
//	Write(v):  the writer picks ts+1 and sends WRITE(ts,v) to all; the
//	           operation completes on ACKs from one of the writer's
//	           quorums.
//	Read():    the reader queries all replicas; on replies from one of its
//	           quorums it selects the highest-timestamped value, writes it
//	           back, and returns it once the write-back gathers ACKs from
//	           one of its quorums (the write-back is what upgrades regular
//	           to atomic semantics).
//
// Correctness in the asymmetric model: a wise reader's quorum intersects
// the writer's quorum in at least one correct process (quorum
// consistency), so the read observes the latest complete write.
//
// Modeling note: in the real protocol the writer signs (ts, v) so that
// Byzantine replicas cannot forge values, only withhold or replay old
// ones. The simulator's authenticated channels cover the withholding
// behaviours; forgery is excluded by assumption and therefore not
// simulated (a forging replica would be defeated by the signature check,
// which we do not re-implement).
package register

import (
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// Messages.

type writeMsg struct {
	Op  uint64
	Ts  int64
	Val string
}

type writeAckMsg struct {
	Op uint64
}

type readMsg struct {
	Op uint64
}

type readReplyMsg struct {
	Op  uint64
	Ts  int64
	Val string
}

type writeBackMsg struct {
	Op  uint64
	Ts  int64
	Val string
}

type writeBackAckMsg struct {
	Op uint64
}

// Register is one process's register endpoint: always a replica, and
// additionally a writer (if it is the designated writer) or a reader.
// Drive it from a sim.Node: call Handle for every incoming message and
// Write/Read to start operations.
type Register struct {
	self   types.ProcessID
	writer types.ProcessID
	trust  quorum.Assumption
	n      int

	// Replica state.
	ts  int64
	val string

	// Writer state.
	wts   int64
	opSeq uint64

	writeAcks map[uint64]*quorum.Tracker
	writeDone map[uint64]func(env sim.Env)

	readReplies map[uint64]map[types.ProcessID]readReplyMsg
	readSenders map[uint64]*quorum.Tracker
	wbAcks      map[uint64]*quorum.Tracker
	readVal     map[uint64]readReplyMsg
	readDone    map[uint64]func(env sim.Env, val string, ts int64)
	readPhase   map[uint64]int // 1 = query, 2 = write-back
}

// New creates a register endpoint. All processes must agree on the writer.
func New(self, writer types.ProcessID, n int, trust quorum.Assumption) *Register {
	return &Register{
		self:        self,
		writer:      writer,
		trust:       trust,
		n:           n,
		writeAcks:   map[uint64]*quorum.Tracker{},
		writeDone:   map[uint64]func(sim.Env){},
		readReplies: map[uint64]map[types.ProcessID]readReplyMsg{},
		readSenders: map[uint64]*quorum.Tracker{},
		wbAcks:      map[uint64]*quorum.Tracker{},
		readVal:     map[uint64]readReplyMsg{},
		readDone:    map[uint64]func(sim.Env, string, int64){},
		readPhase:   map[uint64]int{},
	}
}

// Write starts a write (only legal at the writer); done runs when the
// write is complete.
func (r *Register) Write(env sim.Env, val string, done func(env sim.Env)) {
	if r.self != r.writer {
		panic("register: Write called on a non-writer")
	}
	r.wts++
	r.opSeq++
	op := r.opSeq
	r.writeAcks[op] = quorum.NewTracker(r.trust, r.self)
	r.writeDone[op] = done
	env.Broadcast(writeMsg{Op: op, Ts: r.wts, Val: val})
}

// Read starts a read; done runs with the value once the read is complete.
func (r *Register) Read(env sim.Env, done func(env sim.Env, val string, ts int64)) {
	r.opSeq++
	op := r.opSeq
	r.readReplies[op] = map[types.ProcessID]readReplyMsg{}
	r.readSenders[op] = quorum.NewTracker(r.trust, r.self)
	r.readDone[op] = done
	r.readPhase[op] = 1
	env.Broadcast(readMsg{Op: op})
}

// Handle processes one message; it returns false if the message does not
// belong to the register.
func (r *Register) Handle(env sim.Env, from types.ProcessID, msg sim.Message) bool {
	switch m := msg.(type) {
	case writeMsg:
		if from != r.writer {
			return true // only the designated writer may write
		}
		if m.Ts > r.ts {
			r.ts, r.val = m.Ts, m.Val
		}
		env.Send(from, writeAckMsg{Op: m.Op})
	case writeAckMsg:
		acks, ok := r.writeAcks[m.Op]
		if !ok {
			return true
		}
		acks.Add(from)
		if acks.HasQuorum() {
			done := r.writeDone[m.Op]
			delete(r.writeAcks, m.Op)
			delete(r.writeDone, m.Op)
			if done != nil {
				done(env)
			}
		}
	case readMsg:
		env.Send(from, readReplyMsg{Op: m.Op, Ts: r.ts, Val: r.val})
	case readReplyMsg:
		replies, ok := r.readReplies[m.Op]
		if !ok || r.readPhase[m.Op] != 1 {
			return true
		}
		replies[from] = m
		senders := r.readSenders[m.Op]
		senders.Add(from)
		if senders.HasQuorum() {
			// Select the highest-timestamped value and write it back.
			best := readReplyMsg{Ts: -1}
			//lint:ordered max-by-timestamp; the single writer issues unique timestamps, so among correct replies the max is unique (forgery is excluded by the signature model, see the package comment)
			for _, rep := range replies {
				if rep.Ts > best.Ts {
					best = rep
				}
			}
			r.readVal[m.Op] = best
			r.readPhase[m.Op] = 2
			r.wbAcks[m.Op] = quorum.NewTracker(r.trust, r.self)
			env.Broadcast(writeBackMsg{Op: m.Op, Ts: best.Ts, Val: best.Val})
		}
	case writeBackMsg:
		if m.Ts > r.ts {
			r.ts, r.val = m.Ts, m.Val
		}
		env.Send(from, writeBackAckMsg{Op: m.Op})
	case writeBackAckMsg:
		acks, ok := r.wbAcks[m.Op]
		if !ok {
			return true
		}
		acks.Add(from)
		if acks.HasQuorum() {
			best := r.readVal[m.Op]
			done := r.readDone[m.Op]
			delete(r.wbAcks, m.Op)
			delete(r.readReplies, m.Op)
			delete(r.readSenders, m.Op)
			delete(r.readVal, m.Op)
			delete(r.readDone, m.Op)
			delete(r.readPhase, m.Op)
			if done != nil {
				done(env, best.Val, best.Ts)
			}
		}
	default:
		return false
	}
	return true
}

// Timestamp returns the replica's current timestamp (for tests).
func (r *Register) Timestamp() int64 { return r.ts }
