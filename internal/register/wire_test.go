package register

import (
	"reflect"
	"testing"

	"repro/internal/wire"
)

func TestWireRoundTrip(t *testing.T) {
	msgs := []any{
		writeMsg{Op: 7, Ts: 3, Val: "v3"},
		writeAckMsg{Op: 7},
		readMsg{Op: 8},
		readReplyMsg{Op: 8, Ts: 3, Val: "v3"},
		writeBackMsg{Op: 8, Ts: 3, Val: "v3"},
		writeBackAckMsg{Op: 8},
		readReplyMsg{Op: 9}, // zero timestamp and empty value
	}
	for _, msg := range msgs {
		if !wire.Registered(msg) {
			t.Fatalf("%T not registered", msg)
		}
		b, err := wire.Marshal(msg)
		if err != nil {
			t.Fatalf("marshal %#v: %v", msg, err)
		}
		got, rest, err := wire.Decode(b)
		if err != nil {
			t.Fatalf("decode %#v: %v", msg, err)
		}
		if len(rest) != 0 {
			t.Fatalf("decode %#v left %d trailing bytes", msg, len(rest))
		}
		if !reflect.DeepEqual(got, msg) {
			t.Fatalf("round trip: got %#v, want %#v", got, msg)
		}
	}
}

// TestWireRejectsNegativeTimestamp checks the Byzantine edge: a reply
// forged with a negative timestamp is reported as unencodable instead of
// panicking the encoder.
func TestWireRejectsNegativeTimestamp(t *testing.T) {
	bad := readReplyMsg{Op: 1, Ts: -1, Val: "x"}
	if _, ok := wire.EncodedSize(bad); ok {
		t.Error("EncodedSize accepted a negative timestamp")
	}
	if _, err := wire.Marshal(bad); err == nil {
		t.Error("Marshal accepted a negative timestamp")
	}
}
