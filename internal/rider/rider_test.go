package rider

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dag"
	"repro/internal/types"
)

func TestWaveRoundMapping(t *testing.T) {
	cases := []struct{ w, k, r int }{
		{1, 1, 1}, {1, 4, 4}, {2, 1, 5}, {2, 4, 8}, {3, 2, 10},
	}
	for _, c := range cases {
		if got := WaveRound(c.w, c.k); got != c.r {
			t.Errorf("WaveRound(%d,%d) = %d, want %d", c.w, c.k, got, c.r)
		}
	}
	for r := 1; r <= 20; r++ {
		w := RoundWave(r)
		if WaveRound(w, 1) > r || WaveRound(w, 4) < r {
			t.Errorf("RoundWave(%d) = %d inconsistent", r, w)
		}
	}
	if RoundWave(0) != 0 || RoundWave(-3) != 0 {
		t.Error("RoundWave of genesis rounds should be 0")
	}
}

func TestGenesis(t *testing.T) {
	g := Genesis(5)
	if len(g) != 5 {
		t.Fatalf("Genesis produced %d", len(g))
	}
	for i, v := range g {
		if v.Round != 0 || int(v.Source) != i {
			t.Errorf("genesis vertex %d malformed: %+v", i, v)
		}
	}
}

func TestVertexPayloadKey(t *testing.T) {
	v1 := &dag.Vertex{Source: 1, Round: 2, Block: []string{"a", "b"},
		StrongEdges: []dag.VertexRef{{Source: 0, Round: 1}}}
	v2 := &dag.Vertex{Source: 1, Round: 2, Block: []string{"a", "b"},
		StrongEdges: []dag.VertexRef{{Source: 0, Round: 1}}}
	if (VertexPayload{V: v1}).Key() != (VertexPayload{V: v2}).Key() {
		t.Error("identical vertices must share keys")
	}
	v3 := &dag.Vertex{Source: 1, Round: 2, Block: []string{"a", "x"},
		StrongEdges: []dag.VertexRef{{Source: 0, Round: 1}}}
	if (VertexPayload{V: v1}).Key() == (VertexPayload{V: v3}).Key() {
		t.Error("different blocks must change the key")
	}
	v4 := &dag.Vertex{Source: 1, Round: 2, Block: []string{"a", "b"},
		WeakEdges: []dag.VertexRef{{Source: 0, Round: 1}}}
	if (VertexPayload{V: v1}).Key() == (VertexPayload{V: v4}).Key() {
		t.Error("strong vs weak edges must change the key")
	}
	if (VertexPayload{V: v1}).SimSize() <= 0 {
		t.Error("SimSize must be positive")
	}
}

func TestSyntheticWorkload(t *testing.T) {
	w := SyntheticWorkload{Self: 2, TxPerBlock: 3}
	b := w.NextBlock(7)
	if len(b) != 3 {
		t.Fatalf("block size %d", len(b))
	}
	if b[0] != "tx-p3-r7-0" {
		t.Errorf("tx label = %q", b[0])
	}
}

func TestQueueWorkload(t *testing.T) {
	w := &QueueWorkload{BatchSize: 2}
	w.Submit("a", "b", "c")
	if got := w.NextBlock(1); len(got) != 2 || got[0] != "a" {
		t.Fatalf("first block = %v", got)
	}
	if got := w.NextBlock(2); len(got) != 1 || got[0] != "c" {
		t.Fatalf("second block = %v", got)
	}
	if got := w.NextBlock(3); len(got) != 0 {
		t.Fatalf("drained queue returned %v", got)
	}
	// Default batch size.
	d := &QueueWorkload{}
	d.Submit("x")
	if got := d.NextBlock(1); len(got) != 1 {
		t.Fatalf("default batch = %v", got)
	}
}

func TestSetWeakEdges(t *testing.T) {
	d := dag.New(3)
	for _, g := range Genesis(3) {
		if err := d.Add(g); err != nil {
			t.Fatal(err)
		}
	}
	// Round 1: only p1 and p2 have vertices.
	a1 := &dag.Vertex{Source: 0, Round: 1, StrongEdges: []dag.VertexRef{{Source: 0, Round: 0}, {Source: 1, Round: 0}, {Source: 2, Round: 0}}}
	b1 := &dag.Vertex{Source: 1, Round: 1, StrongEdges: []dag.VertexRef{{Source: 0, Round: 0}, {Source: 1, Round: 0}, {Source: 2, Round: 0}}}
	for _, v := range []*dag.Vertex{a1, b1} {
		if err := d.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	// Round 2: a2 references only a1.
	a2 := &dag.Vertex{Source: 0, Round: 2, StrongEdges: []dag.VertexRef{a1.Ref()}}
	if err := d.Add(a2); err != nil {
		t.Fatal(err)
	}
	// Late round-1 vertex from p3 appears.
	c1 := &dag.Vertex{Source: 2, Round: 1, StrongEdges: []dag.VertexRef{{Source: 0, Round: 0}, {Source: 1, Round: 0}, {Source: 2, Round: 0}}}
	if err := d.Add(c1); err != nil {
		t.Fatal(err)
	}
	// Round 3 vertex referencing a2 strongly; weak edges must cover b1 and
	// c1 (round 1, unreachable via strong path from a2) but not a1.
	v3 := &dag.Vertex{Source: 0, Round: 3, StrongEdges: []dag.VertexRef{a2.Ref()}}
	SetWeakEdges(d, v3, 3)
	weak := map[dag.VertexRef]bool{}
	for _, e := range v3.WeakEdges {
		weak[e] = true
	}
	if !weak[b1.Ref()] || !weak[c1.Ref()] {
		t.Errorf("weak edges %v should cover b1 and c1", v3.WeakEdges)
	}
	if weak[a1.Ref()] {
		t.Error("a1 is strongly reachable; weak edge is redundant")
	}
}

func TestOrderVerticesSkipsDelivered(t *testing.T) {
	d := dag.New(2)
	for _, g := range Genesis(2) {
		if err := d.Add(g); err != nil {
			t.Fatal(err)
		}
	}
	a1 := &dag.Vertex{Source: 0, Round: 1, Block: []string{"t1"},
		StrongEdges: []dag.VertexRef{{Source: 0, Round: 0}, {Source: 1, Round: 0}}}
	if err := d.Add(a1); err != nil {
		t.Fatal(err)
	}
	delivered := map[dag.VertexRef]bool{}
	out1 := OrderVertices(d, []dag.VertexRef{a1.Ref()}, delivered, 1, 10)
	if len(out1) != 3 { // two genesis + a1
		t.Fatalf("first ordering delivered %d vertices", len(out1))
	}
	// Second leader above a1: only the new vertex should be delivered.
	a2 := &dag.Vertex{Source: 0, Round: 2, Block: []string{"t2"}, StrongEdges: []dag.VertexRef{a1.Ref()}}
	if err := d.Add(a2); err != nil {
		t.Fatal(err)
	}
	out2 := OrderVertices(d, []dag.VertexRef{a2.Ref()}, delivered, 2, 20)
	if len(out2) != 1 || out2[0].Ref != a2.Ref() {
		t.Fatalf("second ordering = %+v", out2)
	}
	if out2[0].Wave != 2 || out2[0].Time != 20 {
		t.Errorf("delivery metadata wrong: %+v", out2[0])
	}
}

// TestOrderVerticesStackOrder: the stack is popped oldest-wave-first, so
// earlier leaders' histories deliver before later leaders'.
func TestOrderVerticesStackOrder(t *testing.T) {
	d := dag.New(2)
	for _, g := range Genesis(2) {
		if err := d.Add(g); err != nil {
			t.Fatal(err)
		}
	}
	a1 := &dag.Vertex{Source: 0, Round: 1, StrongEdges: []dag.VertexRef{{Source: 0, Round: 0}, {Source: 1, Round: 0}}}
	b1 := &dag.Vertex{Source: 1, Round: 1, StrongEdges: []dag.VertexRef{{Source: 0, Round: 0}, {Source: 1, Round: 0}}}
	a2 := &dag.Vertex{Source: 0, Round: 2, StrongEdges: []dag.VertexRef{a1.Ref()}}
	for _, v := range []*dag.Vertex{a1, b1, a2} {
		if err := d.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	delivered := map[dag.VertexRef]bool{}
	// Stack pushed newest first: [a2, a1] → pops a1 (older) first.
	out := OrderVertices(d, []dag.VertexRef{a2.Ref(), a1.Ref()}, delivered, 2, 0)
	posA1, posA2 := -1, -1
	for i, del := range out {
		switch del.Ref {
		case a1.Ref():
			posA1 = i
		case a2.Ref():
			posA2 = i
		}
	}
	if posA1 == -1 || posA2 == -1 || posA1 > posA2 {
		t.Fatalf("a1 must deliver before a2: %v", out)
	}
	// b1 is not in any delivered leader's history.
	for _, del := range out {
		if del.Ref == b1.Ref() {
			t.Error("b1 should not be delivered")
		}
	}
}

// TestVertexPayloadKeyFormat pins the exact digest layout against an
// independently (fmt-) built expectation: the pooled-buffer Key rewrite
// must produce byte-identical digests, since reliable broadcast treats
// two payloads as "the same message" exactly when their keys are equal.
func TestVertexPayloadKeyFormat(t *testing.T) {
	v := &dag.Vertex{
		Source: 3, Round: 12, Block: []string{"tx-1", "tx-2"},
		StrongEdges: []dag.VertexRef{{Source: 0, Round: 11}, {Source: 2, Round: 11}},
		WeakEdges:   []dag.VertexRef{{Source: 1, Round: 9}},
	}
	want := fmt.Sprintf("%d|%d|tx-1\x00tx-2\x00|s%d.%d,s%d.%d,w%d.%d,", 3, 12, 0, 11, 2, 11, 1, 9)
	if got := (VertexPayload{V: v}).Key(); got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
}

// TestVertexPayloadKeyPooledBufferReuse hammers Key from several
// goroutines to shake out scratch-buffer aliasing (the returned strings
// must be stable even while the pooled buffers are recycled).
func TestVertexPayloadKeyPooledBufferReuse(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v := &dag.Vertex{Source: types.ProcessID(g), Round: i, Block: []string{fmt.Sprintf("tx-%d-%d", g, i)}}
				k1 := (VertexPayload{V: v}).Key()
				k2 := (VertexPayload{V: v}).Key()
				if k1 != k2 {
					t.Errorf("key unstable: %q vs %q", k1, k2)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
