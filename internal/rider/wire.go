// Binary wire codec registration for the DAG vertex payload (see
// internal/wire for the frame layout and tag-range assignments).
//
// A VertexPayload body is [uvarint source][uvarint round][uvarint #txs +
// length-prefixed txs][uvarint #strong + refs][uvarint #weak + refs],
// where a ref is [uvarint source][uvarint round]. Counts and rounds are
// bounded on decode — vertices arrive from the network, possibly from
// Byzantine peers.
package rider

import (
	"fmt"

	"repro/internal/dag"
	"repro/internal/types"
	"repro/internal/wire"
)

// wireTagVertex is VertexPayload's tag (range 50–59).
const wireTagVertex = 50

// maxWireRound bounds round numbers accepted off the wire.
const maxWireRound = 1 << 30

func init() {
	wire.Register(wireTagVertex, VertexPayload{}, wire.Codec{
		Size:   vertexWireSize,
		Append: appendVertexWire,
		Decode: decodeVertexWire,
	})
}

func refsWireSize(refs []dag.VertexRef) int {
	sz := wire.IntSize(len(refs))
	for _, r := range refs {
		sz += wire.IntSize(int(r.Source)) + wire.IntSize(r.Round)
	}
	return sz
}

func vertexWireSize(msg any) (int, bool) {
	v := msg.(VertexPayload).V
	if v == nil {
		return 0, false // a payload without a vertex is not encodable
	}
	sz := wire.IntSize(int(v.Source)) + wire.IntSize(v.Round) + wire.IntSize(len(v.Block))
	for _, tx := range v.Block {
		sz += wire.StringSize(tx)
	}
	sz += refsWireSize(v.StrongEdges) + refsWireSize(v.WeakEdges)
	return sz, true
}

func appendRefsWire(dst []byte, refs []dag.VertexRef) []byte {
	dst = wire.AppendInt(dst, len(refs))
	for _, r := range refs {
		dst = wire.AppendInt(dst, int(r.Source))
		dst = wire.AppendInt(dst, r.Round)
	}
	return dst
}

func appendVertexWire(dst []byte, msg any) ([]byte, error) {
	v := msg.(VertexPayload).V
	if v == nil {
		return dst, fmt.Errorf("rider: cannot encode VertexPayload with nil vertex")
	}
	dst = wire.AppendInt(dst, int(v.Source))
	dst = wire.AppendInt(dst, v.Round)
	dst = wire.AppendInt(dst, len(v.Block))
	for _, tx := range v.Block {
		dst = wire.AppendString(dst, tx)
	}
	dst = appendRefsWire(dst, v.StrongEdges)
	return appendRefsWire(dst, v.WeakEdges), nil
}

func decodeRefsWire(b []byte) ([]dag.VertexRef, []byte, error) {
	count, rest, err := wire.ReadInt(b, wire.MaxCount)
	if err != nil {
		return nil, b, err
	}
	if count == 0 {
		return nil, rest, nil
	}
	refs := make([]dag.VertexRef, count)
	for i := range refs {
		var src, round int
		src, rest, err = wire.ReadInt(rest, wire.MaxUniverse)
		if err != nil {
			return nil, b, err
		}
		round, rest, err = wire.ReadInt(rest, maxWireRound)
		if err != nil {
			return nil, b, err
		}
		refs[i] = dag.VertexRef{Source: types.ProcessID(src), Round: round}
	}
	return refs, rest, nil
}

func decodeVertexWire(b []byte) (any, []byte, error) {
	src, rest, err := wire.ReadInt(b, wire.MaxUniverse)
	if err != nil {
		return nil, b, fmt.Errorf("rider: wire vertex source: %w", err)
	}
	round, rest, err := wire.ReadInt(rest, maxWireRound)
	if err != nil {
		return nil, b, fmt.Errorf("rider: wire vertex round: %w", err)
	}
	txCount, rest, err := wire.ReadInt(rest, wire.MaxCount)
	if err != nil {
		return nil, b, fmt.Errorf("rider: wire vertex block: %w", err)
	}
	var block []string
	if txCount > 0 {
		block = make([]string, txCount)
		for i := range block {
			block[i], rest, err = wire.ReadString(rest)
			if err != nil {
				return nil, b, fmt.Errorf("rider: wire vertex tx: %w", err)
			}
		}
	}
	strong, rest, err := decodeRefsWire(rest)
	if err != nil {
		return nil, b, fmt.Errorf("rider: wire vertex strong edges: %w", err)
	}
	weak, rest, err := decodeRefsWire(rest)
	if err != nil {
		return nil, b, fmt.Errorf("rider: wire vertex weak edges: %w", err)
	}
	return VertexPayload{V: &dag.Vertex{
		Source:      types.ProcessID(src),
		Round:       round,
		Block:       block,
		StrongEdges: strong,
		WeakEdges:   weak,
	}}, rest, nil
}
