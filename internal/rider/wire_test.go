package rider

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dag"
	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/wire"
)

func randomRefs(rng *rand.Rand, n int) []dag.VertexRef {
	if n == 0 {
		return nil
	}
	refs := make([]dag.VertexRef, n)
	for i := range refs {
		refs[i] = dag.VertexRef{Source: types.ProcessID(rng.Intn(100)), Round: rng.Intn(1000)}
	}
	return refs
}

// TestVertexWireRoundTrip is the rider slice of the differential wire
// suite: randomized vertices round-trip byte-identically and the
// simulator's byte metric equals the real frame length.
func TestVertexWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 300; i++ {
		var block []string
		for k, count := 0, rng.Intn(5); k < count; k++ {
			block = append(block, fmt.Sprintf("tx-%d-%d", i, k))
		}
		v := &dag.Vertex{
			Source:      types.ProcessID(rng.Intn(100)),
			Round:       rng.Intn(1000),
			Block:       block,
			StrongEdges: randomRefs(rng, rng.Intn(6)),
			WeakEdges:   randomRefs(rng, rng.Intn(4)),
		}
		msg := VertexPayload{V: v}
		enc, err := wire.Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
		if got := sim.MessageSize(msg); got != len(enc) {
			t.Fatalf("MessageSize %d != wire length %d", got, len(enc))
		}
		dec, rest, err := wire.Decode(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("decode: %v", err)
		}
		got := dec.(VertexPayload).V
		if got.Source != v.Source || got.Round != v.Round ||
			!reflect.DeepEqual(got.Block, v.Block) ||
			!reflect.DeepEqual(got.StrongEdges, v.StrongEdges) ||
			!reflect.DeepEqual(got.WeakEdges, v.WeakEdges) {
			t.Fatalf("vertex round trip mutated:\n%+v\n%+v", got, v)
		}
		re, err := wire.Marshal(dec)
		if err != nil || !bytes.Equal(enc, re) {
			t.Fatalf("re-encode differs (%v)", err)
		}
	}
}

// TestVertexWireNilNotEncodable pins that a payload without a vertex is
// not encodable rather than panicking in the writer path.
func TestVertexWireNilNotEncodable(t *testing.T) {
	if _, ok := wire.EncodedSize(VertexPayload{}); ok {
		t.Fatal("nil-vertex payload reported encodable")
	}
	if _, err := wire.Marshal(VertexPayload{}); err == nil {
		t.Fatal("nil-vertex payload marshalled")
	}
}

// TestVertexWireRejectsMalformed bounds adversarial vertex bodies.
func TestVertexWireRejectsMalformed(t *testing.T) {
	frame := func(body []byte) []byte {
		return append(wire.AppendUvarint(nil, wireTagVertex), body...)
	}
	huge := wire.AppendInt(nil, 1)                          // source
	huge = wire.AppendInt(huge, 1)                          // round
	huge = wire.AppendUvarint(huge, wire.MaxCount+1)        // tx count
	over := wire.AppendInt(nil, 1)                          // source
	over = wire.AppendUvarint(over, uint64(maxWireRound)+1) // round
	cases := map[string][]byte{
		"empty":          frame(nil),
		"huge tx count":  frame(huge),
		"round too big":  frame(over),
		"truncated refs": frame(append(wire.AppendInt(wire.AppendInt(wire.AppendInt(nil, 1), 1), 0), wire.AppendUvarint(nil, 5)...)),
	}
	for name, b := range cases {
		if _, _, err := wire.Decode(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
