// Package rider holds the plumbing shared by the two DAG-Rider
// implementations (the symmetric baseline in internal/baseline and the
// paper's asymmetric protocol in internal/core): vertex wire payloads,
// workload generation, delivery records, and the ordering routine that both
// protocols share verbatim (Algorithm 6, orderVertices).
package rider

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/broadcast"
	"repro/internal/dag"
	"repro/internal/sim"
	"repro/internal/types"
)

// VertexPayload wraps a DAG vertex for transport through a broadcast
// primitive. Its Key is a deterministic digest of the full vertex content,
// so reliable broadcast's equivocation detection covers vertex bodies.
type VertexPayload struct {
	V *dag.Vertex
}

var _ broadcast.Payload = VertexPayload{}

// keyBufPool recycles the scratch buffers Key builds its digest in.
// Reliable broadcast calls Key on every SEND/ECHO/READY it handles, so a
// fresh builder per call churned the GC during vertex fan-out; with the
// pool only the returned string allocates.
var keyBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// appendEdgeRefs appends one "<tag><source>.<round>," segment per edge.
func appendEdgeRefs(b []byte, tag byte, edges []dag.VertexRef) []byte {
	for _, e := range edges {
		b = append(b, tag)
		b = strconv.AppendInt(b, int64(e.Source), 10)
		b = append(b, '.')
		b = strconv.AppendInt(b, int64(e.Round), 10)
		b = append(b, ',')
	}
	return b
}

// Key implements broadcast.Payload.
func (p VertexPayload) Key() string {
	bp := keyBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = strconv.AppendInt(b, int64(p.V.Source), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(p.V.Round), 10)
	b = append(b, '|')
	for _, tx := range p.V.Block {
		b = append(b, tx...)
		b = append(b, 0)
	}
	b = append(b, '|')
	b = appendEdgeRefs(b, 's', p.V.StrongEdges)
	b = appendEdgeRefs(b, 'w', p.V.WeakEdges)
	key := string(b)
	*bp = b
	keyBufPool.Put(bp)
	return key
}

// SimSize implements sim.Sizer: headers plus transactions plus edges.
//
//lint:sizer-fallback the codec declines payloads without a vertex, so this approximation is still consulted
func (p VertexPayload) SimSize() int {
	sz := 16
	for _, tx := range p.V.Block {
		sz += len(tx)
	}
	sz += 8 * (len(p.V.StrongEdges) + len(p.V.WeakEdges))
	return sz
}

// Workload supplies the transactions a process packs into each vertex
// (the paper's blocksToPropose queue fed by clients).
type Workload interface {
	// NextBlock returns the block for the vertex of the given round.
	NextBlock(round int) []string
}

// SyntheticWorkload generates TxPerBlock labeled transactions per block —
// the workload generator for throughput experiments.
type SyntheticWorkload struct {
	Self       types.ProcessID
	TxPerBlock int
}

// NextBlock implements Workload.
func (w SyntheticWorkload) NextBlock(round int) []string {
	block := make([]string, w.TxPerBlock)
	for i := range block {
		block[i] = fmt.Sprintf("tx-p%d-r%d-%d", int(w.Self)+1, round, i)
	}
	return block
}

// QueueWorkload drains an explicit queue, at most BatchSize per block;
// examples use it to submit real payloads. Empty blocks are produced when
// the queue is dry so that the protocol keeps advancing rounds.
type QueueWorkload struct {
	BatchSize int
	queue     []string
}

// Submit appends transactions to the queue.
func (w *QueueWorkload) Submit(txs ...string) {
	w.queue = append(w.queue, txs...)
}

// Len returns the number of queued, not-yet-proposed transactions — the
// service layer's admission control reads it to bound the queue.
func (w *QueueWorkload) Len() int { return len(w.queue) }

// NextBlock implements Workload.
func (w *QueueWorkload) NextBlock(int) []string {
	n := w.BatchSize
	if n <= 0 {
		n = 16
	}
	if n > len(w.queue) {
		n = len(w.queue)
	}
	block := w.queue[:n:n]
	w.queue = w.queue[n:]
	return block
}

// Delivery records one atomically delivered vertex.
type Delivery struct {
	Ref  dag.VertexRef
	Txs  []string
	Wave int             // wave whose commit triggered the delivery
	Time sim.VirtualTime // virtual time of delivery
}

// CommitEvent records one successful wave commit at a process.
type CommitEvent struct {
	Wave   int
	Leader dag.VertexRef
	Time   sim.VirtualTime
	Round  int // the process's round when it committed
}

// WaveRound returns the absolute round of slot k (1..4) of wave w (waves
// count from 1): round(w,k) = 4(w-1)+k.
func WaveRound(w, k int) int { return 4*(w-1) + k }

// RoundWave returns the wave that round r belongs to (rounds 1..4 are wave
// 1). Round 0 (genesis) maps to wave 0.
func RoundWave(r int) int {
	if r <= 0 {
		return 0
	}
	return (r + 3) / 4
}

// Genesis returns the hardcoded round-0 vertices shared by every process
// (Algorithm 4 line 67 hardcodes a quorum; we hardcode all n, which
// contains a quorum for every process).
func Genesis(n int) []*dag.Vertex {
	out := make([]*dag.Vertex, n)
	for i := range out {
		out[i] = &dag.Vertex{Source: types.ProcessID(i), Round: 0}
	}
	return out
}

// SetWeakEdges fills v.WeakEdges with references to every vertex in rounds
// round-2 .. 1 not already reachable from v (Algorithm 4, setWeakEdges).
// The running reachable set includes the causal closure of edges added so
// far, so no redundant weak edges are produced.
func SetWeakEdges(d *dag.DAG, v *dag.Vertex, round int) {
	reachable := map[dag.VertexRef]bool{}
	var mark func(ref dag.VertexRef)
	mark = func(ref dag.VertexRef) {
		if reachable[ref] {
			return
		}
		reachable[ref] = true
		vv, ok := d.Get(ref)
		if !ok {
			return
		}
		for _, p := range vv.Parents() {
			mark(p)
		}
	}
	for _, e := range v.StrongEdges {
		mark(e)
	}
	// Rounds below the GC watermark hold no vertices; stopping there keeps
	// vertex creation O(live window) in a long-lived run instead of
	// scanning every round since genesis. The cut is sound for receivers
	// too: pruned vertices were already delivered locally, and the edges a
	// vertex carries are fixed by its creator before broadcast.
	low := d.PrunedBelow()
	if low < 1 {
		low = 1
	}
	for r := round - 2; r >= low; r-- {
		for _, u := range d.RoundVertices(r) {
			if !reachable[u.Ref()] {
				v.WeakEdges = append(v.WeakEdges, u.Ref())
				mark(u.Ref())
			}
		}
	}
}

// OrderVertices implements Algorithm 6's orderVertices: pop leaders from
// the stack (oldest last pushed first... the stack is pushed newest-wave
// first, so popping yields oldest wave first), and for each leader deliver
// its yet-undelivered causal history in the deterministic (round, source)
// order. It returns the new deliveries in order.
func OrderVertices(d *dag.DAG, leaders []dag.VertexRef, delivered map[dag.VertexRef]bool, wave int, now sim.VirtualTime) []Delivery {
	var out []Delivery
	// leaders is a stack: last element = oldest uncommitted leader.
	for i := len(leaders) - 1; i >= 0; i-- {
		history := d.CausalHistory(leaders[i])
		sort.SliceStable(history, func(a, b int) bool {
			if history[a].Round != history[b].Round {
				return history[a].Round < history[b].Round
			}
			return history[a].Source < history[b].Source
		})
		for _, v := range history {
			if delivered[v.Ref()] {
				continue
			}
			delivered[v.Ref()] = true
			out = append(out, Delivery{Ref: v.Ref(), Txs: v.Block, Wave: wave, Time: now})
		}
	}
	return out
}
