package scenario

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/types"
)

// tag is the test message: Seq distinguishes successive broadcasts.
type tag struct {
	Seq int
}

// chatty broadcasts Rounds tagged messages: one from Init, then one more
// per self-delivery (self-sends travel through the network, so the chain
// is Rounds broadcasts long).
type chatty struct {
	Rounds int
	sent   int
}

func (c *chatty) Init(e sim.Env) {
	c.sent = 1
	e.Broadcast(tag{Seq: 1})
}

func (c *chatty) Receive(e sim.Env, from types.ProcessID, msg sim.Message) {
	if from != e.Self() {
		return
	}
	if c.sent < c.Rounds {
		c.sent++
		e.Broadcast(tag{Seq: c.sent})
	}
}

// recorder records every delivery.
type recorder struct {
	got []string
}

func (r *recorder) Init(sim.Env) {}

func (r *recorder) Receive(_ sim.Env, from types.ProcessID, msg sim.Message) {
	r.got = append(r.got, fmt.Sprintf("%d:%v", int(from), msg))
}

func TestWindowActive(t *testing.T) {
	w := Window{From: 10, Until: 20}
	for _, tc := range []struct {
		at   sim.VirtualTime
		want bool
	}{{9, false}, {10, true}, {19, true}, {20, false}} {
		if got := w.Active(tc.at); got != tc.want {
			t.Errorf("Active(%d) = %v, want %v", tc.at, got, tc.want)
		}
	}
	always := Window{}
	if !always.Active(0) || !always.Active(1<<40) {
		t.Error("zero window must be always active")
	}
	open := Window{From: 5}
	if open.Active(4) || !open.Active(1<<40) {
		t.Error("Until <= 0 must mean forever")
	}
}

func TestLinksSelectors(t *testing.T) {
	n := 4
	a := types.NewSetOf(n, 0, 1)
	b := types.NewSetOf(n, 2, 3)
	between := Between(a, b)
	for _, tc := range []struct {
		from, to types.ProcessID
		want     bool
	}{
		{0, 2, true}, {2, 0, true}, {0, 1, false}, {2, 3, false},
		{0, 0, false}, {2, 2, false}, // self-delivery is intra-side
	} {
		if got := between(tc.from, tc.to); got != tc.want {
			t.Errorf("Between(%v,%v) = %v, want %v", tc.from, tc.to, got, tc.want)
		}
	}
	if !FromSet(a)(0, 3) || FromSet(a)(3, 0) {
		t.Error("FromSet must match on sender only")
	}
	if !ToSet(b)(0, 3) || ToSet(b)(3, 0) {
		t.Error("ToSet must match on receiver only")
	}
}

func TestPlaneOnSendComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := Scenario{Rules: []Rule{
		{Window: Window{From: 100, Until: 200}, HoldUntil: 200},
		{Duplicate: 1},
		{Delay: Jitter{Min: 3, Max: 3}},
	}}
	pl := s.FaultPlane()

	// Outside the first rule's window only the unconditional rules apply.
	v := pl.OnSend(0, 1, tag{}, 50, rng)
	if v.Drop || v.Duplicates != 1 || v.Extra != 3 {
		t.Fatalf("t=50: got %+v, want dup=1 extra=3", v)
	}
	// Inside the window the hold dominates the jitter: extra >= heal - now.
	v = pl.OnSend(0, 1, tag{}, 150, rng)
	if v.Extra != 50 || v.Duplicates != 1 {
		t.Fatalf("t=150: got %+v, want extra=50 (hold 200-150)", v)
	}
	// At t=199 the hold (1) is below the jitter (3): jitter wins.
	v = pl.OnSend(0, 1, tag{}, 199, rng)
	if v.Extra != 3 {
		t.Fatalf("t=199: got extra=%d, want 3", v.Extra)
	}
}

func TestPlaneDropShortCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := Scenario{Rules: []Rule{
		{Drop: 1},
		{Duplicate: 1},
	}}
	v := s.FaultPlane().OnSend(0, 1, tag{}, 0, rng)
	if !v.Drop || v.Duplicates != 0 {
		t.Fatalf("got %+v, want pure drop (later rules not consulted)", v)
	}
}

func TestPlaneOnDeliver(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := Scenario{Rules: []Rule{
		{Links: FromSet(types.NewSetOf(2, 0)), Redeliver: 1, RedeliverDelay: Jitter{Min: 7, Max: 7}},
	}}
	pl := s.FaultPlane()
	v := pl.OnDeliver(0, 1, tag{}, 10, rng)
	if !v.Redeliver || v.After != 7 {
		t.Fatalf("got %+v, want redeliver after 7", v)
	}
	if v := pl.OnDeliver(1, 0, tag{}, 10, rng); v.Redeliver {
		t.Fatalf("unmatched link must not redeliver: %+v", v)
	}
}

func TestEmptyScenarioHasNilPlane(t *testing.T) {
	s := Scenario{}
	if s.FaultPlane() != nil {
		t.Fatal("no rules must compile to a nil FaultPlane (unhooked hot path)")
	}
}

// runWrapped executes a 4-process cluster where node 0 is `wrapped` around
// a chatty sender and nodes 1..3 record, returning the recorders.
func runWrapped(t *testing.T, wrap func(sim.Node) sim.Node, rounds int) []*recorder {
	t.Helper()
	n := 4
	recs := make([]*recorder, n)
	nodes := make([]sim.Node, n)
	for i := 1; i < n; i++ {
		recs[i] = &recorder{}
		nodes[i] = recs[i]
	}
	nodes[0] = wrap(&chatty{Rounds: rounds})
	r := sim.NewRunner(sim.Config{N: n, Seed: 1}, nodes)
	r.Run(0)
	return recs
}

func TestSelectiveNode(t *testing.T) {
	allow := types.NewSetOf(4, 0, 1, 2) // exclude 3
	recs := runWrapped(t, func(inner sim.Node) sim.Node {
		return &SelectiveNode{Inner: inner, Allow: allow}
	}, 3)
	if len(recs[1].got) != 3 || len(recs[2].got) != 3 {
		t.Fatalf("allowed receivers got %d/%d messages, want 3/3", len(recs[1].got), len(recs[2].got))
	}
	if len(recs[3].got) != 0 {
		t.Fatalf("excluded receiver got %d messages, want 0", len(recs[3].got))
	}
}

func TestStaleReplayNode(t *testing.T) {
	recs := runWrapped(t, func(inner sim.Node) sim.Node {
		return &StaleReplayNode{Inner: inner, Every: 1}
	}, 3)
	// Broadcast chain: {1}, {2}+replay{1}, {3}+replay{1}. Each receiver
	// sees 5 messages, three genuine and two replays of the first.
	for i := 1; i <= 3; i++ {
		replays := 0
		for _, g := range recs[i].got {
			if g == "0:{1}" {
				replays++
			}
		}
		if len(recs[i].got) != 5 || replays != 3 {
			t.Fatalf("receiver %d: got %v, want 5 messages with {1} thrice", i, recs[i].got)
		}
	}
}

func TestEquivocateNode(t *testing.T) {
	groupA := types.NewSetOf(4, 0, 1) // 2 and 3 get the stale stream
	recs := runWrapped(t, func(inner sim.Node) sim.Node {
		return &EquivocateNode{Inner: inner, GroupA: groupA}
	}, 3)
	want := map[int][]string{
		1: {"0:{1}", "0:{2}", "0:{3}"}, // genuine stream
		2: {"0:{1}", "0:{2}"},          // one broadcast behind
		3: {"0:{1}", "0:{2}"},
	}
	for i, w := range want {
		if fmt.Sprint(recs[i].got) != fmt.Sprint(w) {
			t.Fatalf("receiver %d: got %v, want %v", i, recs[i].got, w)
		}
	}
}

func TestWrapNodeAndUnwrap(t *testing.T) {
	inner := &chatty{Rounds: 1}
	s := Scenario{Faults: []NodeFault{
		Churn(0, 10, 20, true),
		StaleReplay(0, 2),
	}}
	wrapped := s.WrapNode(0, inner)
	if wrapped == sim.Node(inner) {
		t.Fatal("node 0 must be wrapped")
	}
	if got := sim.Unwrap(wrapped); got != sim.Node(inner) {
		t.Fatalf("Unwrap must peel every wrapper: got %T", got)
	}
	if s.WrapNode(1, inner) != sim.Node(inner) {
		t.Fatal("unfaulted process must be returned as-is")
	}
}

func TestFaultySetAndTouchedSet(t *testing.T) {
	s := Scenario{Faults: []NodeFault{
		Churn(0, 10, 20, true),  // correct
		Churn(1, 10, 20, false), // faulty
		Mute(2),                 // faulty
	}}
	if got := s.FaultySet(4); !got.Equal(types.NewSetOf(4, 1, 2)) {
		t.Fatalf("FaultySet = %v, want {2, 3}", got)
	}
	if got := s.TouchedSet(4); !got.Equal(types.NewSetOf(4, 0, 1, 2)) {
		t.Fatalf("TouchedSet = %v, want {1, 2, 3}", got)
	}
}

func TestBuiltinsRegistry(t *testing.T) {
	defs := Builtins()
	if len(defs) < 5 {
		t.Fatalf("need >= 5 built-in scenarios, have %d", len(defs))
	}
	seen := map[string]bool{}
	for _, d := range defs {
		if d.Name == "" || d.Build == nil {
			t.Fatalf("definition %+v incomplete", d)
		}
		if seen[d.Name] {
			t.Fatalf("duplicate scenario name %q", d.Name)
		}
		seen[d.Name] = true
		sc := d.Build(4, 3)
		if sc.Name != d.Name {
			t.Errorf("Build(%q).Name = %q", d.Name, sc.Name)
		}
		if len(sc.Properties) == 0 {
			t.Errorf("scenario %q declares no properties", d.Name)
		}
	}
	for _, required := range []string{"baseline", "partition-heal", "crash-recover", "dup-reorder", "equivocate"} {
		if _, ok := Find(required); !ok {
			t.Errorf("required built-in %q missing", required)
		}
	}
	if _, ok := Find("no-such-scenario"); ok {
		t.Error("Find must report unknown names")
	}
	if len(Names()) != len(defs) {
		t.Error("Names() must cover every definition")
	}
}

func TestPropertyString(t *testing.T) {
	for p, want := range map[Property]string{
		TotalOrder: "total-order", Agreement: "agreement", Integrity: "integrity",
		Validity: "validity", Liveness: "liveness", Property(99): "Property(99)",
	} {
		if got := p.String(); got != want {
			t.Errorf("Property(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}
