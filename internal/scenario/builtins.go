package scenario

import (
	"repro/internal/types"
)

// Built-in scenario registry. -------------------------------------------------
//
// Each Definition builds a fresh Scenario instance per run (wrappers carry
// per-run state) as a pure function of (n, seed): the same pair always
// yields the same faults, so a failing (scenario, seed) report replays
// exactly. The virtual-time constants are calibrated against the sweep
// default — threshold or small asymmetric systems, ~6 waves,
// UniformLatency{1,20}, which quiesce around virtual time 1100 — so every
// fault window opens after the protocol is under way and closes well
// before quiescence, leaving room for recovery to be observed.

// Definition names a built-in scenario and builds instances of it.
type Definition struct {
	// Name is the registry key.
	Name string
	// Desc is a one-line description for listings.
	Desc string
	// Build instantiates the scenario for an n-process run driven by seed.
	// It must be a pure function of (n, seed).
	Build func(n int, seed int64) Scenario
}

// victim derives the scenario's faulty process from the seed — a pure
// function, so the property checker can rebuild the same scenario from the
// run's recorded seed.
func victim(n int, seed int64) types.ProcessID {
	return types.ProcessID(uint64(seed) % uint64(n))
}

// Builtins returns the built-in scenario definitions, in registry order.
func Builtins() []Definition {
	return []Definition{
		{
			Name: "baseline",
			Desc: "no faults — the control every other scenario is measured against",
			Build: func(n int, seed int64) Scenario {
				return Scenario{Name: "baseline", Properties: AllProperties()}
			},
		},
		{
			Name: "partition-heal",
			Desc: "two halves split over [150,450), cross traffic held until the heal",
			Build: func(n int, seed int64) Scenario {
				a, b := types.NewSet(n), types.NewSet(n)
				for i := 0; i < n; i++ {
					if i < n/2 {
						a.Add(types.ProcessID(i))
					} else {
						b.Add(types.ProcessID(i))
					}
				}
				return Scenario{
					Name: "partition-heal",
					Rules: []Rule{{
						Window:    Window{From: 150, Until: 450},
						Links:     Between(a, b),
						HoldUntil: 450,
					}},
					// HoldUntil only delays; no information is lost, so the
					// full contract — liveness included — must survive.
					Properties: AllProperties(),
				}
			},
		},
		{
			Name: "partition-drop",
			Desc: "one process cut off over [150,400), cross traffic dropped (not healed)",
			Build: func(n int, seed int64) Scenario {
				p := victim(n, seed)
				isolated := types.NewSetOf(n, p)
				return Scenario{
					Name: "partition-drop",
					Rules: []Rule{{
						Window: Window{From: 150, Until: 400},
						Links:  Between(isolated, isolated.Complement()),
						Drop:   1,
					}},
					// Dropped broadcasts are permanently lost (the simulator
					// has no retransmission), so the cut-off process may
					// stall forever: safety only.
					Properties: SafetyProperties(),
				}
			},
		},
		{
			Name: "crash-recover",
			Desc: "one process down over [100,400) with buffered recovery",
			Build: func(n int, seed int64) Scenario {
				return Scenario{
					Name:       "crash-recover",
					Faults:     []NodeFault{Churn(victim(n, seed), 100, 400, true)},
					Properties: AllProperties(),
				}
			},
		},
		{
			Name: "churn-lossy",
			Desc: "one process down over [100,400), outage messages lost (faulty recovery)",
			Build: func(n int, seed int64) Scenario {
				return Scenario{
					Name:       "churn-lossy",
					Faults:     []NodeFault{Churn(victim(n, seed), 100, 400, false)},
					Properties: AllProperties(),
				}
			},
		},
		{
			Name: "rolling-churn",
			Desc: "two processes take turns being down (buffered), windows [100,300) and [300,500)",
			Build: func(n int, seed int64) Scenario {
				p := victim(n, seed)
				q := types.ProcessID((int(p) + 1) % n)
				return Scenario{
					Name: "rolling-churn",
					Faults: []NodeFault{
						Churn(p, 100, 300, true),
						Churn(q, 300, 500, true),
					},
					Properties: AllProperties(),
				}
			},
		},
		{
			Name: "lossy-early",
			Desc: "one process's outbound links drop 25% during startup [0,150)",
			Build: func(n int, seed int64) Scenario {
				// A single lossy sender, not global loss: with no
				// retransmission in the simulator, even modest loss on every
				// link deadlocks the whole cluster behind missing parents,
				// which makes every property vacuous. One lossy sender keeps
				// the other processes live while its own vertices may be
				// orphaned.
				p := victim(n, seed)
				return Scenario{
					Name: "lossy-early",
					Rules: []Rule{{
						Window: Window{Until: 150},
						Links:  FromSet(types.NewSetOf(n, p)),
						Drop:   0.25,
					}},
					// Early losses can orphan vertices permanently: safety only.
					Properties: SafetyProperties(),
				}
			},
		},
		{
			Name: "dup-reorder",
			Desc: "30% duplication, 0..15 extra jitter and 10% redelivery on every link, all run long",
			Build: func(n int, seed int64) Scenario {
				return Scenario{
					Name: "dup-reorder",
					Rules: []Rule{{
						Duplicate:      0.3,
						Delay:          Jitter{Max: 15},
						Redeliver:      0.1,
						RedeliverDelay: Jitter{Min: 1, Max: 40},
					}},
					// Duplication and reordering destroy nothing: handlers
					// are required to be idempotent, so the full contract
					// holds.
					Properties: AllProperties(),
				}
			},
		},
		{
			Name: "selective-send",
			Desc: "one Byzantine process sends only to a proper subset of receivers",
			Build: func(n int, seed int64) Scenario {
				p := victim(n, seed)
				allow := types.FullSet(n)
				allow.Remove(types.ProcessID((int(p) + 1) % n))
				return Scenario{
					Name:       "selective-send",
					Faults:     []NodeFault{Selective(p, allow)},
					Properties: AllProperties(),
				}
			},
		},
		{
			Name: "stale-replay",
			Desc: "one Byzantine process re-broadcasts its oldest message after every broadcast",
			Build: func(n int, seed int64) Scenario {
				return Scenario{
					Name:       "stale-replay",
					Faults:     []NodeFault{StaleReplay(victim(n, seed), 1)},
					Properties: AllProperties(),
				}
			},
		},
		{
			Name: "equivocate",
			Desc: "one Byzantine process shows half the receivers a one-broadcast-stale history",
			Build: func(n int, seed int64) Scenario {
				p := victim(n, seed)
				groupA := types.NewSet(n)
				for i := 0; i < n; i += 2 {
					groupA.Add(types.ProcessID(i))
				}
				groupA.Add(p) // the sender must see its own genuine stream
				return Scenario{
					Name:       "equivocate",
					Faults:     []NodeFault{Equivocate(p, groupA)},
					Properties: AllProperties(),
				}
			},
		},
	}
}

// Find returns the built-in definition with the given name.
func Find(name string) (Definition, bool) {
	for _, d := range Builtins() {
		if d.Name == name {
			return d, true
		}
	}
	return Definition{}, false
}

// Names returns the built-in scenario names in registry order.
func Names() []string {
	defs := Builtins()
	out := make([]string, len(defs))
	for i, d := range defs {
		out[i] = d.Name
	}
	return out
}
