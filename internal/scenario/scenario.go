// Package scenario is the declarative adversarial fault plane of the
// simulator: composable, timed fault stages that compile into sim.FaultPlane
// hooks and node wrappers, bundled with the Definition-4.1-style properties
// each scenario must preserve — so a scenario is a *test*, not just a
// schedule.
//
// # The DSL
//
// A Scenario is assembled from two orthogonal fault planes:
//
//   - Link rules (Rule): time-windowed, link-selected distributions of
//     drop, duplication, extra delay and delivery-point redelivery,
//     layered over any base sim.LatencyModel. Partitions that heal are a
//     Rule whose HoldUntil equals the heal time: matched messages exist
//     but arrive after the heal, like a retransmitting transport. Rules
//     compile into one sim.FaultPlane via Scenario.FaultPlane.
//   - Node faults (NodeFault): per-process behaviours wrapped around the
//     real protocol node — crash (sim.CrashNode), crash-recover churn
//     with buffered or dropped recovery (sim.ChurnNode), and the
//     Byzantine wrappers of this package (SelectiveNode, StaleReplayNode,
//     EquivocateNode). Apply them through Scenario.WrapNode.
//
// Each NodeFault declares whether the process still counts as a *correct*
// process (Correct): a buffered crash-recover node is indistinguishable
// from a correct process with slow links, so the paper's guarantees must
// hold AT it, while a drop-recovery or Byzantine node belongs in the
// faulty set the maximal guild is computed against.
//
// # Determinism contract
//
// Scenarios must stay byte-identical across DeliveryWorkers counts.
// Everything here obeys the two rules that guarantee it:
//
//   - All randomized link decisions draw from the run RNG handed to the
//     sim.FaultPlane hooks, which the simulator invokes only at its
//     single-threaded commit points (send-commit and queue-pop) — never
//     from inside a concurrently executing Receive handler.
//   - Node wrappers keep all state strictly per-node (only the worker
//     that owns the receiver touches it), never call Env.Rand, and make
//     any randomized-looking choice (stale-replay cadence, equivocation
//     grouping) from deterministic counters or the scenario seed.
//
// The registry of built-in scenarios lives in builtins.go; the harness
// package sweeps scenario × seed through harness.SweepScenarios and checks
// each scenario's declared properties on every run.
package scenario

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
	"repro/internal/types"
)

// Property is a Definition-4.1-style guarantee a scenario declares it must
// preserve for the correct processes in the maximal guild.
type Property int

const (
	// TotalOrder: delivery sequences of guild members are prefix-compatible.
	TotalOrder Property = iota
	// Agreement: every vertex delivered by a guild member up to the
	// common decided prefix is delivered by all of them.
	Agreement
	// Integrity: no guild member delivers a vertex twice.
	Integrity
	// Validity: an early vertex of a guild member reaches every guild
	// member that decided far enough past it.
	Validity
	// Liveness: every never-faulted guild member decides at least one
	// wave. (Scenarios that destroy information — lossy links, unbuffered
	// crashes — do not declare it.)
	Liveness
)

// String implements fmt.Stringer.
func (p Property) String() string {
	switch p {
	case TotalOrder:
		return "total-order"
	case Agreement:
		return "agreement"
	case Integrity:
		return "integrity"
	case Validity:
		return "validity"
	case Liveness:
		return "liveness"
	default:
		return fmt.Sprintf("Property(%d)", int(p))
	}
}

// SafetyProperties is the unconditional Definition 4.1 set every scenario
// should declare: safety never depends on the fault pattern.
func SafetyProperties() []Property {
	return []Property{TotalOrder, Agreement, Integrity}
}

// AllProperties adds Validity and Liveness to the safety set — the full
// contract of a scenario whose faults destroy no information.
func AllProperties() []Property {
	return []Property{TotalOrder, Agreement, Integrity, Validity, Liveness}
}

// Links selects the (from, to) pairs a rule affects; nil on a Rule means
// every link. Selectors must be pure functions.
type Links func(from, to types.ProcessID) bool

// FromSet matches messages sent by a member of s.
func FromSet(s types.Set) Links {
	return func(from, _ types.ProcessID) bool { return s.Contains(from) }
}

// ToSet matches messages delivered to a member of s.
func ToSet(s types.Set) Links {
	return func(_, to types.ProcessID) bool { return s.Contains(to) }
}

// Between matches cross-traffic between a and b, in either direction — the
// link set a partition of the cluster into a and b severs. Traffic inside
// one side (including self-delivery) never matches.
func Between(a, b types.Set) Links {
	return func(from, to types.ProcessID) bool {
		return (a.Contains(from) && b.Contains(to)) || (b.Contains(from) && a.Contains(to))
	}
}

// Window is a half-open activity window [From, Until) in virtual time.
// Until <= 0 means forever.
type Window struct {
	From, Until sim.VirtualTime
}

// Active reports whether the window covers time t.
func (w Window) Active(t sim.VirtualTime) bool {
	return t >= w.From && (w.Until <= 0 || t < w.Until)
}

// Jitter is a uniform extra-delay distribution over [Min, Max]. The zero
// value draws 0.
type Jitter struct {
	Min, Max sim.VirtualTime
}

func (j Jitter) draw(rng *rand.Rand) sim.VirtualTime {
	lo, hi := j.Min, j.Max
	if hi < lo {
		lo, hi = hi, lo
	}
	if hi <= 0 {
		return 0
	}
	if hi == lo {
		return lo
	}
	return lo + sim.VirtualTime(rng.Int63n(int64(hi-lo+1)))
}

// Rule is one composable, timed link-fault stage. All probabilistic
// decisions are drawn from the run RNG at the simulator's commit points,
// so a rule is deterministic per seed and worker-count independent.
//
// Composition semantics when several rules match one message: the first
// matching Drop wins (later rules are not consulted for a dropped
// message), Duplicates add up, Delay draws add up, and the largest
// HoldUntil applies. Redelivery is decided by the first matching rule
// that asks for it.
type Rule struct {
	// Window limits when the rule is active (zero value = always).
	Window Window
	// Links selects the affected links (nil = all links, including
	// self-delivery — see sim.DropFilter's pinned semantics).
	Links Links

	// Drop is the probability a matched message is discarded.
	Drop float64
	// Duplicate is the probability a matched message is sent twice (the
	// copy gets its own latency draw).
	Duplicate float64
	// Delay is extra link delay added to every matched message.
	Delay Jitter
	// HoldUntil delays matched messages so they arrive no earlier than
	// this virtual time — the healing-partition primitive.
	HoldUntil sim.VirtualTime

	// Redeliver is the probability a matched message is delivered a
	// second time, RedeliverDelay after its first delivery (clamped to
	// >= 1 by the simulator). Redelivered copies are consulted again, so
	// keep the probability well below 1.
	Redeliver      float64
	RedeliverDelay Jitter
}

func (r *Rule) matches(from, to types.ProcessID, now sim.VirtualTime) bool {
	return r.Window.Active(now) && (r.Links == nil || r.Links(from, to))
}

// NodeFault attaches a faulty behaviour to one process.
type NodeFault struct {
	// P is the process the fault applies to.
	P types.ProcessID
	// Correct reports whether the process still counts as a correct
	// process for property checking: true only for faults that delay or
	// duplicate information without destroying it (buffered
	// crash-recovery, stale replay of genuine messages). Byzantine and
	// lossy faults must leave it false so the guild excludes the process.
	Correct bool
	// Wrap builds the faulty behaviour around the process's real protocol
	// node. Wrappers that implement sim.Unwrapper keep the inner node's
	// results observable.
	Wrap func(inner sim.Node) sim.Node
}

// Scenario is one fully instantiated adversarial scenario: link rules plus
// node faults plus the properties that must survive them. Instances carry
// per-run wrapper state — build a fresh Scenario per execution (see
// Definition.Build).
type Scenario struct {
	// Name identifies the scenario in stats and failure reports.
	Name string
	// Rules are the link-fault stages, compiled by FaultPlane.
	Rules []Rule
	// Faults are the per-process behaviours, applied by WrapNode.
	Faults []NodeFault
	// Properties are the guarantees checked on every run.
	Properties []Property
}

// FaultPlane compiles the scenario's link rules into a sim.FaultPlane for
// sim.Config.Fault. It returns nil when the scenario has no rules, keeping
// the simulator on its unhooked hot path.
func (s *Scenario) FaultPlane() sim.FaultPlane {
	if len(s.Rules) == 0 {
		return nil
	}
	return &plane{rules: s.Rules}
}

// WrapNode applies the scenario's node faults for process p to its real
// protocol node. It matches the harness Wrap hook signature.
func (s *Scenario) WrapNode(p types.ProcessID, inner sim.Node) sim.Node {
	for i := range s.Faults {
		if s.Faults[i].P == p && s.Faults[i].Wrap != nil {
			inner = s.Faults[i].Wrap(inner)
		}
	}
	return inner
}

// FaultySet returns the processes that no longer count as correct — the
// set the maximal guild is computed against.
func (s *Scenario) FaultySet(n int) types.Set {
	out := types.NewSet(n)
	for i := range s.Faults {
		if !s.Faults[i].Correct {
			out.Add(s.Faults[i].P)
		}
	}
	return out
}

// TouchedSet returns every process with any node fault, correct or not —
// the set liveness checks exclude (a buffered-recovery node is correct,
// but a bounded run may quiesce before its recovery trigger fires).
func (s *Scenario) TouchedSet(n int) types.Set {
	out := types.NewSet(n)
	for i := range s.Faults {
		out.Add(s.Faults[i].P)
	}
	return out
}

// plane is the compiled sim.FaultPlane over a rule list.
type plane struct {
	rules []Rule
}

var _ sim.FaultPlane = (*plane)(nil)

// OnSend implements sim.FaultPlane.
func (pl *plane) OnSend(from, to types.ProcessID, _ sim.Message, now sim.VirtualTime, rng *rand.Rand) sim.SendVerdict {
	var v sim.SendVerdict
	hold := sim.VirtualTime(0)
	for i := range pl.rules {
		r := &pl.rules[i]
		if !r.matches(from, to, now) {
			continue
		}
		if r.Drop > 0 && rng.Float64() < r.Drop {
			return sim.SendVerdict{Drop: true}
		}
		if r.Duplicate > 0 && rng.Float64() < r.Duplicate {
			v.Duplicates++
		}
		v.Extra += r.Delay.draw(rng)
		if r.HoldUntil > hold {
			hold = r.HoldUntil
		}
	}
	if hold > now && hold-now > v.Extra {
		v.Extra = hold - now
	}
	return v
}

// OnDeliver implements sim.FaultPlane.
func (pl *plane) OnDeliver(from, to types.ProcessID, _ sim.Message, now sim.VirtualTime, rng *rand.Rand) sim.DeliverVerdict {
	for i := range pl.rules {
		r := &pl.rules[i]
		if r.Redeliver <= 0 || !r.matches(from, to, now) {
			continue
		}
		if rng.Float64() < r.Redeliver {
			return sim.DeliverVerdict{Redeliver: true, After: r.RedeliverDelay.draw(rng)}
		}
	}
	return sim.DeliverVerdict{}
}
