package scenario

import (
	"math/rand"

	"repro/internal/sim"
	"repro/internal/types"
)

// Byzantine node wrappers. --------------------------------------------------
//
// Each wrapper runs the real protocol node but intercepts its outbound
// traffic through a hooked Env, so the adversarial behaviour lives entirely
// at the network boundary: the inner node's state machine is untouched and
// its results remain observable through sim.Unwrap. The wrappers hold only
// per-node state and never call Env.Rand — in parallel-delivery mode the
// hooked Env may be a buffering parEnv executing concurrently with other
// receivers, and both restrictions are what keep that sound (see the
// package comment's determinism contract).

// sendHook is the interception point a wrapper implements: it receives the
// inner node's Send/Broadcast calls together with the real Env to forward
// (possibly mutated) traffic through.
type sendHook interface {
	hookSend(env sim.Env, to types.ProcessID, msg sim.Message)
	hookBroadcast(env sim.Env, msg sim.Message)
}

// hookEnv wraps the Env of the current Init/Receive call, routing the
// inner node's sends to the owning wrapper's hook. One hookEnv is pooled
// per wrapper and rebound to the live Env per call — only the goroutine
// executing the node touches it, matching the Env single-call contract.
type hookEnv struct {
	base  sim.Env
	owner sendHook
}

var _ sim.Env = (*hookEnv)(nil)

func (h *hookEnv) Self() types.ProcessID { return h.base.Self() }
func (h *hookEnv) N() int                { return h.base.N() }
func (h *hookEnv) Now() sim.VirtualTime  { return h.base.Now() }
func (h *hookEnv) Rand() *rand.Rand      { return h.base.Rand() }

func (h *hookEnv) Send(to types.ProcessID, msg sim.Message) {
	h.owner.hookSend(h.base, to, msg)
}

func (h *hookEnv) Broadcast(msg sim.Message) {
	h.owner.hookBroadcast(h.base, msg)
}

// run executes fn (an inner Init or Receive) with the hook rebound to env.
func (h *hookEnv) run(env sim.Env, fn func(sim.Env)) {
	h.base = env
	fn(h)
	h.base = nil
}

// SelectiveNode is a Byzantine sender that talks only to an allowed subset:
// every Send or Broadcast of the inner node is suppressed for destinations
// outside Allow (a broadcast degenerates to per-destination sends to the
// allowed members, in ascending ID order). Reliable dissemination must
// tolerate it: receivers inside Allow echo the vertex onward.
type SelectiveNode struct {
	Inner sim.Node
	Allow types.Set

	hook hookEnv
}

var _ sim.Node = (*SelectiveNode)(nil)
var _ sim.Unwrapper = (*SelectiveNode)(nil)

// Init implements sim.Node.
func (s *SelectiveNode) Init(env sim.Env) {
	s.hook.owner = s
	s.hook.run(env, s.Inner.Init)
}

// Receive implements sim.Node.
func (s *SelectiveNode) Receive(env sim.Env, from types.ProcessID, msg sim.Message) {
	s.hook.owner = s
	s.hook.run(env, func(e sim.Env) { s.Inner.Receive(e, from, msg) })
}

func (s *SelectiveNode) hookSend(env sim.Env, to types.ProcessID, msg sim.Message) {
	if s.Allow.Contains(to) {
		env.Send(to, msg)
	}
}

func (s *SelectiveNode) hookBroadcast(env sim.Env, msg sim.Message) {
	s.Allow.ForEach(func(to types.ProcessID) bool {
		env.Send(to, msg)
		return true
	})
}

// Unwrap implements sim.Unwrapper.
func (s *SelectiveNode) Unwrap() sim.Node { return s.Inner }

// StaleReplayNode is a Byzantine sender that replays recorded traffic:
// every Every-th broadcast of the inner node is followed by a replay of
// the oldest recorded broadcast — a genuine message reinjected long after
// its time. The cadence is a deterministic counter, never randomness, so
// the wrapper is safe inside concurrent Receive execution. Handlers must
// treat the replays as the duplicate deliveries they are.
type StaleReplayNode struct {
	Inner sim.Node
	// Every triggers a replay after each Every-th broadcast (values < 1
	// behave as 1: every broadcast is followed by a replay).
	Every int

	hook  hookEnv
	count int
	first sim.Message
}

var _ sim.Node = (*StaleReplayNode)(nil)
var _ sim.Unwrapper = (*StaleReplayNode)(nil)

// Init implements sim.Node.
func (s *StaleReplayNode) Init(env sim.Env) {
	s.hook.owner = s
	s.hook.run(env, s.Inner.Init)
}

// Receive implements sim.Node.
func (s *StaleReplayNode) Receive(env sim.Env, from types.ProcessID, msg sim.Message) {
	s.hook.owner = s
	s.hook.run(env, func(e sim.Env) { s.Inner.Receive(e, from, msg) })
}

func (s *StaleReplayNode) hookSend(env sim.Env, to types.ProcessID, msg sim.Message) {
	env.Send(to, msg)
}

func (s *StaleReplayNode) hookBroadcast(env sim.Env, msg sim.Message) {
	env.Broadcast(msg)
	if s.first == nil {
		s.first = msg
		return
	}
	s.count++
	every := s.Every
	if every < 1 {
		every = 1
	}
	if s.count%every == 0 {
		env.Broadcast(s.first)
	}
}

// Unwrap implements sim.Unwrapper.
func (s *StaleReplayNode) Unwrap() sim.Node { return s.Inner }

// EquivocateNode is a Byzantine sender that shows different processes
// different histories: each broadcast of the inner node reaches GroupA
// genuinely, while every process outside GroupA instead receives the
// *previous* broadcast again (nothing, before the first). The receiver
// sets are disjoint by construction and the substituted message is a real
// protocol message, so the equivocation is type-correct and must be
// absorbed by reliable dissemination among the correct processes.
type EquivocateNode struct {
	Inner sim.Node
	// GroupA receives genuine broadcasts; its complement gets the replayed
	// previous broadcast. The sender should keep itself in GroupA, or its
	// own protocol state diverges from what it disseminates.
	GroupA types.Set

	hook hookEnv
	prev sim.Message
}

var _ sim.Node = (*EquivocateNode)(nil)
var _ sim.Unwrapper = (*EquivocateNode)(nil)

// Init implements sim.Node.
func (q *EquivocateNode) Init(env sim.Env) {
	q.hook.owner = q
	q.hook.run(env, q.Inner.Init)
}

// Receive implements sim.Node.
func (q *EquivocateNode) Receive(env sim.Env, from types.ProcessID, msg sim.Message) {
	q.hook.owner = q
	q.hook.run(env, func(e sim.Env) { q.Inner.Receive(e, from, msg) })
}

func (q *EquivocateNode) hookSend(env sim.Env, to types.ProcessID, msg sim.Message) {
	env.Send(to, msg)
}

func (q *EquivocateNode) hookBroadcast(env sim.Env, msg sim.Message) {
	n := env.N()
	for i := 0; i < n; i++ {
		to := types.ProcessID(i)
		if q.GroupA.Contains(to) {
			env.Send(to, msg)
		} else if q.prev != nil {
			env.Send(to, q.prev)
		}
	}
	q.prev = msg
}

// Unwrap implements sim.Unwrapper.
func (q *EquivocateNode) Unwrap() sim.Node { return q.Inner }

// NodeFault constructors. ----------------------------------------------------

// Crash fail-stops process p at the given virtual time. The process is
// faulty: it falls silent mid-protocol.
func Crash(p types.ProcessID, at sim.VirtualTime) NodeFault {
	return NodeFault{P: p, Correct: false, Wrap: func(inner sim.Node) sim.Node {
		return &sim.CrashNode{Inner: inner, CrashAt: at}
	}}
}

// Mute replaces process p with a node that never sends anything.
func Mute(p types.ProcessID) NodeFault {
	return NodeFault{P: p, Correct: false, Wrap: func(sim.Node) sim.Node {
		return sim.MuteNode{}
	}}
}

// Churn takes process p down over [crashAt, recoverAt). With buffer true
// the outage only delays deliveries — the process is indistinguishable
// from a correct one with slow inbound links, and counts as correct; with
// buffer false the outage loses messages and the process is faulty.
func Churn(p types.ProcessID, crashAt, recoverAt sim.VirtualTime, buffer bool) NodeFault {
	return NodeFault{P: p, Correct: buffer, Wrap: func(inner sim.Node) sim.Node {
		return &sim.ChurnNode{Inner: inner, CrashAt: crashAt, RecoverAt: recoverAt, Buffer: buffer}
	}}
}

// Selective makes process p send only to the allowed set (Byzantine).
func Selective(p types.ProcessID, allow types.Set) NodeFault {
	return NodeFault{P: p, Correct: false, Wrap: func(inner sim.Node) sim.Node {
		return &SelectiveNode{Inner: inner, Allow: allow}
	}}
}

// StaleReplay makes process p re-broadcast its oldest recorded broadcast
// after every every-th new one (Byzantine: classified faulty even though
// the replays carry only genuine messages).
func StaleReplay(p types.ProcessID, every int) NodeFault {
	return NodeFault{P: p, Correct: false, Wrap: func(inner sim.Node) sim.Node {
		return &StaleReplayNode{Inner: inner, Every: every}
	}}
}

// Equivocate makes process p broadcast genuinely to groupA and replay its
// previous broadcast to everyone else (Byzantine).
func Equivocate(p types.ProcessID, groupA types.Set) NodeFault {
	return NodeFault{P: p, Correct: false, Wrap: func(inner sim.Node) sim.Node {
		return &EquivocateNode{Inner: inner, GroupA: groupA}
	}}
}
