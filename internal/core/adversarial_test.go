package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/quorum"
	"repro/internal/rider"
	"repro/internal/sim"
	"repro/internal/types"
)

// TestAckOnDeliverAblation: both readings of the ACK rule (on arb-deliver,
// the paper's literal line 142, vs on DAG insertion, our default) complete
// and keep all properties under benign schedules.
func TestAckOnDeliverAblation(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	c := coin.NewPRF(3, 4)
	for _, ackOnDeliver := range []bool{false, true} {
		nodes := make([]sim.Node, 4)
		raw := make([]*core.Node, 4)
		for i := range nodes {
			nd := core.NewNode(core.Config{
				Trust:        trust,
				Coin:         c,
				Workload:     rider.SyntheticWorkload{Self: types.ProcessID(i), TxPerBlock: 1},
				MaxRound:     24,
				AckOnDeliver: ackOnDeliver,
			})
			nodes[i] = nd
			raw[i] = nd
		}
		r := sim.NewRunner(sim.Config{N: 4, Seed: 11, Latency: sim.UniformLatency{Min: 1, Max: 30}}, nodes)
		r.Run(0)
		for i, nd := range raw {
			if nd.Round() < 24 {
				t.Errorf("ackOnDeliver=%v: node %d stalled at %d", ackOnDeliver, i, nd.Round())
			}
			if nd.DecidedWave() == 0 {
				t.Errorf("ackOnDeliver=%v: node %d decided nothing", ackOnDeliver, i)
			}
			if err := harness.CheckCommittedLeaderChain(nd.DAG(), nd.Commits()); err != nil {
				t.Errorf("ackOnDeliver=%v: %v", ackOnDeliver, err)
			}
		}
	}
}

// TestAdversarialScheduleOnCounterexample: the consensus protocol stays
// safe under the Appendix A quorum-favoring schedule on the 30-process
// system (the schedule that breaks Algorithm 2's gather).
func TestAdversarialScheduleOnCounterexample(t *testing.T) {
	if testing.Short() {
		t.Skip("30-process adversarial run is slow")
	}
	sys := quorum.Counterexample()
	fav := make([]types.Set, sys.N())
	for i := range fav {
		fav[i] = sys.Quorums(types.ProcessID(i))[0]
	}
	res := harness.RunRider(harness.RiderConfig{
		Kind:       harness.Asymmetric,
		Trust:      sys,
		NumWaves:   2,
		TxPerBlock: 1,
		Seed:       1,
		CoinSeed:   1,
		Latency:    sim.FavoredLinksLatency{Favored: fav, Fast: 1, Slow: 5000},
	})
	all := types.FullSet(30)
	if err := res.CheckTotalOrder(all); err != nil {
		t.Error(err)
	}
	if err := res.CheckIntegrity(all); err != nil {
		t.Error(err)
	}
	if err := res.CheckAgreement(all); err != nil {
		t.Error(err)
	}
	for p, nr := range res.Nodes {
		if nr.Round < 8 {
			t.Errorf("%v stalled at round %d under the adversarial schedule", p, nr.Round)
		}
	}
}

// TestPartitionHealLiveness: a 2-2 split of threshold(4,1) makes progress
// impossible (no side holds a quorum of 3); once the partition heals,
// commits resume. Cross-partition messages are delayed until the heal time
// rather than dropped, so the reliable-links assumption holds — this is a
// legal asynchronous schedule.
func TestPartitionHealLiveness(t *testing.T) {
	const heal = sim.VirtualTime(10000)
	groupA := types.NewSetOf(4, 0, 1)
	lat := sim.LatencyFunc(func(from, to types.ProcessID, _ sim.Message, now sim.VirtualTime, rng *rand.Rand) sim.VirtualTime {
		sameSide := groupA.Contains(from) == groupA.Contains(to)
		if sameSide || now >= heal {
			return 1 + sim.VirtualTime(rng.Int63n(10))
		}
		// Cross-partition: park until just after the heal.
		return heal - now + sim.VirtualTime(rng.Int63n(10))
	})
	res := harness.RunRider(harness.RiderConfig{
		Kind:       harness.Asymmetric,
		Trust:      quorum.NewThreshold(4, 1),
		NumWaves:   6,
		TxPerBlock: 1,
		Seed:       5,
		CoinSeed:   5,
		Latency:    lat,
	})
	committed := 0
	for p, nr := range res.Nodes {
		for _, c := range nr.Commits {
			if c.Time < heal {
				t.Errorf("%v committed wave %d at %d, before the heal at %d", p, c.Wave, c.Time, heal)
			}
		}
		if nr.DecidedWave > 0 {
			committed++
		}
	}
	if committed == 0 {
		t.Error("no commits after the partition healed")
	}
	checkAll(t, res, types.FullSet(4))
}

// TestMidRunCrash: a process that fail-stops mid-execution (after the run
// is underway) is just another tolerated fault.
func TestMidRunCrash(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	c := coin.NewPRF(21, 4)
	nodes := make([]sim.Node, 4)
	raw := make([]*core.Node, 4)
	for i := range nodes {
		nd := core.NewNode(core.Config{
			Trust:    trust,
			Coin:     c,
			Workload: rider.SyntheticWorkload{Self: types.ProcessID(i), TxPerBlock: 1},
			MaxRound: 32,
		})
		nodes[i] = nd
		raw[i] = nd
	}
	nodes[3] = &sim.CrashNode{Inner: nodes[3], CrashAt: 200}
	r := sim.NewRunner(sim.Config{N: 4, Seed: 21, Latency: sim.UniformLatency{Min: 1, Max: 20}}, nodes)
	r.Run(0)
	for i := 0; i < 3; i++ {
		if raw[i].Round() < 32 {
			t.Errorf("node %d stalled at round %d after peer crash", i, raw[i].Round())
		}
		if raw[i].DecidedWave() == 0 {
			t.Errorf("node %d decided nothing after peer crash", i)
		}
	}
	// Delivery sequences prefix-compatible among survivors.
	var longest []rider.Delivery
	for i := 0; i < 3; i++ {
		if len(raw[i].Deliveries()) > len(longest) {
			longest = raw[i].Deliveries()
		}
	}
	for i := 0; i < 3; i++ {
		for k, d := range raw[i].Deliveries() {
			if longest[k].Ref != d.Ref {
				t.Fatalf("total order violated after mid-run crash at node %d", i)
			}
		}
	}
}
