package core

import (
	"bytes"
	"testing"

	"repro/internal/sim"
	"repro/internal/wire"
)

// TestCoreWireRoundTrip is the core slice of the differential wire suite:
// the three wave-tagged control messages round-trip byte-identically and
// the simulator's byte metric equals the frame length.
func TestCoreWireRoundTrip(t *testing.T) {
	for _, wave := range []int{0, 1, 127, 128, 1 << 20} {
		for _, msg := range []sim.Message{
			ackMsg{Wave: wave}, readyMsg{Wave: wave}, confirmMsg{Wave: wave},
		} {
			enc, err := wire.Marshal(msg)
			if err != nil {
				t.Fatalf("%T: %v", msg, err)
			}
			if got := sim.MessageSize(msg); got != len(enc) {
				t.Fatalf("%T(wave=%d): MessageSize %d != wire length %d", msg, wave, got, len(enc))
			}
			dec, rest, err := wire.Decode(enc)
			if err != nil || len(rest) != 0 {
				t.Fatalf("%T: decode: %v", msg, err)
			}
			if dec != msg {
				t.Fatalf("%T round trip mutated: %v -> %v", msg, msg, dec)
			}
			re, err := wire.Marshal(dec)
			if err != nil || !bytes.Equal(enc, re) {
				t.Fatalf("%T: re-encode differs", msg)
			}
		}
	}
	// Wave beyond the decode bound is rejected.
	frame := wire.AppendUvarint(nil, wireTagAck)
	frame = wire.AppendUvarint(frame, uint64(maxWireWave)+1)
	if _, _, err := wire.Decode(frame); err == nil {
		t.Fatal("oversized wave accepted")
	}
}
