package core_test

import (
	"testing"

	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/rider"
	"repro/internal/sim"
	"repro/internal/types"
)

func runGC(t *testing.T, gcDepth, waves int, seed int64) []*core.Node {
	t.Helper()
	trust := quorum.NewThreshold(4, 1)
	c := coin.NewPRF(seed, 4)
	nodes := make([]sim.Node, 4)
	raw := make([]*core.Node, 4)
	for i := range nodes {
		nd := core.NewNode(core.Config{
			Trust:    trust,
			Coin:     c,
			Workload: rider.SyntheticWorkload{Self: types.ProcessID(i), TxPerBlock: 1},
			MaxRound: 4 * waves,
			GCDepth:  gcDepth,
		})
		nodes[i] = nd
		raw[i] = nd
	}
	r := sim.NewRunner(sim.Config{N: 4, Seed: seed, Latency: sim.UniformLatency{Min: 1, Max: 20}}, nodes)
	r.Run(0)
	return raw
}

// TestGCBoundsMemory: with GC enabled the retained vertex count stays well
// below the full run's vertex count.
func TestGCBoundsMemory(t *testing.T) {
	const waves = 16
	full := runGC(t, 0, waves, 7)
	gc := runGC(t, 3, waves, 7)
	for i := range gc {
		fullCount := full[i].DAG().VertexCount()
		gcCount := gc[i].DAG().VertexCount()
		if gc[i].DAG().PrunedBelow() == 0 {
			t.Errorf("node %d never pruned", i)
		}
		if gcCount >= fullCount {
			t.Errorf("node %d: GC retained %d vertices, full run has %d", i, gcCount, fullCount)
		}
		// Retention proportional to the GC window, not the run length:
		// at most (GCDepth + rounds-past-last-decided + slack) rounds of
		// 4 vertices each.
		if gcCount > 4*(4*waves-gc[i].DAG().PrunedBelow()+4) {
			t.Errorf("node %d: GC retained %d vertices beyond the window", i, gcCount)
		}
	}
}

// TestGCSameDeliveries: GC must not change what gets delivered or its
// order (pruning happens strictly after delivery).
func TestGCSameDeliveries(t *testing.T) {
	const waves = 10
	full := runGC(t, 0, waves, 9)
	gc := runGC(t, 2, waves, 9)
	for i := range gc {
		a, b := full[i].Deliveries(), gc[i].Deliveries()
		if len(a) != len(b) {
			t.Fatalf("node %d: %d vs %d deliveries", i, len(a), len(b))
		}
		for k := range a {
			if a[k].Ref != b[k].Ref {
				t.Fatalf("node %d: delivery %d differs: %v vs %v", i, k, a[k].Ref, b[k].Ref)
			}
		}
	}
}

// TestGCKeepsProperties: total order among nodes of the GC run.
func TestGCKeepsProperties(t *testing.T) {
	gc := runGC(t, 2, 12, 11)
	var longest []rider.Delivery
	for _, nd := range gc {
		if len(nd.Deliveries()) > len(longest) {
			longest = nd.Deliveries()
		}
	}
	for i, nd := range gc {
		for k, d := range nd.Deliveries() {
			if longest[k].Ref != d.Ref {
				t.Fatalf("node %d: total order violated at %d with GC", i, k)
			}
		}
		if nd.DecidedWave() == 0 {
			t.Errorf("node %d decided nothing with GC", i)
		}
	}
}
