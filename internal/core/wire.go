// Binary wire codec registration for the consensus control messages (see
// internal/wire for the frame layout and tag-range assignments). The
// other message types a consensus node puts on the wire — the broadcast
// SEND/ECHO/READY envelopes, rider.VertexPayload, coin.ShareMsg — are
// registered by their owning packages.
package core

import (
	"fmt"

	"repro/internal/wire"
)

// Wire tags (range 40–44, assigned in internal/wire's central table).
const (
	wireTagAck     = 40
	wireTagReady   = 41
	wireTagConfirm = 42
)

// maxWireWave bounds wave numbers accepted off the wire.
const maxWireWave = 1 << 30

func init() {
	registerWaveMsg(wireTagAck, ackMsg{},
		func(m any) int { return m.(ackMsg).Wave },
		func(w int) any { return ackMsg{Wave: w} })
	registerWaveMsg(wireTagReady, readyMsg{},
		func(m any) int { return m.(readyMsg).Wave },
		func(w int) any { return readyMsg{Wave: w} })
	registerWaveMsg(wireTagConfirm, confirmMsg{},
		func(m any) int { return m.(confirmMsg).Wave },
		func(w int) any { return confirmMsg{Wave: w} })
}

// registerWaveMsg registers one of the three structurally identical
// wave-tagged control messages: [uvarint wave].
func registerWaveMsg(tag uint64, prototype any, get func(any) int, build func(int) any) {
	wire.Register(tag, prototype, wire.Codec{
		Size: func(msg any) (int, bool) { return wire.IntSize(get(msg)), true },
		Append: func(dst []byte, msg any) ([]byte, error) {
			return wire.AppendInt(dst, get(msg)), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			w, rest, err := wire.ReadInt(b, maxWireWave)
			if err != nil {
				return nil, b, fmt.Errorf("core: wire wave: %w", err)
			}
			return build(w), rest, nil
		},
	})
}
