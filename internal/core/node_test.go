package core_test

import (
	"testing"

	"repro/internal/broadcast"
	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/harness"
	"repro/internal/quorum"
	"repro/internal/rider"
	"repro/internal/sim"
	"repro/internal/types"
)

func fullSet(n int) types.Set { return types.FullSet(n) }

func checkAll(t *testing.T, res harness.RiderResult, within types.Set) {
	t.Helper()
	if err := res.CheckTotalOrder(within); err != nil {
		t.Error(err)
	}
	if err := res.CheckIntegrity(within); err != nil {
		t.Error(err)
	}
	if err := res.CheckAgreement(within); err != nil {
		t.Error(err)
	}
}

func TestAsymmetricOnThresholdSystem(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	res := harness.RunRider(harness.RiderConfig{
		Kind:       harness.Asymmetric,
		Trust:      trust,
		NumWaves:   8,
		TxPerBlock: 2,
		Seed:       1,
		CoinSeed:   1,
	})
	for p, nr := range res.Nodes {
		if nr.DecidedWave == 0 {
			t.Errorf("%v decided no wave", p)
		}
		if len(nr.Blocks) == 0 {
			t.Errorf("%v delivered no transactions", p)
		}
		if nr.Round < 4*8 {
			t.Errorf("%v stalled at round %d", p, nr.Round)
		}
	}
	checkAll(t, res, fullSet(4))
	if err := res.CheckValidity(fullSet(4), 2, 1); err != nil {
		t.Error(err)
	}
}

func TestAsymmetricManySeeds(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	for seed := int64(0); seed < 8; seed++ {
		res := harness.RunRider(harness.RiderConfig{
			Kind:       harness.Asymmetric,
			Trust:      trust,
			NumWaves:   6,
			TxPerBlock: 1,
			Seed:       seed,
			CoinSeed:   seed + 100,
			Latency:    sim.UniformLatency{Min: 1, Max: 40},
		})
		checkAll(t, res, fullSet(4))
		committed := 0
		for _, nr := range res.Nodes {
			if nr.DecidedWave > 0 {
				committed++
			}
		}
		if committed == 0 {
			t.Errorf("seed %d: nobody committed", seed)
		}
	}
}

func TestAsymmetricOnCounterexampleSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("30-process run is slow")
	}
	sys := quorum.Counterexample()
	res := harness.RunRider(harness.RiderConfig{
		Kind:       harness.Asymmetric,
		Trust:      sys,
		NumWaves:   4,
		TxPerBlock: 1,
		Seed:       3,
		CoinSeed:   3,
	})
	decided := 0
	for _, nr := range res.Nodes {
		if nr.Round < 16 {
			t.Errorf("a node stalled at round %d", nr.Round)
		}
		if nr.DecidedWave > 0 {
			decided++
		}
	}
	if decided == 0 {
		t.Error("no process committed any wave on the counterexample system")
	}
	checkAll(t, res, fullSet(30))
}

func TestAsymmetricOnFederatedSystem(t *testing.T) {
	sys, err := quorum.NewFederated(quorum.FederatedConfig{
		N: 10, TopTier: 7, TrustedPeers: 2, Tolerance: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := harness.RunRider(harness.RiderConfig{
		Kind:       harness.Asymmetric,
		Trust:      sys,
		NumWaves:   6,
		TxPerBlock: 2,
		Seed:       2,
		CoinSeed:   2,
	})
	for p, nr := range res.Nodes {
		if nr.Round < 24 {
			t.Errorf("%v stalled at round %d", p, nr.Round)
		}
	}
	checkAll(t, res, fullSet(10))
}

func TestAsymmetricWithCrashFaults(t *testing.T) {
	// Threshold(7,2) as an asymmetric assumption; crash 2 processes.
	trust := quorum.NewThreshold(7, 2)
	faulty := map[types.ProcessID]sim.Node{
		5: sim.MuteNode{},
		6: sim.MuteNode{},
	}
	res := harness.RunRider(harness.RiderConfig{
		Kind:       harness.Asymmetric,
		Trust:      trust,
		NumWaves:   8,
		TxPerBlock: 1,
		Seed:       4,
		CoinSeed:   4,
		Faulty:     faulty,
	})
	correct := types.NewSetOf(7, 0, 1, 2, 3, 4)
	committed := 0
	for _, p := range correct.Members() {
		nr := res.Nodes[p]
		if nr.Round < 32 {
			t.Errorf("%v stalled at round %d with crashes", p, nr.Round)
		}
		if nr.DecidedWave > 0 {
			committed++
		}
	}
	if committed == 0 {
		t.Error("no correct process committed under crash faults")
	}
	checkAll(t, res, correct)
}

func TestAsymmetricCrashInsideFailProneSet(t *testing.T) {
	sys, err := quorum.RandomAsymmetric(quorum.RandomAsymmetricConfig{N: 8, NumSets: 2, MaxFault: 2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	n := sys.N()
	// Pick a faulty set tolerated widely enough to leave a full guild of
	// the remaining processes.
	var faultySet types.Set
	found := false
	for i := 0; i < n && !found; i++ {
		for _, fp := range sys.FailProneSets(types.ProcessID(i)) {
			if fp.Count() == 0 {
				continue
			}
			if g := sys.MaximalGuild(fp); g.Count() == n-fp.Count() {
				faultySet = fp
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("no suitable fail-prone set")
	}
	guild := sys.MaximalGuild(faultySet)
	faulty := map[types.ProcessID]sim.Node{}
	for _, p := range faultySet.Members() {
		faulty[p] = sim.MuteNode{}
	}
	res := harness.RunRider(harness.RiderConfig{
		Kind:       harness.Asymmetric,
		Trust:      sys,
		NumWaves:   6,
		TxPerBlock: 1,
		Seed:       6,
		CoinSeed:   6,
		Faulty:     faulty,
	})
	for _, p := range guild.Members() {
		if res.Nodes[p].Round < 24 {
			t.Errorf("guild member %v stalled at round %d", p, res.Nodes[p].Round)
		}
	}
	checkAll(t, res, guild)
}

// vertexEquivocator is a Byzantine node that sends conflicting round-1
// vertices to different halves of the system and then goes silent.
type vertexEquivocator struct{ trust quorum.Assumption }

func (b *vertexEquivocator) Init(env sim.Env) {
	n := env.N()
	genesis := rider.Genesis(n)
	var strong []dag.VertexRef
	for _, g := range genesis {
		strong = append(strong, g.Ref())
	}
	va := &dag.Vertex{Source: env.Self(), Round: 1, Block: []string{"evil-A"}, StrongEdges: strong}
	vb := &dag.Vertex{Source: env.Self(), Round: 1, Block: []string{"evil-B"}, StrongEdges: strong}
	slot := broadcast.Slot{Src: env.Self(), Seq: 1}
	for i := 0; i < n; i++ {
		p := rider.VertexPayload{V: va}
		if i >= n/2 {
			p = rider.VertexPayload{V: vb}
		}
		broadcast.EquivocateSend(env, types.ProcessID(i), slot, p)
	}
}

func (b *vertexEquivocator) Receive(sim.Env, types.ProcessID, sim.Message) {}

func TestAsymmetricVertexEquivocation(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	res := harness.RunRider(harness.RiderConfig{
		Kind:       harness.Asymmetric,
		Trust:      trust,
		NumWaves:   6,
		TxPerBlock: 1,
		Seed:       8,
		CoinSeed:   8,
		Faulty: map[types.ProcessID]sim.Node{
			3: &vertexEquivocator{trust: trust},
		},
	})
	correct := types.NewSetOf(4, 0, 1, 2)
	checkAll(t, res, correct)
	// At most one of the two equivocated blocks may ever be delivered,
	// and never both at one process or different ones at different
	// processes.
	var seen string
	for _, p := range correct.Members() {
		for _, tx := range res.Nodes[p].Blocks {
			if tx == "evil-A" || tx == "evil-B" {
				if seen == "" {
					seen = tx
				} else if seen != tx {
					t.Fatalf("conflicting equivocated blocks delivered: %s and %s", seen, tx)
				}
			}
		}
	}
	// Liveness must be unaffected.
	for _, p := range correct.Members() {
		if res.Nodes[p].Round < 24 {
			t.Errorf("%v stalled at round %d", p, res.Nodes[p].Round)
		}
	}
}

// TestLemma42LeaderChain checks the committed-leader reachability invariant
// directly on the node DAGs.
func TestLemma42LeaderChain(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	c := coin.NewPRF(42, 4)
	nodes := make([]sim.Node, 4)
	cores := make([]*core.Node, 4)
	for i := range nodes {
		nd := core.NewNode(core.Config{
			Trust:    trust,
			Coin:     c,
			Workload: rider.SyntheticWorkload{Self: types.ProcessID(i), TxPerBlock: 1},
			MaxRound: 40,
		})
		nodes[i] = nd
		cores[i] = nd
	}
	r := sim.NewRunner(sim.Config{N: 4, Seed: 42, Latency: sim.UniformLatency{Min: 1, Max: 25}}, nodes)
	r.Run(0)
	for i, nd := range cores {
		if len(nd.Commits()) < 2 {
			continue
		}
		if err := harness.CheckCommittedLeaderChain(nd.DAG(), nd.Commits()); err != nil {
			t.Errorf("node %d: %v", i, err)
		}
	}
}

// TestLemma44WavesPerCommit: the expected number of waves until a commit is
// at most |P|/c(Q). Averaged over seeds with a comfortable slack (the bound
// is loose — the common core is usually much larger than one quorum).
func TestLemma44WavesPerCommit(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	bound := 4.0 / 3.0
	total, runs := 0.0, 0
	for seed := int64(0); seed < 6; seed++ {
		res := harness.RunRider(harness.RiderConfig{
			Kind:     harness.Asymmetric,
			Trust:    trust,
			NumWaves: 10,
			Seed:     seed,
			CoinSeed: seed * 7,
		})
		for p := range res.Nodes {
			if w, ok := res.WavesPerCommit(p); ok {
				total += w
				runs++
			}
		}
	}
	if runs == 0 {
		t.Fatal("no commits at all")
	}
	mean := total / float64(runs)
	// Allow slack for boundary effects on short runs.
	if mean > bound*1.75 {
		t.Errorf("mean waves/commit %.2f far exceeds Lemma 4.4 bound %.2f", mean, bound)
	}
	t.Logf("mean waves per commit %.3f (bound %.3f)", mean, bound)
}

// TestRevealedCoinProtocol: the share-gated coin preserves all properties
// and still commits.
func TestRevealedCoinProtocol(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	for seed := int64(0); seed < 5; seed++ {
		res := harness.RunRider(harness.RiderConfig{
			Kind:         harness.Asymmetric,
			Trust:        trust,
			NumWaves:     8,
			TxPerBlock:   1,
			Seed:         seed,
			CoinSeed:     seed + 50,
			RevealedCoin: true,
			Latency:      sim.UniformLatency{Min: 1, Max: 35},
		})
		committed := 0
		for p, nr := range res.Nodes {
			if nr.Round < 32 {
				t.Errorf("seed %d: %v stalled at round %d", seed, p, nr.Round)
			}
			if nr.DecidedWave > 0 {
				committed++
			}
		}
		if committed == 0 {
			t.Errorf("seed %d: nobody committed with revealed coin", seed)
		}
		checkAll(t, res, fullSet(4))
	}
}

// TestRevealedCoinAsymmetricSystem: revealed coin on a genuinely
// asymmetric system with a mute fault.
func TestRevealedCoinAsymmetricSystem(t *testing.T) {
	sys, err := quorum.NewFederated(quorum.FederatedConfig{
		N: 10, TopTier: 7, TrustedPeers: 2, Tolerance: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pick a victim whose failure every other process tolerates (top-tier
	// members are covered by everyone's Tolerance; peers outside the top
	// tier may be single points of failure for whoever trusts them).
	var victim types.ProcessID = -1
	var guild types.Set
	for c := 0; c < 10; c++ {
		f := types.NewSetOf(10, types.ProcessID(c))
		if g := sys.MaximalGuild(f); g.Count() == 9 {
			victim, guild = types.ProcessID(c), g
			break
		}
	}
	if victim < 0 {
		t.Skip("no universally tolerated victim")
	}
	res := harness.RunRider(harness.RiderConfig{
		Kind:         harness.Asymmetric,
		Trust:        sys,
		NumWaves:     6,
		TxPerBlock:   1,
		Seed:         9,
		CoinSeed:     9,
		RevealedCoin: true,
		Faulty:       map[types.ProcessID]sim.Node{victim: sim.MuteNode{}},
	})
	committed := 0
	for _, p := range guild.Members() {
		if res.Nodes[p].DecidedWave > 0 {
			committed++
		}
	}
	if committed == 0 {
		t.Error("no guild commits with revealed coin + fault")
	}
	checkAll(t, res, guild)
}

// TestDeterminism: identical seeds give identical outcomes.
func TestDeterminism(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	run := func() harness.RiderResult {
		return harness.RunRider(harness.RiderConfig{
			Kind:       harness.Asymmetric,
			Trust:      trust,
			NumWaves:   5,
			TxPerBlock: 1,
			Seed:       77,
			CoinSeed:   78,
		})
	}
	a, b := run(), run()
	for p, na := range a.Nodes {
		nb := b.Nodes[p]
		if len(na.Deliveries) != len(nb.Deliveries) {
			t.Fatalf("%v: %d vs %d deliveries", p, len(na.Deliveries), len(nb.Deliveries))
		}
		for i := range na.Deliveries {
			if na.Deliveries[i].Ref != nb.Deliveries[i].Ref {
				t.Fatalf("%v: delivery %d differs", p, i)
			}
		}
	}
	if a.Metrics.MessagesSent != b.Metrics.MessagesSent {
		t.Fatal("message counts differ between identical runs")
	}
}
