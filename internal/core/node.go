// Package core implements the paper's primary contribution: the first
// asynchronous, randomized, DAG-based atomic-broadcast (consensus) protocol
// with asymmetric trust (Algorithms 4, 5 and 6).
//
// The protocol is DAG-Rider restructured for asymmetric quorums. Each wave
// is four rounds of vertex dissemination over asymmetric reliable
// broadcast, arranged so that every wave executes the constant-round
// asymmetric gather of Algorithm 3:
//
//   - Round advance rule: a round completes when the process's DAG contains
//     vertices from one of its quorums (replacing DAG-Rider's 2f+1 count).
//   - The round 2→3 transition additionally waits for the ACK/READY/CONFIRM
//     control-flow (the gather's DISTRIBUTE_T gating): receivers ACK
//     round-2 vertices, a quorum of ACKs triggers READY, a quorum of
//     READYs triggers CONFIRM, a kernel of CONFIRMs amplifies CONFIRM, and
//     a quorum of CONFIRMs finally opens the gate (tReady).
//   - Commit rule: a wave's coin-elected leader vertex commits if the
//     round-4 vertices of some process's quorum all have strong paths to
//     it.
//
// Two deliberate, documented strengthenings over the paper's pseudocode
// (both required by its own proofs):
//
//  1. ACK/READY/CONFIRM messages carry the wave number and are counted per
//     wave. The pseudocode keeps single arrays and resets them at the
//     round 2→3 transition, which lets a fast neighbour's wave-(w+1)
//     control traffic leak into wave w's counters; the proofs (Lemma 4.3)
//     treat each wave as an independent gather execution, which is what
//     per-wave counting implements.
//  2. A process ACKs a round-2 vertex when the vertex is *added to its
//     DAG* (causal history complete), not merely arb-delivered. This is
//     the DAG analogue of Algorithm 3's "S_j ⊆ S_i" precondition on
//     ACKing DISTRIBUTE_S, and it is what makes the ACKer's future
//     round-3 vertex actually reference the ACKed vertex.
package core

import (
	"encoding/gob"

	"repro/internal/broadcast"
	"repro/internal/coin"
	"repro/internal/dag"
	"repro/internal/quorum"
	"repro/internal/rider"
	"repro/internal/sim"
	"repro/internal/types"
)

// Control messages (Algorithm 5), tagged by wave.

type ackMsg struct{ Wave int }

type readyMsg struct{ Wave int }

type confirmMsg struct{ Wave int }

// Config configures one consensus node.
type Config struct {
	// Trust is the asymmetric (or threshold) quorum assumption.
	Trust quorum.Assumption
	// Coin elects wave leaders; all nodes of a run must share it.
	Coin coin.Source
	// Workload supplies the blocks this node proposes. Nil means empty
	// blocks.
	Workload rider.Workload
	// MaxRound stops vertex creation beyond this round so simulations
	// quiesce; 0 means unbounded.
	MaxRound int
	// RevealedCoin gates each wave's leader election behind a coin-share
	// exchange (coin.Shared): the leader of wave w becomes known only
	// after shares from a quorum, reproducing DAG-Rider's discipline of
	// revealing the coin only once enough processes finished the wave.
	// Off by default (the PRF coin is evaluated directly).
	RevealedCoin bool
	// AckOnDeliver is an ablation switch: send the round-2 ACK upon
	// arb-delivery (the paper's literal Algorithm 6 line 142) instead of
	// upon DAG insertion (this implementation's default, which mirrors
	// Algorithm 3's S_j ⊆ S_i precondition — see the package comment).
	// Exists so experiments can compare the two readings.
	AckOnDeliver bool
	// GCDepth enables Bullshark-style garbage collection: after deciding
	// wave w, rounds below round(w,1)−GCDepth whose vertices were all
	// delivered are pruned, bounding memory (the paper flags DAG-Rider's
	// unbounded memory in §4.5). 0 disables GC (the paper's protocol).
	// GC trades the eventual delivery of extremely late vertices for the
	// bound; see the pruning notes in internal/dag. When enabled it also
	// prunes the reliable-broadcast slot trackers, the revealed-coin share
	// maps and the stale pending-coin entries below the same horizon, so
	// every per-round/per-wave structure of the node is bounded — the
	// service layer (internal/service) requires this for unbounded runs.
	GCDepth int
	// PipelineDepth bounds how many waves ahead of the last decided wave
	// this node will propose into: with depth d, vertex creation stalls at
	// a wave boundary rather than enter wave decidedWave+d+1. The DAG
	// protocol pipelines naturally (rounds advance without waiting for
	// decisions); the bound is what keeps the undecided window — and hence
	// the live state GC cannot reclaim — finite over an unbounded run.
	// While stalled the node still absorbs vertices, answers control
	// traffic and retries the pending wave commit on every step, so the
	// stall lifts as soon as the wave decides. 0 means unbounded (the
	// batch-run behaviour).
	PipelineDepth int
	// DeliverySink, when non-nil, receives every atomically delivered
	// vertex instead of the node accumulating it in Deliveries() — the
	// long-lived service applies deliveries to a state machine and must
	// not grow an in-memory log forever. Same for CommitSink and
	// Commits(). For one commit the node invokes DeliverySink for each
	// delivered vertex first, then CommitSink once: a sink consumer sees
	// "apply the wave's deliveries, then observe the commit", which is
	// the snapshot trigger ordering internal/service counts on.
	DeliverySink func(rider.Delivery)
	// CommitSink, when non-nil, receives wave-commit events instead of
	// Commits() accumulating them.
	CommitSink func(rider.CommitEvent)
}

// waveCtl is the per-wave gather control state. The tallies are
// incremental quorum trackers: each control message updates residual
// counts and the ACK/READY/CONFIRM triggers read in O(1).
type waveCtl struct {
	acks     *quorum.Tracker
	readies  *quorum.Tracker
	confirms *quorum.Tracker

	sentReady   bool
	sentConfirm bool
	tReady      bool
}

// Node is one process running the asymmetric DAG-based consensus.
type Node struct {
	cfg  Config
	self types.ProcessID
	n    int

	arb *broadcast.Reliable
	dag *dag.DAG

	r      int
	buffer []*dag.Vertex
	waves  map[int]*waveCtl

	// roundSrc tracks, per round, the quorum predicate over the sources
	// with a vertex in the local DAG — fed on insertion so the round
	// advance rule is an O(1) read instead of a RoundSources rescan.
	roundSrc map[int]*quorum.Tracker

	decidedWave int
	delivered   map[dag.VertexRef]bool

	// deliveries/commits accumulate only when the corresponding sink is
	// nil — the short-run/test configuration; long-lived service runs set
	// DeliverySink/CommitSink and these stay empty.
	//lint:retained only populated when DeliverySink is nil (test/short-run mode)
	deliveries []rider.Delivery
	//lint:retained only populated when CommitSink is nil (test/short-run mode)
	commits []rider.CommitEvent

	// acked tracks which round-2 vertices were already acknowledged, so
	// buffered vertices are not ACKed twice.
	acked map[dag.VertexRef]bool

	// shared is the revealed coin (nil when Config.RevealedCoin is off);
	// pendingCoin holds waves whose commit attempt awaits the reveal.
	shared      *coin.Shared
	pendingCoin map[int]bool
}

var _ sim.Node = (*Node)(nil)

// NewNode creates a consensus node; the protocol starts at Init.
func NewNode(cfg Config) *Node {
	return &Node{
		cfg:         cfg,
		waves:       map[int]*waveCtl{},
		roundSrc:    map[int]*quorum.Tracker{},
		delivered:   map[dag.VertexRef]bool{},
		acked:       map[dag.VertexRef]bool{},
		pendingCoin: map[int]bool{},
	}
}

// Init implements sim.Node.
func (n *Node) Init(env sim.Env) {
	n.self = env.Self()
	n.n = env.N()
	n.dag = dag.New(n.n)
	for _, g := range rider.Genesis(n.n) {
		if err := n.dag.Add(g); err != nil {
			panic("core: genesis insertion failed: " + err.Error())
		}
		n.roundTracker(g.Round).Add(g.Source)
	}
	n.arb = broadcast.NewReliable(n.self, n.cfg.Trust, n.onVertex)
	if n.cfg.RevealedCoin {
		n.shared = coin.NewShared(n.self, n.cfg.Trust, n.cfg.Coin)
	}
	n.step(env)
}

func (n *Node) wave(w int) *waveCtl {
	c, ok := n.waves[w]
	if !ok {
		c = &waveCtl{
			acks:     quorum.NewTracker(n.cfg.Trust, n.self),
			readies:  quorum.NewTracker(n.cfg.Trust, n.self),
			confirms: quorum.NewTracker(n.cfg.Trust, n.self),
		}
		n.waves[w] = c
	}
	return c
}

// roundTracker returns the round's source tracker, creating it on first
// use.
func (n *Node) roundTracker(r int) *quorum.Tracker {
	t, ok := n.roundSrc[r]
	if !ok {
		t = quorum.NewTracker(n.cfg.Trust, n.self)
		n.roundSrc[r] = t
	}
	return t
}

// Receive implements sim.Node.
func (n *Node) Receive(env sim.Env, from types.ProcessID, msg sim.Message) {
	switch m := msg.(type) {
	case ackMsg:
		c := n.wave(m.Wave)
		c.acks.Add(from)
		if !c.sentReady && c.acks.HasQuorum() {
			c.sentReady = true
			env.Broadcast(readyMsg{Wave: m.Wave})
		}
	case readyMsg:
		c := n.wave(m.Wave)
		c.readies.Add(from)
		if !c.sentConfirm && c.readies.HasQuorum() {
			c.sentConfirm = true
			env.Broadcast(confirmMsg{Wave: m.Wave})
		}
	case confirmMsg:
		c := n.wave(m.Wave)
		c.confirms.Add(from)
		if !c.sentConfirm && c.confirms.HasKernel() {
			c.sentConfirm = true
			env.Broadcast(confirmMsg{Wave: m.Wave})
		}
		if !c.tReady && c.confirms.HasQuorum() {
			c.tReady = true
		}
	case coin.ShareMsg:
		if n.shared == nil {
			return
		}
		becameReady, _ := n.shared.Handle(env, from, msg)
		if becameReady {
			n.retryPendingWaves(env)
		}
	default:
		if !n.arb.Handle(env, from, msg) {
			return
		}
	}
	n.step(env)
}

// retryPendingWaves re-attempts commits that were blocked on the coin
// reveal, in wave order.
func (n *Node) retryPendingWaves(env sim.Env) {
	for w := n.decidedWave + 1; w <= rider.RoundWave(n.r); w++ {
		if n.pendingCoin[w] {
			delete(n.pendingCoin, w)
			n.waveReady(env, w)
		}
	}
}

// onVertex is the arb-deliver upcall (Algorithm 6 lines 137–143).
func (n *Node) onVertex(env sim.Env, slot broadcast.Slot, p broadcast.Payload) {
	vp, ok := p.(rider.VertexPayload)
	if !ok {
		return
	}
	v := vp.V
	// Authenticity and shape checks; a Byzantine creator's malformed
	// vertex is dropped here.
	if v.Source != slot.Src || v.Round != int(slot.Seq) || v.Round < 1 {
		return
	}
	strong := types.NewSet(n.n)
	for _, e := range v.StrongEdges {
		if e.Round != v.Round-1 {
			return
		}
		strong.Add(e.Source)
	}
	for _, e := range v.WeakEdges {
		if e.Round >= v.Round-1 || e.Round < 0 {
			return
		}
	}
	// Line 140: the strong edges must cover a quorum (of some process).
	if !quorum.HasAnyQuorumWithin(n.cfg.Trust, strong) {
		return
	}
	n.buffer = append(n.buffer, v)
	if n.cfg.AckOnDeliver {
		// Ablation: the paper's literal reading ACKs right here.
		n.maybeAck(env, v)
	}
	// Otherwise the ACK is sent when the vertex enters the DAG (see the
	// package comment); processBuffer handles it.
}

// processBuffer moves buffered vertices whose causal history is complete
// (and whose round is not ahead of the local round) into the DAG
// (Algorithm 4 lines 95–98); it returns true if any vertex was added.
func (n *Node) processBuffer(env sim.Env) bool {
	added := false
	for {
		progress := false
		keep := n.buffer[:0]
		for _, v := range n.buffer {
			if v.Round <= n.r && n.dag.HasAllParents(v) {
				if err := n.dag.Add(v); err == nil {
					progress = true
					added = true
					n.roundTracker(v.Round).Add(v.Source)
					if !n.cfg.AckOnDeliver {
						n.maybeAck(env, v)
					}
					continue
				}
			}
			keep = append(keep, v)
		}
		n.buffer = keep
		if !progress {
			return added
		}
	}
}

// maybeAck sends the gather ACK for round ≡ 2 (mod 4) vertices
// (Algorithm 6 lines 142–143).
func (n *Node) maybeAck(env sim.Env, v *dag.Vertex) {
	if v.Round%4 != 2 || n.acked[v.Ref()] {
		return
	}
	n.acked[v.Ref()] = true
	env.Send(v.Source, ackMsg{Wave: rider.RoundWave(v.Round)})
}

// step runs the Algorithm 4 main loop to a fixpoint: absorb buffered
// vertices, advance rounds while the advance conditions hold, fire wave
// commits at wave boundaries.
func (n *Node) step(env sim.Env) {
	for {
		n.processBuffer(env)
		if !n.roundTracker(n.r).HasQuorum() {
			return
		}
		// Round 2→3 gate: the wave's CONFIRM quorum must have been seen.
		if n.r%4 == 2 && !n.wave(rider.RoundWave(n.r)).tReady {
			return
		}
		if n.r%4 == 0 && n.r > 0 {
			// The wave is locally complete: release the coin share (the
			// revealed-coin discipline) and attempt the commit. When the
			// node has stopped at MaxRound this retries on every step, so
			// the final wave still commits once enough vertices arrive.
			if n.shared != nil {
				n.shared.Release(env, n.r/4)
			}
			n.waveReady(env, n.r/4)
		}
		if n.cfg.MaxRound > 0 && n.r >= n.cfg.MaxRound {
			return
		}
		// Pipeline bound: don't start proposing into a wave more than
		// PipelineDepth beyond the last decided one. The condition can
		// only become true at a wave boundary (r ≡ 0 mod 4, where the
		// waveReady retry above runs on every step), so a stalled node
		// keeps attempting the blocking commit until it lifts.
		if n.cfg.PipelineDepth > 0 && rider.RoundWave(n.r+1) > n.decidedWave+n.cfg.PipelineDepth {
			return
		}
		n.r++
		v := n.createVertex(n.r)
		n.arb.Broadcast(env, uint64(n.r), rider.VertexPayload{V: v})
		// Old waves' control state is no longer needed once the next wave
		// starts; drop it to bound memory.
		if w := rider.RoundWave(n.r); w >= 3 {
			delete(n.waves, w-2)
		}
	}
}

// createVertex builds this process's vertex for the given round
// (Algorithm 4, createNewVertex + setWeakEdges).
func (n *Node) createVertex(round int) *dag.Vertex {
	v := &dag.Vertex{Source: n.self, Round: round}
	if n.cfg.Workload != nil {
		v.Block = n.cfg.Workload.NextBlock(round)
	}
	for _, u := range n.dag.RoundVertices(round - 1) {
		v.StrongEdges = append(v.StrongEdges, u.Ref())
	}
	rider.SetWeakEdges(n.dag, v, round)
	return v
}

// waveReady attempts to commit wave w (Algorithm 6 lines 146–157).
func (n *Node) waveReady(env sim.Env, w int) {
	if w <= n.decidedWave {
		return // already decided (possible when retrying at MaxRound)
	}
	if n.shared != nil && !n.shared.Ready(w) {
		// Coin not yet revealed: park the attempt; retryPendingWaves
		// resumes it when the shares arrive.
		n.pendingCoin[w] = true
		return
	}
	leader, ok := n.waveLeader(w)
	if !ok {
		return
	}
	reach := n.dag.StrongReachSources(rider.WaveRound(w, 4), leader)
	if !quorum.HasAnyQuorumWithin(n.cfg.Trust, reach) {
		return
	}
	// Commit: stack this leader and every earlier undecided leader
	// connected by strong paths.
	stack := []dag.VertexRef{leader}
	v := leader
	for wp := w - 1; wp > n.decidedWave; wp-- {
		u, ok := n.waveLeader(wp)
		if ok && n.dag.StrongPath(v, u) {
			stack = append(stack, u)
			v = u
		}
	}
	n.decidedWave = w
	ev := rider.CommitEvent{Wave: w, Leader: leader, Time: env.Now(), Round: n.r}
	ordered := rider.OrderVertices(n.dag, stack, n.delivered, w, env.Now())
	if n.cfg.DeliverySink != nil {
		for _, d := range ordered {
			n.cfg.DeliverySink(d)
		}
	} else {
		n.deliveries = append(n.deliveries, ordered...)
	}
	if n.cfg.CommitSink != nil {
		n.cfg.CommitSink(ev)
	} else {
		n.commits = append(n.commits, ev)
	}
	if n.cfg.GCDepth > 0 {
		n.collectGarbage(w)
	}
}

// collectGarbage prunes fully delivered rounds below the GC horizon and
// trims the bookkeeping maps to the watermark.
func (n *Node) collectGarbage(decided int) {
	limit := rider.WaveRound(decided, 1) - n.cfg.GCDepth
	if limit <= 0 {
		return
	}
	watermark := n.dag.PruneBelow(limit, func(v *dag.Vertex) bool {
		return n.delivered[v.Ref()]
	})
	for ref := range n.delivered {
		if ref.Round < watermark {
			delete(n.delivered, ref)
		}
	}
	for ref := range n.acked {
		if ref.Round < watermark {
			delete(n.acked, ref)
		}
	}
	for r := range n.roundSrc {
		if r < watermark {
			delete(n.roundSrc, r)
		}
	}
	keep := n.buffer[:0]
	for _, v := range n.buffer {
		if v.Round >= watermark {
			keep = append(keep, v)
		}
	}
	n.buffer = keep
	// The reliable-broadcast slot trackers, the revealed-coin share maps
	// and stale pending-coin entries are per-round/per-wave state too;
	// without pruning them a long-lived run grows without bound even
	// though the DAG itself stays flat.
	n.arb.PruneBelow(uint64(watermark))
	if n.shared != nil {
		n.shared.PruneBelow(decided)
	}
	for w := range n.pendingCoin {
		if w <= n.decidedWave {
			delete(n.pendingCoin, w)
		}
	}
}

// waveLeader returns the coin-elected leader vertex of wave w, if present
// in the local DAG (Algorithm 6, getWaveVertexLeader).
func (n *Node) waveLeader(w int) (dag.VertexRef, bool) {
	var p types.ProcessID
	if n.shared != nil {
		var ok bool
		if p, ok = n.shared.Leader(w); !ok {
			return dag.VertexRef{}, false // reveal pending; waveReady guards this
		}
	} else {
		p = n.cfg.Coin.Leader(w)
	}
	ref := dag.VertexRef{Source: p, Round: rider.WaveRound(w, 1)}
	if !n.dag.Contains(ref) {
		return dag.VertexRef{}, false
	}
	return ref, true
}

// Accessors for experiments and tests. ----------------------------------

// Round returns the node's current round.
func (n *Node) Round() int { return n.r }

// DecidedWave returns the last committed wave.
func (n *Node) DecidedWave() int { return n.decidedWave }

// Deliveries returns the atomically delivered vertices in delivery order.
func (n *Node) Deliveries() []rider.Delivery { return n.deliveries }

// Commits returns the node's successful wave commits in order.
func (n *Node) Commits() []rider.CommitEvent { return n.commits }

// DeliveredBlocks flattens the delivered transactions in delivery order.
func (n *Node) DeliveredBlocks() []string {
	var out []string
	for _, d := range n.deliveries {
		out = append(out, d.Txs...)
	}
	return out
}

// DAG exposes the local DAG for invariant checks in tests.
func (n *Node) DAG() *dag.DAG { return n.dag }

// LiveStats is a snapshot of every per-round/per-wave structure whose size
// the garbage collector is responsible for bounding. The soak tests sample
// it at snapshot points and assert it stays flat after warm-up.
type LiveStats struct {
	DAGVertices    int // vertices in the live DAG window
	DAGRounds      int // rounds in the live DAG window (Height − PrunedBelow)
	BroadcastSlots int // reliable-broadcast slots with tracker state
	Buffered       int // vertices awaiting causal history
	RoundTrackers  int // per-round source quorum trackers
	WaveCtls       int // per-wave gather control states
	PendingPairs   int // delivered-set + acked-set entries ("pending pairs")
}

// Live returns the node's current live-state counters.
func (n *Node) Live() LiveStats {
	return LiveStats{
		DAGVertices:    n.dag.VertexCount(),
		DAGRounds:      n.dag.Height() - n.dag.PrunedBelow(),
		BroadcastSlots: n.arb.SlotCount(),
		Buffered:       len(n.buffer),
		RoundTrackers:  len(n.roundSrc),
		WaveCtls:       len(n.waves),
		PendingPairs:   len(n.delivered) + len(n.acked),
	}
}

// RegisterWire registers the consensus message types with encoding/gob for
// use over a real transport. Safe to call multiple times.
func RegisterWire() {
	gob.Register(ackMsg{})
	gob.Register(readyMsg{})
	gob.Register(confirmMsg{})
	gob.Register(coin.ShareMsg{})
	gob.Register(rider.VertexPayload{})
}
