package lint

// The interprocedural dataflow layer: per-function AST-level value-flow
// summaries over the already type-checked packages, composed across the
// whole loaded program by a bottom-up fixed point. The asymbound,
// asymshare and asymgc analyzers are built on it. See doc.go ("The
// dataflow layer") for the summary format and its deliberate
// approximations.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// funcKey is the cross-package identity of a function or method. Object
// pointers cannot be compared across packages — a package type-checked
// from source and the same package seen through a dependent's export
// data yield distinct *types.Func objects — so the flow layer keys every
// summary by this string ("pkgpath.Type.Method" / "pkgpath.Func").
func funcKeyOf(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return pkg + "." + typeBaseName(sig.Recv().Type()) + "." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// typeBaseName names a type ignoring one level of pointer indirection.
func typeBaseName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return types.TypeString(t, nil)
}

// resultFact describes one result of a function: whether it can carry an
// unchecked wire-derived quantity (FromSource) and which parameters flow
// into it without an intervening bound check (FromParams, a bitset over
// parameter indices — the pass-through that makes the taint analysis
// compositional).
type resultFact struct {
	FromSource bool   `json:"s,omitempty"`
	FromParams uint64 `json:"p,omitempty"`
}

// flowFacts is one function's dataflow summary. All fields are
// monotone — recomputation under richer callee summaries only ever adds
// facts — which is what makes the fixed point converge. The struct is
// JSON-serializable so the lint cache can carry summaries for packages
// it skips re-analyzing.
type flowFacts struct {
	// Results holds one fact per declared result.
	Results []resultFact `json:"r,omitempty"`
	// SinkParams marks parameters that flow, unsanitized, into an
	// allocation/index/loop-bound sink inside the function or one of its
	// callees; SinkNotes describes the sink for call-site diagnostics.
	SinkParams uint64         `json:"sp,omitempty"`
	SinkNotes  map[int]string `json:"sn,omitempty"`
	// MutParams marks parameters whose referenced memory the function
	// writes through (directly or via a callee); MutRecv is the same
	// fact for the method receiver.
	MutParams uint64 `json:"mp,omitempty"`
	MutRecv   bool   `json:"mr,omitempty"`
	// Calls lists the funcKeys of statically resolved callees, sorted —
	// the call-graph edges reachability analyses walk.
	Calls []string `json:"c,omitempty"`
}

func factsEqual(a, b flowFacts) bool {
	if a.SinkParams != b.SinkParams || a.MutParams != b.MutParams || a.MutRecv != b.MutRecv {
		return false
	}
	if len(a.Results) != len(b.Results) || len(a.Calls) != len(b.Calls) {
		return false
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			return false
		}
	}
	for i := range a.Calls {
		if a.Calls[i] != b.Calls[i] {
			return false
		}
	}
	// SinkNotes follows SinkParams; no need to compare the texts.
	return true
}

// flowFunc is one function in the flow graph: a declaration with a body
// from a loaded package, or a bare cached summary (decl == nil) injected
// for a package the cache allowed the loader to skip.
type flowFunc struct {
	key   string
	decl  *ast.FuncDecl
	pkg   *Package
	fn    *types.Func
	facts flowFacts
}

// flowGraph holds the converged summaries of every function in the
// program, keyed by funcKey.
type flowGraph struct {
	prog  *Program
	funcs map[string]*flowFunc
	keys  []string // sorted, for deterministic iteration
}

// flow computes (once per Program) the interprocedural summaries: every
// function is re-summarized until no summary changes, so facts propagate
// bottom-up through arbitrarily deep call chains, including recursion.
func (prog *Program) flow() *flowGraph {
	if prog.flowG != nil {
		return prog.flowG
	}
	fg := &flowGraph{prog: prog, funcs: map[string]*flowFunc{}}
	if prog.external != nil {
		for k, f := range prog.external.Flow {
			fg.funcs[k] = &flowFunc{key: k, facts: f}
		}
	}
	for _, pkg := range prog.Packages {
		pkg := pkg
		forEachFuncDecl(pkg, func(fd *ast.FuncDecl) {
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				return
			}
			ff := &flowFunc{key: funcKeyOf(fn), decl: fd, pkg: pkg, fn: fn}
			fg.funcs[ff.key] = ff
		})
	}
	fg.keys = make([]string, 0, len(fg.funcs))
	for k := range fg.funcs {
		fg.keys = append(fg.keys, k)
	}
	sort.Strings(fg.keys)

	// Fixed point: summaries are monotone, so this terminates; the
	// iteration cap is a safety net, not a tuning knob.
	for iter := 0; iter < 20; iter++ {
		changed := false
		for _, k := range fg.keys {
			ff := fg.funcs[k]
			if ff.decl == nil {
				continue // cached summary, already final
			}
			nf := fg.summarize(ff)
			if !factsEqual(ff.facts, nf) {
				ff.facts = nf
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	prog.flowG = fg
	return fg
}

// summarize recomputes one function's summary from its body under the
// current callee summaries.
func (fg *flowGraph) summarize(ff *flowFunc) flowFacts {
	facts := flowFacts{}
	tw := newTaintWalker(fg, ff, nil)
	tw.walkFunc()
	facts.Results = tw.results
	facts.SinkParams = tw.sinkParams
	facts.SinkNotes = tw.sinkNotes
	facts.Calls = tw.sortedCalls()

	aw := newAliasWalker(fg, ff, nil, false)
	aw.walkFunc()
	facts.MutParams = aw.mutParams
	facts.MutRecv = aw.mutRecv
	return facts
}

// lookup returns the summary of the function behind a resolved callee
// object, if the program has one.
func (fg *flowGraph) lookup(fn *types.Func) (*flowFunc, bool) {
	ff, ok := fg.funcs[funcKeyOf(fn)]
	return ff, ok
}

// paramObjects returns the declared parameter objects of fd in order
// (flattened over grouped fields; blank names yield nils).
func paramObjects(pkg *Package, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil) // unnamed parameter
			continue
		}
		for _, name := range field.Names {
			out = append(out, pkg.Info.Defs[name])
		}
	}
	return out
}

// recvObject returns the receiver object of a method declaration.
func recvObject(pkg *Package, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pkg.Info.Defs[fd.Recv.List[0].Names[0]]
}

// resultObjects returns the named result objects (nil entries for
// unnamed results), plus the total result count.
func resultObjects(pkg *Package, fd *ast.FuncDecl) ([]types.Object, int) {
	var out []types.Object
	if fd.Type.Results == nil {
		return out, 0
	}
	n := 0
	for _, field := range fd.Type.Results.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			n++
			continue
		}
		for _, name := range field.Names {
			out = append(out, pkg.Info.Defs[name])
			n++
		}
	}
	return out, n
}

// calleeFunc resolves a call to a concrete *types.Func (package function
// or method with a statically known callee). Interface-method calls and
// calls through function values resolve to nothing — the flow layer is
// deliberately blind to dynamic dispatch (see doc.go).
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				return nil // dynamic dispatch
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}

// isConversion reports whether a call expression is a type conversion.
func isConversion(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// builtinName returns the name of a builtin callee ("make", "append",
// "len", ...) or "".
func builtinName(pkg *Package, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
		return id.Name
	}
	return ""
}

// rootIdent descends a selector/index/star/paren/slice chain to its
// leftmost identifier, or nil when the chain is rooted in a call or
// literal.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isPackageLevelVar reports whether obj is a package-scope variable.
func isPackageLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// reachableFrom computes the forward call-graph closure of the given
// root funcKeys over the converged summaries.
func (fg *flowGraph) reachableFrom(roots []string) map[string]bool {
	seen := map[string]bool{}
	stack := append([]string(nil), roots...)
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[k] {
			continue
		}
		seen[k] = true
		if ff, ok := fg.funcs[k]; ok {
			stack = append(stack, ff.facts.Calls...)
		}
	}
	return seen
}

// posOf is a small helper for diagnostics that may carry an invalid pos.
func posOf(n ast.Node) token.Pos {
	if n == nil {
		return token.NoPos
	}
	return n.Pos()
}
