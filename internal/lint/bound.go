package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// BoundAnalyzer enforces the allocation-bomb contract: an integer read
// off the wire (binary.Uvarint / ByteOrder.UintNN and everything built
// on them, e.g. wire.ReadUvarint) must be compared against a cap before
// it reaches an allocation size, an index, a slice bound, or a loop
// bound. wire.ReadInt is the blessed sanitizing primitive; its guard is
// recognized compositionally, not by name. See doc.go.
var BoundAnalyzer = &Analyzer{
	Name: "asymbound",
	Doc:  "flags wire-derived integers flowing unchecked into make sizes, indexing, slice bounds, or loop bounds",
	Run:  runBound,
}

func runBound(pass *Pass) {
	fg := pass.Prog.flow()
	consumed := map[string]bool{}
	forEachFuncDecl(pass.Pkg, func(fd *ast.FuncDecl) {
		fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		tw := newTaintWalker(fg, &flowFunc{decl: fd, pkg: pass.Pkg, fn: fn}, pass)
		tw.consumed = consumed
		tw.walkFunc()
	})
	for _, key := range pass.Pkg.directiveLines() {
		for _, e := range pass.Pkg.directives[key] {
			if e.Name == "bounded" && !consumed[key] {
				pass.Reportf(e.Pos, "unused //lint:bounded directive: no unchecked wire-derived value reaches a sink on this or the following line")
			}
		}
	}
}

// taintVal is the abstract value of one local: which of the enclosing
// function's parameters flow into it unchecked (a bitset, for the
// compositional summary) and whether a wire-read source flows into it
// (the thing asymbound reports).
type taintVal struct {
	params  uint64
	src     bool
	srcDesc string
}

func (t taintVal) tainted() bool { return t.src || t.params != 0 }

func (t taintVal) union(o taintVal) taintVal {
	out := taintVal{params: t.params | o.params, src: t.src || o.src, srcDesc: t.srcDesc}
	if !t.src && o.src {
		out.srcDesc = o.srcDesc
	}
	return out
}

// taintWalker runs the bound/taint analysis over one function body. The
// same walk serves two modes: with pass == nil it computes the
// function's summary (results, sink params, call edges); with a pass it
// reports source-origin taint reaching a sink. The analysis is
// flow-sensitive within the body (statements in source order), path-
// insensitive (a comparison anywhere sanitizes for the rest of the
// function), and container-insensitive (values read back out of
// struct fields, slices, and maps are clean — the contract is that raw
// wire integers are checked at the decode boundary, before storage).
type taintWalker struct {
	fg   *flowGraph
	ff   *flowFunc
	pass *Pass

	state      map[types.Object]taintVal
	namedRes   []types.Object
	results    []resultFact
	sinkParams uint64
	sinkNotes  map[int]string
	calls      map[string]bool
	consumed   map[string]bool
}

func newTaintWalker(fg *flowGraph, ff *flowFunc, pass *Pass) *taintWalker {
	return &taintWalker{
		fg: fg, ff: ff, pass: pass,
		state:     map[types.Object]taintVal{},
		sinkNotes: map[int]string{},
		calls:     map[string]bool{},
	}
}

func (tw *taintWalker) walkFunc() {
	fd := tw.ff.decl
	for i, obj := range paramObjects(tw.ff.pkg, fd) {
		if obj == nil || i >= 64 {
			continue
		}
		tw.state[obj] = taintVal{params: 1 << i}
	}
	var n int
	tw.namedRes, n = resultObjects(tw.ff.pkg, fd)
	tw.results = make([]resultFact, n)
	tw.walkStmt(fd.Body)
}

func (tw *taintWalker) sortedCalls() []string {
	out := make([]string, 0, len(tw.calls))
	for k := range tw.calls {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sink records taint arriving at a sink: parameter-origin taint becomes
// part of the summary (the caller reports); source-origin taint is the
// finding itself, reported here unless a //lint:bounded directive is
// attached to the sink's line.
func (tw *taintWalker) sink(pos token.Pos, what string, t taintVal) {
	for i := 0; i < 64; i++ {
		if t.params&(1<<i) != 0 {
			tw.sinkParams |= 1 << i
			if _, ok := tw.sinkNotes[i]; !ok {
				tw.sinkNotes[i] = what
			}
		}
	}
	if !t.src || tw.pass == nil {
		return
	}
	fset := tw.pass.Prog.Fset
	if tw.ff.pkg.directiveAt(fset, pos, "bounded") {
		if tw.consumed != nil {
			for _, key := range directiveKeys(fset, pos) {
				for _, e := range tw.ff.pkg.directives[key] {
					if e.Name == "bounded" {
						tw.consumed[key] = true
					}
				}
			}
		}
		return
	}
	tw.pass.Reportf(pos,
		"unchecked wire-derived value (%s) reaches %s: a Byzantine peer controls it, so compare it against a cap first (wire.ReadInt-style) or annotate //lint:bounded <why it is already bounded>", t.srcDesc, what)
}

// sanitize marks every tracked identifier appearing in a branch
// condition as checked: the code inspected the value, which is the
// contract's requirement. Deliberately coarse — see doc.go.
func (tw *taintWalker) sanitize(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := tw.ff.pkg.Info.ObjectOf(id); obj != nil {
				if _, tracked := tw.state[obj]; tracked {
					tw.state[obj] = taintVal{}
				}
			}
		}
		return true
	})
}

// loopBoundSinks reports tainted identifiers used in a for-condition —
// the loop-bound sink. Unlike an if-condition, a loop condition IS the
// consumption: `for i := 0; i < n; i++ { s = append(s, ...) }` with an
// unchecked n is the allocation bomb, not a guard against one.
func (tw *taintWalker) loopBoundSinks(cond ast.Expr) {
	seen := map[types.Object]bool{}
	ast.Inspect(cond, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := tw.ff.pkg.Info.ObjectOf(id)
		if obj == nil || seen[obj] {
			return true
		}
		seen[obj] = true
		if t := tw.state[obj]; t.tainted() {
			tw.sink(id.Pos(), "a loop bound", t)
		}
		return true
	})
}

func (tw *taintWalker) walkStmts(list []ast.Stmt) {
	for _, s := range list {
		tw.walkStmt(s)
	}
}

func (tw *taintWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		tw.walkStmts(s.List)
	case *ast.ExprStmt:
		tw.eval(s.X)
	case *ast.AssignStmt:
		tw.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				tw.assignSpec(vs)
			}
		}
	case *ast.ReturnStmt:
		tw.walkReturn(s)
	case *ast.IfStmt:
		tw.walkStmt(s.Init)
		tw.eval(s.Cond)
		tw.sanitize(s.Cond)
		tw.walkStmt(s.Body)
		tw.walkStmt(s.Else)
	case *ast.ForStmt:
		tw.walkStmt(s.Init)
		if s.Cond != nil {
			tw.eval(s.Cond)
			tw.loopBoundSinks(s.Cond)
			tw.sanitize(s.Cond)
		}
		tw.walkStmt(s.Post)
		tw.walkStmt(s.Body)
	case *ast.RangeStmt:
		t := tw.eval(s.X)
		if t.tainted() {
			if xt := tw.ff.pkg.Info.TypeOf(s.X); xt != nil {
				if b, ok := xt.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					tw.sink(s.X.Pos(), "a loop bound (range over integer)", t)
				}
			}
		}
		for _, v := range []ast.Expr{s.Key, s.Value} {
			if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
				if obj := tw.ff.pkg.Info.ObjectOf(id); obj != nil {
					tw.state[obj] = taintVal{}
				}
			}
		}
		tw.walkStmt(s.Body)
	case *ast.SwitchStmt:
		tw.walkStmt(s.Init)
		if s.Tag != nil {
			tw.eval(s.Tag)
			tw.sanitize(s.Tag)
		}
		for _, cc := range s.Body.List {
			c := cc.(*ast.CaseClause)
			for _, e := range c.List {
				tw.eval(e)
				tw.sanitize(e)
			}
			tw.walkStmts(c.Body)
		}
	case *ast.TypeSwitchStmt:
		tw.walkStmt(s.Init)
		tw.walkStmt(s.Assign)
		for _, cc := range s.Body.List {
			tw.walkStmts(cc.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			c := cc.(*ast.CommClause)
			tw.walkStmt(c.Comm)
			tw.walkStmts(c.Body)
		}
	case *ast.LabeledStmt:
		tw.walkStmt(s.Stmt)
	case *ast.GoStmt:
		tw.eval(s.Call)
	case *ast.DeferStmt:
		tw.eval(s.Call)
	case *ast.SendStmt:
		tw.eval(s.Chan)
		tw.eval(s.Value)
	case *ast.IncDecStmt:
		tw.eval(s.X)
	}
}

func (tw *taintWalker) walkReturn(s *ast.ReturnStmt) {
	switch {
	case len(s.Results) == 0:
		for i, obj := range tw.namedRes {
			if obj != nil && i < len(tw.results) {
				tw.mergeResult(i, tw.state[obj])
			}
		}
	case len(s.Results) == len(tw.results):
		for i, e := range s.Results {
			tw.mergeResult(i, tw.eval(e))
		}
	case len(s.Results) == 1:
		// return f() forwarding a multi-result call
		if call, ok := ast.Unparen(s.Results[0]).(*ast.CallExpr); ok {
			for i, t := range tw.evalCall(call) {
				if i < len(tw.results) {
					tw.mergeResult(i, t)
				}
			}
		} else {
			tw.eval(s.Results[0])
		}
	default:
		for _, e := range s.Results {
			tw.eval(e)
		}
	}
}

func (tw *taintWalker) mergeResult(i int, t taintVal) {
	tw.results[i].FromSource = tw.results[i].FromSource || t.src
	tw.results[i].FromParams |= t.params
}

func (tw *taintWalker) assign(s *ast.AssignStmt) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		vals := tw.rhsValues(s.Lhs, s.Rhs)
		for i, lhs := range s.Lhs {
			tw.assignTo(lhs, vals[i])
		}
	default:
		// Compound assignment: x op= y keeps x's taint and unions y's
		// (order-insensitive for the taint lattice).
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			t := tw.eval(s.Lhs[0]).union(tw.eval(s.Rhs[0]))
			tw.assignTo(s.Lhs[0], t)
		}
	}
}

func (tw *taintWalker) assignSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == 0 {
		return
	}
	lhs := make([]ast.Expr, len(vs.Names))
	for i, n := range vs.Names {
		lhs[i] = n
	}
	vals := tw.rhsValues(lhs, vs.Values)
	for i, l := range lhs {
		tw.assignTo(l, vals[i])
	}
}

// rhsValues evaluates the right-hand side of an assignment, expanding a
// single multi-result call across the left-hand side.
func (tw *taintWalker) rhsValues(lhs, rhs []ast.Expr) []taintVal {
	vals := make([]taintVal, len(lhs))
	if len(rhs) == len(lhs) {
		for i, e := range rhs {
			vals[i] = tw.eval(e)
		}
		return vals
	}
	if len(rhs) == 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			for i, t := range tw.evalCall(call) {
				if i < len(vals) {
					vals[i] = t
				}
			}
			return vals
		}
		// v, ok := m[k] / x.(T) / <-ch: the carried value is a container
		// read or channel receive — clean under container-insensitivity.
		tw.eval(rhs[0])
	}
	return vals
}

func (tw *taintWalker) assignTo(lhs ast.Expr, t taintVal) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		if obj := tw.ff.pkg.Info.ObjectOf(id); obj != nil {
			tw.state[obj] = t
			return
		}
	}
	// Writing through an index/field/pointer: the write target may itself
	// contain a sink (buf[n] = x); the stored taint is dropped.
	tw.eval(lhs)
}

// eval computes the taint of an expression, reporting/recording any sink
// hits inside it along the way.
func (tw *taintWalker) eval(e ast.Expr) taintVal {
	pkg := tw.ff.pkg
	switch e := e.(type) {
	case nil:
		return taintVal{}
	case *ast.Ident:
		if obj := pkg.Info.ObjectOf(e); obj != nil {
			return tw.state[obj]
		}
		return taintVal{}
	case *ast.ParenExpr:
		return tw.eval(e.X)
	case *ast.BinaryExpr:
		l, r := tw.eval(e.X), tw.eval(e.Y)
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return taintVal{} // boolean result
		}
		return l.union(r)
	case *ast.UnaryExpr:
		t := tw.eval(e.X)
		switch e.Op {
		case token.ADD, token.SUB, token.XOR:
			return t
		}
		return taintVal{} // &x, !x, <-ch
	case *ast.StarExpr:
		tw.eval(e.X)
		return taintVal{}
	case *ast.SelectorExpr:
		if _, isPkg := pkg.Info.Uses[e.Sel].(*types.PkgName); !isPkg {
			tw.eval(e.X)
		}
		return taintVal{} // field read: container-insensitive
	case *ast.IndexExpr:
		if tv, ok := pkg.Info.Types[e.X]; ok && (tv.IsType() || tv.IsBuiltin()) {
			return taintVal{} // generic instantiation, not an index
		}
		if _, isFn := pkg.Info.Types[e.X].Type.(*types.Signature); isFn {
			return taintVal{} // generic function instantiation
		}
		tw.eval(e.X)
		it := tw.eval(e.Index)
		if it.tainted() && indexableByInt(pkg.Info.TypeOf(e.X)) {
			tw.sink(e.Index.Pos(), "an index", it)
		}
		return taintVal{}
	case *ast.IndexListExpr:
		return taintVal{} // generic instantiation
	case *ast.SliceExpr:
		tw.eval(e.X)
		for _, b := range []ast.Expr{e.Low, e.High, e.Max} {
			if b == nil {
				continue
			}
			if t := tw.eval(b); t.tainted() {
				tw.sink(b.Pos(), "a slice bound", t)
			}
		}
		return taintVal{}
	case *ast.CallExpr:
		out := tw.evalCall(e)
		if len(out) > 0 {
			return out[0]
		}
		return taintVal{}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				tw.eval(kv.Value)
				continue
			}
			tw.eval(el)
		}
		return taintVal{}
	case *ast.FuncLit:
		tw.walkStmt(e.Body) // closures share the tracked state
		return taintVal{}
	case *ast.TypeAssertExpr:
		tw.eval(e.X)
		return taintVal{}
	}
	return taintVal{}
}

// indexableByInt reports whether indexing t with an attacker-chosen
// integer can panic or touch attacker-chosen memory: slices, arrays,
// strings — not maps (any key is a legal lookup).
func indexableByInt(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

// evalCall evaluates a call and returns the taint of each result.
func (tw *taintWalker) evalCall(call *ast.CallExpr) []taintVal {
	pkg := tw.ff.pkg
	if isConversion(pkg, call) && len(call.Args) == 1 {
		return []taintVal{tw.eval(call.Args[0])}
	}
	switch builtinName(pkg, call) {
	case "make":
		for _, a := range call.Args[1:] {
			if t := tw.eval(a); t.tainted() {
				tw.sink(a.Pos(), "a make size", t)
			}
		}
		return []taintVal{{}}
	case "min":
		// min(n, cap) is a sanitizer when any argument is clean.
		anyClean := false
		out := taintVal{}
		for _, a := range call.Args {
			t := tw.eval(a)
			if !t.tainted() {
				anyClean = true
			}
			out = out.union(t)
		}
		if anyClean {
			return []taintVal{{}}
		}
		return []taintVal{out}
	case "max":
		out := taintVal{}
		for _, a := range call.Args {
			out = out.union(tw.eval(a))
		}
		return []taintVal{out}
	case "":
		// not a builtin; fall through below
	default:
		// append/len/cap/copy/delete/clear/...: arguments may hold sinks;
		// results are containers or real lengths — clean.
		for _, a := range call.Args {
			tw.eval(a)
		}
		return []taintVal{{}}
	}

	if desc, ok := sourceCall(pkg, call); ok {
		for _, a := range call.Args {
			tw.eval(a)
		}
		out := make([]taintVal, resultCount(pkg, call))
		if len(out) > 0 {
			out[0] = taintVal{src: true, srcDesc: desc}
		}
		return out
	}

	argTs := make([]taintVal, len(call.Args))
	for i, a := range call.Args {
		argTs[i] = tw.eval(a)
	}
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return make([]taintVal, resultCount(pkg, call))
	}
	key := funcKeyOf(fn)
	tw.calls[key] = true
	ff, ok := tw.fg.funcs[key]
	if !ok {
		return make([]taintVal, resultCount(pkg, call))
	}
	for i, t := range argTs {
		if i < 64 && ff.facts.SinkParams&(1<<uint(i)) != 0 && t.tainted() {
			note := ff.facts.SinkNotes[i]
			if note == "" {
				note = "a sink"
			}
			tw.sink(call.Args[i].Pos(), note+" inside "+shortFuncName(fn), t)
		}
	}
	out := make([]taintVal, resultCount(pkg, call))
	for i, rf := range ff.facts.Results {
		if i >= len(out) {
			break
		}
		var t taintVal
		if rf.FromSource {
			t = taintVal{src: true, srcDesc: shortFuncName(fn) + " result"}
		}
		for p := 0; p < 64 && p < len(argTs); p++ {
			if rf.FromParams&(1<<uint(p)) != 0 {
				t = t.union(argTs[p])
			}
		}
		out[i] = t
	}
	return out
}

// sourceCall recognizes the raw wire-read primitives of encoding/binary
// — the taint sources everything else derives from compositionally.
// Resolution here deliberately sees through interfaces (binary.ByteOrder
// method values).
func sourceCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ = pkg.Info.Uses[fun.Sel].(*types.Func)
	case *ast.Ident:
		fn, _ = pkg.Info.Uses[fun].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
		return "", false
	}
	switch fn.Name() {
	case "Uvarint", "Varint", "ReadUvarint", "ReadVarint",
		"Uint16", "Uint32", "Uint64":
		return "binary." + fn.Name(), true
	}
	return "", false
}

// resultCount is the number of values the call produces.
func resultCount(pkg *Package, call *ast.CallExpr) int {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return 1
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		return tup.Len()
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.Invalid {
		return 0
	}
	return 1
}

// shortFuncName renders a callee for diagnostics: pkg.Func or
// pkg.Type.Method.
func shortFuncName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		name = typeBaseName(sig.Recv().Type()) + "." + name
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}
