// Package lint implements the repository's custom static analyzers: a
// small go/analysis-style framework (self-contained — built on the
// standard library's go/ast, go/types and `go list -export`, because the
// build environment vendors no external modules) plus three analyzers
// that turn the repository's dynamic determinism and wire-codec
// contracts into compile-time checks. The cmd/asymvet multichecker runs
// them tree-wide; `make lint` (folded into `make test`) gates every
// branch on a clean pass.
//
// # Static contracts
//
// The repository's core guarantee is dynamic twice over: reproduction
// runs are byte-identical across seeds and DeliveryWorkers counts, and
// simulated byte metrics equal real wire bytes. Differential tests
// enforce both, but only along the executions a seed happens to reach.
// The analyzers here enforce the underlying source-level contracts on
// every line, in every branch:
//
// asymdeterminism — the deterministic packages (sim, dag, gather,
// broadcast, abba, acs, coin, rider, core, scenario, service, harness,
// baseline, register, and the repro root package) must be pure functions
// of their seeds. The analyzer flags
//
//   - wall-clock reads (time.Now, time.Since, timers, sleeps);
//   - the global math/rand and math/rand/v2 source (rand.Intn, rand.Perm,
//     rand.Shuffle, ... — constructing a seeded *rand.Rand via rand.New /
//     rand.NewSource, and every method on it, is fine: that is exactly the
//     Env.Rand / run-RNG discipline the simulator prescribes);
//   - `for range` over a map, whose iteration order is runtime-randomized
//     and can leak into protocol state, sends, metrics or encoded output.
//
// Map ranges are accepted without annotation when the loop body is one of
// the recognized order-insensitive idioms:
//
//   - sorted-collect: the body is a single `s = append(s, k)` (or the
//     value), and s is passed to a sort.* / slices.Sort* call later in
//     the same function;
//   - prune: the body is `delete(m, k)`, optionally guarded by a
//     call-free `if` condition, deleting from the ranged map at the key;
//   - disjoint-slot writes: every statement assigns through an index
//     expression whose index is exactly the range key (`dst[k] = ...`),
//     so distinct keys touch distinct slots;
//   - commutative folds: every statement is an integer `++`/`--`, a
//     commutative compound assignment (`+=`, `-=`, `|=`, `^=`, `&=`) on a
//     non-float, non-string lvalue, or such a compound assignment through
//     a map index (`acc[k] += v`).
//
// Everything else needs an explicit annotation (see below) stating why
// order cannot escape — or a fix that sorts the keys first.
//
// asymwire — every message a node hands to sim.Env.Send or
// sim.Env.Broadcast (the transport's hostEnv implements the same
// interface, so the TCP send surface is covered by the same rule) must
// have an internal/wire.Register codec: that registration is what makes
// sim.MessageSize report real wire bytes and what lets the message cross
// the TCP transport at all. The analyzer resolves the concrete static
// type of every sent message (interface-typed arguments are checked at
// their own construction sites) and verifies a matching wire.Register
// call exists somewhere in the tree — through one level of helper
// indirection, so the registerSlotMsg/registerWaveMsg-style loops in the
// protocol packages resolve. It also checks every registration's tag
// against the central tag-range table (wire.TagRanges): a package
// claiming a tag outside its assigned range, or a non-test package
// claiming a tag in the test-reserved range (>= wire.TestTagFloor), is
// flagged.
//
// asymsizer — a type implementing both sim.Sizer and a registered wire
// codec is flagged: sim.MessageSize always prefers the codec, so the
// SimSize method is either dead code that will silently diverge from the
// real encoding (the "modeled cost = real cost" regression PR 7 closed),
// or a deliberate fallback for messages whose codec can report
// unencodable (nested dynamic payloads). The deliberate case is
// annotated.
//
// # Annotations
//
// Suppressions are line comments of the form
//
//	//lint:<name> <free-text reason>
//
// placed on the flagged line, on the line immediately above it, or (for
// declarations) anywhere in the doc comment. The reason text is
// mandatory in spirit — it is the reviewable record of why the
// suppression is sound — but not enforced. Names:
//
//	//lint:ordered         this map range is order-insensitive
//	//lint:unwired         this message type deliberately has no wire
//	                       codec (placed on the type declaration or the
//	                       send site); it must never cross the TCP
//	                       transport
//	//lint:sizer-fallback  this SimSize is a deliberate approximation for
//	                       when the codec reports unencodable
//
// An //lint:ordered annotation on a line with no map range is itself
// reported (unused suppressions rot).
//
// # Running
//
// `make lint` builds cmd/asymvet and runs it over ./...; `make test`
// runs it alongside stock `go vet`. The driver is standalone rather
// than a `go vet -vettool` plugin: the vettool protocol needs
// golang.org/x/tools/go/analysis/unitchecker, which this build
// environment cannot vendor, so asymvet loads packages itself via
// `go list -export -json -deps` and type-checks from source against the
// build cache's export data. Test files are not analyzed (test-local
// message types and deliberately adversarial iteration live there); the
// contracts gate shipped code.
package lint
