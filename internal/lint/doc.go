// Package lint implements the repository's custom static analyzers: a
// small go/analysis-style framework (self-contained — built on the
// standard library's go/ast, go/types and `go list -export`, because the
// build environment vendors no external modules), a lightweight
// interprocedural dataflow layer, and six analyzers that turn the
// repository's dynamic determinism, wire-codec, adversarial-input,
// parallel-delivery, and bounded-memory contracts into compile-time
// checks. The cmd/asymvet multichecker runs them tree-wide; `make lint`
// (folded into `make test`) gates every branch on a clean pass.
//
// # Static contracts
//
// The repository's core guarantee is dynamic twice over: reproduction
// runs are byte-identical across seeds and DeliveryWorkers counts, and
// simulated byte metrics equal real wire bytes. Differential tests
// enforce both, but only along the executions a seed happens to reach.
// The analyzers here enforce the underlying source-level contracts on
// every line, in every branch:
//
// asymdeterminism — the deterministic packages (sim, dag, gather,
// broadcast, abba, acs, coin, rider, core, scenario, service, harness,
// baseline, register, and the repro root package) must be pure functions
// of their seeds. The analyzer flags
//
//   - wall-clock reads (time.Now, time.Since, timers, sleeps);
//   - the global math/rand and math/rand/v2 source (rand.Intn, rand.Perm,
//     rand.Shuffle, ... — constructing a seeded *rand.Rand via rand.New /
//     rand.NewSource, and every method on it, is fine: that is exactly the
//     Env.Rand / run-RNG discipline the simulator prescribes);
//   - `for range` over a map, whose iteration order is runtime-randomized
//     and can leak into protocol state, sends, metrics or encoded output.
//
// Map ranges are accepted without annotation when the loop body is one of
// the recognized order-insensitive idioms:
//
//   - sorted-collect: the body is a single `s = append(s, k)` (or the
//     value), and s is passed to a sort.* / slices.Sort* call later in
//     the same function;
//   - prune: the body is `delete(m, k)`, optionally guarded by a
//     call-free `if` condition, deleting from the ranged map at the key;
//   - disjoint-slot writes: every statement assigns through an index
//     expression whose index is exactly the range key (`dst[k] = ...`),
//     so distinct keys touch distinct slots;
//   - commutative folds: every statement is an integer `++`/`--`, a
//     commutative compound assignment (`+=`, `-=`, `|=`, `^=`, `&=`) on a
//     non-float, non-string lvalue, or such a compound assignment through
//     a map index (`acc[k] += v`).
//
// Everything else needs an explicit annotation (see below) stating why
// order cannot escape — or a fix that sorts the keys first.
//
// asymwire — every message a node hands to sim.Env.Send or
// sim.Env.Broadcast (the transport's hostEnv implements the same
// interface, so the TCP send surface is covered by the same rule) must
// have an internal/wire.Register codec: that registration is what makes
// sim.MessageSize report real wire bytes and what lets the message cross
// the TCP transport at all. The analyzer resolves the concrete static
// type of every sent message (interface-typed arguments are checked at
// their own construction sites) and verifies a matching wire.Register
// call exists somewhere in the tree — through one level of helper
// indirection, so the registerSlotMsg/registerWaveMsg-style loops in the
// protocol packages resolve. It also checks every registration's tag
// against the central tag-range table (wire.TagRanges): a package
// claiming a tag outside its assigned range, or a non-test package
// claiming a tag in the test-reserved range (>= wire.TestTagFloor), is
// flagged.
//
// asymsizer — a type implementing both sim.Sizer and a registered wire
// codec is flagged: sim.MessageSize always prefers the codec, so the
// SimSize method is either dead code that will silently diverge from the
// real encoding (the "modeled cost = real cost" regression PR 7 closed),
// or a deliberate fallback for messages whose codec can report
// unencodable (nested dynamic payloads). The deliberate case is
// annotated.
//
// asymbound — integers read off the wire are attacker-controlled: a
// Byzantine peer can put any value in a length or count field. The
// analyzer taints the results of the raw decode entry points
// (encoding/binary's Uvarint/Varint/ReadUvarint/ReadVarint and the
// byte-order Uint16/32/64 methods, resolved through interfaces) and
// flags any tainted value that reaches a make() size, a slice/array/
// string index, a slice bound, or a loop bound without first being
// dominated by a comparison against a cap. Comparisons sanitize
// (wire.ReadInt's `if v > uint64(max)` guard is the canonical form, and
// its effect propagates to callers through the summaries below), as
// does min() with any clean argument; map indexing is always safe.
//
// asymshare — under the simulator's parallel same-time delivery
// (DeliveryWorkers > 1), every receiver of a broadcast is handed the
// SAME message value, and handlers for different processes run
// concurrently. Any state reachable from a protocol Receive handler
// must therefore be per-process-confined (receiver fields, fresh local
// memory), synchronized (sync/atomic), or flow through the buffering
// Env commit path (Send/Broadcast copy on encode). The analyzer roots
// at every `Receive(env sim.Env, from, msg)` method in the
// deterministic packages, follows the static call graph, and flags
// writes through message-reachable memory (the gather.Pairs
// shared-backing bug class) and writes to package-level variables on
// any Receive-reachable path. The copy-before-mutate idiom
// `append([]T(nil), shared...)` is recognized as confinement.
//
// asymgc — protocol state keyed or indexed by a monotonically advancing
// coordinate (round, wave, sequence number, slot) grows for the
// lifetime of the node unless something prunes it; PR 8's bounded-memory
// mode depends on every such structure having a GC path. In the
// GC-audited packages (dag, gather, broadcast, abba, acs, coin, rider,
// core, service, register, baseline), any struct field that is a map
// keyed by an integer coordinate (or by a struct with a round/wave/seq/
// slot-named integer field — ProcessID keys are exempt, the process
// universe is fixed) or a slice whose name says it accumulates
// per-coordinate data (…Log, …History, deliver…, tail…, buffer…) must
// have a prune site somewhere in the program: a delete() or clear() of
// the field, or a shrinking reassignment (reslice, nil, keep-slice
// rebuild). Constructor initialization (make, composite literal) and
// append-to-self do not count.
//
// # The dataflow layer
//
// asymbound and asymshare are interprocedural: they consume per-function
// summaries (dataflow.go) computed bottom-up over the whole load to a
// fixed point, so facts flow through arbitrarily deep call chains and
// recursion. One summary (flowFacts) records, per function:
//
//   - Results: for each declared result, whether it carries wire taint
//     (FromSource) and which parameters' taint it forwards (FromParams,
//     a bitset) — so `readLen` returning a raw wire read taints its
//     callers' uses, and an identity passthrough keeps its argument's
//     taint;
//   - SinkParams/SinkNotes: parameters that flow unsanitized into an
//     allocation/index/loop-bound sink inside the function or its
//     callees — so passing a tainted value to a helper that make()s with
//     it is reported at the call site, named after the helper;
//   - MutParams/MutRecv: parameters (and the receiver) whose referenced
//     memory the function writes through, directly or transitively —
//     what lets asymshare attribute `scribble(m.Data)` to the call site
//     that passed shared memory in;
//   - Calls: the statically resolved callee keys, the edges reachability
//     walks.
//
// The analyses are deliberately approximate, tuned so the audited tree
// is clean without annotation noise. Documented imprecisions: any
// comparison mentioning a variable sanitizes it along all paths
// (path-insensitive); values read out of fields, containers, and maps
// are clean (container- and field-insensitive — taint dies at a store);
// interface dispatch and function values have no callee summary
// (dynamic-dispatch-blind, except the binary.ByteOrder methods, which
// are special-cased as sources); call results are fresh memory for
// aliasing; append() aliases only its first argument, which is what
// makes the copy idiom clean. These choices trade missed exotic flows
// for a zero-false-positive gate; the fixture suites under testdata/
// pin both directions.
//
// # Annotations
//
// Suppressions are line comments of the form
//
//	//lint:<name> <free-text reason>
//
// placed on the flagged line, on the line immediately above it, or (for
// declarations) anywhere in the doc comment. The reason text is
// mandatory in spirit — it is the reviewable record of why the
// suppression is sound — but not enforced. Names:
//
//	//lint:ordered         this map range is order-insensitive
//	//lint:unwired         this message type deliberately has no wire
//	                       codec (placed on the type declaration or the
//	                       send site); it must never cross the TCP
//	                       transport
//	//lint:sizer-fallback  this SimSize is a deliberate approximation for
//	                       when the codec reports unencodable
//	//lint:bounded         this wire-derived value is already bounded
//	                       (placed on the sink line); say by what
//	//lint:confined        this Receive-reachable memory is not actually
//	                       shared (placed on the write); say why
//	//lint:retained        this coordinate-keyed field is deliberately
//	                       unpruned (placed on the field declaration);
//	                       say what bounds it
//
// An annotation on a line where its analyzer finds nothing to suppress
// is itself reported (unused suppressions rot), as is any //lint: name
// outside this list.
//
// # Running
//
// `make lint` builds cmd/asymvet and runs it over ./...; `make test`
// runs it alongside stock `go vet`. The driver is standalone rather
// than a `go vet -vettool` plugin: the vettool protocol needs
// golang.org/x/tools/go/analysis/unitchecker, which this build
// environment cannot vendor, so asymvet loads packages itself via
// `go list -export -json -deps` and type-checks from source against the
// build cache's export data. Test files are not analyzed (test-local
// message types and deliberately adversarial iteration live there); the
// contracts gate shipped code.
//
// asymvet also supports -json (machine-readable findings), -baseline
// (suppress a recorded finding set — adopt the analyzers on a dirty
// tree without annotating everything first), and -cache. The cache
// (cache.go) stores, per package, a content hash over its sources and
// transitive in-module dependency cone, its cross-package facts (flow
// summaries, wire registrations, unwired types, prune sites, Receive
// roots), and its diagnostics, plus a digest of the whole program's
// fact pool. A package replays its cached diagnostics without being
// re-parsed when its own hash AND the global fact digest match; a
// package whose facts are valid but whose surroundings changed is
// re-analyzed from source with the unchanged rest of the program
// injected as external facts. `make lint` keeps the cache in
// .asymvet-cache.json (untracked); correctness falls back to a full
// run on any mismatch or corruption.
package lint
