package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShareAnalyzer enforces the parallel-delivery confinement contract:
// during same-time parallel delivery (sim.DeliveryWorkers > 1) the
// Receive handlers of distinct processes run concurrently, and a
// broadcast hands every one of them the SAME message value. State a
// handler touches must therefore be per-process (its receiver), reached
// through the buffering Env (whose commit path is serialized), or
// synchronized via sync/atomic. The analyzer flags, in any function
// reachable from a protocol Receive handler, (a) writes through memory
// reachable from the message parameter — the gather.Pairs
// shared-backing bug class — and (b) writes to package-level variables.
// Method calls on sync/atomic types pass automatically: the std library
// is outside the program, so no mutation fact exists for them.
// See doc.go.
var ShareAnalyzer = &Analyzer{
	Name: "asymshare",
	Doc:  "flags writes to message-shared or package-global state reachable from protocol Receive handlers",
	Run:  runShare,
}

func runShare(pass *Pass) {
	if !inDeterministicScope(pass.Pkg.Path) {
		return
	}
	fg := pass.Prog.flow()
	roots := receiveRoots(pass.Prog)
	reach := fg.reachableFrom(roots)

	consumed := map[string]bool{}
	forEachFuncDecl(pass.Pkg, func(fd *ast.FuncDecl) {
		fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		key := funcKeyOf(fn)
		if !reach[key] {
			return
		}
		ff := &flowFunc{key: key, decl: fd, pkg: pass.Pkg, fn: fn}
		aw := newAliasWalker(fg, ff, pass, isReceiveHandler(pass.Pkg, fd))
		aw.consumed = consumed
		aw.walkFunc()
	})
	for _, key := range pass.Pkg.directiveLines() {
		for _, e := range pass.Pkg.directives[key] {
			if e.Name == "confined" && !consumed[key] {
				pass.Reportf(e.Pos, "unused //lint:confined directive: no shared-state write to govern on this or the following line")
			}
		}
	}
}

// receiveRoots collects the funcKeys of every protocol Receive handler
// in the program: a method named Receive whose first parameter is
// sim.Env (the sim.Node surface the scheduler fans out over).
func receiveRoots(prog *Program) []string {
	var roots []string
	if prog.external != nil {
		roots = append(roots, prog.external.Roots...)
	}
	for _, pkg := range prog.Packages {
		roots = append(roots, packageReceiveRoots(pkg)...)
	}
	return roots
}

// packageReceiveRoots collects one package's Receive-handler funcKeys
// (empty outside the deterministic scope).
func packageReceiveRoots(pkg *Package) []string {
	if !inDeterministicScope(pkg.Path) {
		return nil
	}
	var roots []string
	forEachFuncDecl(pkg, func(fd *ast.FuncDecl) {
		if !isReceiveHandler(pkg, fd) {
			return
		}
		if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
			roots = append(roots, funcKeyOf(fn))
		}
	})
	return roots
}

// isReceiveHandler matches `func (x *T) Receive(env sim.Env, from ..., msg ...)`.
func isReceiveHandler(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "Receive" {
		return false
	}
	params := paramObjects(pkg, fd)
	if len(params) != 3 || params[0] == nil {
		return false
	}
	t := params[0].Type()
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Env" && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == simPkgPath
}

// aliasVal tracks what memory a local may alias: the enclosing
// function's parameters / receiver (for the compositional MutParams /
// MutRecv summary) and, in report mode on a Receive root, the shared
// message value.
type aliasVal struct {
	params uint64
	recv   bool
	msg    bool
}

func (a aliasVal) some() bool { return a.params != 0 || a.recv || a.msg }

func (a aliasVal) union(o aliasVal) aliasVal {
	return aliasVal{params: a.params | o.params, recv: a.recv || o.recv, msg: a.msg || o.msg}
}

// aliasWalker runs the mutation analysis over one function body. With
// pass == nil it computes the MutParams/MutRecv summary; with a pass it
// reports confinement violations (message-aliased and package-global
// writes). Aliases are tracked may-alias, union on every binding; call
// results are treated as fresh memory (a function returning an alias of
// its argument is invisible — the COW layers that do this own their
// synchronization and are race-tested).
type aliasWalker struct {
	fg     *flowGraph
	ff     *flowFunc
	pass   *Pass
	isRoot bool

	state     map[types.Object]aliasVal
	mutParams uint64
	mutRecv   bool
	consumed  map[string]bool
}

func newAliasWalker(fg *flowGraph, ff *flowFunc, pass *Pass, isRoot bool) *aliasWalker {
	return &aliasWalker{fg: fg, ff: ff, pass: pass, isRoot: isRoot,
		state: map[types.Object]aliasVal{}}
}

func (aw *aliasWalker) walkFunc() {
	fd := aw.ff.decl
	for i, obj := range paramObjects(aw.ff.pkg, fd) {
		if obj == nil || i >= 64 {
			continue
		}
		v := aliasVal{params: 1 << i}
		if aw.isRoot && i == 2 {
			v.msg = true // Receive(env, from, msg): the shared payload
		}
		aw.state[obj] = v
	}
	if obj := recvObject(aw.ff.pkg, fd); obj != nil {
		aw.state[obj] = aliasVal{recv: true}
	}
	aw.walk(fd.Body)
}

// mutate records a write through memory with the given alias set.
func (aw *aliasWalker) mutate(pos token.Pos, v aliasVal, how string) {
	aw.mutParams |= v.params
	aw.mutRecv = aw.mutRecv || v.recv
	if !v.msg || aw.pass == nil {
		return
	}
	fset := aw.pass.Prog.Fset
	if aw.ff.pkg.directiveAt(fset, pos, "confined") {
		if aw.consumed != nil {
			for _, key := range directiveKeys(fset, pos) {
				for _, e := range aw.ff.pkg.directives[key] {
					if e.Name == "confined" {
						aw.consumed[key] = true
					}
				}
			}
		}
		return
	}
	aw.pass.Reportf(pos,
		"%s memory reachable from the delivered message: under parallel delivery every receiver of a broadcast shares this value, so the write races; copy before mutating, use sync/atomic, or annotate //lint:confined <why this memory is not shared>", how)
}

// globalWrite reports a write to a package-level variable on a
// Receive-reachable path.
func (aw *aliasWalker) globalWrite(pos token.Pos, obj types.Object) {
	if aw.pass == nil {
		return
	}
	fset := aw.pass.Prog.Fset
	if aw.ff.pkg.directiveAt(fset, pos, "confined") {
		if aw.consumed != nil {
			for _, key := range directiveKeys(fset, pos) {
				for _, e := range aw.ff.pkg.directives[key] {
					if e.Name == "confined" {
						aw.consumed[key] = true
					}
				}
			}
		}
		return
	}
	aw.pass.Reportf(pos,
		"write to package-level variable %s on a path reachable from a Receive handler: concurrent deliveries race on it; confine the state to the node, use sync/atomic, or annotate //lint:confined <why>", obj.Name())
}

// evalAlias computes the alias set of an expression's value.
func (aw *aliasWalker) evalAlias(e ast.Expr) aliasVal {
	pkg := aw.ff.pkg
	switch e := e.(type) {
	case nil:
		return aliasVal{}
	case *ast.Ident:
		if obj := pkg.Info.ObjectOf(e); obj != nil {
			return aw.state[obj]
		}
		return aliasVal{}
	case *ast.ParenExpr:
		return aw.evalAlias(e.X)
	case *ast.SelectorExpr:
		if _, isPkg := pkg.Info.Uses[e.Sel].(*types.PkgName); isPkg {
			return aliasVal{}
		}
		return aw.evalAlias(e.X)
	case *ast.IndexExpr:
		return aw.evalAlias(e.X)
	case *ast.SliceExpr:
		return aw.evalAlias(e.X)
	case *ast.StarExpr:
		return aw.evalAlias(e.X)
	case *ast.TypeAssertExpr:
		return aw.evalAlias(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return aw.evalAlias(e.X)
		}
		return aliasVal{}
	case *ast.CompositeLit:
		out := aliasVal{}
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			out = out.union(aw.evalAlias(el))
		}
		return out
	case *ast.CallExpr:
		if isConversion(pkg, e) && len(e.Args) == 1 {
			return aw.evalAlias(e.Args[0])
		}
		if builtinName(pkg, e) == "append" && len(e.Args) > 0 {
			// The result may share args[0]'s backing array. Appended
			// VALUES are copied into it, so they do not alias the result —
			// which is what makes `append([]T(nil), shared...)` the
			// blessed copy-before-mutate idiom.
			return aw.evalAlias(e.Args[0])
		}
		return aliasVal{} // call results: treated as fresh memory
	}
	return aliasVal{}
}

// writeTarget classifies the left-hand side of a write: it returns the
// alias set of the memory being written through, or ok=false when the
// write only updates a local value (rebinding a variable, or a field of
// a value-typed local).
func (aw *aliasWalker) writeTarget(e ast.Expr) (aliasVal, types.Object, bool) {
	pkg := aw.ff.pkg
	switch e := e.(type) {
	case *ast.ParenExpr:
		return aw.writeTarget(e.X)
	case *ast.StarExpr:
		return aw.evalAlias(e.X), nil, true
	case *ast.IndexExpr:
		xt := pkg.Info.TypeOf(e.X)
		if xt != nil {
			switch xt.Underlying().(type) {
			case *types.Slice, *types.Map, *types.Pointer:
				return aw.evalAlias(e.X), nil, true
			}
		}
		return aw.writeTarget(e.X) // value array: writing mutates the holder
	case *ast.SelectorExpr:
		xt := pkg.Info.TypeOf(e.X)
		if xt != nil {
			if _, ok := xt.Underlying().(*types.Pointer); ok {
				return aw.evalAlias(e.X), nil, true
			}
		}
		if _, isPkg := pkg.Info.Uses[e.Sel].(*types.PkgName); isPkg {
			return aliasVal{}, nil, false
		}
		// x.f on a value: the write lands in whatever holds x.
		return aw.writeTarget(e.X)
	case *ast.Ident:
		obj := pkg.Info.ObjectOf(e)
		if obj == nil {
			return aliasVal{}, nil, false
		}
		if isPackageLevelVar(obj) {
			return aliasVal{}, obj, true
		}
		// A local value holder: writes to it (or its value fields) stay
		// local. Pointer-typed locals never reach here — writing through
		// them goes via StarExpr/SelectorExpr above.
		return aliasVal{}, nil, false
	}
	return aliasVal{}, nil, false
}

func (aw *aliasWalker) walkList(list []ast.Stmt) {
	for _, s := range list {
		aw.walk(s)
	}
}

func (aw *aliasWalker) walk(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		aw.walkList(s.List)
	case *ast.ExprStmt:
		aw.evalEffects(s.X)
	case *ast.AssignStmt:
		aw.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							aw.bind(name, aw.evalAlias(vs.Values[i]))
							aw.evalEffects(vs.Values[i])
						}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			aw.evalEffects(e)
		}
	case *ast.IfStmt:
		aw.walk(s.Init)
		aw.evalEffects(s.Cond)
		aw.walk(s.Body)
		aw.walk(s.Else)
	case *ast.ForStmt:
		aw.walk(s.Init)
		aw.evalEffects(s.Cond)
		aw.walk(s.Post)
		aw.walk(s.Body)
	case *ast.RangeStmt:
		x := aw.evalAlias(s.X)
		aw.evalEffects(s.X)
		// Range values over a shared container alias its elements only
		// for reference types; the value var copies — but the KEY of a
		// map/VALUE of a slice of pointers aliases. Conservative: bind
		// both vars to the container's alias set.
		for _, v := range []ast.Expr{s.Key, s.Value} {
			if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
				aw.bind(id, x)
			}
		}
		aw.walk(s.Body)
	case *ast.SwitchStmt:
		aw.walk(s.Init)
		aw.evalEffects(s.Tag)
		for _, cc := range s.Body.List {
			aw.walkList(cc.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		aw.walk(s.Init)
		aw.walk(s.Assign)
		for _, cc := range s.Body.List {
			aw.walkList(cc.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			c := cc.(*ast.CommClause)
			aw.walk(c.Comm)
			aw.walkList(c.Body)
		}
	case *ast.LabeledStmt:
		aw.walk(s.Stmt)
	case *ast.GoStmt:
		aw.evalEffects(s.Call)
	case *ast.DeferStmt:
		aw.evalEffects(s.Call)
	case *ast.SendStmt:
		aw.evalEffects(s.Chan)
		aw.evalEffects(s.Value)
	case *ast.IncDecStmt:
		if v, global, ok := aw.writeTarget(s.X); ok {
			if global != nil {
				aw.globalWrite(s.Pos(), global)
			} else {
				aw.mutate(s.Pos(), v, "increment of")
			}
		}
	}
}

// bind records a local (re)binding.
func (aw *aliasWalker) bind(id *ast.Ident, v aliasVal) {
	if id.Name == "_" {
		return
	}
	if obj := aw.ff.pkg.Info.ObjectOf(id); obj != nil {
		// May-alias: a rebinding in a loop can see either value, so union
		// instead of overwriting.
		aw.state[obj] = aw.state[obj].union(v)
	}
}

func (aw *aliasWalker) assign(s *ast.AssignStmt) {
	// Effects (mutating calls) inside the RHS first.
	for _, r := range s.Rhs {
		aw.evalEffects(r)
	}
	// Alias of each RHS value (multi-result calls yield fresh memory).
	var vals []aliasVal
	if len(s.Rhs) == len(s.Lhs) {
		vals = make([]aliasVal, len(s.Rhs))
		for i, r := range s.Rhs {
			vals[i] = aw.evalAlias(r)
		}
	} else {
		vals = make([]aliasVal, len(s.Lhs))
		if len(s.Rhs) == 1 {
			// v, ok := x.(T) / m[k] / <-ch: the carried value may alias
			// the asserted/indexed container (evalAlias sees through
			// both); the ok/bool slot stays fresh.
			vals[0] = aw.evalAlias(s.Rhs[0])
		}
	}
	for i, lhs := range s.Lhs {
		lhs := ast.Unparen(lhs)
		if id, ok := lhs.(*ast.Ident); ok {
			obj := aw.ff.pkg.Info.ObjectOf(id)
			if obj != nil && isPackageLevelVar(obj) {
				aw.globalWrite(lhs.Pos(), obj)
				continue
			}
			if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
				aw.bind(id, vals[i])
			}
			continue
		}
		if v, global, ok := aw.writeTarget(lhs); ok {
			if global != nil {
				aw.globalWrite(lhs.Pos(), global)
			} else {
				aw.mutate(lhs.Pos(), v, "write to")
			}
		}
	}
}

// evalEffects scans an expression for mutating calls: a statically
// resolved callee whose summary mutates its receiver or a parameter
// applies that mutation to the caller's aliases at the call site.
func (aw *aliasWalker) evalEffects(e ast.Expr) {
	if e == nil {
		return
	}
	pkg := aw.ff.pkg
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			aw.walk(fl.Body) // closures share the alias state
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isConversion(pkg, call) || builtinName(pkg, call) != "" {
			return true
		}
		fn := calleeFunc(pkg, call)
		if fn == nil {
			return true
		}
		ff, ok := aw.fg.funcs[funcKeyOf(fn)]
		if !ok {
			return true // outside the program (std lib, incl. sync/atomic)
		}
		if ff.facts.MutRecv {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if v := aw.evalAlias(sel.X); v.some() {
					aw.mutate(call.Pos(), v, "call to "+shortFuncName(fn)+", which mutates")
				}
			}
		}
		for i, a := range call.Args {
			if i >= 64 || ff.facts.MutParams&(1<<uint(i)) == 0 {
				continue
			}
			if v := aw.evalAlias(a); v.some() {
				aw.mutate(a.Pos(), v, "call to "+shortFuncName(fn)+", which mutates")
			}
		}
		return true
	})
}
