package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// cacheFormat versions the cache file layout and the fact semantics; a
// mismatch discards the whole file. Bump it when flowFacts or an
// analyzer contract changes shape in a way the source hash below does
// not capture.
const cacheFormat = "asymvet-cache-v1"

// lintPkgPath is this package's own import path: its sources are hashed
// into the cache fingerprint so editing a recognizer invalidates every
// cached result.
const lintPkgPath = "repro/internal/lint"

// ExternalFacts carries the cross-package facts of packages the cache
// allowed RunCached to skip re-parsing: their interprocedural dataflow
// summaries, wire registrations, //lint:unwired type keys, GC
// prune-site keys, and Receive-handler roots. A plain Load leaves
// Program.external nil.
type ExternalFacts struct {
	Flow    map[string]flowFacts `json:"flow,omitempty"`
	Regs    []Registration       `json:"regs,omitempty"`
	Unwired []string             `json:"unwired,omitempty"`
	Pruned  []string             `json:"pruned,omitempty"`
	Roots   []string             `json:"roots,omitempty"`
}

// pkgFacts is everything one package contributes to the analysis of
// OTHER packages. Diagnostics inside a package depend only on its own
// syntax, its dependencies' types (both covered by the content key) and
// this pool (covered by the global digest) — that invariant is what
// makes replaying cached diagnostics sound.
type pkgFacts struct {
	Flow    map[string]flowFacts `json:"flow,omitempty"`
	Regs    []Registration       `json:"regs,omitempty"`
	Unwired []string             `json:"unwired,omitempty"`
	Pruned  []string             `json:"pruned,omitempty"`
	Roots   []string             `json:"roots,omitempty"`
}

// cacheEntry is one package's cached analysis.
type cacheEntry struct {
	// Key hashes the package's own sources and, transitively, its whole
	// in-module dependency cone (plus the tool fingerprint). A match
	// means Facts is valid.
	Key string `json:"key"`
	// GlobalDigest hashes the fact pool of the entire program Diags was
	// computed against. A match (together with Key) means Diags can be
	// replayed without re-analyzing.
	GlobalDigest string       `json:"global"`
	Facts        pkgFacts     `json:"facts"`
	Diags        []Diagnostic `json:"diags,omitempty"`
}

type cacheFile struct {
	Fingerprint string                `json:"fingerprint"`
	Packages    map[string]cacheEntry `json:"packages"`
}

// CacheStats reports how much work RunCached skipped.
type CacheStats struct {
	Reused   int // packages whose cached diagnostics were replayed
	Analyzed int // packages re-analyzed from source
}

// RunCached is Run+Load with a content-hash package cache at cachePath:
// packages whose sources, dependency cone, and surrounding fact pool
// are unchanged replay their cached diagnostics without being parsed.
// A missing, corrupt, or mismatching cache file degrades to a full run.
func RunCached(dir, cachePath string, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, CacheStats, error) {
	var stats CacheStats
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, stats, err
	}
	fp := fingerprint(analyzers, pkgs)
	keys, order, err := contentKeys(fp, pkgs)
	if err != nil {
		return nil, stats, err
	}

	prev := readCache(cachePath)
	if prev.Fingerprint != fp {
		prev.Packages = map[string]cacheEntry{}
	}
	hit := map[string]cacheEntry{}
	miss := map[string]bool{}
	for _, path := range order {
		if e, ok := prev.Packages[path]; ok && e.Key == keys[path] {
			hit[path] = e
		} else {
			miss[path] = true
		}
	}

	// Fast path: every package key-matches and every entry was computed
	// against the same fact pool — replay everything, parse nothing.
	if len(hit) == len(order) {
		digest := globalDigest(order, func(path string) pkgFacts { return hit[path].Facts })
		replayAll := true
		for _, path := range order {
			if hit[path].GlobalDigest != digest {
				replayAll = false
				break
			}
		}
		if replayAll {
			var diags []Diagnostic
			for _, path := range order {
				diags = append(diags, hit[path].Diags...)
			}
			sortDiags(diags)
			stats.Reused = len(order)
			return diags, stats, nil
		}
	}

	// Round 1: load the key-missed packages from source, carrying the
	// hits as external facts, and compute the program's fact digest from
	// the union. Facts only depend on a package's own source and its
	// dependency cone, so cached facts of key-hits are exact.
	prog, err := loadFromList(pkgs, miss)
	if err != nil {
		return nil, stats, err
	}
	hitSet := map[string]bool{}
	for path := range hit {
		hitSet[path] = true
	}
	// external facts must be installed before extractFacts forces the
	// flow fixed point: the misses' summaries depend on hit callees.
	prog.external = mergeExternal(order, hitSet, func(path string) pkgFacts { return hit[path].Facts })
	fresh := extractFacts(prog)
	factsOf := func(path string) pkgFacts {
		if f, ok := fresh[path]; ok {
			return *f
		}
		return hit[path].Facts
	}
	digest := globalDigest(order, factsOf)

	// A key-hit whose stored digest disagrees has valid facts but
	// possibly stale diagnostics (something elsewhere changed the fact
	// pool): it must be re-analyzed too.
	stale := map[string]bool{}
	for path, e := range hit {
		if e.GlobalDigest != digest {
			stale[path] = true
		}
	}
	if len(stale) > 0 {
		source := map[string]bool{}
		for path := range miss {
			source[path] = true
		}
		for path := range stale {
			source[path] = true
		}
		replayable := map[string]bool{}
		for path := range hit {
			if !stale[path] {
				replayable[path] = true
			}
		}
		prog, err = loadFromList(pkgs, source)
		if err != nil {
			return nil, stats, err
		}
		prog.external = mergeExternal(order, replayable, factsOf)
		fresh = extractFacts(prog)
		digest = globalDigest(order, factsOf)
	}

	// Analyze the source-loaded packages; replay the rest.
	next := cacheFile{Fingerprint: fp, Packages: map[string]cacheEntry{}}
	var diags []Diagnostic
	analyzed := map[string][]Diagnostic{}
	for _, pkg := range prog.Packages {
		analyzed[pkg.Path] = runPackage(prog, pkg, analyzers)
	}
	for _, path := range order {
		if d, ok := analyzed[path]; ok {
			stats.Analyzed++
			diags = append(diags, d...)
			next.Packages[path] = cacheEntry{
				Key: keys[path], GlobalDigest: digest,
				Facts: factsOf(path), Diags: d,
			}
			continue
		}
		e := hit[path]
		stats.Reused++
		diags = append(diags, e.Diags...)
		e.GlobalDigest = digest
		next.Packages[path] = e
	}
	sortDiags(diags)
	writeCache(cachePath, next)
	return diags, stats, nil
}

// fingerprint covers everything that invalidates the whole cache: the
// format version, the toolchain, the analyzer suite, and the sources of
// the lint package itself (present in the listing whenever the module
// tree is linted, which is how `make lint` runs).
func fingerprint(analyzers []*Analyzer, pkgs []listPkg) string {
	h := sha256.New()
	fmt.Fprintln(h, cacheFormat, runtime.Version())
	for _, a := range analyzers {
		fmt.Fprintln(h, a.Name)
	}
	for _, p := range pkgs {
		if p.ImportPath != lintPkgPath {
			continue
		}
		for _, f := range p.GoFiles {
			b, err := os.ReadFile(filepath.Join(p.Dir, f))
			if err != nil {
				continue
			}
			sum := sha256.Sum256(b)
			fmt.Fprintf(h, "%s %x\n", f, sum)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// contentKeys computes each module package's cache key and returns the
// module package paths in dependency order (go list -deps emits
// dependencies before dependents, so dep keys are always available).
// Standard-library and out-of-module imports hash as constants: the Go
// version in the fingerprint covers the former and this module vendors
// nothing of the latter.
func contentKeys(fp string, pkgs []listPkg) (map[string]string, []string, error) {
	keys := map[string]string{}
	var order []string
	for _, p := range pkgs {
		if !isModulePkg(p) {
			keys[p.ImportPath] = "ext:" + p.ImportPath
			continue
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		h := sha256.New()
		fmt.Fprintln(h, fp, p.ImportPath)
		for _, f := range p.GoFiles {
			b, err := os.ReadFile(filepath.Join(p.Dir, f))
			if err != nil {
				return nil, nil, fmt.Errorf("lint: hashing %s: %v", p.ImportPath, err)
			}
			sum := sha256.Sum256(b)
			fmt.Fprintf(h, "%s %x\n", f, sum)
		}
		for _, imp := range p.Imports {
			fmt.Fprintf(h, "import %s %s\n", imp, keys[imp])
		}
		keys[p.ImportPath] = hex.EncodeToString(h.Sum(nil))
		order = append(order, p.ImportPath)
	}
	return keys, order, nil
}

// extractFacts computes every source-loaded package's contribution to
// the cross-package fact pool (forcing the flow fixed point).
func extractFacts(prog *Program) map[string]*pkgFacts {
	facts := map[string]*pkgFacts{}
	for _, pkg := range prog.Packages {
		facts[pkg.Path] = &pkgFacts{
			Flow:    map[string]flowFacts{},
			Regs:    packageRegistrations(pkg),
			Unwired: packageUnwired(prog, pkg),
			Pruned:  packagePruneSites(pkg),
			Roots:   packageReceiveRoots(pkg),
		}
	}
	fg := prog.flow()
	for _, k := range fg.keys {
		ff := fg.funcs[k]
		if ff.decl == nil {
			continue
		}
		facts[ff.pkg.Path].Flow[k] = ff.facts
	}
	return facts
}

// globalDigest hashes the whole program's fact pool. Replayed and
// freshly extracted facts serialize identically (maps marshal with
// sorted keys; nil and empty collections both omit), so the digest is
// stable across cache round-trips.
func globalDigest(paths []string, factsOf func(string) pkgFacts) string {
	sorted := append([]string(nil), paths...)
	sort.Strings(sorted)
	h := sha256.New()
	for _, p := range sorted {
		b, err := json.Marshal(factsOf(p))
		if err != nil {
			panic(fmt.Sprintf("lint: marshaling facts for %s: %v", p, err))
		}
		fmt.Fprintf(h, "%s %s\n", p, b)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// mergeExternal pools the facts of the packages in use for injection
// into a Program that skips loading them.
func mergeExternal(order []string, use map[string]bool, factsOf func(string) pkgFacts) *ExternalFacts {
	ext := &ExternalFacts{Flow: map[string]flowFacts{}}
	for _, path := range order {
		if !use[path] {
			continue
		}
		f := factsOf(path)
		for k, v := range f.Flow {
			ext.Flow[k] = v
		}
		ext.Regs = append(ext.Regs, f.Regs...)
		ext.Unwired = append(ext.Unwired, f.Unwired...)
		ext.Pruned = append(ext.Pruned, f.Pruned...)
		ext.Roots = append(ext.Roots, f.Roots...)
	}
	return ext
}

// packageUnwired returns the "pkgpath.TypeName" keys of the package's
// //lint:unwired-annotated type declarations.
func packageUnwired(prog *Program, pkg *Package) []string {
	var out []string
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if docDirective(ts.Doc, "unwired") || docDirective(gd.Doc, "unwired") ||
					pkg.directiveAt(prog.Fset, ts.Pos(), "unwired") {
					out = append(out, pkg.Path+"."+ts.Name.Name)
				}
			}
		}
	}
	return out
}

func readCache(path string) cacheFile {
	cf := cacheFile{Packages: map[string]cacheEntry{}}
	b, err := os.ReadFile(path)
	if err != nil {
		return cf
	}
	if json.Unmarshal(b, &cf) != nil || cf.Packages == nil {
		return cacheFile{Packages: map[string]cacheEntry{}}
	}
	return cf
}

// writeCache persists best-effort: a read-only checkout just means the
// next run re-analyzes.
func writeCache(path string, cf cacheFile) {
	b, err := json.Marshal(cf)
	if err != nil {
		return
	}
	tmp := path + ".tmp"
	if os.WriteFile(tmp, b, 0o644) != nil {
		return
	}
	if os.Rename(tmp, path) != nil {
		os.Remove(tmp)
	}
}
