package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterminismAnalyzer flags wall-clock reads, global math/rand usage and
// nondeterministically-ordered map iteration in the deterministic
// packages. See doc.go ("Static contracts") for the full rule set and
// the recognized order-insensitive idioms.
var DeterminismAnalyzer = &Analyzer{
	Name: "asymdeterminism",
	Doc:  "flags time.Now, the global math/rand source, and map iteration whose order can escape, in the deterministic packages",
	Run:  runDeterminism,
}

// deterministicPkgs is the audited package set: everything that executes
// under the simulator's pure-function-of-the-seed contract. transport is
// deliberately absent (it is the real-network layer: wall-clock reads
// and connection-map iteration are its job), as are the pure-analysis
// quorum/types packages and the tooling under cmd/.
var deterministicPkgs = map[string]bool{
	"repro":                    true,
	"repro/internal/sim":       true,
	"repro/internal/dag":       true,
	"repro/internal/gather":    true,
	"repro/internal/broadcast": true,
	"repro/internal/abba":      true,
	"repro/internal/acs":       true,
	"repro/internal/coin":      true,
	"repro/internal/rider":     true,
	"repro/internal/core":      true,
	"repro/internal/scenario":  true,
	"repro/internal/service":   true,
	"repro/internal/harness":   true,
	"repro/internal/baseline":  true,
	"repro/internal/register":  true,
}

func inDeterministicScope(path string) bool {
	return deterministicPkgs[path] || strings.HasPrefix(path, "repro/internal/lint/testdata/")
}

// bannedTimeFuncs are the wall-clock entry points of package time.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "Sleep": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// allowedRandFuncs are the math/rand package-level functions that do NOT
// touch the global source: constructors for explicitly seeded state.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) {
	pkg := pass.Pkg
	scoped := inDeterministicScope(pkg.Path)

	// Directive hygiene runs everywhere: a misspelled directive name
	// would otherwise silently suppress nothing.
	unknownDirectives(pass)
	if !scoped {
		return
	}

	// consumed records directive index keys that had a map range to
	// govern; //lint:ordered entries outside it are reported as unused.
	consumed := map[string]bool{}

	for _, file := range pkg.Files {
		w := &detWalker{pass: pass, consumed: consumed}
		ast.Inspect(file, w.visit)
	}

	for _, key := range pkg.directiveLines() {
		for _, e := range pkg.directives[key] {
			if e.Name == "ordered" && !consumed[key] {
				pass.Reportf(e.Pos, "unused //lint:ordered directive: no map range on this or the following line")
			}
		}
	}
}

func unknownDirectives(pass *Pass) {
	for _, key := range pass.Pkg.directiveLines() {
		for _, e := range pass.Pkg.directives[key] {
			if !knownDirectives[e.Name] {
				pass.Reportf(e.Pos, "unknown lint directive //lint:%s (known: ordered, unwired, sizer-fallback, bounded, confined, retained)", e.Name)
			}
		}
	}
}

// detWalker walks one file tracking the enclosing function body (the
// sorted-collect idiom needs to look for a later sort call in it).
type detWalker struct {
	pass     *Pass
	fnBodies []*ast.BlockStmt
	nodes    []ast.Node
	consumed map[string]bool
}

func (w *detWalker) visit(n ast.Node) bool {
	if n == nil {
		popped := w.nodes[len(w.nodes)-1]
		w.nodes = w.nodes[:len(w.nodes)-1]
		switch popped.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			w.fnBodies = w.fnBodies[:len(w.fnBodies)-1]
		}
		return true
	}
	w.nodes = append(w.nodes, n)
	switch n := n.(type) {
	case *ast.FuncDecl:
		w.fnBodies = append(w.fnBodies, n.Body)
	case *ast.FuncLit:
		w.fnBodies = append(w.fnBodies, n.Body)
	case *ast.CallExpr:
		w.checkCall(n)
	case *ast.RangeStmt:
		w.checkRange(n)
	}
	return true
}

func (w *detWalker) enclosingBody() *ast.BlockStmt {
	if len(w.fnBodies) == 0 {
		return nil
	}
	return w.fnBodies[len(w.fnBodies)-1]
}

// checkCall flags wall-clock and global-rand calls.
func (w *detWalker) checkCall(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := w.pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedTimeFuncs[fn.Name()] {
			w.pass.Reportf(call.Pos(),
				"call to time.%s: wall-clock nondeterminism in a deterministic package (virtual time comes from Env.Now)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRandFuncs[fn.Name()] {
			w.pass.Reportf(call.Pos(),
				"call to %s.%s draws from the process-global random source; use the run's seeded RNG (Env.Rand, or rand.New(rand.NewSource(seed)))", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkRange flags `for range` over a map unless annotated or recognized
// as order-insensitive.
func (w *detWalker) checkRange(rs *ast.RangeStmt) {
	t := w.pass.Pkg.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	for _, key := range directiveKeys(w.pass.Prog.Fset, rs.Pos()) {
		w.consumed[key] = true
	}
	if w.pass.Pkg.directiveAt(w.pass.Prog.Fset, rs.Pos(), "ordered") {
		return
	}
	if w.orderInsensitive(rs) {
		return
	}
	w.pass.Reportf(rs.Pos(),
		"range over map %s: iteration order is nondeterministic and can reach protocol state, sends, metrics, or encoded output; iterate sorted keys, or annotate //lint:ordered <why order cannot escape>", types.ExprString(rs.X))
}

// orderInsensitive recognizes the loop-body idioms whose result cannot
// depend on iteration order (doc.go lists them).
func (w *detWalker) orderInsensitive(rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return true
	}
	if w.sortedCollect(rs) || w.pruneLoop(rs) {
		return true
	}
	for _, stmt := range rs.Body.List {
		if !w.commutativeStmt(rs, stmt) {
			return false
		}
	}
	return true
}

// sortedCollect matches `for k, v := range m { s = append(s, k|v) }`
// followed, later in the same function, by a sort of s.
func (w *detWalker) sortedCollect(rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	lhs := types.ExprString(asg.Lhs[0])
	if types.ExprString(call.Args[0]) != lhs {
		return false
	}
	elem, ok := call.Args[1].(*ast.Ident)
	if !ok || !(w.isRangeVar(rs.Key, elem) || w.isRangeVar(rs.Value, elem)) {
		return false
	}
	// The collected slice must be sorted after the loop.
	body := w.enclosingBody()
	if body == nil {
		return false
	}
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() || sorted {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := w.pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		p := fn.Pkg().Path()
		if p != "sort" && p != "slices" {
			return true
		}
		if !strings.HasPrefix(fn.Name(), "Sort") &&
			!map[string]bool{"Strings": true, "Ints": true, "Float64s": true, "Slice": true, "SliceStable": true, "Stable": true}[fn.Name()] {
			return true
		}
		if len(call.Args) >= 1 && types.ExprString(call.Args[0]) == lhs {
			sorted = true
		}
		return true
	})
	return sorted
}

// pruneLoop matches `for k := range m { delete(m, k) }`, optionally with
// a call-free guard: `for k := range m { if cond { delete(m, k) } }`.
func (w *detWalker) pruneLoop(rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	stmt := rs.Body.List[0]
	if ifs, ok := stmt.(*ast.IfStmt); ok {
		if ifs.Else != nil || ifs.Init != nil || len(ifs.Body.List) != 1 || !callFree(ifs.Cond) {
			return false
		}
		stmt = ifs.Body.List[0]
	}
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "delete" {
		return false
	}
	if types.ExprString(call.Args[0]) != types.ExprString(rs.X) {
		return false
	}
	key, ok := call.Args[1].(*ast.Ident)
	return ok && w.isRangeVar(rs.Key, key)
}

// commutativeStmt accepts statements whose combined effect is the same
// in any iteration order: integer ++/-- and commutative compound
// assignments, and plain writes through an index that is exactly the
// range key (distinct keys touch distinct slots).
func (w *detWalker) commutativeStmt(rs *ast.RangeStmt, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return w.commutativeLHS(s.X) && callFree(s.X)
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_ASSIGN:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			return w.commutativeLHS(s.Lhs[0]) && callFree(s.Lhs[0]) && callFree(s.Rhs[0])
		case token.ASSIGN:
			for _, lhs := range s.Lhs {
				idx, ok := lhs.(*ast.IndexExpr)
				if !ok || !callFree(idx.X) {
					return false
				}
				key, ok := idx.Index.(*ast.Ident)
				if !ok || !w.isRangeVar(rs.Key, key) {
					return false
				}
			}
			for _, rhs := range s.Rhs {
				if !callFree(rhs) {
					return false
				}
			}
			return true
		}
	}
	return false
}

// commutativeLHS accepts an accumulator whose compound updates commute:
// any integer (float rounding and string concatenation are
// order-dependent).
func (w *detWalker) commutativeLHS(e ast.Expr) bool {
	t := w.pass.Pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isRangeVar reports whether id denotes the same variable as the range
// clause's key/value expression v.
func (w *detWalker) isRangeVar(v ast.Expr, id *ast.Ident) bool {
	vid, ok := v.(*ast.Ident)
	if !ok || vid.Name == "_" {
		return false
	}
	obj := w.pass.Pkg.Info.ObjectOf(vid)
	return obj != nil && obj == w.pass.Pkg.Info.ObjectOf(id)
}

// callFree reports whether e contains no function calls (so evaluating
// it cannot have order-dependent side effects). Conversions count as
// calls here; the idioms stay conservative.
func callFree(e ast.Expr) bool {
	free := true
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			free = false
		}
		return free
	})
	return free
}
