package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// cacheTestPatterns is a small in-module subtree with a real dependency
// edge (wire imports types), enough to exercise full runs, full
// replays, and partial invalidation without type-checking the world.
var cacheTestPatterns = []string{"./internal/wire", "./internal/types"}

func runCachedHere(t *testing.T, cachePath string) ([]Diagnostic, CacheStats) {
	t.Helper()
	diags, stats, err := RunCached("../..", cachePath, Analyzers(), cacheTestPatterns...)
	if err != nil {
		t.Fatalf("RunCached: %v", err)
	}
	return diags, stats
}

func TestRunCachedReplaysUnchangedPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks packages")
	}
	cachePath := filepath.Join(t.TempDir(), "cache.json")

	first, s1 := runCachedHere(t, cachePath)
	if s1.Analyzed == 0 || s1.Reused != 0 {
		t.Fatalf("cold run: analyzed=%d reused=%d, want all analyzed", s1.Analyzed, s1.Reused)
	}

	second, s2 := runCachedHere(t, cachePath)
	if s2.Analyzed != 0 || s2.Reused != s1.Analyzed {
		t.Fatalf("warm run: analyzed=%d reused=%d, want 0 and %d", s2.Analyzed, s2.Reused, s1.Analyzed)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("replayed diagnostics differ:\n first %v\nsecond %v", first, second)
	}
}

func TestRunCachedPartialInvalidation(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks packages")
	}
	cachePath := filepath.Join(t.TempDir(), "cache.json")
	first, s1 := runCachedHere(t, cachePath)

	// Tamper with one package's content key: that package must be
	// re-analyzed while the other replays (its own key and the fact
	// pool are unchanged).
	b, err := os.ReadFile(cachePath)
	if err != nil {
		t.Fatalf("reading cache: %v", err)
	}
	var cf cacheFile
	if err := json.Unmarshal(b, &cf); err != nil {
		t.Fatalf("parsing cache: %v", err)
	}
	e, ok := cf.Packages["repro/internal/types"]
	if !ok {
		t.Fatalf("cache has no entry for repro/internal/types: %v", cf.Packages)
	}
	e.Key = "stale"
	cf.Packages["repro/internal/types"] = e
	b, _ = json.Marshal(cf)
	if err := os.WriteFile(cachePath, b, 0o644); err != nil {
		t.Fatalf("writing cache: %v", err)
	}

	third, s3 := runCachedHere(t, cachePath)
	if s3.Analyzed != 1 || s3.Reused != s1.Analyzed-1 {
		t.Fatalf("after tamper: analyzed=%d reused=%d, want 1 and %d", s3.Analyzed, s3.Reused, s1.Analyzed-1)
	}
	if !reflect.DeepEqual(first, third) {
		t.Fatalf("diagnostics drifted after partial re-analysis")
	}

	// And the repaired cache replays fully again.
	_, s4 := runCachedHere(t, cachePath)
	if s4.Analyzed != 0 {
		t.Fatalf("cache did not repair itself: analyzed=%d", s4.Analyzed)
	}
}

func TestRunCachedSurvivesCorruptCache(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks packages")
	}
	cachePath := filepath.Join(t.TempDir(), "cache.json")
	first, _ := runCachedHere(t, cachePath)

	if err := os.WriteFile(cachePath, []byte("{definitely not json"), 0o644); err != nil {
		t.Fatalf("corrupting cache: %v", err)
	}
	again, s := runCachedHere(t, cachePath)
	if s.Reused != 0 {
		t.Fatalf("corrupt cache must not be trusted: reused=%d", s.Reused)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatalf("diagnostics differ after cache corruption")
	}
}
