package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Module     *struct{ Path string }
	DepOnly    bool
	Error      *struct{ Err string }
}

// isModulePkg reports whether p is an analyzable in-module package (the
// set Load type-checks from source and the cache keys).
func isModulePkg(p listPkg) bool {
	return !p.Standard && p.Module != nil && len(p.CgoFiles) == 0
}

// goList runs `go list -export -json -deps patterns...` in dir and
// decodes the package stream. -export makes the go command write export
// data for every listed package (and its dependencies, std included)
// into the build cache and report the file path, which is what lets the
// type-checker resolve imports without golang.org/x/tools.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a go/types importer resolving every import path
// through the export-data files go list reported.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// checkConfig is the shared type-checker configuration.
func checkConfig(imp types.Importer) *types.Config {
	return &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// parseAndCheck parses files and type-checks them as one package under
// importPath, populating directives from the comments.
func parseAndCheck(fset *token.FileSet, imp types.Importer, importPath string, files []string) (*Package, error) {
	pkg := &Package{Path: importPath, directives: map[string][]directiveEntry{}}
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", f, err)
		}
		pkg.Files = append(pkg.Files, af)
		collectDirectives(fset, af, pkg.directives)
	}
	info := newInfo()
	tpkg, err := checkConfig(imp).Check(importPath, fset, pkg.Files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	pkg.Name = tpkg.Name()
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}

// Load type-checks every module package matched by patterns (plus their
// in-module dependencies) from source, resolving imports through build
// cache export data, and returns them as an analyzable Program. Test
// files are not loaded; see doc.go.
func Load(dir string, patterns ...string) (*Program, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	return loadFromList(pkgs, nil)
}

// loadFromList type-checks the module packages of a go list result from
// source. When only is non-nil, packages outside it are skipped — the
// cache path (cache.go) loads just the stale packages and carries the
// rest as ExternalFacts; skipped packages are still visible to the
// loaded ones through their export data.
func loadFromList(pkgs []listPkg, only map[string]bool) (*Program, error) {
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	prog := &Program{Fset: token.NewFileSet()}
	imp := exportImporter(prog.Fset, exports)
	for _, p := range pkgs {
		// A cgo package cannot be type-checked from plain source; none
		// exist in this module, but skip rather than fail.
		if !isModulePkg(p) {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if only != nil && !only[p.ImportPath] {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := parseAndCheck(prog.Fset, imp, p.ImportPath, files)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}
