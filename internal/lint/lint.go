package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. The framework mirrors the shape of
// golang.org/x/tools/go/analysis just closely enough for the checks
// here: an analyzer runs once per package and reports diagnostics
// through its Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is one (analyzer, package) run: the package's syntax and type
// information plus access to the whole loaded program for the
// cross-package checks (wire registrations live in a different package
// than some send sites).
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, with the position resolved for printing.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Package is one type-checked analysis target.
type Package struct {
	Path  string
	Name  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// directives maps "file:line" to the lint directives present on that
	// line (see doc.go: //lint:<name> <reason>).
	directives map[string][]directiveEntry
}

// directiveEntry is one //lint: comment occurrence.
type directiveEntry struct {
	Name string
	Pos  token.Pos
}

// Program is a loaded set of packages sharing one FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	regs     []Registration
	regsDone bool

	// flowG caches the interprocedural dataflow summaries (dataflow.go);
	// pruned caches the program-wide prune-site index (gc.go).
	flowG  *flowGraph
	pruned map[string]bool

	// external carries facts for packages the cache allowed the loader
	// to skip re-parsing (cache.go); nil for a plain Load.
	external *ExternalFacts
}

// All lint directives must use names from this set; anything else under
// the //lint: prefix is reported as unknown by the determinism analyzer
// (which owns directive hygiene).
var knownDirectives = map[string]bool{
	"ordered":        true,
	"unwired":        true,
	"sizer-fallback": true,
	"bounded":        true,
	"confined":       true,
	"retained":       true,
}

const directivePrefix = "//lint:"

// collectDirectives indexes every //lint: comment of f by line.
func collectDirectives(fset *token.FileSet, f *ast.File, into map[string][]directiveEntry) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			name, _, _ := strings.Cut(rest, " ")
			pos := fset.Position(c.Pos())
			key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
			into[key] = append(into[key], directiveEntry{Name: name, Pos: c.Pos()})
		}
	}
}

// directiveKeys returns the "file:line" index keys a directive attached
// to the node at pos may live under: the node's own line and the line
// immediately above it.
func directiveKeys(fset *token.FileSet, pos token.Pos) []string {
	at := fset.Position(pos)
	return []string{
		fmt.Sprintf("%s:%d", at.Filename, at.Line),
		fmt.Sprintf("%s:%d", at.Filename, at.Line-1),
	}
}

// directiveAt reports whether a //lint:name directive is attached to the
// node at pos: on the same line, or on the line immediately above.
func (p *Package) directiveAt(fset *token.FileSet, pos token.Pos, name string) bool {
	for _, key := range directiveKeys(fset, pos) {
		for _, e := range p.directives[key] {
			if e.Name == name {
				return true
			}
		}
	}
	return false
}

// docDirective reports whether a doc comment group carries //lint:name.
func docDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, directivePrefix) {
			n, _, _ := strings.Cut(strings.TrimPrefix(c.Text, directivePrefix), " ")
			if n == name {
				return true
			}
		}
	}
	return false
}

// directiveLines returns the package's directive index keys sorted for
// deterministic reporting.
func (p *Package) directiveLines() []string {
	keys := make([]string, 0, len(p.directives))
	for k := range p.directives {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer, WireAnalyzer, SizerAnalyzer,
		BoundAnalyzer, ShareAnalyzer, GCAnalyzer,
	}
}

// Run applies each analyzer to each package of prog and returns the
// findings sorted by position then analyzer — a stable order regardless
// of package load order.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		diags = append(diags, runPackage(prog, pkg, analyzers)...)
	}
	sortDiags(diags)
	return diags
}

// runPackage applies each analyzer to one package. Every analyzer
// reports at positions inside the pass's own package, so the result is
// exactly that package's findings — the property the cache relies on to
// store diagnostics per package.
func runPackage(prog *Program, pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
		a.Run(pass)
	}
	return diags
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// typeKey is the cross-package identity of a Go type: its types.TypeString
// with full package paths ("repro/internal/coin.ShareMsg",
// "*repro/internal/rider.VertexPayload"). Dynamic (reflect) type identity
// at runtime coincides with this for the concrete types the analyzers
// compare.
func typeKey(t types.Type) string {
	return types.TypeString(t, nil)
}
