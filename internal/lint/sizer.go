package lint

import (
	"go/ast"
	"go/types"
)

// SizerAnalyzer flags types that implement sim.Sizer while also having a
// registered wire codec. sim.MessageSize always prefers the codec, so
// such a SimSize is either dead code whose figure can silently diverge
// from the real encoding, or a deliberate fallback for codecs that can
// report unencodable — the deliberate case carries a
// //lint:sizer-fallback annotation on the method. See doc.go.
var SizerAnalyzer = &Analyzer{
	Name: "asymsizer",
	Doc:  "flags sim.Sizer implementations shadowed by an authoritative wire codec",
	Run:  runSizer,
}

func runSizer(pass *Pass) {
	registered := map[string]Registration{}
	for _, r := range pass.Prog.registrations() {
		registered[r.TypeKey] = r
	}
	forEachFuncDecl(pass.Pkg, func(fd *ast.FuncDecl) {
		if fd.Name.Name != "SimSize" || fd.Recv == nil || len(fd.Recv.List) != 1 {
			return
		}
		fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		sig := fn.Type().(*types.Signature)
		if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			return
		}
		if b, ok := sig.Results().At(0).Type().(*types.Basic); !ok || b.Kind() != types.Int {
			return
		}
		recv := sig.Recv().Type()
		// The registered dynamic type may be the value or the pointer
		// form; either shadows this Sizer for messages of that form.
		base := recv
		if p, ok := recv.(*types.Pointer); ok {
			base = p.Elem()
		}
		reg, ok := registered[typeKey(base)]
		if !ok {
			reg, ok = registered["*"+typeKey(base)]
		}
		if !ok {
			return
		}
		if docDirective(fd.Doc, "sizer-fallback") || pass.Pkg.directiveAt(pass.Prog.Fset, fd.Pos(), "sizer-fallback") {
			return
		}
		pass.Reportf(fd.Pos(),
			"%s implements sim.Sizer but its wire codec (tag %d) is authoritative for sim.MessageSize: the SimSize figure can silently diverge from real wire bytes; delete it, or annotate //lint:sizer-fallback <why the approximation is still consulted>", typeKey(recv), reg.Tag)
	})
}
