package lint

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"repro/internal/wire"
)

// wantRe matches one expectation in a fixture file: // want `regex`
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// runFixture loads ./testdata/<dir>, runs one analyzer, and checks the
// diagnostics against the fixture's want comments: every diagnostic must
// match a want on its line, and every want must be hit.
func runFixture(t *testing.T, analyzer *Analyzer, dir string) {
	t.Helper()
	prog, err := Load(".", "./testdata/"+dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*want{}
	total := 0
	for _, pkg := range prog.Packages {
		if !strings.HasPrefix(pkg.Path, "repro/internal/lint/testdata/") {
			continue
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						pos := prog.Fset.Position(c.Pos())
						key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
						wants[key] = append(wants[key], &want{re: regexp.MustCompile(m[1])})
						total++
					}
				}
			}
		}
	}
	if total == 0 {
		t.Fatalf("fixture %s declares no expectations", dir)
	}

	for _, d := range Run(prog, []*Analyzer{analyzer}) {
		if !strings.Contains(d.Pos.Filename, "/testdata/") {
			t.Errorf("diagnostic outside the fixture (the loaded tree packages should be clean): %s", d)
			continue
		}
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	keys := make([]string, 0, len(wants))
	for key := range wants {
		keys = append(keys, key)
	}
	for _, key := range keys {
		for _, w := range wants[key] {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q was not reported", key, w.re)
			}
		}
	}
}

func TestDeterminismFixture(t *testing.T) { runFixture(t, DeterminismAnalyzer, "det") }

func TestWireFixture(t *testing.T) {
	ExtraTagRanges["repro/internal/lint/testdata/wire"] = wire.TagRange{Lo: 900, Hi: 909}
	defer delete(ExtraTagRanges, "repro/internal/lint/testdata/wire")
	runFixture(t, WireAnalyzer, "wire")
}

func TestSizerFixture(t *testing.T) { runFixture(t, SizerAnalyzer, "sizer") }
