package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/wire"
)

// wantRe matches one expectation in a fixture file: // want `regex`
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// runFixture loads ./testdata/<dir>, runs one analyzer, and checks the
// diagnostics against the fixture's want comments: every diagnostic must
// match a want on its line, and every want must be hit.
func runFixture(t *testing.T, analyzer *Analyzer, dir string) {
	t.Helper()
	prog, err := Load(".", "./testdata/"+dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	type want struct {
		pos     token.Position
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*want{}
	all := []*want{}
	for _, pkg := range prog.Packages {
		if !strings.HasPrefix(pkg.Path, "repro/internal/lint/testdata/") {
			continue
		}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						pos := prog.Fset.Position(c.Pos())
						key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
						w := &want{pos: pos, re: regexp.MustCompile(m[1])}
						wants[key] = append(wants[key], w)
						all = append(all, w)
					}
				}
			}
		}
	}
	if len(all) == 0 {
		t.Fatalf("fixture %s declares no expectations", dir)
	}

	for _, d := range Run(prog, []*Analyzer{analyzer}) {
		if !strings.Contains(d.Pos.Filename, "/testdata/") {
			t.Errorf("diagnostic outside the fixture (the loaded tree packages should be clean): %s", d)
			continue
		}
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	// Report each unmatched want at its own file:line, in source order,
	// so a failing run reads like a compiler error list.
	sort.Slice(all, func(i, j int) bool {
		if all[i].pos.Filename != all[j].pos.Filename {
			return all[i].pos.Filename < all[j].pos.Filename
		}
		return all[i].pos.Line < all[j].pos.Line
	})
	for _, w := range all {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q was not reported", w.pos.Filename, w.pos.Line, w.re)
		}
	}
}

func TestDeterminismFixture(t *testing.T) { runFixture(t, DeterminismAnalyzer, "det") }

func TestWireFixture(t *testing.T) {
	ExtraTagRanges["repro/internal/lint/testdata/wire"] = wire.TagRange{Lo: 900, Hi: 909}
	defer delete(ExtraTagRanges, "repro/internal/lint/testdata/wire")
	runFixture(t, WireAnalyzer, "wire")
}

func TestSizerFixture(t *testing.T) { runFixture(t, SizerAnalyzer, "sizer") }

func TestBoundFixture(t *testing.T) { runFixture(t, BoundAnalyzer, "bound") }

func TestShareFixture(t *testing.T) { runFixture(t, ShareAnalyzer, "share") }

func TestGCFixture(t *testing.T) { runFixture(t, GCAnalyzer, "gc") }
