// Package share is the asymshare analyzer's fixture: under parallel
// same-time delivery, every receiver of a broadcast is handed the SAME
// message value, so Receive-reachable code must not write through
// message memory or package-level variables. Negative cases pin the
// confinement recognizers (receiver state, copy-before-mutate, atomics)
// against over-reporting.
package share

import (
	"sync/atomic"

	"repro/internal/sim"
	"repro/internal/types"
)

// payload is a message with mutable innards, as a broadcast would share.
type payload struct {
	Data  []byte
	Count int
	Tags  map[string]int
}

// globalHits is the bug class: unsynchronized package state touched from
// handlers.
var globalHits int

// atomicHits is the blessed alternative.
var atomicHits atomic.Int64

// node is a protocol node: its own fields are per-process (confined).
type node struct {
	seen    map[types.ProcessID]bool
	scratch []byte
}

func (n *node) Init(env sim.Env) { n.seen = map[types.ProcessID]bool{} }

// Receive is the analysis root: the scheduler fans these out in
// parallel across receivers at the same virtual time.
func (n *node) Receive(env sim.Env, from types.ProcessID, msg sim.Message) {
	m, ok := msg.(*payload)
	if !ok {
		return
	}

	// --- positive: writes through shared message memory ---
	m.Count++          // want `memory reachable from the delivered message`
	m.Data[0] = 1      // want `memory reachable from the delivered message`
	m.Tags["seen"] = 1 // want `memory reachable from the delivered message`

	d := m.Data // aliasing a message slice does not confine it
	d[1] = 2    // want `memory reachable from the delivered message`

	scribble(m.Data) // want `call to share\.scribble, which mutates memory reachable`

	// --- positive: package-global writes ---
	globalHits++ // want `package-level variable globalHits`

	bump() // the write inside bump is reported there, once per program

	// --- negative: confined state and blessed idioms ---
	n.seen[from] = true              // receiver state is per-process: clean
	n.scratch = append(n.scratch, 1) // receiver state: clean
	cp := append([]byte(nil), m.Data...)
	cp[0] = 9         // copy-before-mutate: clean
	atomicHits.Add(1) // sync/atomic: clean
	env.Send(from, m) // the Env commit path: clean

	local := payload{Data: []byte{1}}
	local.Data[0] = 3 // fresh local memory: clean

	// --- suppression ---
	//lint:confined this instance is only ever run with DeliveryWorkers=1
	m.Count = 0
}

// scribble mutates its parameter (MutParams summary); the violation is
// attributed to the call site that passes shared memory in.
func scribble(b []byte) {
	if len(b) > 0 {
		b[0] = 0xFF
	}
}

// bump writes a package-level variable and is reachable from Receive.
func bump() {
	globalHits++ // want `package-level variable globalHits`
}

// helperNotReachable is NOT called from any Receive handler: its global
// write is outside the contract (e.g. setup code).
func helperNotReachable() {
	globalHits = 0
}

//lint:confined stale suppression with nothing to suppress // want `unused //lint:confined directive`
func (n *node) quiet() {
	n.scratch = nil
}
