// Package sizerfix is the asymsizer analyzer's fixture: SimSize
// implementations shadowed by a registered codec, with and without the
// //lint:sizer-fallback annotation, and one with no codec at all.
package sizerfix

import "repro/internal/wire"

type codecMsg struct{}

func (codecMsg) SimSize() int { return 8 } // want `authoritative for sim\.MessageSize`

type fallbackMsg struct{}

// SimSize is a deliberate fallback.
//
//lint:sizer-fallback fixture: the codec declines some values
func (fallbackMsg) SimSize() int { return 8 }

type plainMsg struct{}

// SimSize with no registered codec is the live sizing path: not flagged.
func (plainMsg) SimSize() int { return 8 }

func init() {
	wire.Register(905, codecMsg{}, wire.Codec{})
	wire.Register(906, fallbackMsg{}, wire.Codec{})
}
