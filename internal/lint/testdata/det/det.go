// Package det is the asymdeterminism analyzer's fixture: each `want`
// comment marks an expected diagnostic; lines without one must stay
// clean. The package is loaded only by the fixture test (go list's
// ... patterns never descend into testdata).
package det

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want `call to time\.Now`
}

func sleepy() {
	time.Sleep(time.Millisecond) // want `call to time\.Sleep`
}

func globalRand() int {
	return rand.Intn(6) // want `process-global random source`
}

func seededRand(r *rand.Rand) int {
	return r.Intn(6) // methods on an explicitly seeded *rand.Rand are fine
}

func newSeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructors are fine
}

func escapingOrder(m map[int]string) string {
	out := ""
	for _, v := range m { // want `iteration order is nondeterministic`
		out += v
	}
	return out
}

func sortedCollect(m map[int]string) []int {
	var keys []int
	for k := range m { // collected then sorted: order cannot escape
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func collectNoSort(m map[int]string) []int {
	var keys []int
	for k := range m { // want `iteration order is nondeterministic`
		keys = append(keys, k)
	}
	return keys
}

func pruneAll(m map[int]bool) {
	for k := range m { // pure prune: order cannot escape
		if m[k] {
			delete(m, k)
		}
	}
}

func countEntries(m map[int]int) int {
	n := 0
	for range m { // commutative counter: order cannot escape
		n++
	}
	return n
}

func sumValues(m map[int]int) int {
	total := 0
	for _, v := range m { // commutative integer sum: order cannot escape
		total += v
	}
	return total
}

func copySlots(src, dst map[int]string) {
	for k, v := range src { // disjoint per-key writes: order cannot escape
		dst[k] = v
	}
}

func floatSum(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m { // want `iteration order is nondeterministic`
		total += v
	}
	return total
}

func annotated(m map[int]string) string {
	out := ""
	//lint:ordered fixture: the concatenation feeds nothing order-sensitive
	for _, v := range m {
		out += v
	}
	return out
}

func unusedAnnotation() int {
	//lint:ordered nothing here ranges over a map // want `unused //lint:ordered directive`
	return 1
}

//lint:orderd misspelled directive name // want `unknown lint directive //lint:orderd`
func typoDirective() {}
