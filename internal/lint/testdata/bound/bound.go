// Package bound is the asymbound analyzer's fixture: wire-derived
// integers must be compared against a cap before reaching an allocation
// size, an index, a slice bound, or a loop bound. Positive cases carry
// `want` comments; negative cases pin the sanitizer recognizers against
// over-reporting.
package bound

import (
	"encoding/binary"

	"repro/internal/wire"
)

const cap64 = 64

// --- positive: raw sources reaching sinks unchecked ---

func makeFromUvarint(b []byte) []int {
	n, _, _ := wire.ReadUvarint(b)
	return make([]int, n) // want `reaches a make size`
}

func makeFromBinary(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	return make([]byte, n) // want `reaches a make size`
}

func indexUnchecked(b []byte) byte {
	n, _, _ := wire.ReadUvarint(b)
	return b[n] // want `reaches an index`
}

func sliceUnchecked(b []byte) []byte {
	n, _, _ := wire.ReadUvarint(b)
	return b[:n] // want `reaches a slice bound`
}

func loopUnchecked(b []byte) int {
	n, _, _ := wire.ReadUvarint(b)
	sum := 0
	for i := uint64(0); i < n; i++ { // want `reaches a loop bound`
		sum++
	}
	return sum
}

func rangeOverInt(b []byte) int {
	n, _, _ := wire.ReadUvarint(b)
	sum := 0
	for range n { // want `reaches a loop bound \(range over integer\)`
		sum++
	}
	return sum
}

// --- positive: interprocedural flows ---

// alloc sinks its parameter; callers passing unchecked wire values are
// reported at the call site.
func alloc(n int) []int {
	return make([]int, n)
}

func taintedArg(b []byte) []int {
	n, _, _ := wire.ReadUvarint(b)
	return alloc(int(n)) // want `a make size inside bound\.alloc`
}

// readLen forwards a raw wire read through its result.
func readLen(b []byte) uint64 {
	n, _, _ := wire.ReadUvarint(b)
	return n
}

func taintedResult(b []byte) []int {
	return make([]int, readLen(b)) // want `bound\.readLen result.*reaches a make size`
}

// passthrough keeps its parameter's taint: source → param → sink chains
// survive one level of indirection.
func passthrough(n uint64) uint64 { return n + 1 }

func taintedPassthrough(b []byte) []int {
	n, _, _ := wire.ReadUvarint(b)
	return make([]int, passthrough(n)) // want `reaches a make size`
}

// --- negative: sanitizers ---

func guarded(b []byte) []int {
	n, _, _ := wire.ReadUvarint(b)
	if n > cap64 {
		return nil
	}
	return make([]int, n) // checked above: clean
}

func clamped(b []byte) []int {
	n, _, _ := wire.ReadUvarint(b)
	return make([]int, min(n, cap64)) // min against a constant cap: clean
}

func viaReadInt(b []byte) []int {
	n, _, _ := wire.ReadInt(b, cap64)
	return make([]int, n) // ReadInt bounds internally (recognized compositionally)
}

func mapKeyed(b []byte, m map[uint64]int) int {
	n, _, _ := wire.ReadUvarint(b)
	return m[n] // map lookup with any key is safe: clean
}

func lenIsReal(b []byte) []byte {
	out := make([]byte, len(b)) // len of real memory: clean
	copy(out, b)
	return out
}

// --- suppression ---

func suppressed(b []byte) []int {
	n, _, _ := wire.ReadUvarint(b)
	//lint:bounded callers only hand this function trusted locally-generated buffers
	return make([]int, n)
}

//lint:bounded stale suppression with nothing to suppress // want `unused //lint:bounded directive`
func noSinkHere(b []byte) int {
	return len(b)
}
