// Package gc is the asymgc analyzer's fixture: struct fields keyed or
// indexed by an advancing coordinate (round, wave, sequence, slot) must
// have a prune path somewhere in the program. Negative cases pin the
// key-type and prune-site recognizers against over-reporting.
package gc

import "repro/internal/types"

type slotKey struct {
	Src types.ProcessID
	Seq uint64
}

// --- positive: coordinate-keyed state with no prune path ---

type leaky struct {
	waves map[int]bool // want `no prune path`

	bySlot map[slotKey]string // want `no prune path`

	commitLog []string // want `no prune path`

	// append-only reassignment is growth, not pruning.
	deliverHistory []int // want `no prune path`

	// initialized in the constructor (make does not count as a prune).
	roundVotes map[uint64][]int // want `no prune path`
}

func newLeaky() *leaky {
	return &leaky{waves: map[int]bool{}}
}

func (l *leaky) grow(r int) {
	l.roundVotes = make(map[uint64][]int)
	l.deliverHistory = append(l.deliverHistory, r)
}

// --- negative: pruned, out-of-scope keys, or annotated ---

type pruned struct {
	waves     map[int]bool       // deleted below
	slots     map[slotKey]string // cleared below
	tailLog   []string           // shrunk below
	seqWindow []int              // rebuilt from a filtered keep-slice below
}

func (p *pruned) collect(watermark int) {
	for w := range p.waves {
		if w < watermark {
			delete(p.waves, w)
		}
	}
	clear(p.slots)
	p.tailLog = p.tailLog[1:]
	keep := p.seqWindow[:0]
	for _, v := range p.seqWindow {
		if v >= watermark {
			keep = append(keep, v)
		}
	}
	p.seqWindow = keep
}

type outOfScope struct {
	perProcess map[types.ProcessID]int // fixed process universe: clean
	byName     map[string]int          // not a coordinate key: clean
	payload    []byte                  // name says nothing coordinate-ish: clean
}

func (o *outOfScope) touch() {
	o.perProcess[0]++
	o.byName["x"]++
	o.payload = append(o.payload, 1)
}

type annotated struct {
	//lint:retained test-only instrumentation, runs are short by construction
	waveLog []string

	rounds map[int]bool //lint:retained one-shot instance, discarded whole by its owner
}

//lint:retained stale suppression with nothing to suppress // want `unused //lint:retained directive`
type clean struct {
	n int
}
