// Package wirefix is the asymwire analyzer's fixture: registered and
// unregistered message types on the sim.Env send surface, plus tag-range
// violations. The fixture test claims tags 900–909 for this package via
// lint.ExtraTagRanges before running.
package wirefix

import (
	"repro/internal/sim"
	"repro/internal/wire"
)

type goodMsg struct{ A int }

type helperMsg struct{ B int }

type badMsg struct{ C int }

// localMsg is a self-addressed control message.
//
//lint:unwired fixture: never crosses a wire
type localMsg struct{}

type inlineMsg struct{}

type outMsg struct{}

type bandMsg struct{}

func init() {
	wire.Register(900, goodMsg{}, wire.Codec{})
	registerFixture(901, helperMsg{})
	wire.Register(899, outMsg{}, wire.Codec{})   // want `outside .* assigned range`
	wire.Register(1001, bandMsg{}, wire.Codec{}) // want `test-reserved band`
}

// registerFixture forwards to wire.Register (the helper-indirection shape
// the analyzer resolves through one level).
func registerFixture(tag uint64, prototype any) {
	wire.Register(tag, prototype, wire.Codec{})
}

func sendAll(env sim.Env, m sim.Message) {
	env.Broadcast(goodMsg{})
	env.Send(0, helperMsg{})
	env.Broadcast(badMsg{}) // want `no internal/wire\.Register codec`
	env.Send(env.Self(), localMsg{})
	//lint:unwired fixture: inline suppression at the send site
	env.Broadcast(inlineMsg{})
	env.Broadcast(m) // interface-typed: checked at the construction site
}
