package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// GCAnalyzer enforces the bounded-memory contract: protocol state keyed
// or indexed by a monotonically advancing coordinate — round, wave,
// sequence number, slot — grows forever unless something prunes it. Any
// struct field in the GC-audited packages that is a map keyed by such a
// coordinate, or a slice whose name says it accumulates per-coordinate
// history, must have at least one prune site somewhere in the program:
// a delete(), a clear(), or a shrinking reassignment (x.f = x.f[k:],
// x.f = keep, x.f = nil). Fields retained on purpose carry
// //lint:retained <why bounded>. See doc.go.
var GCAnalyzer = &Analyzer{
	Name: "asymgc",
	Doc:  "checks that round/wave/sequence/slot-keyed state has a prune path (the bounded-memory GC contract)",
	Run:  runGC,
}

// gcPkgs is the audited set: the packages holding per-round protocol
// state that the PR 8 GC watermarks are supposed to keep flat. sim and
// harness are absent (they hold per-run scaffolding, reset between
// runs, not per-coordinate protocol state).
var gcPkgs = map[string]bool{
	"repro/internal/dag":       true,
	"repro/internal/gather":    true,
	"repro/internal/broadcast": true,
	"repro/internal/abba":      true,
	"repro/internal/acs":       true,
	"repro/internal/coin":      true,
	"repro/internal/rider":     true,
	"repro/internal/core":      true,
	"repro/internal/service":   true,
	"repro/internal/register":  true,
	"repro/internal/baseline":  true,
}

func inGCScope(path string) bool {
	return gcPkgs[path] || strings.HasPrefix(path, "repro/internal/lint/testdata/")
}

// coordFieldRe matches struct-field names that denote an advancing
// coordinate; coordSliceRe matches slice-field names that accumulate
// per-coordinate history.
var (
	coordFieldRe = regexp.MustCompile(`(?i)^(round|wave|seq|sequence|slot)$`)
	coordSliceRe = regexp.MustCompile(`(?i)(round|wave|seq|slot|deliver|commit|log|tail|buffer|histor)`)
)

func runGC(pass *Pass) {
	if !inGCScope(pass.Pkg.Path) {
		return
	}
	pruned := pass.Prog.pruneSites()
	consumed := map[string]bool{}

	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					pass.checkGCField(ts.Name.Name, field, pruned, consumed)
				}
			}
		}
	}

	for _, key := range pass.Pkg.directiveLines() {
		for _, e := range pass.Pkg.directives[key] {
			if e.Name == "retained" && !consumed[key] {
				pass.Reportf(e.Pos, "unused //lint:retained directive: no unpruned coordinate-keyed field on this or the following line")
			}
		}
	}
}

func (pass *Pass) checkGCField(typeName string, field *ast.Field, pruned, consumed map[string]bool) {
	ft := pass.Pkg.Info.TypeOf(field.Type)
	if ft == nil {
		return
	}
	why := ""
	switch u := ft.Underlying().(type) {
	case *types.Map:
		if k := coordKeyKind(u.Key()); k != "" {
			why = "map keyed by " + k
		}
	case *types.Slice:
		for _, name := range field.Names {
			if coordSliceRe.MatchString(name.Name) {
				why = "slice accumulating per-coordinate history (name matches " + coordSliceRe.String() + ")"
				break
			}
		}
	}
	if why == "" {
		return
	}
	for _, name := range field.Names {
		fieldKey := pass.Pkg.Path + "." + typeName + "." + name.Name
		if pruned[fieldKey] {
			continue
		}
		fset := pass.Prog.Fset
		if docDirective(field.Doc, "retained") || docDirective(field.Comment, "retained") ||
			pass.Pkg.directiveAt(fset, name.Pos(), "retained") {
			for _, key := range directiveKeys(fset, name.Pos()) {
				for _, e := range pass.Pkg.directives[key] {
					if e.Name == "retained" {
						consumed[key] = true
					}
				}
			}
			// Doc-comment directives count as used too.
			for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
				if cg == nil {
					continue
				}
				for _, key := range directiveKeys(fset, cg.Pos()) {
					for _, e := range pass.Pkg.directives[key] {
						if e.Name == "retained" {
							consumed[key] = true
						}
					}
				}
			}
			continue
		}
		pass.Reportf(name.Pos(),
			"field %s.%s is a %s but no prune path (delete/clear/shrinking reassign) exists anywhere in the program: it grows for the lifetime of the node; wire it into collectGarbage/PruneBelow or annotate //lint:retained <why bounded>", typeName, name.Name, why)
	}
}

// coordKeyKind classifies a map key type as an advancing coordinate:
// a plain or named integer (rounds, waves, sequence numbers — but NOT
// types.ProcessID, which ranges over the fixed process universe), or a
// struct with an integer field named like a coordinate (broadcast.Slot's
// Seq). Returns "" for out-of-scope key types.
func coordKeyKind(key types.Type) string {
	if named, ok := key.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Name() == "ProcessID" {
			return ""
		}
	}
	switch u := key.Underlying().(type) {
	case *types.Basic:
		if u.Info()&types.IsInteger != 0 {
			return "integer coordinate (" + types.TypeString(key, nil) + ")"
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !coordFieldRe.MatchString(f.Name()) {
				continue
			}
			if b, ok := f.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				return "struct coordinate (" + types.TypeString(key, nil) + " with advancing field " + f.Name() + ")"
			}
		}
	}
	return ""
}

// pruneSites indexes, once per Program, every field that some function
// in the program prunes: delete(x.f, k), clear(x.f), or an assignment
// x.f = RHS whose RHS is not a growth (append of the same field) and
// not an initialization (make / composite literal). Keys are
// "pkgpath.Type.Field".
func (prog *Program) pruneSites() map[string]bool {
	if prog.pruned != nil {
		return prog.pruned
	}
	prog.pruned = map[string]bool{}
	if prog.external != nil {
		for _, k := range prog.external.Pruned {
			prog.pruned[k] = true
		}
	}
	for _, pkg := range prog.Packages {
		for _, key := range packagePruneSites(pkg) {
			prog.pruned[key] = true
		}
	}
	return prog.pruned
}

// packagePruneSites returns the sorted field keys one package's code
// prunes; the cache stores them so a skipped package still contributes
// its prune sites to the program-wide index.
func packagePruneSites(pkg *Package) []string {
	set := map[string]bool{}
	forEachFuncDecl(pkg, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name := builtinName(pkg, n); (name == "delete" || name == "clear") && len(n.Args) >= 1 {
					if key, ok := fieldSelKey(pkg, n.Args[0]); ok {
						set[key] = true
					}
				}
			case *ast.AssignStmt:
				if n.Tok != token.ASSIGN {
					return true
				}
				for i, lhs := range n.Lhs {
					key, ok := fieldSelKey(pkg, lhs)
					if !ok {
						continue
					}
					if i < len(n.Rhs) && isGrowthOrInit(pkg, lhs, n.Rhs[i]) {
						continue
					}
					set[key] = true
				}
			}
			return true
		})
	})
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fieldSelKey resolves expr to a struct-field selector and returns its
// "pkgpath.Type.Field" key.
func fieldSelKey(pkg *Package, e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	f, ok := s.Obj().(*types.Var)
	if !ok || f.Pkg() == nil {
		return "", false
	}
	return f.Pkg().Path() + "." + typeBaseName(s.Recv()) + "." + f.Name(), true
}

// isGrowthOrInit reports whether assigning rhs to the field lhs grows or
// initializes it rather than pruning: append(lhs, ...) (growth), make()
// or a composite literal (constructor-style initialization).
func isGrowthOrInit(pkg *Package, lhs, rhs ast.Expr) bool {
	switch r := ast.Unparen(rhs).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		switch builtinName(pkg, r) {
		case "make":
			return true
		case "append":
			if len(r.Args) > 0 {
				return types.ExprString(ast.Unparen(r.Args[0])) == types.ExprString(ast.Unparen(lhs))
			}
		}
	}
	return false
}
