package lint

import (
	"go/ast"
	"go/constant"
	"go/types"

	"repro/internal/wire"
)

// WireAnalyzer enforces the wire-completeness contract: every message
// type handed to sim.Env.Send/Broadcast (the transport's hostEnv
// implements the same surface) has an internal/wire.Register codec, and
// every registration's tag falls in the registering package's assigned
// range (wire.TagRanges). See doc.go.
var WireAnalyzer = &Analyzer{
	Name: "asymwire",
	Doc:  "checks that sent message types have wire codecs and that codec tags match the central tag-range table",
	Run:  runWire,
}

// ExtraTagRanges extends wire.TagRanges for packages outside the real
// tree — the fixture packages under testdata claim a range here.
var ExtraTagRanges = map[string]wire.TagRange{}

const wirePkgPath = "repro/internal/wire"
const simPkgPath = "repro/internal/sim"

// Registration is one statically-resolved wire.Register call: the
// registered prototype's type and the claimed tag.
type Registration struct {
	TypeKey  string `json:"type"` // typeKey of the prototype's static type
	Tag      uint64 `json:"tag"`
	TagKnown bool   `json:"tagKnown,omitempty"`
	PkgPath  string `json:"pkg"`
	// Pos is nil for a cache-carried registration; tag checks only run
	// for the pass's own source-loaded package, which always has it.
	Pos ast.Node `json:"-"`
}

// registrations resolves every wire.Register call in the program,
// following one level of package-local helper indirection (the
// registerSlotMsg/registerWaveMsg pattern: a helper whose (tag,
// prototype) parameters are forwarded verbatim to wire.Register).
func (prog *Program) registrations() []Registration {
	if prog.regsDone {
		return prog.regs
	}
	prog.regsDone = true
	if prog.external != nil {
		prog.regs = append(prog.regs, prog.external.Regs...)
	}
	for _, pkg := range prog.Packages {
		prog.regs = append(prog.regs, packageRegistrations(pkg)...)
	}
	return prog.regs
}

// regHelper is a package-local function forwarding its parameters to
// wire.Register.
type regHelper struct {
	tagIdx, protoIdx int
}

func packageRegistrations(pkg *Package) []Registration {
	registerObj := lookupPkgFunc(pkg, wirePkgPath, "Register")
	if registerObj == nil {
		return nil
	}
	var regs []Registration
	helpers := map[*types.Func]regHelper{}

	// Pass 1: direct wire.Register calls. A call whose tag/prototype
	// arguments are both parameters of the enclosing function marks that
	// function as a registration helper.
	forEachFuncDecl(pkg, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 3 || calleeOf(pkg, call) != registerObj {
				return true
			}
			if r, ok := resolveRegistration(pkg, call.Args[0], call.Args[1], call); ok {
				regs = append(regs, r)
				return true
			}
			ti, tok := paramIndex(pkg, fd, call.Args[0])
			pi, pok := paramIndex(pkg, fd, call.Args[1])
			if tok && pok {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					helpers[fn] = regHelper{tagIdx: ti, protoIdx: pi}
				}
			}
			return true
		})
	})

	// Pass 2: helper call sites resolve the forwarded (tag, prototype).
	if len(helpers) > 0 {
		forEachFuncDecl(pkg, func(fd *ast.FuncDecl) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn, ok := calleeOf(pkg, call).(*types.Func)
				if !ok {
					return true
				}
				h, ok := helpers[fn]
				if !ok || len(call.Args) <= h.tagIdx || len(call.Args) <= h.protoIdx {
					return true
				}
				if r, ok := resolveRegistration(pkg, call.Args[h.tagIdx], call.Args[h.protoIdx], call); ok {
					regs = append(regs, r)
				}
				return true
			})
		})
	}
	for i := range regs {
		regs[i].PkgPath = pkg.Path
	}
	return regs
}

// resolveRegistration builds a Registration when the prototype argument
// has a concrete static type (the registered dynamic type).
func resolveRegistration(pkg *Package, tagArg, protoArg ast.Expr, at ast.Node) (Registration, bool) {
	pt := pkg.Info.TypeOf(protoArg)
	if pt == nil || types.IsInterface(pt) {
		return Registration{}, false
	}
	r := Registration{TypeKey: typeKey(pt), Pos: at}
	if tv, ok := pkg.Info.Types[tagArg]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, ok := constant.Uint64Val(tv.Value); ok {
			r.Tag, r.TagKnown = v, true
		}
	}
	return r, true
}

func runWire(pass *Pass) {
	checkRegistrationTags(pass)
	checkSendSites(pass)
}

// checkRegistrationTags validates this package's registrations against
// the central table.
func checkRegistrationTags(pass *Pass) {
	for _, r := range pass.Prog.registrations() {
		if r.PkgPath != pass.Pkg.Path || !r.TagKnown {
			continue
		}
		rng, ok := wire.TagRanges[r.PkgPath]
		if !ok {
			rng, ok = ExtraTagRanges[r.PkgPath]
		}
		switch {
		case r.Tag >= wire.TestTagFloor:
			pass.Reportf(r.Pos.Pos(),
				"wire.Register tag %d for %s is in the test-reserved band (>= %d); assign the package a range in wire.TagRanges", r.Tag, r.TypeKey, wire.TestTagFloor)
		case !ok:
			pass.Reportf(r.Pos.Pos(),
				"package %s registers wire tag %d but has no assigned range in wire.TagRanges", r.PkgPath, r.Tag)
		case !rng.Contains(r.Tag):
			pass.Reportf(r.Pos.Pos(),
				"wire.Register tag %d for %s is outside %s's assigned range [%d, %d] (wire.TagRanges)", r.Tag, r.TypeKey, r.PkgPath, rng.Lo, rng.Hi)
		}
	}
}

// checkSendSites flags concrete message types sent through the sim.Env
// surface without a wire codec.
func checkSendSites(pass *Pass) {
	envIface := envInterface(pass.Pkg)
	if envIface == nil {
		return // the package cannot name sim.Env, so it cannot send
	}
	registered := map[string]bool{}
	for _, r := range pass.Prog.registrations() {
		registered[r.TypeKey] = true
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pass.Pkg.Info.Selections[sel]
			if s == nil || s.Kind() != types.MethodVal {
				return true
			}
			var msgArg ast.Expr
			switch {
			case s.Obj().Name() == "Send" && len(call.Args) == 2:
				msgArg = call.Args[1]
			case s.Obj().Name() == "Broadcast" && len(call.Args) == 1:
				msgArg = call.Args[0]
			default:
				return true
			}
			recv := s.Recv()
			if !types.Implements(recv, envIface) && !types.Implements(types.NewPointer(recv), envIface) {
				return true
			}
			mt := pass.Pkg.Info.TypeOf(msgArg)
			if mt == nil || types.IsInterface(mt) {
				return true // dynamic type unknown here; checked at its construction site
			}
			if b, ok := mt.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
				return true
			}
			key := typeKey(mt)
			if registered[key] {
				return true
			}
			if pass.Pkg.directiveAt(pass.Prog.Fset, call.Pos(), "unwired") || typeDeclUnwired(pass.Prog, mt) {
				return true
			}
			pass.Reportf(call.Pos(),
				"message type %s is sent through Env.%s but has no internal/wire.Register codec: simulated byte metrics fall back to an approximation and the TCP transport cannot carry it; register a codec or annotate //lint:unwired <why it never crosses a wire>", key, s.Obj().Name())
			return true
		})
	}
}

// envInterface returns the sim.Env interface as seen by pkg (its own
// scope when pkg IS sim, otherwise through its direct imports).
func envInterface(pkg *Package) *types.Interface {
	var simPkg *types.Package
	if pkg.Path == simPkgPath {
		simPkg = pkg.Types
	} else {
		for _, imp := range pkg.Types.Imports() {
			if imp.Path() == simPkgPath {
				simPkg = imp
				break
			}
		}
	}
	if simPkg == nil {
		return nil
	}
	obj := simPkg.Scope().Lookup("Env")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// typeDeclUnwired reports whether the named type behind t carries a
// //lint:unwired annotation on its declaration.
func typeDeclUnwired(prog *Program, t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	if prog.external != nil {
		key := obj.Pkg().Path() + "." + obj.Name()
		for _, u := range prog.external.Unwired {
			if u == key {
				return true
			}
		}
	}
	for _, pkg := range prog.Packages {
		if pkg.Path != obj.Pkg().Path() {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || ts.Name.Name != obj.Name() {
						continue
					}
					if docDirective(ts.Doc, "unwired") || docDirective(gd.Doc, "unwired") {
						return true
					}
					return pkg.directiveAt(prog.Fset, ts.Pos(), "unwired")
				}
			}
		}
	}
	return false
}

// lookupPkgFunc finds the *types.Func named name in the package at path,
// resolved through pkg's own scope or direct imports.
func lookupPkgFunc(pkg *Package, path, name string) types.Object {
	var target *types.Package
	if pkg.Path == path {
		target = pkg.Types
	} else {
		for _, imp := range pkg.Types.Imports() {
			if imp.Path() == path {
				target = imp
				break
			}
		}
	}
	if target == nil {
		return nil
	}
	return target.Scope().Lookup(name)
}

// calleeOf resolves a call's callee object (selector or plain ident).
func calleeOf(pkg *Package, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return pkg.Info.Uses[fun.Sel]
	case *ast.Ident:
		return pkg.Info.Uses[fun]
	}
	return nil
}

// paramIndex reports the index of arg within fd's parameter list, when
// arg is an identifier naming one of fd's parameters.
func paramIndex(pkg *Package, fd *ast.FuncDecl, arg ast.Expr) (int, bool) {
	id, ok := arg.(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := pkg.Info.ObjectOf(id)
	if obj == nil {
		return 0, false
	}
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return 0, false
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i, true
		}
	}
	return 0, false
}

// forEachFuncDecl applies fn to every function declaration with a body.
func forEachFuncDecl(pkg *Package, fn func(*ast.FuncDecl)) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
