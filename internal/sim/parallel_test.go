package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/types"
)

// gossipNode exercises the parallel delivery stage with real fan-out:
// every received hop with remaining TTL is rebroadcast, so timestamp
// batches contain many receivers with several events each.
type gossipNode struct {
	trace []gossipStep
}

type gossipStep struct {
	at   VirtualTime
	from types.ProcessID
	ttl  int
}

type hop struct {
	TTL    int
	Origin types.ProcessID
}

func (hop) SimSize() int { return 10 }

func (g *gossipNode) Init(e Env) {
	e.Broadcast(hop{TTL: 2, Origin: e.Self()})
}

func (g *gossipNode) Receive(e Env, from types.ProcessID, msg Message) {
	h, ok := msg.(hop)
	if !ok {
		return
	}
	g.trace = append(g.trace, gossipStep{at: e.Now(), from: from, ttl: h.TTL})
	if h.TTL > 0 {
		e.Broadcast(hop{TTL: h.TTL - 1, Origin: h.Origin})
	}
}

// gossipRun executes one gossip cluster and returns (traces, metrics,
// end time).
func gossipRun(n int, workers int, seed int64) ([][]gossipStep, *Metrics, VirtualTime) {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &gossipNode{}
	}
	r := NewRunner(Config{
		N: n, Seed: seed, Latency: UniformLatency{Min: 1, Max: 6},
		DeliveryWorkers: workers,
	}, nodes)
	r.Run(0)
	traces := make([][]gossipStep, n)
	for i, nd := range nodes {
		traces[i] = nd.(*gossipNode).trace
	}
	return traces, r.Metrics(), r.Now()
}

// TestParallelDeliveryDeterministicAcrossWorkers pins the parallel-mode
// contract: the observable execution — per-node delivery traces, the full
// Metrics including ByType, the final virtual time — is byte-identical
// for 1, 2 and GOMAXPROCS delivery workers.
func TestParallelDeliveryDeterministicAcrossWorkers(t *testing.T) {
	const n, seed = 7, 42
	refTraces, refMetrics, refEnd := gossipRun(n, 1, seed)
	if refMetrics.MessagesDelivered == 0 {
		t.Fatal("gossip run delivered nothing")
	}
	counts := []int{2, 4, runtime.GOMAXPROCS(0)}
	for _, w := range counts {
		traces, metrics, end := gossipRun(n, w, seed)
		if end != refEnd {
			t.Fatalf("workers=%d: end time %d, want %d", w, end, refEnd)
		}
		if !reflect.DeepEqual(metrics, refMetrics) {
			t.Fatalf("workers=%d: metrics diverged:\n got %+v\nwant %+v", w, metrics, refMetrics)
		}
		if !reflect.DeepEqual(traces, refTraces) {
			t.Fatalf("workers=%d: delivery traces diverged from 1-worker run", w)
		}
	}
}

// randyNode draws from Env.Rand on every delivery — the case the serial
// fallback exists for.
type randyNode struct {
	draws []int64
	times []VirtualTime
}

func (r *randyNode) Init(e Env) {
	e.Broadcast(hop{TTL: 1})
}

func (r *randyNode) Receive(e Env, from types.ProcessID, msg Message) {
	h, ok := msg.(hop)
	if !ok {
		return
	}
	r.draws = append(r.draws, e.Rand().Int63())
	r.times = append(r.times, e.Now())
	if h.TTL > 0 {
		e.Broadcast(hop{TTL: h.TTL - 1})
	}
}

// TestParallelRandFallbackDeterministic pins the Env.Rand contract under
// parallel delivery: nodes that randomize inside Receive stay
// deterministic — identical draws and delivery times for every worker
// count — via the derived-stream-then-serial fallback.
func TestParallelRandFallbackDeterministic(t *testing.T) {
	run := func(workers int) ([][]int64, [][]VirtualTime) {
		const n = 5
		nodes := make([]Node, n)
		for i := range nodes {
			nodes[i] = &randyNode{}
		}
		r := NewRunner(Config{
			N: n, Seed: 9, Latency: UniformLatency{Min: 1, Max: 4},
			DeliveryWorkers: workers,
		}, nodes)
		r.Run(0)
		draws := make([][]int64, n)
		times := make([][]VirtualTime, n)
		for i, nd := range nodes {
			draws[i] = nd.(*randyNode).draws
			times[i] = nd.(*randyNode).times
		}
		return draws, times
	}
	refDraws, refTimes := run(1)
	var total int
	for _, d := range refDraws {
		total += len(d)
	}
	if total == 0 {
		t.Fatal("randy cluster never drew randomness")
	}
	for _, w := range []int{2, 3, 8} {
		draws, times := run(w)
		if !reflect.DeepEqual(draws, refDraws) {
			t.Fatalf("workers=%d: Rand draws diverged from 1-worker run", w)
		}
		if !reflect.DeepEqual(times, refTimes) {
			t.Fatalf("workers=%d: delivery times diverged from 1-worker run", w)
		}
	}
}

// TestParallelMatchesSerialForSingleReceiverBatches: with one receiver
// per timestamp there is no commit reordering, so parallel mode must
// coincide with serial mode exactly.
func TestParallelMatchesSerialForSingleReceiverBatches(t *testing.T) {
	run := func(workers int) ([]VirtualTime, *Metrics) {
		nodes := []Node{&silentNode{}, &pingNode{}}
		r := NewRunner(Config{N: 2, Seed: 3, Latency: UniformLatency{Min: 1, Max: 9}, DeliveryWorkers: workers}, nodes)
		r.init()
		for i := 0; i < 50; i++ {
			r.send(0, 1, ping{payload: i})
		}
		r.Run(0)
		return nodes[1].(*pingNode).times, r.Metrics()
	}
	serialTimes, serialMetrics := run(0)
	parTimes, parMetrics := run(4)
	if !reflect.DeepEqual(parTimes, serialTimes) {
		t.Fatalf("single-receiver parallel delivery diverged from serial:\n got %v\nwant %v", parTimes, serialTimes)
	}
	if !reflect.DeepEqual(parMetrics, serialMetrics) {
		t.Fatalf("single-receiver parallel metrics diverged:\n got %+v\nwant %+v", parMetrics, serialMetrics)
	}
}

// panicNode panics upon its first delivery.
type panicNode struct{}

func (panicNode) Init(e Env) { e.Broadcast(hop{}) }
func (panicNode) Receive(Env, types.ProcessID, Message) {
	panic("panicNode: boom")
}

// TestParallelPanicSurfacesOnDrivingGoroutine: a handler panic inside a
// worker must re-raise on the goroutine driving Run — that is where
// Sweep's per-seed recover sits — with a deterministic value.
func TestParallelPanicSurfacesOnDrivingGoroutine(t *testing.T) {
	for _, w := range []int{1, 3} {
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatalf("workers=%d: panic did not propagate", w)
				}
				if fmt.Sprint(v) != "panicNode: boom" {
					t.Fatalf("workers=%d: unexpected panic value %v", w, v)
				}
			}()
			nodes := []Node{panicNode{}, panicNode{}, panicNode{}}
			r := NewRunner(Config{N: 3, Seed: 1, DeliveryWorkers: w}, nodes)
			r.Run(0)
		}()
	}
}

// labeledMsg routes its metrics bucket through the Typer interface.
type labeledMsg struct{ Lane int }

func (m labeledMsg) SimType() string { return fmt.Sprintf("labeled[%d]", m.Lane) }
func (m labeledMsg) SimSize() int    { return 4 }

type labelSender struct{ silentNode }

func (labelSender) Init(e Env) {
	e.Send(e.Self(), labeledMsg{Lane: int(e.Self())})
	e.Broadcast(labeledMsg{Lane: 99})
}

// TestTyperMetricsBuckets pins the Typer contract: messages that
// implement SimType are bucketed under their own label, not their Go
// type.
func TestTyperMetricsBuckets(t *testing.T) {
	nodes := []Node{labelSender{}, labelSender{}}
	r := NewRunner(Config{N: 2, Seed: 1}, nodes)
	r.Run(0)
	by := r.Metrics().ByType
	if by["labeled[0]"] != 1 || by["labeled[1]"] != 1 {
		t.Fatalf("per-value buckets missing: %v", by)
	}
	if by["labeled[99]"] != 4 {
		t.Fatalf("broadcast bucket = %d, want 4 (%v)", by["labeled[99]"], by)
	}
	if _, ok := by["sim.labeledMsg"]; ok {
		t.Fatalf("Typer message still bucketed by Go type: %v", by)
	}
	if r.Metrics().BytesSent != 6*4 {
		t.Fatalf("BytesSent = %d, want 24", r.Metrics().BytesSent)
	}
}
