package sim

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

// pingNode sends a ping to everyone on init and counts received pings.
type pingNode struct {
	got     int
	fromSet types.Set
	times   []VirtualTime
	froms   []types.ProcessID
}

type ping struct{ payload int }

func (p ping) SimSize() int { return 8 }

func (n *pingNode) Init(e Env) {
	n.fromSet = types.NewSet(e.N())
	e.Broadcast(ping{payload: int(e.Self())})
}

func (n *pingNode) Receive(e Env, from types.ProcessID, msg Message) {
	if _, ok := msg.(ping); !ok {
		return
	}
	n.got++
	n.fromSet.Add(from)
	n.times = append(n.times, e.Now())
	n.froms = append(n.froms, from)
}

func newPingCluster(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &pingNode{}
	}
	return nodes
}

func TestBroadcastDeliversToAllIncludingSelf(t *testing.T) {
	nodes := newPingCluster(5)
	r := NewRunner(Config{N: 5, Seed: 1}, nodes)
	r.Run(0)
	for i, n := range nodes {
		pn := n.(*pingNode)
		if pn.got != 5 {
			t.Errorf("node %d got %d pings, want 5", i, pn.got)
		}
		if pn.fromSet.Count() != 5 {
			t.Errorf("node %d heard from %v", i, pn.fromSet)
		}
	}
	m := r.Metrics()
	if m.MessagesSent != 25 || m.MessagesDelivered != 25 {
		t.Errorf("metrics sent/delivered = %d/%d, want 25/25", m.MessagesSent, m.MessagesDelivered)
	}
	if m.BytesSent != 25*8 {
		t.Errorf("BytesSent = %d, want 200", m.BytesSent)
	}
	if m.ByType["sim.ping"] != 25 {
		t.Errorf("ByType = %v", m.ByType)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []VirtualTime {
		nodes := newPingCluster(6)
		r := NewRunner(Config{N: 6, Seed: seed, Latency: UniformLatency{Min: 1, Max: 50}}, nodes)
		r.Run(0)
		var all []VirtualTime
		for _, n := range nodes {
			all = append(all, n.(*pingNode).times...)
		}
		return all
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %d vs %d", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := len(a) == len(c)
	if same {
		diff := false
		for i := range a {
			if a[i] != c[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical uniform-latency traces (suspicious)")
		}
	}
}

func TestDropFilter(t *testing.T) {
	nodes := newPingCluster(4)
	// Drop everything sent by process 0 to others (keep self-delivery).
	filter := func(from, to types.ProcessID, _ Message) bool {
		return from != 0 || to == 0
	}
	r := NewRunner(Config{N: 4, Seed: 1, Filter: filter}, nodes)
	r.Run(0)
	for i := 1; i < 4; i++ {
		pn := nodes[i].(*pingNode)
		if pn.fromSet.Contains(0) {
			t.Errorf("node %d heard from 0 despite drop filter", i)
		}
		if pn.got != 3 {
			t.Errorf("node %d got %d, want 3", i, pn.got)
		}
	}
	if r.Metrics().MessagesDropped != 3 {
		t.Errorf("dropped = %d, want 3", r.Metrics().MessagesDropped)
	}
}

func TestFavoredLinksLatencyOrdersDeliveries(t *testing.T) {
	n := 6
	fav := make([]types.Set, n)
	for i := range fav {
		// Everyone favors processes 0..2.
		fav[i] = types.NewSetOf(n, 0, 1, 2)
	}
	nodes := newPingCluster(n)
	r := NewRunner(Config{
		N:       n,
		Seed:    1,
		Latency: FavoredLinksLatency{Favored: fav, Fast: 1, Slow: 1000},
	}, nodes)
	r.Run(0)
	favored := types.NewSetOf(n, 0, 1, 2)
	for i, nd := range nodes {
		pn := nd.(*pingNode)
		for k, at := range pn.times {
			fromFavored := favored.Contains(pn.froms[k])
			if at <= 10 && !fromFavored {
				t.Errorf("node %d: early delivery from unfavored %v at %d", i, pn.froms[k], at)
			}
			if at > 10 && fromFavored {
				t.Errorf("node %d: late delivery from favored %v at %d", i, pn.froms[k], at)
			}
		}
	}
}

func TestRunUntilAndLimits(t *testing.T) {
	nodes := newPingCluster(3)
	r := NewRunner(Config{N: 3, Seed: 9}, nodes)
	got := r.RunUntil(func() bool { return nodes[0].(*pingNode).got >= 2 }, 0)
	if !got {
		t.Fatal("RunUntil never satisfied")
	}
	// Limit respected.
	nodes2 := newPingCluster(3)
	r2 := NewRunner(Config{N: 3, Seed: 9}, nodes2)
	if p := r2.Run(4); p != 4 {
		t.Fatalf("Run(4) processed %d", p)
	}
	if r2.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", r2.Pending())
	}
}

func TestCrashNode(t *testing.T) {
	n := 4
	nodes := make([]Node, n)
	for i := 0; i < n-1; i++ {
		nodes[i] = &pingNode{}
	}
	crashed := &CrashNode{Inner: &pingNode{}, CrashAt: 0}
	nodes[n-1] = crashed
	r := NewRunner(Config{N: n, Seed: 1}, nodes)
	r.Run(0)
	if !crashed.Crashed() {
		t.Error("CrashAt=0 node should be crashed")
	}
	for i := 0; i < n-1; i++ {
		pn := nodes[i].(*pingNode)
		if pn.fromSet.Contains(types.ProcessID(n - 1)) {
			t.Errorf("node %d heard from crashed node", i)
		}
		if pn.got != n-1 {
			t.Errorf("node %d got %d, want %d", i, pn.got, n-1)
		}
	}
}

// TestCrashNodeBoundaryAtCrashAt pins the fail-stop boundary semantics: a
// message arriving strictly before CrashAt is processed; a message
// arriving exactly AT CrashAt is not (Receive checks Now() >= CrashAt).
// The satellite suites (and any experiment scheduling crashes against
// known latencies) rely on this half-open [start, CrashAt) live window.
func TestCrashNodeBoundaryAtCrashAt(t *testing.T) {
	inner := &arrivalProbe{}
	crash := &CrashNode{Inner: inner, CrashAt: 5}
	nodes := []Node{&silentNode{}, crash}
	// Process 0 sends two pings to the crash node: one arriving at time 4
	// (processed) and one arriving exactly at time 5 (dropped).
	lat := LatencyFunc(func(_, _ types.ProcessID, msg Message, _ VirtualTime, _ *rand.Rand) VirtualTime {
		return VirtualTime(msg.(ping).payload)
	})
	r := NewRunner(Config{N: 2, Seed: 1, Latency: lat}, nodes)
	r.init()
	r.send(0, 1, ping{payload: 4})
	r.send(0, 1, ping{payload: 5})
	r.Run(0)
	if len(inner.times) != 1 || inner.times[0] != 4 {
		t.Fatalf("processed arrival times = %v, want exactly [4] (the at-CrashAt arrival must be dropped)", inner.times)
	}
	if !crash.Crashed() {
		t.Fatal("node should have fail-stopped at the CrashAt arrival")
	}
}

// arrivalProbe records arrival times and sends nothing, so the only
// traffic in its cluster is what the test injects.
type arrivalProbe struct {
	times []VirtualTime
}

func (*arrivalProbe) Init(Env) {}
func (p *arrivalProbe) Receive(e Env, _ types.ProcessID, _ Message) {
	p.times = append(p.times, e.Now())
}

func TestMuteNode(t *testing.T) {
	nodes := []Node{&pingNode{}, MuteNode{}, &pingNode{}}
	r := NewRunner(Config{N: 3, Seed: 1}, nodes)
	r.Run(0)
	if nodes[0].(*pingNode).fromSet.Contains(1) {
		t.Error("heard from mute node")
	}
}

func TestTimeAdvancesMonotonically(t *testing.T) {
	nodes := newPingCluster(5)
	r := NewRunner(Config{N: 5, Seed: 3, Latency: UniformLatency{Min: 0, Max: 20}}, nodes)
	last := VirtualTime(-1)
	for r.Step() {
		if r.Now() < last {
			t.Fatalf("time went backwards: %d after %d", r.Now(), last)
		}
		last = r.Now()
	}
}

func TestUniformLatencyInvertedRangeNormalizes(t *testing.T) {
	// A transposed literal must behave exactly like the intended range —
	// same seeded draws, same bounds — not collapse to Min.
	straight := UniformLatency{Min: 1, Max: 20}
	inverted := UniformLatency{Min: 20, Max: 1}
	rngA := rand.New(rand.NewSource(7))
	rngB := rand.New(rand.NewSource(7))
	sawAboveMin := false
	for i := 0; i < 200; i++ {
		a := straight.Delay(0, 1, nil, 0, rngA)
		b := inverted.Delay(0, 1, nil, 0, rngB)
		if a != b {
			t.Fatalf("draw %d: inverted range delay %d != normalized %d", i, b, a)
		}
		if b < 1 || b > 20 {
			t.Fatalf("draw %d: delay %d outside [1,20]", i, b)
		}
		if b > 1 {
			sawAboveMin = true
		}
	}
	if !sawAboveMin {
		t.Fatal("inverted range still collapses every delay to the lower bound")
	}
	// Degenerate point range stays constant.
	if d := (UniformLatency{Min: 5, Max: 5}).Delay(0, 1, nil, 0, rand.New(rand.NewSource(1))); d != 5 {
		t.Fatalf("point range delay = %d, want 5", d)
	}
}

func TestFavoredLinksLatencyOutOfRangeFallsBack(t *testing.T) {
	fav := []types.Set{types.NewSetOf(3, 1)}
	m := FavoredLinksLatency{Favored: fav, Fast: 1, Slow: 50}
	if d := m.Delay(1, 0, nil, 0, nil); d != 1 {
		t.Fatalf("favored link delay = %d, want Fast", d)
	}
	// Receiver beyond the configured slice: Slow, not a panic.
	if d := m.Delay(1, 2, nil, 0, nil); d != 50 {
		t.Fatalf("out-of-range receiver delay = %d, want Slow", d)
	}
	// Entirely unconfigured model.
	none := FavoredLinksLatency{Fast: 1, Slow: 50}
	if d := none.Delay(0, 1, nil, 0, nil); d != 50 {
		t.Fatalf("nil Favored delay = %d, want Slow", d)
	}
	// A cluster larger than the Favored slice now runs to quiescence.
	nodes := newPingCluster(4)
	r := NewRunner(Config{N: 4, Seed: 1, Latency: FavoredLinksLatency{Favored: fav[:1], Fast: 1, Slow: 9}}, nodes)
	r.Run(0)
	if got := nodes[3].(*pingNode).got; got != 4 {
		t.Fatalf("node beyond Favored got %d pings, want 4", got)
	}
}

// TestStepDeliveryDoesNotAllocate pins the pooled-Env invariant: once the
// run is warmed up, delivering an event must not allocate — the env
// boxing this replaces used to be the dominant allocator of message-heavy
// runs.
func TestStepDeliveryDoesNotAllocate(t *testing.T) {
	nodes := make([]Node, 2)
	for i := range nodes {
		nodes[i] = &silentNode{}
	}
	r := NewRunner(Config{N: 2, Seed: 1}, nodes)
	r.init()
	const events = 400
	for i := 0; i < events; i++ {
		r.send(0, 1, ping{payload: i})
	}
	allocs := testing.AllocsPerRun(events/4, func() {
		if !r.Step() {
			t.Fatal("queue drained early")
		}
	})
	if allocs != 0 {
		t.Fatalf("Step allocates %.1f objects per delivery, want 0", allocs)
	}
}

// silentNode consumes messages without reacting.
type silentNode struct{}

func (silentNode) Init(Env)                              {}
func (silentNode) Receive(Env, types.ProcessID, Message) {}
