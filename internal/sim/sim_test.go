package sim

import (
	"testing"

	"repro/internal/types"
)

// pingNode sends a ping to everyone on init and counts received pings.
type pingNode struct {
	got     int
	fromSet types.Set
	times   []VirtualTime
	froms   []types.ProcessID
}

type ping struct{ payload int }

func (p ping) SimSize() int { return 8 }

func (n *pingNode) Init(e Env) {
	n.fromSet = types.NewSet(e.N())
	e.Broadcast(ping{payload: int(e.Self())})
}

func (n *pingNode) Receive(e Env, from types.ProcessID, msg Message) {
	if _, ok := msg.(ping); !ok {
		return
	}
	n.got++
	n.fromSet.Add(from)
	n.times = append(n.times, e.Now())
	n.froms = append(n.froms, from)
}

func newPingCluster(n int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &pingNode{}
	}
	return nodes
}

func TestBroadcastDeliversToAllIncludingSelf(t *testing.T) {
	nodes := newPingCluster(5)
	r := NewRunner(Config{N: 5, Seed: 1}, nodes)
	r.Run(0)
	for i, n := range nodes {
		pn := n.(*pingNode)
		if pn.got != 5 {
			t.Errorf("node %d got %d pings, want 5", i, pn.got)
		}
		if pn.fromSet.Count() != 5 {
			t.Errorf("node %d heard from %v", i, pn.fromSet)
		}
	}
	m := r.Metrics()
	if m.MessagesSent != 25 || m.MessagesDelivered != 25 {
		t.Errorf("metrics sent/delivered = %d/%d, want 25/25", m.MessagesSent, m.MessagesDelivered)
	}
	if m.BytesSent != 25*8 {
		t.Errorf("BytesSent = %d, want 200", m.BytesSent)
	}
	if m.ByType["sim.ping"] != 25 {
		t.Errorf("ByType = %v", m.ByType)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []VirtualTime {
		nodes := newPingCluster(6)
		r := NewRunner(Config{N: 6, Seed: seed, Latency: UniformLatency{Min: 1, Max: 50}}, nodes)
		r.Run(0)
		var all []VirtualTime
		for _, n := range nodes {
			all = append(all, n.(*pingNode).times...)
		}
		return all
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %d vs %d", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := len(a) == len(c)
	if same {
		diff := false
		for i := range a {
			if a[i] != c[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical uniform-latency traces (suspicious)")
		}
	}
}

func TestDropFilter(t *testing.T) {
	nodes := newPingCluster(4)
	// Drop everything sent by process 0 to others (keep self-delivery).
	filter := func(from, to types.ProcessID, _ Message) bool {
		return from != 0 || to == 0
	}
	r := NewRunner(Config{N: 4, Seed: 1, Filter: filter}, nodes)
	r.Run(0)
	for i := 1; i < 4; i++ {
		pn := nodes[i].(*pingNode)
		if pn.fromSet.Contains(0) {
			t.Errorf("node %d heard from 0 despite drop filter", i)
		}
		if pn.got != 3 {
			t.Errorf("node %d got %d, want 3", i, pn.got)
		}
	}
	if r.Metrics().MessagesDropped != 3 {
		t.Errorf("dropped = %d, want 3", r.Metrics().MessagesDropped)
	}
}

func TestFavoredLinksLatencyOrdersDeliveries(t *testing.T) {
	n := 6
	fav := make([]types.Set, n)
	for i := range fav {
		// Everyone favors processes 0..2.
		fav[i] = types.NewSetOf(n, 0, 1, 2)
	}
	nodes := newPingCluster(n)
	r := NewRunner(Config{
		N:       n,
		Seed:    1,
		Latency: FavoredLinksLatency{Favored: fav, Fast: 1, Slow: 1000},
	}, nodes)
	r.Run(0)
	favored := types.NewSetOf(n, 0, 1, 2)
	for i, nd := range nodes {
		pn := nd.(*pingNode)
		for k, at := range pn.times {
			fromFavored := favored.Contains(pn.froms[k])
			if at <= 10 && !fromFavored {
				t.Errorf("node %d: early delivery from unfavored %v at %d", i, pn.froms[k], at)
			}
			if at > 10 && fromFavored {
				t.Errorf("node %d: late delivery from favored %v at %d", i, pn.froms[k], at)
			}
		}
	}
}

func TestRunUntilAndLimits(t *testing.T) {
	nodes := newPingCluster(3)
	r := NewRunner(Config{N: 3, Seed: 9}, nodes)
	got := r.RunUntil(func() bool { return nodes[0].(*pingNode).got >= 2 }, 0)
	if !got {
		t.Fatal("RunUntil never satisfied")
	}
	// Limit respected.
	nodes2 := newPingCluster(3)
	r2 := NewRunner(Config{N: 3, Seed: 9}, nodes2)
	if p := r2.Run(4); p != 4 {
		t.Fatalf("Run(4) processed %d", p)
	}
	if r2.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", r2.Pending())
	}
}

func TestCrashNode(t *testing.T) {
	n := 4
	nodes := make([]Node, n)
	for i := 0; i < n-1; i++ {
		nodes[i] = &pingNode{}
	}
	crashed := &CrashNode{Inner: &pingNode{}, CrashAt: 0}
	nodes[n-1] = crashed
	r := NewRunner(Config{N: n, Seed: 1}, nodes)
	r.Run(0)
	if !crashed.Crashed() {
		t.Error("CrashAt=0 node should be crashed")
	}
	for i := 0; i < n-1; i++ {
		pn := nodes[i].(*pingNode)
		if pn.fromSet.Contains(types.ProcessID(n - 1)) {
			t.Errorf("node %d heard from crashed node", i)
		}
		if pn.got != n-1 {
			t.Errorf("node %d got %d, want %d", i, pn.got, n-1)
		}
	}
}

func TestMuteNode(t *testing.T) {
	nodes := []Node{&pingNode{}, MuteNode{}, &pingNode{}}
	r := NewRunner(Config{N: 3, Seed: 1}, nodes)
	r.Run(0)
	if nodes[0].(*pingNode).fromSet.Contains(1) {
		t.Error("heard from mute node")
	}
}

func TestTimeAdvancesMonotonically(t *testing.T) {
	nodes := newPingCluster(5)
	r := NewRunner(Config{N: 5, Seed: 3, Latency: UniformLatency{Min: 0, Max: 20}}, nodes)
	last := VirtualTime(-1)
	for r.Step() {
		if r.Now() < last {
			t.Fatalf("time went backwards: %d after %d", r.Now(), last)
		}
		last = r.Now()
	}
}
