package sim

import (
	"testing"

	"repro/internal/wire"
)

// wireSized is registered with the wire codec AND implements Sizer with a
// deliberately wrong answer, so the test can observe which source
// MessageSize prefers.
type wireSized struct{ V uint64 }

func (wireSized) SimSize() int { return 999 }

// sizerOnly has no wire codec — the pure-simulation fallback path.
type sizerOnly struct{}

func (sizerOnly) SimSize() int { return 17 }

type neither struct{}

// TestMessageSizePrefersWireCodec pins the resolution order behind the
// simulator's byte metrics: exact wire frame length for registered types,
// Sizer approximation otherwise, 1 as the last resort.
func TestMessageSizePrefersWireCodec(t *testing.T) {
	wire.Register(1100, wireSized{}, wire.Codec{ // test-local tag range
		Size:   func(msg any) (int, bool) { return wire.UvarintSize(msg.(wireSized).V), true },
		Append: func(dst []byte, msg any) ([]byte, error) { return wire.AppendUvarint(dst, msg.(wireSized).V), nil },
		Decode: func(b []byte) (any, []byte, error) {
			v, rest, err := wire.ReadUvarint(b)
			if err != nil {
				return nil, b, err
			}
			return wireSized{V: v}, rest, nil
		},
	})
	msg := wireSized{V: 300}
	enc, err := wire.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got := MessageSize(msg); got != len(enc) {
		t.Fatalf("MessageSize %d, want exact wire length %d (not Sizer's 999)", got, len(enc))
	}
	if got := MessageSize(sizerOnly{}); got != 17 {
		t.Fatalf("Sizer fallback returned %d, want 17", got)
	}
	if got := MessageSize(neither{}); got != 1 {
		t.Fatalf("default size returned %d, want 1", got)
	}
}
