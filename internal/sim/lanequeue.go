package sim

// The sharded event queue: per-receiver lanes merged through a tournament
// tree.
//
// A single global heap orders all pending events by (time, seq), so every
// push/pop costs O(log total-pending) and the scheduler learns nothing
// about *where* the frontier events go. laneQueue shards the pending set
// by destination instead: one small (time, seq)-ordered binary heap per
// receiver process (a "lane"), merged through a winner tournament tree
// over the lane heads. Push and pop then cost O(log lane-depth + log n),
// where lane depth is the receiver's own backlog — in broadcast-heavy
// protocols the total pending set is ~n× deeper than any one lane — and
// the merge front exposes the frontier structure the parallel delivery
// stage needs: the winning lane is the next receiver, and draining every
// event at the frontier timestamp visits exactly the lanes with same-time
// deliveries.
//
// Ordering contract: (time, seq) is a total order (seq is globally unique
// and monotone), each lane is itself (time, seq)-ordered, and the
// tournament always elects the lane with the globally least head — so the
// pop sequence is byte-identical to the single 4-ary heap this replaces.
// The differential suite in lanequeue_test.go pins that equivalence on
// randomized workloads (duplicate timestamps, interleaved pushes,
// single-receiver floods) against a retained copy of the old heap.
//
// Tournament representation: the classic implicit complete binary tree
// for k-way merging. Conceptual nodes are numbered 1..2k-1; leaf j (for
// j in [k, 2k)) is lane j-k, internal node j (for j in [1, k)) has
// children 2j and 2j+1 and stores, in tour[j], the winning lane of the
// match between its two subtrees. tour[1] is therefore the overall
// winner. This shape is well-formed for every k ≥ 2 (not just powers of
// two): each internal node has exactly two children and leaf depths
// differ by at most one. Updating after a lane's head changes replays
// only the matches on that leaf's root path — O(log k) comparisons.
type laneQueue struct {
	lanes [][]event // lanes[p]: binary min-heap of events for receiver p
	tour  []int32   // tour[1..k-1]: winning lane of each internal match
	k     int
	size  int
}

// init sizes the queue for k receiver lanes.
func (q *laneQueue) init(k int) {
	q.k = k
	q.lanes = make([][]event, k)
	q.size = 0
	if k >= 2 {
		q.tour = make([]int32, k)
		for j := k - 1; j >= 1; j-- {
			q.tour[j] = q.match(j)
		}
	}
}

func (q *laneQueue) Len() int { return q.size }

// contender returns the winning lane of conceptual tree node j.
func (q *laneQueue) contender(j int) int32 {
	if j >= q.k {
		return int32(j - q.k)
	}
	return q.tour[j]
}

// laneLess reports whether lane a's head strictly beats lane b's. An
// empty lane never beats anything; two empty lanes compare equal (the
// caller's left-bias then keeps the choice deterministic).
func (q *laneQueue) laneLess(a, b int32) bool {
	la, lb := q.lanes[a], q.lanes[b]
	if len(la) == 0 {
		return false
	}
	if len(lb) == 0 {
		return true
	}
	return eventLess(&la[0], &lb[0])
}

// match replays the match at internal node j and returns the winner.
func (q *laneQueue) match(j int) int32 {
	a, b := q.contender(2*j), q.contender(2*j+1)
	if q.laneLess(b, a) {
		return b
	}
	return a
}

// update replays the matches on lane's root path after its head changed.
// The walk stops as soon as a match is won by the same lane as before and
// that lane is not the one whose key changed: only `lane`'s key moved, so
// every ancestor match then sees inputs identical to before the update.
// Most pushes of non-frontier events therefore stop after one match,
// which is what keeps the tournament cheaper than re-sifting a global
// heap on small clusters.
func (q *laneQueue) update(lane int) {
	l32 := int32(lane)
	for j := (lane + q.k) >> 1; j >= 1; j >>= 1 {
		w := q.match(j)
		if w == q.tour[j] && w != l32 {
			return
		}
		q.tour[j] = w
	}
}

// winnerLane returns the lane holding the globally least pending event.
// Only meaningful when size > 0.
func (q *laneQueue) winnerLane() int32 {
	if q.k < 2 {
		return 0
	}
	return q.tour[1]
}

// head returns the globally least pending event without removing it, or
// nil when the queue is empty.
func (q *laneQueue) head() *event {
	if q.size == 0 {
		return nil
	}
	return &q.lanes[q.winnerLane()][0]
}

// push enqueues e into its receiver's lane; the tournament is replayed
// only when the lane's head actually changed.
func (q *laneQueue) push(e event) {
	lane := int(e.to)
	h := q.lanes[lane]
	headChanged := len(h) == 0 || eventLess(&e, &h[0])
	// Binary sift-up with the hole technique: move parents into the
	// vacated slot and write e once. Each copied event crosses a GC write
	// barrier (Message is an interface), so halving the copies matters as
	// much here as it did in the heap this replaces.
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(&e, &h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
	q.lanes[lane] = h
	q.size++
	if headChanged && q.k >= 2 {
		q.update(lane)
	}
}

// pop removes and returns the globally least pending event.
func (q *laneQueue) pop() event {
	w := q.winnerLane()
	h := q.lanes[w]
	ev := h[0]
	last := len(h) - 1
	moved := h[last]
	h[last] = event{} // release the Message reference
	h = h[:last]
	if last > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= last {
				break
			}
			if c+1 < last && eventLess(&h[c+1], &h[c]) {
				c++
			}
			if !eventLess(&h[c], &moved) {
				break
			}
			h[i] = h[c]
			i = c
		}
		h[i] = moved
	}
	q.lanes[w] = h
	q.size--
	if q.k >= 2 {
		q.update(int(w))
	}
	return ev
}
