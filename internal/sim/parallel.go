package sim

import (
	"math/rand"
	"slices"

	"repro/internal/types"
)

// Parallel same-time delivery. ---------------------------------------------
//
// A fully asynchronous execution is a linearization of events by virtual
// time, but events that share a timestamp and go to *distinct* receivers
// touch disjoint node state: delivering them in either order produces the
// same node states, and only the order in which their *effects* (sends,
// broadcasts, metrics) are applied to the shared scheduler is observable.
// Parallel mode exploits exactly that window. One timestamp batch runs as:
//
//  1. Drain: every event at the frontier timestamp is popped (in (time,
//     seq) order — the lane queue's merge front makes the frontier cheap
//     to enumerate) and partitioned by receiver, preserving per-receiver
//     seq order.
//  2. Execute: each receiver's events run on a bounded worker pool, one
//     receiver at a time per worker, against a buffering Env — Send and
//     Broadcast only record (destination, message) intents; nothing
//     touches the queue, the RNG, the metrics or the sequence counter.
//  3. Commit: back on the driving goroutine, the buffered effects are
//     applied in ascending receiver-ID order (and, within a receiver, in
//     emission order). Latency draws, sequence numbers, drop-filter calls
//     and metrics counters all happen here, against the run's single
//     seeded RNG.
//
// Determinism contract: the batch content is a function of queue state,
// the per-receiver event order is the serial pop order, node state is
// touched only by the (single) worker executing that node, and every
// shared-state mutation happens in the fixed commit order. The observable
// execution — node states, Metrics including ByType, final virtual time —
// is therefore a pure function of the seed: byte-identical for 1, 2 or
// GOMAXPROCS delivery workers. It is *not* required to coincide with
// serial mode (commit order re-sequences the RNG draws within a
// timestamp), and in general it does not; serial mode remains the default
// and is what the single-heap differential tests pin.
//
// Randomness: Env.Rand hands out the run's single RNG stream, which
// cannot be shared by concurrent handlers. Any timestamp batch containing
// a receiver that has previously called Env.Rand is delivered serially
// (in pop order, exactly like serial mode delivers it), keeping flagged
// nodes on the master stream. The first-ever Rand call a node makes
// *inside* a concurrently executing handler cannot be known in advance;
// it is served from a private stream derived from (seed, timestamp,
// receiver) — still a pure function of the seed, still worker-count
// independent — and flags the node so every later timestamp it appears in
// runs serial. Nodes that randomize during Init (which always runs
// serially) are flagged before the first batch ever forms.
//
// Single-receiver batches take the serial path too: with no concurrency
// to exploit, direct execution against the real Env is byte-identical to
// buffer-and-commit and skips the buffering overhead.

// parEnv is the buffering Env handed to Receive handlers that execute
// concurrently. Only the worker that owns the receiver touches it during
// a batch; the driving goroutine drains it at commit.
type parEnv struct {
	r       *Runner
	self    types.ProcessID
	effects []effect
	rnd     *rand.Rand
}

// effect is one buffered Send or Broadcast intent.
type effect struct {
	to  types.ProcessID
	msg Message
	bc  bool
}

var _ Env = (*parEnv)(nil)

func (e *parEnv) Self() types.ProcessID { return e.self }
func (e *parEnv) N() int                { return e.r.cfg.N }
func (e *parEnv) Now() VirtualTime      { return e.r.now }

func (e *parEnv) Send(to types.ProcessID, msg Message) {
	e.effects = append(e.effects, effect{to: to, msg: msg})
}

func (e *parEnv) Broadcast(msg Message) {
	e.effects = append(e.effects, effect{bc: true, msg: msg})
}

// Rand serves a node's first-ever randomness demand inside a concurrent
// handler: a private stream derived from (seed, now, self), plus the
// sticky flag that forces the node's future timestamps serial. See the
// package comment above for why this is the only sound realization.
func (e *parEnv) Rand() *rand.Rand {
	if e.rnd == nil {
		e.r.randUsed[e.self] = true
		e.rnd = rand.New(rand.NewSource(deriveRandSeed(e.r.cfg.Seed, e.r.now, e.self)))
	}
	return e.rnd
}

// deriveRandSeed mixes (seed, at, self) through a splitmix64 finalizer so
// the derived stream is decorrelated from the master stream and from
// every other (timestamp, receiver) pair.
func deriveRandSeed(seed int64, at VirtualTime, self types.ProcessID) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z ^= uint64(at) * 0xbf58476d1ce4e5b9
	z ^= uint64(self) * 0x94d049bb133111eb
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// stepBatch delivers every pending event at the frontier timestamp and
// returns how many were processed (0 on quiescence). Only called when
// cfg.DeliveryWorkers > 0.
func (r *Runner) stepBatch() int {
	r.init()
	if r.queue.Len() == 0 {
		return 0
	}
	t := r.queue.head().at
	r.now = t
	r.batch = r.batch[:0]
	for r.queue.Len() > 0 && r.queue.head().at == t {
		ev := r.queue.pop()
		if r.cfg.Fault != nil {
			// The delivery hook runs at the drain point, on the driving
			// goroutine, in pop order — the same deterministic commit
			// discipline as serial Step. A redelivered copy lands at a
			// strictly later timestamp, so it never joins this batch.
			r.maybeRedeliver(&ev)
		}
		r.batch = append(r.batch, ev)
	}
	n := len(r.batch)
	r.metrics.MessagesDelivered += n

	// Partition by receiver; per-receiver order is the pop (= seq) order.
	r.active = r.active[:0]
	serial := false
	for i := range r.batch {
		to := int(r.batch[i].to)
		if len(r.perRecv[to]) == 0 {
			r.active = append(r.active, to)
			if r.randUsed[to] {
				serial = true
			}
		}
		r.perRecv[to] = append(r.perRecv[to], r.batch[i])
	}

	if serial || len(r.active) == 1 {
		// Serial fallback: pop-order delivery against the real envs,
		// exactly what serial mode would do with this prefix of the queue.
		for _, to := range r.active {
			r.releaseRecv(to)
		}
		for i := range r.batch {
			e := &r.batch[i]
			r.nodes[e.to].Receive(&r.envs[e.to], e.from, e.msg)
			r.batch[i] = event{}
		}
		return n
	}
	slices.Sort(r.active) // commit order: ascending receiver ID

	workers := r.cfg.DeliveryWorkers
	if workers > len(r.active) {
		workers = len(r.active)
	}
	if workers == 1 {
		// One worker needs no goroutines: execute the receivers inline,
		// still against the buffering envs, so the observable behaviour
		// is byte-identical to the multi-worker path without its
		// synchronization overhead.
		for i := range r.active {
			r.runReceiver(i)
		}
	} else {
		// Persistent pool: wake the first `workers` pooled goroutines and
		// wait for the batch. Spawning per batch used to dominate small
		// batches (goroutine creation + stack setup per timestamp); the
		// pool pays one channel send and one WaitGroup Done per worker
		// per batch instead. Work distribution (the shared poolNext
		// counter) and the commit discipline are unchanged, so observable
		// behaviour stays byte-identical across worker counts.
		r.ensurePool()
		r.poolNext.Store(0)
		r.poolBatch.Add(workers)
		for w := 0; w < workers; w++ {
			r.poolWake[w] <- struct{}{}
		}
		r.poolBatch.Wait()
	}

	// Re-raise the panic of the smallest panicking receiver ID on the
	// driving goroutine — sweeps recover per-seed there, and picking the
	// smallest keeps the surfaced value worker-count independent.
	for i := range r.active {
		if v := r.panicVals[i]; v != nil {
			r.panicVals[i] = nil
			panic(v)
		}
	}

	// Commit: apply buffered effects in ascending receiver-ID order.
	for _, to := range r.active {
		pe := &r.parEnvs[to]
		for i := range pe.effects {
			ef := &pe.effects[i]
			if ef.bc {
				r.broadcast(pe.self, ef.msg)
			} else {
				r.send(pe.self, ef.to, ef.msg)
			}
			ef.msg = nil
		}
		pe.effects = pe.effects[:0]
		pe.rnd = nil
		r.releaseRecv(to)
	}
	for i := range r.batch {
		r.batch[i] = event{}
	}
	return n
}

// runReceiver executes all batch events of the idx-th active receiver
// against its buffering env, capturing a panic into its deterministic
// slot.
func (r *Runner) runReceiver(idx int) {
	defer func() {
		if v := recover(); v != nil {
			r.panicVals[idx] = v
		}
	}()
	to := r.active[idx]
	pe := &r.parEnvs[to]
	node := r.nodes[to]
	evs := r.perRecv[to]
	for i := range evs {
		node.Receive(pe, evs[i].from, evs[i].msg)
	}
}

// releaseRecv clears a receiver's batch slice, dropping its Message
// references while keeping the backing array for the next batch.
func (r *Runner) releaseRecv(to int) {
	evs := r.perRecv[to]
	for i := range evs {
		evs[i] = event{}
	}
	r.perRecv[to] = evs[:0]
}

// Persistent worker pool. --------------------------------------------------
//
// The pool's lifetime is one Run/RunUntil invocation: ensurePool starts it
// lazily at the first batch that needs more than one worker, and the
// deferred stopPool in Run/RunUntil tears it down (including on panic
// unwind) — so an abandoned Runner never leaks goroutines, and a sweep
// creating thousands of Runners holds pooled goroutines only for runs in
// flight.

// ensurePool starts the persistent worker pool if it is not running.
func (r *Runner) ensurePool() {
	if r.poolWake != nil {
		return
	}
	r.poolWake = make([]chan struct{}, r.cfg.DeliveryWorkers)
	r.poolExited.Add(len(r.poolWake))
	for w := range r.poolWake {
		ch := make(chan struct{}, 1)
		r.poolWake[w] = ch
		go r.poolWorker(ch)
	}
}

// poolWorker is one pooled delivery goroutine: each wake-up corresponds to
// exactly one batch (the per-worker channel guarantees a fast worker can't
// consume a second token), and channel close is the shutdown signal.
func (r *Runner) poolWorker(wake chan struct{}) {
	defer r.poolExited.Done()
	for range wake {
		for {
			i := int(r.poolNext.Add(1)) - 1
			if i >= len(r.active) {
				break
			}
			r.runReceiver(i)
		}
		r.poolBatch.Done()
	}
}

// stopPool shuts the pool down and waits for the workers to exit. The next
// multi-worker batch restarts it.
func (r *Runner) stopPool() {
	if r.poolWake == nil {
		return
	}
	for _, ch := range r.poolWake {
		close(ch)
	}
	r.poolExited.Wait()
	r.poolWake = nil
}
