package sim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/types"
)

// sweepTrace runs a ping cluster for one seed and renders everything
// observable about it — delivery times, senders, metrics — into one string,
// so worker-count comparisons are byte-level.
func sweepTrace(seed int64) string {
	nodes := newPingCluster(5)
	r := NewRunner(Config{N: 5, Seed: seed, Latency: UniformLatency{Min: 1, Max: 40}}, nodes)
	r.Run(0)
	var b strings.Builder
	for i, n := range nodes {
		pn := n.(*pingNode)
		fmt.Fprintf(&b, "node %d: times=%v froms=%v\n", i, pn.times, pn.froms)
	}
	m := r.Metrics()
	fmt.Fprintf(&b, "metrics: sent=%d delivered=%d dropped=%d bytes=%d bytype=%v\n",
		m.MessagesSent, m.MessagesDelivered, m.MessagesDropped, m.BytesSent, m.ByType)
	return b.String()
}

func TestSeedRange(t *testing.T) {
	seeds := SeedRange(10, 4)
	want := []int64{10, 11, 12, 13}
	if len(seeds) != len(want) {
		t.Fatalf("SeedRange length %d, want %d", len(seeds), len(want))
	}
	for i := range want {
		if seeds[i] != want[i] {
			t.Errorf("SeedRange[%d] = %d, want %d", i, seeds[i], want[i])
		}
	}
	if got := SeedRange(0, 0); len(got) != 0 {
		t.Errorf("empty SeedRange returned %v", got)
	}
}

func TestSweepValuesPositionedBySeed(t *testing.T) {
	seeds := []int64{7, 3, 11, 5}
	res := Sweep(seeds, 2, func(seed int64) int64 { return seed * 10 })
	for i, s := range seeds {
		if res.Seeds[i] != s {
			t.Errorf("Seeds[%d] = %d, want %d", i, res.Seeds[i], s)
		}
		if res.Values[i] != s*10 {
			t.Errorf("Values[%d] = %d, want %d", i, res.Values[i], s*10)
		}
	}
	if err := res.Err(); err != nil {
		t.Errorf("unexpected sweep error: %v", err)
	}
}

// TestSweepWorkerCountIndependence is the acceptance check of the sweep
// determinism contract: identical aggregated output for worker counts 1, 2
// and GOMAXPROCS, byte for byte.
func TestSweepWorkerCountIndependence(t *testing.T) {
	seeds := SeedRange(1, 32)
	render := func(workers int) string {
		res := Sweep(seeds, workers, sweepTrace)
		if err := res.Err(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return Reduce(res, "", func(acc string, seed int64, v string) string {
			return acc + fmt.Sprintf("== seed %d ==\n%s", seed, v)
		})
	}
	serial := render(1)
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		if got := render(workers); got != serial {
			t.Errorf("sweep output differs between 1 and %d workers:\n--- 1 worker ---\n%s\n--- %d workers ---\n%s",
				workers, serial, workers, got)
		}
	}
}

func TestSweepPanicCaptureReportsSeed(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	res := Sweep(seeds, 3, func(seed int64) int {
		if seed == 4 {
			panic("boom")
		}
		return int(seed)
	})
	err := res.Err()
	if err == nil {
		t.Fatal("panicking run not surfaced")
	}
	if !strings.Contains(err.Error(), "seed 4") || !strings.Contains(err.Error(), "boom") {
		t.Errorf("error should name seed and panic value: %v", err)
	}
	panics := res.Panics()
	if len(panics) != 1 || panics[0].Seed != 4 || panics[0].Index != 3 {
		t.Fatalf("panics = %+v", panics)
	}
	if len(panics[0].Stack) == 0 {
		t.Error("panic stack not captured")
	}
	if res.PanicAt(3) == nil || res.PanicAt(0) != nil {
		t.Error("PanicAt mislocates the panicked index")
	}
	// The healthy runs still completed, and Reduce skips the panicked one.
	sum := Reduce(res, 0, func(acc int, _ int64, v int) int { return acc + v })
	if sum != 1+2+3+5 {
		t.Errorf("Reduce over non-panicked runs = %d, want %d", sum, 1+2+3+5)
	}
}

func TestSweepReduceAppliesInSeedOrder(t *testing.T) {
	seeds := []int64{9, 1, 6, 2}
	res := Sweep(seeds, 4, func(seed int64) int64 { return seed })
	order := Reduce(res, []int64(nil), func(acc []int64, seed int64, v int64) []int64 {
		if seed != v {
			t.Errorf("value %d paired with seed %d", v, seed)
		}
		return append(acc, seed)
	})
	for i := range seeds {
		if order[i] != seeds[i] {
			t.Fatalf("reduce order %v, want %v", order, seeds)
		}
	}
}

func TestSweepEmptyAndOversizedPool(t *testing.T) {
	res := Sweep(nil, 8, func(seed int64) int { return 1 })
	if len(res.Values) != 0 || res.Err() != nil {
		t.Errorf("empty sweep: %+v", res)
	}
	// More workers than seeds must not deadlock or duplicate work.
	res = Sweep([]int64{1, 2}, 16, func(seed int64) int { return int(seed) })
	if res.Values[0] != 1 || res.Values[1] != 2 {
		t.Errorf("oversized pool values = %v", res.Values)
	}
}

func TestMergeMetrics(t *testing.T) {
	a := &Metrics{MessagesSent: 3, MessagesDelivered: 2, MessagesDropped: 1, BytesSent: 30,
		ByType: map[string]int{"sim.ping": 3}}
	b := &Metrics{MessagesSent: 5, MessagesDelivered: 5, BytesSent: 50,
		ByType: map[string]int{"sim.ping": 4, "sim.pong": 1}}
	m := MergeMetrics(a, nil, b)
	if m.MessagesSent != 8 || m.MessagesDelivered != 7 || m.MessagesDropped != 1 || m.BytesSent != 80 {
		t.Errorf("merged scalars = %+v", m)
	}
	if m.ByType["sim.ping"] != 7 || m.ByType["sim.pong"] != 1 {
		t.Errorf("merged ByType = %v", m.ByType)
	}
}

// TestSendDropAccounting pins the metric semantics of filtered messages:
// dropped messages contribute to MessagesDropped only — not to
// MessagesSent, BytesSent or the per-type counters.
func TestSendDropAccounting(t *testing.T) {
	nodes := newPingCluster(4)
	filter := func(from, to types.ProcessID, _ Message) bool {
		return from != 0 || to == 0 // drop 0's sends to others
	}
	r := NewRunner(Config{N: 4, Seed: 1, Filter: filter}, nodes)
	r.Run(0)
	m := r.Metrics()
	if m.MessagesDropped != 3 {
		t.Errorf("dropped = %d, want 3", m.MessagesDropped)
	}
	if m.MessagesSent != 13 { // 16 broadcasts minus the 3 dropped
		t.Errorf("sent = %d, want 13 (dropped messages must not count as sent)", m.MessagesSent)
	}
	if m.MessagesSent != m.MessagesDelivered {
		t.Errorf("sent=%d delivered=%d; with drops excluded they must match", m.MessagesSent, m.MessagesDelivered)
	}
	if m.BytesSent != 13*8 {
		t.Errorf("bytes = %d, want %d", m.BytesSent, 13*8)
	}
	if m.ByType["sim.ping"] != 13 {
		t.Errorf("ByType = %v, want 13 pings", m.ByType)
	}
}

// TestSweepPanicAtIndexed exercises PanicAt on a panic-heavy sweep: every
// odd seed panics, and the position index must attribute each captured
// panic to exactly its own slot (Reduce consults PanicAt per seed, so
// this is also what keeps panic-heavy reductions linear).
func TestSweepPanicAtIndexed(t *testing.T) {
	seeds := SeedRange(0, 64)
	res := Sweep(seeds, 4, func(seed int64) int64 {
		if seed%2 == 1 {
			panic(seed)
		}
		return seed
	})
	for i, seed := range seeds {
		sp := res.PanicAt(i)
		if seed%2 == 1 {
			if sp == nil || sp.Seed != seed || sp.Index != i {
				t.Fatalf("PanicAt(%d) = %+v, want panic for seed %d", i, sp, seed)
			}
		} else if sp != nil {
			t.Fatalf("PanicAt(%d) = %+v for a healthy run", i, sp)
		}
	}
	if res.PanicAt(len(seeds)+5) != nil {
		t.Fatal("PanicAt out of range returned a panic")
	}
	sum := Reduce(res, int64(0), func(acc int64, _ int64, v int64) int64 { return acc + v })
	want := int64(0)
	for _, s := range seeds {
		if s%2 == 0 {
			want += s
		}
	}
	if sum != want {
		t.Fatalf("Reduce over even seeds = %d, want %d", sum, want)
	}
}
