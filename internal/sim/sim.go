// Package sim provides a deterministic discrete-event simulator for
// asynchronous message-passing protocols.
//
// The paper's model (§2.1) is a fully asynchronous network of n processes
// connected by reliable authenticated point-to-point links, where an
// adversary controls message scheduling. This simulator realizes exactly
// that model: protocol nodes are deterministic state machines, the
// scheduler is a priority queue over virtual time, message delays come from
// a pluggable (possibly adversarial) latency model, and all randomness is
// drawn from a single seeded source — so every execution is reproducible
// from its seed.
//
// # Sharded event queue
//
// The priority queue is sharded by destination: one small (time, seq)-
// ordered heap per receiver process ("lane"), merged through a winner
// tournament tree over the lane heads (lanequeue.go). Push/pop cost
// scales with the receiver's own backlog plus log n instead of the total
// pending-event count, and the merge front exposes which receivers have
// frontier events at the same virtual time. The pop sequence is byte-
// identical to a single global heap over the same total order —
// differential-tested against a retained copy of the previous 4-ary heap
// — so serial execution is event-for-event unchanged.
//
// # Parallel same-time delivery
//
// Config.DeliveryWorkers > 0 opts a run into parallel delivery: all
// frontier events sharing a timestamp with distinct receivers execute
// their Receive handlers concurrently on a bounded worker pool, with
// every effect (sends, broadcasts, metrics) buffered per receiver and
// committed single-threaded in ascending receiver-ID order. Latency
// draws and sequence numbers are assigned only at commit, from the run's
// one seeded RNG, so the observable execution is a pure function of the
// seed — byte-identical across 1, 2 or GOMAXPROCS delivery workers.
// Nodes that call Env.Rand are kept on the single RNG stream by forcing
// their timestamps back to serial delivery (see parallel.go for the full
// contract). Serial mode (DeliveryWorkers == 0) remains the default.
//
// # Fault injection
//
// Config.Fault installs a FaultPlane: an adversarial message-fault layer
// consulted at exactly two single-threaded commit points — OnSend when a
// message's delivery is scheduled (after DropFilter, per destination in
// ascending order) and OnDeliver when a delivery is popped from the
// queue. Both hooks run on the driving goroutine with the run's one
// seeded RNG, even under parallel delivery (buffered sends are committed
// in receiver-ID order, redelivery is decided at the pop), so every
// fault decision — drop, duplicate, extra delay, hold-until, redeliver —
// is a pure function of the seed and byte-identical across
// DeliveryWorkers counts. Node-level faults compose separately as
// wrappers (CrashNode, MuteNode, ChurnNode, and the Byzantine wrappers
// in internal/scenario); wrappers implementing Unwrapper keep the inner
// protocol node observable to result collectors. internal/scenario
// compiles declarative scenario rules into a FaultPlane and bundles them
// with the Definition 4.1 properties each scenario must preserve.
//
// # Sweep determinism contract
//
// Executions with different seeds are independent, and Sweep (sweep.go)
// runs them on a bounded worker pool. The contract: a sweep's observable
// output is a pure function of the seed slice and the per-seed closure —
// never of the worker count or of run completion order. Results are
// positioned by seed, Reduce folds them in seed order, and panics are
// attributed to the offending seed. Consequently any aggregate built
// through Reduce/MergeMetrics (statistics, first failing seed, ordered
// rows) is byte-identical for 1 worker, 2 workers, or GOMAXPROCS workers —
// which is what lets the randomized conformance suites fan out across
// cores while staying reproducible from a single integer.
package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"

	"repro/internal/types"
	"repro/internal/wire"
)

// VirtualTime is simulated time in abstract units.
type VirtualTime int64

// Message is a protocol message. Packages define plain structs; the
// simulator treats them opaquely. Implement Sizer to contribute to the
// byte metrics.
type Message any

// Sizer lets a message report an approximate wire size in bytes for the
// bandwidth metrics. It is the fallback for messages without a binary
// wire codec (see MessageSize); messages that implement neither count as
// size 1.
type Sizer interface {
	SimSize() int
}

// MessageSize returns the byte size a message contributes to the metrics.
// Messages registered with the shared binary codec (internal/wire — every
// real protocol message is, at package init) report their exact encoded
// frame length, so simulated BytesSent figures equal the bytes the TCP
// transport puts on the wire for the same traffic. Unregistered messages
// fall back to their Sizer approximation, else count as 1 byte. Wrapper
// messages (e.g. the ACS per-instance envelope) implement Sizer by
// forwarding the inner payload's MessageSize plus their header.
func MessageSize(msg Message) int { return msgSize(msg) }

// Typer lets a message choose its own ByType metrics bucket. Messages
// that do not implement it are bucketed by dynamic Go type (the "%T"
// name). Wrapper messages implement it to attribute their traffic to the
// wrapped instance and inner type instead of lumping every envelope into
// one bucket.
type Typer interface {
	SimType() string
}

// Node is a deterministic protocol state machine. The simulator calls Init
// once before any delivery and Receive once per delivered message. Nodes
// must only interact with the world through the provided Env.
type Node interface {
	// Init runs before any message is delivered; nodes typically send
	// their first protocol messages here.
	Init(env Env)
	// Receive handles one message delivered from another node (or from
	// itself — self-sends are delivered through the network too).
	Receive(env Env, from types.ProcessID, msg Message)
}

// Env is a node's handle on the simulated world, valid only for the
// duration of the Init/Receive call it was passed to.
type Env interface {
	// Self returns the executing node's process ID.
	Self() types.ProcessID
	// N returns the number of processes.
	N() int
	// Now returns the current virtual time.
	Now() VirtualTime
	// Send enqueues msg for delivery to process `to` (self-sends allowed).
	Send(to types.ProcessID, msg Message)
	// Broadcast sends msg to every process including the sender, in
	// process-ID order.
	Broadcast(msg Message)
	// Rand returns the run's seeded RNG. Nodes must not retain it beyond
	// the current call.
	Rand() *rand.Rand
}

// LatencyModel decides the network delay of each message.
type LatencyModel interface {
	// Delay returns the link delay for a message sent now from -> to.
	// It must be >= 0.
	Delay(from, to types.ProcessID, msg Message, now VirtualTime, rng *rand.Rand) VirtualTime
}

// ConstantLatency delays every message by the same amount.
type ConstantLatency VirtualTime

// Delay implements LatencyModel.
func (c ConstantLatency) Delay(_, _ types.ProcessID, _ Message, _ VirtualTime, _ *rand.Rand) VirtualTime {
	return VirtualTime(c)
}

// UniformLatency delays messages uniformly in [Min, Max]. An inverted
// range (Max < Min) is normalized by swapping the bounds, so a transposed
// literal behaves like the range its author meant instead of silently
// collapsing every delay to Min and masking the misconfiguration.
type UniformLatency struct {
	Min, Max VirtualTime
}

// Delay implements LatencyModel.
func (u UniformLatency) Delay(_, _ types.ProcessID, _ Message, _ VirtualTime, rng *rand.Rand) VirtualTime {
	lo, hi := u.Min, u.Max
	if hi < lo {
		lo, hi = hi, lo
	}
	if hi == lo {
		return lo
	}
	return lo + VirtualTime(rng.Int63n(int64(hi-lo+1)))
}

// LatencyFunc adapts a function to a LatencyModel.
type LatencyFunc func(from, to types.ProcessID, msg Message, now VirtualTime, rng *rand.Rand) VirtualTime

// Delay implements LatencyModel.
func (f LatencyFunc) Delay(from, to types.ProcessID, msg Message, now VirtualTime, rng *rand.Rand) VirtualTime {
	return f(from, to, msg, now, rng)
}

// FavoredLinksLatency is the adversarial schedule used by the paper's
// Appendix A execution: messages along favored links (Favored[to] contains
// from) arrive with delay Fast, everything else with delay Slow. Choosing
// Favored[to] = to's canonical quorum makes every "received from one of my
// quorums" trigger fire on exactly that quorum.
type FavoredLinksLatency struct {
	Favored []types.Set // indexed by receiver
	Fast    VirtualTime
	Slow    VirtualTime
}

// Delay implements LatencyModel. A receiver outside the Favored slice (a
// nil slice, or an ID past its end — e.g. a model built for a smaller
// cluster) falls back to Slow: an unconfigured link is simply not
// favored, rather than an index panic deep inside a run.
func (f FavoredLinksLatency) Delay(from, to types.ProcessID, _ Message, _ VirtualTime, _ *rand.Rand) VirtualTime {
	if int(to) < len(f.Favored) && f.Favored[to].Contains(from) {
		return f.Fast
	}
	return f.Slow
}

// DropFilter decides whether a message is delivered; return false to drop.
// Dropping models faulty links or partitioned/fail-stop behaviour. Correct-
// process links in the paper are reliable, so filters should only affect
// faulty processes.
//
// Pinned semantics (scenario drop rules rely on these; regression-tested):
//
//   - The filter is consulted for every (from, to) pair, INCLUDING
//     self-delivery (from == to). Self-sends travel through the network
//     like any other message, so a filter that should spare a process's
//     own loopback must allow from == to explicitly.
//   - Broadcast is filtered per destination, in ascending destination
//     order, exactly as n individual Sends would be: the broadcast
//     fast-path only pools the type/size bookkeeping, never the filter,
//     latency or sequence-number decisions.
//   - A filtered message counts only as MessagesDropped — never towards
//     MessagesSent, BytesSent or ByType — and is never seen by the
//     FaultPlane (the filter runs first).
type DropFilter func(from, to types.ProcessID, msg Message) bool

// Fault plane. -------------------------------------------------------------

// FaultPlane is the scenario hook into the simulator's two deterministic
// commit points. Both callbacks run on the goroutine driving the run —
// OnSend at the send-commit point (where latency draws and sequence
// numbers are assigned; in parallel-delivery mode this is the
// single-threaded effect commit), OnDeliver at the queue-pop point — so a
// fault plane may use the run's seeded RNG freely and the observable
// execution stays a pure function of the seed for every DeliveryWorkers
// count. Implementations must be deterministic: no time, no I/O, no
// private unseeded randomness.
//
// Call order per message: DropFilter first (a filtered message never
// reaches the plane), then OnSend once per (from, to) destination —
// including self-delivery and each destination of a broadcast fan-out, in
// ascending destination order — then OnDeliver when the (possibly
// duplicated, delayed) event is popped for delivery.
type FaultPlane interface {
	// OnSend rules on one outbound message at the send-commit point.
	OnSend(from, to types.ProcessID, msg Message, now VirtualTime, rng *rand.Rand) SendVerdict
	// OnDeliver rules on one delivery at the queue-pop point; it can
	// schedule an extra delivery of the same message (duplication after
	// the first processing — the redelivery-idempotence fault).
	OnDeliver(from, to types.ProcessID, msg Message, now VirtualTime, rng *rand.Rand) DeliverVerdict
}

// SendVerdict is a FaultPlane's decision about one outbound message.
type SendVerdict struct {
	// Drop discards the message; it counts only as MessagesDropped
	// (exactly like a DropFilter drop).
	Drop bool
	// Extra is added on top of the latency model's own draw (negative
	// values are clamped to 0). Partitions that heal are expressed as
	// Extra >= healTime - now: the message exists but arrives after the
	// heal, like a retransmitting transport.
	Extra VirtualTime
	// Duplicates enqueues that many extra copies of the message, each
	// with its own latency draw (plus the same Extra). Every copy counts
	// as a sent message in the metrics.
	Duplicates int
}

// DeliverVerdict is a FaultPlane's decision about one delivery.
type DeliverVerdict struct {
	// Redeliver schedules one additional delivery of the same message
	// After time units from now (clamped to >= 1 so the copy lands in a
	// strictly later timestamp). The copy is consulted again on its own
	// delivery, so a redelivery probability must stay < 1 for the
	// cascade to terminate.
	Redeliver bool
	After     VirtualTime
}

// Config configures a Runner.
type Config struct {
	N       int
	Latency LatencyModel // defaults to ConstantLatency(1)
	Seed    int64
	Filter  DropFilter // optional; nil delivers everything

	// Fault, when non-nil, is the scenario fault plane: it is consulted
	// once per (from, to) message at the send-commit point and once per
	// delivery at the pop point (see FaultPlane for the exact contract).
	// The no-fault hot path pays only a nil check.
	Fault FaultPlane

	// DeliveryWorkers opts into parallel same-time delivery: when > 0,
	// Run/RunUntil deliver all frontier events that share a virtual
	// timestamp as one batch, executing the Receive handlers of distinct
	// receivers concurrently on up to DeliveryWorkers goroutines, with
	// every effect buffered and committed single-threaded in receiver-ID
	// order (see parallel.go for the determinism contract). 0 (the
	// default) keeps the strictly serial one-event-at-a-time scheduler.
	// The observable execution of parallel mode is a pure function of the
	// seed: byte-identical for 1, 2 or GOMAXPROCS workers.
	DeliveryWorkers int
}

// Metrics accumulates network statistics for an execution.
type Metrics struct {
	MessagesSent      int
	MessagesDelivered int
	MessagesDropped   int
	BytesSent         int
	ByType            map[string]int
}

func newMetrics() *Metrics {
	return &Metrics{ByType: map[string]int{}}
}

type event struct {
	at   VirtualTime
	seq  uint64
	to   types.ProcessID
	from types.ProcessID
	msg  Message
}

// eventLess is the scheduler's total order: (time, sequence). seq is
// globally unique and monotone, so no two events compare equal and the
// pop sequence of any correct priority structure over this key is fully
// determined.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Runner owns an execution: the nodes, the sharded event queue, the
// clock, and the metrics. All scheduler state — queue, clock, RNG,
// metrics, sequence numbers — is touched only by the goroutine driving
// the run; determinism follows from the seeded RNG and the (time,
// sequence) total order on events. With Config.DeliveryWorkers > 0 the
// Receive handlers of distinct same-timestamp receivers additionally run
// concurrently, but their effects are buffered and committed back on the
// driving goroutine (parallel.go), so the single-threaded-scheduler
// invariant holds in both modes.
type Runner struct {
	cfg     Config
	nodes   []Node
	queue   laneQueue
	now     VirtualTime
	seq     uint64
	rng     *rand.Rand
	metrics *Metrics
	inited  bool

	// envs holds one pre-built Env per process, reused for every Init and
	// Receive call. Boxing a fresh env value per delivered event used to be
	// the single largest allocator in message-heavy runs (one interface
	// allocation per delivery); the pool makes event delivery alloc-free.
	// Nodes must not retain an Env beyond the call (the Env contract), and
	// each env is immutable after construction, so reuse is safe.
	envs []env

	// randUsed[p] records that node p has drawn from Env.Rand at least
	// once. Parallel delivery consults it: a timestamp batch containing a
	// flagged receiver is delivered serially so the node keeps reading the
	// run's single RNG stream (see parallel.go).
	randUsed []bool

	// Parallel-delivery scratch state, allocated only when
	// cfg.DeliveryWorkers > 0 (see parallel.go).
	parEnvs   []parEnv
	perRecv   [][]event
	batch     []event
	active    []int
	panicVals []any

	// Persistent delivery worker pool (parallel.go): started lazily at
	// the first multi-worker batch of a Run/RunUntil invocation, stopped
	// when it returns — batches reuse the pooled goroutines instead of
	// spawning per batch. poolWake has one buffered channel per worker so
	// a fast worker can never steal a second wake-up within one batch.
	poolWake   []chan struct{}
	poolNext   atomic.Int32
	poolBatch  sync.WaitGroup
	poolExited sync.WaitGroup

	// typeCounts accumulates per-message-type counters keyed by dynamic
	// type; the string-keyed Metrics.ByType view is materialized lazily by
	// Metrics(). Formatting "%T" per send used to show up in profiles.
	// Messages that implement Typer are bucketed by their SimType label in
	// labelCounts instead.
	typeCounts  map[reflect.Type]*typeCounter
	labelCounts map[string]*typeCounter
}

type typeCounter struct {
	name  string
	count int
}

// NewRunner creates a Runner for the given nodes. len(nodes) must equal
// cfg.N.
func NewRunner(cfg Config, nodes []Node) *Runner {
	if len(nodes) != cfg.N {
		panic(fmt.Sprintf("sim: %d nodes for N=%d", len(nodes), cfg.N))
	}
	if cfg.Latency == nil {
		cfg.Latency = ConstantLatency(1)
	}
	r := &Runner{
		cfg:        cfg,
		nodes:      nodes,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		metrics:    newMetrics(),
		envs:       make([]env, cfg.N),
		randUsed:   make([]bool, cfg.N),
		typeCounts: map[reflect.Type]*typeCounter{},
	}
	r.queue.init(cfg.N)
	for i := range r.envs {
		r.envs[i] = env{r: r, self: types.ProcessID(i)}
	}
	if cfg.DeliveryWorkers > 0 {
		r.parEnvs = make([]parEnv, cfg.N)
		for i := range r.parEnvs {
			r.parEnvs[i] = parEnv{r: r, self: types.ProcessID(i)}
		}
		r.perRecv = make([][]event, cfg.N)
		r.panicVals = make([]any, cfg.N)
	}
	return r
}

// env is the per-process Env implementation, pooled on the Runner.
type env struct {
	r    *Runner
	self types.ProcessID
}

func (e *env) Self() types.ProcessID { return e.self }
func (e *env) N() int                { return e.r.cfg.N }
func (e *env) Now() VirtualTime      { return e.r.now }

// Rand returns the run's single seeded RNG and flags the node as a
// randomness user: parallel delivery (parallel.go) keeps flagged nodes'
// timestamps serial so the stream stays single-threaded.
func (e *env) Rand() *rand.Rand {
	e.r.randUsed[e.self] = true
	return e.r.rng
}

func (e *env) Send(to types.ProcessID, msg Message) {
	e.r.send(e.self, to, msg)
}

func (e *env) Broadcast(msg Message) {
	e.r.broadcast(e.self, msg)
}

// typeCounter returns the per-type metrics counter for msg, creating it
// on first appearance. Typer messages choose their own bucket label (and
// therefore pay the SimType call once per unicast or broadcast fan-out);
// everything else is bucketed by dynamic type.
func (r *Runner) typeCounter(msg Message) *typeCounter {
	if tp, ok := msg.(Typer); ok {
		name := tp.SimType()
		tc, ok := r.labelCounts[name]
		if !ok {
			tc = &typeCounter{name: name}
			if r.labelCounts == nil {
				r.labelCounts = map[string]*typeCounter{}
			}
			r.labelCounts[name] = tc
		}
		return tc
	}
	t := reflect.TypeOf(msg)
	tc, ok := r.typeCounts[t]
	if !ok {
		tc = &typeCounter{name: fmt.Sprintf("%T", msg)}
		r.typeCounts[t] = tc
	}
	return tc
}

// msgSize returns the byte size a message contributes to the metrics:
// exact encoded frame length for wire-registered types, Sizer
// approximation otherwise, 1 as the last resort.
func msgSize(msg Message) int {
	if n, ok := wire.EncodedSize(msg); ok {
		return n
	}
	if s, ok := msg.(Sizer); ok {
		return s.SimSize()
	}
	return 1
}

// dropped applies the drop filter. Filtered messages never reach the
// network: they count only as MessagesDropped, not towards
// MessagesSent/BytesSent/ByType, so experiment metrics reflect actual
// traffic.
func (r *Runner) dropped(from, to types.ProcessID, msg Message) bool {
	if r.cfg.Filter != nil && !r.cfg.Filter(from, to, msg) {
		r.metrics.MessagesDropped++
		return true
	}
	return false
}

// sendOne records the sent-message metrics (against the caller-resolved
// type counter and size) and enqueues the delivery. Both unicast and
// broadcast fan-out land here, so the accounting rules — and the fault
// plane's send-commit hook — live in one place.
func (r *Runner) sendOne(from, to types.ProcessID, msg Message, tc *typeCounter, size int) {
	var extra VirtualTime
	if r.cfg.Fault != nil {
		v := r.cfg.Fault.OnSend(from, to, msg, r.now, r.rng)
		if v.Drop {
			r.metrics.MessagesDropped++
			return
		}
		if v.Extra > 0 {
			extra = v.Extra
		}
		for i := 0; i < v.Duplicates; i++ {
			r.metrics.MessagesSent++
			tc.count++
			r.metrics.BytesSent += size
			r.enqueue(from, to, msg, extra)
		}
	}
	r.metrics.MessagesSent++
	tc.count++
	r.metrics.BytesSent += size
	r.enqueue(from, to, msg, extra)
}

func (r *Runner) send(from, to types.ProcessID, msg Message) {
	if r.dropped(from, to, msg) {
		return
	}
	r.sendOne(from, to, msg, r.typeCounter(msg), msgSize(msg))
}

// broadcast fans msg out to every process in ID order. One fan-out
// resolves the per-message bookkeeping (type counter, wire size) once and
// reuses it for all n sends — broadcast is the dominant send pattern of
// every protocol here, and per-destination SimSize/type lookups used to
// show up in profiles. Delivery order and metrics stay byte-identical to
// n individual sends: the filter, the latency draw and the sequence
// number are still evaluated per destination, in destination order.
func (r *Runner) broadcast(from types.ProcessID, msg Message) {
	var tc *typeCounter
	size := 0
	for to := 0; to < r.cfg.N; to++ {
		pid := types.ProcessID(to)
		if r.dropped(from, pid, msg) {
			continue
		}
		if tc == nil {
			tc = r.typeCounter(msg)
			size = msgSize(msg)
		}
		r.sendOne(from, pid, msg, tc, size)
	}
}

// enqueue draws the link delay, adds the fault plane's extra delay, and
// pushes the delivery event.
func (r *Runner) enqueue(from, to types.ProcessID, msg Message, extra VirtualTime) {
	d := r.cfg.Latency.Delay(from, to, msg, r.now, r.rng)
	if d < 0 {
		d = 0
	}
	r.seq++
	r.queue.push(event{at: r.now + d + extra, seq: r.seq, to: to, from: from, msg: msg})
}

// maybeRedeliver consults the fault plane's delivery hook for a popped
// event and schedules the extra copy it asks for. Runs on the driving
// goroutine with r.now already advanced to the event's timestamp; the copy
// lands at least one time unit later, so a drain loop over the current
// timestamp always terminates.
func (r *Runner) maybeRedeliver(e *event) {
	v := r.cfg.Fault.OnDeliver(e.from, e.to, e.msg, r.now, r.rng)
	if !v.Redeliver {
		return
	}
	after := v.After
	if after < 1 {
		after = 1
	}
	r.seq++
	r.queue.push(event{at: r.now + after, seq: r.seq, to: e.to, from: e.from, msg: e.msg})
}

// init calls Init on every node (in ID order) exactly once.
func (r *Runner) init() {
	if r.inited {
		return
	}
	r.inited = true
	for i, n := range r.nodes {
		n.Init(&r.envs[i])
	}
}

// Step delivers the next pending event. It returns false when the queue is
// empty (quiescence). Step is always the strictly serial path — Run and
// RunUntil switch to timestamp batches only when Config.DeliveryWorkers
// opts in.
func (r *Runner) Step() bool {
	r.init()
	if r.queue.Len() == 0 {
		return false
	}
	e := r.queue.pop()
	r.now = e.at
	r.metrics.MessagesDelivered++
	if r.cfg.Fault != nil {
		r.maybeRedeliver(&e)
	}
	r.nodes[e.to].Receive(&r.envs[e.to], e.from, e.msg)
	return true
}

// DefaultEventBudget is the event limit the protocol runners (gather,
// ACS, rider, the public Cluster) apply when their config leaves the
// budget field at 0 — roughly 10× what the largest legitimate run (n=100,
// a couple of waves, ~6M deliveries) needs, so hitting it signals a
// runaway schedule rather than truncating real work, while a
// non-quiescing schedule can no longer hang a sweep forever.
const DefaultEventBudget = 50_000_000

// ResolveEventBudget maps a config's budget field to a Run limit under
// the shared convention: 0 selects DefaultEventBudget, a negative value
// means unbounded (0 to Run), and a positive value is used as-is. A run
// was truncated by its budget iff the resolved limit is > 0 and events
// are still Pending afterwards.
func ResolveEventBudget(configured int) int {
	if configured == 0 {
		return DefaultEventBudget
	}
	if configured < 0 {
		return 0
	}
	return configured
}

// Run processes events until quiescence or until limit events have been
// delivered (limit <= 0 means no limit). It returns the number of events
// processed. In parallel mode (Config.DeliveryWorkers > 0) delivery
// advances one whole timestamp batch at a time, so the run may overshoot
// limit by at most the final batch — by the same amount for every worker
// count.
func (r *Runner) Run(limit int) int {
	processed := 0
	if r.cfg.DeliveryWorkers > 0 {
		defer r.stopPool()
		for limit <= 0 || processed < limit {
			n := r.stepBatch()
			if n == 0 {
				break
			}
			processed += n
		}
		return processed
	}
	for limit <= 0 || processed < limit {
		if !r.Step() {
			break
		}
		processed++
	}
	return processed
}

// RunUntil processes events until pred() is true, quiescence, or the event
// limit; it reports whether pred became true. In parallel mode pred is
// evaluated between timestamp batches rather than between single events —
// at the same points for every worker count.
func (r *Runner) RunUntil(pred func() bool, limit int) bool {
	r.init()
	if pred() {
		return true
	}
	processed := 0
	if r.cfg.DeliveryWorkers > 0 {
		defer r.stopPool()
		for limit <= 0 || processed < limit {
			n := r.stepBatch()
			if n == 0 {
				return pred()
			}
			processed += n
			if pred() {
				return true
			}
		}
		return false
	}
	for limit <= 0 || processed < limit {
		if !r.Step() {
			return pred()
		}
		processed++
		if pred() {
			return true
		}
	}
	return false
}

// Now returns the current virtual time.
func (r *Runner) Now() VirtualTime { return r.now }

// Pending returns the number of undelivered events.
func (r *Runner) Pending() int { return r.queue.Len() }

// Metrics returns the execution's accumulated metrics. The scalar counters
// on the returned struct stay live as the run proceeds; ByType is
// materialized from the per-type counters at each call, so callers that
// keep stepping the simulation should re-call Metrics() before reading
// ByType again.
func (r *Runner) Metrics() *Metrics {
	//lint:ordered each counter writes its own ByType key; distinct keys commute
	for _, tc := range r.typeCounts {
		r.metrics.ByType[tc.name] = tc.count
	}
	//lint:ordered each counter writes its own ByType key; distinct keys commute
	for _, tc := range r.labelCounts {
		r.metrics.ByType[tc.name] = tc.count
	}
	return r.metrics
}

// Node wrappers for fault injection. ------------------------------------

// CrashNode wraps a Node and makes it fail-stop at a given virtual time:
// once crashed it neither processes nor (therefore) sends anything.
type CrashNode struct {
	Inner   Node
	CrashAt VirtualTime
	crashed bool
}

var _ Node = (*CrashNode)(nil)

// Init implements Node. A node configured to crash at time 0 never runs.
func (c *CrashNode) Init(e Env) {
	if c.CrashAt <= 0 {
		c.crashed = true
		return
	}
	c.Inner.Init(e)
}

// Receive implements Node.
func (c *CrashNode) Receive(e Env, from types.ProcessID, msg Message) {
	if c.crashed || e.Now() >= c.CrashAt {
		c.crashed = true
		return
	}
	c.Inner.Receive(e, from, msg)
}

// Crashed reports whether the node has fail-stopped.
func (c *CrashNode) Crashed() bool { return c.crashed }

// Unwrap implements Unwrapper.
func (c *CrashNode) Unwrap() Node { return c.Inner }

// ChurnNode extends CrashNode with crash-recover churn: the process is
// down in the half-open window [CrashAt, RecoverAt) and participates
// normally outside it. Recovery semantics are declared up front:
//
//   - Buffer == true: messages arriving while down are buffered and
//     replayed, in arrival order, before the first post-recovery message.
//     The node is then indistinguishable from a correct process all of
//     whose inbound links were slow during the outage — an asynchronous
//     execution — so every safety AND liveness property of a correct
//     process must still hold at it.
//   - Buffer == false: messages arriving while down are lost. The node is
//     genuinely faulty (its state may be permanently behind), and
//     property checks must count it in the faulty set.
//
// CrashAt must be > 0 (a node down from time 0 is a CrashNode or a
// MuteNode); RecoverAt <= CrashAt degenerates to a plain crash.
//
// Recovery is self-triggering: at Init the node starts a self-addressed
// tick loop (churnTick messages through the ordinary network path) that
// it keeps alive until the first delivery at or after RecoverAt. Without
// it a cluster whose quorums need the churned process can quiesce during
// the outage — the buffered messages sit inside the wrapper, not the
// event queue, so nothing would ever arrive to trigger the replay and
// the run would deadlock short of RecoverAt. The ticks travel the
// network like any message (latency model, filters, fault plane,
// metrics), so they stay deterministic per seed.
type ChurnNode struct {
	Inner     Node
	CrashAt   VirtualTime
	RecoverAt VirtualTime
	Buffer    bool

	recovered bool
	buf       []bufferedDelivery
}

type bufferedDelivery struct {
	from types.ProcessID
	msg  Message
}

var _ Node = (*ChurnNode)(nil)

// churnTick is ChurnNode's self-addressed wake-up message (see the type
// comment); it never reaches the inner node.
//
//lint:unwired self-addressed simulator control traffic; never crosses a wire
type churnTick struct{}

// Init implements Node. Init runs at virtual time 0, before the crash
// window can open (CrashAt must be > 0), so it always reaches the inner
// node.
func (c *ChurnNode) Init(e Env) {
	if c.CrashAt <= 0 {
		panic("sim: ChurnNode.CrashAt must be > 0 (use CrashNode or MuteNode for a node that never runs)")
	}
	c.Inner.Init(e)
	if c.RecoverAt > c.CrashAt {
		e.Send(e.Self(), churnTick{})
	}
}

// Receive implements Node. The down window is [CrashAt, RecoverAt) — an
// arrival exactly at CrashAt is already down (matching CrashNode's
// boundary), an arrival exactly at RecoverAt is processed.
func (c *ChurnNode) Receive(e Env, from types.ProcessID, msg Message) {
	now := e.Now()
	if _, ok := msg.(churnTick); ok {
		if c.recovered {
			return // a regular delivery already triggered recovery
		}
		if now >= c.RecoverAt {
			c.recover(e)
			return
		}
		e.Send(e.Self(), churnTick{})
		return
	}
	if now >= c.RecoverAt || c.recovered {
		if !c.recovered {
			c.recover(e)
		}
		c.Inner.Receive(e, from, msg)
		return
	}
	if now >= c.CrashAt {
		if c.Buffer {
			c.buf = append(c.buf, bufferedDelivery{from: from, msg: msg})
		}
		return
	}
	c.Inner.Receive(e, from, msg)
}

// recover marks the node up again and replays the buffered outage
// deliveries in arrival order.
func (c *ChurnNode) recover(e Env) {
	c.recovered = true
	for i := range c.buf {
		c.Inner.Receive(e, c.buf[i].from, c.buf[i].msg)
		c.buf[i] = bufferedDelivery{}
	}
	c.buf = nil
}

// Down reports whether the node is inside its down window at time t.
func (c *ChurnNode) Down(t VirtualTime) bool {
	return t >= c.CrashAt && t < c.RecoverAt && !c.recovered
}

// Recovered reports whether the node has processed its recovery (it only
// flips on the first delivery at or after RecoverAt).
func (c *ChurnNode) Recovered() bool { return c.recovered }

// Unwrap implements Unwrapper.
func (c *ChurnNode) Unwrap() Node { return c.Inner }

// Unwrapper is implemented by fault wrappers (CrashNode, ChurnNode, the
// scenario package's Byzantine wrappers) that delegate to an inner
// protocol node. Result collectors unwrap through it so a wrapped node's
// observable protocol state is still reported.
type Unwrapper interface {
	Unwrap() Node
}

// Unwrap peels every fault wrapper off a node and returns the innermost
// protocol node.
func Unwrap(n Node) Node {
	for {
		u, ok := n.(Unwrapper)
		if !ok {
			return n
		}
		n = u.Unwrap()
	}
}

// MuteNode is a Byzantine node that participates in nothing: it never
// sends a message. It is the simplest adversary that still exercises the
// "faulty processes inside fail-prone sets" paths.
type MuteNode struct{}

var _ Node = MuteNode{}

// Init implements Node.
func (MuteNode) Init(Env) {}

// Receive implements Node.
func (MuteNode) Receive(Env, types.ProcessID, Message) {}
