// Package sim provides a deterministic discrete-event simulator for
// asynchronous message-passing protocols.
//
// The paper's model (§2.1) is a fully asynchronous network of n processes
// connected by reliable authenticated point-to-point links, where an
// adversary controls message scheduling. This simulator realizes exactly
// that model: protocol nodes are deterministic state machines, the
// scheduler is a priority queue over virtual time, message delays come from
// a pluggable (possibly adversarial) latency model, and all randomness is
// drawn from a single seeded source — so every execution is reproducible
// from its seed.
//
// # Sweep determinism contract
//
// Executions with different seeds are independent, and Sweep (sweep.go)
// runs them on a bounded worker pool. The contract: a sweep's observable
// output is a pure function of the seed slice and the per-seed closure —
// never of the worker count or of run completion order. Results are
// positioned by seed, Reduce folds them in seed order, and panics are
// attributed to the offending seed. Consequently any aggregate built
// through Reduce/MergeMetrics (statistics, first failing seed, ordered
// rows) is byte-identical for 1 worker, 2 workers, or GOMAXPROCS workers —
// which is what lets the randomized conformance suites fan out across
// cores while staying reproducible from a single integer.
package sim

import (
	"fmt"
	"math/rand"
	"reflect"

	"repro/internal/types"
)

// VirtualTime is simulated time in abstract units.
type VirtualTime int64

// Message is a protocol message. Packages define plain structs; the
// simulator treats them opaquely. Implement Sizer to contribute to the
// byte metrics.
type Message any

// Sizer lets a message report an approximate wire size in bytes for the
// bandwidth metrics. Messages that do not implement it count as size 1.
type Sizer interface {
	SimSize() int
}

// Node is a deterministic protocol state machine. The simulator calls Init
// once before any delivery and Receive once per delivered message. Nodes
// must only interact with the world through the provided Env.
type Node interface {
	// Init runs before any message is delivered; nodes typically send
	// their first protocol messages here.
	Init(env Env)
	// Receive handles one message delivered from another node (or from
	// itself — self-sends are delivered through the network too).
	Receive(env Env, from types.ProcessID, msg Message)
}

// Env is a node's handle on the simulated world, valid only for the
// duration of the Init/Receive call it was passed to.
type Env interface {
	// Self returns the executing node's process ID.
	Self() types.ProcessID
	// N returns the number of processes.
	N() int
	// Now returns the current virtual time.
	Now() VirtualTime
	// Send enqueues msg for delivery to process `to` (self-sends allowed).
	Send(to types.ProcessID, msg Message)
	// Broadcast sends msg to every process including the sender, in
	// process-ID order.
	Broadcast(msg Message)
	// Rand returns the run's seeded RNG. Nodes must not retain it beyond
	// the current call.
	Rand() *rand.Rand
}

// LatencyModel decides the network delay of each message.
type LatencyModel interface {
	// Delay returns the link delay for a message sent now from -> to.
	// It must be >= 0.
	Delay(from, to types.ProcessID, msg Message, now VirtualTime, rng *rand.Rand) VirtualTime
}

// ConstantLatency delays every message by the same amount.
type ConstantLatency VirtualTime

// Delay implements LatencyModel.
func (c ConstantLatency) Delay(_, _ types.ProcessID, _ Message, _ VirtualTime, _ *rand.Rand) VirtualTime {
	return VirtualTime(c)
}

// UniformLatency delays messages uniformly in [Min, Max]. An inverted
// range (Max < Min) is normalized by swapping the bounds, so a transposed
// literal behaves like the range its author meant instead of silently
// collapsing every delay to Min and masking the misconfiguration.
type UniformLatency struct {
	Min, Max VirtualTime
}

// Delay implements LatencyModel.
func (u UniformLatency) Delay(_, _ types.ProcessID, _ Message, _ VirtualTime, rng *rand.Rand) VirtualTime {
	lo, hi := u.Min, u.Max
	if hi < lo {
		lo, hi = hi, lo
	}
	if hi == lo {
		return lo
	}
	return lo + VirtualTime(rng.Int63n(int64(hi-lo+1)))
}

// LatencyFunc adapts a function to a LatencyModel.
type LatencyFunc func(from, to types.ProcessID, msg Message, now VirtualTime, rng *rand.Rand) VirtualTime

// Delay implements LatencyModel.
func (f LatencyFunc) Delay(from, to types.ProcessID, msg Message, now VirtualTime, rng *rand.Rand) VirtualTime {
	return f(from, to, msg, now, rng)
}

// FavoredLinksLatency is the adversarial schedule used by the paper's
// Appendix A execution: messages along favored links (Favored[to] contains
// from) arrive with delay Fast, everything else with delay Slow. Choosing
// Favored[to] = to's canonical quorum makes every "received from one of my
// quorums" trigger fire on exactly that quorum.
type FavoredLinksLatency struct {
	Favored []types.Set // indexed by receiver
	Fast    VirtualTime
	Slow    VirtualTime
}

// Delay implements LatencyModel. A receiver outside the Favored slice (a
// nil slice, or an ID past its end — e.g. a model built for a smaller
// cluster) falls back to Slow: an unconfigured link is simply not
// favored, rather than an index panic deep inside a run.
func (f FavoredLinksLatency) Delay(from, to types.ProcessID, _ Message, _ VirtualTime, _ *rand.Rand) VirtualTime {
	if int(to) < len(f.Favored) && f.Favored[to].Contains(from) {
		return f.Fast
	}
	return f.Slow
}

// DropFilter decides whether a message is delivered; return false to drop.
// Dropping models faulty links or partitioned/fail-stop behaviour. Correct-
// process links in the paper are reliable, so filters should only affect
// faulty processes.
type DropFilter func(from, to types.ProcessID, msg Message) bool

// Config configures a Runner.
type Config struct {
	N       int
	Latency LatencyModel // defaults to ConstantLatency(1)
	Seed    int64
	Filter  DropFilter // optional; nil delivers everything
}

// Metrics accumulates network statistics for an execution.
type Metrics struct {
	MessagesSent      int
	MessagesDelivered int
	MessagesDropped   int
	BytesSent         int
	ByType            map[string]int
}

func newMetrics() *Metrics {
	return &Metrics{ByType: map[string]int{}}
}

type event struct {
	at   VirtualTime
	seq  uint64
	to   types.ProcessID
	from types.ProcessID
	msg  Message
}

// eventQueue is a 4-ary min-heap of events by (time, sequence), stored by
// value: no per-event allocation, no interface boxing (the container/heap
// version allocated every event and dominated the GC profile of
// message-heavy runs). Sifting moves elements into the vacated slot and
// writes the saved element once ("hole" technique) instead of swapping,
// halving the struct copies — each copy of an event crosses a GC write
// barrier because Message is an interface. The (time, sequence) key is a
// total order, so pop sequence — and therefore delivery order — is
// independent of heap arity and identical to the old implementation.
type eventQueue struct {
	events []event
}

const heapArity = 4

func (q *eventQueue) Len() int { return len(q.events) }

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(e event) {
	q.events = append(q.events, e)
	i := len(q.events) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !eventLess(&e, &q.events[parent]) {
			break
		}
		q.events[i] = q.events[parent]
		i = parent
	}
	q.events[i] = e
}

func (q *eventQueue) pop() event {
	ev := q.events[0]
	last := len(q.events) - 1
	moved := q.events[last]
	q.events[last] = event{} // release the Message reference
	q.events = q.events[:last]
	if last == 0 {
		return ev
	}
	i, n := 0, last
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		end := first + heapArity
		if end > n {
			end = n
		}
		smallest := first
		for c := first + 1; c < end; c++ {
			if eventLess(&q.events[c], &q.events[smallest]) {
				smallest = c
			}
		}
		if !eventLess(&q.events[smallest], &moved) {
			break
		}
		q.events[i] = q.events[smallest]
		i = smallest
	}
	q.events[i] = moved
	return ev
}

// Runner owns an execution: the nodes, the event queue, the clock, and the
// metrics. It is strictly single-threaded; determinism follows from the
// seeded RNG and the (time, sequence) total order on events.
type Runner struct {
	cfg     Config
	nodes   []Node
	queue   eventQueue
	now     VirtualTime
	seq     uint64
	rng     *rand.Rand
	metrics *Metrics
	inited  bool

	// envs holds one pre-built Env per process, reused for every Init and
	// Receive call. Boxing a fresh env value per delivered event used to be
	// the single largest allocator in message-heavy runs (one interface
	// allocation per delivery); the pool makes event delivery alloc-free.
	// Nodes must not retain an Env beyond the call (the Env contract), and
	// each env is immutable after construction, so reuse is safe.
	envs []env

	// typeCounts accumulates per-message-type counters keyed by dynamic
	// type; the string-keyed Metrics.ByType view is materialized lazily by
	// Metrics(). Formatting "%T" per send used to show up in profiles.
	typeCounts map[reflect.Type]*typeCounter
}

type typeCounter struct {
	name  string
	count int
}

// NewRunner creates a Runner for the given nodes. len(nodes) must equal
// cfg.N.
func NewRunner(cfg Config, nodes []Node) *Runner {
	if len(nodes) != cfg.N {
		panic(fmt.Sprintf("sim: %d nodes for N=%d", len(nodes), cfg.N))
	}
	if cfg.Latency == nil {
		cfg.Latency = ConstantLatency(1)
	}
	r := &Runner{
		cfg:        cfg,
		nodes:      nodes,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		metrics:    newMetrics(),
		envs:       make([]env, cfg.N),
		typeCounts: map[reflect.Type]*typeCounter{},
	}
	for i := range r.envs {
		r.envs[i] = env{r: r, self: types.ProcessID(i)}
	}
	return r
}

// env is the per-process Env implementation, pooled on the Runner.
type env struct {
	r    *Runner
	self types.ProcessID
}

func (e *env) Self() types.ProcessID { return e.self }
func (e *env) N() int                { return e.r.cfg.N }
func (e *env) Now() VirtualTime      { return e.r.now }
func (e *env) Rand() *rand.Rand      { return e.r.rng }

func (e *env) Send(to types.ProcessID, msg Message) {
	e.r.send(e.self, to, msg)
}

func (e *env) Broadcast(msg Message) {
	e.r.broadcast(e.self, msg)
}

// typeCounter returns the per-dynamic-type metrics counter for msg,
// creating it on the type's first appearance.
func (r *Runner) typeCounter(msg Message) *typeCounter {
	t := reflect.TypeOf(msg)
	tc, ok := r.typeCounts[t]
	if !ok {
		tc = &typeCounter{name: fmt.Sprintf("%T", msg)}
		r.typeCounts[t] = tc
	}
	return tc
}

// msgSize returns the byte size a message contributes to the metrics.
func msgSize(msg Message) int {
	if s, ok := msg.(Sizer); ok {
		return s.SimSize()
	}
	return 1
}

// dropped applies the drop filter. Filtered messages never reach the
// network: they count only as MessagesDropped, not towards
// MessagesSent/BytesSent/ByType, so experiment metrics reflect actual
// traffic.
func (r *Runner) dropped(from, to types.ProcessID, msg Message) bool {
	if r.cfg.Filter != nil && !r.cfg.Filter(from, to, msg) {
		r.metrics.MessagesDropped++
		return true
	}
	return false
}

// sendOne records the sent-message metrics (against the caller-resolved
// type counter and size) and enqueues the delivery. Both unicast and
// broadcast fan-out land here, so the accounting rules live in one place.
func (r *Runner) sendOne(from, to types.ProcessID, msg Message, tc *typeCounter, size int) {
	r.metrics.MessagesSent++
	tc.count++
	r.metrics.BytesSent += size
	r.enqueue(from, to, msg)
}

func (r *Runner) send(from, to types.ProcessID, msg Message) {
	if r.dropped(from, to, msg) {
		return
	}
	r.sendOne(from, to, msg, r.typeCounter(msg), msgSize(msg))
}

// broadcast fans msg out to every process in ID order. One fan-out
// resolves the per-message bookkeeping (type counter, wire size) once and
// reuses it for all n sends — broadcast is the dominant send pattern of
// every protocol here, and per-destination SimSize/type lookups used to
// show up in profiles. Delivery order and metrics stay byte-identical to
// n individual sends: the filter, the latency draw and the sequence
// number are still evaluated per destination, in destination order.
func (r *Runner) broadcast(from types.ProcessID, msg Message) {
	var tc *typeCounter
	size := 0
	for to := 0; to < r.cfg.N; to++ {
		pid := types.ProcessID(to)
		if r.dropped(from, pid, msg) {
			continue
		}
		if tc == nil {
			tc = r.typeCounter(msg)
			size = msgSize(msg)
		}
		r.sendOne(from, pid, msg, tc, size)
	}
}

// enqueue draws the link delay and pushes the delivery event.
func (r *Runner) enqueue(from, to types.ProcessID, msg Message) {
	d := r.cfg.Latency.Delay(from, to, msg, r.now, r.rng)
	if d < 0 {
		d = 0
	}
	r.seq++
	r.queue.push(event{at: r.now + d, seq: r.seq, to: to, from: from, msg: msg})
}

// init calls Init on every node (in ID order) exactly once.
func (r *Runner) init() {
	if r.inited {
		return
	}
	r.inited = true
	for i, n := range r.nodes {
		n.Init(&r.envs[i])
	}
}

// Step delivers the next pending event. It returns false when the queue is
// empty (quiescence).
func (r *Runner) Step() bool {
	r.init()
	if r.queue.Len() == 0 {
		return false
	}
	e := r.queue.pop()
	r.now = e.at
	r.metrics.MessagesDelivered++
	r.nodes[e.to].Receive(&r.envs[e.to], e.from, e.msg)
	return true
}

// Run processes events until quiescence or until limit events have been
// delivered (limit <= 0 means no limit). It returns the number of events
// processed.
func (r *Runner) Run(limit int) int {
	processed := 0
	for limit <= 0 || processed < limit {
		if !r.Step() {
			break
		}
		processed++
	}
	return processed
}

// RunUntil processes events until pred() is true, quiescence, or the event
// limit; it reports whether pred became true.
func (r *Runner) RunUntil(pred func() bool, limit int) bool {
	r.init()
	if pred() {
		return true
	}
	processed := 0
	for limit <= 0 || processed < limit {
		if !r.Step() {
			return pred()
		}
		processed++
		if pred() {
			return true
		}
	}
	return false
}

// Now returns the current virtual time.
func (r *Runner) Now() VirtualTime { return r.now }

// Pending returns the number of undelivered events.
func (r *Runner) Pending() int { return r.queue.Len() }

// Metrics returns the execution's accumulated metrics. The scalar counters
// on the returned struct stay live as the run proceeds; ByType is
// materialized from the per-type counters at each call, so callers that
// keep stepping the simulation should re-call Metrics() before reading
// ByType again.
func (r *Runner) Metrics() *Metrics {
	for _, tc := range r.typeCounts {
		r.metrics.ByType[tc.name] = tc.count
	}
	return r.metrics
}

// Node wrappers for fault injection. ------------------------------------

// CrashNode wraps a Node and makes it fail-stop at a given virtual time:
// once crashed it neither processes nor (therefore) sends anything.
type CrashNode struct {
	Inner   Node
	CrashAt VirtualTime
	crashed bool
}

var _ Node = (*CrashNode)(nil)

// Init implements Node. A node configured to crash at time 0 never runs.
func (c *CrashNode) Init(e Env) {
	if c.CrashAt <= 0 {
		c.crashed = true
		return
	}
	c.Inner.Init(e)
}

// Receive implements Node.
func (c *CrashNode) Receive(e Env, from types.ProcessID, msg Message) {
	if c.crashed || e.Now() >= c.CrashAt {
		c.crashed = true
		return
	}
	c.Inner.Receive(e, from, msg)
}

// Crashed reports whether the node has fail-stopped.
func (c *CrashNode) Crashed() bool { return c.crashed }

// MuteNode is a Byzantine node that participates in nothing: it never
// sends a message. It is the simplest adversary that still exercises the
// "faulty processes inside fail-prone sets" paths.
type MuteNode struct{}

var _ Node = MuteNode{}

// Init implements Node.
func (MuteNode) Init(Env) {}

// Receive implements Node.
func (MuteNode) Receive(Env, types.ProcessID, Message) {}
