package sim

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
)

// Parallel multi-seed sweeps. ---------------------------------------------
//
// A single Runner is strictly single-threaded, but executions with
// different seeds share nothing: each builds its own nodes, RNG and event
// queue. Sweep exploits that independence by fanning a per-seed closure out
// over a bounded worker pool while keeping the *observable result*
// identical to a serial loop:
//
//   - Values[i] is the closure's result for Seeds[i], regardless of which
//     worker computed it or in which order runs finished.
//   - Reduce folds values in seed order, so any aggregation (sums, merged
//     metrics, "first failing seed") is worker-count independent.
//   - A panic inside one run is caught, attributed to its seed, and
//     surfaced through Err/Panics instead of tearing down the whole sweep.
//
// The closure must be self-contained: it may share immutable inputs (a
// compiled quorum.System, a latency model) across runs but must create its
// own Runner and nodes per call.

// SeedRange returns count consecutive seeds starting at start — the usual
// input to Sweep.
func SeedRange(start int64, count int) []int64 {
	seeds := make([]int64, count)
	for i := range seeds {
		seeds[i] = start + int64(i)
	}
	return seeds
}

// SeedPanic records a panic raised while running one seed of a sweep.
// It implements error.
type SeedPanic struct {
	// Index is the seed's position in the sweep's seed slice.
	Index int
	// Seed is the offending seed itself.
	Seed int64
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error.
func (p *SeedPanic) Error() string {
	return fmt.Sprintf("sweep: seed %d panicked: %v", p.Seed, p.Value)
}

// SweepResult holds the outcome of a Sweep: per-seed values positioned by
// seed, plus any captured panics.
type SweepResult[T any] struct {
	// Seeds is the sweep's seed slice (a copy, in the order given).
	Seeds []int64
	// Values holds fn(Seeds[i]) at position i. Entries whose run panicked
	// hold T's zero value; Reduce skips them.
	Values []T

	panics   []SeedPanic // sorted by Index
	panicIdx map[int]int // seed position -> index into panics, built lazily
}

// Panics returns the captured panics in seed order.
func (r *SweepResult[T]) Panics() []SeedPanic { return r.panics }

// PanicAt returns the panic captured for the seed at the given index, or
// nil if that run completed. Lookups are O(1) via a position index built
// on first use — Reduce consults PanicAt for every seed, and a linear
// scan made panic-heavy sweeps O(seeds × panics). Like the rest of a
// SweepResult, PanicAt is for the single goroutine that owns the result.
func (r *SweepResult[T]) PanicAt(index int) *SeedPanic {
	if r.panicIdx == nil {
		r.panicIdx = make(map[int]int, len(r.panics))
		for i := range r.panics {
			r.panicIdx[r.panics[i].Index] = i
		}
	}
	i, ok := r.panicIdx[index]
	if !ok {
		return nil
	}
	return &r.panics[i]
}

// Err returns the first panic in seed order as an error, or nil if every
// run completed.
func (r *SweepResult[T]) Err() error {
	if len(r.panics) == 0 {
		return nil
	}
	return &r.panics[0]
}

// Sweep runs fn(seed) for every seed over a pool of workers goroutines
// (workers <= 0 selects GOMAXPROCS) and returns the results positioned by
// seed. The output is independent of the worker count; see the package
// comment for the determinism contract.
func Sweep[T any](seeds []int64, workers int, fn func(seed int64) T) *SweepResult[T] {
	res := &SweepResult[T]{
		Seeds:  append([]int64(nil), seeds...),
		Values: make([]T, len(seeds)),
	}
	if len(seeds) == 0 {
		return res
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}

	var (
		next    atomic.Int64
		panicMu sync.Mutex
		wg      sync.WaitGroup
	)
	runOne := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				sp := SeedPanic{Index: i, Seed: res.Seeds[i], Value: v, Stack: debug.Stack()}
				panicMu.Lock()
				res.panics = append(res.panics, sp)
				panicMu.Unlock()
			}
		}()
		res.Values[i] = fn(res.Seeds[i])
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(res.Seeds) {
					return
				}
				runOne(i)
			}
		}()
	}
	wg.Wait()
	sort.Slice(res.panics, func(a, b int) bool { return res.panics[a].Index < res.panics[b].Index })
	return res
}

// Reduce folds the sweep's values in seed order: acc = f(acc, seed, value)
// for each completed run, first seed first. Runs that panicked are skipped
// (their zero values would corrupt aggregates); callers detect them via
// Err. Because the fold order is fixed by the seed slice, the result is
// identical for every worker count — including non-commutative reducers
// such as "first failing seed" or ordered CSV rows.
func Reduce[T, A any](r *SweepResult[T], init A, f func(acc A, seed int64, v T) A) A {
	acc := init
	for i, v := range r.Values {
		if r.PanicAt(i) != nil {
			continue
		}
		acc = f(acc, r.Seeds[i], v)
	}
	return acc
}

// MergeMetrics sums network metrics across runs (nil entries are skipped).
// Merging is commutative, but sweep reducers still apply it in seed order
// so the ByType map is built identically every time.
func MergeMetrics(ms ...*Metrics) *Metrics {
	out := newMetrics()
	for _, m := range ms {
		if m == nil {
			continue
		}
		out.MessagesSent += m.MessagesSent
		out.MessagesDelivered += m.MessagesDelivered
		out.MessagesDropped += m.MessagesDropped
		out.BytesSent += m.BytesSent
		for k, v := range m.ByType {
			out.ByType[k] += v
		}
	}
	return out
}
