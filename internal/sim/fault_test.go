package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/types"
)

// Regression tests pinning the DropFilter semantics documented on the type
// (self-delivery is filtered too; broadcast is filtered per destination
// exactly like n sends; filtered messages never reach the FaultPlane) and
// the FaultPlane verdict semantics the scenario package builds on.

// TestDropFilterSelfDelivery pins that the filter is consulted for
// from == to: a filter dropping only self-delivery starves every node of
// exactly its own ping.
func TestDropFilterSelfDelivery(t *testing.T) {
	n := 4
	nodes := newPingCluster(n)
	filter := func(from, to types.ProcessID, _ Message) bool { return from != to }
	r := NewRunner(Config{N: n, Seed: 1, Filter: filter}, nodes)
	r.Run(0)
	for i, nd := range nodes {
		pn := nd.(*pingNode)
		if pn.got != n-1 {
			t.Errorf("node %d got %d pings, want %d (own loopback dropped)", i, pn.got, n-1)
		}
		if pn.fromSet.Contains(types.ProcessID(i)) {
			t.Errorf("node %d heard from itself despite the self-delivery filter", i)
		}
	}
	if d := r.Metrics().MessagesDropped; d != n {
		t.Errorf("dropped = %d, want %d (one self-delivery per broadcast)", d, n)
	}
}

// fanoutNode sends one ping to every process from Init — through Broadcast
// or through n individual Sends in ascending ID order — and ignores
// everything it receives.
type fanoutNode struct {
	perDest bool
}

func (f *fanoutNode) Init(e Env) {
	if f.perDest {
		for i := 0; i < e.N(); i++ {
			e.Send(types.ProcessID(i), ping{payload: 7})
		}
		return
	}
	e.Broadcast(ping{payload: 7})
}

func (f *fanoutNode) Receive(Env, types.ProcessID, Message) {}

// TestBroadcastFilterParityWithPerDestinationSends pins that the broadcast
// fast path filters (and draws latency for) each destination exactly as n
// individual Sends would: same metrics including ByType, same delivery
// schedule, under a filter that drops a subset of links.
func TestBroadcastFilterParityWithPerDestinationSends(t *testing.T) {
	n := 5
	filter := func(from, to types.ProcessID, _ Message) bool {
		return !(from == 0 && to%2 == 1) // drop 0 -> odd receivers
	}
	run := func(perDest bool) (*Metrics, [][]VirtualTime) {
		nodes := make([]Node, n)
		nodes[0] = &fanoutNode{perDest: perDest}
		probes := make([]*arrivalProbe, n)
		for i := 1; i < n; i++ {
			probes[i] = &arrivalProbe{}
			nodes[i] = probes[i]
		}
		r := NewRunner(Config{N: n, Seed: 42, Filter: filter, Latency: UniformLatency{Min: 1, Max: 30}}, nodes)
		r.Run(0)
		times := make([][]VirtualTime, n)
		for i := 1; i < n; i++ {
			times[i] = probes[i].times
		}
		return r.Metrics(), times
	}
	mBroadcast, tBroadcast := run(false)
	mSends, tSends := run(true)
	if !reflect.DeepEqual(mBroadcast, mSends) {
		t.Fatalf("metrics diverge:\n broadcast %+v\n sends     %+v", mBroadcast, mSends)
	}
	if !reflect.DeepEqual(tBroadcast, tSends) {
		t.Fatalf("delivery schedules diverge:\n broadcast %v\n sends     %v", tBroadcast, tSends)
	}
	if mBroadcast.MessagesDropped != 2 {
		t.Fatalf("dropped = %d, want 2 (links 0->1, 0->3)", mBroadcast.MessagesDropped)
	}
}

// recordingPlane records every OnSend link it is consulted for and issues
// fixed verdicts.
type recordingPlane struct {
	sends    []link
	delivers []link
	verdict  SendVerdict
}

type link struct{ from, to types.ProcessID }

func (p *recordingPlane) OnSend(from, to types.ProcessID, _ Message, _ VirtualTime, _ *rand.Rand) SendVerdict {
	p.sends = append(p.sends, link{from, to})
	return p.verdict
}

func (p *recordingPlane) OnDeliver(from, to types.ProcessID, _ Message, _ VirtualTime, _ *rand.Rand) DeliverVerdict {
	p.delivers = append(p.delivers, link{from, to})
	return DeliverVerdict{}
}

// TestFilteredMessageNeverReachesFaultPlane pins the documented call
// order: DropFilter first, so a filtered message is never shown to the
// plane's OnSend (and, never being enqueued, never to OnDeliver).
func TestFilteredMessageNeverReachesFaultPlane(t *testing.T) {
	n := 3
	nodes := newPingCluster(n)
	filter := func(from, _ types.ProcessID, _ Message) bool { return from != 0 }
	plane := &recordingPlane{}
	r := NewRunner(Config{N: n, Seed: 1, Filter: filter, Fault: plane}, nodes)
	r.Run(0)
	for _, l := range plane.sends {
		if l.from == 0 {
			t.Fatalf("OnSend consulted for filtered link %d->%d", l.from, l.to)
		}
	}
	for _, l := range plane.delivers {
		if l.from == 0 {
			t.Fatalf("OnDeliver consulted for filtered link %d->%d", l.from, l.to)
		}
	}
	if len(plane.sends) != (n-1)*n {
		t.Fatalf("OnSend consulted %d times, want %d (every unfiltered send)", len(plane.sends), (n-1)*n)
	}
	if len(plane.delivers) != (n-1)*n {
		t.Fatalf("OnDeliver consulted %d times, want %d (every delivery)", len(plane.delivers), (n-1)*n)
	}
}

// TestFaultPlaneDropCountsAsDropped pins that a plane drop is accounted
// exactly like a filter drop: MessagesDropped only.
func TestFaultPlaneDropCountsAsDropped(t *testing.T) {
	n := 3
	nodes := newPingCluster(n)
	plane := &recordingPlane{verdict: SendVerdict{Drop: true}}
	r := NewRunner(Config{N: n, Seed: 1, Fault: plane}, nodes)
	r.Run(0)
	m := r.Metrics()
	if m.MessagesSent != 0 || m.BytesSent != 0 || m.ByType["sim.ping"] != 0 {
		t.Fatalf("plane-dropped messages leaked into sent metrics: %+v", m)
	}
	if m.MessagesDropped != n*n {
		t.Fatalf("dropped = %d, want %d", m.MessagesDropped, n*n)
	}
	for i, nd := range nodes {
		if got := nd.(*pingNode).got; got != 0 {
			t.Fatalf("node %d received %d messages through a dropping plane", i, got)
		}
	}
}

// TestFaultPlaneDuplicatesAndExtra pins the remaining send verdicts: each
// duplicate counts as a sent message with its own delivery, and Extra
// shifts every arrival.
func TestFaultPlaneDuplicatesAndExtra(t *testing.T) {
	n := 2
	nodes := newPingCluster(n)
	plane := &recordingPlane{verdict: SendVerdict{Duplicates: 2, Extra: 10}}
	r := NewRunner(Config{N: n, Seed: 1, Latency: ConstantLatency(1), Fault: plane}, nodes)
	r.Run(0)
	m := r.Metrics()
	wantSent := n * n * 3 // every ping tripled
	if m.MessagesSent != wantSent || m.MessagesDelivered != wantSent {
		t.Fatalf("sent/delivered = %d/%d, want %d/%d", m.MessagesSent, m.MessagesDelivered, wantSent, wantSent)
	}
	if m.ByType["sim.ping"] != wantSent {
		t.Fatalf("ByType = %v, want %d pings", m.ByType, wantSent)
	}
	for i, nd := range nodes {
		pn := nd.(*pingNode)
		if pn.got != n*3 {
			t.Fatalf("node %d got %d pings, want %d", i, pn.got, n*3)
		}
		for _, at := range pn.times {
			if at != 11 {
				t.Fatalf("node %d delivery at %d, want 11 (latency 1 + extra 10)", i, at)
			}
		}
	}
}

// onceRedeliverPlane redelivers the first delivery of every (from, to)
// link exactly once, After time units later.
type onceRedeliverPlane struct {
	seen  map[link]bool
	after VirtualTime
}

func (p *onceRedeliverPlane) OnSend(types.ProcessID, types.ProcessID, Message, VirtualTime, *rand.Rand) SendVerdict {
	return SendVerdict{}
}

func (p *onceRedeliverPlane) OnDeliver(from, to types.ProcessID, _ Message, _ VirtualTime, _ *rand.Rand) DeliverVerdict {
	l := link{from, to}
	if p.seen[l] {
		return DeliverVerdict{}
	}
	if p.seen == nil {
		p.seen = map[link]bool{}
	}
	p.seen[l] = true
	return DeliverVerdict{Redeliver: true, After: p.after}
}

// TestFaultPlaneRedeliver pins the delivery-point duplication semantics:
// a redelivered copy is a second delivery of the same message —
// MessagesDelivered grows, MessagesSent does not.
func TestFaultPlaneRedeliver(t *testing.T) {
	n := 3
	nodes := newPingCluster(n)
	r := NewRunner(Config{N: n, Seed: 1, Latency: ConstantLatency(1), Fault: &onceRedeliverPlane{after: 5}}, nodes)
	r.Run(0)
	m := r.Metrics()
	if m.MessagesSent != n*n {
		t.Fatalf("sent = %d, want %d (redelivery must not count as sent)", m.MessagesSent, n*n)
	}
	if m.MessagesDelivered != 2*n*n {
		t.Fatalf("delivered = %d, want %d (every link redelivered once)", m.MessagesDelivered, 2*n*n)
	}
	for i, nd := range nodes {
		pn := nd.(*pingNode)
		if pn.got != 2*n {
			t.Fatalf("node %d got %d pings, want %d", i, pn.got, 2*n)
		}
	}
}

// msgProbe records every delivered (time, message) pair and sends nothing.
type msgProbe struct {
	times []VirtualTime
	msgs  []Message
}

func (*msgProbe) Init(Env) {}
func (p *msgProbe) Receive(e Env, _ types.ProcessID, msg Message) {
	p.times = append(p.times, e.Now())
	p.msgs = append(p.msgs, msg)
}

// churnLatency routes pings by their payload (the test's arrival-time
// dial) and everything else — the churn wake-up ticks — at a constant 3.
var churnLatency = LatencyFunc(func(_, _ types.ProcessID, msg Message, _ VirtualTime, _ *rand.Rand) VirtualTime {
	if p, ok := msg.(ping); ok {
		return VirtualTime(p.payload)
	}
	return 3
})

// TestChurnNodeSelfRecovery is the deadlock regression: a cluster that
// quiesces while the churned process is down must still recover it — the
// node's self-addressed tick loop keeps its lane alive until RecoverAt,
// when the buffered outage deliveries replay. Without the ticks this run
// ends at virtual time 10 and the buffered ping is lost inside the
// wrapper.
func TestChurnNodeSelfRecovery(t *testing.T) {
	probe := &msgProbe{}
	churn := &ChurnNode{Inner: probe, CrashAt: 5, RecoverAt: 200, Buffer: true}
	nodes := []Node{&silentNode{}, churn}
	r := NewRunner(Config{N: 2, Seed: 1, Latency: churnLatency}, nodes)
	r.init()
	r.send(0, 1, ping{payload: 10}) // arrives at t=10, inside [5, 200)
	r.Run(0)
	if !churn.Recovered() {
		t.Fatal("churn node never recovered (self wake-up loop broken)")
	}
	if len(probe.times) != 1 || probe.times[0] < 200 {
		t.Fatalf("replayed arrivals = %v, want exactly one at/after RecoverAt=200", probe.times)
	}
	if _, ok := probe.msgs[0].(ping); !ok {
		t.Fatalf("inner node saw %T, want the buffered ping (ticks must never leak inside)", probe.msgs[0])
	}
}

// TestChurnNodeBufferedReplayOrder pins that outage deliveries replay in
// arrival order, before the first post-recovery delivery.
func TestChurnNodeBufferedReplayOrder(t *testing.T) {
	probe := &msgProbe{}
	churn := &ChurnNode{Inner: probe, CrashAt: 5, RecoverAt: 200, Buffer: true}
	nodes := []Node{&silentNode{}, churn}
	r := NewRunner(Config{N: 2, Seed: 1, Latency: churnLatency}, nodes)
	r.init()
	r.send(0, 1, ping{payload: 30})  // buffered second
	r.send(0, 1, ping{payload: 10})  // buffered first
	r.send(0, 1, ping{payload: 250}) // delivered after recovery
	r.Run(0)
	var seq []int
	for _, m := range probe.msgs {
		seq = append(seq, m.(ping).payload)
	}
	if !reflect.DeepEqual(seq, []int{10, 30, 250}) {
		t.Fatalf("inner delivery order = %v, want [10 30 250] (buffer replay in arrival order)", seq)
	}
}

// TestChurnNodeUnbufferedLosesOutage pins the Buffer == false semantics:
// outage deliveries are gone, post-recovery traffic flows again.
func TestChurnNodeUnbufferedLosesOutage(t *testing.T) {
	probe := &msgProbe{}
	churn := &ChurnNode{Inner: probe, CrashAt: 5, RecoverAt: 200, Buffer: false}
	nodes := []Node{&silentNode{}, churn}
	r := NewRunner(Config{N: 2, Seed: 1, Latency: churnLatency}, nodes)
	r.init()
	r.send(0, 1, ping{payload: 4})   // before the window: processed
	r.send(0, 1, ping{payload: 10})  // inside: lost
	r.send(0, 1, ping{payload: 250}) // after: processed
	r.Run(0)
	var seq []int
	for _, m := range probe.msgs {
		seq = append(seq, m.(ping).payload)
	}
	if !reflect.DeepEqual(seq, []int{4, 250}) {
		t.Fatalf("inner delivery order = %v, want [4 250] (outage delivery lost)", seq)
	}
	if !churn.Recovered() {
		t.Fatal("unbuffered churn node must still recover at RecoverAt")
	}
}
