package sim

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

// refHeap is a verbatim copy of the single 4-ary min-heap the lane queue
// replaced. It is retained here as the differential reference: the lane
// queue's pop sequence must be byte-identical to it on every workload,
// because serial-mode delivery order is defined by this total order.
type refHeap struct {
	events []event
}

const refArity = 4

func (q *refHeap) Len() int { return len(q.events) }

func (q *refHeap) push(e event) {
	q.events = append(q.events, e)
	i := len(q.events) - 1
	for i > 0 {
		parent := (i - 1) / refArity
		if !eventLess(&e, &q.events[parent]) {
			break
		}
		q.events[i] = q.events[parent]
		i = parent
	}
	q.events[i] = e
}

func (q *refHeap) pop() event {
	ev := q.events[0]
	last := len(q.events) - 1
	moved := q.events[last]
	q.events[last] = event{}
	q.events = q.events[:last]
	if last == 0 {
		return ev
	}
	i, n := 0, last
	for {
		first := refArity*i + 1
		if first >= n {
			break
		}
		end := first + refArity
		if end > n {
			end = n
		}
		smallest := first
		for c := first + 1; c < end; c++ {
			if eventLess(&q.events[c], &q.events[smallest]) {
				smallest = c
			}
		}
		if !eventLess(&q.events[smallest], &moved) {
			break
		}
		q.events[i] = q.events[smallest]
		i = smallest
	}
	q.events[i] = moved
	return ev
}

// eventKey is the comparable identity of a popped event for the
// differential assertions.
type eventKey struct {
	at   VirtualTime
	seq  uint64
	to   types.ProcessID
	from types.ProcessID
}

func keyOf(e event) eventKey { return eventKey{at: e.at, seq: e.seq, to: e.to, from: e.from} }

// drainBoth pops every remaining event from both queues and asserts the
// sequences are identical.
func drainBoth(t *testing.T, lq *laneQueue, ref *refHeap, ctx string) {
	t.Helper()
	if lq.Len() != ref.Len() {
		t.Fatalf("%s: lane queue holds %d events, reference %d", ctx, lq.Len(), ref.Len())
	}
	for ref.Len() > 0 {
		want, got := ref.pop(), lq.pop()
		if keyOf(want) != keyOf(got) {
			t.Fatalf("%s: pop diverged: lane queue %+v, reference %+v", ctx, keyOf(got), keyOf(want))
		}
	}
	if lq.Len() != 0 {
		t.Fatalf("%s: lane queue not drained: %d left", ctx, lq.Len())
	}
}

// TestLaneQueueDifferentialRandom drives randomized workloads — duplicate
// timestamps, interleaved pushes and pops, varying lane counts — through
// the lane queue and the retained 4-ary heap and asserts identical pop
// sequences.
func TestLaneQueueDifferentialRandom(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 30, 100} {
		for seed := int64(0); seed < 30; seed++ {
			rng := rand.New(rand.NewSource(seed*1000 + int64(n)))
			var lq laneQueue
			lq.init(n)
			var ref refHeap
			var seq uint64
			now := VirtualTime(0)
			ops := 400 + rng.Intn(400)
			for op := 0; op < ops; op++ {
				if ref.Len() > 0 && rng.Intn(3) == 0 {
					want, got := ref.pop(), lq.pop()
					if keyOf(want) != keyOf(got) {
						t.Fatalf("n=%d seed=%d op=%d: pop diverged: lane queue %+v, reference %+v",
							n, seed, op, keyOf(got), keyOf(want))
					}
					// Time is monotone in a real run: later pushes never
					// predate the last pop.
					if want.at > now {
						now = want.at
					}
					continue
				}
				seq++
				e := event{
					// Small delay range forces duplicate timestamps.
					at:   now + VirtualTime(rng.Intn(4)),
					seq:  seq,
					to:   types.ProcessID(rng.Intn(n)),
					from: types.ProcessID(rng.Intn(n)),
				}
				lq.push(e)
				ref.push(e)
			}
			drainBoth(t, &lq, &ref, "random drain")
		}
	}
}

// TestLaneQueueSingleReceiverFlood pins the pathological shape the lanes
// were built to survive: every event targets one receiver, so one lane
// carries the entire backlog while the tournament stays fixed.
func TestLaneQueueSingleReceiverFlood(t *testing.T) {
	const n = 16
	rng := rand.New(rand.NewSource(7))
	var lq laneQueue
	lq.init(n)
	var ref refHeap
	var seq uint64
	for i := 0; i < 5000; i++ {
		seq++
		e := event{at: VirtualTime(rng.Intn(50)), seq: seq, to: 3, from: types.ProcessID(rng.Intn(n))}
		lq.push(e)
		ref.push(e)
	}
	drainBoth(t, &lq, &ref, "single-receiver flood")
}

// TestLaneQueueDuplicateTimestamps floods every lane at a handful of
// timestamps: the seq tie-break alone must order the pops.
func TestLaneQueueDuplicateTimestamps(t *testing.T) {
	const n = 9
	var lq laneQueue
	lq.init(n)
	var ref refHeap
	var seq uint64
	for round := 0; round < 40; round++ {
		for to := 0; to < n; to++ {
			seq++
			e := event{at: VirtualTime(round % 3), seq: seq, to: types.ProcessID(to)}
			lq.push(e)
			ref.push(e)
		}
	}
	drainBoth(t, &lq, &ref, "duplicate timestamps")
}

// TestLaneQueueFrontierHead pins the merge-front accessor: head() always
// names the (time, seq)-least pending event without removing it.
func TestLaneQueueFrontierHead(t *testing.T) {
	var lq laneQueue
	lq.init(4)
	if lq.head() != nil {
		t.Fatal("empty queue has a head")
	}
	lq.push(event{at: 5, seq: 1, to: 2})
	lq.push(event{at: 3, seq: 2, to: 0})
	lq.push(event{at: 3, seq: 3, to: 1})
	if h := lq.head(); h.at != 3 || h.seq != 2 || h.to != 0 {
		t.Fatalf("head = %+v, want at=3 seq=2 to=0", keyOf(*h))
	}
	if got := lq.pop(); got.seq != 2 {
		t.Fatalf("pop seq = %d, want 2", got.seq)
	}
	if h := lq.head(); h.at != 3 || h.seq != 3 || h.to != 1 {
		t.Fatalf("head after pop = %+v, want at=3 seq=3 to=1", keyOf(*h))
	}
}
