package abba

import (
	"math/rand"
	"testing"

	"repro/internal/coin"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// run executes a binary-agreement cluster and returns the decisions.
func run(t *testing.T, trust quorum.Assumption, inputs []int, seed int64, faulty map[types.ProcessID]sim.Node) map[types.ProcessID]int {
	t.Helper()
	n := trust.N()
	nodes := make([]sim.Node, n)
	raw := make([]*Node, n)
	for i := range nodes {
		nd := NewNode(Config{
			Trust: trust,
			Coin:  coin.NewPRF(seed*977+13, n),
			Input: inputs[i],
		})
		nodes[i] = nd
		raw[i] = nd
	}
	for p, f := range faulty {
		nodes[p] = f
		raw[p] = nil
	}
	r := sim.NewRunner(sim.Config{N: n, Seed: seed, Latency: sim.UniformLatency{Min: 1, Max: 30}}, nodes)
	r.Run(0)
	out := map[types.ProcessID]int{}
	for i, nd := range raw {
		if nd == nil {
			continue
		}
		if d, ok := nd.Decided(); ok {
			out[types.ProcessID(i)] = d
		}
	}
	return out
}

func TestUnanimousInputsDecideThatValue(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	for _, v := range []int{0, 1} {
		inputs := []int{v, v, v, v}
		for seed := int64(0); seed < 5; seed++ {
			dec := run(t, trust, inputs, seed, nil)
			if len(dec) != 4 {
				t.Fatalf("v=%d seed=%d: %d of 4 decided", v, seed, len(dec))
			}
			for p, d := range dec {
				if d != v {
					t.Fatalf("v=%d seed=%d: %v decided %d (validity violated)", v, seed, p, d)
				}
			}
		}
	}
}

func TestMixedInputsAgree(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	for seed := int64(0); seed < 20; seed++ {
		inputs := []int{0, 1, 0, 1}
		dec := run(t, trust, inputs, seed, nil)
		if len(dec) != 4 {
			t.Fatalf("seed %d: %d of 4 decided", seed, len(dec))
		}
		first := -1
		for _, d := range dec {
			if first == -1 {
				first = d
			} else if first != d {
				t.Fatalf("seed %d: agreement violated (%v)", seed, dec)
			}
		}
	}
}

func TestWithCrashFault(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	for seed := int64(0); seed < 10; seed++ {
		inputs := []int{1, 0, 1, 0}
		dec := run(t, trust, inputs, seed, map[types.ProcessID]sim.Node{3: sim.MuteNode{}})
		if len(dec) != 3 {
			t.Fatalf("seed %d: %d of 3 correct decided", seed, len(dec))
		}
		first := -1
		for _, d := range dec {
			if first == -1 {
				first = d
			} else if first != d {
				t.Fatalf("seed %d: agreement violated", seed)
			}
		}
	}
}

func TestLargerThreshold(t *testing.T) {
	trust := quorum.NewThreshold(7, 2)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		inputs := make([]int, 7)
		for i := range inputs {
			inputs[i] = rng.Intn(2)
		}
		dec := run(t, trust, inputs, int64(trial), map[types.ProcessID]sim.Node{6: sim.MuteNode{}})
		if len(dec) != 6 {
			t.Fatalf("trial %d: %d of 6 decided", trial, len(dec))
		}
		first := -1
		for _, d := range dec {
			if first == -1 {
				first = d
			} else if first != d {
				t.Fatalf("trial %d: disagreement", trial)
			}
		}
	}
}

func TestAsymmetricSystemAgreement(t *testing.T) {
	sys, err := quorum.RandomAsymmetric(quorum.RandomAsymmetricConfig{N: 8, NumSets: 2, MaxFault: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		inputs := make([]int, 8)
		for i := range inputs {
			inputs[i] = rng.Intn(2)
		}
		dec := run(t, sys, inputs, int64(trial), nil)
		if len(dec) != 8 {
			t.Fatalf("trial %d: %d of 8 decided", trial, len(dec))
		}
		first := -1
		for _, d := range dec {
			if first == -1 {
				first = d
			} else if first != d {
				t.Fatalf("trial %d: disagreement on asymmetric system", trial)
			}
		}
	}
}

func TestCounterexampleSystemAgreement(t *testing.T) {
	sys := quorum.Counterexample()
	inputs := make([]int, 30)
	for i := range inputs {
		inputs[i] = i % 2
	}
	dec := run(t, sys, inputs, 2, nil)
	if len(dec) != 30 {
		t.Fatalf("%d of 30 decided", len(dec))
	}
	first := -1
	for _, d := range dec {
		if first == -1 {
			first = d
		} else if first != d {
			t.Fatal("disagreement on counterexample system")
		}
	}
}

func TestExpectedConstantRounds(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	totalRounds, decisions := 0, 0
	for seed := int64(0); seed < 30; seed++ {
		n := trust.N()
		nodes := make([]sim.Node, n)
		raw := make([]*Node, n)
		for i := range nodes {
			nd := NewNode(Config{Trust: trust, Coin: coin.NewPRF(seed, n), Input: i % 2})
			nodes[i] = nd
			raw[i] = nd
		}
		r := sim.NewRunner(sim.Config{N: n, Seed: seed, Latency: sim.UniformLatency{Min: 1, Max: 20}}, nodes)
		r.Run(0)
		for _, nd := range raw {
			if _, ok := nd.Decided(); ok {
				totalRounds += nd.DecidedRound()
				decisions++
			}
		}
	}
	if decisions == 0 {
		t.Fatal("no decisions")
	}
	mean := float64(totalRounds) / float64(decisions)
	// Randomized consensus decides in expected O(1) rounds; with a fair
	// coin ≈ 2–3.
	if mean > 5 {
		t.Errorf("mean decision round %.2f too high for constant-round expectation", mean)
	}
	t.Logf("mean decision round: %.2f over %d decisions", mean, decisions)
}

func TestNewNodePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for input outside {0,1}")
		}
	}()
	NewNode(Config{Trust: quorum.NewThreshold(4, 1), Input: 2})
}

func TestRoundAccessor(t *testing.T) {
	nd := NewNode(Config{Trust: quorum.NewThreshold(4, 1), Input: 1})
	if nd.Round() != 0 {
		t.Error("round before Init should be 0")
	}
	if _, ok := nd.Decided(); ok {
		t.Error("decided before run")
	}
	if nd.DecidedRound() != 0 {
		t.Error("DecidedRound before decision should be 0")
	}
}
