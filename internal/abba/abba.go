// Package abba implements asymmetric binary Byzantine agreement: the
// randomized binary consensus with asymmetric quorums of Alpos et al.
// ("Asymmetric distributed trust"), which the paper cites as an existing
// asymmetric primitive (§1, §2.3) and whose quorum/kernel style the novel
// gather and consensus protocols follow.
//
// The protocol is the signature-free randomized consensus of Mostéfaoui,
// Moumen and Raynal, with threshold rules generalized:
//
//	round r:
//	  1. BV-broadcast the current estimate: relay VAL(r,b) after a kernel
//	     of them, accept b into binValues(r) after a quorum.
//	  2. Once binValues(r) is non-empty, broadcast AUX(r, w) with some
//	     w ∈ binValues(r).
//	  3. Wait for AUX messages from one of the local quorums whose values
//	     all lie in binValues(r); let V be their value set.
//	  4. Draw the common coin bit s = coin(r):
//	     V = {b} and b == s → decide(b);
//	     V = {b} and b != s → estimate = b;
//	     V = {0,1}          → estimate = s.
//
// Safety (agreement, validity) holds for wise processes; termination with
// probability 1 for the maximal guild. Termination uses the standard
// Bracha gadget: deciders broadcast DECIDE(b); a kernel of DECIDEs is
// relayed, a quorum of DECIDEs halts the process. Deciders keep
// participating in rounds until the quorum of DECIDEs forms, so stragglers
// are never starved of VAL/AUX messages.
package abba

import (
	"repro/internal/coin"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// Message types.

type valMsg struct {
	Round int
	B     int
}

type auxMsg struct {
	Round int
	B     int
}

type decideMsg struct {
	B int
}

// Config configures one binary-agreement node.
type Config struct {
	Trust quorum.Assumption
	// Coin yields the per-round common bit.
	Coin coin.PRF
	// Input is the node's proposal (0 or 1).
	Input int
	// MaxRounds stops the node after this many rounds without a decision
	// so simulations quiesce (0 means 64).
	MaxRounds int
}

// roundState holds the per-round BV/AUX bookkeeping. All tallies are
// incremental quorum trackers: each delivery updates residual counts and
// the phase triggers read in O(1) instead of re-scanning Q_i.
type roundState struct {
	valRecv   [2]*quorum.Tracker // who sent VAL(b)
	relayed   [2]bool
	binValues [2]bool
	auxRecv   [2]*quorum.Tracker // who sent AUX(b)
	// auxInBin tracks the union of AUX senders whose value lies in
	// binValues — the phase-3 mixed-value quorum test. AUX senders are fed
	// in live once their value is in binValues, and bulk-merged when a
	// value joins binValues later.
	auxInBin *quorum.Tracker
	auxSent  bool
	done     bool
}

// Node is one process running the binary agreement.
type Node struct {
	cfg  Config
	self types.ProcessID
	n    int

	round    int
	estimate int

	// An ABBA instance decides one binary value and is then discarded
	// whole by its owner (acs starts n instances per run); the round count
	// until termination is expected O(1) under the common coin, so the map
	// is bounded by instance lifetime, not by a watermark.
	//lint:retained one-shot instance, discarded whole after decision; expected O(1) rounds
	rounds map[int]*roundState

	decided  bool
	decision int
	// decidedRound records when the decision happened (for latency
	// experiments).
	decidedRound int

	decideRecv [2]*quorum.Tracker
	sentDecide bool
	halted     bool
}

var _ sim.Node = (*Node)(nil)

// NewNode creates a binary-agreement node; the protocol starts at Init.
func NewNode(cfg Config) *Node {
	if cfg.Input != 0 && cfg.Input != 1 {
		panic("abba: input must be 0 or 1")
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 64
	}
	return &Node{cfg: cfg, estimate: cfg.Input, rounds: map[int]*roundState{}}
}

func (n *Node) state(r int) *roundState {
	st, ok := n.rounds[r]
	if !ok {
		st = &roundState{auxInBin: quorum.NewTracker(n.cfg.Trust, n.self)}
		for b := 0; b < 2; b++ {
			st.valRecv[b] = quorum.NewTracker(n.cfg.Trust, n.self)
			st.auxRecv[b] = quorum.NewTracker(n.cfg.Trust, n.self)
		}
		n.rounds[r] = st
	}
	return st
}

// Init implements sim.Node.
func (n *Node) Init(env sim.Env) {
	n.self = env.Self()
	n.n = env.N()
	n.decideRecv[0] = quorum.NewTracker(n.cfg.Trust, n.self)
	n.decideRecv[1] = quorum.NewTracker(n.cfg.Trust, n.self)
	n.round = 1
	n.startRound(env)
}

// startRound BV-broadcasts the current estimate.
func (n *Node) startRound(env sim.Env) {
	st := n.state(n.round)
	if !st.relayed[n.estimate] {
		st.relayed[n.estimate] = true
		env.Broadcast(valMsg{Round: n.round, B: n.estimate})
	}
	n.progress(env)
}

// Receive implements sim.Node.
func (n *Node) Receive(env sim.Env, from types.ProcessID, msg sim.Message) {
	if n.halted {
		return
	}
	switch m := msg.(type) {
	case decideMsg:
		if m.B != 0 && m.B != 1 {
			return
		}
		n.decideRecv[m.B].Add(from)
		if !n.sentDecide && n.decideRecv[m.B].HasKernel() {
			n.sentDecide = true
			env.Broadcast(decideMsg{B: m.B})
		}
		if n.decideRecv[m.B].HasQuorum() {
			if !n.decided {
				n.decided = true
				n.decision = m.B
				n.decidedRound = n.round
			}
			n.halted = true
		}
		return
	case valMsg:
		if m.B != 0 && m.B != 1 {
			return
		}
		st := n.state(m.Round)
		st.valRecv[m.B].Add(from)
		// Kernel relay (totality of BV-broadcast).
		if !st.relayed[m.B] && st.valRecv[m.B].HasKernel() {
			st.relayed[m.B] = true
			env.Broadcast(valMsg{Round: m.Round, B: m.B})
		}
		// Quorum acceptance. AUX senders for the newly accepted value now
		// count toward the mixed-value phase-3 quorum.
		if !st.binValues[m.B] && st.valRecv[m.B].HasQuorum() {
			st.binValues[m.B] = true
			st.auxInBin.AddSet(st.auxRecv[m.B].Set())
		}
	case auxMsg:
		if m.B != 0 && m.B != 1 {
			return
		}
		st := n.state(m.Round)
		st.auxRecv[m.B].Add(from)
		if st.binValues[m.B] {
			st.auxInBin.Add(from)
		}
	default:
		return
	}
	n.progress(env)
}

// progress advances the current round's phases as far as possible.
func (n *Node) progress(env sim.Env) {
	for {
		if n.round > n.cfg.MaxRounds {
			return
		}
		st := n.state(n.round)
		// Phase 2: send AUX once binValues is non-empty.
		if !st.auxSent && (st.binValues[0] || st.binValues[1]) {
			st.auxSent = true
			w := 0
			if st.binValues[1] {
				w = 1
			}
			env.Broadcast(auxMsg{Round: n.round, B: w})
		}
		if !st.auxSent || st.done {
			return
		}
		// Phase 3: a quorum of AUX senders whose values ⊆ binValues.
		vals, ok := n.auxQuorumValues(st)
		if !ok {
			return
		}
		// Phase 4: coin.
		st.done = true
		s := n.cfg.Coin.Bit(n.round)
		if len(vals) == 1 {
			b := vals[0]
			if b == s && !n.decided {
				n.decided = true
				n.decision = b
				n.decidedRound = n.round
				if !n.sentDecide {
					n.sentDecide = true
					env.Broadcast(decideMsg{B: b})
				}
			}
			n.estimate = b
		} else {
			n.estimate = s
		}
		n.round++
		nst := n.state(n.round)
		if !nst.relayed[n.estimate] {
			nst.relayed[n.estimate] = true
			env.Broadcast(valMsg{Round: n.round, B: n.estimate})
		}
	}
}

// auxQuorumValues looks for a quorum of AUX senders whose values all lie
// in binValues; it returns the distinct values of one such quorum. All
// tests are O(1) reads of the round's trackers.
func (n *Node) auxQuorumValues(st *roundState) ([]int, bool) {
	// Prefer single-value quorums (more decisive outcome).
	for b := 0; b < 2; b++ {
		if st.binValues[b] && st.auxRecv[b].HasQuorum() {
			return []int{b}, true
		}
	}
	if st.auxInBin.HasQuorum() {
		var vals []int
		if st.binValues[0] && st.auxRecv[0].Count() > 0 {
			vals = append(vals, 0)
		}
		if st.binValues[1] && st.auxRecv[1].Count() > 0 {
			vals = append(vals, 1)
		}
		if len(vals) > 0 {
			return vals, true
		}
	}
	return nil, false
}

// Decided reports the decision, if reached.
func (n *Node) Decided() (int, bool) {
	if !n.decided {
		return 0, false
	}
	return n.decision, true
}

// DecidedRound returns the round the decision happened in (0 if none).
func (n *Node) DecidedRound() int {
	if !n.decided {
		return 0
	}
	return n.decidedRound
}

// Round returns the node's current round.
func (n *Node) Round() int { return n.round }
