// Binary wire codec registration for the binary-agreement messages (see
// internal/wire for the frame layout and tag-range assignments). With
// these — plus the acs envelope codec in internal/acs — ABBA and ACS runs
// cross the TCP transport with the same bytes the simulator meters.
package abba

import (
	"fmt"

	"repro/internal/wire"
)

// Wire tags (range 70–74, assigned in internal/wire's central table).
const (
	wireTagVal    = 70
	wireTagAux    = 71
	wireTagDecide = 72
)

// maxWireRound bounds round numbers accepted off the wire.
const maxWireRound = 1 << 30

func init() {
	registerRoundBitMsg(wireTagVal, valMsg{},
		func(m any) (int, int) { v := m.(valMsg); return v.Round, v.B },
		func(r, b int) any { return valMsg{Round: r, B: b} })
	registerRoundBitMsg(wireTagAux, auxMsg{},
		func(m any) (int, int) { v := m.(auxMsg); return v.Round, v.B },
		func(r, b int) any { return auxMsg{Round: r, B: b} })
	wire.Register(wireTagDecide, decideMsg{}, wire.Codec{
		Size: func(msg any) (int, bool) { return wire.IntSize(msg.(decideMsg).B), true },
		Append: func(dst []byte, msg any) ([]byte, error) {
			return wire.AppendInt(dst, msg.(decideMsg).B), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			bit, rest, err := readBit(b)
			if err != nil {
				return nil, b, err
			}
			return decideMsg{B: bit}, rest, nil
		},
	})
}

// registerRoundBitMsg registers one of the two structurally identical
// round-tagged bit messages: [uvarint round][uvarint b].
func registerRoundBitMsg(tag uint64, prototype any,
	get func(any) (int, int), build func(int, int) any) {
	wire.Register(tag, prototype, wire.Codec{
		Size: func(msg any) (int, bool) {
			r, b := get(msg)
			return wire.IntSize(r) + wire.IntSize(b), true
		},
		Append: func(dst []byte, msg any) ([]byte, error) {
			r, b := get(msg)
			dst = wire.AppendInt(dst, r)
			return wire.AppendInt(dst, b), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			r, rest, err := wire.ReadInt(b, maxWireRound)
			if err != nil {
				return nil, b, fmt.Errorf("abba: wire round: %w", err)
			}
			bit, rest, err := readBit(rest)
			if err != nil {
				return nil, b, err
			}
			return build(r, bit), rest, nil
		},
	})
}

// readBit decodes a binary value, rejecting anything but 0 or 1.
func readBit(b []byte) (int, []byte, error) {
	bit, rest, err := wire.ReadInt(b, 1)
	if err != nil {
		return 0, b, fmt.Errorf("abba: wire bit: %w", err)
	}
	return bit, rest, nil
}
