package abba

import (
	"testing"

	"repro/internal/wire"
)

// TestABBAWireRoundTrip pins the binary-agreement wire codecs: exact
// frames, lossless round trips, and bit-range validation off the wire.
func TestABBAWireRoundTrip(t *testing.T) {
	msgs := []any{
		valMsg{Round: 0, B: 0},
		valMsg{Round: 7, B: 1},
		auxMsg{Round: 3, B: 0},
		auxMsg{Round: 1 << 16, B: 1},
		decideMsg{B: 0},
		decideMsg{B: 1},
	}
	for _, msg := range msgs {
		enc, err := wire.Marshal(msg)
		if err != nil {
			t.Fatalf("%#v: marshal: %v", msg, err)
		}
		sz, ok := wire.EncodedSize(msg)
		if !ok || sz != len(enc) {
			t.Fatalf("%#v: EncodedSize %d/%v != encoded length %d", msg, sz, ok, len(enc))
		}
		dec, rest, err := wire.Decode(enc)
		if err != nil || len(rest) != 0 {
			t.Fatalf("%#v: decode: %v (rest %d)", msg, err, len(rest))
		}
		if dec != msg {
			t.Fatalf("round trip mutated %#v into %#v", msg, dec)
		}
	}
}

// TestABBAWireRejectsBadBit checks off-the-wire validation: a value
// outside {0,1} in a bit position must not decode.
func TestABBAWireRejectsBadBit(t *testing.T) {
	frame := wire.AppendUvarint(nil, wireTagVal)
	frame = wire.AppendInt(frame, 3) // round
	frame = wire.AppendInt(frame, 2) // invalid bit
	if _, _, err := wire.Decode(frame); err == nil {
		t.Fatal("valMsg with bit=2 accepted")
	}
	frame = wire.AppendUvarint(nil, wireTagDecide)
	frame = wire.AppendInt(frame, 9)
	if _, _, err := wire.Decode(frame); err == nil {
		t.Fatal("decideMsg with bit=9 accepted")
	}
}
