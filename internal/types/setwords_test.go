package types

import "testing"

// TestNewSetFromWords pins the validated raw-word constructor the wire
// codec decodes bitsets through.
func TestNewSetFromWords(t *testing.T) {
	orig := NewSetOf(70, 0, 3, 64, 69)
	got, err := NewSetFromWords(orig.UniverseSize(), orig.Words())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(orig) {
		t.Fatalf("round trip mismatch: %v vs %v", got, orig)
	}
	// The result must not alias the input words.
	words := orig.Words()
	words[0] = ^uint64(0)
	if got.Contains(1) {
		t.Fatal("NewSetFromWords aliased caller's words")
	}

	if _, err := NewSetFromWords(-1, nil); err == nil {
		t.Error("negative universe accepted")
	}
	if _, err := NewSetFromWords(70, make([]uint64, 1)); err == nil {
		t.Error("short word slice accepted")
	}
	if _, err := NewSetFromWords(70, make([]uint64, 3)); err == nil {
		t.Error("long word slice accepted")
	}
	// Bits beyond the universe would corrupt Count/quorum arithmetic.
	if _, err := NewSetFromWords(3, []uint64{0xF0}); err == nil {
		t.Error("stray high bits accepted")
	}
	if s, err := NewSetFromWords(0, nil); err != nil || s.UniverseSize() != 0 {
		t.Errorf("empty universe rejected: %v", err)
	}
}
