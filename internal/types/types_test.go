package types

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(70) // spans two words
	if !s.IsEmpty() {
		t.Fatal("new set should be empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(69)
	if got := s.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	for _, p := range []ProcessID{0, 63, 64, 69} {
		if !s.Contains(p) {
			t.Errorf("Contains(%d) = false, want true", p)
		}
	}
	if s.Contains(1) || s.Contains(65) {
		t.Error("contains non-members")
	}
	s.Remove(63)
	if s.Contains(63) {
		t.Error("Remove failed")
	}
	if got := s.Count(); got != 3 {
		t.Fatalf("Count after remove = %d, want 3", got)
	}
}

func TestSetContainsOutOfRange(t *testing.T) {
	s := NewSet(10)
	if s.Contains(-1) || s.Contains(10) || s.Contains(100) {
		t.Error("out-of-range Contains should be false")
	}
}

func TestSetAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range should panic")
		}
	}()
	s := NewSet(5)
	s.Add(5)
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Union with mismatched universes should panic")
		}
	}()
	a := NewSet(5)
	b := NewSet(6)
	a.Union(b)
}

func TestFullSetAndComplement(t *testing.T) {
	for _, n := range []int{0, 1, 30, 63, 64, 65, 130} {
		f := FullSet(n)
		if got := f.Count(); got != n {
			t.Errorf("FullSet(%d).Count = %d", n, got)
		}
		if !f.Complement().IsEmpty() {
			t.Errorf("FullSet(%d).Complement should be empty", n)
		}
	}
}

func TestSetOps(t *testing.T) {
	a := NewSetOf(10, 1, 2, 3)
	b := NewSetOf(10, 3, 4, 5)

	if got := a.Union(b); !got.Equal(NewSetOf(10, 1, 2, 3, 4, 5)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewSetOf(10, 3)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Subtract(b); !got.Equal(NewSetOf(10, 1, 2)) {
		t.Errorf("Subtract = %v", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false, want true")
	}
	if a.Intersects(NewSetOf(10, 7, 8)) {
		t.Error("Intersects disjoint = true")
	}
	if !NewSetOf(10, 1, 2).IsSubsetOf(a) {
		t.Error("IsSubsetOf = false, want true")
	}
	if a.IsSubsetOf(b) {
		t.Error("IsSubsetOf = true, want false")
	}
}

func TestUnionInPlace(t *testing.T) {
	a := NewSetOf(10, 1)
	a.UnionInPlace(NewSetOf(10, 2, 3))
	if !a.Equal(NewSetOf(10, 1, 2, 3)) {
		t.Errorf("UnionInPlace = %v", a)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewSetOf(10, 1, 2)
	c := a.Clone()
	c.Add(5)
	if a.Contains(5) {
		t.Error("Clone is not independent")
	}
}

func TestMembersAndForEach(t *testing.T) {
	s := NewSetOf(130, 0, 64, 129, 5)
	want := []ProcessID{0, 5, 64, 129}
	got := s.Members()
	if len(got) != len(want) {
		t.Fatalf("Members = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
	var collected []ProcessID
	s.ForEach(func(p ProcessID) bool {
		collected = append(collected, p)
		return true
	})
	if len(collected) != 4 {
		t.Fatalf("ForEach visited %d", len(collected))
	}
	// Early stop.
	count := 0
	s.ForEach(func(ProcessID) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("ForEach early stop visited %d", count)
	}
}

func TestStringNotation(t *testing.T) {
	s := NewSetOf(30, 0, 1, 15)
	if got := s.String(); got != "{1, 2, 16}" {
		t.Errorf("String = %q", got)
	}
	if got := ProcessID(4).String(); got != "p5" {
		t.Errorf("ProcessID.String = %q", got)
	}
}

func TestKeyDistinguishesSets(t *testing.T) {
	a := NewSetOf(70, 1, 64)
	b := NewSetOf(70, 1, 65)
	if a.Key() == b.Key() {
		t.Error("Key collision for distinct sets")
	}
	if a.Key() != a.Clone().Key() {
		t.Error("Key not stable across clones")
	}
}

// randomSet builds a reproducible random set for property tests.
func randomSet(r *rand.Rand, n int) Set {
	s := NewSet(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			s.Add(ProcessID(i))
		}
	}
	return s
}

func TestSetAlgebraProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	n := 100

	// De Morgan: complement(a ∪ b) == complement(a) ∩ complement(b).
	deMorgan := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r, n), randomSet(r, n)
		return a.Union(b).Complement().Equal(a.Complement().Intersect(b.Complement()))
	}
	if err := quick.Check(deMorgan, cfg); err != nil {
		t.Errorf("De Morgan: %v", err)
	}

	// a \ b == a ∩ complement(b).
	subtractDef := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r, n), randomSet(r, n)
		return a.Subtract(b).Equal(a.Intersect(b.Complement()))
	}
	if err := quick.Check(subtractDef, cfg); err != nil {
		t.Errorf("subtract definition: %v", err)
	}

	// |a ∪ b| + |a ∩ b| == |a| + |b| (inclusion-exclusion).
	inclExcl := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r, n), randomSet(r, n)
		return a.Union(b).Count()+a.Intersect(b).Count() == a.Count()+b.Count()
	}
	if err := quick.Check(inclExcl, cfg); err != nil {
		t.Errorf("inclusion-exclusion: %v", err)
	}

	// Subset: a ∩ b ⊆ a ⊆ a ∪ b.
	subsetChain := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r, n), randomSet(r, n)
		return a.Intersect(b).IsSubsetOf(a) && a.IsSubsetOf(a.Union(b))
	}
	if err := quick.Check(subsetChain, cfg); err != nil {
		t.Errorf("subset chain: %v", err)
	}

	// Members round-trip.
	roundTrip := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r, n)
		return NewSetOf(n, a.Members()...).Equal(a)
	}
	if err := quick.Check(roundTrip, cfg); err != nil {
		t.Errorf("members round trip: %v", err)
	}
}
