// Package types provides the foundational value types shared by every other
// package in this repository: process identifiers, process-set bitsets, and
// small deterministic-randomness helpers.
//
// The paper models a system of n processes P = {p_1, ..., p_n}. We identify
// processes by zero-based ProcessID values in [0, n).
package types

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"
)

// ProcessID identifies a process. IDs are dense and zero-based: a system of
// n processes uses IDs 0..n-1.
type ProcessID int

// String returns the conventional 1-based name used by the paper ("p5").
func (p ProcessID) String() string {
	return "p" + strconv.Itoa(int(p)+1)
}

const wordBits = 64

// Set is a fixed-universe bitset over process IDs. The zero value is an
// empty set over a zero-sized universe; use NewSet to create a set over a
// universe of n processes.
//
// All binary operations (Union, Intersect, ...) require both operands to
// have the same universe size and panic otherwise: mixing universes is
// always a programming error in this codebase.
type Set struct {
	n     int
	words []uint64
}

// NewSet returns an empty set over a universe of n processes.
func NewSet(n int) Set {
	if n < 0 {
		panic("types: negative universe size")
	}
	return Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// NewSetOf returns a set over a universe of n processes containing the given
// members.
func NewSetOf(n int, members ...ProcessID) Set {
	s := NewSet(n)
	for _, m := range members {
		s.Add(m)
	}
	return s
}

// FullSet returns the set containing every process in a universe of size n.
func FullSet(n int) Set {
	s := NewSet(n)
	for w := range s.words {
		s.words[w] = ^uint64(0)
	}
	s.trim()
	return s
}

// trim clears bits above the universe size.
func (s *Set) trim() {
	if len(s.words) == 0 {
		return
	}
	if rem := s.n % wordBits; rem != 0 {
		s.words[len(s.words)-1] &= (uint64(1) << uint(rem)) - 1
	}
}

// UniverseSize returns the number of processes in the set's universe.
func (s Set) UniverseSize() int { return s.n }

func (s Set) checkBounds(p ProcessID) {
	if p < 0 || int(p) >= s.n {
		panic(fmt.Sprintf("types: process %d out of universe [0,%d)", int(p), s.n))
	}
}

func (s Set) checkSameUniverse(t Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("types: universe mismatch %d vs %d", s.n, t.n))
	}
}

// Add inserts p into the set.
func (s *Set) Add(p ProcessID) {
	s.checkBounds(p)
	s.words[int(p)/wordBits] |= 1 << (uint(p) % wordBits)
}

// Remove deletes p from the set.
func (s *Set) Remove(p ProcessID) {
	s.checkBounds(p)
	s.words[int(p)/wordBits] &^= 1 << (uint(p) % wordBits)
}

// Contains reports whether p is a member.
func (s Set) Contains(p ProcessID) bool {
	if p < 0 || int(p) >= s.n {
		return false
	}
	return s.words[int(p)/wordBits]&(1<<(uint(p)%wordBits)) != 0
}

// Count returns the cardinality of the set.
func (s Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsEmpty reports whether the set has no members.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	c := Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Union returns s ∪ t as a new set.
func (s Set) Union(t Set) Set {
	s.checkSameUniverse(t)
	r := s.Clone()
	for i, w := range t.words {
		r.words[i] |= w
	}
	return r
}

// UnionInPlace adds every member of t to s.
func (s *Set) UnionInPlace(t Set) {
	s.checkSameUniverse(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// Intersect returns s ∩ t as a new set.
func (s Set) Intersect(t Set) Set {
	s.checkSameUniverse(t)
	r := s.Clone()
	for i, w := range t.words {
		r.words[i] &= w
	}
	return r
}

// Subtract returns s \ t as a new set.
func (s Set) Subtract(t Set) Set {
	s.checkSameUniverse(t)
	r := s.Clone()
	for i, w := range t.words {
		r.words[i] &^= w
	}
	return r
}

// Complement returns P \ s over the set's universe.
func (s Set) Complement() Set {
	return FullSet(s.n).Subtract(s)
}

// IsSubsetOf reports whether every member of s is in t.
func (s Set) IsSubsetOf(t Set) bool {
	s.checkSameUniverse(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ t is non-empty.
func (s Set) Intersects(t Set) bool {
	s.checkSameUniverse(t)
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and t have identical members and universe.
func (s Set) Equal(t Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// Members returns the members in ascending order.
func (s Set) Members() []ProcessID {
	out := make([]ProcessID, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, ProcessID(wi*wordBits+b))
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn for every member in ascending order. Iteration stops if
// fn returns false.
func (s Set) ForEach(fn func(ProcessID) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(ProcessID(wi*wordBits + b)) {
				return
			}
			w &= w - 1
		}
	}
}

// Key returns a compact string usable as a map key for deduplication. The
// encoding is the raw little-endian bytes of the backing words — not
// printable, but map keys never are displayed, and this avoids the
// per-word formatting that used to dominate the gather/common-core dedup
// paths.
func (s Set) Key() string {
	b := make([]byte, 0, len(s.words)*8)
	for _, w := range s.words {
		b = append(b,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return string(b)
}

// Words exposes the backing word slice (bit j of word k is process
// k*64+j). It is shared, not copied: callers must treat it as read-only.
// The quorum package's compiled evaluator uses it to run word-parallel
// subset/intersection tests without per-call universe checks.
func (s Set) Words() []uint64 { return s.words }

// NewSetFromWords builds a set over a universe of n processes from raw
// backing words in the layout Words and Key expose (bit j of word k is
// process k*64+j). The words are copied. It returns an error — rather
// than panicking like the in-process constructors — when the word count
// does not match the universe or a bit is set beyond it, because the
// input typically comes off the wire from an untrusted peer.
func NewSetFromWords(n int, words []uint64) (Set, error) {
	if n < 0 {
		return Set{}, fmt.Errorf("types: negative universe size %d", n)
	}
	wc := (n + wordBits - 1) / wordBits
	if len(words) != wc {
		return Set{}, fmt.Errorf("types: %d words for universe %d (want %d)", len(words), n, wc)
	}
	if wc > 0 {
		if rem := n % wordBits; rem != 0 && words[wc-1]>>uint(rem) != 0 {
			return Set{}, fmt.Errorf("types: set words carry bits beyond universe %d", n)
		}
	}
	s := Set{n: n, words: make([]uint64, wc)}
	copy(s.words, words)
	return s, nil
}

// String renders the set in the paper's 1-based notation, e.g. {1, 2, 16}.
func (s Set) String() string {
	ms := s.Members()
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = strconv.Itoa(int(m) + 1)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// SortedCopy returns the input IDs sorted ascending (convenience for tests
// and deterministic output).
func SortedCopy(ids []ProcessID) []ProcessID {
	out := make([]ProcessID, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
