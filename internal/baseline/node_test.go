package baseline_test

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/coin"
	"repro/internal/harness"
	"repro/internal/quorum"
	"repro/internal/rider"
	"repro/internal/sim"
	"repro/internal/types"
)

func checkAll(t *testing.T, res harness.RiderResult, within types.Set) {
	t.Helper()
	if err := res.CheckTotalOrder(within); err != nil {
		t.Error(err)
	}
	if err := res.CheckIntegrity(within); err != nil {
		t.Error(err)
	}
	if err := res.CheckAgreement(within); err != nil {
		t.Error(err)
	}
}

func TestSymmetricBasic(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	res := harness.RunRider(harness.RiderConfig{
		Kind:       harness.Symmetric,
		Trust:      trust,
		NumWaves:   8,
		TxPerBlock: 2,
		Seed:       1,
		CoinSeed:   1,
	})
	for p, nr := range res.Nodes {
		if nr.DecidedWave == 0 {
			t.Errorf("%v decided no wave", p)
		}
		if nr.Round < 32 {
			t.Errorf("%v stalled at round %d", p, nr.Round)
		}
	}
	checkAll(t, res, types.FullSet(4))
	if err := res.CheckValidity(types.FullSet(4), 1, 1); err != nil {
		t.Error(err)
	}
}

func TestSymmetricManySeeds(t *testing.T) {
	trust := quorum.NewThreshold(7, 2)
	for seed := int64(0); seed < 5; seed++ {
		res := harness.RunRider(harness.RiderConfig{
			Kind:       harness.Symmetric,
			Trust:      trust,
			NumWaves:   5,
			TxPerBlock: 1,
			Seed:       seed,
			CoinSeed:   seed,
			Latency:    sim.UniformLatency{Min: 1, Max: 30},
		})
		checkAll(t, res, types.FullSet(7))
	}
}

func TestSymmetricWithCrash(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	res := harness.RunRider(harness.RiderConfig{
		Kind:       harness.Symmetric,
		Trust:      trust,
		NumWaves:   8,
		TxPerBlock: 1,
		Seed:       2,
		CoinSeed:   2,
		Faulty:     map[types.ProcessID]sim.Node{3: sim.MuteNode{}},
	})
	correct := types.NewSetOf(4, 0, 1, 2)
	committed := 0
	for _, p := range correct.Members() {
		if res.Nodes[p].Round < 32 {
			t.Errorf("%v stalled at round %d", p, res.Nodes[p].Round)
		}
		if res.Nodes[p].DecidedWave > 0 {
			committed++
		}
	}
	if committed == 0 {
		t.Error("no correct process committed with one crash")
	}
	checkAll(t, res, correct)
}

// TestSymmetricExpectedCommitRate: DAG-Rider commits in expectation every
// 3/2 waves; since our common cores are usually larger than 2f+1, the
// empirical rate should be comfortably below 2.
func TestSymmetricExpectedCommitRate(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	total, runs := 0.0, 0
	for seed := int64(0); seed < 6; seed++ {
		res := harness.RunRider(harness.RiderConfig{
			Kind:     harness.Symmetric,
			Trust:    trust,
			NumWaves: 10,
			Seed:     seed,
			CoinSeed: seed * 13,
		})
		for p := range res.Nodes {
			if w, ok := res.WavesPerCommit(p); ok {
				total += w
				runs++
			}
		}
	}
	if runs == 0 {
		t.Fatal("no commits")
	}
	mean := total / float64(runs)
	if mean > 2.0 {
		t.Errorf("mean waves/commit %.2f exceeds expectation", mean)
	}
	t.Logf("symmetric mean waves per commit: %.3f", mean)
}

// TestLeaderChainInvariant mirrors the core test on the baseline.
func TestLeaderChainInvariant(t *testing.T) {
	c := coin.NewPRF(9, 4)
	nodes := make([]sim.Node, 4)
	raw := make([]*baseline.Node, 4)
	for i := range nodes {
		nd := baseline.NewNode(baseline.Config{
			N: 4, F: 1, Coin: c,
			Workload: rider.SyntheticWorkload{Self: types.ProcessID(i), TxPerBlock: 1},
			MaxRound: 40,
		})
		nodes[i] = nd
		raw[i] = nd
	}
	r := sim.NewRunner(sim.Config{N: 4, Seed: 9, Latency: sim.UniformLatency{Min: 1, Max: 25}}, nodes)
	r.Run(0)
	for i, nd := range raw {
		if err := harness.CheckCommittedLeaderChain(nd.DAG(), nd.Commits()); err != nil {
			t.Errorf("node %d: %v", i, err)
		}
	}
}

// TestSymmetricAsymmetricEquivalence: on the same threshold system with the
// same coin, both protocols must commit the same leaders for the waves
// both decided (the asymmetric protocol generalizes the symmetric one).
func TestSymmetricAsymmetricEquivalence(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	sym := harness.RunRider(harness.RiderConfig{
		Kind: harness.Symmetric, Trust: trust, NumWaves: 6, Seed: 5, CoinSeed: 11,
	})
	asym := harness.RunRider(harness.RiderConfig{
		Kind: harness.Asymmetric, Trust: trust, NumWaves: 6, Seed: 5, CoinSeed: 11,
	})
	// Committed leaders for each wave must agree where both committed.
	symLeaders := map[int]types.ProcessID{}
	for _, nr := range sym.Nodes {
		for _, c := range nr.Commits {
			symLeaders[c.Wave] = c.Leader.Source
		}
	}
	for _, nr := range asym.Nodes {
		for _, c := range nr.Commits {
			if want, ok := symLeaders[c.Wave]; ok && want != c.Leader.Source {
				t.Fatalf("wave %d: symmetric leader %v, asymmetric %v", c.Wave, want, c.Leader.Source)
			}
		}
	}
}

func TestNewNodePanicsOnBadThreshold(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n<=3f")
		}
	}()
	baseline.NewNode(baseline.Config{N: 3, F: 1})
}
