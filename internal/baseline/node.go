// Package baseline implements the original symmetric DAG-Rider protocol
// (Keidar et al., "All You Need is DAG") as the comparison baseline for the
// paper's asymmetric protocol:
//
//   - rounds advance after delivering vertices from n−f processes,
//   - a vertex is valid if it carries at least n−f strong edges,
//   - a wave is 4 rounds; its coin-elected round-1 leader commits when at
//     least 2f+1 round-4 vertices have strong paths to it,
//   - committed leaders chain backwards through strong paths and their
//     causal histories are delivered in a deterministic order.
//
// The structure intentionally parallels internal/core so that the
// experiments compare protocol rules, not implementation styles. The
// difference is exactly what the paper changes: quorum predicates and the
// ACK/READY/CONFIRM gather gating.
package baseline

import (
	"repro/internal/broadcast"
	"repro/internal/coin"
	"repro/internal/dag"
	"repro/internal/quorum"
	"repro/internal/rider"
	"repro/internal/sim"
	"repro/internal/types"
)

// Config configures one DAG-Rider node.
type Config struct {
	// N and F are the threshold parameters (n > 3f).
	N, F int
	// Coin elects wave leaders; shared by all nodes of a run.
	Coin coin.Source
	// Workload supplies blocks; nil means empty blocks.
	Workload rider.Workload
	// MaxRound stops vertex creation beyond this round; 0 means unbounded.
	MaxRound int
}

// Node is one process running symmetric DAG-Rider.
type Node struct {
	cfg   Config
	trust quorum.Threshold
	self  types.ProcessID

	arb *broadcast.Reliable
	dag *dag.DAG

	r      int
	buffer []*dag.Vertex

	decidedWave int
	// The baseline is the deliberately naive reference implementation the
	// optimized core is differential-tested against; it retains all
	// history so runs can be compared delivery-by-delivery, and it is
	// never run long-lived.
	//lint:retained reference implementation, retains full history for differential tests
	delivered map[dag.VertexRef]bool

	//lint:retained reference implementation, retains full history for differential tests
	deliveries []rider.Delivery
	//lint:retained reference implementation, retains full history for differential tests
	commits []rider.CommitEvent
}

var _ sim.Node = (*Node)(nil)

// NewNode creates a DAG-Rider node; the protocol starts at Init.
func NewNode(cfg Config) *Node {
	return &Node{
		cfg:       cfg,
		trust:     quorum.NewThreshold(cfg.N, cfg.F),
		delivered: map[dag.VertexRef]bool{},
	}
}

// Init implements sim.Node.
func (n *Node) Init(env sim.Env) {
	n.self = env.Self()
	n.dag = dag.New(cfgN(env, n.cfg))
	for _, g := range rider.Genesis(env.N()) {
		if err := n.dag.Add(g); err != nil {
			panic("baseline: genesis insertion failed: " + err.Error())
		}
	}
	n.arb = broadcast.NewReliable(n.self, n.trust, n.onVertex)
	n.step(env)
}

func cfgN(env sim.Env, cfg Config) int {
	if cfg.N != env.N() {
		panic("baseline: config N does not match simulation size")
	}
	return cfg.N
}

// Receive implements sim.Node.
func (n *Node) Receive(env sim.Env, from types.ProcessID, msg sim.Message) {
	if n.arb.Handle(env, from, msg) {
		n.step(env)
	}
}

// onVertex validates and buffers an arb-delivered vertex.
func (n *Node) onVertex(_ sim.Env, slot broadcast.Slot, p broadcast.Payload) {
	vp, ok := p.(rider.VertexPayload)
	if !ok {
		return
	}
	v := vp.V
	if v.Source != slot.Src || v.Round != int(slot.Seq) || v.Round < 1 {
		return
	}
	strong := types.NewSet(n.cfg.N)
	for _, e := range v.StrongEdges {
		if e.Round != v.Round-1 {
			return
		}
		strong.Add(e.Source)
	}
	for _, e := range v.WeakEdges {
		if e.Round >= v.Round-1 || e.Round < 0 {
			return
		}
	}
	if strong.Count() < n.cfg.N-n.cfg.F {
		return // DAG-Rider validity: at least n−f strong edges
	}
	n.buffer = append(n.buffer, v)
}

func (n *Node) processBuffer() bool {
	added := false
	for {
		progress := false
		keep := n.buffer[:0]
		for _, v := range n.buffer {
			if v.Round <= n.r && n.dag.HasAllParents(v) {
				if err := n.dag.Add(v); err == nil {
					progress = true
					added = true
					continue
				}
			}
			keep = append(keep, v)
		}
		n.buffer = keep
		if !progress {
			return added
		}
	}
}

// step runs the DAG-Rider main loop to a fixpoint.
func (n *Node) step(env sim.Env) {
	for {
		n.processBuffer()
		if n.dag.RoundSources(n.r).Count() < n.cfg.N-n.cfg.F {
			return
		}
		if n.r%4 == 0 && n.r > 0 {
			n.waveReady(env, n.r/4)
		}
		if n.cfg.MaxRound > 0 && n.r >= n.cfg.MaxRound {
			return
		}
		n.r++
		v := n.createVertex(n.r)
		n.arb.Broadcast(env, uint64(n.r), rider.VertexPayload{V: v})
	}
}

func (n *Node) createVertex(round int) *dag.Vertex {
	v := &dag.Vertex{Source: n.self, Round: round}
	if n.cfg.Workload != nil {
		v.Block = n.cfg.Workload.NextBlock(round)
	}
	for _, u := range n.dag.RoundVertices(round - 1) {
		v.StrongEdges = append(v.StrongEdges, u.Ref())
	}
	rider.SetWeakEdges(n.dag, v, round)
	return v
}

// waveReady attempts to commit wave w: DAG-Rider's commit rule requires
// 2f+1 round-4 vertices with strong paths to the leader.
func (n *Node) waveReady(env sim.Env, w int) {
	if w <= n.decidedWave {
		return
	}
	leader, ok := n.waveLeader(w)
	if !ok {
		return
	}
	if n.dag.StrongReachCount(rider.WaveRound(w, 4), leader) < 2*n.cfg.F+1 {
		return
	}
	stack := []dag.VertexRef{leader}
	v := leader
	for wp := w - 1; wp > n.decidedWave; wp-- {
		u, ok := n.waveLeader(wp)
		if ok && n.dag.StrongPath(v, u) {
			stack = append(stack, u)
			v = u
		}
	}
	n.decidedWave = w
	n.commits = append(n.commits, rider.CommitEvent{Wave: w, Leader: leader, Time: env.Now(), Round: n.r})
	n.deliveries = append(n.deliveries, rider.OrderVertices(n.dag, stack, n.delivered, w, env.Now())...)
}

func (n *Node) waveLeader(w int) (dag.VertexRef, bool) {
	p := n.cfg.Coin.Leader(w)
	ref := dag.VertexRef{Source: p, Round: rider.WaveRound(w, 1)}
	if !n.dag.Contains(ref) {
		return dag.VertexRef{}, false
	}
	return ref, true
}

// Accessors mirroring internal/core's, for shared experiment code. -------

// Round returns the node's current round.
func (n *Node) Round() int { return n.r }

// DecidedWave returns the last committed wave.
func (n *Node) DecidedWave() int { return n.decidedWave }

// Deliveries returns the atomically delivered vertices in delivery order.
func (n *Node) Deliveries() []rider.Delivery { return n.deliveries }

// Commits returns the node's successful wave commits in order.
func (n *Node) Commits() []rider.CommitEvent { return n.commits }

// DeliveredBlocks flattens the delivered transactions in delivery order.
func (n *Node) DeliveredBlocks() []string {
	var out []string
	for _, d := range n.deliveries {
		out = append(out, d.Txs...)
	}
	return out
}

// DAG exposes the local DAG for invariant checks in tests.
func (n *Node) DAG() *dag.DAG { return n.dag }
