// Binary wire codec registration for the broadcast messages (see
// internal/wire for the frame layout and tag-range assignments).
//
// The SEND/ECHO/READY bodies are [uvarint slot.Src][uvarint slot.Seq]
// followed by the payload as a nested wire frame, so any wire-registered
// Payload implementation (Bytes here, rider.VertexPayload, ...) travels
// without this package knowing about it. A message whose payload type is
// not wire-registered is simply not encodable: Size reports false and the
// simulator falls back to the Sizer approximation, which keeps test-local
// payload types working in pure-simulation runs.
package broadcast

import (
	"fmt"

	"repro/internal/types"
	"repro/internal/wire"
)

// Wire tags (range 10–19, assigned in internal/wire's central table).
const (
	wireTagSend  = 10
	wireTagEcho  = 11
	wireTagReady = 12
	wireTagBytes = 13
)

func init() { registerWireCodecs() }

func slotPayloadSize(s Slot, p Payload) (int, bool) {
	psz, ok := wire.EncodedSize(p)
	if !ok {
		return 0, false
	}
	return wire.IntSize(int(s.Src)) + wire.UvarintSize(s.Seq) + psz, true
}

func appendSlotPayload(dst []byte, s Slot, p Payload) ([]byte, error) {
	dst = wire.AppendInt(dst, int(s.Src))
	dst = wire.AppendUvarint(dst, s.Seq)
	return wire.Append(dst, p)
}

func decodeSlotPayload(b []byte) (Slot, Payload, []byte, error) {
	src, rest, err := wire.ReadInt(b, wire.MaxUniverse)
	if err != nil {
		return Slot{}, nil, b, err
	}
	seq, rest, err := wire.ReadUvarint(rest)
	if err != nil {
		return Slot{}, nil, b, err
	}
	inner, rest, err := wire.Decode(rest)
	if err != nil {
		return Slot{}, nil, b, err
	}
	p, ok := inner.(Payload)
	if !ok {
		return Slot{}, nil, b, fmt.Errorf("broadcast: wire payload %T does not implement Payload", inner)
	}
	return Slot{Src: types.ProcessID(src), Seq: seq}, p, rest, nil
}

// registerSlotMsg registers one of the three structurally identical
// broadcast messages.
func registerSlotMsg(tag uint64, prototype any,
	get func(any) (Slot, Payload), build func(Slot, Payload) any) {
	wire.Register(tag, prototype, wire.Codec{
		Size: func(msg any) (int, bool) {
			s, p := get(msg)
			return slotPayloadSize(s, p)
		},
		Append: func(dst []byte, msg any) ([]byte, error) {
			s, p := get(msg)
			return appendSlotPayload(dst, s, p)
		},
		Decode: func(b []byte) (any, []byte, error) {
			s, p, rest, err := decodeSlotPayload(b)
			if err != nil {
				return nil, b, err
			}
			return build(s, p), rest, nil
		},
	})
}

func registerWireCodecs() {
	registerSlotMsg(wireTagSend, sendMsg{},
		func(m any) (Slot, Payload) { s := m.(sendMsg); return s.Slot, s.Payload },
		func(s Slot, p Payload) any { return sendMsg{Slot: s, Payload: p} })
	registerSlotMsg(wireTagEcho, echoMsg{},
		func(m any) (Slot, Payload) { s := m.(echoMsg); return s.Slot, s.Payload },
		func(s Slot, p Payload) any { return echoMsg{Slot: s, Payload: p} })
	registerSlotMsg(wireTagReady, readyMsg{},
		func(m any) (Slot, Payload) { s := m.(readyMsg); return s.Slot, s.Payload },
		func(s Slot, p Payload) any { return readyMsg{Slot: s, Payload: p} })
	wire.Register(wireTagBytes, Bytes(nil), wire.Codec{
		Size: func(msg any) (int, bool) { return wire.BytesSize(msg.(Bytes)), true },
		Append: func(dst []byte, msg any) ([]byte, error) {
			return wire.AppendBytes(dst, msg.(Bytes)), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			v, rest, err := wire.ReadBytes(b)
			if err != nil {
				return nil, b, err
			}
			return Bytes(v), rest, nil
		},
	})
}
