// Package broadcast implements the broadcast primitives the paper's
// protocols build on, in the asymmetric-trust model of Alpos et al.
// ("Asymmetric distributed trust", §2.3 of the paper):
//
//   - Reliable broadcast (asymmetric Bracha): SEND → ECHO → READY with the
//     threshold rules generalized to quorums and kernels. A process sends
//     READY after an ECHO quorum, amplifies READY after a READY kernel, and
//     delivers after a READY quorum. Guarantees validity, consistency,
//     integrity and totality for processes in the maximal guild.
//   - Consistent broadcast: SEND → ECHO, deliver on an ECHO quorum. Weaker
//     (no totality) but cheaper.
//   - Plain best-effort broadcast: direct point-to-point sends. Equivalent
//     to reliable broadcast when the sender is correct and useful for the
//     all-correct adversarial-scheduling executions of Appendix A.
//
// The same implementation covers the classic symmetric/threshold protocols:
// instantiate with quorum.Threshold and the quorum/kernel predicates become
// the familiar 2f+1 / f+1 counting rules.
package broadcast

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"

	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// Payload is the application data carried by a broadcast. Key must be a
// collision-resistant digest of the content: two payloads are "the same
// message" exactly when their keys are equal. This is what equivocation
// detection counts on.
type Payload interface {
	Key() string
}

// Bytes is a convenience Payload for raw data.
type Bytes []byte

// Key implements Payload with a SHA-256 digest.
func (b Bytes) Key() string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// SimSize implements sim.Sizer.
//
//lint:sizer-fallback payloadSize consults Sizer directly when Bytes rides inside an unencodable slot message
func (b Bytes) SimSize() int { return len(b) }

// Slot identifies one broadcast instance: the originator and a per-
// originator sequence number (DAG protocols use the round number).
type Slot struct {
	Src types.ProcessID
	Seq uint64
}

// Deliver is the upcall invoked exactly once per delivered slot.
type Deliver func(env sim.Env, slot Slot, payload Payload)

// Broadcaster is the common interface of the three primitives, so protocol
// code (gather, DAG consensus) can be parameterized over the dissemination
// layer.
type Broadcaster interface {
	// Broadcast disseminates payload in the given slot. Each (originator,
	// seq) slot must be used at most once by a correct process.
	Broadcast(env sim.Env, seq uint64, payload Payload)
	// Handle processes a network message, returning true if the message
	// belonged to this broadcaster.
	Handle(env sim.Env, from types.ProcessID, msg sim.Message) bool
	// PruneBelow discards per-slot state for every slot with sequence
	// number below seq and drops late messages for such slots — the
	// bounded-memory GC hook (see Reliable.PruneBelow for the trade).
	PruneBelow(seq uint64)
	// SlotCount reports the number of slots with live per-slot state (a
	// bounded-memory soak counter).
	SlotCount() int
}

func payloadSize(p Payload) int {
	if s, ok := p.(sim.Sizer); ok {
		return s.SimSize()
	}
	return 32
}

// Message types. Exported fields only (they are "on the wire"); the types
// themselves are unexported to keep the package API small.

type sendMsg struct {
	Slot    Slot
	Payload Payload
}

//lint:sizer-fallback the codec reports unencodable for unregistered payloads, so this approximation is still consulted
func (m sendMsg) SimSize() int { return 16 + payloadSize(m.Payload) }

type echoMsg struct {
	Slot    Slot
	Payload Payload
}

//lint:sizer-fallback the codec reports unencodable for unregistered payloads, so this approximation is still consulted
func (m echoMsg) SimSize() int { return 16 + payloadSize(m.Payload) }

type readyMsg struct {
	Slot    Slot
	Payload Payload
}

//lint:sizer-fallback the codec reports unencodable for unregistered payloads, so this approximation is still consulted
func (m readyMsg) SimSize() int { return 16 + payloadSize(m.Payload) }

// Reliable is the asymmetric reliable broadcast (Bracha-style). One
// Reliable instance per process multiplexes all slots.
type Reliable struct {
	self    types.ProcessID
	trust   quorum.Assumption
	deliver Deliver
	slots   map[Slot]*rbSlot
	nextSeq uint64
	// pruned is the slot-sequence watermark set by PruneBelow: per-slot
	// state below it has been discarded and late messages for those slots
	// are dropped (see PruneBelow for the trade).
	pruned uint64
}

type rbSlot struct {
	sentEcho  bool
	sentReady bool
	delivered bool
	echoes    map[string]*quorum.Tracker // payload key -> echoer tracker
	readies   map[string]*quorum.Tracker // payload key -> ready-sender tracker
	payloads  map[string]Payload
}

var _ Broadcaster = (*Reliable)(nil)

// NewReliable creates the reliable broadcast component for one process.
func NewReliable(self types.ProcessID, trust quorum.Assumption, deliver Deliver) *Reliable {
	return &Reliable{
		self:    self,
		trust:   trust,
		deliver: deliver,
		slots:   map[Slot]*rbSlot{},
	}
}

// NextSeq returns a fresh sequence number for this originator.
func (r *Reliable) NextSeq() uint64 {
	s := r.nextSeq
	r.nextSeq++
	return s
}

// Broadcast implements Broadcaster.
func (r *Reliable) Broadcast(env sim.Env, seq uint64, payload Payload) {
	env.Broadcast(sendMsg{Slot: Slot{Src: r.self, Seq: seq}, Payload: payload})
}

func (r *Reliable) slot(s Slot) *rbSlot {
	st, ok := r.slots[s]
	if !ok {
		st = &rbSlot{
			echoes:   map[string]*quorum.Tracker{},
			readies:  map[string]*quorum.Tracker{},
			payloads: map[string]Payload{},
		}
		r.slots[s] = st
	}
	return st
}

// record feeds one sender into the per-payload incremental tracker,
// creating it on first use.
func (r *Reliable) record(m map[string]*quorum.Tracker, key string, from types.ProcessID) *quorum.Tracker {
	t, ok := m[key]
	if !ok {
		t = quorum.NewTracker(r.trust, r.self)
		m[key] = t
	}
	t.Add(from)
	return t
}

// Handle implements Broadcaster.
func (r *Reliable) Handle(env sim.Env, from types.ProcessID, msg sim.Message) bool {
	switch m := msg.(type) {
	case sendMsg:
		// Authenticated links: a SEND must come from its claimed source.
		if m.Slot.Src != from {
			return true // drop forgery
		}
		if m.Slot.Seq < r.pruned {
			return true // slot already garbage-collected
		}
		st := r.slot(m.Slot)
		if st.sentEcho {
			return true // echo only the first payload per slot
		}
		st.sentEcho = true
		st.payloads[m.Payload.Key()] = m.Payload
		env.Broadcast(echoMsg{Slot: m.Slot, Payload: m.Payload})
	case echoMsg:
		if m.Slot.Seq < r.pruned {
			return true
		}
		st := r.slot(m.Slot)
		key := m.Payload.Key()
		st.payloads[key] = m.Payload
		echoers := r.record(st.echoes, key, from)
		if !st.sentReady && echoers.HasQuorum() {
			st.sentReady = true
			env.Broadcast(readyMsg{Slot: m.Slot, Payload: m.Payload})
		}
	case readyMsg:
		if m.Slot.Seq < r.pruned {
			return true
		}
		st := r.slot(m.Slot)
		key := m.Payload.Key()
		st.payloads[key] = m.Payload
		readiers := r.record(st.readies, key, from)
		if !st.sentReady && readiers.HasKernel() {
			st.sentReady = true
			env.Broadcast(readyMsg{Slot: m.Slot, Payload: m.Payload})
		}
		if !st.delivered && readiers.HasQuorum() {
			st.delivered = true
			r.deliver(env, m.Slot, m.Payload)
		}
	default:
		return false
	}
	return true
}

// Consistent is the asymmetric consistent broadcast (echo broadcast):
// deliver on an ECHO quorum. It provides consistency but not totality.
type Consistent struct {
	self    types.ProcessID
	trust   quorum.Assumption
	deliver Deliver
	slots   map[Slot]*cbSlot
	// pruned is the slot-sequence watermark set by PruneBelow, exactly as
	// in Reliable: slots below it are dropped on arrival.
	pruned uint64
}

type cbSlot struct {
	sentEcho  bool
	delivered bool
	echoes    map[string]*quorum.Tracker
}

var _ Broadcaster = (*Consistent)(nil)

// NewConsistent creates the consistent broadcast component for one process.
func NewConsistent(self types.ProcessID, trust quorum.Assumption, deliver Deliver) *Consistent {
	return &Consistent{self: self, trust: trust, deliver: deliver, slots: map[Slot]*cbSlot{}}
}

// Broadcast implements Broadcaster.
func (c *Consistent) Broadcast(env sim.Env, seq uint64, payload Payload) {
	env.Broadcast(sendMsg{Slot: Slot{Src: c.self, Seq: seq}, Payload: payload})
}

// Handle implements Broadcaster.
func (c *Consistent) Handle(env sim.Env, from types.ProcessID, msg sim.Message) bool {
	switch m := msg.(type) {
	case sendMsg:
		if m.Slot.Src != from {
			return true
		}
		if m.Slot.Seq < c.pruned {
			return true // slot already garbage-collected
		}
		st := c.slot(m.Slot)
		if st.sentEcho {
			return true
		}
		st.sentEcho = true
		env.Broadcast(echoMsg{Slot: m.Slot, Payload: m.Payload})
	case echoMsg:
		if m.Slot.Seq < c.pruned {
			return true
		}
		st := c.slot(m.Slot)
		key := m.Payload.Key()
		t, ok := st.echoes[key]
		if !ok {
			t = quorum.NewTracker(c.trust, c.self)
			st.echoes[key] = t
		}
		t.Add(from)
		if !st.delivered && t.HasQuorum() {
			st.delivered = true
			c.deliver(env, m.Slot, m.Payload)
		}
	case readyMsg:
		return false // not ours
	default:
		return false
	}
	return true
}

func (c *Consistent) slot(s Slot) *cbSlot {
	st, ok := c.slots[s]
	if !ok {
		st = &cbSlot{echoes: map[string]*quorum.Tracker{}}
		c.slots[s] = st
	}
	return st
}

// Plain is best-effort broadcast: one direct message per recipient,
// delivered on receipt. With a correct sender over reliable links it
// provides the same guarantees as reliable broadcast at one round instead
// of three; the Appendix A executions (all processes correct, adversarial
// scheduling) use it so that the adversary's delivery order acts directly
// on the protocol rounds.
type Plain struct {
	self      types.ProcessID
	deliver   Deliver
	delivered map[Slot]bool
	// pruned is the slot-sequence watermark set by PruneBelow: delivered
	// markers below it are discarded, and late copies of such slots are
	// dropped rather than re-delivered.
	pruned uint64
}

var _ Broadcaster = (*Plain)(nil)

// NewPlain creates the best-effort broadcast component for one process.
func NewPlain(self types.ProcessID, deliver Deliver) *Plain {
	return &Plain{self: self, deliver: deliver, delivered: map[Slot]bool{}}
}

// Broadcast implements Broadcaster.
func (p *Plain) Broadcast(env sim.Env, seq uint64, payload Payload) {
	env.Broadcast(sendMsg{Slot: Slot{Src: p.self, Seq: seq}, Payload: payload})
}

// Handle implements Broadcaster.
func (p *Plain) Handle(env sim.Env, from types.ProcessID, msg sim.Message) bool {
	m, ok := msg.(sendMsg)
	if !ok {
		return false
	}
	if m.Slot.Src != from {
		return true
	}
	if m.Slot.Seq < p.pruned {
		return true // below the GC watermark: already delivered and pruned
	}
	if p.delivered[m.Slot] {
		return true
	}
	p.delivered[m.Slot] = true
	p.deliver(env, m.Slot, m.Payload)
	return true
}

// PruneBelow discards per-slot tracker state for every slot with sequence
// number below seq, and drops late messages for such slots from then on.
// DAG protocols use the round number as the sequence, so the consensus
// layer's GC watermark translates directly. The trade mirrors DAG pruning:
// a process so far behind that it still needs a pruned slot must be caught
// up by state transfer, not by re-running the broadcast (the slots below
// the watermark were already delivered and applied here). Without this the
// per-slot echo/ready maps are the dominant unbounded allocation of a
// long-lived run.
func (r *Reliable) PruneBelow(seq uint64) {
	if seq <= r.pruned {
		return
	}
	r.pruned = seq
	for s := range r.slots {
		if s.Seq < seq {
			delete(r.slots, s)
		}
	}
}

// SlotCount returns the number of slots with live tracker state (a
// bounded-memory soak counter).
func (r *Reliable) SlotCount() int { return len(r.slots) }

// PruneBelow discards per-slot echo trackers below the watermark; the
// semantics match Reliable.PruneBelow (late messages for pruned slots
// are dropped, catch-up is state transfer's job).
func (c *Consistent) PruneBelow(seq uint64) {
	if seq <= c.pruned {
		return
	}
	c.pruned = seq
	for s := range c.slots {
		if s.Seq < seq {
			delete(c.slots, s)
		}
	}
}

// SlotCount returns the number of slots with live tracker state.
func (c *Consistent) SlotCount() int { return len(c.slots) }

// PruneBelow discards delivered-slot markers below the watermark. For
// Plain the marker is the only per-slot state, and dropping it is safe
// exactly because late copies below the watermark are dropped in Handle
// instead of consulting the map (otherwise pruning would reopen the
// at-most-once delivery guarantee to stale duplicates).
func (p *Plain) PruneBelow(seq uint64) {
	if seq <= p.pruned {
		return
	}
	p.pruned = seq
	for s := range p.delivered {
		if s.Seq < seq {
			delete(p.delivered, s)
		}
	}
}

// SlotCount returns the number of slots with a live delivered marker.
func (p *Plain) SlotCount() int { return len(p.delivered) }

// EquivocateSend lets tests and adversarial nodes inject a conflicting SEND
// for a slot directly to one recipient, bypassing the Broadcaster API. Only
// Byzantine behaviours use it.
func EquivocateSend(env sim.Env, to types.ProcessID, slot Slot, payload Payload) {
	env.Send(to, sendMsg{Slot: slot, Payload: payload})
}

// RegisterWire registers this package's message types with encoding/gob so
// they can travel over a real transport (internal/transport). Safe to call
// multiple times.
func RegisterWire() {
	gob.Register(sendMsg{})
	gob.Register(echoMsg{})
	gob.Register(readyMsg{})
	gob.Register(Bytes(nil))
}
