package broadcast

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// bcNode is a test node that broadcasts an optional input on init and
// records deliveries.
type bcNode struct {
	mk        func(self types.ProcessID, deliver Deliver) Broadcaster
	input     Payload
	bc        Broadcaster
	delivered map[Slot]Payload
}

func (n *bcNode) Init(env sim.Env) {
	n.delivered = map[Slot]Payload{}
	n.bc = n.mk(env.Self(), func(_ sim.Env, slot Slot, p Payload) {
		if _, dup := n.delivered[slot]; dup {
			panic(fmt.Sprintf("double delivery in slot %v", slot))
		}
		n.delivered[slot] = p
	})
	if n.input != nil {
		n.bc.Broadcast(env, 0, n.input)
	}
}

func (n *bcNode) Receive(env sim.Env, from types.ProcessID, msg sim.Message) {
	n.bc.Handle(env, from, msg)
}

// equivocator sends payload A to the first half and payload B to the rest.
type equivocator struct{}

func (equivocator) Init(env sim.Env) {
	slot := Slot{Src: env.Self(), Seq: 0}
	for i := 0; i < env.N(); i++ {
		p := Payload(Bytes("AAAA"))
		if i >= env.N()/2 {
			p = Bytes("BBBB")
		}
		EquivocateSend(env, types.ProcessID(i), slot, p)
	}
}

func (equivocator) Receive(sim.Env, types.ProcessID, sim.Message) {}

// partialSender sends its SEND to only the given recipients, then goes mute
// (models a Byzantine sender that tries to split delivery).
type partialSender struct {
	to types.Set
}

func (p *partialSender) Init(env sim.Env) {
	slot := Slot{Src: env.Self(), Seq: 0}
	for _, r := range p.to.Members() {
		EquivocateSend(env, r, slot, Bytes("partial"))
	}
}

func (p *partialSender) Receive(sim.Env, types.ProcessID, sim.Message) {}

func reliableCluster(n int, trust quorum.Assumption, inputs []Payload) []sim.Node {
	nodes := make([]sim.Node, n)
	for i := range nodes {
		var in Payload
		if inputs != nil {
			in = inputs[i]
		}
		nodes[i] = &bcNode{
			mk: func(self types.ProcessID, d Deliver) Broadcaster {
				return NewReliable(self, trust, d)
			},
			input: in,
		}
	}
	return nodes
}

func TestReliableThresholdAllCorrect(t *testing.T) {
	n := 4
	trust := quorum.NewThreshold(n, 1)
	inputs := make([]Payload, n)
	for i := range inputs {
		inputs[i] = Bytes(fmt.Sprintf("value-%d", i))
	}
	nodes := reliableCluster(n, trust, inputs)
	r := sim.NewRunner(sim.Config{N: n, Seed: 1, Latency: sim.UniformLatency{Min: 1, Max: 10}}, nodes)
	r.Run(0)
	for i, nd := range nodes {
		b := nd.(*bcNode)
		if len(b.delivered) != n {
			t.Fatalf("node %d delivered %d slots, want %d", i, len(b.delivered), n)
		}
		for src := 0; src < n; src++ {
			got, ok := b.delivered[Slot{Src: types.ProcessID(src), Seq: 0}]
			if !ok {
				t.Fatalf("node %d missing slot from %d", i, src)
			}
			if got.Key() != inputs[src].Key() {
				t.Fatalf("node %d delivered wrong payload from %d", i, src)
			}
		}
	}
}

func TestReliableAsymmetricAllCorrect(t *testing.T) {
	sys := quorum.Counterexample()
	n := sys.N()
	inputs := make([]Payload, n)
	for i := range inputs {
		inputs[i] = Bytes(fmt.Sprintf("v%d", i))
	}
	nodes := reliableCluster(n, sys, inputs)
	r := sim.NewRunner(sim.Config{N: n, Seed: 7, Latency: sim.UniformLatency{Min: 1, Max: 20}}, nodes)
	r.Run(0)
	for i, nd := range nodes {
		b := nd.(*bcNode)
		if len(b.delivered) != n {
			t.Fatalf("node %d delivered %d slots, want %d", i, len(b.delivered), n)
		}
	}
}

func TestReliableEquivocationConsistency(t *testing.T) {
	// Byzantine node 3 equivocates; n=4, f=1 threshold. No two correct
	// processes may deliver different payloads for node 3's slot.
	for seed := int64(0); seed < 20; seed++ {
		n := 4
		trust := quorum.NewThreshold(n, 1)
		nodes := reliableCluster(n, trust, nil)
		nodes[3] = equivocator{}
		r := sim.NewRunner(sim.Config{N: n, Seed: seed, Latency: sim.UniformLatency{Min: 1, Max: 30}}, nodes)
		r.Run(0)
		slot := Slot{Src: 3, Seq: 0}
		var seen string
		for i := 0; i < 3; i++ {
			b := nodes[i].(*bcNode)
			if p, ok := b.delivered[slot]; ok {
				if seen == "" {
					seen = p.Key()
				} else if seen != p.Key() {
					t.Fatalf("seed %d: conflicting deliveries for equivocated slot", seed)
				}
			}
		}
	}
}

func TestReliableTotalityPartialSend(t *testing.T) {
	// Byzantine sender sends only to {0,1,2} of a 4-process system, then
	// goes mute. Echo amplification must carry delivery to everyone
	// correct (totality): if anyone delivers, all correct deliver.
	n := 4
	trust := quorum.NewThreshold(n, 1)
	nodes := reliableCluster(n, trust, nil)
	nodes[3] = &partialSender{to: types.NewSetOf(n, 0, 1, 2)}
	r := sim.NewRunner(sim.Config{N: n, Seed: 5, Latency: sim.UniformLatency{Min: 1, Max: 10}}, nodes)
	r.Run(0)
	slot := Slot{Src: 3, Seq: 0}
	deliveredCount := 0
	for i := 0; i < 3; i++ {
		if _, ok := nodes[i].(*bcNode).delivered[slot]; ok {
			deliveredCount++
		}
	}
	if deliveredCount != 0 && deliveredCount != 3 {
		t.Fatalf("totality violated: %d of 3 correct processes delivered", deliveredCount)
	}
	if deliveredCount == 0 {
		t.Fatal("expected delivery: SEND reached a full quorum")
	}
}

func TestReliableWithCrashesInFailProneSet(t *testing.T) {
	// Asymmetric random system; crash a set inside a fail-prone set of
	// every process (so everyone is wise). All correct deliver all correct
	// senders' payloads.
	sys, err := quorum.RandomAsymmetric(quorum.RandomAsymmetricConfig{N: 8, NumSets: 3, MaxFault: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	n := sys.N()
	// Find a process that everyone tolerates losing.
	var victim types.ProcessID = -1
	for c := 0; c < n; c++ {
		f := types.NewSetOf(n, types.ProcessID(c))
		if sys.Wise(f).Count() == n-1 && sys.MaximalGuild(f).Count() == n-1 {
			victim = types.ProcessID(c)
			break
		}
	}
	if victim < 0 {
		t.Skip("no universally tolerated victim in this system")
	}
	inputs := make([]Payload, n)
	for i := range inputs {
		inputs[i] = Bytes(fmt.Sprintf("v%d", i))
	}
	nodes := reliableCluster(n, sys, inputs)
	nodes[victim] = &sim.CrashNode{Inner: nodes[victim], CrashAt: 0}
	r := sim.NewRunner(sim.Config{N: n, Seed: 3, Latency: sim.UniformLatency{Min: 1, Max: 15}}, nodes)
	r.Run(0)
	for i, nd := range nodes {
		if types.ProcessID(i) == victim {
			continue
		}
		b := nd.(*bcNode)
		for src := 0; src < n; src++ {
			if types.ProcessID(src) == victim {
				continue
			}
			if _, ok := b.delivered[Slot{Src: types.ProcessID(src), Seq: 0}]; !ok {
				t.Fatalf("node %d missing delivery from correct %d", i, src)
			}
		}
	}
}

func TestForgedSendDropped(t *testing.T) {
	// A message claiming Src != network sender must be ignored.
	n := 4
	trust := quorum.NewThreshold(n, 1)
	nodes := reliableCluster(n, trust, nil)
	// Node 3 forges a SEND claiming to be from node 0.
	forger := &forgeNode{}
	nodes[3] = forger
	r := sim.NewRunner(sim.Config{N: n, Seed: 1}, nodes)
	r.Run(0)
	for i := 0; i < 3; i++ {
		b := nodes[i].(*bcNode)
		if len(b.delivered) != 0 {
			t.Fatalf("node %d delivered a forged broadcast", i)
		}
	}
}

type forgeNode struct{}

func (forgeNode) Init(env sim.Env) {
	for i := 0; i < env.N(); i++ {
		EquivocateSend(env, types.ProcessID(i), Slot{Src: 0, Seq: 0}, Bytes("forged"))
	}
}
func (forgeNode) Receive(sim.Env, types.ProcessID, sim.Message) {}

func TestConsistentBroadcast(t *testing.T) {
	n := 7
	trust := quorum.NewThreshold(n, 2)
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = &bcNode{
			mk: func(self types.ProcessID, d Deliver) Broadcaster {
				return NewConsistent(self, trust, d)
			},
			input: Bytes(fmt.Sprintf("c%d", i)),
		}
	}
	r := sim.NewRunner(sim.Config{N: n, Seed: 2, Latency: sim.UniformLatency{Min: 1, Max: 10}}, nodes)
	r.Run(0)
	for i, nd := range nodes {
		b := nd.(*bcNode)
		if len(b.delivered) != n {
			t.Fatalf("node %d delivered %d, want %d", i, len(b.delivered), n)
		}
	}
}

func TestPlainBroadcast(t *testing.T) {
	n := 5
	nodes := make([]sim.Node, n)
	for i := range nodes {
		nodes[i] = &bcNode{
			mk: func(self types.ProcessID, d Deliver) Broadcaster {
				return NewPlain(self, d)
			},
			input: Bytes(fmt.Sprintf("p%d", i)),
		}
	}
	r := sim.NewRunner(sim.Config{N: n, Seed: 2}, nodes)
	r.Run(0)
	for i, nd := range nodes {
		b := nd.(*bcNode)
		if len(b.delivered) != n {
			t.Fatalf("node %d delivered %d, want %d", i, len(b.delivered), n)
		}
	}
	// Plain uses exactly n sends per broadcast: n*n total.
	if got := r.Metrics().MessagesSent; got != n*n {
		t.Fatalf("plain broadcast sent %d messages, want %d", got, n*n)
	}
}

func TestReliableMessageComplexity(t *testing.T) {
	// One reliable broadcast among n all-correct processes costs
	// n (SEND) + n*n (ECHO) + n*n (READY) messages.
	n := 4
	trust := quorum.NewThreshold(n, 1)
	nodes := reliableCluster(n, trust, nil)
	nodes[0].(*bcNode).input = Bytes("solo")
	r := sim.NewRunner(sim.Config{N: n, Seed: 1}, nodes)
	r.Run(0)
	want := n + n*n + n*n
	if got := r.Metrics().MessagesSent; got != want {
		t.Fatalf("reliable broadcast sent %d, want %d", got, want)
	}
}

func TestBytesPayload(t *testing.T) {
	a, b := Bytes("x"), Bytes("x")
	if a.Key() != b.Key() {
		t.Error("equal bytes must have equal keys")
	}
	if Bytes("x").Key() == Bytes("y").Key() {
		t.Error("distinct bytes must differ in key")
	}
	if Bytes("abc").SimSize() != 3 {
		t.Error("SimSize should be byte length")
	}
}

func TestConsistentBroadcastEquivocation(t *testing.T) {
	// Consistent broadcast guarantees consistency (no two correct deliver
	// different payloads) but not totality. An equivocating sender on
	// n=4,f=1 must never cause conflicting deliveries.
	for seed := int64(0); seed < 15; seed++ {
		n := 4
		trust := quorum.NewThreshold(n, 1)
		nodes := make([]sim.Node, n)
		for i := 0; i < 3; i++ {
			nodes[i] = &bcNode{
				mk: func(self types.ProcessID, d Deliver) Broadcaster {
					return NewConsistent(self, trust, d)
				},
			}
		}
		nodes[3] = equivocator{}
		r := sim.NewRunner(sim.Config{N: n, Seed: seed, Latency: sim.UniformLatency{Min: 1, Max: 30}}, nodes)
		r.Run(0)
		slot := Slot{Src: 3, Seq: 0}
		var seen string
		for i := 0; i < 3; i++ {
			if p, ok := nodes[i].(*bcNode).delivered[slot]; ok {
				if seen == "" {
					seen = p.Key()
				} else if seen != p.Key() {
					t.Fatalf("seed %d: consistent broadcast delivered conflicting payloads", seed)
				}
			}
		}
	}
}

// pruneEnv is a minimal sim.Env for driving Handle directly in unit
// tests: sends are discarded, time is fixed.
type pruneEnv struct {
	self types.ProcessID
	n    int
}

func (e pruneEnv) Self() types.ProcessID             { return e.self }
func (e pruneEnv) N() int                            { return e.n }
func (e pruneEnv) Now() sim.VirtualTime              { return 0 }
func (e pruneEnv) Send(types.ProcessID, sim.Message) {}
func (e pruneEnv) Broadcast(sim.Message)             {}
func (e pruneEnv) Rand() *rand.Rand                  { return rand.New(rand.NewSource(1)) }

// TestPruneBelowAllBroadcasters pins the bounded-memory contract for all
// three primitives uniformly: slots below the watermark are discarded,
// late messages for pruned slots are dropped without resurrecting state
// or re-delivering, and slots at/above the watermark survive.
// (Regression: Consistent and Plain used to have no prune path at all,
// so their per-slot maps grew for the lifetime of the node.)
func TestPruneBelowAllBroadcasters(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	cases := []struct {
		name string
		mk   func(deliver Deliver) Broadcaster
	}{
		{"Reliable", func(d Deliver) Broadcaster { return NewReliable(0, trust, d) }},
		{"Consistent", func(d Deliver) Broadcaster { return NewConsistent(0, trust, d) }},
		{"Plain", func(d Deliver) Broadcaster { return NewPlain(0, d) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			deliveries := 0
			bc := tc.mk(func(sim.Env, Slot, Payload) { deliveries++ })
			env := pruneEnv{self: 0, n: 4}
			// Open per-slot state for seqs 0..4 from sender 1.
			for seq := uint64(0); seq < 5; seq++ {
				for from := types.ProcessID(1); from < 2; from++ {
					bc.Handle(env, from, sendMsg{Slot: Slot{Src: 1, Seq: seq}, Payload: Bytes("x")})
				}
			}
			if got := bc.SlotCount(); got != 5 {
				t.Fatalf("before prune: SlotCount = %d, want 5", got)
			}
			bc.PruneBelow(3)
			if got := bc.SlotCount(); got != 2 {
				t.Fatalf("after PruneBelow(3): SlotCount = %d, want 2", got)
			}
			delivered := deliveries
			// A late message for a pruned slot must not reopen state or
			// deliver again.
			bc.Handle(env, 1, sendMsg{Slot: Slot{Src: 1, Seq: 1}, Payload: Bytes("x")})
			bc.Handle(env, 1, echoMsg{Slot: Slot{Src: 1, Seq: 1}, Payload: Bytes("x")})
			if got := bc.SlotCount(); got != 2 {
				t.Fatalf("late message reopened pruned slot: SlotCount = %d, want 2", got)
			}
			if deliveries != delivered {
				t.Fatalf("late message below the watermark was re-delivered")
			}
			// The watermark only ratchets forward.
			bc.PruneBelow(1)
			if got := bc.SlotCount(); got != 2 {
				t.Fatalf("PruneBelow moved backwards: SlotCount = %d, want 2", got)
			}
		})
	}
}
