package broadcast

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/wire"
)

// unregisteredPayload is a Payload type with no wire codec — the shape
// test-local payloads take in pure-simulation runs.
type unregisteredPayload struct{ K string }

func (p unregisteredPayload) Key() string  { return p.K }
func (p unregisteredPayload) SimSize() int { return len(p.K) }

// TestBroadcastWireRoundTrip is the broadcast slice of the differential
// wire suite: SEND/ECHO/READY with randomized Bytes payloads round-trip
// byte-identically, and the simulator's byte metric equals the frame
// length.
func TestBroadcastWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	build := []func(Slot, Payload) sim.Message{
		func(s Slot, p Payload) sim.Message { return sendMsg{Slot: s, Payload: p} },
		func(s Slot, p Payload) sim.Message { return echoMsg{Slot: s, Payload: p} },
		func(s Slot, p Payload) sim.Message { return readyMsg{Slot: s, Payload: p} },
	}
	for i := 0; i < 200; i++ {
		raw := make([]byte, rng.Intn(100))
		rng.Read(raw)
		slot := Slot{Src: types.ProcessID(rng.Intn(50)), Seq: rng.Uint64() >> uint(rng.Intn(64))}
		for _, mk := range build {
			msg := mk(slot, Bytes(raw))
			enc, err := wire.Marshal(msg)
			if err != nil {
				t.Fatalf("%T: %v", msg, err)
			}
			if got := sim.MessageSize(msg); got != len(enc) {
				t.Fatalf("%T: MessageSize %d != wire length %d", msg, got, len(enc))
			}
			dec, rest, err := wire.Decode(enc)
			if err != nil || len(rest) != 0 {
				t.Fatalf("%T: decode: %v", msg, err)
			}
			re, err := wire.Marshal(dec)
			if err != nil || !bytes.Equal(enc, re) {
				t.Fatalf("%T: re-encode differs (%v)", msg, err)
			}
			got := dec.(sim.Message)
			gs, gp := slotPayloadOf(got)
			if gs != slot || !bytes.Equal([]byte(gp.(Bytes)), raw) {
				t.Fatalf("%T: round trip mutated message", msg)
			}
		}
	}
}

func slotPayloadOf(msg sim.Message) (Slot, Payload) {
	switch m := msg.(type) {
	case sendMsg:
		return m.Slot, m.Payload
	case echoMsg:
		return m.Slot, m.Payload
	case readyMsg:
		return m.Slot, m.Payload
	}
	return Slot{}, nil
}

// TestBroadcastWireUnregisteredPayloadFallsBack pins the degradation
// contract: a message whose payload type has no wire codec is not
// encodable (EncodedSize false), and sim.MessageSize falls back to the
// Sizer approximation instead of panicking — keeping test-local payloads
// usable in pure-simulation runs.
func TestBroadcastWireUnregisteredPayloadFallsBack(t *testing.T) {
	msg := sendMsg{Slot: Slot{Src: 1, Seq: 2}, Payload: unregisteredPayload{K: "abc"}}
	if _, ok := wire.EncodedSize(msg); ok {
		t.Fatal("message with unregistered payload reported encodable")
	}
	if got, want := sim.MessageSize(msg), msg.SimSize(); got != want {
		t.Fatalf("MessageSize %d, want Sizer fallback %d", got, want)
	}
	if _, err := wire.Marshal(msg); err == nil {
		t.Fatal("Marshal succeeded with unregistered payload")
	}
}

// notAPayload is wire-registered but does not implement Payload.
type notAPayload struct{}

// TestBroadcastWireRejectsNonPayloadInner pins that a nested frame
// decoding to a non-Payload type is rejected.
func TestBroadcastWireRejectsNonPayloadInner(t *testing.T) {
	const tag = 1001 // test-local range
	wire.Register(tag, notAPayload{}, wire.Codec{
		Size:   func(any) (int, bool) { return 0, true },
		Append: func(dst []byte, _ any) ([]byte, error) { return dst, nil },
		Decode: func(b []byte) (any, []byte, error) { return notAPayload{}, b, nil },
	})
	body := wire.AppendInt(nil, 1)       // slot.Src
	body = wire.AppendUvarint(body, 0)   // slot.Seq
	body = wire.AppendUvarint(body, tag) // nested non-Payload frame
	frame := append(wire.AppendUvarint(nil, wireTagSend), body...)
	if _, _, err := wire.Decode(frame); err == nil {
		t.Fatal("non-Payload nested message accepted")
	}
}
