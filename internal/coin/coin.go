// Package coin provides the common-coin primitive used to elect wave
// leaders (paper §4.2; the asymmetric common coin of Alpos et al.).
//
// Substitution note (see DESIGN.md §5): the paper's coin is built from
// threshold cryptography so that its value is unpredictable until enough
// processes reveal shares. The consensus proofs use only two properties:
//
//   - Matching: every process in the maximal guild obtains the same leader
//     for a wave.
//   - Unpredictability/uniformity: the leader of wave w is uniform over P
//     and independent of how the adversary built the DAG before the wave
//     completed.
//
// A keyed PRF (SHA-256 over seed‖wave) evaluated identically at every
// process provides matching exactly and uniformity statistically; in the
// simulator the adversary's schedule is fixed before the seed is drawn, so
// unpredictability holds against it as well. An adaptive adversary can be
// modelled by choosing schedules as a function of the seed — the gather
// counterexample does exactly that via explicit scheduling instead.
package coin

import (
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/types"
)

// Source yields the leader of each wave. Implementations must be
// deterministic so that all processes agree.
type Source interface {
	// Leader returns the elected process for a wave (waves count from 1).
	Leader(wave int) types.ProcessID
}

// PRF is the seeded SHA-256 coin shared by all processes of a run.
type PRF struct {
	seed int64
	n    int
}

var _ Source = PRF{}

// NewPRF returns a coin over n processes with the given seed.
func NewPRF(seed int64, n int) PRF {
	if n <= 0 {
		panic("coin: need n > 0")
	}
	return PRF{seed: seed, n: n}
}

// Leader implements Source.
func (c PRF) Leader(wave int) types.ProcessID {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(c.seed))
	binary.BigEndian.PutUint64(buf[8:], uint64(wave))
	sum := sha256.Sum256(buf[:])
	v := binary.BigEndian.Uint64(sum[:8])
	return types.ProcessID(v % uint64(c.n))
}

// Bit returns a common random bit for a round, used by the randomized
// binary consensus (internal/abba).
func (c PRF) Bit(round int) int {
	var buf [17]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(c.seed))
	binary.BigEndian.PutUint64(buf[8:16], uint64(round))
	buf[16] = 0xB1
	sum := sha256.Sum256(buf[:])
	return int(sum[0] & 1)
}

// Fixed is a coin that always elects the same sequence of leaders; tests
// use it to force specific wave outcomes.
type Fixed struct {
	// Leaders[w-1] is the leader of wave w; waves past the slice length
	// wrap around.
	Leaders []types.ProcessID
}

var _ Source = Fixed{}

// Leader implements Source.
func (f Fixed) Leader(wave int) types.ProcessID {
	if len(f.Leaders) == 0 {
		return 0
	}
	return f.Leaders[(wave-1)%len(f.Leaders)]
}
