package coin

import (
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// ShareMsg is one process's coin share for a wave. In the real protocol
// this carries a threshold-signature share; here the share's only role is
// its *existence* — the value is reconstructed from the run's PRF once
// enough shares arrived (see the package comment on the substitution).
type ShareMsg struct {
	Wave int
}

// Shared is the revealed common coin: the leader of wave w becomes known
// only after coin shares for w have been received from one of the local
// process's quorums. This reproduces the unpredictability discipline of
// DAG-Rider, which reveals the coin only after enough processes finish the
// wave — before that, an adaptive adversary cannot bias the DAG towards or
// away from the future leader.
//
// Shared wraps any Source for the actual values; matching follows from all
// processes wrapping the same Source.
type Shared struct {
	self     types.ProcessID
	trust    quorum.Assumption
	src      Source
	shares   map[int]*quorum.Tracker
	released map[int]bool
	ready    map[int]bool
	pruned   int // waves below this were garbage-collected (PruneBelow)
}

// NewShared creates the share-gated coin for one process.
func NewShared(self types.ProcessID, trust quorum.Assumption, src Source) *Shared {
	return &Shared{
		self:     self,
		trust:    trust,
		src:      src,
		shares:   map[int]*quorum.Tracker{},
		released: map[int]bool{},
		ready:    map[int]bool{},
	}
}

// Release broadcasts this process's share for a wave (idempotent). Call it
// when the local wave execution finishes.
func (s *Shared) Release(env sim.Env, wave int) {
	if s.released[wave] {
		return
	}
	s.released[wave] = true
	env.Broadcast(ShareMsg{Wave: wave})
}

// Handle consumes a ShareMsg. It reports whether the message belonged to
// the coin and whether the wave's value just became available.
func (s *Shared) Handle(env sim.Env, from types.ProcessID, msg sim.Message) (becameReady bool, handled bool) {
	m, ok := msg.(ShareMsg)
	if !ok {
		return false, false
	}
	if m.Wave < s.pruned {
		return false, true // stale share for a garbage-collected wave
	}
	t, ok := s.shares[m.Wave]
	if !ok {
		t = quorum.NewTracker(s.trust, s.self)
		s.shares[m.Wave] = t
	}
	t.Add(from)
	if !s.ready[m.Wave] && t.HasQuorum() {
		s.ready[m.Wave] = true
		return true, true
	}
	return false, true
}

// Ready reports whether the wave's coin value can be reconstructed.
func (s *Shared) Ready(wave int) bool { return s.ready[wave] }

// PruneBelow drops the share trackers and release/ready flags of waves
// strictly below wave. Consensus GC calls this once a wave is decided and
// behind the horizon: the reveal already happened, so the per-wave maps are
// dead weight in a long-lived run. Leader() for a pruned wave falls back to
// "not revealed"; callers never ask below the decided wave.
func (s *Shared) PruneBelow(wave int) {
	if wave <= s.pruned {
		return
	}
	s.pruned = wave
	for w := range s.shares {
		if w < wave {
			delete(s.shares, w)
		}
	}
	for w := range s.released {
		if w < wave {
			delete(s.released, w)
		}
	}
	for w := range s.ready {
		if w < wave {
			delete(s.ready, w)
		}
	}
}

// Leader returns the wave's leader if the coin has been revealed.
func (s *Shared) Leader(wave int) (types.ProcessID, bool) {
	if !s.ready[wave] {
		return 0, false
	}
	return s.src.Leader(wave), true
}
