// Binary wire codec registration for the coin messages (see
// internal/wire for the frame layout and tag-range assignments).
package coin

import (
	"fmt"

	"repro/internal/wire"
)

// wireTagShare is ShareMsg's tag (range 45–49).
const wireTagShare = 45

// shareReservedBytes is the space a production wire format reserves for
// the threshold-signature share itself (a BLS share is ~48 bytes). This
// implementation substitutes a PRF for the threshold scheme (see the
// package comment), so the bytes are zero on the wire and skipped on
// decode — but they are carried, so the byte metrics and the transport
// both price a share at what the real protocol would pay.
const shareReservedBytes = 48

// maxWireWave bounds the wave number accepted off the wire.
const maxWireWave = 1 << 30

func init() {
	wire.Register(wireTagShare, ShareMsg{}, wire.Codec{
		Size: func(msg any) (int, bool) {
			return wire.IntSize(msg.(ShareMsg).Wave) + shareReservedBytes, true
		},
		Append: func(dst []byte, msg any) ([]byte, error) {
			dst = wire.AppendInt(dst, msg.(ShareMsg).Wave)
			return append(dst, make([]byte, shareReservedBytes)...), nil
		},
		Decode: func(b []byte) (any, []byte, error) {
			wave, rest, err := wire.ReadInt(b, maxWireWave)
			if err != nil {
				return nil, b, fmt.Errorf("coin: wire share wave: %w", err)
			}
			if len(rest) < shareReservedBytes {
				return nil, b, wire.ErrTruncated
			}
			return ShareMsg{Wave: wave}, rest[shareReservedBytes:], nil
		},
	})
}
