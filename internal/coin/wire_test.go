package coin

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/wire"
)

// TestShareMsgWire pins the modeled-cost contract: the wire frame carries
// the 48 reserved share bytes, so sim.MessageSize (now wire-exact) still
// prices a coin share at what a real BLS share costs — which is what
// ShareMsg.SimSize always claimed.
func TestShareMsgWire(t *testing.T) {
	msg := ShareMsg{Wave: 9}
	enc, err := wire.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.MessageSize(msg); got != len(enc) {
		t.Fatalf("MessageSize %d != wire length %d", got, len(enc))
	}
	// Frame = tag + wave uvarint + reserved share bytes.
	want := wire.UvarintSize(wireTagShare) + wire.IntSize(msg.Wave) + shareReservedBytes
	if len(enc) != want {
		t.Fatalf("frame is %d bytes, want %d (48-byte share reserve missing?)", len(enc), want)
	}
	dec, rest, err := wire.Decode(enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v", err)
	}
	if dec.(ShareMsg) != msg {
		t.Fatalf("round trip mutated: %v", dec)
	}
	// A body without the reserve is truncated.
	frame := wire.AppendUvarint(nil, wireTagShare)
	frame = wire.AppendInt(frame, 9)
	if _, _, err := wire.Decode(frame); err == nil {
		t.Fatal("share without reserved bytes accepted")
	}
}
