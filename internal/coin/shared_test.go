package coin

import (
	"testing"

	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/wire"
)

// shareNode releases its share for wave 1 on init and records when its
// local coin becomes ready.
type shareNode struct {
	trust   quorum.Assumption
	coin    *Shared
	readyAt sim.VirtualTime
}

func (n *shareNode) Init(env sim.Env) {
	n.coin = NewShared(env.Self(), n.trust, NewPRF(5, env.N()))
	n.readyAt = -1
	n.coin.Release(env, 1)
	n.coin.Release(env, 1) // idempotent
}

func (n *shareNode) Receive(env sim.Env, from types.ProcessID, msg sim.Message) {
	if became, _ := n.coin.Handle(env, from, msg); became {
		n.readyAt = env.Now()
	}
}

func TestSharedCoinRevealsAfterQuorum(t *testing.T) {
	n := 4
	trust := quorum.NewThreshold(n, 1)
	nodes := make([]sim.Node, n)
	raw := make([]*shareNode, n)
	for i := range nodes {
		sn := &shareNode{trust: trust}
		nodes[i] = sn
		raw[i] = sn
	}
	r := sim.NewRunner(sim.Config{N: n, Seed: 1, Latency: sim.UniformLatency{Min: 1, Max: 10}}, nodes)
	r.Run(0)
	var leader types.ProcessID = -1
	for i, sn := range raw {
		if sn.readyAt < 0 {
			t.Fatalf("node %d coin never became ready", i)
		}
		if !sn.coin.Ready(1) {
			t.Fatalf("node %d Ready(1) = false after reveal", i)
		}
		l, ok := sn.coin.Leader(1)
		if !ok {
			t.Fatalf("node %d Leader(1) unavailable", i)
		}
		if leader == -1 {
			leader = l
		} else if leader != l {
			t.Fatalf("coins disagree: %v vs %v", leader, l)
		}
		// Unreleased wave stays hidden.
		if _, ok := sn.coin.Leader(2); ok {
			t.Fatal("wave 2 leader should not be revealed")
		}
		if sn.coin.Ready(2) {
			t.Fatal("wave 2 should not be ready")
		}
	}
}

func TestSharedCoinNotReadyBelowQuorum(t *testing.T) {
	n := 4
	trust := quorum.NewThreshold(n, 1) // quorum = 3
	nodes := make([]sim.Node, n)
	raw := make([]*shareNode, n)
	for i := range nodes {
		sn := &shareNode{trust: trust}
		nodes[i] = sn
		raw[i] = sn
	}
	// Two nodes never release (mute): only 2 shares < quorum of 3.
	nodes[2] = sim.MuteNode{}
	nodes[3] = sim.MuteNode{}
	r := sim.NewRunner(sim.Config{N: n, Seed: 1}, nodes)
	r.Run(0)
	for i := 0; i < 2; i++ {
		if raw[i].coin.Ready(1) {
			t.Fatalf("node %d revealed the coin with only 2 shares", i)
		}
	}
}

func TestShareMsgSize(t *testing.T) {
	sz, ok := wire.EncodedSize(ShareMsg{Wave: 1})
	if !ok || sz < shareReservedBytes {
		t.Errorf("encoded share size = %d, %v; should model a BLS share (>= %d bytes)",
			sz, ok, shareReservedBytes)
	}
}
