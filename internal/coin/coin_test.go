package coin

import (
	"testing"

	"repro/internal/types"
)

func TestPRFMatching(t *testing.T) {
	a := NewPRF(99, 10)
	b := NewPRF(99, 10)
	for w := 1; w <= 100; w++ {
		if a.Leader(w) != b.Leader(w) {
			t.Fatalf("wave %d: coins disagree", w)
		}
	}
}

func TestPRFRange(t *testing.T) {
	c := NewPRF(7, 13)
	for w := 1; w <= 500; w++ {
		l := c.Leader(w)
		if l < 0 || int(l) >= 13 {
			t.Fatalf("wave %d: leader %d out of range", w, l)
		}
	}
}

func TestPRFApproximatelyUniform(t *testing.T) {
	n := 10
	c := NewPRF(123, n)
	counts := make([]int, n)
	waves := 20000
	for w := 1; w <= waves; w++ {
		counts[c.Leader(w)]++
	}
	exp := float64(waves) / float64(n)
	for i, got := range counts {
		// Allow ±25% of expectation — generous but catches modulo bias
		// or stuck outputs.
		if float64(got) < exp*0.75 || float64(got) > exp*1.25 {
			t.Errorf("process %d elected %d times, expected ~%.0f", i, got, exp)
		}
	}
}

func TestPRFSeedSensitivity(t *testing.T) {
	a := NewPRF(1, 10)
	b := NewPRF(2, 10)
	same := 0
	for w := 1; w <= 200; w++ {
		if a.Leader(w) == b.Leader(w) {
			same++
		}
	}
	if same > 60 { // expect ~20 collisions for n=10
		t.Errorf("different seeds agree on %d/200 waves", same)
	}
}

func TestNewPRFPanicsOnZeroN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPRF(1, 0)
}

func TestFixed(t *testing.T) {
	f := Fixed{Leaders: []types.ProcessID{3, 1}}
	if f.Leader(1) != 3 || f.Leader(2) != 1 || f.Leader(3) != 3 {
		t.Error("Fixed coin wrong sequence")
	}
	var empty Fixed
	if empty.Leader(1) != 0 {
		t.Error("empty Fixed should elect 0")
	}
}
