package quorum

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/types"
)

// degenerateSystem builds a System directly, bypassing New's guards, so
// the analysis layer can be probed on inputs the constructor rejects
// (processes with no quorums, empty collections, n=1).
func degenerateSystem(n int, failProne, quorums [][]types.Set) *System {
	if failProne == nil {
		failProne = make([][]types.Set, n)
	}
	if quorums == nil {
		quorums = make([][]types.Set, n)
	}
	return &System{n: n, failProne: failProne, quorums: quorums}
}

// checkAnalysisAgreement asserts that every word-compiled analysis entry
// point agrees with its retained naive reference on sys.
func checkAnalysisAgreement(t *testing.T, label string, sys *System, rng *rand.Rand) {
	t.Helper()
	n := sys.N()

	wantErr := sys.ValidateNaive()
	gotErr := sys.Validate()
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: Validate=%v, ValidateNaive=%v", label, gotErr, wantErr)
	}
	wantB3 := sys.SatisfiesB3Naive()
	if gotB3 := sys.SatisfiesB3(); gotB3 != wantB3 {
		t.Fatalf("%s: SatisfiesB3=%v, naive=%v", label, gotB3, wantB3)
	}

	a := AnalyzeSystem(sys)
	if a.Valid != (wantErr == nil) || a.B3 != wantB3 || a.N != n {
		t.Fatalf("%s: AnalyzeSystem=%+v disagrees with naive (valid=%v b3=%v)",
			label, a, wantErr == nil, wantB3)
	}
	if !a.Valid && a.Err == nil {
		t.Fatalf("%s: invalid system must carry a witness error", label)
	}
	if !a.B3 && a.B3Witness == "" {
		t.Fatalf("%s: B3 violation must carry a witness", label)
	}
	totalQ, minQ := 0, n+1
	for i := 0; i < n; i++ {
		for _, q := range sys.Quorums(types.ProcessID(i)) {
			totalQ++
			if c := q.Count(); c < minQ {
				minQ = c
			}
		}
	}
	if totalQ == 0 {
		minQ = 0
	}
	if a.TotalQuorums != totalQ || a.SmallestQuorum != minQ {
		t.Fatalf("%s: AnalyzeSystem counts %d/%d, want %d/%d",
			label, a.TotalQuorums, a.SmallestQuorum, totalQ, minQ)
	}

	// Tolerates and Wise on random probe sets.
	for trial := 0; trial < 8; trial++ {
		f := types.NewSet(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				f.Add(types.ProcessID(i))
			}
		}
		p := types.ProcessID(rng.Intn(n))
		if sys.Tolerates(p, f) != sys.ToleratesNaive(p, f) {
			t.Fatalf("%s: Tolerates(%v, %v) diverged from naive", label, p, f)
		}
		wise := sys.Wise(f)
		for i := 0; i < n; i++ {
			q := types.ProcessID(i)
			want := !f.Contains(q) && sys.ToleratesNaive(q, f)
			if wise.Contains(q) != want {
				t.Fatalf("%s: Wise(%v) membership of %v = %v, want %v", label, f, q, wise.Contains(q), want)
			}
		}
	}
}

// TestAnalysisDifferentialRandom is the randomized differential suite for
// the word-compiled analysis engine: ~200 seeds, alternating between
// RandomAsymmetric systems (valid by construction) and raw canonical
// systems over unconstrained random fail-prone collections (a mix of
// valid and invalid, exercising both verdicts of Validate/SatisfiesB3).
func TestAnalysisDifferentialRandom(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		rng := rand.New(rand.NewSource(seed * 31))
		n := 4 + rng.Intn(13)
		var sys *System
		var label string
		if seed%2 == 0 {
			var err error
			sys, err = RandomAsymmetric(RandomAsymmetricConfig{
				N: n, NumSets: 1 + rng.Intn(3), MaxFault: 1 + rng.Intn(max(1, n/4)), Seed: seed,
			})
			if err != nil {
				continue // no valid system for this seed; other seeds cover it
			}
			label = "asym"
		} else {
			// Unconstrained random fail-prone sets, canonical quorums: no
			// validity rejection, so invalid and non-B3 systems appear.
			fp := make([][]types.Set, n)
			for i := 0; i < n; i++ {
				k := 1 + rng.Intn(3)
				sets := make([]types.Set, 0, k)
				for x := 0; x < k; x++ {
					f := types.NewSet(n)
					size := rng.Intn(n)
					for f.Count() < size {
						f.Add(types.ProcessID(rng.Intn(n)))
					}
					sets = append(sets, f)
				}
				fp[i] = sets
			}
			var err error
			sys, err = Canonical(n, fp)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			label = "canonical"
		}
		checkAnalysisAgreement(t, label, sys, rng)
	}
}

// TestAnalysisDegenerate pins the analysis engine on the degenerate shapes
// the constructor rejects: empty quorum collections, empty fail-prone
// collections, a mix of both, and n=1.
func TestAnalysisDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(99))

	// No quorums anywhere, fail-prone sets present: availability must fail.
	n := 4
	fp := make([][]types.Set, n)
	for i := range fp {
		fp[i] = []types.Set{types.NewSetOf(n, types.ProcessID((i+1)%n))}
	}
	noQ := degenerateSystem(n, fp, nil)
	checkAnalysisAgreement(t, "no-quorums", noQ, rng)
	if noQ.Validate() == nil {
		t.Error("system without quorums but with fail-prone sets must violate availability")
	}
	if a := AnalyzeSystem(noQ); a.TotalQuorums != 0 || a.SmallestQuorum != 0 {
		t.Errorf("no-quorum analysis = %+v, want 0 quorums and c(Q)=0", a)
	}

	// Quorums present, no fail-prone sets: trivially valid, B3 vacuous.
	q := types.NewSetOf(n, 0, 1, 2)
	qs := make([][]types.Set, n)
	for i := range qs {
		qs[i] = []types.Set{q}
	}
	noF := degenerateSystem(n, nil, qs)
	checkAnalysisAgreement(t, "no-failprone", noF, rng)
	if noF.Validate() != nil || !noF.SatisfiesB3() {
		t.Error("system without fail-prone sets must be valid and satisfy B3")
	}

	// Mixed: one process with no quorums at all.
	mixed := degenerateSystem(n, fp, [][]types.Set{{q}, {q}, {q}, nil})
	checkAnalysisAgreement(t, "mixed", mixed, rng)

	// n=1: a single process trusting itself.
	one := degenerateSystem(1, nil, [][]types.Set{{types.NewSetOf(1, 0)}})
	checkAnalysisAgreement(t, "n=1", one, rand.New(rand.NewSource(1)))
	if one.Validate() != nil || !one.SatisfiesB3() {
		t.Error("single self-trusting process must be valid and satisfy B3")
	}

	// n=1 with an empty fail-prone set: still valid, B3 must agree with
	// the naive reference (the residue is the process itself).
	oneF := degenerateSystem(1, [][]types.Set{{types.NewSet(1)}}, [][]types.Set{{types.NewSetOf(1, 0)}})
	checkAnalysisAgreement(t, "n=1+emptyF", oneF, rand.New(rand.NewSource(2)))
}

// TestDescribeNoQuorums is the regression test for the Describe sentinel
// bug: with an empty quorum collection it used to print the garbage range
// "sizes n+1..0" (and c(Q)=n+1).
func TestDescribeNoQuorums(t *testing.T) {
	sys := degenerateSystem(3, nil, nil)
	out := sys.Describe()
	if !strings.Contains(out, "quorums: 0 total, sizes -") {
		t.Errorf("Describe must report 'sizes -' for an empty quorum collection:\n%s", out)
	}
	if strings.Contains(out, "sizes 4..0") || strings.Contains(out, "c(Q)=4") {
		t.Errorf("Describe leaked the n+1/0 sentinels:\n%s", out)
	}
	if !strings.Contains(out, "n/a (no quorums)") {
		t.Errorf("Describe must not divide by c(Q)=0:\n%s", out)
	}
}
