package quorum

import (
	"fmt"
	"math/rand"

	"repro/internal/types"
)

// Canonical builds the canonical asymmetric quorum system for a fail-prone
// system: Q_i = { P \ F : F ∈ F_i }. By Theorem 2.4, if the fail-prone
// system satisfies B3 the result is a valid asymmetric quorum system.
func Canonical(n int, failProne [][]types.Set) (*System, error) {
	quorums := make([][]types.Set, n)
	for i := range failProne {
		qs := make([]types.Set, 0, len(failProne[i]))
		for _, f := range failProne[i] {
			qs = append(qs, f.Complement())
		}
		quorums[i] = qs
	}
	return New(n, failProne, quorums)
}

// NewSymmetric builds a System in which every process shares the same
// fail-prone collection and the canonical quorums derived from it.
func NewSymmetric(n int, failProne []types.Set) (*System, error) {
	fp := make([][]types.Set, n)
	for i := range fp {
		fp[i] = failProne
	}
	return Canonical(n, fp)
}

// Combinations invokes fn with every k-subset of {0..n-1} as a Set. It is
// exported for tests and tooling; cost is C(n,k) so callers must keep n
// small.
func Combinations(n, k int, fn func(types.Set)) {
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			s := types.NewSet(n)
			for _, i := range idx {
				s.Add(types.ProcessID(i))
			}
			fn(s)
			return
		}
		for i := start; i <= n-(k-depth); i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	if k == 0 {
		fn(types.NewSet(n))
		return
	}
	if k > n || k < 0 {
		return
	}
	rec(0, 0)
}

// NewThresholdExplicit materializes the threshold system (all f-subsets as
// fail-prone sets, canonical quorums) as an explicit System. It is meant
// for small n where C(n,f) is manageable; use Threshold otherwise.
func NewThresholdExplicit(n, f int) (*System, error) {
	if n <= 3*f {
		return nil, fmt.Errorf("quorum: threshold system needs n > 3f, got n=%d f=%d", n, f)
	}
	var fp []types.Set
	Combinations(n, f, func(s types.Set) { fp = append(fp, s) })
	return NewSymmetric(n, fp)
}

// counterexampleQuorums are the 30 canonical quorums of the paper's
// Figure 1 / Listing 1 counterexample (1-based process numbers, exactly as
// printed in the paper's Appendix A).
var counterexampleQuorums = map[int][]int{
	1:  {1, 2, 3, 4, 5, 16},
	2:  {1, 6, 7, 8, 9, 17},
	3:  {1, 2, 3, 4, 5, 18},
	4:  {1, 6, 7, 8, 9, 19},
	5:  {2, 6, 10, 11, 12, 20},
	6:  {4, 8, 11, 13, 15, 21},
	7:  {4, 8, 11, 13, 15, 22},
	8:  {5, 9, 12, 14, 15, 23},
	9:  {5, 9, 12, 14, 15, 24},
	10: {4, 8, 11, 13, 15, 25},
	11: {1, 6, 7, 8, 9, 26},
	12: {2, 6, 10, 11, 12, 27},
	13: {3, 7, 10, 13, 14, 28},
	14: {3, 7, 10, 13, 14, 29},
	15: {5, 9, 12, 14, 15, 30},
	16: {1, 2, 3, 4, 5, 16},
	17: {1, 2, 3, 4, 5, 16},
	18: {1, 2, 3, 4, 5, 16},
	19: {1, 2, 3, 4, 5, 16},
	20: {1, 6, 7, 8, 9, 27},
	21: {1, 6, 7, 8, 9, 27},
	22: {1, 6, 7, 8, 9, 20},
	23: {2, 6, 10, 11, 12, 30},
	24: {2, 6, 10, 11, 12, 30},
	25: {1, 6, 7, 8, 9, 22},
	26: {1, 2, 3, 4, 5, 16},
	27: {1, 6, 7, 8, 9, 27},
	28: {1, 2, 3, 4, 5, 16},
	29: {1, 2, 3, 4, 5, 29},
	30: {2, 6, 10, 11, 12, 30},
}

// CounterexampleN is the number of processes in the paper's Figure 1
// counterexample system.
const CounterexampleN = 30

// Counterexample returns the 30-process asymmetric quorum system of the
// paper's Figure 1 and Appendix A: each process has exactly one quorum (as
// listed in Listing 1) and the single canonical fail-prone set that is its
// complement. Running the quorum-replacement gather (Algorithm 2) on this
// system reaches no common core (Lemma 3.2).
func Counterexample() *System {
	n := CounterexampleN
	fp := make([][]types.Set, n)
	qs := make([][]types.Set, n)
	for p := 1; p <= n; p++ {
		q := types.NewSet(n)
		for _, m := range counterexampleQuorums[p] {
			q.Add(types.ProcessID(m - 1))
		}
		qs[p-1] = []types.Set{q}
		fp[p-1] = []types.Set{q.Complement()}
	}
	return MustNew(n, fp, qs)
}

// FederatedConfig describes a Stellar-flavoured tiered trust topology used
// by the federated example and the Lemma 4.4 sweeps.
//
// Processes are split into a top tier of TopTier processes and a remainder.
// Every process trusts the top tier plus TrustedPeers random other
// processes; its fail-prone sets are all subsets of its trusted slice of
// size at most Tolerance, and its quorums are canonical.
type FederatedConfig struct {
	N            int
	TopTier      int
	TrustedPeers int
	Tolerance    int
	Seed         int64
}

// NewFederated generates a federated asymmetric system from cfg. The
// construction keeps each process's fail-prone collection small (one set
// per tolerated combination of top-tier members up to Tolerance), so the
// result stays tractable while exhibiting genuinely heterogeneous trust.
// The returned system is NOT guaranteed to satisfy B3 for arbitrary
// parameters; callers that need soundness should Validate it (the tests
// pin parameter choices that do).
func NewFederated(cfg FederatedConfig) (*System, error) {
	if cfg.TopTier > cfg.N || cfg.TopTier <= 0 {
		return nil, fmt.Errorf("quorum: top tier %d out of range for n=%d", cfg.TopTier, cfg.N)
	}
	if cfg.Tolerance < 0 || 3*cfg.Tolerance >= cfg.TopTier {
		return nil, fmt.Errorf("quorum: need topTier > 3*tolerance, got %d and %d", cfg.TopTier, cfg.Tolerance)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.N
	fp := make([][]types.Set, n)

	for i := 0; i < n; i++ {
		// Trusted slice: the top tier plus TrustedPeers random others.
		slice := types.NewSet(n)
		for t := 0; t < cfg.TopTier; t++ {
			slice.Add(types.ProcessID(t))
		}
		slice.Add(types.ProcessID(i))
		for len(slice.Members()) < min(n, cfg.TopTier+cfg.TrustedPeers+1) {
			slice.Add(types.ProcessID(rng.Intn(n)))
		}
		// Fail-prone sets: every Tolerance-subset of the top tier, unioned
		// with all processes outside the trusted slice (a process never
		// relies on processes it does not trust, so they may all fail).
		outside := slice.Complement()
		var sets []types.Set
		Combinations(cfg.TopTier, cfg.Tolerance, func(topFault types.Set) {
			f := outside.Clone()
			for _, m := range topFault.Members() {
				// topFault is over universe TopTier; re-embed into n.
				f.Add(m)
			}
			f.Remove(types.ProcessID(i)) // a process trusts itself
			sets = append(sets, f)
		})
		fp[i] = sets
	}
	return Canonical(n, fp)
}

// RandomSymmetricConfig controls RandomSymmetric.
type RandomSymmetricConfig struct {
	N        int
	NumSets  int // fail-prone sets per process
	MaxFault int // max size of each fail-prone set
	Seed     int64
}

// RandomSymmetric generates a random symmetric system with NumSets random
// fail-prone sets of size at most MaxFault shared by all processes, with
// canonical quorums. The result is only returned if it passes Validate;
// otherwise generation retries with a derived seed, up to 64 attempts.
func RandomSymmetric(cfg RandomSymmetricConfig) (*System, error) {
	var lastViolation error
	for attempt := 0; attempt < 64; attempt++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(attempt)*7919))
		sets := make([]types.Set, 0, cfg.NumSets)
		for k := 0; k < cfg.NumSets; k++ {
			size := 1 + rng.Intn(cfg.MaxFault)
			s := types.NewSet(cfg.N)
			for s.Count() < size {
				s.Add(types.ProcessID(rng.Intn(cfg.N)))
			}
			sets = append(sets, s)
		}
		sys, err := NewSymmetric(cfg.N, sets)
		if err != nil {
			return nil, err
		}
		if lastViolation = sys.Validate(); lastViolation == nil {
			return sys, nil
		}
	}
	return nil, fmt.Errorf("quorum: no valid random symmetric system found for %+v (last violation: %v)", cfg, lastViolation)
}

// RandomAsymmetricConfig controls RandomAsymmetric.
type RandomAsymmetricConfig struct {
	N        int
	NumSets  int // fail-prone sets per process
	MaxFault int
	Seed     int64
}

// RandomAsymmetric generates a random asymmetric system: each process draws
// its own NumSets fail-prone sets of size at most MaxFault (never including
// itself), quorums canonical. Retries with derived seeds until the system
// passes Validate, up to 128 attempts.
func RandomAsymmetric(cfg RandomAsymmetricConfig) (*System, error) {
	var lastViolation error
	for attempt := 0; attempt < 128; attempt++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(attempt)*104729))
		fp := make([][]types.Set, cfg.N)
		for i := 0; i < cfg.N; i++ {
			sets := make([]types.Set, 0, cfg.NumSets)
			for k := 0; k < cfg.NumSets; k++ {
				size := 1 + rng.Intn(cfg.MaxFault)
				s := types.NewSet(cfg.N)
				for s.Count() < size {
					c := types.ProcessID(rng.Intn(cfg.N))
					if int(c) == i {
						continue
					}
					s.Add(c)
				}
				sets = append(sets, s)
			}
			fp[i] = sets
		}
		sys, err := Canonical(cfg.N, fp)
		if err != nil {
			return nil, err
		}
		if lastViolation = sys.Validate(); lastViolation == nil {
			return sys, nil
		}
	}
	return nil, fmt.Errorf("quorum: no valid random asymmetric system found for %+v (last violation: %v)", cfg, lastViolation)
}

// UNLConfig describes a Ripple-flavoured trust topology (paper §1:
// "In Ripple, each participant must declare ... a list of other
// participating nodes that it trusts and from which it will consider
// votes"). All processes start from a recommended UNL of ListSize
// processes; each may swap out up to Deviation members for others, and
// tolerates up to Tolerance failures inside its list.
type UNLConfig struct {
	N         int
	ListSize  int
	Deviation int
	Tolerance int
	Seed      int64
}

// NewUNL generates a Ripple-style system from cfg: fail-prone sets are
// every Tolerance-subset of the process's UNL together with everything
// outside it; quorums are canonical. The recommended list is processes
// 0..ListSize-1. Small deviations keep the pairwise list overlap high,
// which is what Ripple's safety analysis requires; large deviations can
// break B3 — Validate before use (the tests pin safe parameters).
func NewUNL(cfg UNLConfig) (*System, error) {
	if cfg.ListSize > cfg.N || cfg.ListSize <= 0 {
		return nil, fmt.Errorf("quorum: list size %d out of range for n=%d", cfg.ListSize, cfg.N)
	}
	if cfg.Tolerance < 0 || 3*cfg.Tolerance >= cfg.ListSize-cfg.Deviation {
		return nil, fmt.Errorf("quorum: need listSize-deviation > 3*tolerance, got %d-%d and %d",
			cfg.ListSize, cfg.Deviation, cfg.Tolerance)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.N
	fp := make([][]types.Set, n)
	for i := 0; i < n; i++ {
		// Start from the recommended list, always including oneself.
		unl := types.NewSet(n)
		for m := 0; m < cfg.ListSize; m++ {
			unl.Add(types.ProcessID(m))
		}
		unl.Add(types.ProcessID(i))
		// Apply up to Deviation random swaps.
		for d := 0; d < cfg.Deviation; d++ {
			members := unl.Members()
			out := members[rng.Intn(len(members))]
			if int(out) == i {
				continue
			}
			in := types.ProcessID(rng.Intn(n))
			if unl.Contains(in) || int(in) == i {
				continue
			}
			unl.Remove(out)
			unl.Add(in)
		}
		outside := unl.Complement()
		var sets []types.Set
		// Fail-prone: every Tolerance-subset of the UNL (minus self),
		// plus everything outside the UNL.
		unlOthers := unl.Clone()
		unlOthers.Remove(types.ProcessID(i))
		others := unlOthers.Members()
		Combinations(len(others), cfg.Tolerance, func(idx types.Set) {
			f := outside.Clone()
			for _, k := range idx.Members() {
				f.Add(others[k])
			}
			sets = append(sets, f)
		})
		fp[i] = sets
	}
	return Canonical(n, fp)
}
