package quorum

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

// naiveHasQuorumWithin re-implements the predicate directly over Q_i,
// independent of the compiled evaluator, as the equivalence oracle.
func naiveHasQuorumWithin(s *System, i types.ProcessID, m types.Set) bool {
	for _, q := range s.Quorums(i) {
		if q.IsSubsetOf(m) {
			return true
		}
	}
	return false
}

func naiveHasKernelWithin(s *System, i types.ProcessID, m types.Set) bool {
	for _, q := range s.Quorums(i) {
		if !q.Intersects(m) {
			return false
		}
	}
	return true
}

// opaque hides a System's concrete type so NewTracker exercises the
// generic Assumption fallback path.
type opaque struct{ s *System }

func (o opaque) N() int { return o.s.N() }
func (o opaque) HasQuorumWithin(i types.ProcessID, m types.Set) bool {
	return naiveHasQuorumWithin(o.s, i, m)
}
func (o opaque) HasKernelWithin(i types.ProcessID, m types.Set) bool {
	return naiveHasKernelWithin(o.s, i, m)
}

// testSystems returns the equivalence-test corpus: the paper's Figure 1
// counterexample plus a spread of random asymmetric systems.
func testSystems(t *testing.T) []*System {
	t.Helper()
	systems := []*System{Counterexample()}
	for seed := int64(1); seed <= 6; seed++ {
		sys, err := RandomAsymmetric(RandomAsymmetricConfig{
			N: 8 + int(seed), NumSets: 1 + int(seed)%3, MaxFault: 2, Seed: seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		systems = append(systems, sys)
	}
	if th, err := NewThresholdExplicit(7, 2); err == nil {
		systems = append(systems, th)
	} else {
		t.Fatalf("threshold explicit: %v", err)
	}
	return systems
}

// TestTrackerEquivalenceRandom drives trackers with random add orders over
// random systems and checks both predicates against the naive scan after
// every single Add — for the compiled engine, the one-shot evaluator
// queries, and the generic fallback.
func TestTrackerEquivalenceRandom(t *testing.T) {
	for si, sys := range testSystems(t) {
		n := sys.N()
		rng := rand.New(rand.NewSource(int64(si)*997 + 13))
		for trial := 0; trial < 8; trial++ {
			order := rng.Perm(n)
			prefix := rng.Intn(n + 1)
			for pi := 0; pi < n; pi += 3 { // a spread of observer processes
				p := types.ProcessID(pi)
				tr := NewTracker(sys, p)
				fb := NewTracker(opaque{sys}, p)
				m := types.NewSet(n)
				for _, raw := range order[:prefix] {
					x := types.ProcessID(raw)
					m.Add(x)
					tr.Add(x)
					tr.Add(x) // duplicate adds must be no-ops
					fb.Add(x)
					wantQ := naiveHasQuorumWithin(sys, p, m)
					wantK := naiveHasKernelWithin(sys, p, m)
					if tr.HasQuorum() != wantQ || tr.HasKernel() != wantK {
						t.Fatalf("system %d trial %d: tracker (%v,%v) vs naive (%v,%v) for p%d m=%v",
							si, trial, tr.HasQuorum(), tr.HasKernel(), wantQ, wantK, pi+1, m)
					}
					if fb.HasQuorum() != wantQ || fb.HasKernel() != wantK {
						t.Fatalf("system %d trial %d: fallback tracker diverged for p%d m=%v", si, trial, pi+1, m)
					}
					if sys.HasQuorumWithin(p, m) != wantQ || sys.HasKernelWithin(p, m) != wantK {
						t.Fatalf("system %d trial %d: one-shot evaluator diverged for p%d m=%v", si, trial, pi+1, m)
					}
				}
				if !tr.Set().Equal(m) || tr.Count() != m.Count() {
					t.Fatalf("system %d: tracker set %v != %v", si, tr.Set(), m)
				}
			}
		}
	}
}

// TestTrackerThresholdEquivalence checks the counting tracker against the
// Threshold predicates for every prefix of random add orders.
func TestTrackerThresholdEquivalence(t *testing.T) {
	for _, cfg := range [][2]int{{4, 1}, {7, 2}, {10, 3}, {100, 33}} {
		th := NewThreshold(cfg[0], cfg[1])
		rng := rand.New(rand.NewSource(int64(cfg[0])))
		for trial := 0; trial < 4; trial++ {
			tr := NewTracker(th, 0)
			m := types.NewSet(cfg[0])
			for _, raw := range rng.Perm(cfg[0]) {
				x := types.ProcessID(raw)
				m.Add(x)
				if !tr.Add(x) {
					t.Fatal("fresh Add returned false")
				}
				if tr.Add(x) {
					t.Fatal("duplicate Add returned true")
				}
				if tr.HasQuorum() != th.HasQuorumWithin(0, m) || tr.HasKernel() != th.HasKernelWithin(0, m) {
					t.Fatalf("n=%d f=%d: counting tracker diverged at %v", cfg[0], cfg[1], m)
				}
			}
		}
	}
}

// TestTrackerMonotone is the latching regression: once a tracker reports a
// predicate true, no later Add may flip it back.
func TestTrackerMonotone(t *testing.T) {
	for si, sys := range testSystems(t) {
		n := sys.N()
		rng := rand.New(rand.NewSource(int64(si) + 5))
		for trial := 0; trial < 6; trial++ {
			p := types.ProcessID(rng.Intn(n))
			tr := NewTracker(sys, p)
			seenQ, seenK := false, false
			for _, raw := range rng.Perm(n) {
				tr.Add(types.ProcessID(raw))
				if seenQ && !tr.HasQuorum() {
					t.Fatalf("system %d: HasQuorum regressed", si)
				}
				if seenK && !tr.HasKernel() {
					t.Fatalf("system %d: HasKernel regressed", si)
				}
				seenQ = seenQ || tr.HasQuorum()
				seenK = seenK || tr.HasKernel()
			}
			// The full set always contains every quorum and kernel.
			if !tr.HasQuorum() || !tr.HasKernel() {
				t.Fatalf("system %d: full tally must satisfy both predicates", si)
			}
		}
	}
}

// TestTrackerAddSet checks bulk adds against element-wise adds.
func TestTrackerAddSet(t *testing.T) {
	sys := Counterexample()
	n := sys.N()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		bulk := types.NewSet(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				bulk.Add(types.ProcessID(i))
			}
		}
		p := types.ProcessID(rng.Intn(n))
		a := NewTracker(sys, p)
		a.AddSet(bulk)
		b := NewTracker(sys, p)
		bulk.ForEach(func(x types.ProcessID) bool { b.Add(x); return true })
		if a.HasQuorum() != b.HasQuorum() || a.HasKernel() != b.HasKernel() || !a.Set().Equal(b.Set()) {
			t.Fatalf("trial %d: AddSet diverged from element-wise adds", trial)
		}
	}
}

// TestHasAnyQuorumWithinEquivalence checks the flat-scan fast path against
// the per-process definition.
func TestHasAnyQuorumWithinEquivalence(t *testing.T) {
	for si, sys := range testSystems(t) {
		n := sys.N()
		rng := rand.New(rand.NewSource(int64(si) * 3))
		for trial := 0; trial < 16; trial++ {
			m := types.NewSet(n)
			for i := 0; i < n; i++ {
				if rng.Intn(3) > 0 {
					m.Add(types.ProcessID(i))
				}
			}
			want := false
			for i := 0; i < n && !want; i++ {
				want = naiveHasQuorumWithin(sys, types.ProcessID(i), m)
			}
			if got := HasAnyQuorumWithin(sys, m); got != want {
				t.Fatalf("system %d: HasAnyQuorumWithin=%v want %v for %v", si, got, want, m)
			}
		}
	}
}

// naiveMaximalGuild is the pre-engine sweep fixpoint, kept as the oracle
// for the worklist implementation.
func naiveMaximalGuild(s *System, f types.Set) types.Set {
	g := s.Wise(f)
	for {
		removed := false
		for _, p := range g.Members() {
			if !naiveHasQuorumWithin(s, p, g) {
				g.Remove(p)
				removed = true
			}
		}
		if !removed {
			return g
		}
	}
}

// TestMaximalGuildEquivalence checks the worklist guild computation against
// the naive sweep on random systems and random faulty sets.
func TestMaximalGuildEquivalence(t *testing.T) {
	for si, sys := range testSystems(t) {
		n := sys.N()
		rng := rand.New(rand.NewSource(int64(si) * 7))
		for trial := 0; trial < 12; trial++ {
			f := types.NewSet(n)
			for i := 0; i < n; i++ {
				if rng.Intn(5) == 0 {
					f.Add(types.ProcessID(i))
				}
			}
			want := naiveMaximalGuild(sys, f)
			got := sys.MaximalGuild(f)
			if !got.Equal(want) {
				t.Fatalf("system %d f=%v: guild %v want %v", si, f, got, want)
			}
		}
	}
}

// TestEvaluatorSmallestQuorumSize pins the popcount-backed c(Q) against
// direct counting.
func TestEvaluatorSmallestQuorumSize(t *testing.T) {
	for si, sys := range testSystems(t) {
		best := sys.N() + 1
		for i := 0; i < sys.N(); i++ {
			for _, q := range sys.Quorums(types.ProcessID(i)) {
				if c := q.Count(); c < best {
					best = c
				}
			}
		}
		if got := sys.SmallestQuorumSize(); got != best {
			t.Fatalf("system %d: c(Q)=%d want %d", si, got, best)
		}
	}
}
