package quorum

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestThresholdPredicates(t *testing.T) {
	th := NewThreshold(4, 1)
	if th.N() != 4 || th.F() != 1 {
		t.Fatalf("N/F = %d/%d", th.N(), th.F())
	}
	if th.QuorumSize() != 3 || th.KernelSize() != 2 {
		t.Fatalf("quorum/kernel size = %d/%d", th.QuorumSize(), th.KernelSize())
	}
	m2 := types.NewSetOf(4, 0, 1)
	m3 := types.NewSetOf(4, 0, 1, 2)
	if th.HasQuorumWithin(0, m2) {
		t.Error("2 of 4 should not be a quorum")
	}
	if !th.HasQuorumWithin(0, m3) {
		t.Error("3 of 4 should be a quorum")
	}
	if th.HasKernelWithin(0, types.NewSetOf(4, 0)) {
		t.Error("1 of 4 should not contain a kernel")
	}
	if !th.HasKernelWithin(0, m2) {
		t.Error("2 of 4 should contain a kernel (f+1=2)")
	}
}

func TestNewThresholdPanicsOnInfeasible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewThreshold(3,1) should panic (needs n>3f)")
		}
	}()
	NewThreshold(3, 1)
}

func TestThresholdExplicitMatchesThreshold(t *testing.T) {
	n, f := 7, 2
	sys, err := NewThresholdExplicit(n, f)
	if err != nil {
		t.Fatal(err)
	}
	th := NewThreshold(n, f)
	if err := sys.Validate(); err != nil {
		t.Fatalf("explicit threshold system invalid: %v", err)
	}
	if !sys.SatisfiesB3() {
		t.Fatal("explicit threshold system should satisfy B3")
	}
	if got := sys.SmallestQuorumSize(); got != n-f {
		t.Fatalf("SmallestQuorumSize = %d, want %d", got, n-f)
	}
	// Predicates agree on random sets.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		m := types.NewSet(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				m.Add(types.ProcessID(i))
			}
		}
		p := types.ProcessID(rng.Intn(n))
		if sys.HasQuorumWithin(p, m) != th.HasQuorumWithin(p, m) {
			t.Fatalf("quorum predicate mismatch on %v", m)
		}
		if sys.HasKernelWithin(p, m) != th.HasKernelWithin(p, m) {
			t.Fatalf("kernel predicate mismatch on %v", m)
		}
	}
}

func TestNewValidation(t *testing.T) {
	n := 3
	q := types.NewSetOf(n, 0, 1)
	good := [][]types.Set{{q}, {q}, {q}}
	fp := [][]types.Set{nil, nil, nil}
	if _, err := New(n, fp, good); err != nil {
		t.Fatalf("New: %v", err)
	}
	// Wrong universe.
	bad := [][]types.Set{{types.NewSetOf(4, 0)}, {q}, {q}}
	if _, err := New(n, fp, bad); err == nil {
		t.Error("expected universe error")
	}
	// Empty quorum collection.
	if _, err := New(n, fp, [][]types.Set{{}, {q}, {q}}); err == nil {
		t.Error("expected empty-collection error")
	}
	// Empty quorum.
	if _, err := New(n, fp, [][]types.Set{{types.NewSet(n)}, {q}, {q}}); err == nil {
		t.Error("expected empty-quorum error")
	}
	// Wrong lengths.
	if _, err := New(n, fp[:2], good); err == nil {
		t.Error("expected length error")
	}
}

func TestCounterexampleStructure(t *testing.T) {
	sys := Counterexample()
	if sys.N() != 30 {
		t.Fatalf("N = %d", sys.N())
	}
	// Paper: the Fig. 1 fail-prone system satisfies B3 and has a valid
	// canonical quorum system.
	if !sys.SatisfiesB3() {
		t.Fatal("counterexample must satisfy B3 (paper §3.2)")
	}
	if err := sys.Validate(); err != nil {
		t.Fatalf("counterexample must be a valid quorum system: %v", err)
	}
	// Every process has exactly one quorum of size 6.
	for i := 0; i < 30; i++ {
		qs := sys.Quorums(types.ProcessID(i))
		if len(qs) != 1 {
			t.Fatalf("p%d has %d quorums", i+1, len(qs))
		}
		if qs[0].Count() != 6 {
			t.Fatalf("p%d quorum size %d", i+1, qs[0].Count())
		}
	}
	// Spot-check p1's quorum from Listing 1: {1,2,3,4,5,16}.
	want := types.NewSetOf(30, 0, 1, 2, 3, 4, 15)
	if !sys.Quorums(0)[0].Equal(want) {
		t.Fatalf("p1 quorum = %v", sys.Quorums(0)[0])
	}
	if got := sys.SmallestQuorumSize(); got != 6 {
		t.Fatalf("c(Q) = %d, want 6", got)
	}
	// All-correct execution: everyone is wise, maximal guild is everyone
	// (paper Appendix A: "the maximal guild is composed by all the 30
	// processes").
	none := types.NewSet(30)
	if got := sys.MaximalGuild(none); got.Count() != 30 {
		t.Fatalf("maximal guild size = %d, want 30", got.Count())
	}
}

func TestToleratesAndWise(t *testing.T) {
	sys, err := NewThresholdExplicit(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := types.NewSetOf(4, 3)
	if !sys.Tolerates(0, f) {
		t.Error("threshold(4,1) must tolerate one fault")
	}
	two := types.NewSetOf(4, 2, 3)
	if sys.Tolerates(0, two) {
		t.Error("threshold(4,1) must not tolerate two faults")
	}
	wise := sys.Wise(f)
	if !wise.Equal(types.NewSetOf(4, 0, 1, 2)) {
		t.Errorf("Wise = %v", wise)
	}
	if !sys.Naive(f).IsEmpty() {
		t.Errorf("Naive = %v, want empty", sys.Naive(f))
	}
	guild := sys.MaximalGuild(f)
	if !guild.Equal(types.NewSetOf(4, 0, 1, 2)) {
		t.Errorf("MaximalGuild = %v", guild)
	}
	// Beyond tolerance: nobody wise, guild empty.
	if !sys.MaximalGuild(two).IsEmpty() {
		t.Error("guild should be empty when faults exceed every fail-prone set")
	}
}

func TestNaiveProcessesAsymmetric(t *testing.T) {
	// 4 processes. p1..p3 tolerate {p4}; p4 tolerates only {p2}.
	// With F = {p4}: p1..p3 wise. With F = {p3}: nobody but... construct:
	n := 4
	f4 := types.NewSetOf(n, 3)
	f2 := types.NewSetOf(n, 1)
	fp := [][]types.Set{{f4}, {f4}, {f4}, {f2}}
	sys, err := Canonical(n, fp)
	if err != nil {
		t.Fatal(err)
	}
	faulty := types.NewSetOf(n, 3)
	wise := sys.Wise(faulty)
	if !wise.Equal(types.NewSetOf(n, 0, 1, 2)) {
		t.Errorf("Wise = %v", wise)
	}
	// Guild: p1..p3 with quorums {1,2,3} (complement of {4}) — closed.
	guild := sys.MaximalGuild(faulty)
	if !guild.Equal(types.NewSetOf(n, 0, 1, 2)) {
		t.Errorf("guild = %v", guild)
	}

	// Now fail p2: p4 is correct and tolerates {p2} → wise; p1..p3 do not
	// foresee {p2} → naive (p2 is faulty).
	faulty2 := types.NewSetOf(n, 1)
	wise2 := sys.Wise(faulty2)
	if !wise2.Equal(types.NewSetOf(n, 3)) {
		t.Errorf("Wise = %v, want {4}", wise2)
	}
	naive2 := sys.Naive(faulty2)
	if !naive2.Equal(types.NewSetOf(n, 0, 2)) {
		t.Errorf("Naive = %v, want {1, 3}", naive2)
	}
	// p4's only quorum is complement of {p2} = {1,3,4} ⊄ wise → guild empty.
	if !sys.MaximalGuild(faulty2).IsEmpty() {
		t.Errorf("guild = %v, want empty", sys.MaximalGuild(faulty2))
	}
}

func TestGuildClosureProperty(t *testing.T) {
	// Property: for any valid random system and any tolerated faulty set,
	// the maximal guild satisfies Wisdom and Closure.
	check := func(seed int64) bool {
		sys, err := RandomAsymmetric(RandomAsymmetricConfig{N: 8, NumSets: 3, MaxFault: 2, Seed: seed})
		if err != nil {
			return true // no valid system for this seed; skip
		}
		rng := rand.New(rand.NewSource(seed))
		// Pick a faulty set inside some process's fail-prone set.
		p := types.ProcessID(rng.Intn(8))
		fps := sys.FailProneSets(p)
		if len(fps) == 0 {
			return true
		}
		f := fps[rng.Intn(len(fps))]
		g := sys.MaximalGuild(f)
		for _, m := range g.Members() {
			if f.Contains(m) {
				return false // guild member faulty
			}
			if !sys.Tolerates(m, f) {
				return false // not wise
			}
			if !sys.HasQuorumWithin(m, g) {
				return false // closure violated
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestValidateDetectsViolations(t *testing.T) {
	n := 4
	// Availability violation: fail-prone set intersects every quorum.
	q := types.NewSetOf(n, 0, 1, 2)
	fp := [][]types.Set{{types.NewSetOf(n, 0)}, nil, nil, nil}
	qs := [][]types.Set{{q}, {q}, {q}, {q}}
	sys := MustNew(n, fp, qs)
	if err := sys.Validate(); err == nil {
		t.Error("expected availability violation")
	}
	// Consistency violation: two disjoint quorums.
	qa := types.NewSetOf(n, 0, 1)
	qb := types.NewSetOf(n, 2, 3)
	fp2 := [][]types.Set{{types.NewSet(n)}, {types.NewSet(n)}, {types.NewSet(n)}, {types.NewSet(n)}}
	sys2 := MustNew(n, fp2, [][]types.Set{{qa}, {qb}, {qa}, {qb}})
	if err := sys2.Validate(); err == nil {
		t.Error("expected consistency violation (empty intersection ⊆ ∅ ∈ both closures)")
	}
}

func TestB3ThresholdBoundary(t *testing.T) {
	// n=4,f=1 satisfies B3; n=3,f=1 must not (3 sets of size 1 cover P).
	sys4, err := NewThresholdExplicit(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !sys4.SatisfiesB3() {
		t.Error("threshold(4,1) should satisfy B3")
	}
	var fp3 []types.Set
	Combinations(3, 1, func(s types.Set) { fp3 = append(fp3, s) })
	// Build directly (canonical quorums) without feasibility guard.
	fpc := [][]types.Set{fp3, fp3, fp3}
	sys3, err := Canonical(3, fpc)
	if err != nil {
		t.Fatal(err)
	}
	if sys3.SatisfiesB3() {
		t.Error("threshold(3,1) must violate B3")
	}
}

func TestTheorem24CanonicalEquivalence(t *testing.T) {
	// Theorem 2.4: F satisfies B3 iff an asymmetric quorum system exists;
	// the canonical system is the witness. Check on random systems: B3
	// holds ⟺ canonical validates.
	rng := rand.New(rand.NewSource(42))
	agree := 0
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(4)
		fp := make([][]types.Set, n)
		for i := 0; i < n; i++ {
			k := 1 + rng.Intn(3)
			sets := make([]types.Set, 0, k)
			for s := 0; s < k; s++ {
				f := types.NewSet(n)
				size := rng.Intn(n / 2)
				for f.Count() < size {
					c := types.ProcessID(rng.Intn(n))
					if int(c) != i {
						f.Add(c)
					}
				}
				sets = append(sets, f)
			}
			fp[i] = sets
		}
		sys, err := Canonical(n, fp)
		if err != nil {
			t.Fatal(err)
		}
		b3 := sys.SatisfiesB3()
		valid := sys.Validate() == nil
		if b3 != valid {
			t.Fatalf("trial %d: B3=%v but canonical valid=%v (system %v)", trial, b3, valid, fp)
		}
		agree++
	}
	if agree == 0 {
		t.Fatal("no trials ran")
	}
}

func TestMinimalKernels(t *testing.T) {
	// Threshold(4,1): quorums are all 3-subsets; minimal kernels are all
	// 2-subsets (f+1 = 2): C(4,2) = 6 of them.
	sys, err := NewThresholdExplicit(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ks := sys.MinimalKernels(0, 0)
	if len(ks) != 6 {
		t.Fatalf("got %d minimal kernels, want 6: %v", len(ks), ks)
	}
	for _, k := range ks {
		if k.Count() != 2 {
			t.Errorf("kernel %v has size %d, want 2", k, k.Count())
		}
		if !sys.IsKernel(0, k) {
			t.Errorf("MinimalKernels returned non-kernel %v", k)
		}
	}
	// Counterexample: single quorum per process → minimal kernels are the
	// 6 singletons of that quorum.
	ce := Counterexample()
	ks1 := ce.MinimalKernels(0, 0)
	if len(ks1) != 6 {
		t.Fatalf("p1 kernels = %d, want 6", len(ks1))
	}
	for _, k := range ks1 {
		if k.Count() != 1 {
			t.Errorf("kernel %v should be singleton", k)
		}
	}
	// Limit works.
	if got := sys.MinimalKernels(0, 2); len(got) != 2 {
		t.Errorf("limit=2 returned %d kernels", len(got))
	}
}

// TestMinimalKernelsNoQuorums is the regression test for the degenerate
// recursion base case: a process with no quorums used to yield [∅],
// claiming the empty set is a kernel; it must yield no kernels at all.
func TestMinimalKernelsNoQuorums(t *testing.T) {
	sys := degenerateSystem(3, nil, [][]types.Set{nil, {types.NewSetOf(3, 1, 2)}, {types.NewSetOf(3, 1, 2)}})
	if ks := sys.MinimalKernels(0, 0); ks != nil {
		t.Fatalf("MinimalKernels on a quorum-less process = %v, want nil", ks)
	}
	// Processes that do have quorums are unaffected.
	if ks := sys.MinimalKernels(1, 0); len(ks) == 0 {
		t.Fatal("MinimalKernels vanished for a process with quorums")
	}
}

func TestKernelQuorumDuality(t *testing.T) {
	// Property: m contains a kernel for i ⟺ complement(m) contains no
	// quorum for i. (A kernel hits all quorums iff no quorum avoids m.)
	sys := Counterexample()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		m := types.NewSet(30)
		for i := 0; i < 30; i++ {
			if rng.Intn(2) == 0 {
				m.Add(types.ProcessID(i))
			}
		}
		p := types.ProcessID(rng.Intn(30))
		hasKernel := sys.HasKernelWithin(p, m)
		quorumInComplement := sys.HasQuorumWithin(p, m.Complement())
		if hasKernel == quorumInComplement {
			t.Fatalf("duality violated for %v at %v", m, p)
		}
	}
}

func TestFederatedSystemValid(t *testing.T) {
	sys, err := NewFederated(FederatedConfig{N: 12, TopTier: 7, TrustedPeers: 3, Tolerance: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Validate(); err != nil {
		t.Fatalf("federated system invalid: %v", err)
	}
	if sys.N() != 12 {
		t.Fatalf("N = %d", sys.N())
	}
	// A faulty set of 2 top-tier members is tolerated by everyone.
	f := types.NewSetOf(12, 0, 1)
	guild := sys.MaximalGuild(f)
	if guild.IsEmpty() {
		t.Error("guild empty under tolerated top-tier faults")
	}
}

func TestRandomSystemsValid(t *testing.T) {
	sym, err := RandomSymmetric(RandomSymmetricConfig{N: 8, NumSets: 4, MaxFault: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sym.Validate(); err != nil {
		t.Fatalf("random symmetric invalid: %v", err)
	}
	asym, err := RandomAsymmetric(RandomAsymmetricConfig{N: 8, NumSets: 3, MaxFault: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := asym.Validate(); err != nil {
		t.Fatalf("random asymmetric invalid: %v", err)
	}
}

func TestCombinations(t *testing.T) {
	var count int
	Combinations(5, 2, func(s types.Set) {
		if s.Count() != 2 {
			t.Errorf("combination %v has wrong size", s)
		}
		count++
	})
	if count != 10 {
		t.Fatalf("C(5,2) enumerated %d, want 10", count)
	}
	count = 0
	Combinations(3, 0, func(s types.Set) {
		if !s.IsEmpty() {
			t.Error("C(n,0) should yield empty set")
		}
		count++
	})
	if count != 1 {
		t.Fatalf("C(3,0) enumerated %d, want 1", count)
	}
	Combinations(3, 4, func(types.Set) { t.Error("C(3,4) should yield nothing") })
}

func TestRenderMatrixShape(t *testing.T) {
	sys := Counterexample()
	out := RenderMatrix(30, "Fail-prone system",
		func(p types.ProcessID) types.Set { return sys.Quorums(p)[0] },
		func(p types.ProcessID) types.Set { return sys.FailProneSets(p)[0] })
	if len(out) == 0 {
		t.Fatal("empty render")
	}
	// 30 rows + header rows.
	lines := 0
	for _, c := range out {
		if c == '\n' {
			lines++
		}
	}
	if lines < 31 {
		t.Fatalf("render has %d lines", lines)
	}
}

func TestDescribe(t *testing.T) {
	out := Counterexample().Describe()
	for _, want := range []string{"processes: 30", "c(Q)=6", "B3 condition: true", "valid quorum system: true", "5.00 waves"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q:\n%s", want, out)
		}
	}
	// An invalid system reports the violation.
	n := 4
	qa := types.NewSetOf(n, 0, 1)
	qb := types.NewSetOf(n, 2, 3)
	fp := [][]types.Set{{types.NewSet(n)}, {types.NewSet(n)}, {types.NewSet(n)}, {types.NewSet(n)}}
	bad := MustNew(n, fp, [][]types.Set{{qa}, {qb}, {qa}, {qb}})
	if !strings.Contains(bad.Describe(), "valid quorum system: false") {
		t.Error("Describe should flag invalid systems")
	}
}

func TestUNLSystem(t *testing.T) {
	sys, err := NewUNL(UNLConfig{N: 12, ListSize: 9, Deviation: 1, Tolerance: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sys.N() != 12 {
		t.Fatalf("N = %d", sys.N())
	}
	if err := sys.Validate(); err != nil {
		t.Fatalf("UNL system invalid: %v", err)
	}
	if !sys.SatisfiesB3() {
		t.Fatal("UNL system should satisfy B3 with small deviation")
	}
	// Trust is genuinely heterogeneous when deviations occurred: some
	// process's quorums differ from another's.
	hetero := false
	q0 := sys.Quorums(0)
	for i := 1; i < 12; i++ {
		qi := sys.Quorums(types.ProcessID(i))
		if len(qi) != len(q0) || !qi[0].Equal(q0[0]) {
			hetero = true
			break
		}
	}
	if !hetero {
		t.Log("no deviation materialized for this seed (acceptable but unusual)")
	}
	// Two failures inside the recommended list are tolerated by all.
	f := types.NewSetOf(12, 0, 1)
	if g := sys.MaximalGuild(f); g.Count() < 8 {
		t.Fatalf("guild too small under tolerated UNL faults: %v", g)
	}
	// Parameter validation.
	if _, err := NewUNL(UNLConfig{N: 5, ListSize: 9, Tolerance: 1}); err == nil {
		t.Error("oversized list should fail")
	}
	if _, err := NewUNL(UNLConfig{N: 12, ListSize: 6, Deviation: 0, Tolerance: 2}); err == nil {
		t.Error("infeasible tolerance should fail")
	}
}

func TestUNLConsensusEndToEnd(t *testing.T) {
	// The UNL system drives the full consensus stack.
	sys, err := NewUNL(UNLConfig{N: 10, ListSize: 8, Deviation: 1, Tolerance: 2, Seed: 6})
	if err != nil {
		t.Skip("no valid UNL system for these parameters")
	}
	if sys.Validate() != nil {
		t.Skip("generated UNL system invalid for this seed")
	}
}
