package quorum

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/types"
)

// This file is the analysis layer: validity (Definition 2.1), the B3
// condition (Definition 2.3), kernels, and system summaries. All sweeps
// run word-parallel over the compiled Evaluator's flattened quorum and
// fail-prone words with popcount pruning; the straightforward nested-set
// loops are retained as *Naive reference implementations for the
// differential test suite and the benchmark comparison.

// Validate checks the two defining properties of an asymmetric Byzantine
// quorum system (Definition 2.1):
//
//   - Consistency: ∀i,j, ∀Q_i∈Q_i, ∀Q_j∈Q_j, ∀F ∈ F_i* ∩ F_j*:
//     Q_i ∩ Q_j ⊄ F. Equivalently (used here): the intersection I of any
//     two quorums must not lie inside both a fail-prone set of i and one
//     of j.
//   - Availability: ∀i, ∀F∈F_i: ∃Q∈Q_i with Q ∩ F = ∅.
//
// It returns nil if both hold, and a descriptive error naming the first
// violation otherwise.
//
// The sweep runs on the compiled evaluator: intersections are word ANDs
// into a reused scratch buffer, and a quorum pair is skipped outright when
// its intersection popcount exceeds every fail-prone bound of either
// owner. Processes with an empty fail-prone collection tolerate nothing
// and cannot participate in a consistency violation, so they are skipped.
func (s *System) Validate() error {
	e := s.Evaluator()
	// Availability: some quorum of i must be disjoint from each F ∈ F_i.
	for i := 0; i < s.n; i++ {
		for k := e.fStart[i]; k < e.fStart[i+1]; k++ {
			fw := e.fwords(k)
			ok := false
			for q := e.qStart[i]; q < e.qStart[i+1]; q++ {
				if !e.intersects(q, fw) {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("quorum: availability violated for %v: no quorum disjoint from fail-prone set %v",
					types.ProcessID(i), s.failProne[i][e.fOrig[k]])
			}
		}
	}
	// Consistency. I = Q_i ∩ Q_j violates iff I ⊆ some F∈F_i and
	// I ⊆ some F'∈F_j (then I ∈ F_i* ∩ F_j*).
	scratch := make([]uint64, e.words)
	for i := 0; i < s.n; i++ {
		if e.fStart[i+1] == e.fStart[i] {
			continue // F_i = ∅: i tolerates nothing
		}
		for j := i; j < s.n; j++ {
			if e.fStart[j+1] == e.fStart[j] {
				continue
			}
			bound := e.fMax[i]
			if e.fMax[j] < bound {
				bound = e.fMax[j]
			}
			for qi := e.qStart[i]; qi < e.qStart[i+1]; qi++ {
				qiw := e.qwords(qi)
				for qj := e.qStart[j]; qj < e.qStart[j+1]; qj++ {
					qjw := e.qwords(qj)
					c := int32(0)
					for w := range scratch {
						x := qiw[w] & qjw[w]
						scratch[w] = x
						c += int32(bits.OnesCount64(x))
					}
					if c > bound {
						continue // intersection exceeds every fail-prone bound
					}
					if e.toleratesWords(types.ProcessID(i), scratch, c) && e.toleratesWords(types.ProcessID(j), scratch, c) {
						a := s.quorums[i][qi-e.qStart[i]]
						b := s.quorums[j][qj-e.qStart[j]]
						return fmt.Errorf("quorum: consistency violated for %v,%v: quorums %v and %v intersect in %v which both deem fail-prone",
							types.ProcessID(i), types.ProcessID(j), a, b, a.Intersect(b))
					}
				}
			}
		}
	}
	return nil
}

// ValidateNaive is the direct nested-set-loop reference implementation of
// Validate, retained as the oracle for the differential tests and the
// BenchmarkValidate / BenchmarkValidateNaive comparison. Verdicts always
// agree with Validate; witness messages may name a different (equally
// real) violation because the compiled sweep orders fail-prone sets by
// cardinality.
func (s *System) ValidateNaive() error {
	// Availability.
	for i := 0; i < s.n; i++ {
		p := types.ProcessID(i)
		for _, f := range s.failProne[i] {
			ok := false
			for _, q := range s.quorums[i] {
				if !q.Intersects(f) {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("quorum: availability violated for %v: no quorum disjoint from fail-prone set %v", p, f)
			}
		}
	}
	// Consistency.
	for i := 0; i < s.n; i++ {
		pi := types.ProcessID(i)
		for j := i; j < s.n; j++ {
			pj := types.ProcessID(j)
			for _, qi := range s.quorums[i] {
				for _, qj := range s.quorums[j] {
					inter := qi.Intersect(qj)
					if s.ToleratesNaive(pi, inter) && s.ToleratesNaive(pj, inter) {
						return fmt.Errorf("quorum: consistency violated for %v,%v: quorums %v and %v intersect in %v which both deem fail-prone",
							pi, pj, qi, qj, inter)
					}
				}
			}
		}
	}
	return nil
}

// SatisfiesB3 checks the B3 condition (Definition 2.3) on the fail-prone
// system: ∀i,j, ∀F_i∈F_i, ∀F_j∈F_j, ∀F_ij ∈ F_i* ∩ F_j*:
// P ⊄ F_i ∪ F_j ∪ F_ij.
//
// The quantifier over the common downward closure reduces to a membership
// test: P ⊆ F_i ∪ F_j ∪ F_ij for some common F_ij iff the residue
// R = P \ (F_i ∪ F_j) itself lies in F_i* ∩ F_j*.
func (s *System) SatisfiesB3() bool {
	_, _, _, _, found := s.b3Violation()
	return !found
}

// b3Violation locates the first violating tuple of the B3 condition, or
// reports found=false when the condition holds. The sweep is the compiled
// counterpart of SatisfiesB3Naive: the residue R = P \ (F_a ∪ F_b) is
// computed as word operations into a scratch buffer, pairs are pruned by
// the popcount lower bound |R| ≥ n − |F_a| − |F_b| (fail-prone sets are
// sorted by descending size, so the inner loop breaks at the first pair
// whose residue is provably too large for either owner's bound), and the
// condition's symmetry in (a, b) halves the process pairs.
func (s *System) b3Violation() (i, j types.ProcessID, fi, fj types.Set, found bool) {
	e := s.Evaluator()
	scratch := make([]uint64, e.words)
	for a := 0; a < s.n; a++ {
		if e.fStart[a+1] == e.fStart[a] {
			continue // F_a = ∅: a tolerates no residue
		}
		for b := a; b < s.n; b++ {
			if e.fStart[b+1] == e.fStart[b] {
				continue
			}
			bound := e.fMax[a]
			if e.fMax[b] < bound {
				bound = e.fMax[b]
			}
			for ka := e.fStart[a]; ka < e.fStart[a+1]; ka++ {
				faw := e.fwords(ka)
				for kb := e.fStart[b]; kb < e.fStart[b+1]; kb++ {
					if int32(s.n)-e.fSize[ka]-e.fSize[kb] > bound {
						break // residues only grow as |F_b| shrinks
					}
					fbw := e.fwords(kb)
					c := int32(0)
					for w := range scratch {
						x := e.fullWords[w] &^ (faw[w] | fbw[w])
						scratch[w] = x
						c += int32(bits.OnesCount64(x))
					}
					if c > bound {
						continue
					}
					if e.toleratesWords(types.ProcessID(a), scratch, c) && e.toleratesWords(types.ProcessID(b), scratch, c) {
						return types.ProcessID(a), types.ProcessID(b),
							s.failProne[a][e.fOrig[ka]], s.failProne[b][e.fOrig[kb]], true
					}
				}
			}
		}
	}
	return 0, 0, types.Set{}, types.Set{}, false
}

// SatisfiesB3Naive is the direct nested-set-loop reference implementation
// of SatisfiesB3, retained as the oracle for the differential tests and
// the BenchmarkSatisfiesB3 / BenchmarkSatisfiesB3Naive comparison.
func (s *System) SatisfiesB3Naive() bool {
	full := types.FullSet(s.n)
	for i := 0; i < s.n; i++ {
		for j := 0; j < s.n; j++ {
			for _, fi := range s.failProne[i] {
				for _, fj := range s.failProne[j] {
					r := full.Subtract(fi.Union(fj))
					if s.ToleratesNaive(types.ProcessID(i), r) && s.ToleratesNaive(types.ProcessID(j), r) {
						return false
					}
				}
			}
		}
	}
	return true
}

// Analysis is the batch result of AnalyzeSystem: every per-system quantity
// the search paths need, computed over a single compiled evaluator.
type Analysis struct {
	N              int
	TotalQuorums   int
	SmallestQuorum int    // c(Q); 0 when the system has no quorums
	Valid          bool   // Definition 2.1 (consistency + availability)
	Err            error  // the Validate violation witness when !Valid
	B3             bool   // Definition 2.3
	B3Witness      string // human-readable witness when !B3
}

// AnalyzeSystem runs Validate, SatisfiesB3 and the quorum-size summary
// over a single compiled evaluator: one compilation per system, one
// consistency sweep and one B3 sweep. Search loops over many candidate
// systems (cmd/quorumtool -search, harness.ExpSmallSystems) call this
// instead of stacking the per-property methods.
func AnalyzeSystem(s *System) Analysis {
	e := s.Evaluator()
	a := Analysis{
		N:              s.n,
		TotalQuorums:   int(e.qStart[s.n]),
		SmallestQuorum: e.minQ,
	}
	a.Err = s.Validate()
	a.Valid = a.Err == nil
	if i, j, fi, fj, found := s.b3Violation(); found {
		a.B3Witness = fmt.Sprintf("B3 violated for %v,%v: P ⊆ %v ∪ %v ∪ F for some common fail-prone F", i, j, fi, fj)
	} else {
		a.B3 = true
	}
	return a
}

// MinimalKernels enumerates the minimal kernels of process i: the minimal
// sets that intersect every quorum in Q_i. The search is exponential in the
// worst case; limit caps the number of kernels returned (0 means no cap).
// Intended for tooling and tests on small systems.
//
// A process with no quorums has no meaningful kernels (the empty set would
// vacuously intersect everything), so the result is nil rather than [∅].
func (s *System) MinimalKernels(i types.ProcessID, limit int) []types.Set {
	quorums := s.quorums[i]
	if len(quorums) == 0 {
		return nil
	}
	var out []types.Set
	seen := map[string]bool{}

	var rec func(depth int, hit types.Set)
	rec = func(depth int, hit types.Set) {
		if limit > 0 && len(out) >= limit {
			return
		}
		// Find first quorum not yet hit.
		next := -1
		for k := depth; k < len(quorums); k++ {
			if !quorums[k].Intersects(hit) {
				next = k
				break
			}
		}
		if next == -1 {
			// hit covers everything; minimalize by dropping redundant members.
			m := minimalizeKernel(quorums, hit)
			key := m.Key()
			if !seen[key] {
				seen[key] = true
				out = append(out, m)
			}
			return
		}
		for _, p := range quorums[next].Members() {
			h2 := hit.Clone()
			h2.Add(p)
			rec(next+1, h2)
		}
	}
	rec(0, types.NewSet(s.n))
	return out
}

// minimalizeKernel removes members of hit that are not needed to intersect
// every quorum.
func minimalizeKernel(quorums []types.Set, hit types.Set) types.Set {
	m := hit.Clone()
	for _, p := range hit.Members() {
		m.Remove(p)
		ok := true
		for _, q := range quorums {
			if !q.Intersects(m) {
				ok = false
				break
			}
		}
		if !ok {
			m.Add(p)
		}
	}
	return m
}

// IsKernel reports whether k intersects every quorum of process i (k is a
// kernel for i, not necessarily minimal).
func (s *System) IsKernel(i types.ProcessID, k types.Set) bool {
	return s.HasKernelWithin(i, k)
}

// RenderMatrix renders a Figure 1 style matrix: one row per process (from
// p_n at the top down to p_1, matching the paper's layout), one column per
// process, with 'Q' marking members of rowFn(p) and 'F' marking members of
// altFn(p) (either may be nil). Used to regenerate Figures 1–4.
func RenderMatrix(n int, header string, rowFn, altFn func(types.ProcessID) types.Set) string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteString("\n     ")
	for c := 1; c <= n; c++ {
		fmt.Fprintf(&b, "%3d", c)
	}
	b.WriteString("\n")
	for r := n - 1; r >= 0; r-- {
		p := types.ProcessID(r)
		fmt.Fprintf(&b, "%4d ", r+1)
		var q, f types.Set
		if rowFn != nil {
			q = rowFn(p)
		}
		if altFn != nil {
			f = altFn(p)
		}
		for c := 0; c < n; c++ {
			cell := "  ."
			cp := types.ProcessID(c)
			if rowFn != nil && q.Contains(cp) {
				cell = "  Q"
			}
			if altFn != nil && f.Contains(cp) {
				cell = "  F"
			}
			b.WriteString(cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Describe returns a human-readable summary of a system: sizes, the B3
// verdict, validity, and the Lemma 4.4 bound. Used by cmd/quorumtool and
// handy in tests. All quantities come from a single AnalyzeSystem pass.
func (s *System) Describe() string {
	a := AnalyzeSystem(s)
	var b strings.Builder
	fmt.Fprintf(&b, "processes: %d\n", s.n)
	if a.TotalQuorums == 0 {
		// Without the guard this used to print the garbage sentinel range
		// "sizes n+1..0" (and c(Q)=n+1) for an empty quorum collection.
		b.WriteString("quorums: 0 total, sizes -\n")
	} else {
		e := s.Evaluator()
		maxQ := 0
		for k := int32(0); k < int32(a.TotalQuorums); k++ {
			if c := int(e.qSize[k]); c > maxQ {
				maxQ = c
			}
		}
		fmt.Fprintf(&b, "quorums: %d total, sizes %d..%d, c(Q)=%d\n", a.TotalQuorums, a.SmallestQuorum, maxQ, a.SmallestQuorum)
	}
	fmt.Fprintf(&b, "B3 condition: %v\n", a.B3)
	if !a.Valid {
		fmt.Fprintf(&b, "valid quorum system: false (%v)\n", a.Err)
	} else {
		b.WriteString("valid quorum system: true\n")
	}
	if a.SmallestQuorum > 0 {
		fmt.Fprintf(&b, "Lemma 4.4 commit bound |P|/c(Q): %.2f waves\n",
			float64(s.n)/float64(a.SmallestQuorum))
	} else {
		b.WriteString("Lemma 4.4 commit bound |P|/c(Q): n/a (no quorums)\n")
	}
	return b.String()
}
