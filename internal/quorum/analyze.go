package quorum

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Validate checks the two defining properties of an asymmetric Byzantine
// quorum system (Definition 2.1):
//
//   - Consistency: ∀i,j, ∀Q_i∈Q_i, ∀Q_j∈Q_j, ∀F ∈ F_i* ∩ F_j*:
//     Q_i ∩ Q_j ⊄ F. Equivalently (used here): the intersection I of any
//     two quorums must not lie inside both a fail-prone set of i and one
//     of j.
//   - Availability: ∀i, ∀F∈F_i: ∃Q∈Q_i with Q ∩ F = ∅.
//
// It returns nil if both hold, and a descriptive error naming the first
// violation otherwise.
func (s *System) Validate() error {
	// Availability.
	for i := 0; i < s.n; i++ {
		p := types.ProcessID(i)
		for _, f := range s.failProne[i] {
			ok := false
			for _, q := range s.quorums[i] {
				if !q.Intersects(f) {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("quorum: availability violated for %v: no quorum disjoint from fail-prone set %v", p, f)
			}
		}
	}
	// Consistency. I = Q_i ∩ Q_j violates iff I ⊆ some F∈F_i and
	// I ⊆ some F'∈F_j (then I ∈ F_i* ∩ F_j*).
	for i := 0; i < s.n; i++ {
		pi := types.ProcessID(i)
		for j := i; j < s.n; j++ {
			pj := types.ProcessID(j)
			for _, qi := range s.quorums[i] {
				for _, qj := range s.quorums[j] {
					inter := qi.Intersect(qj)
					if s.Tolerates(pi, inter) && s.Tolerates(pj, inter) {
						return fmt.Errorf("quorum: consistency violated for %v,%v: quorums %v and %v intersect in %v which both deem fail-prone",
							pi, pj, qi, qj, inter)
					}
				}
			}
		}
	}
	return nil
}

// SatisfiesB3 checks the B3 condition (Definition 2.3) on the fail-prone
// system: ∀i,j, ∀F_i∈F_i, ∀F_j∈F_j, ∀F_ij ∈ F_i* ∩ F_j*:
// P ⊄ F_i ∪ F_j ∪ F_ij.
//
// The quantifier over the common downward closure reduces to a membership
// test: P ⊆ F_i ∪ F_j ∪ F_ij for some common F_ij iff the residue
// R = P \ (F_i ∪ F_j) itself lies in F_i* ∩ F_j*.
func (s *System) SatisfiesB3() bool {
	full := types.FullSet(s.n)
	for i := 0; i < s.n; i++ {
		for j := 0; j < s.n; j++ {
			for _, fi := range s.failProne[i] {
				for _, fj := range s.failProne[j] {
					r := full.Subtract(fi.Union(fj))
					if s.Tolerates(types.ProcessID(i), r) && s.Tolerates(types.ProcessID(j), r) {
						return false
					}
				}
			}
		}
	}
	return true
}

// MinimalKernels enumerates the minimal kernels of process i: the minimal
// sets that intersect every quorum in Q_i. The search is exponential in the
// worst case; limit caps the number of kernels returned (0 means no cap).
// Intended for tooling and tests on small systems.
func (s *System) MinimalKernels(i types.ProcessID, limit int) []types.Set {
	quorums := s.quorums[i]
	var out []types.Set
	seen := map[string]bool{}

	var rec func(depth int, hit types.Set)
	rec = func(depth int, hit types.Set) {
		if limit > 0 && len(out) >= limit {
			return
		}
		// Find first quorum not yet hit.
		next := -1
		for k := depth; k < len(quorums); k++ {
			if !quorums[k].Intersects(hit) {
				next = k
				break
			}
		}
		if next == -1 {
			// hit covers everything; minimalize by dropping redundant members.
			m := minimalizeKernel(quorums, hit)
			key := m.Key()
			if !seen[key] {
				seen[key] = true
				out = append(out, m)
			}
			return
		}
		for _, p := range quorums[next].Members() {
			h2 := hit.Clone()
			h2.Add(p)
			rec(next+1, h2)
		}
	}
	rec(0, types.NewSet(s.n))
	return out
}

// minimalizeKernel removes members of hit that are not needed to intersect
// every quorum.
func minimalizeKernel(quorums []types.Set, hit types.Set) types.Set {
	m := hit.Clone()
	for _, p := range hit.Members() {
		m.Remove(p)
		ok := true
		for _, q := range quorums {
			if !q.Intersects(m) {
				ok = false
				break
			}
		}
		if !ok {
			m.Add(p)
		}
	}
	return m
}

// IsKernel reports whether k intersects every quorum of process i (k is a
// kernel for i, not necessarily minimal).
func (s *System) IsKernel(i types.ProcessID, k types.Set) bool {
	return s.HasKernelWithin(i, k)
}

// RenderMatrix renders a Figure 1 style matrix: one row per process (from
// p_n at the top down to p_1, matching the paper's layout), one column per
// process, with 'Q' marking members of rowFn(p) and 'F' marking members of
// altFn(p) (either may be nil). Used to regenerate Figures 1–4.
func RenderMatrix(n int, header string, rowFn, altFn func(types.ProcessID) types.Set) string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteString("\n     ")
	for c := 1; c <= n; c++ {
		fmt.Fprintf(&b, "%3d", c)
	}
	b.WriteString("\n")
	for r := n - 1; r >= 0; r-- {
		p := types.ProcessID(r)
		fmt.Fprintf(&b, "%4d ", r+1)
		var q, f types.Set
		if rowFn != nil {
			q = rowFn(p)
		}
		if altFn != nil {
			f = altFn(p)
		}
		for c := 0; c < n; c++ {
			cell := "  ."
			cp := types.ProcessID(c)
			if rowFn != nil && q.Contains(cp) {
				cell = "  Q"
			}
			if altFn != nil && f.Contains(cp) {
				cell = "  F"
			}
			b.WriteString(cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Describe returns a human-readable summary of a system: sizes, the B3
// verdict, validity, and the Lemma 4.4 bound. Used by cmd/quorumtool and
// handy in tests.
func (s *System) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "processes: %d\n", s.n)
	minQ, maxQ, totalQ := s.n+1, 0, 0
	for i := 0; i < s.n; i++ {
		qs := s.quorums[i]
		totalQ += len(qs)
		for _, q := range qs {
			if c := q.Count(); c < minQ {
				minQ = c
			}
			if c := q.Count(); c > maxQ {
				maxQ = c
			}
		}
	}
	fmt.Fprintf(&b, "quorums: %d total, sizes %d..%d, c(Q)=%d\n", totalQ, minQ, maxQ, s.SmallestQuorumSize())
	fmt.Fprintf(&b, "B3 condition: %v\n", s.SatisfiesB3())
	if err := s.Validate(); err != nil {
		fmt.Fprintf(&b, "valid quorum system: false (%v)\n", err)
	} else {
		b.WriteString("valid quorum system: true\n")
	}
	fmt.Fprintf(&b, "Lemma 4.4 commit bound |P|/c(Q): %.2f waves\n",
		float64(s.n)/float64(s.SmallestQuorumSize()))
	return b.String()
}
