// The incremental quorum-predicate engine.
//
// Every protocol in this repository gates progress on the two trust
// predicates HasQuorumWithin(i, m) ("m contains one of i's quorums") and
// HasKernelWithin(i, m) ("m intersects every quorum of i"), and every
// protocol evaluates them against a tally set m that only ever GROWS — one
// process at a time, as messages are delivered. Re-scanning the quorum
// collection Q_i on each delivery makes the hot path
// O(messages × |Q_i| × words); this file reduces it to O(messages × words)
// with O(1)-amortized predicate answers:
//
//   - Evaluator is the compiled, immutable form of a System: all quorum
//     membership bitsets flattened into one contiguous []uint64, per-quorum
//     popcounts, and a member→quorums inverted index per process. One
//     Evaluator is built lazily per System (System.Evaluator) and shared by
//     every node of a run. One-shot queries (HasQuorumWithin on a set built
//     from scratch, HasAnyQuorumWithin in the DAG commit rule) run on the
//     flat arrays with a popcount pre-filter.
//
//   - Tracker is the incremental view for one (process, tally) pair. Feed
//     it Add(member) events as the tally grows; it maintains, per quorum of
//     the process, the residual count of members still missing, plus the
//     number of quorums the tally does not intersect yet. Each Add costs
//     O(words) for the membership bit plus O(#quorums containing the
//     member) index walks — amortized over a full run, O(total quorum
//     membership) — and both predicates then answer in O(1). Both
//     predicates are monotone (supersets preserve them), so a Tracker
//     latches: once HasQuorum/HasKernel reports true it stays true.
//
// Complexity bounds, with W = words per bitset, Q = |Q_i|, M = total
// membership of i's quorums (Σ|Q| over Q ∈ Q_i):
//
//	naive predicate on one tally of size m:   O(Q·W) per delivery
//	tracker over a whole run of n deliveries: O(n·W + M) total
//	one-shot compiled predicate:              O(Q·W), smaller constants,
//	                                          popcount pre-filter
//
// Threshold systems do not need any of this machinery: their predicates
// are cardinality comparisons, so NewTracker hands out a trivial counting
// tracker. Assumptions that are neither *System nor Threshold fall back to
// the narrow Assumption interface with monotone memoization (the predicate
// is re-evaluated only while still false).
//
// Besides the protocol predicates, the Evaluator also flattens the
// fail-prone system into contiguous popcount-ready words (sorted per
// process by descending cardinality). The analysis layer in analyze.go —
// Validate, SatisfiesB3, Tolerates, Wise, AnalyzeSystem — runs its
// subset/intersection sweeps over these arrays with popcount pruning
// instead of nested types.Set loops; see analyze.go for the algorithms.
package quorum

import (
	"math/bits"
	"sort"

	"repro/internal/types"
)

// wordBits mirrors the types.Set word width.
const wordBits = 64

// Evaluator is the compiled form of a System: flattened quorum membership
// words, per-quorum popcounts, and a member→quorums inverted index. It is
// immutable after construction and safe for concurrent use.
type Evaluator struct {
	n     int
	words int // words per process bitset

	// Quorum k (global index) occupies qWords[k*words:(k+1)*words].
	// Quorums of process i are the contiguous range qStart[i]..qStart[i+1].
	qWords []uint64
	qSize  []int32 // popcount per quorum
	qOwner []int32 // owning process per quorum
	qStart []int32 // len n+1
	minQ   int     // smallest quorum cardinality c(Q)

	// Per-process inverted index: the quorums of process i that contain
	// member p, as indices LOCAL to i (0..qStart[i+1]-qStart[i]), are
	// inv[invOff[i*n+p]:invOff[i*n+p+1]].
	invOff []int32 // len n*n+1
	inv    []int32

	// Global inverted index: ALL quorums (any owner) containing member p
	// are gInv[gInvOff[p]:gInvOff[p+1]], as global quorum indices. Used by
	// the MaximalGuild fixpoint.
	gInvOff []int32 // len n+1
	gInv    []int32

	// Fail-prone system, flattened like the quorums: fail-prone set k
	// (global index) occupies fWords[k*words:(k+1)*words], and the sets of
	// process i are the contiguous range fStart[i]..fStart[i+1], ordered by
	// DESCENDING popcount so a containment scan can stop at the first set
	// smaller than the probe. fOrig maps a compiled slot back to the index
	// in the System's original F_i (for violation witnesses) and fMax[i] is
	// the largest fail-prone cardinality of process i (0 when F_i = ∅).
	fWords []uint64
	fSize  []int32
	fStart []int32 // len n+1
	fOrig  []int32
	fMax   []int32 // len n

	// fullWords is the full process set P as words (for the B3 residue).
	fullWords []uint64
}

// Compile builds the Evaluator for a System. Cost is O(total quorum
// membership); callers normally use System.Evaluator, which compiles once
// and caches.
func Compile(s *System) *Evaluator {
	n := s.n
	words := (n + wordBits - 1) / wordBits
	e := &Evaluator{n: n, words: words, minQ: n + 1}

	total := 0
	for i := 0; i < n; i++ {
		total += len(s.quorums[i])
	}
	e.qWords = make([]uint64, total*words)
	e.qSize = make([]int32, total)
	e.qOwner = make([]int32, total)
	e.qStart = make([]int32, n+1)
	e.invOff = make([]int32, n*n+1)
	e.gInvOff = make([]int32, n+1)

	k := 0
	for i := 0; i < n; i++ {
		e.qStart[i] = int32(k)
		for _, q := range s.quorums[i] {
			copy(e.qWords[k*words:(k+1)*words], q.Words())
			c := q.Count()
			e.qSize[k] = int32(c)
			e.qOwner[k] = int32(i)
			if c < e.minQ {
				e.minQ = c
			}
			k++
		}
	}
	e.qStart[n] = int32(k)
	if total == 0 {
		e.minQ = 0 // no quorums at all: c(Q) has no meaningful value
	}

	// Fail-prone flattening, mirroring the quorum words above.
	totalF := 0
	for i := 0; i < n; i++ {
		totalF += len(s.failProne[i])
	}
	e.fWords = make([]uint64, totalF*words)
	e.fSize = make([]int32, totalF)
	e.fOrig = make([]int32, totalF)
	e.fStart = make([]int32, n+1)
	e.fMax = make([]int32, n)
	k = 0
	for i := 0; i < n; i++ {
		e.fStart[i] = int32(k)
		order := make([]int, len(s.failProne[i]))
		for x := range order {
			order[x] = x
		}
		sort.SliceStable(order, func(a, b int) bool {
			return s.failProne[i][order[a]].Count() > s.failProne[i][order[b]].Count()
		})
		for _, oi := range order {
			f := s.failProne[i][oi]
			copy(e.fWords[k*words:(k+1)*words], f.Words())
			c := int32(f.Count())
			e.fSize[k] = c
			e.fOrig[k] = int32(oi)
			if c > e.fMax[i] {
				e.fMax[i] = c
			}
			k++
		}
	}
	e.fStart[n] = int32(k)
	e.fullWords = types.FullSet(n).Words()

	// Count index sizes, then fill (two passes keep both indexes in single
	// contiguous allocations).
	for i := 0; i < n; i++ {
		for _, q := range s.quorums[i] {
			q.ForEach(func(p types.ProcessID) bool {
				e.invOff[i*n+int(p)+1]++
				e.gInvOff[int(p)+1]++
				return true
			})
		}
	}
	for x := 1; x <= n*n; x++ {
		e.invOff[x] += e.invOff[x-1]
	}
	for x := 1; x <= n; x++ {
		e.gInvOff[x] += e.gInvOff[x-1]
	}
	e.inv = make([]int32, e.invOff[n*n])
	e.gInv = make([]int32, e.gInvOff[n])
	fill := make([]int32, n*n)
	gFill := make([]int32, n)
	for i := 0; i < n; i++ {
		base := e.qStart[i]
		for local, q := range s.quorums[i] {
			local32, global := int32(local), base+int32(local)
			q.ForEach(func(p types.ProcessID) bool {
				slot := i*n + int(p)
				e.inv[e.invOff[slot]+fill[slot]] = local32
				fill[slot]++
				e.gInv[e.gInvOff[p]+gFill[p]] = global
				gFill[p]++
				return true
			})
		}
	}
	return e
}

// N returns the number of processes.
func (e *Evaluator) N() int { return e.n }

// SmallestQuorumSize returns the precomputed c(Q), or 0 when the system
// has no quorums at all.
func (e *Evaluator) SmallestQuorumSize() int { return e.minQ }

// qwords returns the membership words of global quorum k.
func (e *Evaluator) qwords(k int32) []uint64 {
	return e.qWords[int(k)*e.words : (int(k)+1)*e.words]
}

// fwords returns the membership words of compiled fail-prone set k.
func (e *Evaluator) fwords(k int32) []uint64 {
	return e.fWords[int(k)*e.words : (int(k)+1)*e.words]
}

// wordsSubset reports a ⊆ b for equal-length word slices.
func wordsSubset(a, b []uint64) bool {
	for j, w := range a {
		if w&^b[j] != 0 {
			return false
		}
	}
	return true
}

// wordsIntersect reports a ∩ b ≠ ∅ for equal-length word slices.
func wordsIntersect(a, b []uint64) bool {
	for j, w := range a {
		if w&b[j] != 0 {
			return true
		}
	}
	return false
}

// toleratesWords reports whether the set with backing words mw and
// popcount mc lies in F_i* (is contained in one of i's fail-prone sets).
// Compiled fail-prone sets are sorted by descending cardinality, so the
// scan stops at the first set too small to contain the probe.
func (e *Evaluator) toleratesWords(i types.ProcessID, mw []uint64, mc int32) bool {
	for k := e.fStart[i]; k < e.fStart[i+1]; k++ {
		if e.fSize[k] < mc {
			return false
		}
		if wordsSubset(mw, e.fwords(k)) {
			return true
		}
	}
	return false
}

// Tolerates is the compiled form of System.Tolerates: f ∈ F_i*.
func (e *Evaluator) Tolerates(i types.ProcessID, f types.Set) bool {
	fw := f.Words()
	return e.toleratesWords(i, fw, int32(popcount(fw)))
}

// numQuorums returns |Q_i|.
func (e *Evaluator) numQuorums(i types.ProcessID) int {
	return int(e.qStart[i+1] - e.qStart[i])
}

// subset reports whether global quorum k is contained in the member words
// mw (which must have the evaluator's word length).
func (e *Evaluator) subset(k int32, mw []uint64) bool {
	return wordsSubset(e.qwords(k), mw)
}

// intersects reports whether global quorum k intersects the member words.
func (e *Evaluator) intersects(k int32, mw []uint64) bool {
	return wordsIntersect(e.qwords(k), mw)
}

func popcount(ws []uint64) int {
	c := 0
	for _, w := range ws {
		c += bits.OnesCount64(w)
	}
	return c
}

// HasQuorumWithin is the one-shot compiled form of the quorum predicate.
func (e *Evaluator) HasQuorumWithin(i types.ProcessID, m types.Set) bool {
	mw := m.Words()
	start, end := e.qStart[i], e.qStart[i+1]
	if end-start <= 2 {
		// The popcount pre-filter costs more than it saves for one or two
		// subset checks.
		for k := start; k < end; k++ {
			if e.subset(k, mw) {
				return true
			}
		}
		return false
	}
	mc := int32(popcount(mw))
	for k := start; k < end; k++ {
		if e.qSize[k] <= mc && e.subset(k, mw) {
			return true
		}
	}
	return false
}

// HasKernelWithin is the one-shot compiled form of the kernel predicate.
func (e *Evaluator) HasKernelWithin(i types.ProcessID, m types.Set) bool {
	mw := m.Words()
	for k := e.qStart[i]; k < e.qStart[i+1]; k++ {
		if !e.intersects(k, mw) {
			return false
		}
	}
	return true
}

// HasAnyQuorumWithin scans every quorum of every process with the popcount
// pre-filter — the "∃Q ∈ Q_j for some j" test of the commit rule and
// vertex validation.
func (e *Evaluator) HasAnyQuorumWithin(m types.Set) bool {
	mw := m.Words()
	mc := int32(popcount(mw))
	if mc < int32(e.minQ) {
		return false
	}
	for k := int32(0); k < e.qStart[e.n]; k++ {
		if e.qSize[k] <= mc && e.subset(k, mw) {
			return true
		}
	}
	return false
}

// trackerMode selects a Tracker's update rule.
type trackerMode uint8

const (
	modeCompiled  trackerMode = iota // incremental residual counts over an Evaluator
	modeThreshold                    // pure cardinality counting
	modeFallback                     // narrow Assumption interface, memoized
)

// Tracker is the incremental predicate view for one (process, tally) pair.
// Create one with NewTracker when the tally set is created, feed it every
// new member with Add, and read the two predicates in O(1). Trackers are
// monotone: once a predicate reports true it stays true (quorum containment
// and kernel intersection are preserved by supersets).
//
// A Tracker owns its membership set; Set exposes it read-only, so protocol
// state that previously stored a types.Set tally can store just the
// Tracker.
type Tracker struct {
	mode    trackerMode
	members types.Set
	count   int

	hasQuorum bool
	hasKernel bool

	// modeCompiled
	ev      *Evaluator
	i       types.ProcessID
	base    int32   // first global quorum index of process i
	missing []int32 // per local quorum: members not yet in the tally
	unhit   int     // local quorums the tally does not intersect yet

	// modeThreshold
	quorumSize, kernelSize int

	// modeFallback
	fallback Assumption
}

// NewTracker creates the incremental tracker of process i's predicates
// over an initially empty tally. Explicit systems get the compiled
// engine, Threshold gets the trivial counting tracker, and any other
// Assumption implementation falls back to memoized calls through the
// narrow interface.
func NewTracker(a Assumption, i types.ProcessID) *Tracker {
	t := &Tracker{members: types.NewSet(a.N()), i: i}
	switch s := a.(type) {
	case *System:
		e := s.Evaluator()
		t.mode = modeCompiled
		t.ev = e
		t.base = e.qStart[i]
		nq := e.numQuorums(i)
		t.missing = make([]int32, nq)
		copy(t.missing, e.qSize[t.base:t.base+int32(nq)])
		t.unhit = nq
	case Threshold:
		t.mode = modeThreshold
		t.quorumSize = s.QuorumSize()
		t.kernelSize = s.KernelSize()
	default:
		t.mode = modeFallback
		t.fallback = a
	}
	return t
}

// Add inserts p into the tally and updates both predicates. It reports
// whether p was new; duplicate adds are O(1) no-ops.
func (t *Tracker) Add(p types.ProcessID) bool {
	if t.members.Contains(p) {
		return false
	}
	t.members.Add(p)
	t.count++
	switch t.mode {
	case modeCompiled:
		for _, local := range t.ev.quorumsOf(t.i, p) {
			rem := t.missing[local] - 1
			t.missing[local] = rem
			if rem+1 == t.ev.qSize[t.base+local] {
				t.unhit-- // first member of this quorum seen
			}
			if rem == 0 {
				t.hasQuorum = true
			}
		}
		t.hasKernel = t.unhit == 0
	case modeThreshold:
		t.hasQuorum = t.count >= t.quorumSize
		t.hasKernel = t.count >= t.kernelSize
	case modeFallback:
		// Monotone memoization: only re-ask for predicates still false.
		if !t.hasQuorum {
			t.hasQuorum = t.fallback.HasQuorumWithin(t.i, t.members)
		}
		if !t.hasKernel {
			t.hasKernel = t.fallback.HasKernelWithin(t.i, t.members)
		}
	}
	return true
}

// quorumsOf returns the local indices of i's quorums containing p.
func (e *Evaluator) quorumsOf(i, p types.ProcessID) []int32 {
	slot := int(i)*e.n + int(p)
	return e.inv[e.invOff[slot]:e.invOff[slot+1]]
}

// AddSet bulk-adds every member of s.
func (t *Tracker) AddSet(s types.Set) {
	s.ForEach(func(p types.ProcessID) bool {
		t.Add(p)
		return true
	})
}

// HasQuorum reports whether the tally contains one of the process's
// quorums. O(1).
func (t *Tracker) HasQuorum() bool { return t.hasQuorum }

// HasKernel reports whether the tally intersects every quorum of the
// process (contains a kernel). O(1).
func (t *Tracker) HasKernel() bool { return t.hasKernel }

// Count returns the tally's cardinality.
func (t *Tracker) Count() int { return t.count }

// Contains reports tally membership.
func (t *Tracker) Contains(p types.ProcessID) bool { return t.members.Contains(p) }

// Set returns the accumulated tally. The returned set is the tracker's own
// backing storage: callers must treat it as read-only (Clone to mutate).
func (t *Tracker) Set() types.Set { return t.members }

// Evaluator returns the compiled engine for the System, building it on
// first use. The compiled form is cached and shared; concurrent callers
// are safe.
func (s *System) Evaluator() *Evaluator {
	s.compileOnce.Do(func() { s.compiled = Compile(s) })
	return s.compiled
}
