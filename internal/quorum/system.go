// Package quorum implements the trust structures of the paper: symmetric and
// asymmetric fail-prone systems, Byzantine quorum systems, kernels, the B3
// existence condition, and guild computation (paper §2.2–2.3; Alpos et al.,
// "Asymmetric distributed trust").
//
// Protocol code depends only on the narrow Assumption interface; explicit
// systems (System) additionally support analysis: validation, guild and
// kernel computation, and rendering.
//
// Predicate evaluation is served by the incremental engine in engine.go:
// explicit systems compile lazily into an Evaluator (flattened quorum
// words, popcounts, inverted indexes), and protocol tallies hold Tracker
// values that answer HasQuorum/HasKernel in O(1) after an O(words)
// Add(member) update instead of re-scanning Q_i on every delivery. See the
// engine.go file comment for the design and complexity bounds.
//
// The analysis layer (analyze.go) runs on the same compiled form: the
// evaluator additionally flattens the fail-prone system into contiguous
// popcount-ready words sorted by descending cardinality, and Validate,
// SatisfiesB3, Tolerates and Wise execute as word-parallel subset and
// intersection sweeps with popcount pruning. Search loops over many
// candidate systems use the batch AnalyzeSystem API, which computes
// validity, B3, c(Q) and a violation witness in one pass per system. The
// straightforward nested-set loops are retained as *Naive reference
// implementations for differential testing and benchmarking.
package quorum

import (
	"fmt"
	"sync"

	"repro/internal/types"
)

// Assumption is the minimal interface protocols need from a trust structure.
//
// HasQuorumWithin(i, m) reports whether m contains a quorum for process i
// (∃Q ∈ Q_i : Q ⊆ m) — the "received messages from one of its quorums"
// trigger used throughout the paper's algorithms.
//
// HasKernelWithin(i, m) reports whether m contains a kernel for process i,
// which holds exactly when m intersects every quorum of i. This is the
// Bracha-style amplification trigger (paper Algorithm 3 line 55).
type Assumption interface {
	// N returns the number of processes in the system.
	N() int
	// HasQuorumWithin reports whether m contains a quorum for process i.
	HasQuorumWithin(i types.ProcessID, m types.Set) bool
	// HasKernelWithin reports whether m contains a kernel for process i.
	HasKernelWithin(i types.ProcessID, m types.Set) bool
}

// System is an explicit asymmetric trust structure: a fail-prone collection
// F_i and a quorum collection Q_i per process. Symmetric (including
// threshold) systems are the special case where all processes share the
// same collections.
type System struct {
	n         int
	failProne [][]types.Set // failProne[i] = F_i
	quorums   [][]types.Set // quorums[i] = Q_i

	// compiled is the lazily-built predicate engine (see engine.go); it is
	// shared by every node of a run, so the build is guarded by a Once.
	compileOnce sync.Once
	compiled    *Evaluator
}

var _ Assumption = (*System)(nil)

// New builds a System from per-process fail-prone and quorum collections.
// Both slices must have length n and every member set must be over a
// universe of n processes. New copies the top-level slices but shares the
// (immutable by convention) member sets.
func New(n int, failProne, quorums [][]types.Set) (*System, error) {
	if len(failProne) != n || len(quorums) != n {
		return nil, fmt.Errorf("quorum: need %d collections, got %d fail-prone and %d quorum", n, len(failProne), len(quorums))
	}
	fp := make([][]types.Set, n)
	qs := make([][]types.Set, n)
	for i := 0; i < n; i++ {
		for _, f := range failProne[i] {
			if f.UniverseSize() != n {
				return nil, fmt.Errorf("quorum: fail-prone set for p%d has universe %d, want %d", i+1, f.UniverseSize(), n)
			}
		}
		for _, q := range quorums[i] {
			if q.UniverseSize() != n {
				return nil, fmt.Errorf("quorum: quorum for p%d has universe %d, want %d", i+1, q.UniverseSize(), n)
			}
			if q.IsEmpty() {
				return nil, fmt.Errorf("quorum: empty quorum for p%d", i+1)
			}
		}
		if len(quorums[i]) == 0 {
			return nil, fmt.Errorf("quorum: no quorums for p%d", i+1)
		}
		fp[i] = append([]types.Set(nil), failProne[i]...)
		qs[i] = append([]types.Set(nil), quorums[i]...)
	}
	return &System{n: n, failProne: fp, quorums: qs}, nil
}

// MustNew is New but panics on error; for package-internal constructors and
// tests with known-good inputs.
func MustNew(n int, failProne, quorums [][]types.Set) *System {
	s, err := New(n, failProne, quorums)
	if err != nil {
		panic(err)
	}
	return s
}

// N returns the number of processes.
func (s *System) N() int { return s.n }

// FailProneSets returns F_i. The returned slice must not be modified.
func (s *System) FailProneSets(i types.ProcessID) []types.Set { return s.failProne[i] }

// Quorums returns Q_i. The returned slice must not be modified.
func (s *System) Quorums(i types.ProcessID) []types.Set { return s.quorums[i] }

// HasQuorumWithin reports whether m contains some quorum of process i.
// One-shot queries go through the compiled evaluator; growing tallies
// should hold a Tracker instead (see engine.go).
func (s *System) HasQuorumWithin(i types.ProcessID, m types.Set) bool {
	if m.UniverseSize() != s.n {
		panic(fmt.Sprintf("quorum: universe mismatch %d vs %d", m.UniverseSize(), s.n))
	}
	return s.Evaluator().HasQuorumWithin(i, m)
}

// HasKernelWithin reports whether m contains a kernel for process i, i.e.
// whether m intersects every quorum of i.
func (s *System) HasKernelWithin(i types.ProcessID, m types.Set) bool {
	if m.UniverseSize() != s.n {
		panic(fmt.Sprintf("quorum: universe mismatch %d vs %d", m.UniverseSize(), s.n))
	}
	return s.Evaluator().HasKernelWithin(i, m)
}

// Tolerates reports whether F ∈ F_i*, i.e. process i correctly foresees the
// failure of every process in f (f is contained in one of i's fail-prone
// sets). The check runs on the evaluator's flattened fail-prone words:
// sets are ordered by descending cardinality, so the scan stops at the
// first set smaller than f.
func (s *System) Tolerates(i types.ProcessID, f types.Set) bool {
	if f.UniverseSize() != s.n {
		panic(fmt.Sprintf("quorum: universe mismatch %d vs %d", f.UniverseSize(), s.n))
	}
	return s.Evaluator().Tolerates(i, f)
}

// ToleratesNaive is the direct set-loop reference implementation of
// Tolerates, retained as the oracle for the differential tests.
func (s *System) ToleratesNaive(i types.ProcessID, f types.Set) bool {
	for _, fp := range s.failProne[i] {
		if f.IsSubsetOf(fp) {
			return true
		}
	}
	return false
}

// SmallestQuorumSize returns c(Q) = min over all processes and quorums of
// |Q|, the constant in the paper's Lemma 4.4 commit-latency bound. The
// value comes from the compiled evaluator's precomputed popcounts rather
// than recounting bits. A (degenerate) system without any quorums reports
// 0.
func (s *System) SmallestQuorumSize() int {
	return s.Evaluator().SmallestQuorumSize()
}

// Wise returns the set of wise processes for an actual faulty set f: the
// correct processes that foresee f (f ∈ F_i*). Faulty processes are never
// wise. The containment scans run on the evaluator's flattened fail-prone
// words with f's popcount computed once.
func (s *System) Wise(f types.Set) types.Set {
	if f.UniverseSize() != s.n {
		panic(fmt.Sprintf("quorum: universe mismatch %d vs %d", f.UniverseSize(), s.n))
	}
	e := s.Evaluator()
	fw := f.Words()
	fc := int32(popcount(fw))
	wise := types.NewSet(s.n)
	for i := 0; i < s.n; i++ {
		p := types.ProcessID(i)
		if f.Contains(p) {
			continue
		}
		if e.toleratesWords(p, fw, fc) {
			wise.Add(p)
		}
	}
	return wise
}

// Naive returns the set of naive processes for faulty set f: correct but
// not wise.
func (s *System) Naive(f types.Set) types.Set {
	return f.Complement().Subtract(s.Wise(f))
}

// MaximalGuild returns the maximal guild for faulty set f: the largest set
// G of wise processes such that every member has a quorum fully inside G
// (Definition 2.2). The maximal guild is unique (the union of two guilds is
// a guild), so the greatest-fixpoint computation is exact.
//
// The fixpoint runs as a worklist over the evaluator's residual state
// instead of re-testing HasQuorumWithin per member per sweep: each quorum
// carries a "still fully inside G" flag, each process the count of such
// quorums, and removing a process invalidates exactly the quorums the
// global inverted index names. Total cost is O(total quorum membership)
// instead of O(sweeps × Σ|Q_i| × words). The result may be empty.
func (s *System) MaximalGuild(f types.Set) types.Set {
	e := s.Evaluator()
	g := s.Wise(f)
	gw := g.Words()

	total := int(e.qStart[e.n])
	full := make([]bool, total)   // quorum still entirely within g
	fullCnt := make([]int32, e.n) // per process: quorums within g
	var queue []types.ProcessID   // members of g that lost all quorums
	for i := 0; i < e.n; i++ {
		for k := e.qStart[i]; k < e.qStart[i+1]; k++ {
			if e.subset(k, gw) {
				full[k] = true
				fullCnt[i]++
			}
		}
	}
	g.ForEach(func(p types.ProcessID) bool {
		if fullCnt[p] == 0 {
			queue = append(queue, p)
		}
		return true
	})
	for len(queue) > 0 {
		x := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if !g.Contains(x) {
			continue
		}
		g.Remove(x)
		// Every quorum containing x (any owner) is no longer inside g.
		for _, k := range e.gInv[e.gInvOff[x]:e.gInvOff[x+1]] {
			if !full[k] {
				continue
			}
			full[k] = false
			owner := e.qOwner[k]
			fullCnt[owner]--
			if fullCnt[owner] == 0 && g.Contains(types.ProcessID(owner)) {
				queue = append(queue, types.ProcessID(owner))
			}
		}
	}
	return g
}

// Threshold is the classic symmetric threshold assumption with n processes
// of which at most f may fail: quorums are all sets of at least n-f
// processes and kernels are all sets of at least f+1 processes. It
// implements Assumption without materializing the (combinatorially many)
// explicit sets, so it scales to any n.
type Threshold struct {
	n, f int
}

var _ Assumption = Threshold{}

// NewThreshold returns the threshold assumption for n processes tolerating
// f faults. It panics unless n > 3f (the Q3/B3 feasibility condition).
func NewThreshold(n, f int) Threshold {
	if n <= 3*f {
		panic(fmt.Sprintf("quorum: threshold system needs n > 3f, got n=%d f=%d", n, f))
	}
	return Threshold{n: n, f: f}
}

// N returns the number of processes.
func (t Threshold) N() int { return t.n }

// F returns the failure threshold.
func (t Threshold) F() int { return t.f }

// QuorumSize returns n-f, the threshold quorum cardinality.
func (t Threshold) QuorumSize() int { return t.n - t.f }

// KernelSize returns f+1, the threshold kernel cardinality.
func (t Threshold) KernelSize() int { return t.f + 1 }

// HasQuorumWithin reports |m| ≥ n-f.
func (t Threshold) HasQuorumWithin(_ types.ProcessID, m types.Set) bool {
	return m.Count() >= t.n-t.f
}

// HasKernelWithin reports |m| ≥ f+1.
func (t Threshold) HasKernelWithin(_ types.ProcessID, m types.Set) bool {
	return m.Count() >= t.f+1
}

// SmallestQuorumSize returns n-f, mirroring System.SmallestQuorumSize.
func (t Threshold) SmallestQuorumSize() int { return t.n - t.f }

// HasAnyQuorumWithin reports whether m contains a quorum for at least one
// process — the "∃Q ∈ Q_j for some Q_j ∈ Q" test of the paper's commit
// rule and vertex validation (Algorithm 6 lines 140 and 148). For the
// threshold assumption every process's quorums coincide, so the first
// process's check suffices.
func HasAnyQuorumWithin(a Assumption, m types.Set) bool {
	switch t := a.(type) {
	case Threshold:
		return a.HasQuorumWithin(0, m)
	case *System:
		// One flat scan over all quorums with the popcount pre-filter,
		// instead of n per-process predicate calls.
		return t.Evaluator().HasAnyQuorumWithin(m)
	}
	for i := 0; i < a.N(); i++ {
		if a.HasQuorumWithin(types.ProcessID(i), m) {
			return true
		}
	}
	return false
}

// QuorumSizer is implemented by assumptions that know their smallest quorum
// cardinality c(Q) (used by the Lemma 4.4 experiments).
type QuorumSizer interface {
	SmallestQuorumSize() int
}

var (
	_ QuorumSizer = (*System)(nil)
	_ QuorumSizer = Threshold{}
)
