package service

import (
	"sort"
	"strings"
)

// StateMachine is the replicated application a Replica drives. Apply must
// be deterministic — two machines fed the same command sequence must reach
// Snapshot-identical states — because cross-replica byte equality at
// snapshot points is the service's correctness contract.
type StateMachine interface {
	// Apply executes one committed transaction.
	Apply(tx string)
	// Snapshot returns a canonical serialization of the current state.
	// Equal states must serialize to equal bytes (sort your maps).
	Snapshot() []byte
}

// KV is the flagship machine: a string key-value store driven by
// "set <key> <value>" commands; anything else is counted but ignored (a
// real service would reject at admission). Snapshot is the sorted
// key=value listing plus the applied-command count, so two KVs are
// byte-identical exactly when they applied the same command sequence
// length with the same effect.
type KV struct {
	m       map[string]string
	applied int
}

// NewKV returns an empty key-value machine.
func NewKV() *KV { return &KV{m: map[string]string{}} }

var _ StateMachine = (*KV)(nil)

// Apply implements StateMachine.
func (k *KV) Apply(tx string) {
	k.applied++
	rest, ok := strings.CutPrefix(tx, "set ")
	if !ok {
		return
	}
	key, val, ok := strings.Cut(rest, " ")
	if !ok {
		return
	}
	k.m[key] = val
}

// Get returns the current value of a key.
func (k *KV) Get(key string) (string, bool) {
	v, ok := k.m[key]
	return v, ok
}

// Len returns the number of live keys.
func (k *KV) Len() int { return len(k.m) }

// Snapshot implements StateMachine with a deterministic serialization.
func (k *KV) Snapshot() []byte {
	keys := make([]string, 0, len(k.m))
	for key := range k.m {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("applied ")
	b.WriteString(itoa(k.applied))
	b.WriteByte('\n')
	for _, key := range keys {
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(k.m[key])
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// itoa avoids pulling fmt into the hot snapshot path.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
