package service

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/types"
)

// CompareSnapshots verifies the service-mode agreement invariant across a
// run's replicas: whenever two replicas both snapshotted at the same
// decided wave, their applied counts match and their machine states are
// byte-identical. Replicas may pass through different decided-wave
// sequences (chain commits jump), so only waves actually shared are
// compared. It returns the number of cross-replica comparisons made —
// 0 means no wave was shared, a vacuous result callers should flag.
func CompareSnapshots(res Result) (int, error) {
	type point struct {
		owner types.ProcessID
		snap  Snapshot
	}
	byWave := map[int]point{}
	common := 0
	// Walk replicas in PID order so the wave's reference snapshot (and the
	// pair named in any error) is the same on every run.
	pids := make([]types.ProcessID, 0, len(res.Replicas))
	for p := range res.Replicas {
		pids = append(pids, p)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, p := range pids {
		rep := res.Replicas[p]
		for _, s := range rep.Snapshots {
			prev, ok := byWave[s.Wave]
			if !ok {
				byWave[s.Wave] = point{owner: p, snap: s}
				continue
			}
			common++
			if prev.snap.Applied != s.Applied {
				return common, fmt.Errorf(
					"service: wave %d applied mismatch: replica %v applied %d, replica %v applied %d",
					s.Wave, prev.owner, prev.snap.Applied, p, s.Applied)
			}
			if !bytes.Equal(prev.snap.State, s.State) {
				return common, fmt.Errorf(
					"service: wave %d snapshot state differs between replicas %v and %v",
					s.Wave, prev.owner, p)
			}
		}
	}
	return common, nil
}
