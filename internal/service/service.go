// Package service turns the batch-oriented consensus runs of
// internal/core into an indefinitely-running replicated state machine —
// the long-lived service mode of the ROADMAP's millions-of-users story.
//
// Each Replica is a sim.Node wrapping one core.Node and owning the full
// client-to-state lifecycle:
//
//		queue → batch → block → wave → commit → apply → snapshot/compact
//
//	  - A deterministic self-addressed tick loop injects ClientRate
//	    synthetic client commands per tick into an admission-bounded
//	    request queue (commands beyond MaxQueue are rejected and counted —
//	    backpressure, never unbounded growth).
//	  - The queue drains through rider.QueueWorkload: up to BatchSize
//	    transactions are batched into the block of each vertex the node
//	    proposes.
//	  - Waves are pipelined: core.Config.PipelineDepth lets proposals run
//	    ahead of decisions by a bounded number of waves, so the replica
//	    never idles waiting for a commit, yet the undecided window — the
//	    state GC cannot reclaim — stays finite.
//	  - Garbage collection is mandatory in service mode (Config.GCDepth
//	    must be positive; withDefaults enforces it): the DAG's round
//	    window, the reliable-broadcast slot trackers, the coin share maps
//	    and the delivered/acked bookkeeping are all pruned below the
//	    decided horizon, so memory is bounded over an unbounded run.
//	  - Committed deliveries stream through the core sinks straight into
//	    the replica's state machine; there is no ever-growing delivery
//	    log. Every SnapshotEvery decided waves the replica records a
//	    Snapshot (applied state + the wave it covers) and compacts: the
//	    applied-transaction tail below the snapshot horizon is dropped.
//	    A snapshot is exactly what the ROADMAP's state-sync item will
//	    transfer to a joining node.
//
// Because atomic broadcast delivers a total order, the applied state
// after the commit that set decidedWave = w is a pure function of the
// wave-w leader chain: two replicas that both pass through decidedWave w
// have byte-identical snapshots at w, even if churn made them commit
// different intermediate wave sequences. The service tests assert exactly
// this, and the snapshot-equivalence suite additionally replays the full
// retained log against every snapshot.
//
// Note on deployments: PR 7 replaced the gob transport encoding with the
// framed binary codec (internal/wire), an incompatible wire break. A
// long-lived service cannot be upgraded across such a break by rolling
// restarts alone — a cluster must either restart from a common snapshot
// (this package's Snapshot is the unit a replica would reload) or gate
// the codec change behind the transport hello's version field.
package service

import (
	"fmt"

	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/rider"
	"repro/internal/sim"
	"repro/internal/types"
)

// tickMsg is the replica's self-addressed client-load heartbeat. Exactly
// one tick per replica is in flight at any time: each tick is re-armed
// only while being processed, so buffered churn replay cannot fork the
// chain (the Seq guard additionally absorbs duplication faults).
//
//lint:unwired self-addressed replica heartbeat; never crosses a wire
type tickMsg struct {
	Seq uint64
}

// SimSize implements sim.Sizer (ticks are local control traffic).
func (tickMsg) SimSize() int { return 8 }

// SimType implements sim.Typer.
func (tickMsg) SimType() string { return "service.tick" }

// Config configures a service run.
type Config struct {
	// Trust is the quorum assumption shared by all replicas.
	Trust quorum.Assumption
	// Seed drives the network schedule; CoinSeed the leader election.
	Seed, CoinSeed int64
	// Latency is the network model (default uniform 1..20).
	Latency sim.LatencyModel

	// ClientRate is the number of synthetic client commands each replica
	// admits per tick (default 4).
	ClientRate int
	// MaxQueue bounds the pending-command queue; commands arriving at a
	// full queue are rejected and counted (default 1024).
	MaxQueue int
	// BatchSize caps the transactions batched into one block (default 16).
	BatchSize int
	// KeySpace is the number of distinct keys the synthetic client load
	// writes to (default 32).
	KeySpace int

	// PipelineDepth bounds how many waves proposals may run ahead of
	// decisions (default 8; see core.Config.PipelineDepth).
	PipelineDepth int
	// GCDepth is the garbage-collection horizon in rounds (default 12).
	// Service mode requires GC; withDefaults raises 0 to the default and
	// Run panics on a negative value.
	GCDepth int
	// RevealedCoin enables the share-gated coin (core.Config.RevealedCoin).
	RevealedCoin bool

	// SnapshotEvery takes a state snapshot and compacts the applied log
	// every time the decided wave advances by this many waves (default 4).
	SnapshotEvery int
	// RetainLog keeps the full applied-transaction log on each replica
	// (test instrumentation; defeats compaction's memory bound).
	RetainLog bool

	// NewMachine builds each replica's state machine (default NewKV).
	NewMachine func(p types.ProcessID) StateMachine

	// StopAfterWaves ends the run once every replica in StopSet has
	// decided at least this wave (default 20). The service itself is
	// open-ended — this is the test/benchmark stop condition.
	StopAfterWaves int
	// StopSet names the replicas the stop condition waits for (nil = all
	// replicas running the real protocol). Scenarios with lossy outages
	// exclude the victims here.
	StopSet []types.ProcessID
	// MaxEvents bounds the simulation (0 = sim.DefaultEventBudget,
	// < 0 = unbounded); Result.HitLimit reports truncation.
	MaxEvents int
	// DeliveryWorkers opts into parallel same-time delivery (see
	// sim.Config.DeliveryWorkers).
	DeliveryWorkers int

	// Faulty replaces processes with arbitrary behaviours; Fault and Wrap
	// are the scenario engine's hooks (see harness.RiderConfig).
	Faulty map[types.ProcessID]sim.Node
	Fault  sim.FaultPlane
	Wrap   func(p types.ProcessID, inner sim.Node) sim.Node
}

func (cfg Config) withDefaults() Config {
	if cfg.Latency == nil {
		cfg.Latency = sim.UniformLatency{Min: 1, Max: 20}
	}
	if cfg.ClientRate == 0 {
		cfg.ClientRate = 4
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 1024
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 16
	}
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 32
	}
	if cfg.PipelineDepth == 0 {
		cfg.PipelineDepth = 8
	}
	if cfg.GCDepth == 0 {
		cfg.GCDepth = 12
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 4
	}
	if cfg.NewMachine == nil {
		cfg.NewMachine = func(types.ProcessID) StateMachine { return NewKV() }
	}
	if cfg.StopAfterWaves == 0 {
		cfg.StopAfterWaves = 20
	}
	return cfg
}

// Snapshot is one compaction point: the machine state after applying the
// total order up to (and including) the commit that set decidedWave=Wave.
type Snapshot struct {
	Wave    int             // decided wave the snapshot covers
	Applied int             // transactions applied up to this point
	State   []byte          // StateMachine.Snapshot() serialization
	Time    sim.VirtualTime // virtual time the snapshot was taken
	// Live samples the node's GC-bounded structures at the snapshot
	// point; the bounded-memory soak asserts these stay flat.
	Live core.LiveStats
}

// Replica is one service node: a core consensus node plus client load
// generation, state-machine application, and snapshot/compaction. It
// implements sim.Node; Unwrap exposes the inner consensus node.
type Replica struct {
	cfg  Config
	self types.ProcessID

	node    *core.Node
	queue   *rider.QueueWorkload
	machine StateMachine

	tickSeq uint64
	nextCmd int

	submitted int
	rejected  int
	// submitTime records when each own in-flight command was admitted,
	// for commit-latency measurement; entries leave at apply, so the map
	// is bounded by MaxQueue plus the blocks in flight.
	submitTime map[string]sim.VirtualTime
	latency    histogram

	decidedWave int
	commits     int
	applied     int
	// tail is the applied-transaction log above the last snapshot
	// horizon; snapshots drop it (compaction). fullLog exists only under
	// RetainLog.
	tail      []string
	compacted int
	//lint:retained opt-in test instrumentation (RetainLog), off in production configs
	fullLog []string

	lastSnapWave int
	snapshots    []Snapshot

	peak      core.LiveStats
	peakQueue int

	now sim.VirtualTime // last observed virtual time, for sink timestamps
}

var _ sim.Node = (*Replica)(nil)

// NewReplica builds one service replica. Most callers use Run.
func NewReplica(cfg Config, c coin.Source) *Replica {
	rep := &Replica{
		cfg:        cfg,
		queue:      &rider.QueueWorkload{BatchSize: cfg.BatchSize},
		submitTime: map[string]sim.VirtualTime{},
	}
	rep.node = core.NewNode(core.Config{
		Trust:         cfg.Trust,
		Coin:          c,
		Workload:      rep.queue,
		RevealedCoin:  cfg.RevealedCoin,
		GCDepth:       cfg.GCDepth,
		PipelineDepth: cfg.PipelineDepth,
		DeliverySink:  rep.onDelivery,
		CommitSink:    rep.onCommit,
	})
	return rep
}

// Init implements sim.Node: start the consensus node and arm the client
// tick loop.
func (s *Replica) Init(env sim.Env) {
	s.self = env.Self()
	s.machine = s.cfg.NewMachine(s.self)
	s.now = env.Now()
	s.node.Init(env)
	env.Send(s.self, tickMsg{Seq: s.tickSeq})
}

// Receive implements sim.Node.
func (s *Replica) Receive(env sim.Env, from types.ProcessID, msg sim.Message) {
	s.now = env.Now()
	if t, ok := msg.(tickMsg); ok {
		if from == s.self {
			s.onTick(env, t)
		}
		return
	}
	s.node.Receive(env, from, msg)
}

// Unwrap exposes the consensus node (sim.Unwrapper).
func (s *Replica) Unwrap() sim.Node { return s.node }

// onTick admits this tick's client commands and re-arms the loop.
func (s *Replica) onTick(env sim.Env, t tickMsg) {
	if t.Seq != s.tickSeq {
		return // stale duplicate (link-duplication faults)
	}
	s.tickSeq++
	for i := 0; i < s.cfg.ClientRate; i++ {
		if s.queue.Len() >= s.cfg.MaxQueue {
			s.rejected++
			continue
		}
		cmd := fmt.Sprintf("set k%d p%d.%d", s.nextCmd%s.cfg.KeySpace, int(s.self), s.nextCmd)
		s.nextCmd++
		s.submitted++
		s.submitTime[cmd] = env.Now()
		s.queue.Submit(cmd)
	}
	if q := s.queue.Len(); q > s.peakQueue {
		s.peakQueue = q
	}
	s.sampleLive()
	env.Send(s.self, tickMsg{Seq: s.tickSeq})
}

// onDelivery is the core DeliverySink: apply the total order to the state
// machine and account latency for own commands.
func (s *Replica) onDelivery(d rider.Delivery) {
	for _, tx := range d.Txs {
		s.machine.Apply(tx)
		s.applied++
		s.tail = append(s.tail, tx)
		if s.cfg.RetainLog {
			s.fullLog = append(s.fullLog, tx)
		}
		if at, ok := s.submitTime[tx]; ok {
			s.latency.observe(int64(s.now - at))
			delete(s.submitTime, tx)
		}
	}
}

// onCommit is the core CommitSink: it fires after the wave's deliveries
// were applied (see core.Config.DeliverySink ordering), so crossing a
// snapshot boundary here captures exactly the state at decidedWave.
func (s *Replica) onCommit(ev rider.CommitEvent) {
	s.decidedWave = ev.Wave
	s.commits++
	if ev.Wave >= s.lastSnapWave+s.cfg.SnapshotEvery {
		s.takeSnapshot(ev.Wave)
	}
	s.sampleLive()
}

// takeSnapshot records the compaction point and drops the applied tail
// below it.
func (s *Replica) takeSnapshot(wave int) {
	s.snapshots = append(s.snapshots, Snapshot{
		Wave:    wave,
		Applied: s.applied,
		State:   s.machine.Snapshot(),
		Time:    s.now,
		Live:    s.node.Live(),
	})
	s.lastSnapWave = wave
	s.compacted += len(s.tail)
	s.tail = nil
}

// sampleLive folds the node's live-state counters into the peak tracker.
func (s *Replica) sampleLive() {
	l := s.node.Live()
	if l.DAGVertices > s.peak.DAGVertices {
		s.peak.DAGVertices = l.DAGVertices
	}
	if l.DAGRounds > s.peak.DAGRounds {
		s.peak.DAGRounds = l.DAGRounds
	}
	if l.BroadcastSlots > s.peak.BroadcastSlots {
		s.peak.BroadcastSlots = l.BroadcastSlots
	}
	if l.Buffered > s.peak.Buffered {
		s.peak.Buffered = l.Buffered
	}
	if l.RoundTrackers > s.peak.RoundTrackers {
		s.peak.RoundTrackers = l.RoundTrackers
	}
	if l.WaveCtls > s.peak.WaveCtls {
		s.peak.WaveCtls = l.WaveCtls
	}
	if l.PendingPairs > s.peak.PendingPairs {
		s.peak.PendingPairs = l.PendingPairs
	}
}

// Live returns the replica's current live-state counters (soak tests).
func (s *Replica) Live() core.LiveStats { return s.node.Live() }

// DecidedWave returns the replica's last decided wave.
func (s *Replica) DecidedWave() int { return s.decidedWave }

// Report summarizes one replica at the end of a run.
type Report struct {
	DecidedWave int
	Commits     int
	Applied     int // transactions applied to the state machine
	Submitted   int // own client commands admitted
	Rejected    int // own client commands refused by admission control
	Compacted   int // applied transactions dropped by compaction
	TailLen     int // applied transactions above the last snapshot
	PeakQueue   int
	PeakLive    core.LiveStats
	Snapshots   []Snapshot
	FinalState  []byte
	// Log is the full applied-transaction order (RetainLog only).
	//lint:retained final report value built once at run end, not live protocol state
	Log []string
	// Latency summarizes own-command commit latency in virtual time.
	Latency LatencySummary
}

// Result is the outcome of one service run.
type Result struct {
	Replicas map[types.ProcessID]*Report
	Metrics  *sim.Metrics
	EndTime  sim.VirtualTime
	// Stopped reports the stop condition was reached; HitLimit that the
	// event budget ended the run first.
	Stopped  bool
	HitLimit bool
	Config   Config
}

// Run executes one service cluster until the stop condition (or the event
// budget) and collects per-replica reports.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	if cfg.GCDepth < 0 {
		panic("service: GCDepth must be positive (GC is mandatory in service mode)")
	}
	n := cfg.Trust.N()
	c := coin.NewPRF(cfg.CoinSeed, n)

	replicas := make([]*Replica, n)
	nodes := make([]sim.Node, n)
	for i := range nodes {
		rep := NewReplica(cfg, c)
		replicas[i] = rep
		nodes[i] = rep
	}
	for p, f := range cfg.Faulty {
		nodes[p] = f
		replicas[p] = nil
	}
	if cfg.Wrap != nil {
		for i := range nodes {
			nodes[i] = cfg.Wrap(types.ProcessID(i), nodes[i])
		}
	}

	stop := cfg.StopSet
	if stop == nil {
		for i := range replicas {
			if replicas[i] != nil {
				stop = append(stop, types.ProcessID(i))
			}
		}
	}

	limit := sim.ResolveEventBudget(cfg.MaxEvents)
	r := sim.NewRunner(sim.Config{
		N: n, Seed: cfg.Seed, Latency: cfg.Latency, Fault: cfg.Fault,
		DeliveryWorkers: cfg.DeliveryWorkers,
	}, nodes)
	stopped := r.RunUntil(func() bool {
		for _, p := range stop {
			if replicas[p] != nil && replicas[p].decidedWave < cfg.StopAfterWaves {
				return false
			}
		}
		return true
	}, limit)

	res := Result{
		Replicas: map[types.ProcessID]*Report{},
		Metrics:  r.Metrics(),
		EndTime:  r.Now(),
		Stopped:  stopped,
		HitLimit: !stopped && limit > 0,
		Config:   cfg,
	}
	for i, rep := range replicas {
		if rep == nil {
			continue
		}
		res.Replicas[types.ProcessID(i)] = &Report{
			DecidedWave: rep.decidedWave,
			Commits:     rep.commits,
			Applied:     rep.applied,
			Submitted:   rep.submitted,
			Rejected:    rep.rejected,
			Compacted:   rep.compacted,
			TailLen:     len(rep.tail),
			PeakQueue:   rep.peakQueue,
			PeakLive:    rep.peak,
			Snapshots:   rep.snapshots,
			FinalState:  rep.machine.Snapshot(),
			Log:         rep.fullLog,
			Latency:     rep.latency.summary(),
		}
	}
	return res
}
