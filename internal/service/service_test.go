package service

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/quorum"
)

func baseConfig(seed int64) Config {
	return Config{
		Trust:          quorum.NewThreshold(4, 1),
		Seed:           seed,
		CoinSeed:       seed + 1,
		StopAfterWaves: 12,
	}
}

func TestServiceRunsAndStops(t *testing.T) {
	res := Run(baseConfig(1))
	if !res.Stopped {
		t.Fatalf("service did not reach the stop condition (HitLimit=%v)", res.HitLimit)
	}
	for p, rep := range res.Replicas {
		if rep.DecidedWave < 12 {
			t.Errorf("replica %v decided only wave %d", p, rep.DecidedWave)
		}
		if rep.Applied == 0 {
			t.Errorf("replica %v applied no transactions", p)
		}
		if rep.Submitted == 0 {
			t.Errorf("replica %v submitted no commands", p)
		}
		if len(rep.Snapshots) == 0 {
			t.Errorf("replica %v took no snapshots", p)
		}
		if rep.Compacted == 0 {
			t.Errorf("replica %v never compacted its log", p)
		}
		if rep.Latency.Count == 0 {
			t.Errorf("replica %v recorded no commit latencies", p)
		}
	}
}

// TestServiceSnapshotsByteIdentical pins the service's correctness
// contract: any two replicas with a snapshot at the same decided wave have
// byte-identical state and applied counts.
func TestServiceSnapshotsByteIdentical(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		res := Run(baseConfig(seed))
		if !res.Stopped {
			t.Fatalf("seed %d: run truncated", seed)
		}
		compareSnapshots(t, res, fmt.Sprintf("seed %d", seed))
	}
}

func compareSnapshots(t *testing.T, res Result, label string) int {
	t.Helper()
	common, err := CompareSnapshots(res)
	if err != nil {
		t.Errorf("%s: %v", label, err)
	}
	if common == 0 {
		t.Errorf("%s: no snapshot wave was shared by two replicas", label)
	}
	return common
}

// TestServiceDeterministicAcrossWorkers pins the parallel-delivery
// contract for the service layer: identical reports for any worker count.
// (Serial mode is excluded: it stops mid-timestamp when the stop predicate
// turns true, while parallel mode completes whole batches.)
func TestServiceDeterministicAcrossWorkers(t *testing.T) {
	cfg1 := baseConfig(7)
	cfg1.DeliveryWorkers = 1
	base := Run(cfg1)
	for _, workers := range []int{2, 3, 4} {
		cfg := baseConfig(7)
		cfg.DeliveryWorkers = workers
		res := Run(cfg)
		for p, rep := range res.Replicas {
			want := base.Replicas[p]
			if rep.DecidedWave != want.DecidedWave || rep.Applied != want.Applied ||
				rep.Submitted != want.Submitted || len(rep.Snapshots) != len(want.Snapshots) {
				t.Fatalf("workers=%d: replica %v diverged: wave %d/%d applied %d/%d",
					workers, p, rep.DecidedWave, want.DecidedWave, rep.Applied, want.Applied)
			}
			if !bytes.Equal(rep.FinalState, want.FinalState) {
				t.Fatalf("workers=%d: replica %v final state differs from serial run", workers, p)
			}
			for i := range rep.Snapshots {
				if !bytes.Equal(rep.Snapshots[i].State, want.Snapshots[i].State) {
					t.Fatalf("workers=%d: replica %v snapshot %d differs", workers, p, i)
				}
			}
		}
		if res.EndTime != base.EndTime {
			t.Fatalf("workers=%d: end time %d != %d", workers, res.EndTime, base.EndTime)
		}
	}
}

func TestKVMachineDeterministicSnapshot(t *testing.T) {
	a, b := NewKV(), NewKV()
	cmds := []string{"set x 1", "set y 2", "set x 3", "noise", "set z 9"}
	for _, c := range cmds {
		a.Apply(c)
		b.Apply(c)
	}
	if !bytes.Equal(a.Snapshot(), b.Snapshot()) {
		t.Fatal("same command sequence produced different snapshots")
	}
	if v, _ := a.Get("x"); v != "3" {
		t.Fatalf("x = %q, want 3", v)
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
}
