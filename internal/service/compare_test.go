package service

import (
	"strings"
	"testing"

	"repro/internal/types"
)

// TestCompareSnapshotsAttributionDeterministic pins which replica pair a
// snapshot divergence is attributed to: replicas are walked in PID order,
// so the reference snapshot for a wave always comes from the lowest PID
// that recorded one, and the error names that replica plus the next
// mismatching PID. Before the sorted walk, map iteration order picked
// the reference, so the same divergent run could report different pairs
// (and different applied counts) on different executions.
func TestCompareSnapshotsAttributionDeterministic(t *testing.T) {
	res := Result{Replicas: map[types.ProcessID]*Report{
		0: {Snapshots: []Snapshot{{Wave: 1, Applied: 10, State: []byte("s10")}}},
		1: {Snapshots: []Snapshot{{Wave: 1, Applied: 11, State: []byte("s11")}}},
		2: {Snapshots: []Snapshot{{Wave: 1, Applied: 12, State: []byte("s12")}}},
	}}
	var first string
	for i := 0; i < 50; i++ {
		common, err := CompareSnapshots(res)
		if err == nil {
			t.Fatal("divergence not detected")
		}
		if common != 1 {
			t.Fatalf("comparisons before failure = %d, want 1 (replica 0 vs 1)", common)
		}
		if i == 0 {
			first = err.Error()
			// ProcessID's Stringer is 1-based: PID 0 prints as p1.
			if !strings.Contains(first, "replica p1 applied 10, replica p2 applied 11") {
				t.Errorf("divergence attributed unexpectedly: %s", first)
			}
			continue
		}
		if err.Error() != first {
			t.Fatalf("attribution changed between runs:\n%s\n%s", first, err)
		}
	}
}
