package service

// histogram is a bounded-memory latency recorder: width-1 buckets up to
// latCap virtual-time units, one overflow bucket beyond. A long-lived run
// records millions of latencies in a fixed footprint, and percentiles come
// from a counting walk — no sample retention.
type histogram struct {
	buckets  []int64
	overflow int64
	count    int64
	sum      int64
	max      int64
}

const latCap = 1 << 12

func (h *histogram) observe(v int64) {
	if h.buckets == nil {
		h.buckets = make([]int64, latCap)
	}
	if v < 0 {
		v = 0
	}
	if v >= latCap {
		h.overflow++
	} else {
		h.buckets[v]++
	}
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// percentile returns the smallest latency ≥ the p-quantile (0 < p ≤ 1).
// Overflowed observations report max.
func (h *histogram) percentile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(p * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for v, c := range h.buckets {
		seen += c
		if seen >= rank {
			return int64(v)
		}
	}
	return h.max
}

// LatencySummary reports own-command commit latency in virtual-time units.
type LatencySummary struct {
	Count    int64
	Mean     float64
	P50, P99 int64
	Max      int64
}

func (h *histogram) summary() LatencySummary {
	s := LatencySummary{Count: h.count, Max: h.max}
	if h.count > 0 {
		s.Mean = float64(h.sum) / float64(h.count)
		s.P50 = h.percentile(0.50)
		s.P99 = h.percentile(0.99)
	}
	return s
}
