package service

import (
	"bytes"
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/scenario"
	"repro/internal/types"
)

// soakWaves returns the soak length in waves: SOAK_WAVES overrides the
// short default (make soak sets it to 500 — 50× the pre-service 10-wave
// budget; the default keeps `make test` fast while still running far past
// warm-up).
func soakWaves() int {
	if s := os.Getenv("SOAK_WAVES"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 150
}

// TestServiceBoundedMemorySoak runs the service under the rolling-churn
// scenario for many times the old batch-run wave budget and asserts the
// GC-bounded live counters are flat: the peak over the second half of the
// snapshot trail must not exceed the post-warm-up first-half peak. Counters
// (live DAG vertices, broadcast slots, pending pairs), not wall-clock or
// heap readings, so the assertion is deterministic.
func TestServiceBoundedMemorySoak(t *testing.T) {
	waves := soakWaves()
	def, ok := scenario.Find("rolling-churn")
	if !ok {
		t.Fatal("rolling-churn scenario missing from the registry")
	}
	sc := def.Build(4, 1)
	cfg := Config{
		Trust:          quorum.NewThreshold(4, 1),
		Seed:           1,
		CoinSeed:       2,
		StopAfterWaves: waves,
		Fault:          sc.FaultPlane(),
		Wrap:           sc.WrapNode,
	}
	res := Run(cfg)
	if !res.Stopped {
		t.Fatalf("soak truncated at event budget before wave %d (HitLimit=%v)", waves, res.HitLimit)
	}
	for p, rep := range res.Replicas {
		snaps := rep.Snapshots
		if len(snaps) < 8 {
			t.Fatalf("replica %v: only %d snapshots over %d waves", p, len(snaps), waves)
		}
		// Warm-up: drop the first quarter (covers startup and the churn
		// windows at virtual time [100,500), which end well inside it on
		// any soak length).
		post := snaps[len(snaps)/4:]
		half := len(post) / 2
		firstPeak := peakOf(post[:half])
		secondPeak := peakOf(post[half:])
		// Flat up to scheduling jitter: the live window's peak can wobble
		// by a slot or two between halves; unbounded growth over hundreds
		// of extra waves would exceed any constant by orders of magnitude.
		checkFlat := func(name string, first, second int) {
			tolerance := 2 + first/10
			if second > first+tolerance {
				t.Errorf("replica %v: %s grew after warm-up: first-half peak %d, second-half peak %d",
					p, name, first, second)
			}
		}
		checkFlat("live DAG vertices", firstPeak.DAGVertices, secondPeak.DAGVertices)
		checkFlat("live DAG rounds", firstPeak.DAGRounds, secondPeak.DAGRounds)
		checkFlat("broadcast slots", firstPeak.BroadcastSlots, secondPeak.BroadcastSlots)
		checkFlat("pending pairs", firstPeak.PendingPairs, secondPeak.PendingPairs)
		checkFlat("round trackers", firstPeak.RoundTrackers, secondPeak.RoundTrackers)
		// The compacted tail is the log-side bound: with compaction on,
		// the retained tail at any snapshot is 0 by construction, and the
		// final tail covers at most SnapshotEvery waves of traffic.
		if rep.TailLen > rep.Applied/2 {
			t.Errorf("replica %v: retained tail %d out of %d applied — compaction not engaging",
				p, rep.TailLen, rep.Applied)
		}
	}
	compareSnapshots(t, res, "soak")
}

func peakOf(snaps []Snapshot) core.LiveStats {
	var peak core.LiveStats
	for _, s := range snaps {
		l := s.Live
		if l.DAGVertices > peak.DAGVertices {
			peak.DAGVertices = l.DAGVertices
		}
		if l.DAGRounds > peak.DAGRounds {
			peak.DAGRounds = l.DAGRounds
		}
		if l.BroadcastSlots > peak.BroadcastSlots {
			peak.BroadcastSlots = l.BroadcastSlots
		}
		if l.PendingPairs > peak.PendingPairs {
			peak.PendingPairs = l.PendingPairs
		}
		if l.RoundTrackers > peak.RoundTrackers {
			peak.RoundTrackers = l.RoundTrackers
		}
	}
	return peak
}

// TestServiceSnapshotEquivalence is the snapshot ⇔ log-replay pin across a
// 100-seed sweep: a replica's snapshot state at compaction point k must
// equal a fresh state machine replaying the full ordered log up to k's
// applied count, and replicas sharing a snapshot wave must agree
// byte-for-byte.
func TestServiceSnapshotEquivalence(t *testing.T) {
	const seeds = 100
	for seed := int64(1); seed <= seeds; seed++ {
		cfg := Config{
			Trust:          quorum.NewThreshold(4, 1),
			Seed:           seed,
			CoinSeed:       seed * 31,
			StopAfterWaves: 6,
			RetainLog:      true,
		}
		res := Run(cfg)
		if !res.Stopped {
			t.Fatalf("seed %d: run truncated", seed)
		}
		for p, rep := range res.Replicas {
			for i, s := range rep.Snapshots {
				if s.Applied > len(rep.Log) {
					t.Fatalf("seed %d replica %v: snapshot %d applied=%d > log len %d",
						seed, p, i, s.Applied, len(rep.Log))
				}
				replay := NewKV()
				for _, tx := range rep.Log[:s.Applied] {
					replay.Apply(tx)
				}
				if !bytes.Equal(replay.Snapshot(), s.State) {
					t.Fatalf("seed %d replica %v: snapshot at wave %d (applied %d) != log replay",
						seed, p, s.Wave, s.Applied)
				}
			}
			_ = p
		}
		compareSnapshots(t, res, "seed "+strconv.FormatInt(seed, 10))
	}
}

// TestServiceSurvivesChurnScenarios runs the service under every built-in
// scenario that keeps all processes correct-or-recovering, checking the
// stop condition is reached and snapshots agree.
func TestServiceSurvivesChurn(t *testing.T) {
	def, ok := scenario.Find("rolling-churn")
	if !ok {
		t.Fatal("rolling-churn scenario missing")
	}
	for seed := int64(1); seed <= 3; seed++ {
		sc := def.Build(4, seed)
		cfg := Config{
			Trust:          quorum.NewThreshold(4, 1),
			Seed:           seed,
			CoinSeed:       seed + 100,
			StopAfterWaves: 20,
			Fault:          sc.FaultPlane(),
			Wrap:           sc.WrapNode,
		}
		res := Run(cfg)
		if !res.Stopped {
			t.Fatalf("seed %d: churn run truncated", seed)
		}
		for p, rep := range res.Replicas {
			if rep.DecidedWave < 20 {
				t.Errorf("seed %d: replica %v stuck at wave %d", seed, p, rep.DecidedWave)
			}
		}
		compareSnapshots(t, res, "churn seed "+strconv.FormatInt(seed, 10))
	}
}

var _ = types.ProcessID(0)
