package harness

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/quorum"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/types"
)

// Scenario sweeps: the adversarial conformance layer. Each built-in
// scenario (internal/scenario) bundles a fault schedule with the Definition
// 4.1 properties it must preserve; this file runs scenario × seed through
// the consensus harness, checks every run's declared properties over the
// maximal guild of the scenario's faulty set, and aggregates per-scenario
// stats with first-failing (scenario, seed) attribution.

// ScenarioSweepConfig parameterizes a scenario sweep. The zero value runs
// the sweep default: threshold(4,1) trust, 6 waves, one transaction per
// block, uniform 1..20 latency — the envelope the built-in scenarios'
// fault windows are calibrated against.
type ScenarioSweepConfig struct {
	// Trust is the quorum system (default threshold(4,1) in explicit
	// *quorum.System form — the guild computation needs a *System).
	Trust *quorum.System
	// NumWaves bounds each execution (default 6).
	NumWaves int
	// TxPerBlock is the synthetic workload's block size (default 1).
	TxPerBlock int
	// Latency is the base network model the scenario's link rules layer
	// over (default uniform 1..20).
	Latency sim.LatencyModel
	// MaxEvents bounds each run (0 = sim.DefaultEventBudget).
	MaxEvents int
	// DeliveryWorkers sets the delivery pool width. Scenario runs ALWAYS
	// use the simulator's batch-commit scheduler: values <= 0 resolve to 1
	// worker, so every configured count — 0, 1, 2 or GOMAXPROCS — yields
	// the byte-identical execution the parallel determinism contract
	// guarantees for >= 1 workers. (Serial mode would diverge: its commit
	// order re-sequences the RNG draws within a timestamp batch.)
	DeliveryWorkers int
	// Workers bounds the sweep's worker pool (0 = GOMAXPROCS).
	Workers int
}

// withDefaults resolves the zero-value defaults.
func (c ScenarioSweepConfig) withDefaults() ScenarioSweepConfig {
	if c.Trust == nil {
		sys, err := quorum.NewThresholdExplicit(4, 1)
		if err != nil {
			panic(err)
		}
		c.Trust = sys
	}
	if c.NumWaves == 0 {
		c.NumWaves = 6
	}
	if c.TxPerBlock == 0 {
		c.TxPerBlock = 1
	}
	if c.Latency == nil {
		c.Latency = sim.UniformLatency{Min: 1, Max: 20}
	}
	if c.DeliveryWorkers <= 0 {
		// Honor the cmd-level -delivery-workers flag for pool width, but
		// never drop below the batch-commit scheduler's 1-worker floor.
		c.DeliveryWorkers = resolveDeliveryWorkers(c.DeliveryWorkers)
		if c.DeliveryWorkers < 1 {
			c.DeliveryWorkers = 1
		}
	}
	return c
}

// ScenarioRiderConfig instantiates def for one seed under the sweep
// config: a fresh Scenario (wrappers carry per-run state), its compiled
// fault plane, and its node wraps, over the base consensus configuration.
func ScenarioRiderConfig(def scenario.Definition, base ScenarioSweepConfig, seed int64) RiderConfig {
	base = base.withDefaults()
	n := base.Trust.N()
	sc := def.Build(n, seed)
	return RiderConfig{
		Kind:            Asymmetric,
		Trust:           base.Trust,
		NumWaves:        base.NumWaves,
		TxPerBlock:      base.TxPerBlock,
		Seed:            seed,
		CoinSeed:        seed*31 + 7,
		Latency:         base.Latency,
		Fault:           sc.FaultPlane(),
		Wrap:            sc.WrapNode,
		MaxEvents:       base.MaxEvents,
		DeliveryWorkers: base.DeliveryWorkers,
	}
}

// CheckScenarioProperties asserts every property def declares over the
// maximal guild of the scenario's faulty set. The scenario is rebuilt from
// the run's recorded seed (Definition.Build is a pure function of (n,
// seed)), so the checker needs no side channel to the instance that ran.
func CheckScenarioProperties(def scenario.Definition, res RiderResult) error {
	sys, ok := res.Config.Trust.(*quorum.System)
	if !ok {
		return fmt.Errorf("scenario %s: trust must be a *quorum.System for the guild computation", def.Name)
	}
	n := sys.N()
	sc := def.Build(n, res.Config.Seed)
	guild := sys.MaximalGuild(sc.FaultySet(n))
	if guild.IsEmpty() {
		return nil // no guild — the paper's properties are vacuous
	}
	touched := sc.TouchedSet(n)
	for _, prop := range sc.Properties {
		var err error
		switch prop {
		case scenario.TotalOrder:
			err = res.CheckTotalOrder(guild)
		case scenario.Agreement:
			err = res.CheckAgreement(guild)
		case scenario.Integrity:
			err = res.CheckIntegrity(guild)
		case scenario.Validity:
			// Propose from an untouched guild member: a churned process's
			// early vertices exist but its delivery horizon is unreliable.
			proposer := types.ProcessID(-1)
			for _, p := range guild.Members() {
				if !touched.Contains(p) {
					proposer = p
					break
				}
			}
			if proposer >= 0 {
				err = res.CheckValidity(guild, proposer, 1)
			}
		case scenario.Liveness:
			// Every guild member with no node fault must decide at least
			// one wave. Faulted-but-correct members (buffered churn) are
			// exempt: a bounded run may quiesce before the delivery that
			// triggers their recovery.
			for _, p := range guild.Members() {
				if touched.Contains(p) {
					continue
				}
				nr, ok := res.Nodes[p]
				if !ok || nr.DecidedWave <= 0 {
					err = fmt.Errorf("liveness violated: guild member %v decided no wave", p)
					break
				}
			}
		}
		if err != nil {
			return fmt.Errorf("scenario %s: %w", def.Name, err)
		}
	}
	return nil
}

// ScenarioSweepStats aggregates one scenario's multi-seed sweep.
type ScenarioSweepStats struct {
	// Name is the scenario's registry name.
	Name string
	// RiderSweepStats carries the usual Seeds/Runs/Failures/First/
	// HitLimits/Metrics aggregates.
	RiderSweepStats
}

// SweepScenario runs one scenario over the seed range and checks its
// declared properties on every run.
func SweepScenario(def scenario.Definition, seeds []int64, base ScenarioSweepConfig) ScenarioSweepStats {
	base = base.withDefaults()
	stats := Sweeper{Workers: base.Workers}.SweepRider(seeds,
		func(seed int64) RiderConfig { return ScenarioRiderConfig(def, base, seed) },
		func(res RiderResult) error { return CheckScenarioProperties(def, res) })
	return ScenarioSweepStats{Name: def.Name, RiderSweepStats: stats}
}

// ScenarioFailure names the first failing (scenario, seed) of a multi-
// scenario sweep, in (registry, seed) order.
type ScenarioFailure struct {
	Scenario string
	Seed     int64
	Err      error
}

// String implements fmt.Stringer.
func (f *ScenarioFailure) String() string {
	return fmt.Sprintf("scenario %s, seed %d: %v", f.Scenario, f.Seed, f.Err)
}

// SweepScenarios sweeps every definition over the seed range and returns
// per-scenario stats plus the first failing (scenario, seed), if any.
func SweepScenarios(defs []scenario.Definition, seeds []int64, base ScenarioSweepConfig) ([]ScenarioSweepStats, *ScenarioFailure) {
	out := make([]ScenarioSweepStats, 0, len(defs))
	var first *ScenarioFailure
	for _, def := range defs {
		stats := SweepScenario(def, seeds, base)
		out = append(out, stats)
		if first == nil && stats.First != nil {
			first = &ScenarioFailure{Scenario: def.Name, Seed: stats.First.Seed, Err: stats.First.Err}
		}
	}
	return out, first
}

// ExpScenarios runs every built-in scenario over a seed range and
// tabulates per-scenario outcomes — the adversarial counterpart of
// ExpFaults (E16).
func ExpScenarios() string {
	const seedsPerScenario = 8
	stats, first := SweepScenarios(scenario.Builtins(), sim.SeedRange(1, seedsPerScenario),
		ScenarioSweepConfig{Workers: DefaultSweepWorkers})

	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scenario\tseeds ok\thit limits\tdecided nodes\tmessages\tdropped\tfirst failure")
	for _, s := range stats {
		verdict := "—"
		if s.First != nil {
			verdict = s.First.String()
		}
		fmt.Fprintf(w, "%s\t%d/%d\t%d\t%d/%d\t%d\t%d\t%s\n",
			s.Name, s.Seeds-s.Failures, s.Seeds, s.HitLimits,
			s.DecidedNodes, s.Nodes, s.Metrics.MessagesSent, s.Metrics.MessagesDropped, verdict)
	}
	w.Flush()
	if first != nil {
		fmt.Fprintf(&b, "\nFIRST FAILING: %s\n", first)
	}
	b.WriteString("\neach scenario declares the Definition 4.1 properties it must preserve for the\n" +
		"maximal guild; partitions that heal and buffered crash-recovery keep the full\n" +
		"contract (liveness included), while information-destroying faults keep safety.\n")
	return b.String()
}
