package harness

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/gather"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// Randomized protocol-property conformance suite: the paper's Definition
// 4.1 guarantees checked at statistical scale. Every seed deterministically
// derives a random asymmetric trust system, an optional tolerated mute
// fault, and a random schedule; the sweep engine fans the runs out across
// cores and reports the first failing seed on any violation — rerun with
// that seed to reproduce the exact execution.

// conformanceConfig derives one randomized consensus execution from its
// seed. Everything — system shape, faults, schedule — is a pure function
// of the seed, so a reported failure is replayable.
func conformanceConfig(seed int64) RiderConfig {
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(5) // 4..8 processes
	sys, err := quorum.RandomAsymmetric(quorum.RandomAsymmetricConfig{
		N:        n,
		NumSets:  1 + rng.Intn(2),
		MaxFault: 1 + rng.Intn(2),
		Seed:     rng.Int63(),
	})
	if err != nil {
		// Rare: no valid random system for these parameters. Fall back to
		// an explicit threshold system (still a *quorum.System, so the
		// guild computation in the checker is uniform).
		sys, err = quorum.NewThresholdExplicit(n, (n-1)/3)
		if err != nil {
			panic(err) // sweep attributes the panic to this seed
		}
	}

	// With probability 1/2, mute one tolerated fail-prone set — the
	// properties must hold for the maximal guild of every such execution.
	faulty := map[types.ProcessID]sim.Node{}
	if rng.Intn(2) == 0 {
		fps := sys.FailProneSets(types.ProcessID(rng.Intn(n)))
		if len(fps) > 0 {
			for _, p := range fps[rng.Intn(len(fps))].Members() {
				faulty[p] = sim.MuteNode{}
			}
		}
	}

	return RiderConfig{
		Kind:       Asymmetric,
		Trust:      sys,
		NumWaves:   4,
		TxPerBlock: 1,
		Seed:       seed,
		CoinSeed:   seed*31 + 7,
		Latency:    sim.UniformLatency{Min: 1, Max: sim.VirtualTime(5 + rng.Intn(40))},
		Faulty:     faulty,
	}
}

// conformanceCheck asserts every Definition 4.1 property over the maximal
// guild of the execution's faulty set.
func conformanceCheck(res RiderResult) error {
	sys := res.Config.Trust.(*quorum.System)
	n := sys.N()
	faultySet := types.NewSet(n)
	for p := range res.Config.Faulty {
		faultySet.Add(p)
	}
	within := sys.MaximalGuild(faultySet)
	if within.IsEmpty() {
		return nil // no guild — the paper's properties are vacuous
	}
	if err := res.CheckTotalOrder(within); err != nil {
		return err
	}
	if err := res.CheckAgreement(within); err != nil {
		return err
	}
	if err := res.CheckIntegrity(within); err != nil {
		return err
	}
	// Validity: an early vertex of a guild member must reach every guild
	// member that decided far enough (the checker guards the horizon).
	return res.CheckValidity(within, within.Members()[0], 1)
}

// TestRandomizedProtocolConformance sweeps ≥200 random systems through the
// asymmetric protocol and asserts total order, agreement, integrity and
// validity on every run.
func TestRandomizedProtocolConformance(t *testing.T) {
	count := 200
	if testing.Short() {
		count = 25
	}
	stats := Sweeper{}.SweepRider(sim.SeedRange(1, count), conformanceConfig, conformanceCheck)
	if stats.Failures > 0 {
		t.Fatalf("%d/%d seeds violated Definition 4.1; first failing %s",
			stats.Failures, stats.Seeds, stats.First)
	}
	if stats.Runs != count {
		t.Fatalf("only %d/%d runs completed", stats.Runs, count)
	}
	// Guard against a vacuous sweep: consensus must actually be deciding.
	if stats.DecidedNodes == 0 || stats.NodeCommits == 0 {
		t.Fatalf("sweep vacuous: %d decided nodes, %d commits", stats.DecidedNodes, stats.NodeCommits)
	}
	t.Logf("conformance: %d runs, %d/%d nodes decided, %d commits, %d messages",
		stats.Runs, stats.DecidedNodes, stats.Nodes, stats.NodeCommits, stats.Metrics.MessagesSent)
}

// TestRandomizedGatherConformance sweeps random valid systems through the
// constant-round gather (Algorithm 3): every process must g-deliver and
// every run must exhibit a common core — the §3.3 soundness claim, now at
// randomized scale.
func TestRandomizedGatherConformance(t *testing.T) {
	count := 60
	if testing.Short() {
		count = 10
	}
	stats := Sweeper{}.SweepGather(sim.SeedRange(1, count), func(seed int64) gather.RunConfig {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		sys, err := quorum.RandomAsymmetric(quorum.RandomAsymmetricConfig{
			N: n, NumSets: 1 + rng.Intn(2), MaxFault: 1, Seed: rng.Int63(),
		})
		if err != nil {
			sys, err = quorum.NewThresholdExplicit(n, (n-1)/3)
			if err != nil {
				panic(err)
			}
		}
		return gather.RunConfig{
			Kind: gather.KindConstantRound, Trust: sys, Mode: gather.UsePlain,
			Latency: sim.UniformLatency{Min: 1, Max: sim.VirtualTime(5 + rng.Intn(40))},
			Seed:    seed,
		}
	}, func(cfg gather.RunConfig, res gather.RunResult) error {
		if len(res.Outputs) != cfg.Trust.N() {
			return fmt.Errorf("only %d/%d processes g-delivered", len(res.Outputs), cfg.Trust.N())
		}
		return nil
	})
	if stats.Failures > 0 {
		t.Fatalf("%d/%d gather seeds failed; first failing %s", stats.Failures, stats.Seeds, stats.First)
	}
	if stats.CommonCores != stats.Runs {
		t.Fatalf("common core missing in %d/%d runs", stats.Runs-stats.CommonCores, stats.Runs)
	}
}

// TestRandomizedABBAConformance sweeps the asymmetric binary agreement:
// all processes must decide the same value under every random schedule.
func TestRandomizedABBAConformance(t *testing.T) {
	count := 80
	if testing.Short() {
		count = 12
	}
	trust := quorum.NewThreshold(7, 2)
	stats := Sweeper{}.SweepABBA(sim.SeedRange(1, count), func(seed int64) ABBAConfig {
		rng := rand.New(rand.NewSource(seed))
		return ABBAConfig{
			Trust: trust,
			Inputs: func(p types.ProcessID) int {
				return int((seed + int64(p)) % 2)
			},
			Seed:     seed,
			CoinSeed: seed*13 + 5,
			Latency:  sim.UniformLatency{Min: 1, Max: sim.VirtualTime(5 + rng.Intn(40))},
		}
	}, nil)
	if stats.Failures > 0 {
		t.Fatalf("%d/%d seeds violated binary agreement; first failing %s",
			stats.Failures, stats.Seeds, stats.First)
	}
	if stats.Undecided > 0 {
		t.Fatalf("%d processes left undecided", stats.Undecided)
	}
}

// TestRandomizedParallelDeliveryConformance re-runs a slice of the
// conformance sweep with parallel same-time delivery enabled: the
// Definition 4.1 properties must hold under the commit-order schedules
// too, and every run must stay byte-identical to its own 1-worker
// execution (the parallel determinism contract, exercised across many
// random systems, fault patterns and latency ranges — under -race this
// doubles as the concurrency audit of the protocol handlers).
func TestRandomizedParallelDeliveryConformance(t *testing.T) {
	count := 60
	if testing.Short() {
		count = 10
	}
	mk := func(workers int) func(seed int64) RiderConfig {
		return func(seed int64) RiderConfig {
			cfg := conformanceConfig(seed)
			cfg.DeliveryWorkers = workers
			return cfg
		}
	}
	ref := Sweeper{}.SweepRider(sim.SeedRange(1, count), mk(1), conformanceCheck)
	if ref.Failures > 0 {
		t.Fatalf("%d/%d parallel seeds violated Definition 4.1; first failing %s",
			ref.Failures, ref.Seeds, ref.First)
	}
	for _, workers := range []int{3} {
		stats := Sweeper{}.SweepRider(sim.SeedRange(1, count), mk(workers), conformanceCheck)
		if stats.Failures > 0 {
			t.Fatalf("workers=%d: %d/%d seeds failed; first %s", workers, stats.Failures, stats.Seeds, stats.First)
		}
		if !reflect.DeepEqual(stats, ref) {
			t.Fatalf("workers=%d: aggregate sweep stats diverged from 1-worker run:\n got %+v\nwant %+v",
				workers, stats, ref)
		}
	}
}
