package harness

import (
	"fmt"
	"sort"

	"repro/internal/abba"
	"repro/internal/coin"
	"repro/internal/gather"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// The Sweeper layer: statistical-scale protocol execution. Each SweepXxx
// method fans RunRider / gather / ABBA executions out over a seed range via
// sim.Sweep and reduces them — in seed order, so every aggregate and the
// "first failing seed" are worker-count independent — into a compact stats
// struct. The experiments, the cmd binaries and the randomized conformance
// suite all drive their multi-seed loops through this layer.

// Sweeper fans protocol executions out over seed ranges.
type Sweeper struct {
	// Workers bounds the worker pool (0 = GOMAXPROCS).
	Workers int
}

// DefaultSweepWorkers caps the worker pools of the package's own
// experiments (ExpSmallSystems, ExpFaults, …), whose Run signature leaves
// no room to thread a Sweeper through. 0 means GOMAXPROCS. cmd/experiments
// sets it once, from its -workers flag, before running anything.
var DefaultSweepWorkers int

// SweepFailure names the first seed (in seed order) whose run failed its
// check or panicked.
type SweepFailure struct {
	Seed int64
	Err  error
}

// String implements fmt.Stringer.
func (f *SweepFailure) String() string {
	return fmt.Sprintf("seed %d: %v", f.Seed, f.Err)
}

// foldFailures walks a sweep in seed order and accounts panics and
// per-run check errors.
func foldFailures[T any](res *sim.SweepResult[T], errOf func(T) error) (failures int, first *SweepFailure) {
	for i := range res.Values {
		var err error
		if p := res.PanicAt(i); p != nil {
			err = p
		} else if e := errOf(res.Values[i]); e != nil {
			err = e
		}
		if err != nil {
			failures++
			if first == nil {
				first = &SweepFailure{Seed: res.Seeds[i], Err: err}
			}
		}
	}
	return failures, first
}

// Rider sweeps. -----------------------------------------------------------

// riderRun is the per-seed record a rider sweep reduces over.
type riderRun struct {
	err          error
	nodes        int
	decidedNodes int
	maxCommits   int
	nodeCommits  int
	nodeWaves    int
	medianBlocks int
	hitLimit     bool
	endTime      sim.VirtualTime
	metrics      *sim.Metrics
}

// RiderSweepStats aggregates a multi-seed consensus sweep. The counters are
// sums over the completed runs; divide by Runs for per-run means.
type RiderSweepStats struct {
	// Seeds is the number of seeds swept; Runs the number that completed
	// (panicked seeds excluded). Every seed either passes or counts in
	// Failures, so "seeds passed" is Seeds - Failures.
	Seeds int
	Runs  int
	// Failures counts seeds whose run failed its check or panicked; First
	// names the earliest one in seed order.
	Failures int
	First    *SweepFailure

	// Nodes / DecidedNodes count protocol (non-faulty) nodes across runs,
	// and how many of them decided at least one wave.
	Nodes, DecidedNodes int
	// MaxCommits sums each run's maximum commit count across nodes.
	MaxCommits int
	// NodeCommits / NodeWaves sum commits and configured waves over every
	// protocol node — their ratio is the empirical waves-per-commit of
	// Lemma 4.4.
	NodeCommits, NodeWaves int
	// MedianBlocks sums each run's median node's delivered block count.
	MedianBlocks int
	// HitLimits counts runs truncated at their MaxEvents budget instead
	// of reaching quiescence — a non-zero value flags a runaway schedule
	// (or a budget set too low) somewhere in the sweep.
	HitLimits int
	// EndTime sums virtual completion times.
	EndTime sim.VirtualTime
	// Metrics is the merged network traffic of all completed runs.
	Metrics *sim.Metrics
}

// WavesPerCommit returns the sweep-wide empirical waves-per-commit
// (ok=false if nothing committed).
func (s RiderSweepStats) WavesPerCommit() (float64, bool) {
	if s.NodeCommits == 0 {
		return 0, false
	}
	return float64(s.NodeWaves) / float64(s.NodeCommits), true
}

// SweepRider runs mk(seed) through RunRider for every seed and aggregates.
// check, if non-nil, is evaluated against every completed run; the first
// failure (in seed order) lands in Stats.First.
func (s Sweeper) SweepRider(seeds []int64, mk func(seed int64) RiderConfig, check func(RiderResult) error) RiderSweepStats {
	res := sim.Sweep(seeds, s.Workers, func(seed int64) riderRun {
		cfg := mk(seed)
		r := RunRider(cfg)
		run := riderRun{
			nodes:    len(r.Nodes),
			hitLimit: r.HitLimit,
			endTime:  r.EndTime,
			metrics:  r.Metrics,
		}
		var blocks []int
		//lint:ordered commutative counters/latches; blocks is sorted before use
		for _, nr := range r.Nodes {
			if nr.DecidedWave > 0 {
				run.decidedNodes++
			}
			if len(nr.Commits) > run.maxCommits {
				run.maxCommits = len(nr.Commits)
			}
			run.nodeCommits += len(nr.Commits)
			run.nodeWaves += cfg.NumWaves
			blocks = append(blocks, len(nr.Blocks))
		}
		if len(blocks) > 0 {
			sort.Ints(blocks)
			run.medianBlocks = blocks[len(blocks)/2]
		}
		if check != nil {
			run.err = check(r)
		}
		return run
	})

	stats := sim.Reduce(res, RiderSweepStats{Metrics: sim.MergeMetrics()}, func(acc RiderSweepStats, _ int64, run riderRun) RiderSweepStats {
		acc.Runs++
		acc.Nodes += run.nodes
		acc.DecidedNodes += run.decidedNodes
		acc.MaxCommits += run.maxCommits
		acc.NodeCommits += run.nodeCommits
		acc.NodeWaves += run.nodeWaves
		acc.MedianBlocks += run.medianBlocks
		if run.hitLimit {
			acc.HitLimits++
		}
		acc.EndTime += run.endTime
		acc.Metrics = sim.MergeMetrics(acc.Metrics, run.metrics)
		return acc
	})
	stats.Seeds = len(res.Seeds)
	stats.Failures, stats.First = foldFailures(res, func(r riderRun) error { return r.err })
	return stats
}

// Gather sweeps. ----------------------------------------------------------

// gatherRun is the per-seed record a gather sweep reduces over.
type gatherRun struct {
	err        error
	delivered  int
	commonCore bool
	hitLimit   bool
	endTime    sim.VirtualTime
	metrics    *sim.Metrics
}

// GatherSweepStats aggregates a multi-seed gather sweep. Seeds/Runs/
// Failures follow the RiderSweepStats conventions.
type GatherSweepStats struct {
	Seeds    int
	Runs     int
	Failures int
	First    *SweepFailure

	// Delivered counts processes that g-delivered, across runs.
	Delivered int
	// CommonCores counts runs whose outputs contained a non-empty common
	// core (the §3 soundness criterion).
	CommonCores int
	// HitLimits counts runs truncated at their MaxEvents budget.
	HitLimits int
	EndTime   sim.VirtualTime
	Metrics   *sim.Metrics
}

// SweepGather runs mk(seed) through gather.RunCluster for every seed. Each
// run's outputs are analyzed for a common core among all processes; check,
// if non-nil, can impose stricter per-run conditions (it receives the
// run's config because gather.RunResult does not embed it).
func (s Sweeper) SweepGather(seeds []int64, mk func(seed int64) gather.RunConfig, check func(gather.RunConfig, gather.RunResult) error) GatherSweepStats {
	res := sim.Sweep(seeds, s.Workers, func(seed int64) gatherRun {
		cfg := mk(seed)
		r := gather.RunCluster(cfg)
		n := cfg.Trust.N()
		core := gather.AnalyzeCommonCore(n, r.SSnapshots, r.Outputs, types.FullSet(n))
		run := gatherRun{
			delivered:  len(r.Outputs),
			commonCore: !core.IsEmpty(),
			hitLimit:   r.HitLimit,
			endTime:    r.EndTime,
			metrics:    r.Metrics,
		}
		if check != nil {
			run.err = check(cfg, r)
		}
		return run
	})

	stats := sim.Reduce(res, GatherSweepStats{Metrics: sim.MergeMetrics()}, func(acc GatherSweepStats, _ int64, run gatherRun) GatherSweepStats {
		acc.Runs++
		acc.Delivered += run.delivered
		if run.commonCore {
			acc.CommonCores++
		}
		if run.hitLimit {
			acc.HitLimits++
		}
		acc.EndTime += run.endTime
		acc.Metrics = sim.MergeMetrics(acc.Metrics, run.metrics)
		return acc
	})
	stats.Seeds = len(res.Seeds)
	stats.Failures, stats.First = foldFailures(res, func(r gatherRun) error { return r.err })
	return stats
}

// ABBA sweeps. -------------------------------------------------------------

// ABBAConfig configures one binary-agreement cluster execution for
// RunABBA/SweepABBA.
type ABBAConfig struct {
	Trust quorum.Assumption
	// Inputs yields each process's proposal (nil = p mod 2).
	Inputs func(p types.ProcessID) int
	// Seed drives the network schedule; CoinSeed the common coin.
	Seed, CoinSeed int64
	// Latency is the network model (default uniform 1..20).
	Latency sim.LatencyModel
	// Fault is an optional scenario fault plane (see sim.FaultPlane).
	Fault sim.FaultPlane
	// MaxEvents bounds the simulation (0 = the generous DefaultMaxEvents,
	// < 0 = unbounded); ABBAResult.HitLimit reports a truncated run.
	MaxEvents int
	// DeliveryWorkers opts the run into the simulator's parallel
	// same-time delivery (0 = the package-level DefaultDeliveryWorkers,
	// < 0 = force serial).
	DeliveryWorkers int
}

// ABBAResult is the outcome of one binary-agreement cluster execution.
type ABBAResult struct {
	// Decisions maps each decided process to its value; Rounds to the
	// round it decided in.
	Decisions map[types.ProcessID]int
	Rounds    map[types.ProcessID]int
	Undecided int
	Metrics   *sim.Metrics
	EndTime   sim.VirtualTime
	// HitLimit reports that the run stopped at the MaxEvents budget with
	// deliveries still pending.
	HitLimit bool
}

// CheckAgreement verifies that every decided process decided the same
// value and that nobody is left undecided.
func (r ABBAResult) CheckAgreement() error {
	if r.Undecided > 0 {
		return fmt.Errorf("abba: %d processes undecided", r.Undecided)
	}
	decided := -1
	for _, p := range sortedPIDs(r.Decisions) {
		v := r.Decisions[p]
		if decided == -1 {
			decided = v
		} else if v != decided {
			return fmt.Errorf("abba agreement violated: %v decided %d, another process decided %d", p, v, decided)
		}
	}
	return nil
}

func sortedPIDs(m map[types.ProcessID]int) []types.ProcessID {
	out := make([]types.ProcessID, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RunABBA executes one binary-agreement cluster to quiescence.
func RunABBA(cfg ABBAConfig) ABBAResult {
	n := cfg.Trust.N()
	if cfg.Latency == nil {
		cfg.Latency = sim.UniformLatency{Min: 1, Max: 20}
	}
	inputs := cfg.Inputs
	if inputs == nil {
		inputs = func(p types.ProcessID) int { return int(p) % 2 }
	}
	nodes := make([]sim.Node, n)
	raw := make([]*abba.Node, n)
	for i := range nodes {
		nd := abba.NewNode(abba.Config{
			Trust: cfg.Trust,
			Coin:  coin.NewPRF(cfg.CoinSeed, n),
			Input: inputs(types.ProcessID(i)),
		})
		nodes[i] = nd
		raw[i] = nd
	}
	limit := sim.ResolveEventBudget(cfg.MaxEvents)
	r := sim.NewRunner(sim.Config{
		N: n, Seed: cfg.Seed, Latency: cfg.Latency, Fault: cfg.Fault,
		DeliveryWorkers: resolveDeliveryWorkers(cfg.DeliveryWorkers),
	}, nodes)
	r.Run(limit)

	res := ABBAResult{
		Decisions: map[types.ProcessID]int{},
		Rounds:    map[types.ProcessID]int{},
		Metrics:   r.Metrics(),
		EndTime:   r.Now(),
		HitLimit:  limit > 0 && r.Pending() > 0,
	}
	for i, nd := range raw {
		if v, ok := nd.Decided(); ok {
			res.Decisions[types.ProcessID(i)] = v
			res.Rounds[types.ProcessID(i)] = nd.DecidedRound()
		} else {
			res.Undecided++
		}
	}
	return res
}

// ABBASweepStats aggregates a multi-seed binary-agreement sweep. Seeds/
// Runs/Failures follow the RiderSweepStats conventions.
type ABBASweepStats struct {
	Seeds    int
	Runs     int
	Failures int
	First    *SweepFailure

	// Decided / Undecided count processes across runs; TotalRounds sums
	// decision rounds (TotalRounds/Decided is the mean decision latency).
	Decided, Undecided int
	TotalRounds        int
	// HitLimits counts runs truncated at their MaxEvents budget.
	HitLimits int
	EndTime   sim.VirtualTime
	Metrics   *sim.Metrics
}

// abbaRun is the per-seed record an ABBA sweep reduces over.
type abbaRun struct {
	err         error
	decided     int
	undecided   int
	totalRounds int
	hitLimit    bool
	endTime     sim.VirtualTime
	metrics     *sim.Metrics
}

// SweepABBA runs mk(seed) through RunABBA for every seed. Agreement is
// always checked; check, if non-nil, adds further per-run conditions.
func (s Sweeper) SweepABBA(seeds []int64, mk func(seed int64) ABBAConfig, check func(ABBAConfig, ABBAResult) error) ABBASweepStats {
	res := sim.Sweep(seeds, s.Workers, func(seed int64) abbaRun {
		cfg := mk(seed)
		r := RunABBA(cfg)
		run := abbaRun{
			decided:   len(r.Decisions),
			undecided: r.Undecided,
			hitLimit:  r.HitLimit,
			endTime:   r.EndTime,
			metrics:   r.Metrics,
		}
		for _, rounds := range r.Rounds {
			run.totalRounds += rounds
		}
		run.err = r.CheckAgreement()
		if run.err == nil && check != nil {
			run.err = check(cfg, r)
		}
		return run
	})

	stats := sim.Reduce(res, ABBASweepStats{Metrics: sim.MergeMetrics()}, func(acc ABBASweepStats, _ int64, run abbaRun) ABBASweepStats {
		acc.Runs++
		acc.Decided += run.decided
		acc.Undecided += run.undecided
		acc.TotalRounds += run.totalRounds
		if run.hitLimit {
			acc.HitLimits++
		}
		acc.EndTime += run.endTime
		acc.Metrics = sim.MergeMetrics(acc.Metrics, run.metrics)
		return acc
	})
	stats.Seeds = len(res.Seeds)
	stats.Failures, stats.First = foldFailures(res, func(r abbaRun) error { return r.err })
	return stats
}
