package harness

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/acs"
	"repro/internal/gather"
	"repro/internal/quorum"
	"repro/internal/rider"
	"repro/internal/sim"
	"repro/internal/types"
)

// Extension experiments beyond the paper's own artifacts: quantifying the
// §2.4 gather-vs-ACS distinction, the binding gather's extra round, and the
// garbage-collection ablation of the §4.5 memory caveat.

// ExtensionExperiments returns the additional experiments (appended to
// All() by cmd/experiments via AllWithExtensions).
func ExtensionExperiments() []Experiment {
	return []Experiment{
		{"acs", "§2.4 distinction: gather (common core inside outputs) vs ACS (identical outputs)", ExpACS},
		{"binding", "§2.4 binding gather: one extra round fixes the core at first delivery", ExpBinding},
		{"gc", "§4.5 memory: garbage-collected DAG vs unbounded DAG-Rider", ExpGC},
		{"latency", "Vertex commit latency in rounds (wave-structure cost)", ExpLatency},
		{"batching", "Throughput vs block size (dissemination/ordering decoupling)", ExpBatching},
		{"scenarios", "Adversarial scenario registry: Definition 4.1 properties per built-in scenario", ExpScenarios},
	}
}

// AllWithExtensions returns every experiment, paper artifacts first.
func AllWithExtensions() []Experiment {
	return append(All(), ExtensionExperiments()...)
}

// ExpACS runs gather and ACS on the same system and compares output
// dispersion and cost (E11).
func ExpACS() string {
	trust := quorum.NewThreshold(7, 2)
	lat := sim.UniformLatency{Min: 1, Max: 50}
	var b strings.Builder

	// Gather: count distinct outputs.
	gres := gather.RunCluster(gather.RunConfig{
		Kind: gather.KindConstantRound, Trust: trust, Mode: gather.UseReliable,
		Latency: lat, Seed: 3,
	})
	distinct := map[string]bool{}
	//lint:ordered builds a set; only its cardinality is reported
	for _, out := range gres.Outputs {
		distinct[out.String()] = true
	}
	fmt.Fprintf(&b, "gather (Algorithm 3) on threshold(7,2): %d distinct output sets across 7 processes\n", len(distinct))

	// ACS: all outputs identical by construction; measure the extra cost.
	n := trust.N()
	nodes := make([]sim.Node, n)
	raw := make([]*acs.Node, n)
	for i := range nodes {
		nd := acs.NewNode(acs.Config{
			Trust: trust, Input: gather.InputValue(types.ProcessID(i)),
			CoinSeed: 9, Mode: gather.UseReliable,
		})
		nodes[i] = nd
		raw[i] = nd
	}
	r := sim.NewRunner(sim.Config{N: n, Seed: 3, Latency: lat}, nodes)
	r.Run(0)
	acsDistinct := map[string]bool{}
	finished := 0
	for _, nd := range raw {
		if out, ok := nd.Output(); ok {
			acsDistinct[out.String()] = true
			finished++
		}
	}
	fmt.Fprintf(&b, "ACS (gather + n binary agreements): %d/%d finished, %d distinct output sets\n",
		finished, n, len(acsDistinct))
	fmt.Fprintf(&b, "cost: gather %d msgs / vtime %d; ACS %d msgs / vtime %d\n",
		gres.Metrics.MessagesSent, gres.EndTime, r.Metrics().MessagesSent, r.Now())
	b.WriteString("\npaper §2.4: gather is deterministic-constant-round but only guarantees a common core\n" +
		"inside possibly different outputs; ACS is consensus-equivalent (identical outputs,\n" +
		"expected-constant time) and costs correspondingly more.\n")
	return b.String()
}

// ExpBinding compares Algorithm 3 with its binding variant (E12).
func ExpBinding() string {
	sys := quorum.Counterexample()
	lat := sim.UniformLatency{Min: 1, Max: 10}
	n := sys.N()

	plain := gather.RunCluster(gather.RunConfig{
		Kind: gather.KindConstantRound, Trust: sys, Mode: gather.UsePlain, Latency: lat, Seed: 3,
	})

	nodes := make([]sim.Node, n)
	raw := make([]*gather.BindingNode, n)
	for i := range nodes {
		nd := gather.NewBindingNode(gather.Config{Trust: sys, Input: gather.InputValue(types.ProcessID(i)), Mode: gather.UsePlain})
		nodes[i] = nd
		raw[i] = nd
	}
	r := sim.NewRunner(sim.Config{N: n, Seed: 3, Latency: lat}, nodes)
	r.Run(0)
	delivered := 0
	for _, nd := range raw {
		if _, ok := nd.Delivered(); ok {
			delivered++
		}
	}

	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "variant\tdelivered\tmessages\tvirtual time")
	fmt.Fprintf(w, "Algorithm 3\t%d/%d\t%d\t%d\n", len(plain.Outputs), n, plain.Metrics.MessagesSent, plain.EndTime)
	fmt.Fprintf(w, "binding (+1 round)\t%d/%d\t%d\t%d\n", delivered, n, r.Metrics().MessagesSent, r.Now())
	w.Flush()
	b.WriteString("\npaper §2.4 (after Abraham et al.): a binding common core — fixed once the first\n" +
		"correct process delivers, closing Shoup's attack on Tusk — costs one extra round.\n")
	return b.String()
}

// ExpGC compares memory retention with and without garbage collection
// (E13).
func ExpGC() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "mode\twaves\tretained vertices (max node)\tdeliveries identical")
	trust := quorum.NewThreshold(4, 1)

	run := func(gc int) (int, RiderResult) {
		res := RunRider(RiderConfig{
			Kind: Asymmetric, Trust: trust, NumWaves: 16, TxPerBlock: 1,
			Seed: 7, CoinSeed: 7, GCDepth: gc,
		})
		return res.maxVertexCount, res
	}
	fullCount, fullRes := run(0)
	gcCount, gcRes := run(3)
	same := true
	//lint:ordered false-latch over all nodes; the conjunction is order-free
	for p, nr := range fullRes.Nodes {
		g := gcRes.Nodes[p]
		if len(nr.Deliveries) != len(g.Deliveries) {
			same = false
			break
		}
		for i := range nr.Deliveries {
			if nr.Deliveries[i].Ref != g.Deliveries[i].Ref {
				same = false
				break
			}
		}
	}
	fmt.Fprintf(w, "unbounded (paper)\t16\t%d\t—\n", fullCount)
	fmt.Fprintf(w, "GC depth 3\t16\t%d\t%v\n", gcCount, same)
	w.Flush()
	b.WriteString("\npaper §4.5: DAG-Rider needs unbounded memory for fairness; Bullshark-style GC of\n" +
		"fully delivered rounds bounds retention without changing any delivery.\n")
	return b.String()
}

// representativeNode returns the lowest-PID node's result — a
// deterministic stand-in for "one representative node". (It used to be
// whichever node map iteration yielded first, so repeated runs of the
// same seed could report different figures.)
func representativeNode(nodes map[types.ProcessID]NodeResult) NodeResult {
	best := types.ProcessID(-1)
	//lint:ordered min over keys is order-insensitive
	for p := range nodes {
		if best < 0 || p < best {
			best = p
		}
	}
	return nodes[best]
}

// ExpLatency measures per-vertex commit latency in rounds — the quantity
// DAG-protocol papers optimize (E14). Latency of a delivered vertex =
// round(committing wave, 4) − vertex round: how many rounds after its
// creation the vertex's transactions became final.
func ExpLatency() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\tprotocol\tmean latency (rounds)\tp50\tmax\tvertices")
	for _, spec := range []struct {
		name  string
		kind  RiderKind
		trust quorum.Assumption
	}{
		{"threshold(4,1)", Symmetric, quorum.NewThreshold(4, 1)},
		{"threshold(4,1)", Asymmetric, quorum.NewThreshold(4, 1)},
		{"threshold(7,2)", Symmetric, quorum.NewThreshold(7, 2)},
		{"threshold(7,2)", Asymmetric, quorum.NewThreshold(7, 2)},
	} {
		res := RunRider(RiderConfig{
			Kind: spec.kind, Trust: spec.trust, NumWaves: 12, TxPerBlock: 1,
			Seed: 5, CoinSeed: 5,
		})
		var lats []int
		for _, d := range representativeNode(res.Nodes).Deliveries {
			if d.Ref.Round < 1 {
				continue // genesis
			}
			lats = append(lats, rider.WaveRound(d.Wave, 4)-d.Ref.Round)
		}
		if len(lats) == 0 {
			continue
		}
		sort.Ints(lats)
		sum := 0
		for _, l := range lats {
			sum += l
		}
		fmt.Fprintf(w, "%s\t%s\t%.2f\t%d\t%d\t%d\n",
			spec.name, spec.kind, float64(sum)/float64(len(lats)),
			lats[len(lats)/2], lats[len(lats)-1], len(lats))
	}
	w.Flush()
	b.WriteString("\nlatency is bounded by the wave structure: a round-1 vertex of a committing wave\n" +
		"waits 3 rounds, plus whole skipped waves when the commit rule misses (DAG-Rider's\n" +
		"expected 3/2-wave commit cadence keeps the tail short).\n")
	return b.String()
}

// ExpBatching sweeps the block size and reports throughput — the
// dissemination/ordering decoupling argument (paper §1: DAGs improve
// throughput "by concurrently batching transactions") made measurable
// (E15).
func ExpBatching() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "tx/block\ttx delivered\tvtime\ttx per vtime\tbytes/tx")
	trust := quorum.NewThreshold(4, 1)
	for _, batch := range []int{1, 4, 16, 64} {
		res := RunRider(RiderConfig{
			Kind: Asymmetric, Trust: trust, NumWaves: 8, TxPerBlock: batch,
			Seed: 3, CoinSeed: 3,
		})
		med := len(representativeNode(res.Nodes).Blocks)
		perTime := float64(med) / float64(res.EndTime)
		bytesPerTx := 0.0
		if med > 0 {
			bytesPerTx = float64(res.Metrics.BytesSent) / float64(med)
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%.3f\t%.0f\n", batch, med, res.EndTime, perTime, bytesPerTx)
	}
	w.Flush()
	b.WriteString("\nthroughput scales with the batch while the round/wave cadence (and hence latency)\n" +
		"stays fixed — the decoupling of dissemination from ordering that motivates DAG\n" +
		"protocols (§1). Per-transaction byte cost falls as fixed vertex overhead amortizes.\n")
	return b.String()
}
