// Package harness runs whole-cluster executions of the consensus protocols
// and regenerates every figure and quantitative claim of the paper (see
// DESIGN.md's experiment index E1–E10). It is the engine behind
// cmd/experiments, the benchmarks, and the protocol-level tests.
package harness

import (
	"fmt"
	"sort"

	"repro/internal/baseline"
	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/quorum"
	"repro/internal/rider"
	"repro/internal/sim"
	"repro/internal/types"
)

// RiderKind selects a consensus protocol.
type RiderKind int

const (
	// Symmetric is the DAG-Rider baseline (requires threshold trust).
	Symmetric RiderKind = iota
	// Asymmetric is the paper's protocol (Algorithms 4–6).
	Asymmetric
)

// String implements fmt.Stringer.
func (k RiderKind) String() string {
	if k == Symmetric {
		return "symmetric"
	}
	return "asymmetric"
}

// RiderConfig configures one consensus execution.
type RiderConfig struct {
	Kind RiderKind
	// Trust is the quorum assumption. Symmetric runs require a
	// quorum.Threshold.
	Trust quorum.Assumption
	// NumWaves bounds the execution: nodes stop creating vertices after
	// round 4*NumWaves.
	NumWaves int
	// TxPerBlock is the synthetic workload's block size (0 = empty
	// blocks).
	TxPerBlock int
	// Seed drives the network schedule; CoinSeed the leader election.
	Seed, CoinSeed int64
	// Latency is the network model (default uniform 1..20).
	Latency sim.LatencyModel
	// Faulty replaces the given processes with faulty behaviours.
	Faulty map[types.ProcessID]sim.Node
	// Fault is an optional scenario fault plane applied at the simulator's
	// send-commit and delivery points (see sim.FaultPlane).
	Fault sim.FaultPlane
	// Wrap, if non-nil, wraps every constructed node (after Faulty
	// substitution) — the scenario engine's hook for crash/churn/Byzantine
	// behaviours. Result collection unwraps through sim.Unwrap, so a
	// wrapped protocol node's observable state is still reported.
	Wrap func(p types.ProcessID, inner sim.Node) sim.Node
	// MaxEvents bounds the simulation (0 = the generous DefaultMaxEvents,
	// < 0 = unbounded). The default keeps a non-quiescing schedule from
	// hanging a sweep forever; RiderResult.HitLimit reports a truncated
	// run.
	MaxEvents int
	// DeliveryWorkers opts the run into the simulator's parallel
	// same-time delivery (0 = the package-level DefaultDeliveryWorkers,
	// < 0 = force serial; see sim.Config.DeliveryWorkers).
	DeliveryWorkers int
	// RevealedCoin enables the share-gated coin in the asymmetric
	// protocol (ignored by the symmetric baseline).
	RevealedCoin bool
	// GCDepth enables DAG garbage collection in the asymmetric protocol
	// (0 = unbounded, the paper's protocol).
	GCDepth int
}

// NodeResult is the observable outcome at one correct process.
type NodeResult struct {
	Deliveries  []rider.Delivery
	Commits     []rider.CommitEvent
	Round       int
	DecidedWave int
	Blocks      []string
}

// DefaultMaxEvents is the event budget RunRider and RunABBA apply when
// the config leaves MaxEvents at 0 — the simulator-wide default shared by
// every protocol runner.
const DefaultMaxEvents = sim.DefaultEventBudget

// DefaultDeliveryWorkers, when > 0, opts every execution whose config
// leaves DeliveryWorkers at 0 into the simulator's parallel same-time
// delivery with that many workers. The cmd binaries set it once from
// their -delivery-workers flag; configs force serial with a negative
// DeliveryWorkers.
var DefaultDeliveryWorkers int

// resolveDeliveryWorkers applies the DefaultDeliveryWorkers fallback.
func resolveDeliveryWorkers(configured int) int {
	if configured == 0 {
		return DefaultDeliveryWorkers
	}
	if configured < 0 {
		return 0
	}
	return configured
}

// RiderResult is the outcome of one cluster execution.
type RiderResult struct {
	// Nodes holds per-process results for processes that ran the real
	// protocol (faulty stand-ins are omitted).
	Nodes   map[types.ProcessID]NodeResult
	Metrics *sim.Metrics
	EndTime sim.VirtualTime
	Config  RiderConfig
	// HitLimit reports that the run stopped at the MaxEvents budget with
	// deliveries still pending, instead of reaching quiescence.
	HitLimit bool

	// maxVertexCount is the largest retained DAG size across nodes (for
	// the GC experiment).
	maxVertexCount int
}

// RunRider executes one consensus cluster to quiescence and collects the
// per-node results.
func RunRider(cfg RiderConfig) RiderResult {
	n := cfg.Trust.N()
	if cfg.Latency == nil {
		cfg.Latency = sim.UniformLatency{Min: 1, Max: 20}
	}
	c := coin.NewPRF(cfg.CoinSeed, n)
	maxRound := 4 * cfg.NumWaves

	nodes := make([]sim.Node, n)
	for i := range nodes {
		var w rider.Workload
		if cfg.TxPerBlock > 0 {
			w = rider.SyntheticWorkload{Self: types.ProcessID(i), TxPerBlock: cfg.TxPerBlock}
		}
		if cfg.Kind == Symmetric {
			th, ok := cfg.Trust.(quorum.Threshold)
			if !ok {
				panic("harness: symmetric rider requires quorum.Threshold trust")
			}
			nodes[i] = baseline.NewNode(baseline.Config{
				N: n, F: th.F(), Coin: c, Workload: w, MaxRound: maxRound,
			})
		} else {
			nodes[i] = core.NewNode(core.Config{
				Trust: cfg.Trust, Coin: c, Workload: w, MaxRound: maxRound,
				RevealedCoin: cfg.RevealedCoin, GCDepth: cfg.GCDepth,
			})
		}
	}
	for p, f := range cfg.Faulty {
		nodes[p] = f
	}
	if cfg.Wrap != nil {
		for i := range nodes {
			nodes[i] = cfg.Wrap(types.ProcessID(i), nodes[i])
		}
	}

	limit := sim.ResolveEventBudget(cfg.MaxEvents)
	r := sim.NewRunner(sim.Config{
		N: n, Seed: cfg.Seed, Latency: cfg.Latency, Fault: cfg.Fault,
		DeliveryWorkers: resolveDeliveryWorkers(cfg.DeliveryWorkers),
	}, nodes)
	r.Run(limit)

	res := RiderResult{
		Nodes:    map[types.ProcessID]NodeResult{},
		Metrics:  r.Metrics(),
		EndTime:  r.Now(),
		Config:   cfg,
		HitLimit: limit > 0 && r.Pending() > 0,
	}
	for i, nd := range nodes {
		p := types.ProcessID(i)
		switch v := sim.Unwrap(nd).(type) {
		case *core.Node:
			res.Nodes[p] = NodeResult{
				Deliveries:  v.Deliveries(),
				Commits:     v.Commits(),
				Round:       v.Round(),
				DecidedWave: v.DecidedWave(),
				Blocks:      v.DeliveredBlocks(),
			}
			if c := v.DAG().VertexCount(); c > res.maxVertexCount {
				res.maxVertexCount = c
			}
		case *baseline.Node:
			res.Nodes[p] = NodeResult{
				Deliveries:  v.Deliveries(),
				Commits:     v.Commits(),
				Round:       v.Round(),
				DecidedWave: v.DecidedWave(),
				Blocks:      v.DeliveredBlocks(),
			}
			if c := v.DAG().VertexCount(); c > res.maxVertexCount {
				res.maxVertexCount = c
			}
		}
	}
	return res
}

// Property checks (Definition 4.1). --------------------------------------

// CheckTotalOrder verifies that the delivery sequences of the given
// processes are prefix-compatible: for any two, one's delivered vertex
// sequence is a prefix of the other's. It returns an error naming the
// first divergence.
func (r RiderResult) CheckTotalOrder(within types.Set) error {
	var longest []rider.Delivery
	var owner types.ProcessID
	for _, p := range within.Members() {
		nr, ok := r.Nodes[p]
		if !ok {
			continue
		}
		if len(nr.Deliveries) > len(longest) {
			longest = nr.Deliveries
			owner = p
		}
	}
	for _, p := range within.Members() {
		nr, ok := r.Nodes[p]
		if !ok {
			continue
		}
		for i, d := range nr.Deliveries {
			if longest[i].Ref != d.Ref {
				return fmt.Errorf("total order violated: %v delivers %v at %d, %v delivers %v",
					p, d.Ref, i, owner, longest[i].Ref)
			}
		}
	}
	return nil
}

// CheckIntegrity verifies that no process delivered a vertex twice.
func (r RiderResult) CheckIntegrity(within types.Set) error {
	for _, p := range within.Members() {
		nr, ok := r.Nodes[p]
		if !ok {
			continue
		}
		seen := map[dag.VertexRef]bool{}
		for _, d := range nr.Deliveries {
			if seen[d.Ref] {
				return fmt.Errorf("integrity violated: %v delivered %v twice", p, d.Ref)
			}
			seen[d.Ref] = true
		}
	}
	return nil
}

// CheckAgreement verifies that every vertex delivered by any process in
// `within` up to the minimum decided wave is delivered by all of them.
// (Agreement is eventual; bounded runs can only check the common decided
// prefix.)
func (r RiderResult) CheckAgreement(within types.Set) error {
	minWave := -1
	for _, p := range within.Members() {
		nr, ok := r.Nodes[p]
		if !ok {
			continue
		}
		if minWave == -1 || nr.DecidedWave < minWave {
			minWave = nr.DecidedWave
		}
	}
	if minWave <= 0 {
		return nil // nothing commonly decided yet
	}
	// Collect each process's delivered set up to minWave.
	sets := map[types.ProcessID]map[dag.VertexRef]bool{}
	for _, p := range within.Members() {
		nr, ok := r.Nodes[p]
		if !ok {
			continue
		}
		s := map[dag.VertexRef]bool{}
		for _, d := range nr.Deliveries {
			if d.Wave <= minWave {
				s[d.Ref] = true
			}
		}
		sets[p] = s
	}
	var first types.ProcessID = -1
	for _, p := range within.Members() {
		if _, ok := sets[p]; ok {
			first = p
			break
		}
	}
	if first < 0 {
		return nil
	}
	// Walk processes in PID order and refs in sorted order so a violation
	// is always attributed to the same process and vertex on every run.
	refs := make([]dag.VertexRef, 0, len(sets[first]))
	for ref := range sets[first] {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Round != refs[j].Round {
			return refs[i].Round < refs[j].Round
		}
		return refs[i].Source < refs[j].Source
	})
	for _, p := range within.Members() {
		s, ok := sets[p]
		if !ok {
			continue
		}
		if len(s) != len(sets[first]) {
			return fmt.Errorf("agreement violated: %v delivered %d vertices ≤ wave %d, %v delivered %d",
				p, len(s), minWave, first, len(sets[first]))
		}
		for _, ref := range refs {
			if !s[ref] {
				return fmt.Errorf("agreement violated: %v missing %v (wave ≤ %d)", p, ref, minWave)
			}
		}
	}
	return nil
}

// CheckValidity verifies that a vertex proposed by `proposer` at or before
// earlyRound was delivered by every process in `within` that decided at
// least two waves beyond that round (weak edges guarantee inclusion within
// a couple of waves; validity itself is an eventual property).
func (r RiderResult) CheckValidity(within types.Set, proposer types.ProcessID, earlyRound int) error {
	for _, p := range within.Members() {
		nr, ok := r.Nodes[p]
		if !ok {
			continue
		}
		// Only meaningful if p decided well past earlyRound.
		if rider.WaveRound(nr.DecidedWave, 1) <= earlyRound+8 {
			continue
		}
		found := false
		for _, d := range nr.Deliveries {
			if d.Ref.Source == proposer && d.Ref.Round <= earlyRound {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("validity violated: %v (decided wave %d) never delivered an early vertex of %v",
				p, nr.DecidedWave, proposer)
		}
	}
	return nil
}

// CheckCommittedLeaderChain verifies the Lemma 4.2 invariant at one
// process: every later committed leader has a strong path to every earlier
// committed leader. The check runs against the process's own commits, whose
// leader stack construction makes the property equivalent to consecutive
// reachability.
func CheckCommittedLeaderChain(d *dag.DAG, commits []rider.CommitEvent) error {
	for i := 1; i < len(commits); i++ {
		if !d.StrongPath(commits[i].Leader, commits[i-1].Leader) {
			return fmt.Errorf("Lemma 4.2 violated: leader %v (wave %d) has no strong path to %v (wave %d)",
				commits[i].Leader, commits[i].Wave, commits[i-1].Leader, commits[i-1].Wave)
		}
	}
	return nil
}

// WavesPerCommit returns totalWaves / commits at the given process — the
// empirical quantity bounded by |P|/c(Q) in Lemma 4.4. It returns ok=false
// if the process never committed.
func (r RiderResult) WavesPerCommit(p types.ProcessID) (float64, bool) {
	nr, ok := r.Nodes[p]
	if !ok || len(nr.Commits) == 0 {
		return 0, false
	}
	return float64(r.Config.NumWaves) / float64(len(nr.Commits)), true
}

// Throughput returns delivered transactions per unit of virtual time at
// process p.
func (r RiderResult) Throughput(p types.ProcessID) float64 {
	nr, ok := r.Nodes[p]
	if !ok || r.EndTime == 0 {
		return 0
	}
	return float64(len(nr.Blocks)) / float64(r.EndTime)
}
