package harness

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

func TestAllExperimentsRegistered(t *testing.T) {
	exps := All()
	if len(exps) != 10 {
		t.Fatalf("expected 10 experiments, got %d", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Find("fig4"); !ok {
		t.Error("Find(fig4) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) should fail")
	}
}

func TestExpFig1Content(t *testing.T) {
	out := ExpFig1()
	for _, want := range []string{"B3 condition satisfied: true", "valid asymmetric quorum system: true", "smallest quorum c(Q) = 6"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1 output missing %q", want)
		}
	}
}

func TestExpFig4ReproducesLemma32(t *testing.T) {
	out := ExpFig4()
	if !strings.Contains(out, "S sets contained in every U set: {}") {
		t.Errorf("fig4 should report an empty candidate set:\n%s", out)
	}
	if !strings.Contains(out, "matches abstract execution: true") {
		t.Errorf("message-level run should match the abstract execution:\n%s", out)
	}
	if !strings.Contains(out, "common core candidates: {} (empty") {
		t.Errorf("message-level candidates should be empty:\n%s", out)
	}
}

func TestExpSmallSystemsNoViolations(t *testing.T) {
	out := ExpSmallSystems()
	if !strings.Contains(out, " 0 violations") {
		t.Errorf("small-system search must find no violations:\n%s", out)
	}
}

func TestExpLogRounds(t *testing.T) {
	out := ExpLogRounds()
	if !strings.Contains(out, "found=true") {
		t.Errorf("log-rounds experiment should find a common core:\n%s", out)
	}
}

func TestExpGatherComparisonShape(t *testing.T) {
	out := ExpGatherComparison()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var threeAdv, constAdv string
	for _, l := range lines {
		if strings.HasPrefix(l, "three-round") && strings.Contains(l, "adversarial") {
			threeAdv = l
		}
		if strings.HasPrefix(l, "constant-round") && strings.Contains(l, "adversarial") {
			constAdv = l
		}
	}
	if threeAdv == "" || constAdv == "" {
		t.Fatalf("missing rows:\n%s", out)
	}
	if !strings.Contains(threeAdv, "false") {
		t.Errorf("three-round adversarial row should have no common core: %s", threeAdv)
	}
	if !strings.Contains(constAdv, "true") {
		t.Errorf("constant-round adversarial row should have a common core: %s", constAdv)
	}
}

func TestRunRiderPanicsOnBadSymmetricTrust(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("symmetric rider with non-threshold trust should panic")
		}
	}()
	RunRider(RiderConfig{Kind: Symmetric, Trust: quorum.Counterexample(), NumWaves: 1})
}

func TestWavesPerCommitAccessor(t *testing.T) {
	res := RunRider(RiderConfig{
		Kind: Asymmetric, Trust: quorum.NewThreshold(4, 1), NumWaves: 6, Seed: 1, CoinSeed: 1,
	})
	found := false
	for p := range res.Nodes {
		if w, ok := res.WavesPerCommit(p); ok {
			if w < 1 {
				t.Errorf("waves/commit %f < 1 is impossible", w)
			}
			found = true
		}
	}
	if !found {
		t.Error("no node committed")
	}
	if _, ok := res.WavesPerCommit(types.ProcessID(99)); ok {
		t.Error("unknown process should not report commits")
	}
	if tp := res.Throughput(0); tp < 0 {
		t.Errorf("throughput %f", tp)
	}
}

func TestCheckersCatchViolations(t *testing.T) {
	// Construct a synthetic result with a total-order violation.
	res := RunRider(RiderConfig{
		Kind: Asymmetric, Trust: quorum.NewThreshold(4, 1), NumWaves: 4,
		TxPerBlock: 1, Seed: 5, CoinSeed: 5,
	})
	// Tamper: swap two deliveries at node 0 if it has at least 2.
	nr := res.Nodes[0]
	if len(nr.Deliveries) >= 2 {
		nr.Deliveries[0], nr.Deliveries[1] = nr.Deliveries[1], nr.Deliveries[0]
		res.Nodes[0] = nr
		if err := res.CheckTotalOrder(types.FullSet(4)); err == nil {
			t.Error("tampered order not detected")
		}
		// Restore and duplicate for integrity check.
		nr.Deliveries[0], nr.Deliveries[1] = nr.Deliveries[1], nr.Deliveries[0]
		nr.Deliveries = append(nr.Deliveries, nr.Deliveries[0])
		res.Nodes[0] = nr
		if err := res.CheckIntegrity(types.FullSet(4)); err == nil {
			t.Error("duplicated delivery not detected")
		}
	}
}

func TestExtensionExperimentsRegistered(t *testing.T) {
	exts := ExtensionExperiments()
	if len(exts) != 6 {
		t.Fatalf("expected 6 extension experiments, got %d", len(exts))
	}
	if len(AllWithExtensions()) != len(All())+len(exts) {
		t.Fatal("AllWithExtensions should append extensions")
	}
	if _, ok := Find("gc"); !ok {
		t.Error("Find should locate extension experiments")
	}
}

func TestExpACSIdenticalOutputs(t *testing.T) {
	out := ExpACS()
	if !strings.Contains(out, "7/7 finished, 1 distinct output sets") {
		t.Errorf("ACS outputs should be identical:\n%s", out)
	}
}

func TestExpGCIdenticalDeliveries(t *testing.T) {
	out := ExpGC()
	if !strings.Contains(out, "true") {
		t.Errorf("GC must not change deliveries:\n%s", out)
	}
}

func TestExpBindingDeliversEverywhere(t *testing.T) {
	out := ExpBinding()
	if !strings.Contains(out, "30/30") {
		t.Errorf("binding gather should deliver everywhere:\n%s", out)
	}
}

func TestExpBatchingMonotoneThroughput(t *testing.T) {
	out := ExpBatching()
	if !strings.Contains(out, "64") {
		t.Errorf("batching sweep incomplete:\n%s", out)
	}
}

func TestExpLatencyShape(t *testing.T) {
	out := ExpLatency()
	if !strings.Contains(out, "threshold(4,1)") || !strings.Contains(out, "asymmetric") {
		t.Errorf("latency table incomplete:\n%s", out)
	}
}

// TestRandomizedPropertySweep is the repository's "mini model checker":
// random trust systems, random tolerated faults, random schedules — the
// Definition 4.1 properties must hold in every run.
func TestRandomizedPropertySweep(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	trials := 12
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		var trust quorum.Assumption
		var faulty types.Set
		n := 0
		if trial%2 == 0 {
			// Threshold with random size.
			nf := []struct{ n, f int }{{4, 1}, {5, 1}, {7, 2}}[rng.Intn(3)]
			trust = quorum.NewThreshold(nf.n, nf.f)
			n = nf.n
			faulty = types.NewSet(n)
			for faulty.Count() < rng.Intn(nf.f+1) {
				faulty.Add(types.ProcessID(rng.Intn(n)))
			}
		} else {
			sys, err := quorum.RandomAsymmetric(quorum.RandomAsymmetricConfig{
				N: 6 + rng.Intn(4), NumSets: 2, MaxFault: 2, Seed: rng.Int63(),
			})
			if err != nil {
				continue
			}
			trust = sys
			n = sys.N()
			// Random tolerated fault.
			faulty = types.NewSet(n)
			fps := sys.FailProneSets(types.ProcessID(rng.Intn(n)))
			if len(fps) > 0 && rng.Intn(2) == 0 {
				faulty = fps[rng.Intn(len(fps))]
			}
		}
		within := faulty.Complement()
		if sys, ok := trust.(*quorum.System); ok {
			within = sys.MaximalGuild(faulty)
			if within.IsEmpty() {
				continue
			}
		}
		faultyNodes := map[types.ProcessID]sim.Node{}
		for _, p := range faulty.Members() {
			faultyNodes[p] = sim.MuteNode{}
		}
		res := RunRider(RiderConfig{
			Kind: Asymmetric, Trust: trust, NumWaves: 5, TxPerBlock: 1,
			Seed: rng.Int63(), CoinSeed: rng.Int63(),
			Latency: sim.UniformLatency{Min: 1, Max: sim.VirtualTime(5 + rng.Intn(60))},
			Faulty:  faultyNodes,
		})
		if err := res.CheckTotalOrder(within); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.CheckAgreement(within); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.CheckIntegrity(within); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
