package harness

import (
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/rider"
	"repro/internal/types"
)

// TestRepresentativeNodeIsMinPID pins the deterministic choice behind
// "one representative node" in ExpLatency/ExpBatching: the lowest PID.
// (The old code took the first map-iteration hit, so repeated runs of the
// same seed could report different nodes' figures.)
func TestRepresentativeNodeIsMinPID(t *testing.T) {
	nodes := map[types.ProcessID]NodeResult{
		3: {Round: 3},
		1: {Round: 1},
		2: {Round: 2},
	}
	for i := 0; i < 100; i++ {
		if got := representativeNode(nodes); got.Round != 1 {
			t.Fatalf("representativeNode picked node with Round=%d, want the min-PID node (Round=1)", got.Round)
		}
	}
}

// TestExpBatchingDeterministic pins end-to-end output stability of an
// experiment that reports a single representative node.
func TestExpBatchingDeterministic(t *testing.T) {
	first := ExpBatching()
	if second := ExpBatching(); second != first {
		t.Errorf("ExpBatching output differs between identical runs:\n--- first\n%s\n--- second\n%s", first, second)
	}
}

// TestCheckAgreementAttributionDeterministic pins which process and
// vertex an agreement violation is attributed to: the lowest qualifying
// PID, and the (round, source)-smallest missing vertex. Before the sorted
// walk, map iteration order decided which of several equally guilty
// processes the error named.
func TestCheckAgreementAttributionDeterministic(t *testing.T) {
	refA := dag.VertexRef{Source: 0, Round: 1}
	refB := dag.VertexRef{Source: 1, Round: 1}
	refC := dag.VertexRef{Source: 2, Round: 1}
	deliver := func(refs ...dag.VertexRef) NodeResult {
		nr := NodeResult{DecidedWave: 1}
		for _, ref := range refs {
			nr.Deliveries = append(nr.Deliveries, rider.Delivery{Ref: ref, Wave: 1})
		}
		return nr
	}

	// Both replicas 1 and 2 delivered fewer vertices than replica 0; the
	// error must always name replica 1.
	short := RiderResult{Nodes: map[types.ProcessID]NodeResult{
		0: deliver(refA, refB),
		1: deliver(refA),
		2: deliver(refB),
	}}
	// Replicas 1 and 2 delivered the right count but each misses a
	// different vertex; the error must always name replica 1 missing refB.
	skew := RiderResult{Nodes: map[types.ProcessID]NodeResult{
		0: deliver(refA, refB),
		1: deliver(refA, refC),
		2: deliver(refB, refC),
	}}
	within := types.FullSet(3)

	var firstShort, firstSkew string
	for i := 0; i < 50; i++ {
		errShort := short.CheckAgreement(within)
		errSkew := skew.CheckAgreement(within)
		if errShort == nil || errSkew == nil {
			t.Fatal("violations not detected")
		}
		if i == 0 {
			firstShort, firstSkew = errShort.Error(), errSkew.Error()
			// ProcessID's Stringer is 1-based: PID 1 prints as p2.
			if !strings.Contains(firstShort, "p2 delivered 1 vertices") {
				t.Errorf("short-set violation attributed unexpectedly: %s", firstShort)
			}
			if !strings.Contains(firstSkew, "p2 missing "+refB.String()) {
				t.Errorf("missing-vertex violation attributed unexpectedly: %s", firstSkew)
			}
			continue
		}
		if errShort.Error() != firstShort {
			t.Fatalf("short-set attribution changed between runs:\n%s\n%s", firstShort, errShort)
		}
		if errSkew.Error() != firstSkew {
			t.Fatalf("missing-vertex attribution changed between runs:\n%s\n%s", firstSkew, errSkew)
		}
	}
}
