package harness

import (
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"

	"repro/internal/gather"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// This file regenerates every figure and quantitative claim of the paper.
// Each ExpXxx function returns the printable artifact; cmd/experiments and
// the benchmarks call them. The experiment IDs follow DESIGN.md.

// Experiment couples an ID with its generator, for cmd/experiments.
type Experiment struct {
	ID    string
	Title string
	Run   func() string
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Figure 1: counterexample fail-prone system and canonical quorums", ExpFig1},
		{"fig2", "Figure 2: S sets after round 1 of Algorithm 2", ExpFig2},
		{"fig3", "Figure 3: T sets after round 2 of Algorithm 2", ExpFig3},
		{"fig4", "Figure 4 + Listing 1: U sets and the absent common core (Lemma 3.2)", ExpFig4},
		{"smallsys", "§3.2 claim: systems with <16 processes always reach a common core", ExpSmallSystems},
		{"logrounds", "Appendix A claim: quorum-merge reaches a common core in ~log2(n) rounds", ExpLogRounds},
		{"gather", "Algorithm 3: constant-round asymmetric gather vs Algorithm 2", ExpGatherComparison},
		{"waves", "Lemma 4.4: expected waves per commit vs the |P|/c(Q) bound", ExpCommitWaves},
		{"compare", "Symmetric DAG-Rider vs asymmetric DAG-Rider (threshold systems)", ExpProtocolComparison},
		{"faults", "Definition 4.1 properties under crash and Byzantine faults", ExpFaults},
	}
}

// Find returns the experiment with the given ID (including extensions).
func Find(id string) (Experiment, bool) {
	for _, e := range AllWithExtensions() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ExpFig1 renders the Figure 1 matrix: each row a process, F marking its
// fail-prone set and Q its canonical quorum.
func ExpFig1() string {
	sys := quorum.Counterexample()
	out := quorum.RenderMatrix(sys.N(),
		"Fail-prone system of Figure 1 (rows: processes; F = fail-prone member, Q = canonical quorum member)",
		func(p types.ProcessID) types.Set { return sys.Quorums(p)[0] },
		func(p types.ProcessID) types.Set { return sys.FailProneSets(p)[0] })
	var b strings.Builder
	b.WriteString(out)
	fmt.Fprintf(&b, "\nB3 condition satisfied: %v\n", sys.SatisfiesB3())
	fmt.Fprintf(&b, "valid asymmetric quorum system: %v\n", sys.Validate() == nil)
	fmt.Fprintf(&b, "smallest quorum c(Q) = %d\n", sys.SmallestQuorumSize())
	return b.String()
}

func figRoundMatrix(round int, header string) string {
	sys := quorum.Counterexample()
	sets := gather.RoundSets(sys.N(), gather.CanonicalChoice(sys), round)
	return quorum.RenderMatrix(sys.N(), header,
		func(p types.ProcessID) types.Set { return sets[p] }, nil)
}

// ExpFig2 renders the S sets (Figure 2).
func ExpFig2() string {
	return figRoundMatrix(1, "Figure 2: values known after one round (S sets); Q = received value")
}

// ExpFig3 renders the T sets (Figure 3).
func ExpFig3() string {
	return figRoundMatrix(2, "Figure 3: values known after two rounds (T sets); Q = received value")
}

// ExpFig4 renders the U sets (Figure 4) and reruns the Listing 1
// verification, both abstractly and at message level.
func ExpFig4() string {
	sys := quorum.Counterexample()
	n := sys.N()
	choice := gather.CanonicalChoice(sys)
	var b strings.Builder
	b.WriteString(figRoundMatrix(3, "Figure 4: values known after three rounds (U sets); Q = received value"))

	u := gather.RoundSets(n, choice, 3)
	cands := gather.CommonCoreCandidates(n, choice, u)
	fmt.Fprintf(&b, "\nListing 1 verification — S sets contained in every U set: %v (paper: set())\n", cands)

	// Message-level confirmation.
	res := gather.RunCluster(gather.RunConfig{
		Kind:    gather.KindThreeRound,
		Trust:   sys,
		Mode:    gather.UsePlain,
		Latency: counterexampleSchedule(sys),
		Seed:    1,
	})
	match := true
	//lint:ordered false-latch over all outputs; the conjunction is order-free
	for p, out := range res.Outputs {
		if !out.Senders(n).Equal(u[p]) {
			match = false
		}
	}
	core := gather.AnalyzeCommonCore(n, res.SSnapshots, res.Outputs, types.FullSet(n))
	fmt.Fprintf(&b, "message-level Algorithm 2 matches abstract execution: %v\n", match)
	fmt.Fprintf(&b, "message-level common core candidates: %v (empty ⇒ Lemma 3.2 reproduced)\n", core)
	return b.String()
}

// counterexampleSchedule is the adversarial latency of Appendix A.
func counterexampleSchedule(sys *quorum.System) sim.LatencyModel {
	fav := make([]types.Set, sys.N())
	for i := range fav {
		fav[i] = sys.Quorums(types.ProcessID(i))[0]
	}
	return sim.FavoredLinksLatency{Favored: fav, Fast: 1, Slow: 100000}
}

// smallSystemTrial is one ExpSmallSystems probe: build a random system
// below 16 processes, batch-analyze it, and test the 3-round merge for a
// common core.
type smallSystemTrial struct {
	built     bool
	violation bool
	coreCount int
	b3        bool
	minQ      int
}

// ExpSmallSystems searches random valid asymmetric systems below 16
// processes for a common-core violation of the 3-round merge (the paper
// proves none exists). The search fans out over all cores via sim.Sweep;
// every trial's parameters derive from its own seed, so the result is
// reproducible and worker-count independent. Each built system is
// summarized with the batch quorum.AnalyzeSystem API (one compiled pass
// per system), which also reports the B3 rate of the family.
func ExpSmallSystems() string {
	const trials = 400
	res := sim.Sweep(sim.SeedRange(1, trials), DefaultSweepWorkers, func(seed int64) smallSystemTrial {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		sys, err := quorum.RandomAsymmetric(quorum.RandomAsymmetricConfig{
			N:        n,
			NumSets:  1 + rng.Intn(3),
			MaxFault: 1 + rng.Intn(max(1, n/4)),
			Seed:     rng.Int63(),
		})
		if err != nil {
			return smallSystemTrial{}
		}
		a := quorum.AnalyzeSystem(sys)
		choice := gather.CanonicalChoice(sys)
		u := gather.RoundSets(n, choice, 3)
		c := gather.CommonCoreCandidates(n, choice, u)
		return smallSystemTrial{built: true, violation: c.IsEmpty(), coreCount: c.Count(), b3: a.B3, minQ: a.SmallestQuorum}
	})
	type tally struct {
		built, violations, minCore, b3, minQ int
	}
	agg := sim.Reduce(res, tally{minCore: 1 << 30, minQ: 1 << 30}, func(acc tally, _ int64, t smallSystemTrial) tally {
		if !t.built {
			return acc
		}
		acc.built++
		if t.b3 {
			acc.b3++
		}
		if t.minQ < acc.minQ {
			acc.minQ = t.minQ
		}
		if t.violation {
			acc.violations++
		} else if t.coreCount < acc.minCore {
			acc.minCore = t.coreCount
		}
		return acc
	})
	return fmt.Sprintf(
		"random systems with 4..15 processes: %d built, %d violations of the common core after 3 rounds\n"+
			"(paper §3.2: any system with <16 processes always satisfies the common core)\n"+
			"smallest candidate count observed: %d\n"+
			"B3 satisfied (Theorem 2.4, implied by validity): %d/%d; smallest c(Q) observed: %d\n",
		agg.built, agg.violations, agg.minCore, agg.b3, agg.built, agg.minQ)
}

// ExpLogRounds measures how many quorum-merge rounds the counterexample
// needs before a common core appears.
func ExpLogRounds() string {
	sys := quorum.Counterexample()
	r, ok := gather.RoundsToCommonCore(sys.N(), gather.CanonicalChoice(sys), 12)
	return fmt.Sprintf(
		"counterexample (n=30): no common core after 3 rounds; first common core after %d rounds (found=%v)\n"+
			"paper: quorum consistency forces a common core within ~log2(n) ≈ %.1f rounds\n",
		r, ok, 4.9)
}

// ExpGatherComparison runs both gather protocols on the counterexample
// system under the adversarial and random schedules and tabulates the
// outcome (E6).
func ExpGatherComparison() string {
	sys := quorum.Counterexample()
	n := sys.N()
	type row struct {
		proto, schedule string
		core            bool
		msgs            int
		endTime         sim.VirtualTime
	}
	var rows []row
	run := func(kind gather.Kind, schedule string, lat sim.LatencyModel, seed int64) {
		res := gather.RunCluster(gather.RunConfig{
			Kind: kind, Trust: sys, Mode: gather.UsePlain, Latency: lat, Seed: seed,
		})
		core := gather.AnalyzeCommonCore(n, res.SSnapshots, res.Outputs, types.FullSet(n))
		rows = append(rows, row{
			proto: kind.String(), schedule: schedule,
			core: !core.IsEmpty(), msgs: res.Metrics.MessagesSent, endTime: res.EndTime,
		})
	}
	run(gather.KindThreeRound, "adversarial (Appendix A)", counterexampleSchedule(sys), 1)
	run(gather.KindConstantRound, "adversarial (Appendix A)", counterexampleSchedule(sys), 1)
	run(gather.KindThreeRound, "uniform random", sim.UniformLatency{Min: 1, Max: 50}, 2)
	run(gather.KindConstantRound, "uniform random", sim.UniformLatency{Min: 1, Max: 50}, 2)

	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "protocol\tschedule\tcommon core\tmessages\tvirtual time")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%v\t%d\t%d\n", r.proto, r.schedule, r.core, r.msgs, r.endTime)
	}
	w.Flush()
	b.WriteString("\npaper: Algorithm 2 has no common core under the adversarial schedule (Lemma 3.2);\n" +
		"Algorithm 3 restores it at the cost of extra control messages (§3.3).\n")
	return b.String()
}

// waveSystem describes one row of the Lemma 4.4 sweep.
type waveSystem struct {
	name  string
	trust quorum.Assumption
	waves int
	seeds int
}

// ExpCommitWaves sweeps quorum systems of different |P|/c(Q) and compares
// the empirical waves-per-commit against the Lemma 4.4 bound (E7).
func ExpCommitWaves() string {
	fed, err := quorum.NewFederated(quorum.FederatedConfig{
		N: 10, TopTier: 7, TrustedPeers: 2, Tolerance: 2, Seed: 5,
	})
	systems := []waveSystem{
		{"threshold(4,1)", quorum.NewThreshold(4, 1), 12, 6},
		{"threshold(7,2)", quorum.NewThreshold(7, 2), 10, 4},
		{"threshold(10,3)", quorum.NewThreshold(10, 3), 8, 3},
		{"counterexample(30)", quorum.Counterexample(), 4, 2},
	}
	if err == nil {
		systems = append(systems, waveSystem{"federated(10)", fed, 8, 3})
	}

	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\tn\tc(Q)\tbound |P|/c(Q)\tmean waves/commit\tcommit rate")
	for _, s := range systems {
		n := s.trust.N()
		cq := 0
		if qs, ok := s.trust.(quorum.QuorumSizer); ok {
			cq = qs.SmallestQuorumSize()
		}
		stats := Sweeper{Workers: DefaultSweepWorkers}.SweepRider(sim.SeedRange(0, s.seeds), func(seed int64) RiderConfig {
			return RiderConfig{
				Kind: Asymmetric, Trust: s.trust, NumWaves: s.waves,
				Seed: seed, CoinSeed: seed*31 + 7,
			}
		}, nil)
		mean, _ := stats.WavesPerCommit()
		bound := float64(n) / float64(cq)
		fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%.2f\t%.2f\n",
			s.name, n, cq, bound, mean, 1/mean)
	}
	w.Flush()
	b.WriteString("\npaper Lemma 4.4: expected waves until commit ≤ |P|/c(Q); the bound is loose because the\n" +
		"common core typically spans far more than one minimal quorum.\n")
	return b.String()
}

// ExpProtocolComparison compares the symmetric baseline with the
// asymmetric protocol on identical threshold systems (E8). Each row is a
// parallel 8-seed sweep; the reported quantities are per-run means, which
// removes the single-schedule noise of the old one-seed comparison.
func ExpProtocolComparison() string {
	const seedsPerRow = 8
	sw := Sweeper{Workers: DefaultSweepWorkers}
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\tprotocol\twaves\tseeds\tcommits\ttx delivered\tvtime\ttx/vtime\tmessages\tbytes")
	for _, spec := range []struct {
		name string
		n, f int
	}{
		{"threshold(4,1)", 4, 1},
		{"threshold(7,2)", 7, 2},
	} {
		for _, kind := range []RiderKind{Symmetric, Asymmetric} {
			trust := quorum.NewThreshold(spec.n, spec.f)
			stats := sw.SweepRider(sim.SeedRange(1, seedsPerRow), func(seed int64) RiderConfig {
				return RiderConfig{
					Kind: kind, Trust: trust, NumWaves: 10, TxPerBlock: 4,
					Seed: seed, CoinSeed: seed*17 + 3,
				}
			}, nil)
			runs := float64(stats.Runs)
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.1f\t%.1f\t%.0f\t%.3f\t%.0f\t%.0f\n",
				spec.name, kind, 10, stats.Runs,
				float64(stats.MaxCommits)/runs, float64(stats.MedianBlocks)/runs,
				float64(stats.EndTime)/runs,
				float64(stats.MedianBlocks)/float64(stats.EndTime),
				float64(stats.Metrics.MessagesSent)/runs, float64(stats.Metrics.BytesSent)/runs)
		}
	}
	w.Flush()
	b.WriteString("\nthe asymmetric protocol pays ACK/READY/CONFIRM control traffic and the CONFIRM gate\n" +
		"per wave; with threshold trust both deliver the same leaders (generalization sanity).\n")
	return b.String()
}

// ExpFaults exercises the Definition 4.1 properties under crash and
// Byzantine-mute faults inside fail-prone sets (E9). Each scenario is a
// parallel 12-seed sweep: total order, agreement and integrity are checked
// on every run, and a violation is reported with its seed.
func ExpFaults() string {
	const seedsPerScenario = 12
	sw := Sweeper{Workers: DefaultSweepWorkers}
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scenario\tguild size\tseeds ok\thit limits\tcommitted nodes\tproperties")

	report := func(name string, within types.Set, mk func(seed int64) RiderConfig) {
		stats := sw.SweepRider(sim.SeedRange(1, seedsPerScenario), mk, func(res RiderResult) error {
			if err := res.CheckTotalOrder(within); err != nil {
				return err
			}
			if err := res.CheckAgreement(within); err != nil {
				return err
			}
			return res.CheckIntegrity(within)
		})
		verdict := "ok"
		if stats.First != nil {
			verdict = "VIOLATED at " + stats.First.String()
		}
		fmt.Fprintf(w, "%s\t%d\t%d/%d\t%d\t%d/%d\t%s\n",
			name, within.Count(), stats.Seeds-stats.Failures, stats.Seeds,
			stats.HitLimits, stats.DecidedNodes, stats.Nodes, verdict)
	}

	// Mute one of threshold(4,1).
	trust41 := quorum.NewThreshold(4, 1)
	report("threshold(4,1), 1 mute", types.NewSetOf(4, 0, 1, 2), func(seed int64) RiderConfig {
		return RiderConfig{
			Kind: Asymmetric, Trust: trust41, NumWaves: 8, TxPerBlock: 1,
			Seed: seed, CoinSeed: seed,
			Faulty: map[types.ProcessID]sim.Node{3: sim.MuteNode{}},
		}
	})

	// Mute two of threshold(7,2).
	trust72 := quorum.NewThreshold(7, 2)
	report("threshold(7,2), 2 mute", types.NewSetOf(7, 0, 1, 2, 3, 4), func(seed int64) RiderConfig {
		return RiderConfig{
			Kind: Asymmetric, Trust: trust72, NumWaves: 8, TxPerBlock: 1,
			Seed: seed, CoinSeed: seed,
			Faulty: map[types.ProcessID]sim.Node{5: sim.MuteNode{}, 6: sim.MuteNode{}},
		}
	})

	// Genuinely asymmetric system with faults inside a fail-prone set:
	// p1..p6 tolerate {p7} or {p8}; p7,p8 additionally tolerate {p2,p3}.
	// Muting p7 leaves a 7-member guild.
	n := 8
	fp1 := types.NewSetOf(n, 6)
	fp2 := types.NewSetOf(n, 7)
	big := types.NewSetOf(n, 1, 2)
	failProne := make([][]types.Set, n)
	for i := 0; i < 6; i++ {
		failProne[i] = []types.Set{fp1, fp2}
	}
	for i := 6; i < 8; i++ {
		failProne[i] = []types.Set{fp1, fp2, big}
	}
	sys, err := quorum.Canonical(n, failProne)
	if err == nil && sys.Validate() == nil {
		guild := sys.MaximalGuild(fp1)
		report(fmt.Sprintf("asym(8), mute %v", fp1), guild, func(seed int64) RiderConfig {
			return RiderConfig{
				Kind: Asymmetric, Trust: sys, NumWaves: 6, TxPerBlock: 1,
				Seed: seed, CoinSeed: seed,
				Faulty: map[types.ProcessID]sim.Node{6: sim.MuteNode{}},
			}
		})
	}
	w.Flush()
	b.WriteString("\npaper Definition 4.1: agreement, total order and integrity hold for the maximal guild\n" +
		"in every execution with a guild; liveness continues as long as faults stay inside\n" +
		"tolerated fail-prone sets.\n")
	return b.String()
}
