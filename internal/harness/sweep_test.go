package harness

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/gather"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// Determinism regressions: the simulator's reproducibility contract (same
// seed ⇒ identical execution) and the sweep engine's worker-count
// independence, pinned at the protocol level.

// TestSameSeedIdenticalMetrics runs the full consensus stack twice with
// the same seed and requires bit-identical metrics: message count, byte
// count and the per-type breakdown.
func TestSameSeedIdenticalMetrics(t *testing.T) {
	run := func() RiderResult {
		return RunRider(RiderConfig{
			Kind: Asymmetric, Trust: quorum.NewThreshold(4, 1), NumWaves: 6,
			TxPerBlock: 2, Seed: 11, CoinSeed: 13,
		})
	}
	a, b := run(), run()
	if a.Metrics.MessagesSent != b.Metrics.MessagesSent ||
		a.Metrics.MessagesDelivered != b.Metrics.MessagesDelivered ||
		a.Metrics.MessagesDropped != b.Metrics.MessagesDropped ||
		a.Metrics.BytesSent != b.Metrics.BytesSent {
		t.Fatalf("same seed, different scalar metrics:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
	if !reflect.DeepEqual(a.Metrics.ByType, b.Metrics.ByType) {
		t.Fatalf("same seed, different per-type counts:\n%v\n%v", a.Metrics.ByType, b.Metrics.ByType)
	}
	if a.EndTime != b.EndTime {
		t.Fatalf("same seed, different end times: %d vs %d", a.EndTime, b.EndTime)
	}
	for p, na := range a.Nodes {
		nb := b.Nodes[p]
		if len(na.Deliveries) != len(nb.Deliveries) {
			t.Fatalf("node %v delivered %d vs %d vertices", p, len(na.Deliveries), len(nb.Deliveries))
		}
		for i := range na.Deliveries {
			if na.Deliveries[i].Ref != nb.Deliveries[i].Ref {
				t.Fatalf("node %v delivery %d differs: %v vs %v", p, i, na.Deliveries[i].Ref, nb.Deliveries[i].Ref)
			}
		}
	}
}

// riderSweepStats renders a sweep's aggregate to a string so worker-count
// comparisons are byte-level (the satellite acceptance criterion).
func riderSweepRender(t *testing.T, workers int) (RiderSweepStats, string) {
	t.Helper()
	trust := quorum.NewThreshold(4, 1)
	correct := types.FullSet(4)
	stats := Sweeper{Workers: workers}.SweepRider(sim.SeedRange(1, 12), func(seed int64) RiderConfig {
		return RiderConfig{
			Kind: Asymmetric, Trust: trust, NumWaves: 5, TxPerBlock: 1,
			Seed: seed, CoinSeed: seed * 7,
		}
	}, func(res RiderResult) error { return res.CheckTotalOrder(correct) })
	scalars := stats
	scalars.Metrics = nil // pointer identity must not leak into the render
	return stats, fmt.Sprintf("%+v|%+v", scalars, *stats.Metrics)
}

// TestSweepRiderWorkerCountIndependence: identical aggregated stats —
// including merged metrics and first-failure bookkeeping — for worker
// counts 1, 2 and GOMAXPROCS.
func TestSweepRiderWorkerCountIndependence(t *testing.T) {
	base, serial := riderSweepRender(t, 1)
	if base.Failures > 0 {
		t.Fatalf("baseline sweep failed: %s", base.First)
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		stats, got := riderSweepRender(t, workers)
		if !reflect.DeepEqual(base, stats) {
			t.Errorf("stats differ between 1 and %d workers:\n%+v\n%+v", workers, base, stats)
		}
		if got != serial {
			t.Errorf("rendered stats differ between 1 and %d workers:\n%s\n%s", workers, serial, got)
		}
	}
}

// TestSweepReportsFirstFailingSeed plants a check that rejects two known
// seeds and requires the sweeper to name the earlier one.
func TestSweepReportsFirstFailingSeed(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	for _, workers := range []int{1, 3} {
		stats := Sweeper{Workers: workers}.SweepRider(sim.SeedRange(1, 10), func(seed int64) RiderConfig {
			return RiderConfig{Kind: Asymmetric, Trust: trust, NumWaves: 2, Seed: seed, CoinSeed: seed}
		}, func(res RiderResult) error {
			if res.Config.Seed == 4 || res.Config.Seed == 7 {
				return fmt.Errorf("planted failure")
			}
			return nil
		})
		if stats.Failures != 2 {
			t.Fatalf("workers=%d: failures = %d, want 2", workers, stats.Failures)
		}
		if stats.First == nil || stats.First.Seed != 4 {
			t.Fatalf("workers=%d: first failure = %v, want seed 4", workers, stats.First)
		}
	}
}

// TestSweepRiderSurfacesPanicSeed: a panicking run must be attributed to
// its seed, not tear the sweep down.
func TestSweepRiderSurfacesPanicSeed(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	stats := Sweeper{Workers: 2}.SweepRider(sim.SeedRange(1, 6), func(seed int64) RiderConfig {
		if seed == 3 {
			panic("planted panic")
		}
		return RiderConfig{Kind: Asymmetric, Trust: trust, NumWaves: 2, Seed: seed, CoinSeed: seed}
	}, nil)
	if stats.Runs != 5 {
		t.Fatalf("runs = %d, want 5 completed", stats.Runs)
	}
	if stats.Failures != 1 || stats.First == nil || stats.First.Seed != 3 {
		t.Fatalf("panic not attributed: failures=%d first=%v", stats.Failures, stats.First)
	}
}

// TestRunABBAAndSweep exercises the ABBA runner: deterministic per seed,
// unanimity checked by the sweep itself.
func TestRunABBAAndSweep(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	cfg := ABBAConfig{Trust: trust, Seed: 5, CoinSeed: 9}
	a, b := RunABBA(cfg), RunABBA(cfg)
	if !reflect.DeepEqual(a.Decisions, b.Decisions) || !reflect.DeepEqual(a.Metrics.ByType, b.Metrics.ByType) {
		t.Fatalf("same seed, different ABBA outcome:\n%+v\n%+v", a, b)
	}
	if err := a.CheckAgreement(); err != nil {
		t.Fatal(err)
	}

	stats := Sweeper{}.SweepABBA(sim.SeedRange(1, 8), func(seed int64) ABBAConfig {
		return ABBAConfig{Trust: trust, Seed: seed, CoinSeed: seed + 1}
	}, nil)
	if stats.Failures > 0 {
		t.Fatalf("ABBA sweep failed: %s", stats.First)
	}
	if stats.Decided != 8*4 {
		t.Fatalf("decided %d processes, want %d", stats.Decided, 8*4)
	}
}

// TestCheckAgreementDetectsDisagreement pins the ABBA checker itself.
func TestCheckAgreementDetectsDisagreement(t *testing.T) {
	r := ABBAResult{Decisions: map[types.ProcessID]int{0: 0, 1: 1}, Rounds: map[types.ProcessID]int{0: 1, 1: 1}}
	if err := r.CheckAgreement(); err == nil {
		t.Fatal("disagreement not detected")
	}
	r = ABBAResult{Decisions: map[types.ProcessID]int{0: 1}, Undecided: 2}
	if err := r.CheckAgreement(); err == nil {
		t.Fatal("undecided processes not detected")
	}
}

// TestRiderParallelDeliveryDeterministic pins the whole consensus stack
// under the simulator's parallel same-time delivery: node results and the
// full Metrics (incl. ByType) are byte-identical across 1, 2 and
// GOMAXPROCS delivery workers, and the protocol properties hold.
func TestRiderParallelDeliveryDeterministic(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	correct := types.FullSet(4)
	mk := func(workers int) RiderResult {
		return RunRider(RiderConfig{
			Kind: Asymmetric, Trust: trust, NumWaves: 6, TxPerBlock: 2,
			Seed: 17, CoinSeed: 19, DeliveryWorkers: workers,
		})
	}
	ref := mk(1)
	if err := ref.CheckTotalOrder(correct); err != nil {
		t.Fatal(err)
	}
	if err := ref.CheckIntegrity(correct); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, runtime.GOMAXPROCS(0) + 1} {
		res := mk(w)
		if !reflect.DeepEqual(res.Metrics, ref.Metrics) {
			t.Fatalf("workers=%d: metrics diverged:\n got %+v\nwant %+v", w, res.Metrics, ref.Metrics)
		}
		if res.EndTime != ref.EndTime {
			t.Fatalf("workers=%d: end time %d, want %d", w, res.EndTime, ref.EndTime)
		}
		if !reflect.DeepEqual(res.Nodes, ref.Nodes) {
			t.Fatalf("workers=%d: node results diverged from 1-worker run", w)
		}
	}
}

// TestRunRiderEventBudget pins the MaxEvents plumbing: a tiny budget
// truncates the run and flags HitLimit, the default budget leaves a
// quiescing run untouched, and a negative budget means unbounded.
func TestRunRiderEventBudget(t *testing.T) {
	trust := quorum.NewThreshold(4, 1)
	base := RiderConfig{Kind: Asymmetric, Trust: trust, NumWaves: 3, Seed: 1, CoinSeed: 2}

	tiny := base
	tiny.MaxEvents = 10
	if res := RunRider(tiny); !res.HitLimit {
		t.Fatal("10-event budget not reported as hit")
	}
	if res := RunRider(base); res.HitLimit {
		t.Fatal("default budget flagged on a quiescing run")
	}
	unbounded := base
	unbounded.MaxEvents = -1
	if res := RunRider(unbounded); res.HitLimit {
		t.Fatal("unbounded run flagged HitLimit")
	}

	// The budget threads through the Sweeper as a per-run counter.
	sw := Sweeper{Workers: 1}
	stats := sw.SweepRider([]int64{1, 2, 3}, func(seed int64) RiderConfig {
		cfg := tiny
		cfg.Seed = seed
		return cfg
	}, nil)
	if stats.HitLimits != 3 {
		t.Fatalf("sweep HitLimits = %d, want 3", stats.HitLimits)
	}

	abba := ABBAConfig{Trust: trust, Seed: 1, CoinSeed: 2, MaxEvents: 4}
	if res := RunABBA(abba); !res.HitLimit {
		t.Fatal("ABBA 4-event budget not reported as hit")
	}

	// Gather runs share the budget convention, and SweepGather surfaces
	// truncations — a non-quiescing schedule cannot hang a gather sweep.
	gcfg := gather.RunConfig{Kind: gather.KindConstantRound, Trust: trust, Mode: gather.UsePlain, Seed: 1, MaxEvents: 3}
	if res := gather.RunCluster(gcfg); !res.HitLimit {
		t.Fatal("gather 3-event budget not reported as hit")
	}
	gstats := Sweeper{Workers: 1}.SweepGather([]int64{1, 2}, func(seed int64) gather.RunConfig {
		cfg := gcfg
		cfg.Seed = seed
		return cfg
	}, nil)
	if gstats.HitLimits != 2 {
		t.Fatalf("gather sweep HitLimits = %d, want 2", gstats.HitLimits)
	}
}
