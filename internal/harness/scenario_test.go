package harness

import (
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/quorum"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// randomConformanceSystem derives a random asymmetric system the way the
// conformance suite does, falling back to an explicit threshold system
// when the random parameters admit no valid one.
func randomConformanceSystem(seed int64) (*quorum.System, error) {
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(5)
	sys, err := quorum.RandomAsymmetric(quorum.RandomAsymmetricConfig{
		N: n, NumSets: 1 + rng.Intn(2), MaxFault: 1, Seed: rng.Int63(),
	})
	if err != nil {
		return quorum.NewThresholdExplicit(n, (n-1)/3)
	}
	return sys, nil
}

// TestScenarioWorkerCountDeterminism pins the scenario engine's core
// contract: every built-in scenario's sweep — full aggregate stats
// including the merged Metrics with ByType — is byte-identical across
// configured DeliveryWorkers ∈ {0, 1, 2, GOMAXPROCS}. Scenario runs
// always use the simulator's batch-commit scheduler (<= 0 resolves to one
// worker), so the configured count only sets pool width, which the
// parallel determinism contract guarantees is unobservable.
func TestScenarioWorkerCountDeterminism(t *testing.T) {
	seeds := sim.SeedRange(1, 4)
	if testing.Short() {
		seeds = sim.SeedRange(1, 2)
	}
	counts := []int{0, 1, 2, runtime.GOMAXPROCS(0)}
	for _, def := range scenario.Builtins() {
		ref := SweepScenario(def, seeds, ScenarioSweepConfig{DeliveryWorkers: counts[0]})
		if ref.Metrics == nil || len(ref.Metrics.ByType) == 0 {
			t.Fatalf("%s: reference sweep produced no ByType metrics (vacuous comparison)", def.Name)
		}
		for _, w := range counts[1:] {
			got := SweepScenario(def, seeds, ScenarioSweepConfig{DeliveryWorkers: w})
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("scenario %s: DeliveryWorkers=%d diverged from %d:\n got %+v\nwant %+v",
					def.Name, w, counts[0], got, ref)
			}
		}
	}
}

// TestScenarioConformanceSweep is the randomized scenario × seed
// conformance sweep: every built-in scenario (partitions that heal,
// crash-recover churn, Byzantine wrappers, ...) over a seed range, with
// each scenario's declared Definition 4.1 properties checked on every
// run. Under -race this doubles as the concurrency audit of the fault
// plane and the node wrappers, since scenario runs always use the
// parallel batch-commit scheduler.
func TestScenarioConformanceSweep(t *testing.T) {
	seedCount := 16
	if testing.Short() {
		seedCount = 3
	}
	defs := scenario.Builtins()
	stats, first := SweepScenarios(defs, sim.SeedRange(1, seedCount), ScenarioSweepConfig{})
	if first != nil {
		t.Fatalf("first failing: %s", first)
	}
	total := 0
	byName := map[string]ScenarioSweepStats{}
	for _, s := range stats {
		byName[s.Name] = s
		total += s.Runs
		if s.Failures > 0 {
			t.Errorf("scenario %s: %d/%d seeds failed; first %s", s.Name, s.Failures, s.Seeds, s.First)
		}
		if s.Runs != seedCount {
			t.Errorf("scenario %s: only %d/%d runs completed", s.Name, s.Runs, seedCount)
		}
		if s.HitLimits > 0 {
			t.Errorf("scenario %s: %d runs truncated at their event budget", s.Name, s.HitLimits)
		}
	}
	if !testing.Short() && total < 100 {
		t.Fatalf("sweep too small: %d runs, need >= 100", total)
	}
	// Guard against vacuous sweeps: the recovery scenarios must actually
	// decide, and the fault scenarios must actually inject.
	for _, name := range []string{"baseline", "partition-heal", "crash-recover", "rolling-churn", "dup-reorder"} {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("required scenario %s missing from the registry", name)
		}
		if s.DecidedNodes != s.Nodes {
			t.Errorf("scenario %s: only %d/%d nodes decided (full liveness expected)", name, s.DecidedNodes, s.Nodes)
		}
	}
	if byName["partition-drop"].Metrics.MessagesDropped == 0 {
		t.Error("partition-drop injected no drops (vacuous)")
	}
	if byName["dup-reorder"].Metrics.MessagesSent <= byName["baseline"].Metrics.MessagesSent {
		t.Error("dup-reorder produced no duplicate traffic (vacuous)")
	}
	if byName["partition-heal"].EndTime <= byName["baseline"].EndTime {
		t.Error("partition-heal did not delay the schedule (vacuous hold)")
	}
}

// TestScenarioSweepRandomizedTrust runs the heal and churn scenarios over
// randomized asymmetric systems (conformance-suite style): the property
// checker computes each run's maximal guild from the scenario's faulty
// set, so it must hold beyond the threshold default too.
func TestScenarioSweepRandomizedTrust(t *testing.T) {
	seedCount := 8
	if testing.Short() {
		seedCount = 2
	}
	for _, name := range []string{"partition-heal", "crash-recover", "churn-lossy", "equivocate"} {
		def, ok := scenario.Find(name)
		if !ok {
			t.Fatalf("builtin %s missing", name)
		}
		for _, sysSeed := range []int64{3, 11} {
			sys, err := randomConformanceSystem(sysSeed)
			if err != nil {
				t.Fatalf("system seed %d: %v", sysSeed, err)
			}
			stats := SweepScenario(def, sim.SeedRange(1, seedCount), ScenarioSweepConfig{Trust: sys})
			if stats.Failures > 0 {
				t.Errorf("%s on random system %d: %d/%d failed; first %s",
					name, sysSeed, stats.Failures, stats.Seeds, stats.First)
			}
		}
	}
}

// TestCheckScenarioPropertiesRejectsViolations pins that the checker is
// not vacuously green: a scenario declaring liveness over a run where a
// guild member decided nothing must fail.
func TestCheckScenarioPropertiesRejectsViolations(t *testing.T) {
	def := scenario.Definition{
		Name: "mute-with-liveness",
		Build: func(n int, seed int64) scenario.Scenario {
			return scenario.Scenario{
				Name: "mute-with-liveness",
				// Deliberately misdeclared: the mute process is marked
				// correct, so it stays in the guild while deciding nothing.
				Faults: []scenario.NodeFault{{
					P: 3, Correct: true,
					Wrap: func(sim.Node) sim.Node { return sim.MuteNode{} },
				}},
				Properties: []scenario.Property{scenario.Liveness},
			}
		},
	}
	// The mute process carries a node fault, so plain Liveness skips it
	// (touched). Force the issue: declare liveness and check a different
	// process's absence instead — run the real scenario and verify the
	// checker catches a guild member without decisions.
	res := RunRider(ScenarioRiderConfig(def, ScenarioSweepConfig{}, 1))
	// Remove an untouched guild member's result to simulate a stall.
	for p := range res.Nodes {
		if p != 3 {
			delete(res.Nodes, p)
			break
		}
	}
	if err := CheckScenarioProperties(def, res); err == nil {
		t.Fatal("checker passed a run with a non-deciding untouched guild member")
	}
}

// TestExpScenarios smoke-tests the experiment artifact.
func TestExpScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	out := ExpScenarios()
	for _, want := range []string{"baseline", "partition-heal", "crash-recover", "equivocate", "first failure"} {
		if !strings.Contains(out, want) {
			t.Errorf("ExpScenarios output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "FIRST FAILING") {
		t.Errorf("ExpScenarios reports a failure:\n%s", out)
	}
}
