package harness

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/acs"
	"repro/internal/gather"
	"repro/internal/quorum"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/types"
)

// Duplicate-delivery idempotence conformance: a fault plane re-delivers a
// sampled subset of messages across every protocol runner (rider, gather,
// abba, acs) and the protocols' properties must still hold — message
// handlers are required to be idempotent (an asynchronous network may
// always duplicate), and this suite pins that before the duplication
// faults of the scenario registry rely on it.

// redeliverPlane compiles a link rule re-delivering ~15% of all messages
// 1..30 time units after their first delivery.
func redeliverPlane() sim.FaultPlane {
	sc := scenario.Scenario{Rules: []scenario.Rule{{
		Redeliver:      0.15,
		RedeliverDelay: scenario.Jitter{Min: 1, Max: 30},
	}}}
	return sc.FaultPlane()
}

// requireDuplicates fails the test if the sweep's metrics show no
// redeliveries (a vacuous idempotence check): every redelivered copy
// counts as a delivery but not as a send.
func requireDuplicates(t *testing.T, m *sim.Metrics) {
	t.Helper()
	if m.MessagesDelivered <= m.MessagesSent {
		t.Fatalf("no duplicate deliveries injected (delivered %d <= sent %d): vacuous sweep",
			m.MessagesDelivered, m.MessagesSent)
	}
}

// TestDuplicateDeliveryIdempotenceRider re-runs the Definition 4.1
// conformance sweep with ~15% of deliveries duplicated.
func TestDuplicateDeliveryIdempotenceRider(t *testing.T) {
	count := 60
	if testing.Short() {
		count = 10
	}
	stats := Sweeper{}.SweepRider(sim.SeedRange(1, count), func(seed int64) RiderConfig {
		cfg := conformanceConfig(seed)
		cfg.Fault = redeliverPlane()
		return cfg
	}, conformanceCheck)
	if stats.Failures > 0 {
		t.Fatalf("%d/%d seeds violated Definition 4.1 under duplicate delivery; first failing %s",
			stats.Failures, stats.Seeds, stats.First)
	}
	if stats.DecidedNodes == 0 {
		t.Fatal("sweep vacuous: no node decided")
	}
	requireDuplicates(t, stats.Metrics)
}

// TestDuplicateDeliveryIdempotenceGather sweeps the constant-round gather
// under duplicate delivery: everyone must still g-deliver a common core.
func TestDuplicateDeliveryIdempotenceGather(t *testing.T) {
	count := 30
	if testing.Short() {
		count = 6
	}
	stats := Sweeper{}.SweepGather(sim.SeedRange(1, count), func(seed int64) gather.RunConfig {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		sys, err := quorum.RandomAsymmetric(quorum.RandomAsymmetricConfig{
			N: n, NumSets: 1 + rng.Intn(2), MaxFault: 1, Seed: rng.Int63(),
		})
		if err != nil {
			sys, err = quorum.NewThresholdExplicit(n, (n-1)/3)
			if err != nil {
				panic(err)
			}
		}
		return gather.RunConfig{
			Kind: gather.KindConstantRound, Trust: sys, Mode: gather.UsePlain,
			Latency: sim.UniformLatency{Min: 1, Max: 20},
			Seed:    seed, Fault: redeliverPlane(),
		}
	}, func(cfg gather.RunConfig, res gather.RunResult) error {
		if len(res.Outputs) != cfg.Trust.N() {
			return fmt.Errorf("only %d/%d processes g-delivered", len(res.Outputs), cfg.Trust.N())
		}
		return nil
	})
	if stats.Failures > 0 {
		t.Fatalf("%d/%d gather seeds failed under duplicate delivery; first %s",
			stats.Failures, stats.Seeds, stats.First)
	}
	if stats.CommonCores != stats.Runs {
		t.Fatalf("common core missing in %d/%d duplicated runs", stats.Runs-stats.CommonCores, stats.Runs)
	}
	requireDuplicates(t, stats.Metrics)
}

// TestDuplicateDeliveryIdempotenceABBA sweeps binary agreement under
// duplicate delivery: agreement and termination must survive.
func TestDuplicateDeliveryIdempotenceABBA(t *testing.T) {
	count := 30
	if testing.Short() {
		count = 6
	}
	trust := quorum.NewThreshold(7, 2)
	stats := Sweeper{}.SweepABBA(sim.SeedRange(1, count), func(seed int64) ABBAConfig {
		return ABBAConfig{
			Trust: trust,
			Inputs: func(p types.ProcessID) int {
				return int((seed + int64(p)) % 2)
			},
			Seed:     seed,
			CoinSeed: seed*13 + 5,
			Fault:    redeliverPlane(),
		}
	}, nil)
	if stats.Failures > 0 {
		t.Fatalf("%d/%d seeds violated binary agreement under duplicate delivery; first %s",
			stats.Failures, stats.Seeds, stats.First)
	}
	if stats.Undecided > 0 {
		t.Fatalf("%d processes left undecided under duplicate delivery", stats.Undecided)
	}
	requireDuplicates(t, stats.Metrics)
}

// TestDuplicateDeliveryIdempotenceACS runs the ACS cluster under duplicate
// delivery: every process must finish and all outputs must agree.
func TestDuplicateDeliveryIdempotenceACS(t *testing.T) {
	seeds := int64(5)
	if testing.Short() {
		seeds = 2
	}
	trust := quorum.NewThreshold(4, 1)
	for seed := int64(1); seed <= seeds; seed++ {
		res := acs.Run(acs.RunConfig{
			Trust: trust, Seed: seed, CoinSeed: seed*17 + 3,
			Fault: redeliverPlane(),
		})
		if res.HitLimit {
			t.Fatalf("seed %d: run truncated at its event budget", seed)
		}
		if len(res.Outputs) != trust.N() {
			t.Fatalf("seed %d: %d/%d processes produced an ACS output", seed, len(res.Outputs), trust.N())
		}
		var ref acs.Pairs
		for p, o := range res.Outputs {
			if ref.IsZero() {
				ref = o
				continue
			}
			if !ref.ContainsAll(o) || !o.ContainsAll(ref) {
				t.Fatalf("seed %d: ACS outputs differ at %v under duplicate delivery", seed, p)
			}
		}
		requireDuplicates(t, res.Metrics)
	}
}
