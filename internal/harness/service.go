package harness

import (
	"repro/internal/scenario"
	"repro/internal/service"
)

// ServiceConfig configures a long-lived replicated service run: pipelined
// client batching, mandatory DAG garbage collection, and periodic
// snapshot/compaction (see internal/service for the lifecycle).
type ServiceConfig = service.Config

// ServiceResult is the outcome of one service run.
type ServiceResult = service.Result

// ServiceReport summarizes one replica at the end of a service run.
type ServiceReport = service.Report

// ServiceSnapshot is one snapshot/compaction point of a replica.
type ServiceSnapshot = service.Snapshot

// ServiceLatency summarizes commit latency in virtual-time units.
type ServiceLatency = service.LatencySummary

// RunService executes one service cluster until its stop condition,
// applying the harness-wide DeliveryWorkers default exactly like RunRider.
func RunService(cfg ServiceConfig) ServiceResult {
	cfg.DeliveryWorkers = resolveDeliveryWorkers(cfg.DeliveryWorkers)
	return service.Run(cfg)
}

// ServiceStats aggregates a run's sustained-throughput and commit-latency
// numbers across replicas — the quantities BenchmarkServiceSustained
// reports and make benchcmp gates.
type ServiceStats struct {
	// Throughput is the mean applied transactions per virtual-time unit
	// per replica.
	Throughput float64
	// CommitRate is the mean wave commits per virtual-time unit per
	// replica.
	CommitRate float64
	// Latency pools the per-replica commit-latency summaries: Count and
	// Mean are exact over the pooled population; P50/P99/Max are the
	// worst (largest) per-replica values, the conservative bound a gate
	// wants.
	Latency ServiceLatency
	// PeakLiveVertices is the largest GC-bounded DAG size any replica
	// held at any point — the bounded-memory headline number.
	PeakLiveVertices int
	// Rejected totals the client commands refused by admission control.
	Rejected int
}

// SummarizeService computes the run-level service statistics.
func SummarizeService(res ServiceResult) ServiceStats {
	var st ServiceStats
	if len(res.Replicas) == 0 || res.EndTime == 0 {
		return st
	}
	var applied, commits int
	var latSum float64
	//lint:ordered commutative sums and max-latches only
	for _, rep := range res.Replicas {
		applied += rep.Applied
		commits += rep.Commits
		st.Rejected += rep.Rejected
		l := rep.Latency
		st.Latency.Count += l.Count
		latSum += l.Mean * float64(l.Count)
		if l.P50 > st.Latency.P50 {
			st.Latency.P50 = l.P50
		}
		if l.P99 > st.Latency.P99 {
			st.Latency.P99 = l.P99
		}
		if l.Max > st.Latency.Max {
			st.Latency.Max = l.Max
		}
		if rep.PeakLive.DAGVertices > st.PeakLiveVertices {
			st.PeakLiveVertices = rep.PeakLive.DAGVertices
		}
	}
	n := float64(len(res.Replicas))
	t := float64(res.EndTime)
	st.Throughput = float64(applied) / n / t
	st.CommitRate = float64(commits) / n / t
	if st.Latency.Count > 0 {
		st.Latency.Mean = latSum / float64(st.Latency.Count)
	}
	return st
}

// CheckServiceSnapshots verifies the service-mode agreement invariant: at
// every decided wave two replicas both snapshotted, their machine states
// are byte-identical. It returns the number of cross-replica snapshot
// comparisons made (0 means the run produced no common snapshot wave,
// which callers should treat as a vacuous check).
func CheckServiceSnapshots(res ServiceResult) (int, error) {
	return service.CompareSnapshots(res)
}

// ServiceScenarioConfig instantiates the named adversarial scenario for
// the given seed and installs its fault plane and node wrappers into cfg —
// the service-mode counterpart of ScenarioRiderConfig.
func ServiceScenarioConfig(def scenario.Definition, cfg ServiceConfig, seed int64) ServiceConfig {
	sc := def.Build(cfg.Trust.N(), seed)
	cfg.Seed = seed
	cfg.Fault = sc.FaultPlane()
	cfg.Wrap = sc.WrapNode
	return cfg
}
