package dag

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

// buildChain constructs a small DAG:
//
//	round 0: a0 b0 c0 (genesis)
//	round 1: a1 -> {a0,b0} strong, c1 -> {c0} strong
//	round 2: a2 -> {a1} strong, -> {c0} weak
func buildChain(t *testing.T) *DAG {
	t.Helper()
	d := New(3)
	g := []*Vertex{
		{Source: 0, Round: 0},
		{Source: 1, Round: 0},
		{Source: 2, Round: 0},
	}
	for _, v := range g {
		if err := d.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	a1 := &Vertex{Source: 0, Round: 1, StrongEdges: []VertexRef{{0, 0}, {1, 0}}}
	c1 := &Vertex{Source: 2, Round: 1, StrongEdges: []VertexRef{{2, 0}}}
	a2 := &Vertex{Source: 0, Round: 2,
		StrongEdges: []VertexRef{{0, 1}},
		WeakEdges:   []VertexRef{{2, 0}},
	}
	for _, v := range []*Vertex{a1, c1, a2} {
		if err := d.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestAddAndGet(t *testing.T) {
	d := buildChain(t)
	if d.VertexCount() != 6 {
		t.Fatalf("VertexCount = %d", d.VertexCount())
	}
	if d.Height() != 3 {
		t.Fatalf("Height = %d", d.Height())
	}
	if _, ok := d.Get(VertexRef{0, 1}); !ok {
		t.Fatal("missing a1")
	}
	if d.Contains(VertexRef{1, 1}) {
		t.Fatal("phantom b1")
	}
	if !d.RoundSources(0).Equal(types.NewSetOf(3, 0, 1, 2)) {
		t.Errorf("RoundSources(0) = %v", d.RoundSources(0))
	}
	if !d.RoundSources(1).Equal(types.NewSetOf(3, 0, 2)) {
		t.Errorf("RoundSources(1) = %v", d.RoundSources(1))
	}
	if d.RoundSources(9).Count() != 0 {
		t.Error("RoundSources out of range should be empty")
	}
}

func TestAddRejectsMissingParents(t *testing.T) {
	d := New(2)
	v := &Vertex{Source: 0, Round: 1, StrongEdges: []VertexRef{{1, 0}}}
	if err := d.Add(v); err == nil {
		t.Fatal("Add with missing parent should fail")
	}
	if !d.HasAllParents(&Vertex{Source: 0, Round: 0}) {
		t.Error("parentless vertex should pass HasAllParents")
	}
	if d.HasAllParents(v) {
		t.Error("HasAllParents should be false")
	}
}

func TestAddRejectsDuplicates(t *testing.T) {
	d := New(2)
	v1 := &Vertex{Source: 0, Round: 0, Block: []string{"a"}}
	v2 := &Vertex{Source: 0, Round: 0, Block: []string{"b"}}
	if err := d.Add(v1); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(v2); err == nil {
		t.Fatal("duplicate (source,round) with different vertex should fail")
	}
	if err := d.Add(v1); err != nil {
		t.Fatalf("re-adding the same vertex should be idempotent: %v", err)
	}
	if err := d.Add(&Vertex{Source: 0, Round: -1}); err == nil {
		t.Fatal("negative round should fail")
	}
}

func TestStrongAndWeakPaths(t *testing.T) {
	d := buildChain(t)
	// a2 → a1 → a0 via strong edges.
	if !d.StrongPath(VertexRef{0, 2}, VertexRef{0, 0}) {
		t.Error("strong path a2→a0 missing")
	}
	// a2 → b0 via a1's strong edge.
	if !d.StrongPath(VertexRef{0, 2}, VertexRef{1, 0}) {
		t.Error("strong path a2→b0 missing")
	}
	// a2 → c0 only via weak edge.
	if d.StrongPath(VertexRef{0, 2}, VertexRef{2, 0}) {
		t.Error("a2→c0 should not be strong")
	}
	if !d.Path(VertexRef{0, 2}, VertexRef{2, 0}) {
		t.Error("a2→c0 should be reachable with weak edges")
	}
	// No path upward.
	if d.Path(VertexRef{0, 0}, VertexRef{0, 2}) {
		t.Error("paths cannot go to higher rounds")
	}
	// Self path.
	if !d.StrongPath(VertexRef{0, 1}, VertexRef{0, 1}) {
		t.Error("self path should hold")
	}
	// Unrelated.
	if d.Path(VertexRef{2, 1}, VertexRef{0, 0}) {
		t.Error("c1→a0 should not exist")
	}
}

func TestStrongReach(t *testing.T) {
	d := buildChain(t)
	if got := d.StrongReachCount(1, VertexRef{0, 0}); got != 1 {
		t.Errorf("StrongReachCount = %d, want 1 (only a1)", got)
	}
	if got := d.StrongReachSources(1, VertexRef{2, 0}); !got.Equal(types.NewSetOf(3, 2)) {
		t.Errorf("StrongReachSources = %v", got)
	}
}

func TestCausalHistoryOrderAndCompleteness(t *testing.T) {
	d := buildChain(t)
	h := d.CausalHistory(VertexRef{0, 2})
	// a2's history: a0, b0, c0(weak), a1, a2 = 5 vertices.
	if len(h) != 5 {
		t.Fatalf("history has %d vertices: %v", len(h), h)
	}
	// Deterministic (round, source) order.
	for i := 1; i < len(h); i++ {
		if h[i-1].Round > h[i].Round ||
			(h[i-1].Round == h[i].Round && h[i-1].Source >= h[i].Source) {
			t.Fatalf("history out of order at %d: %v", i, h)
		}
	}
	// Every vertex's parents precede it.
	pos := map[VertexRef]int{}
	for i, v := range h {
		pos[v.Ref()] = i
	}
	for _, v := range h {
		for _, p := range v.Parents() {
			if pos[p] >= pos[v.Ref()] {
				t.Fatalf("parent %v not before %v", p, v.Ref())
			}
		}
	}
}

func TestRoundVerticesSorted(t *testing.T) {
	d := buildChain(t)
	vs := d.RoundVertices(0)
	if len(vs) != 3 {
		t.Fatalf("round 0 has %d", len(vs))
	}
	for i := 1; i < len(vs); i++ {
		if vs[i-1].Source >= vs[i].Source {
			t.Fatal("RoundVertices not sorted by source")
		}
	}
	if d.RoundVertices(-1) != nil {
		t.Error("negative round should return nil")
	}
}

// TestRandomDAGPathsAgreeWithTransitiveClosure cross-checks the DFS path
// queries against a brute-force transitive closure on random DAGs.
func TestRandomDAGPathsAgreeWithTransitiveClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 4
		rounds := 5
		d := New(n)
		var all []*Vertex
		for src := 0; src < n; src++ {
			v := &Vertex{Source: types.ProcessID(src), Round: 0}
			if err := d.Add(v); err != nil {
				t.Fatal(err)
			}
			all = append(all, v)
		}
		for r := 1; r < rounds; r++ {
			prev := d.RoundVertices(r - 1)
			for src := 0; src < n; src++ {
				if rng.Intn(4) == 0 {
					continue // skip some vertices
				}
				var strong []VertexRef
				for _, p := range prev {
					if rng.Intn(2) == 0 {
						strong = append(strong, p.Ref())
					}
				}
				v := &Vertex{Source: types.ProcessID(src), Round: r, StrongEdges: strong}
				if err := d.Add(v); err != nil {
					t.Fatal(err)
				}
				all = append(all, v)
			}
		}
		// Brute-force strong closure.
		reach := map[VertexRef]map[VertexRef]bool{}
		var closure func(v *Vertex) map[VertexRef]bool
		closure = func(v *Vertex) map[VertexRef]bool {
			if m, ok := reach[v.Ref()]; ok {
				return m
			}
			m := map[VertexRef]bool{v.Ref(): true}
			reach[v.Ref()] = m
			for _, p := range v.StrongEdges {
				pv, _ := d.Get(p)
				for k := range closure(pv) {
					m[k] = true
				}
			}
			return m
		}
		for _, u := range all {
			cu := closure(u)
			for _, w := range all {
				want := cu[w.Ref()]
				if got := d.StrongPath(u.Ref(), w.Ref()); got != want {
					t.Fatalf("StrongPath(%v,%v) = %v, closure says %v", u.Ref(), w.Ref(), got, want)
				}
			}
		}
	}
}

func TestVertexRefString(t *testing.T) {
	if got := (VertexRef{Source: 2, Round: 5}).String(); got != "p3@r5" {
		t.Errorf("String = %q", got)
	}
}

func TestPruneBelow(t *testing.T) {
	d := buildChain(t)
	delivered := map[VertexRef]bool{
		{0, 0}: true, {1, 0}: true, {2, 0}: true,
		{0, 1}: true, {2, 1}: true,
	}
	can := func(v *Vertex) bool { return delivered[v.Ref()] }
	// Prune below round 2: rounds 0 and 1 fully delivered.
	if got := d.PruneBelow(2, can); got != 2 {
		t.Fatalf("watermark = %d, want 2", got)
	}
	if d.PrunedBelow() != 2 {
		t.Fatalf("PrunedBelow = %d", d.PrunedBelow())
	}
	if d.Contains(VertexRef{0, 0}) || d.Contains(VertexRef{0, 1}) {
		t.Error("pruned vertices still visible")
	}
	if !d.Contains(VertexRef{0, 2}) {
		t.Error("retained vertex lost")
	}
	// Adding into a pruned round fails.
	if err := d.Add(&Vertex{Source: 1, Round: 1}); err == nil {
		t.Error("Add into pruned round should fail")
	}
	// Path queries through pruned regions terminate (and report absence).
	if d.StrongPath(VertexRef{0, 2}, VertexRef{0, 0}) {
		t.Error("path into pruned region should be absent")
	}
	if d.VertexCount() != 1 {
		t.Errorf("VertexCount = %d, want 1", d.VertexCount())
	}
}

func TestPruneBelowStopsAtUndelivered(t *testing.T) {
	d := buildChain(t)
	// Round 0 delivered, round 1 NOT fully delivered.
	delivered := map[VertexRef]bool{
		{0, 0}: true, {1, 0}: true, {2, 0}: true,
		{0, 1}: true, // c1 (2,1) missing
	}
	can := func(v *Vertex) bool { return delivered[v.Ref()] }
	if got := d.PruneBelow(3, can); got != 1 {
		t.Fatalf("watermark = %d, want 1 (stop at round 1)", got)
	}
	if !d.Contains(VertexRef{2, 1}) {
		t.Error("undelivered vertex must survive")
	}
}
